(* ukrgen — the micro-kernel generator CLI (the OCaml counterpart of the
   paper's EXO_ukr_generator scripts).

   Subcommands:
     generate   one kernel: print the Exo-style IR (optionally every
                Section III step) and/or emit C
     family     the paper's whole kernel family as a C compilation unit
     solo       solo-mode modeled GFLOPS for a kernel shape (Fig. 13 rows)
     gemm       full-GEMM comparison of the four setups on one problem
     verify     check a generated kernel against the reference interpreter
     lint       static Fig. 12 lint of the whole family, no simulation
     run        execute a DNN workload's GEMMs through the batched
                arena-packed macro-kernel (optionally validated)
     native     emit (and compile, when a host cc exists) one kernel
                bank's native-ABI C — the CI artifact
     cache      persistent-store maintenance (gc --max-bytes)
     serve      long-lived kernel-compilation daemon over a Unix socket
     client     one line-protocol request against a running daemon
     report     render the run ledger: trajectory, regression gate,
                measured-vs-model attribution *)

open Cmdliner
module Family = Exo_ukr_gen.Family
module Kits = Exo_ukr_gen.Kits
module Steps = Exo_ukr_gen.Steps
module KM = Exo_sim.Kernel_model
module D = Exo_blis.Driver
module Obs = Exo_obs.Obs
module Serve = Exo_serve.Serve
module Ledger = Exo_ledger.Ledger

let machine = Exo_isa.Machine.carmel

(* --- common arguments -------------------------------------------------- *)

let kit_conv =
  let parse s =
    match Kits.by_name s with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg
             (Fmt.str "unknown kit %S (known: %s)" s
                (String.concat ", " (List.map (fun k -> k.Kits.name) Kits.all))))
  in
  Arg.conv (parse, fun ppf k -> Fmt.string ppf k.Kits.name)

let kit =
  Arg.(value & opt kit_conv Kits.neon_f32 & info [ "kit" ] ~docv:"KIT"
         ~doc:"Target instruction kit: neon-f32, neon-f16, avx512-f32, rvv-f32.")

let mr = Arg.(value & opt int 8 & info [ "mr" ] ~docv:"MR" ~doc:"Kernel rows.")
let nr = Arg.(value & opt int 12 & info [ "nr" ] ~docv:"NR" ~doc:"Kernel columns.")
let kc = Arg.(value & opt int 512 & info [ "kc" ] ~docv:"KC" ~doc:"Depth of the k loop.")

let out_file =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the emitted C to $(docv) instead of stdout.")

let write_out out s =
  match out with
  | None -> print_string s
  | Some path ->
      let oc = open_out path in
      output_string oc s;
      close_out oc;
      Fmt.pr "wrote %s@." path

let kernel_prov_json (k : Family.kernel) : string =
  Obs.Provenance.to_json ~kernel:k.Family.proc.Exo_ir.Ir.p_name
    ~kit:k.Family.kit.Kits.name
    ~style:(Family.style_name k.Family.style)
    ~declared_steps:(Family.declared_steps k.Family.kit k.Family.style)
    k.Family.provenance

(* [--cache DIR] plumbing: arm the ambient persistent store before the
   command body runs. Without the flag the store comes from
   UKRGEN_CACHE_DIR (unset: caching off), so plain runs never write
   outside the working tree uninvited. *)
let cache_dir =
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR"
         ~doc:"Persist and reuse certified-kernel and tuner artifacts under \
               the content-addressed store at $(docv) (overrides \
               $(b,UKRGEN_CACHE_DIR)).")

let set_cache = function
  | None -> ()
  | Some dir -> Exo_cache.Store.set_ambient (Some dir)

(* [--trace FILE] plumbing shared by [lint] and [tune]: enable tracing for
   the run, then drain the merged buffers into a Chrome trace-event file *)
let trace_file =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record a Chrome trace-event JSON of this run to $(docv) \
               (open in Perfetto or chrome://tracing).")

let trace_begin = function
  | None -> ()
  | Some _ ->
      Obs.reset ();
      Obs.enable ()

let trace_end = function
  | None -> ()
  | Some f ->
      Obs.disable ();
      write_out (Some f) (Obs.Export.chrome_json (Obs.drain ()))

(* --- generate ----------------------------------------------------------- *)

let generate_cmd =
  let steps =
    Arg.(value & flag & info [ "steps" ] ~doc:"Print every Section III scheduling step.")
  in
  let emit_c =
    Arg.(value & flag & info [ "c" ] ~doc:"Emit the kernel as C (with a header comment).")
  in
  let prov_file =
    Arg.(value & opt (some string) None & info [ "provenance" ] ~docv:"FILE"
           ~doc:"Write the kernel's provenance sidecar (the schedule that \
                 made it, as JSON) to $(docv). With $(b,-c -o) $(i,OUT.c) a \
                 sidecar $(i,OUT.prov.json) is written by default.")
  in
  let run cache kit mr nr steps emit_c out prov =
    set_cache cache;
    (try
       if steps then
         if Family.pick_style kit ~mr ~nr = Family.Packed then
           List.iteri
             (fun i (s : Steps.step) ->
               Fmt.pr "--- step %d: %s%s ---@.%a@.@." i s.Steps.title
                 (match s.Steps.figure with Some f -> " (" ^ f ^ ")" | None -> "")
                 Exo_ir.Pp.pp_proc s.Steps.proc)
             (Steps.packed ~kit ~mr ~nr)
         else
           Fmt.pr "(--steps shows the packed schedule; %dx%d uses the %s schedule)@.@."
             mr nr
             (Family.style_name (Family.pick_style kit ~mr ~nr));
       let k = Family.generate ~kit ~mr ~nr () in
       if emit_c then
         write_out out
           (Exo_codegen.C_emit.compilation_unit
              ~header_comment:
                (String.concat "\n"
                   (Fmt.str "%dx%d %s micro-kernel generated by ukrgen" mr nr
                      kit.Kits.name
                   :: Obs.Provenance.header_lines k.Family.provenance))
              [ k.Family.proc ])
       else Fmt.pr "%a@." Exo_ir.Pp.pp_proc k.Family.proc;
       (* every emitted C file ships a machine-readable sidecar *)
       let sidecar =
         match prov with
         | Some f -> Some f
         | None when emit_c ->
             Option.map (fun p -> Filename.remove_extension p ^ ".prov.json") out
         | None -> None
       in
       (match sidecar with
       | Some f -> write_out (Some f) (kernel_prov_json k)
       | None -> ());
       `Ok ()
     with
    | Exo_sched.Sched.Sched_error m | Invalid_argument m -> `Error (false, m))
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate one micro-kernel.")
    Term.(
      ret
        (const run $ cache_dir $ kit $ mr $ nr $ steps $ emit_c $ out_file
       $ prov_file))

(* --- family ------------------------------------------------------------- *)

let family_cmd =
  let run kit out =
    let fam = Family.paper_family ~kit () in
    let procs = List.map (fun (k : Family.kernel) -> k.Family.proc) fam in
    write_out out
      (Exo_codegen.C_emit.compilation_unit
         ~header_comment:
           (Fmt.str "micro-kernel family (%s): %s" kit.Kits.name
              (String.concat ", "
                 (List.map (fun (m, n) -> Fmt.str "%dx%d" m n) Family.paper_shapes)))
         procs);
    (* one combined sidecar (a JSON array, one object per kernel) next to
       the emitted C *)
    (match out with
    | Some path ->
        write_out
          (Some (Filename.remove_extension path ^ ".prov.json"))
          ("[\n" ^ String.concat ",\n" (List.map kernel_prov_json fam) ^ "]\n")
    | None -> ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "family" ~doc:"Emit the paper's whole kernel family as one C file.")
    Term.(ret (const run $ kit $ out_file))

(* --- solo --------------------------------------------------------------- *)

let solo_cmd =
  let run mr nr kc =
    try
      let base = Exo_blis.Registry.base_8x12 () in
      let exo = Exo_blis.Registry.exo_impl ~mr ~nr () in
      let blis = KM.blis_asm_8x12 base and neon = KM.neon_intrinsics_8x12 base in
      Fmt.pr "solo mode, %dx%d tiles at kc = %d on %s:@." mr nr kc machine.Exo_isa.Machine.name;
      Fmt.pr "  NEON (monolithic 8x12 intrinsics): %6.2f GFLOPS@."
        (KM.solo_gflops machine neon ~mu:mr ~nu:nr ~kc);
      Fmt.pr "  BLIS (monolithic 8x12 assembly)  : %6.2f GFLOPS@."
        (KM.solo_gflops machine blis ~mu:mr ~nu:nr ~kc);
      Fmt.pr "  EXO  (specialized %dx%d)          : %6.2f GFLOPS@." mr nr
        (KM.solo_gflops machine exo ~mu:mr ~nu:nr ~kc);
      `Ok ()
    with Invalid_argument m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "solo" ~doc:"Model solo-mode GFLOPS for a kernel shape (Fig. 13).")
    Term.(ret (const run $ mr $ nr $ kc))

(* --- gemm --------------------------------------------------------------- *)

let gemm_cmd =
  let m = Arg.(required & pos 0 (some int) None & info [] ~docv:"M") in
  let n = Arg.(required & pos 1 (some int) None & info [] ~docv:"N") in
  let k = Arg.(required & pos 2 (some int) None & info [] ~docv:"K") in
  let run m n k =
    Fmt.pr "C += A*B with (m, n, k) = (%d, %d, %d) on %s:@." m n k
      machine.Exo_isa.Machine.name;
    List.iter
      (fun s ->
        Fmt.pr "  %10s : %6.2f GFLOPS (kernel %s)@." (D.name_of s)
          (D.gflops machine s ~m ~n ~k)
          (D.selected_kernel machine s ~m ~n ~k))
      (D.all_setups ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "gemm" ~doc:"Compare the four GEMM setups on one problem size.")
    Term.(ret (const run $ m $ n $ k))

(* --- verify ------------------------------------------------------------- *)

let verify_cmd =
  let run kit mr nr kc =
    try
      let k = Family.generate ~kit ~mr ~nr () in
      let module B = Exo_interp.Buffer in
      let module I = Exo_interp.Interp in
      let dt = kit.Kits.dt in
      let st = Random.State.make [| mr; nr; kc |] in
      let mk dims =
        let b = B.create ~init:0.0 dt dims in
        B.fill b (fun _ -> float_of_int (Random.State.int st 9 - 4));
        b
      in
      let ac = mk [ kc; mr ] and bc = mk [ kc; nr ] and c1 = mk [ nr; mr ] in
      let c2 = B.copy c1 in
      let one = B.of_array dt [ 1 ] [| 1.0 |] in
      I.run
        (Exo_ukr_gen.Source.ukernel_ref_simple ~dt ())
        [ I.VInt mr; I.VInt nr; I.VInt kc; I.VBuf one; I.VBuf ac; I.VBuf bc; I.VBuf one; I.VBuf c1 ];
      I.run k.Family.proc [ I.VInt kc; I.VBuf one; I.VBuf ac; I.VBuf bc; I.VBuf one; I.VBuf c2 ];
      if B.equal c1 c2 then begin
        Fmt.pr "%dx%d (%s, %s schedule): bit-exact against the reference@." mr nr
          kit.Kits.name
          (Family.style_name k.Family.style);
        `Ok ()
      end
      else `Error (false, "MISMATCH against the reference semantics")
    with Exo_sched.Sched.Sched_error m | Invalid_argument m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Check a generated kernel against the reference interpreter.")
    Term.(ret (const run $ kit $ mr $ nr $ Arg.(value & opt int 16 & info [ "kc" ])))

(* --- variants ------------------------------------------------------------ *)

let variants_cmd =
  let which =
    Arg.(
      value
      & opt (enum [ ("full", `Full); ("beta0", `Beta0); ("nopack", `Nopack) ]) `Beta0
      & info [ "which" ] ~docv:"VARIANT"
          ~doc:"Kernel variant: full (any alpha/beta), beta0 (C = A*B), nopack \
                (A unpacked).")
  in
  let emit_c = Arg.(value & flag & info [ "c" ] ~doc:"Emit as C.") in
  let run kit mr nr which emit_c out =
    try
      let p =
        match which with
        | `Full -> Exo_ukr_gen.Variants.packed_full ~kit ~mr ~nr ()
        | `Beta0 -> Exo_ukr_gen.Variants.packed_beta0 ~kit ~mr ~nr ()
        | `Nopack -> Exo_ukr_gen.Variants.nopack ~kit ~mr ~nr ()
      in
      if emit_c then write_out out (Exo_codegen.C_emit.compilation_unit [ p ])
      else Fmt.pr "%a@." Exo_ir.Pp.pp_proc p;
      `Ok ()
    with Exo_sched.Sched.Sched_error m | Invalid_argument m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "variants"
       ~doc:"Generate a kernel variant: full alpha/beta (Fig. 4), beta = 0, or \
             non-packed A (Section III-B).")
    Term.(ret (const run $ kit $ mr $ nr $ which $ emit_c $ out_file))

(* --- lint --------------------------------------------------------------- *)

let jobs =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Domains to sweep on (default: $(b,EXO_JOBS) or the core count). \
               The output is byte-identical for every $(docv).")

(* [lint --tiers] failures exit with their own code, distinct from the
   generic CLI error (123) and cmdliner's usage errors (124): CI and
   scripts can tell "an execution-tier proof failed" from "the command
   line was wrong". *)
let tiers_fail_exit = 3

let lint_cmd =
  let all =
    Arg.(value & flag & info [ "all" ]
           ~doc:"Sweep every kit (default: only the kit given by $(b,--kit)).")
  in
  let tiers =
    Arg.(value & flag & info [ "tiers" ]
           ~doc:"Validate the lowered execution tiers instead of the kernel \
                 family: for every monomorphized (mr' × nr') table entry, \
                 prove bounds, write-set containment and accumulation shape \
                 of the lowered tape, and cross-check the static verdict \
                 against the dynamic integer certification. Exits $(b,3) on \
                 any unproved entry or static/dynamic disagreement.")
  in
  let json_file =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"With $(b,--tiers): write the per-entry verdict document \
                 (JSON) to $(docv).")
  in
  let selftest_fail =
    Arg.(value & flag & info [ "selftest-fail" ]
           ~doc:"With $(b,--tiers): skip the sweep and report one synthetic \
                 unproved entry — pins the failure exit code without a \
                 deliberately broken build.")
  in
  let table_mr =
    Arg.(value & opt int 8 & info [ "table-mr" ] ~docv:"MR"
           ~doc:"With $(b,--tiers): validate tables of $(docv) × table-nr \
                 entries (default the paper's 8 × 12 = 96).")
  in
  let table_nr =
    Arg.(value & opt int 12 & info [ "table-nr" ] ~docv:"NR"
           ~doc:"With $(b,--tiers): see $(b,--table-mr).")
  in
  let run cache kit all jobs trace tiers json selftest tmr tnr =
    set_cache cache;
    let module L = Exo_ukr_gen.Lint in
    let kits = if all then Kits.all else [ kit ] in
    if tiers then begin
      let o =
        if selftest then
          let module T = Exo_check.Tierlint in
          let u = T.Unproved "selftest: injected failure" in
          {
            L.tier_entries =
              [
                {
                  L.te_kit = kit.Kits.name;
                  te_mr = 0;
                  te_nr = 0;
                  te_report =
                    { T.r_mr = 0; r_nr = 0; r_bounds = u; r_writes = u; r_accshape = u };
                  te_probe = None;
                };
              ];
            tier_kits =
              [
                {
                  L.tk_kit = kit.Kits.name;
                  tk_total = 1;
                  tk_proved = 0;
                  tk_disagreements = 0;
                };
              ];
          }
        else begin
          trace_begin trace;
          let o = L.run_tiers ?jobs ~kits ~mr:tmr ~nr:tnr () in
          trace_end trace;
          o
        end
      in
      (match json with Some f -> write_out (Some f) (L.tiers_json o) | None -> ());
      Fmt.pr "%a@." L.pp_tiers o;
      if L.tiers_ok o then `Ok ()
      else begin
        Fmt.epr
          "ukrgen: lint --tiers: %d unproved entr(ies), %d static/dynamic \
           disagreement(s)@."
          (L.tiers_unproved o)
          (List.fold_left (fun n k -> n + k.L.tk_disagreements) 0 o.L.tier_kits);
        Stdlib.exit tiers_fail_exit
      end
    end
    else begin
      trace_begin trace;
      let o = L.run ?jobs ~kits () in
      trace_end trace;
      Fmt.pr "%a@." L.pp_outcome o;
      if L.all_ok o then `Ok ()
      else `Error (false, Fmt.str "%d kernel(s) failed the lint" (L.failures o))
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~exits:
         (Cmd.Exit.info tiers_fail_exit
            ~doc:"a $(b,--tiers) proof failed (unproved entry or \
                  static/dynamic disagreement)."
         :: Cmd.Exit.defaults)
       ~doc:"Statically lint the generated kernel family: bounds certificates, \
             register budget, steady-state census and effect signatures \
             (Fig. 12 properties), without running the simulator. With \
             $(b,--tiers), statically validate the lowered execution tiers \
             instead (translation validation of the monomorphized kernel \
             table).")
    Term.(
      ret
        (const run $ cache_dir $ kit $ all $ jobs $ trace_file $ tiers
       $ json_file $ selftest_fail $ table_mr $ table_nr))

(* --- tune --------------------------------------------------------------- *)

let tune_cmd =
  let m = Arg.(required & pos 0 (some int) None & info [] ~docv:"M") in
  let n = Arg.(required & pos 1 (some int) None & info [] ~docv:"N") in
  let k = Arg.(required & pos 2 (some int) None & info [] ~docv:"K") in
  let ledger_arg =
    Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE"
           ~doc:"Append a run-ledger record of this sweep to $(docv) \
                 (default $(b,UKRGEN_LEDGER); unset: no ledger).")
  in
  let run cache m n k jobs trace ledger =
    set_cache cache;
    try
      trace_begin trace;
      (* a traced sweep must actually sweep: drop the memoized ranking so
         the per-config spans are recorded, not skipped *)
      if trace <> None then Exo_blis.Tuner.clear_cache ();
      let t0 = Unix.gettimeofday () in
      let results = Exo_blis.Tuner.sweep ?jobs machine ~m ~n ~k in
      let t_sweep = Unix.gettimeofday () -. t0 in
      trace_end trace;
      Fmt.pr "kernel ranking for (m, n, k) = (%d, %d, %d) on %s:@." m n k
        machine.Exo_isa.Machine.name;
      List.iteri
        (fun i (r : Exo_blis.Tuner.result) ->
          Fmt.pr "  %2d. %2dx%-2d %7.2f GFLOPS  (%a)@." (i + 1) r.Exo_blis.Tuner.mr
            r.Exo_blis.Tuner.nr r.Exo_blis.Tuner.gflops Exo_blis.Analytical.pp
            r.Exo_blis.Tuner.blocking)
        results;
      (match
         ( (match ledger with Some p -> Some p | None -> Ledger.env_path ()),
           results )
       with
      | Some path, (top : Exo_blis.Tuner.result) :: _ ->
          Ledger.append ~path
            (Ledger.record ~pool_jobs:(Exo_par.Pool.default_jobs ())
               ~bench:(Fmt.str "tune %dx%dx%d" m n k)
               [
                 Ledger.metric ~unit_:"ms" Ledger.Lower "tune.sweep_ms"
                   (t_sweep *. 1e3);
                 Ledger.metric ~unit_:"GFLOPS" Ledger.Info "tune.top_gflops"
                   top.Exo_blis.Tuner.gflops;
               ]);
          Fmt.pr "ledger: appended tune record to %s@." path
      | _ -> ());
      `Ok ()
    with Invalid_argument msg ->
      Obs.disable ();
      `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Rank every candidate kernel shape for one GEMM (the paper's \
          'evaluating a number of generated micro-kernels').")
    Term.(ret (const run $ cache_dir $ m $ n $ k $ jobs $ trace_file $ ledger_arg))

(* --- report -------------------------------------------------------------- *)

(* [report --check] failures exit with their own code, distinct from lint
   --tiers' 3, the generic CLI error (123) and usage errors (124): CI can
   tell "the performance gate tripped" from every other failure. *)
let report_fail_exit = 4

let report_cmd =
  let ledger_arg =
    Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE"
           ~doc:"Run-ledger JSONL to report on (default $(b,UKRGEN_LEDGER), \
                 else $(i,ledger.jsonl)).")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Exit $(b,4) when a gated metric regressed beyond its noise \
                 bound against the baseline window, or the measured/model \
                 efficiency fell below the gate.")
  in
  let baseline =
    Arg.(value & opt int 5 & info [ "baseline" ] ~docv:"N"
           ~doc:"Baseline window: compare each bench's latest run against up \
                 to $(docv) prior runs from the same host fingerprint.")
  in
  let mad_k =
    Arg.(value & opt float 4.0 & info [ "mad-k" ] ~docv:"K"
           ~doc:"Noise bound: $(docv) times the baseline window's median \
                 absolute deviation.")
  in
  let min_rel =
    Arg.(value & opt float 0.10 & info [ "min-rel" ] ~docv:"R"
           ~doc:"Noise-bound floor as a fraction of the baseline median \
                 (default 10%; raise on jittery shared runners).")
  in
  let gate =
    Arg.(value & opt float 0.02 & info [ "efficiency" ] ~docv:"E"
           ~doc:"Attribution gate: flag the report when measured/model GFLOPS \
                 efficiency falls below $(docv).")
  in
  let bench_filter =
    Arg.(value & opt (some string) None & info [ "bench" ] ~docv:"NAME"
           ~doc:"Restrict verdicts and attribution to one bench (e.g. \
                 $(i,perf-gemm)).")
  in
  let json_file =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the machine-readable report document to $(docv).")
  in
  let run ledger check baseline mad_k min_rel gate bench json =
    let path =
      match ledger with
      | Some p -> p
      | None -> Option.value ~default:"ledger.jsonl" (Ledger.env_path ())
    in
    if not (Sys.file_exists path) then begin
      (* a missing ledger is a tool failure (generic 123), never the
         regression verdict (4): CI must not read "no data" as "perf
         regressed". cmdliner's default term error would exit 124 and
         collide with usage errors, so exit explicitly. *)
      Fmt.epr
        "ukrgen: no ledger at %s (append records with bench -ledger, ukrgen \
         tune --ledger, or $UKRGEN_LEDGER)@."
        path;
      Stdlib.exit Cmd.Exit.some_error
    end
    else begin
      let loaded = Ledger.load ~path in
      let r =
        Ledger.Report.build ~baseline ~mad_k ~min_rel ~gate ?bench ~path loaded
      in
      Fmt.pr "%s@?" (Ledger.Report.render r);
      (match json with
      | Some f -> write_out (Some f) (Ledger.Report.to_json r)
      | None -> ());
      if check && not (Ledger.Report.ok r) then Stdlib.exit report_fail_exit
      else `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "report"
       ~exits:
         (Cmd.Exit.info report_fail_exit
            ~doc:"with $(b,--check): a gated metric regressed beyond its \
                  noise bound, or measured/model efficiency fell below the \
                  gate."
         :: Cmd.Exit.defaults)
       ~doc:"Render the append-only run ledger: per-bench trajectory, \
             regression verdicts against the host's baseline window, and the \
             measured-vs-model attribution table (measured GFLOPS next to \
             the analytical model's prediction, the cache simulator's DRAM \
             traffic, and the traced phase breakdown).")
    Term.(
      ret
        (const run $ ledger_arg $ check $ baseline $ mad_k $ min_rel $ gate
       $ bench_filter $ json_file))

(* --- trace --------------------------------------------------------------- *)

let trace_cmd =
  let kit_pos =
    Arg.(required & pos 0 (some kit_conv) None & info [] ~docv:"KIT"
           ~doc:"Target kit (e.g. neon-f32).")
  in
  let shape_pos =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SHAPE"
           ~doc:"Micro-kernel shape as MRxNR (e.g. 8x12).")
  in
  let out =
    Arg.(value & opt string "trace.json" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Chrome trace-event JSON output (open in Perfetto).")
  in
  let prov =
    Arg.(value & opt (some string) None & info [ "provenance" ] ~docv:"FILE"
           ~doc:"Also write the kernel's provenance sidecar to $(docv).")
  in
  let parse_shape s =
    match String.index_opt s 'x' with
    | Some i -> (
        match
          ( int_of_string_opt (String.sub s 0 i),
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
        with
        | Some mr, Some nr when mr >= 1 && nr >= 1 -> Some (mr, nr)
        | _ -> None)
    | None -> None
  in
  let run kit shape out prov =
    match parse_shape shape with
    | None -> `Error (true, Fmt.str "SHAPE must be MRxNR (got %S)" shape)
    | Some (mr, nr) -> (
        try
          Obs.reset ();
          Obs.enable ();
          (* 1. the schedule: every primitive and certificate as sched.*
             spans plus the provenance log ([Family.generate] directly, not
             the registry memo — a warm cache would skip the spans) *)
          let kern = Family.generate ~kit ~mr ~nr () in
          (* 2. a small real GEMM through the BLIS macro-kernel, running
             the generated kernel on the compiled engine: pack-A / pack-B /
             macro-kernel / micro-kernel dispatch spans *)
          let m, n, k = (48, 48, 48) in
          let blocking =
            Exo_blis.Analytical.compute machine ~mr ~nr ~dtype_bytes:4
          in
          let a =
            Exo_blis.Matrix.init m k (fun i j ->
                float_of_int (((i + j) mod 5) - 2))
          in
          let b =
            Exo_blis.Matrix.init k n (fun i j ->
                float_of_int ((((2 * i) + j) mod 5) - 2))
          in
          let c = Exo_blis.Matrix.create m n in
          Exo_blis.Gemm.blis ~blocking ~mr ~nr
            ~ukr:(Exo_blis.Registry.exo_ukr ~kit ())
            a b c;
          (* 3. a tuner sweep across the domain pool and a cache-simulator
             run: per-config spans, phase counters, pc-block progress *)
          ignore (Exo_blis.Tuner.sweep ~kit machine ~m ~n ~k);
          let { Exo_blis.Analytical.mc; kc; nc } = blocking in
          ignore (Exo_sim.Cache_sim.gemm_trace machine ~mc ~kc ~nc ~mr ~nr ~m ~n ~k);
          Obs.disable ();
          let tr = Obs.drain () in
          write_out (Some out) (Obs.Export.chrome_json tr);
          (match prov with
          | Some f -> write_out (Some f) (kernel_prov_json kern)
          | None -> ());
          Fmt.pr "%s@?" (Obs.Export.text_report tr);
          `Ok ()
        with Exo_sched.Sched.Sched_error msg | Invalid_argument msg ->
          Obs.disable ();
          `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Trace one kit/shape end to end — schedule, packing, macro- and \
          micro-kernel phases, tuner sweep, cache simulation — into a \
          Chrome trace-event JSON plus a profile report on stdout.")
    Term.(ret (const run $ kit_pos $ shape_pos $ out $ prov))

(* --- explain ------------------------------------------------------------ *)

let explain_cmd =
  let run kit mr nr =
    try
      let k = Family.generate ~kit ~mr ~nr () in
      let t = Exo_sim.Trace.of_proc k.Family.proc in
      let impl = KM.of_proc ~name:"k" ~mr ~nr k.Family.proc in
      let mach =
        if kit.Kits.dt = Exo_ir.Dtype.F16 then Exo_isa.Machine.carmel_fp16 else machine
      in
      Fmt.pr "%dx%d %s kernel (%s schedule)@." mr nr kit.Kits.name
        (Family.style_name k.Family.style);
      Fmt.pr "  steady census   : %a@." Exo_sim.Trace.pp t.Exo_sim.Trace.steady;
      Fmt.pr "  prologue census : %a@." Exo_sim.Trace.pp t.Exo_sim.Trace.prologue;
      Fmt.pr "  vector registers: %d of %d@." t.Exo_sim.Trace.vregs_used
        mach.Exo_isa.Machine.vec.Exo_isa.Memories.num_regs;
      let c = t.Exo_sim.Trace.steady in
      let compute = c.Exo_sim.Trace.fma + c.Exo_sim.Trace.arith + c.Exo_sim.Trace.bcast in
      let pipe = float_of_int compute /. float_of_int mach.Exo_isa.Machine.fma_pipes in
      let lat = float_of_int mach.Exo_isa.Machine.fma_lat in
      let ld = float_of_int c.Exo_sim.Trace.load /. float_of_int mach.Exo_isa.Machine.load_ports in
      let cyc = KM.cycles_per_iter mach impl in
      Fmt.pr "  bounds per iter : pipe %.2f | latency %.2f | load-port %.2f@." pipe lat ld;
      Fmt.pr "  binding bound   : %s (%.2f cycles/iteration)@."
        (if cyc = pipe then "FMA pipes"
         else if cyc = lat then "FMA accumulate latency (too few accumulators)"
         else if cyc = ld then "load ports"
         else "issue width / other")
        cyc;
      Fmt.pr "  scoreboard check: %.2f cycles/iteration@."
        (Exo_sim.Scoreboard.cycles_per_iter mach k.Family.proc);
      Fmt.pr "  solo mode       : %.2f of %.2f GFLOPS peak at kc = 512@."
        (KM.solo_gflops ~dbytes:(Exo_ir.Dtype.size_bytes kit.Kits.dt) mach impl
           ~mu:mr ~nu:nr ~kc:512)
        (KM.peak mach impl);
      (* what the native JIT tier would do with this kernel on THIS host
         (everything above is about the modeled target machine) *)
      List.iter
        (fun (k, v) -> Fmt.pr "  host %-11s: %s@." k v)
        (Exo_native.Host.describe ());
      Fmt.pr "  native target   : %s@."
        (match Exo_blis.Registry.native_target_for kit with
        | Some t -> Exo_codegen.C_emit.native_target_name t
        | None -> "none (native tier is f32-only)");
      `Ok ()
    with Exo_sched.Sched.Sched_error msg | Invalid_argument msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain a kernel's performance: census, bounds, and which one binds.")
    Term.(ret (const run $ kit $ mr $ nr))

(* --- run ----------------------------------------------------------------- *)

let run_cmd =
  let model_conv =
    let parse = function
      | "resnet50" -> Ok `Resnet50
      | "vgg16" -> Ok `Vgg16
      | s -> Error (`Msg (Fmt.str "unknown model %S (known: resnet50, vgg16)" s))
    in
    Arg.conv
      (parse, fun ppf m ->
        Fmt.string ppf (match m with `Resnet50 -> "resnet50" | `Vgg16 -> "vgg16"))
  in
  let model =
    Arg.(value & opt model_conv `Resnet50 & info [ "model" ] ~docv:"MODEL"
           ~doc:"DNN workload to execute: resnet50 or vgg16.")
  in
  let jobs =
    Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Pool width for the jc loop (0: the process default).")
  in
  let limit =
    Arg.(value & opt int 0 & info [ "limit" ] ~docv:"N"
           ~doc:"Run only the first $(docv) distinct layers (0: all).")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Validate every layer exactly against the naive f32 \
                 reference (slow at full-model scale).")
  in
  let run cache model jobs limit check =
    set_cache cache;
    let module W = Exo_workloads.Models in
    let module M = Exo_blis.Matrix in
    let module G = Exo_blis.Gemm in
    let mr = 8 and nr = 12 in
    let name, layers =
      match model with
      | `Resnet50 -> ("resnet50", W.resnet50)
      | `Vgg16 -> ("vgg16", W.vgg16)
    in
    let layers = if limit > 0 then List.filteri (fun i _ -> i < limit) layers else layers in
    let blocking = Exo_blis.Analytical.compute machine ~mr ~nr ~dtype_bytes:4 in
    let pool =
      if jobs > 0 then Exo_par.Pool.create ~jobs () else Exo_par.Pool.global ()
    in
    Fmt.pr "%s: %d distinct conv GEMMs through the executable ALG+EXO path@."
      name (List.length layers);
    Fmt.pr "blocking (mc=%d, kc=%d, nc=%d), %dx%d kernels, %d domain(s)@."
      blocking.Exo_blis.Analytical.mc blocking.Exo_blis.Analytical.kc
      blocking.Exo_blis.Analytical.nc mr nr (Exo_par.Pool.jobs pool);
    let st = Random.State.make [| 97 |] in
    let probs =
      List.map
        (fun (l : W.layer) ->
          let m, n, k = W.gemm_dims l in
          let a = M.random_int m k st and b = M.random_int k n st in
          let c = M.random_int m n st in
          (l, a, b, c, if check then Some (M.copy c) else None))
        layers
    in
    let ukr = Exo_blis.Registry.exo_ukr () in
    let ws = G.workspace () in
    let t0 = Unix.gettimeofday () in
    G.batch ~pool ~ws ~ukr
      (List.map
         (fun (_, a, b, c, _) ->
           {
             G.p_a = a;
             p_b = b;
             p_c = c;
             p_alpha = 1.0;
             p_beta = 1.0;
             p_blocking = blocking;
             p_mr = mr;
             p_nr = nr;
           })
         probs);
    let elapsed = Unix.gettimeofday () -. t0 in
    let total_flops = ref 0.0 in
    let failures = ref 0 in
    List.iter
      (fun ((l : W.layer), a, b, c, c_ref) ->
        let m, n, k = W.gemm_dims l in
        total_flops := !total_flops +. (2.0 *. float_of_int (m * n * k));
        match c_ref with
        | None -> ()
        | Some r ->
            G.naive_f32 a b r;
            if not (M.equal c r) then begin
              incr failures;
              Fmt.epr "layer %d (%dx%dx%d): MISMATCH vs naive f32@." l.W.id m n k
            end)
      probs;
    List.iter
      (fun ((l : W.layer), _, _, _, _) ->
        let m, n, k = W.gemm_dims l in
        Fmt.pr "  layer %2d (x%d): m=%5d n=%4d k=%4d@." l.W.id l.W.count m n k)
      probs;
    Fmt.pr "batch: %.2f s, %.3f GFLOPS aggregate%s@." elapsed
      (!total_flops /. elapsed /. 1e9)
      (if check then
         if !failures = 0 then "; every layer exact vs naive f32"
         else Fmt.str "; %d LAYER(S) WRONG" !failures
       else "");
    if !failures > 0 then `Error (false, "numeric validation failed") else `Ok ()
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute a DNN workload's GEMMs through the batched arena-packed \
             macro-kernel.")
    Term.(ret (const run $ cache_dir $ model $ jobs $ limit $ check))

(* --- native ------------------------------------------------------------- *)

(* The CI artifact: the native-ABI C for one kernel bank, plus the shared
   object when this host has a C compiler. The C is always written —
   graceful degradation means a cc-less host still produces an inspectable
   artifact. *)
let native_cmd =
  let kit_pos =
    Arg.(required & pos 0 (some kit_conv) None & info [] ~docv:"KIT"
           ~doc:"Target kit (e.g. avx2-f32).")
  in
  let shape_pos =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SHAPE"
           ~doc:"Micro-kernel shape as MRxNR (e.g. 8x12).")
  in
  let out_dir =
    Arg.(value & opt string "native-artifacts" & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory the $(i,.c) (and $(i,.so), when a C compiler \
                 exists) are written into (created if absent).")
  in
  let parse_shape s =
    match String.index_opt s 'x' with
    | Some i -> (
        match
          ( int_of_string_opt (String.sub s 0 i),
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
        with
        | Some mr, Some nr when mr >= 1 && nr >= 1 -> Some (mr, nr)
        | _ -> None)
    | None -> None
  in
  let run cache kit shape dir =
    set_cache cache;
    match parse_shape shape with
    | None -> `Error (true, Fmt.str "SHAPE must be MRxNR (got %S)" shape)
    | Some (mr, nr) -> (
        try
          match Exo_blis.Registry.native_emit ~kit ~mr ~nr () with
          | None ->
              `Error
                (false,
                 Fmt.str "kit %s is not f32: the native tier has no lowering"
                   kit.Kits.name)
          | Some (target, src) ->
              if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
              let base =
                Filename.concat dir (Fmt.str "%s_%dx%d" kit.Kits.name mr nr)
              in
              write_out (Some (base ^ ".c")) src;
              Fmt.pr "target: %s@."
                (Exo_codegen.C_emit.native_target_name target);
              (match Exo_native.Host.cc () with
              | None ->
                  Fmt.pr "no C compiler on this host: skipping the .so@.";
                  `Ok ()
              | Some cc -> (
                  match Exo_native.Jit.compile_c ~src with
                  | Ok so_bytes ->
                      let oc = open_out_bin (base ^ ".so") in
                      output_string oc so_bytes;
                      close_out oc;
                      Fmt.pr "wrote %s.so (%d bytes, cc %s)@." base
                        (String.length so_bytes) cc;
                      `Ok ()
                  | Error msg ->
                      `Error (false, Fmt.str "native compilation failed: %s" msg)))
        with Exo_sched.Sched.Sched_error m | Invalid_argument m ->
          `Error (false, m))
  in
  Cmd.v
    (Cmd.info "native"
       ~doc:"Emit one kernel bank's native-ABI C compilation unit (and the \
             compiled shared object when the host has a C compiler) — the CI \
             inspection artifact for the native JIT tier.")
    Term.(ret (const run $ cache_dir $ kit_pos $ shape_pos $ out_dir))

(* --- cache -------------------------------------------------------------- *)

let cache_gc_cmd =
  let max_bytes =
    Arg.(required & opt (some int) None & info [ "max-bytes" ] ~docv:"N"
           ~doc:"Size budget: the most recently used entries whose cumulative \
                 size fits $(docv) bytes are kept, the rest deleted.")
  in
  let run cache max_bytes =
    set_cache cache;
    match Exo_cache.Store.ambient () with
    | None ->
        `Error
          (true,
           "no store to sweep: pass --cache DIR or set UKRGEN_CACHE_DIR")
    | Some st ->
        if max_bytes < 0 then `Error (true, "--max-bytes must be >= 0")
        else begin
          let s = Exo_cache.Store.gc st ~max_bytes in
          Fmt.pr
            "gc %s: scanned %d entr%s, deleted %d, kept %d bytes, freed %d \
             bytes@."
            (Exo_cache.Store.root st)
            s.Exo_cache.Store.gc_scanned
            (if s.Exo_cache.Store.gc_scanned = 1 then "y" else "ies")
            s.Exo_cache.Store.gc_deleted s.Exo_cache.Store.gc_kept_bytes
            s.Exo_cache.Store.gc_freed_bytes;
          `Ok ()
        end
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:"LRU sweep of the persistent store: keep the most recently \
             touched entries within a byte budget, delete the rest.")
    Term.(ret (const run $ cache_dir $ max_bytes))

let cache_cmd =
  Cmd.group
    (Cmd.info "cache"
       ~doc:"Maintain the content-addressed persistent artifact store.")
    [ cache_gc_cmd ]

(* --- serve / client ------------------------------------------------------ *)

let default_socket = Filename.concat (Filename.get_temp_dir_name ()) "ukrgen.sock"

let socket_arg =
  Arg.(value & opt string default_socket & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket the daemon listens on (default $(docv) in \
               the system temp directory).")

let serve_cmd =
  let workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
           ~doc:"Accept domains sharing the listening socket.")
  in
  let warm_kits =
    Arg.(value & opt_all kit_conv [] & info [ "kit" ] ~docv:"KIT"
           ~doc:"Warm this kit's kernel table before accepting requests \
                 (repeatable; default neon-f32).")
  in
  let access_log =
    Arg.(value & opt (some string) None & info [ "access-log" ] ~docv:"FILE"
           ~doc:"Append one JSONL line per request (timestamp, verb, status, \
                 latency) to $(docv), size-rotated at 1 MiB to $(docv).1.")
  in
  let run socket workers cache warm_kits access_log =
    if workers < 1 then `Error (true, "--workers must be >= 1")
    else begin
      set_cache cache;
      Serve.set_access_log access_log;
      (* a client vanishing mid-response must not kill the daemon *)
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      try
        let t =
          Serve.start ~workers
            ?warm_kits:(match warm_kits with [] -> None | l -> Some l)
            ~socket ()
        in
        let graceful = Sys.Signal_handle (fun _ -> Serve.stop t) in
        Sys.set_signal Sys.sigint graceful;
        Sys.set_signal Sys.sigterm graceful;
        Fmt.pr
          "ukrgen serve: listening on %s (%d worker domain(s), cache %s, \
           access log %s)@."
          socket workers
          (match Exo_cache.Store.ambient () with
          | Some st -> Exo_cache.Store.root st
          | None -> "off")
          (Option.value ~default:"off" (Serve.access_log_path ()));
        Serve.wait t;
        Fmt.pr "ukrgen serve: drained, bye@.";
        `Ok ()
      with Unix.Unix_error (e, fn, arg) ->
        `Error (false, Fmt.str "%s(%s): %s" fn arg (Unix.error_message e))
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the kernel-compilation daemon: warm the monomorphized \
             kernel table once, then answer GENERATE / LINT / TUNE / RUN / \
             STATS requests over a Unix-domain socket until SHUTDOWN.")
    Term.(
      ret (const run $ socket_arg $ workers $ cache_dir $ warm_kits $ access_log))

(* [client STATS] pretty-printing: the daemon's flat counter lines folded
   into an aligned per-verb table (counts, errors, latency quantiles) plus
   a cache summary. [--raw] keeps the wire lines for scripts and CI greps. *)
let render_stats (payload : string list) =
  let kv =
    List.filter_map
      (fun line ->
        match String.index_opt line ' ' with
        | Some i ->
            Some
              ( String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1) )
        | None -> None)
      payload
  in
  let find k = List.assoc_opt k kv in
  let get k = Option.value ~default:"0" (find k) in
  (match (find "uptime_seconds", find "requests", find "errors") with
  | Some up, Some total, Some errs ->
      Fmt.pr "daemon up %s s | %s request(s), %s error(s)@." up total errs
  | _ -> ());
  let verbs =
    List.filter_map
      (fun (k, _) ->
        if String.length k > 9 && String.sub k 0 9 = "requests_" then
          Some (String.sub k 9 (String.length k - 9))
        else None)
      kv
  in
  if verbs <> [] then begin
    Fmt.pr "@.%-10s %10s %8s %10s %10s %10s@." "verb" "count" "errors"
      "p50(us)" "p95(us)" "p99(us)";
    List.iter
      (fun v ->
        let p50, p95, p99 =
          match find ("latency_" ^ v ^ "_us") with
          | Some s -> (
              match String.split_on_char ' ' s with
              | [ "count"; _; "p50"; a; "p95"; b; "p99"; c ] -> (a, b, c)
              | _ -> ("-", "-", "-"))
          | None -> ("-", "-", "-")
        in
        Fmt.pr "%-10s %10s %8s %10s %10s %10s@." v
          (get ("requests_" ^ v))
          (get ("errors_" ^ v))
          p50 p95 p99)
      verbs
  end;
  Fmt.pr "@.cache: %s hit(s), %s miss(es), %s write(s), %s corrupt (dir %s)@."
    (get "cache_hits") (get "cache_misses") (get "cache_writes")
    (get "cache_corrupt")
    (Option.value ~default:"-" (find "cache_dir"))

let client_cmd =
  let words =
    Arg.(value & pos_all string [] & info [] ~docv:"WORD"
           ~doc:"Request words, e.g. $(b,GENERATE neon-f32 8x12) or \
                 $(b,STATS).")
  in
  let raw =
    Arg.(value & flag & info [ "raw" ]
           ~doc:"Print the daemon's response lines verbatim ($(b,STATS) is \
                 otherwise rendered as a table).")
  in
  let run socket raw words =
    if words = [] then
      `Error (true, "missing request (e.g. ukrgen client PING)")
    else
      let verb = String.uppercase_ascii (List.hd words) in
      match Serve.Client.request ~socket (String.concat " " words) with
      | status, payload ->
          if (not raw) && verb = "STATS" && Serve.Client.ok status then begin
            Fmt.pr "%s@." status;
            render_stats payload
          end
          else begin
            Fmt.pr "%s@." status;
            List.iter (fun l -> Fmt.pr "%s@." l) payload
          end;
          if Serve.Client.ok status then `Ok ()
          else `Error (false, "the daemon reported an error")
      | exception Unix.Unix_error (e, _, _) ->
          `Error
            (false,
             Fmt.str "no daemon at %s: %s (start one with ukrgen serve)"
               socket (Unix.error_message e))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one line-protocol request to a running $(b,ukrgen serve) \
             daemon and print the response.")
    Term.(ret (const run $ socket_arg $ raw $ words))

let () =
  (* UKRGEN_VERBOSE=1 traces every scheduling primitive application *)
  if Sys.getenv_opt "UKRGEN_VERBOSE" <> None then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.Src.set_level Exo_sched.Common.src (Some Logs.Debug)
  end;
  let info =
    Cmd.info "ukrgen" ~version:"1.0.0"
      ~doc:"Exo-style GEMM micro-kernel generator (CGO'24 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; family_cmd; variants_cmd; solo_cmd; gemm_cmd; verify_cmd;
            lint_cmd; tune_cmd; report_cmd; trace_cmd; explain_cmd; run_cmd;
            native_cmd; cache_cmd; serve_cmd; client_cmd;
          ]))
