(* The micro-kernel generator: the Section III step-by-step pipeline,
   edge-case family, retargetings, and the central equivalence property —
   every generated kernel computes exactly what the reference does. *)

open Exo_ir
module B = Exo_interp.Buffer
module I = Exo_interp.Interp
module Family = Exo_ukr_gen.Family
module Steps = Exo_ukr_gen.Steps
module Kits = Exo_ukr_gen.Kits
module Source = Exo_ukr_gen.Source

(* Run reference vs generated on the same pseudo-random data. *)
let equivalent ?(kit = Kits.neon_f32) ~mr ~nr ~kc (p : Ir.proc) : bool =
  let dt = kit.Kits.dt in
  let st = Random.State.make [| mr; nr; kc |] in
  let mk dims =
    let b = B.create ~init:0.0 dt dims in
    B.fill b (fun _ -> float_of_int (Random.State.int st 9 - 4));
    b
  in
  let ac = mk [ kc; mr ] and bc = mk [ kc; nr ] and c1 = mk [ nr; mr ] in
  let c2 = B.copy c1 in
  let one = B.of_array dt [ 1 ] [| 1.0 |] in
  I.run (Source.ukernel_ref_simple ~dt ())
    [ I.VInt mr; I.VInt nr; I.VInt kc; I.VBuf one; I.VBuf ac; I.VBuf bc; I.VBuf one; I.VBuf c1 ];
  I.run p [ I.VInt kc; I.VBuf one; I.VBuf ac; I.VBuf bc; I.VBuf one; I.VBuf c2 ];
  B.equal c1 c2

(* --- Section III steps ------------------------------------------------ *)

let trace = lazy (Steps.packed ~kit:Kits.neon_f32 ~mr:8 ~nr:12)

let test_steps_count_and_figures () =
  let tr = Lazy.force trace in
  Alcotest.(check int) "seven recorded steps" 7 (List.length tr);
  let figures = List.filter_map (fun (s : Steps.step) -> s.Steps.figure) tr in
  Alcotest.(check (list string)) "figures covered"
    [ "Fig. 5"; "Fig. 6"; "Fig. 7"; "Fig. 8"; "Fig. 9"; "Fig. 10"; "Fig. 11" ]
    figures

let test_every_step_is_wellformed () =
  List.iter
    (fun (s : Steps.step) -> Exo_check.Wellformed.check_proc s.Steps.proc)
    (Lazy.force trace)

let test_every_step_preserves_semantics () =
  (* the heart of the reproduction: each intermediate program of Section III
     computes exactly the reference result *)
  List.iteri
    (fun i (s : Steps.step) ->
      if i > 0 (* step 0 has the unspecialized signature *) then
        Alcotest.(check bool)
          (Fmt.str "step %d (%s) equivalent" i s.Steps.title)
          true
          (equivalent ~mr:8 ~nr:12 ~kc:6 s.Steps.proc))
    (Lazy.force trace)

let test_v1_matches_fig6 () =
  let v1 = (List.nth (Lazy.force trace) 1).Steps.proc in
  Alcotest.(check string) "renamed" "uk_8x12" v1.Ir.p_name;
  Alcotest.(check int) "MR and NR gone" 6 (List.length v1.Ir.p_args)

let test_v6_structure_matches_fig11 () =
  let v6 = Steps.final (Lazy.force trace) in
  let module P = Exo_pattern.Pattern in
  (* Fig. 11: 5 unrolled load statements inside the k loop plus the looped
     C-tile load, a 3-deep compute nest of fmla, and the C epilogue *)
  Alcotest.(check int) "5 unrolled + 1 looped load statements" (5 + 1)
    (P.count v6.Ir.p_body "neon_vld_4xf32(_)");
  Alcotest.(check int) "one C store site" 1 (P.count v6.Ir.p_body "neon_vst_4xf32(_)");
  Alcotest.(check int) "one fmla site" 1 (P.count v6.Ir.p_body "neon_vfmla_4xf32_4xf32(_)");
  Alcotest.(check int) "jt/it/jtt compute nest intact" 1 (P.count v6.Ir.p_body "jt")

let test_golden_v6_text () =
  (* golden: the final kernel pretty-prints to the pinned Exo-style text *)
  let v6 = Steps.final (Lazy.force trace) in
  let got = Pp.proc_to_string v6 in
  let expected =
    "@proc\n\
     def uk_8x12(KC: size, alpha: f32[1] @ DRAM, Ac: f32[KC, 8] @ DRAM, Bc: f32[KC, 12] @ DRAM, beta: f32[1] @ DRAM, C: f32[12, 8] @ DRAM):\n\
    \    C_reg: f32[12, 2, 4] @ Neon\n\
    \    for s0 in seq(0, 12):\n\
    \        for s1o in seq(0, 2):\n\
    \            neon_vld_4xf32(C_reg[s0, s1o, 0:4], C[s0, 4 * s1o:4 * s1o + 4])\n\
    \    A_reg: f32[2, 4] @ Neon\n\
    \    B_reg: f32[3, 4] @ Neon\n\
    \    for k in seq(0, KC):\n\
    \        neon_vld_4xf32(A_reg[0, 0:4], Ac[k, 0:4])\n\
    \        neon_vld_4xf32(A_reg[1, 0:4], Ac[k, 4:8])\n\
    \        neon_vld_4xf32(B_reg[0, 0:4], Bc[k, 0:4])\n\
    \        neon_vld_4xf32(B_reg[1, 0:4], Bc[k, 4:8])\n\
    \        neon_vld_4xf32(B_reg[2, 0:4], Bc[k, 8:12])\n\
    \        for jt in seq(0, 3):\n\
    \            for it in seq(0, 2):\n\
    \                for jtt in seq(0, 4):\n\
    \                    neon_vfmla_4xf32_4xf32(C_reg[4 * jt + jtt, it, 0:4], A_reg[it, 0:4], B_reg[jt, 0:4], jtt)\n\
    \    for s0 in seq(0, 12):\n\
    \        for s1o in seq(0, 2):\n\
    \            neon_vst_4xf32(C[s0, 4 * s1o:4 * s1o + 4], C_reg[s0, s1o, 0:4])"
  in
  Alcotest.(check string) "golden Section III result" expected got

let test_golden_v2_text () =
  (* Fig. 7: after the two divide_loops *)
  let v2 = (List.nth (Lazy.force trace) 2).Steps.proc in
  let expected =
    "@proc\n\
     def uk_8x12(KC: size, alpha: f32[1] @ DRAM, Ac: f32[KC, 8] @ DRAM, Bc: f32[KC, 12] @ DRAM, beta: f32[1] @ DRAM, C: f32[12, 8] @ DRAM):\n\
    \    for k in seq(0, KC):\n\
    \        for jt in seq(0, 3):\n\
    \            for jtt in seq(0, 4):\n\
    \                for it in seq(0, 2):\n\
    \                    for itt in seq(0, 4):\n\
    \                        C[4 * jt + jtt, 4 * it + itt] += Ac[k, 4 * it + itt] * Bc[k, 4 * jt + jtt]"
  in
  Alcotest.(check string) "golden Fig. 7" expected (Pp.proc_to_string v2)

let test_golden_v4_loads () =
  (* Fig. 9: the staged operand loads inside the k loop *)
  let v4 = (List.nth (Lazy.force trace) 4).Steps.proc in
  let txt = Pp.proc_to_string v4 in
  let contains needle =
    let nh = String.length txt and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub txt i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "A_reg declared at top" true (contains "A_reg: f32[2, 4] @ Neon");
  Alcotest.(check bool) "B_reg declared at top" true (contains "B_reg: f32[3, 4] @ Neon");
  Alcotest.(check bool) "A load vectorized" true
    (contains "neon_vld_4xf32(A_reg[it, 0:4], Ac[k, 4 * it:4 * it + 4])");
  Alcotest.(check bool) "B load vectorized" true
    (contains "neon_vld_4xf32(B_reg[jt, 0:4], Bc[k, 4 * jt:4 * jt + 4])")

(* --- family ----------------------------------------------------------- *)

let test_paper_family_styles () =
  let fam = Family.paper_family () in
  let styles = List.map (fun (k : Family.kernel) -> (k.Family.mr, k.Family.nr, k.Family.style)) fam in
  List.iter
    (fun (mr, _, st) ->
      if mr >= 4 then Alcotest.(check bool) (Fmt.str "mr=%d packed" mr) true (st = Family.Packed)
      else Alcotest.(check bool) "mr=1 row" true (st = Family.Row))
    styles

let test_paper_family_equivalence () =
  List.iter
    (fun (k : Family.kernel) ->
      Alcotest.(check bool)
        (Fmt.str "%dx%d equivalent" k.Family.mr k.Family.nr)
        true
        (equivalent ~mr:k.Family.mr ~nr:k.Family.nr ~kc:7 k.Family.proc))
    (Family.paper_family ())

let test_family_styles_dispatch () =
  let style mr nr = (Family.generate ~mr ~nr ()).Family.style in
  Alcotest.(check bool) "8x12 packed" true (style 8 12 = Family.Packed);
  Alcotest.(check bool) "8x6 packed-bcast" true (style 8 6 = Family.PackedBcast);
  Alcotest.(check bool) "1x8 row" true (style 1 8 = Family.Row);
  Alcotest.(check bool) "3x5 scalar" true (style 3 5 = Family.Scalar);
  Alcotest.(check bool) "2x8 scalar" true (style 2 8 = Family.Scalar)

let test_retargets_equivalent () =
  List.iter
    (fun (kit, mr, nr) ->
      let k = Family.generate ~kit ~mr ~nr () in
      Alcotest.(check bool)
        (Fmt.str "%s %dx%d" kit.Kits.name mr nr)
        true
        (equivalent ~kit ~mr ~nr ~kc:5 k.Family.proc))
    [
      (Kits.avx512_f32, 16, 4);
      (Kits.avx512_f32, 32, 6);
      (Kits.avx2_f32, 16, 6);
      (Kits.avx2_f32, 8, 4);
      (Kits.rvv_f32, 8, 12);
      (Kits.rvv_f32, 1, 8);
      (Kits.neon_f16, 8, 16);
      (Kits.neon_f16, 16, 8);
      (Kits.neon_i32, 8, 12);
      (Kits.neon_i32, 1, 8);
    ]

let test_avx512_uses_broadcast () =
  let k = Family.generate ~kit:Kits.avx512_f32 ~mr:16 ~nr:4 () in
  let module P = Exo_pattern.Pattern in
  Alcotest.(check bool) "set1 present" true
    (P.count k.Family.proc.Ir.p_body "mm512_set1_16xf32(_)" > 0);
  Alcotest.(check bool) "fmadd present" true
    (P.count k.Family.proc.Ir.p_body "mm512_fmadd_16xf32(_)" > 0)

let test_rvv_uses_scalar_fma () =
  let k = Family.generate ~kit:Kits.rvv_f32 ~mr:8 ~nr:12 () in
  let module P = Exo_pattern.Pattern in
  Alcotest.(check bool) "vfmacc.vf present" true
    (P.count k.Family.proc.Ir.p_body "rvv_vfmacc_vf_r_4xf32(_)" > 0)

let test_invalid_shape_rejected () =
  Alcotest.(check bool) "0x4 rejected" true
    (try
       ignore (Family.generate ~mr:0 ~nr:4 ());
       false
     with Invalid_argument _ -> true)

(* qcheck: random shapes and depths are always equivalent *)
let prop_family_equivalence =
  QCheck2.Test.make ~name:"generated kernels ≡ reference (random shapes)" ~count:40
    QCheck2.Gen.(triple (int_range 1 13) (int_range 1 14) (int_range 1 9))
    (fun (mr, nr, kc) ->
      let k = Family.generate ~mr ~nr () in
      equivalent ~mr ~nr ~kc k.Family.proc)

let prop_f16_family_equivalence =
  QCheck2.Test.make ~name:"f16 kernels ≡ f16 reference (random shapes)" ~count:15
    QCheck2.Gen.(pair (int_range 1 3) (int_range 1 3))
    (fun (a, b) ->
      let mr = 8 * a and nr = 8 * b in
      let k = Family.generate ~kit:Kits.neon_f16 ~mr ~nr () in
      equivalent ~kit:Kits.neon_f16 ~mr ~nr ~kc:5 k.Family.proc)

(* --- variants: full alpha/beta, beta = 0, non-packed A ------------------ *)

let test_nopack_source_wellformed () =
  Exo_check.Wellformed.check_proc (Source.ukernel_ref_nopack ())

let test_packed_full_alpha_beta () =
  let mr = 8 and nr = 12 and kc = 6 in
  let p = Exo_ukr_gen.Variants.packed_full ~mr ~nr () in
  List.iter
    (fun (alpha, beta) ->
      let st = Random.State.make [| 55 |] in
      let mk dims =
        let b = B.create ~init:0.0 Dtype.F32 dims in
        B.fill b (fun _ -> float_of_int (Random.State.int st 7 - 3));
        b
      in
      let ac = mk [ kc; mr ] and bc = mk [ kc; nr ] and c1 = mk [ nr; mr ] in
      let c2 = B.copy c1 in
      let al = B.of_array Dtype.F32 [ 1 ] [| alpha |] in
      let be = B.of_array Dtype.F32 [ 1 ] [| beta |] in
      I.run (Source.ukernel_ref ())
        [ I.VInt mr; I.VInt nr; I.VInt kc; I.VBuf al; I.VBuf ac; I.VBuf bc; I.VBuf be; I.VBuf c1 ];
      I.run p [ I.VInt kc; I.VBuf al; I.VBuf ac; I.VBuf bc; I.VBuf be; I.VBuf c2 ];
      Alcotest.(check bool)
        (Fmt.str "full kernel, alpha=%g beta=%g" alpha beta)
        true (B.equal c1 c2))
    [ (1.0, 1.0); (2.0, 0.5); (0.0, 1.0); (1.0, 0.0); (-1.0, 2.0); (0.25, -3.0) ]

let test_packed_beta0 () =
  let mr = 8 and nr = 12 and kc = 6 in
  let p = Exo_ukr_gen.Variants.packed_beta0 ~mr ~nr () in
  let st = Random.State.make [| 56 |] in
  let mk dims =
    let b = B.create ~init:0.0 Dtype.F32 dims in
    B.fill b (fun _ -> float_of_int (Random.State.int st 7 - 3));
    b
  in
  let ac = mk [ kc; mr ] and bc = mk [ kc; nr ] in
  let c1 = mk [ nr; mr ] in
  (* NaN-initialized output: proves the kernel never reads C *)
  let c2 = B.create Dtype.F32 [ nr; mr ] in
  I.run (Source.ukernel_ref_beta0 ())
    [ I.VInt mr; I.VInt nr; I.VInt kc; I.VBuf ac; I.VBuf bc; I.VBuf c1 ];
  I.run p [ I.VInt kc; I.VBuf ac; I.VBuf bc; I.VBuf c2 ];
  Alcotest.(check bool) "beta0 kernel, C never read" true (B.equal c1 c2)

let test_packed_beta0_census () =
  let t = Exo_sim.Trace.of_proc (Exo_ukr_gen.Variants.packed_beta0 ~mr:8 ~nr:12 ()) in
  Alcotest.(check int) "no prologue loads (C not read)" 0
    t.Exo_sim.Trace.prologue.Exo_sim.Trace.load;
  Alcotest.(check int) "24 register zeroes instead" 24
    t.Exo_sim.Trace.prologue.Exo_sim.Trace.arith

let test_nopack_equivalence () =
  List.iter
    (fun (mr, nr) ->
      let kc = 5 in
      let p = Exo_ukr_gen.Variants.nopack ~mr ~nr () in
      let st = Random.State.make [| mr; nr; 57 |] in
      let mk dims =
        let b = B.create ~init:0.0 Dtype.F32 dims in
        B.fill b (fun _ -> float_of_int (Random.State.int st 7 - 3));
        b
      in
      let a = mk [ mr; kc ] and bc = mk [ kc; nr ] and c1 = mk [ mr; nr ] in
      let c2 = B.copy c1 in
      I.run (Source.ukernel_ref_nopack ())
        [ I.VInt mr; I.VInt nr; I.VInt kc; I.VBuf a; I.VBuf bc; I.VBuf c1 ];
      I.run p [ I.VInt kc; I.VBuf a; I.VBuf bc; I.VBuf c2 ];
      Alcotest.(check bool) (Fmt.str "nopack %dx%d" mr nr) true (B.equal c1 c2))
    [ (8, 12); (6, 12); (3, 8); (1, 4) ]

let test_stage_mem_load_false_rejected_without_coverage () =
  (* staging the k-nest alone with ~load:false must fail: reductions do not
     overwrite the window *)
  let module Sched = Exo_sched.Sched in
  let p = Source.ukernel_ref_simple () in
  let p = Sched.partial_eval p [ ("MR", 8); ("NR", 12) ] in
  Alcotest.(check bool) "uncovered ~load:false rejected" true
    (try
       ignore (Sched.stage_mem ~load:false p "for k in _: _" "C[0:12, 0:8]" "C_reg");
       false
     with Sched.Sched_error _ -> true)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_family_equivalence; prop_f16_family_equivalence ]
  in
  Alcotest.run "ukrgen"
    [
      ( "steps",
        [
          Alcotest.test_case "figures covered" `Quick test_steps_count_and_figures;
          Alcotest.test_case "all steps well-formed" `Quick test_every_step_is_wellformed;
          Alcotest.test_case "all steps equivalent" `Quick test_every_step_preserves_semantics;
          Alcotest.test_case "v1 = Fig. 6" `Quick test_v1_matches_fig6;
          Alcotest.test_case "v6 structure = Fig. 11" `Quick test_v6_structure_matches_fig11;
          Alcotest.test_case "v6 golden text" `Quick test_golden_v6_text;
          Alcotest.test_case "v2 golden text" `Quick test_golden_v2_text;
          Alcotest.test_case "v4 staged loads" `Quick test_golden_v4_loads;
        ] );
      ( "family",
        [
          Alcotest.test_case "paper shapes styles" `Quick test_paper_family_styles;
          Alcotest.test_case "paper family equivalent" `Quick test_paper_family_equivalence;
          Alcotest.test_case "style dispatch" `Quick test_family_styles_dispatch;
          Alcotest.test_case "retargets equivalent" `Quick test_retargets_equivalent;
          Alcotest.test_case "avx512 broadcast path" `Quick test_avx512_uses_broadcast;
          Alcotest.test_case "rvv scalar-fma path" `Quick test_rvv_uses_scalar_fma;
          Alcotest.test_case "invalid shape" `Quick test_invalid_shape_rejected;
        ]
        @ props );
      ( "variants",
        [
          Alcotest.test_case "nopack source" `Quick test_nopack_source_wellformed;
          Alcotest.test_case "full alpha/beta" `Quick test_packed_full_alpha_beta;
          Alcotest.test_case "beta0" `Quick test_packed_beta0;
          Alcotest.test_case "beta0 census" `Quick test_packed_beta0_census;
          Alcotest.test_case "nopack equivalence" `Quick test_nopack_equivalence;
          Alcotest.test_case "load:false coverage" `Quick
            test_stage_mem_load_false_rejected_without_coverage;
        ] );
    ]
