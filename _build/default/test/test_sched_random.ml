(* Property tests of the scheduling primitives on *random* programs (not
   just GEMM kernels): generate small loop-nest procedures, apply a random
   applicable transformation, and check interpreter equivalence on random
   inputs. Primitives may legitimately reject a request (Sched_error); what
   they must never do is accept one and change the program's meaning. *)

open Exo_ir
open Ir
open Builder
module Sched = Exo_sched.Sched
module B = Exo_interp.Buffer
module I = Exo_interp.Interp

(* --- random program generator ------------------------------------------- *)

(* A generated proc has two tensor arguments [src] (read-only) and [dst]
   (read-write), both rank 2 with fixed extents, and a nest of loops over
   constant ranges containing assigns/reduces with affine subscripts built
   from the loop variables. *)

let dim0 = 6
let dim1 = 8

type gctx = { src : Sym.t; dst : Sym.t; loops : (Sym.t * int) list }

let gen_index ctx ~(bound : int) : expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  (* an in-range affine combination: pick a loop var whose extent divides
     the bound, or a constant *)
  let candidates =
    List.filter (fun (_, ext) -> ext <= bound) ctx.loops
    |> List.map (fun (v, ext) ->
           if ext = bound then return (Var v)
           else
             (* v + const, staying within bound *)
             map (fun c -> Binop (Add, Var v, Int c)) (int_range 0 (bound - ext)))
  in
  oneof (map (fun c -> Int c) (int_range 0 (bound - 1)) :: candidates)

let gen_rhs ctx : expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* i0 = gen_index ctx ~bound:dim0 in
  let* i1 = gen_index ctx ~bound:dim1 in
  let read = Read (ctx.src, [ i0; i1 ]) in
  oneofl
    [
      read;
      Binop (Add, read, Float 1.0);
      Binop (Mul, read, Float 2.0);
      Float 3.0;
    ]

let gen_leaf ctx : stmt QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* i0 = gen_index ctx ~bound:dim0 in
  let* i1 = gen_index ctx ~bound:dim1 in
  let* e = gen_rhs ctx in
  oneofl [ SAssign (ctx.dst, [ i0; i1 ], e); SReduce (ctx.dst, [ i0; i1 ], e) ]

let loop_names = [| "i"; "j"; "p"; "q" |]

let rec gen_body ctx ~(depth : int) : stmt list QCheck2.Gen.t =
  let open QCheck2.Gen in
  if depth = 0 then map (fun s -> [ s ]) (gen_leaf ctx)
  else
    let* n_stmts = int_range 1 2 in
    list_repeat n_stmts
      (let* make_loop = bool in
       if make_loop then
         let* ext = oneofl [ 2; 3; 4; 6 ] in
         let v = Sym.fresh loop_names.(depth mod Array.length loop_names) in
         let ctx' = { ctx with loops = (v, ext) :: ctx.loops } in
         let* inner = gen_body ctx' ~depth:(depth - 1) in
         return (SFor (v, Int 0, Int ext, inner))
       else gen_leaf ctx)

let gen_proc : proc QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* depth = int_range 1 3 in
  let src = Sym.fresh "src" and dst = Sym.fresh "dst" in
  let ctx = { src; dst; loops = [] } in
  let* body = gen_body ctx ~depth in
  let p =
    mk_proc ~name:"rand"
      ~args:
        [
          tensor_arg src Dtype.F32 [ Int dim0; Int dim1 ];
          tensor_arg dst Dtype.F32 [ Int dim0; Int dim1 ];
        ]
      body
  in
  (* the generator never produces scope errors, but make it fail loudly *)
  Exo_check.Wellformed.check_proc p;
  return p

(* --- equivalence oracle --------------------------------------------------- *)

let run_proc (p : proc) ~(seed : int) : B.t =
  let st = Random.State.make [| seed |] in
  let mk () =
    let b = B.create ~init:0.0 Dtype.F32 [ dim0; dim1 ] in
    B.fill b (fun _ -> float_of_int (Random.State.int st 9 - 4));
    b
  in
  let src = mk () and dst = mk () in
  I.run p [ I.VBuf src; I.VBuf dst ];
  dst

let equivalent p q =
  List.for_all (fun seed -> B.equal (run_proc p ~seed) (run_proc q ~seed)) [ 1; 2; 3 ]

(* A transformation attempt: Ok p' (accepted — must be equivalent) or
   rejected (fine). *)
let preserves (xform : proc -> proc) (p : proc) : bool =
  match xform p with
  | p' -> equivalent p p'
  | exception Sched.Sched_error _ -> true

(* names of loops present, outermost-first *)
let loop_names_of (p : proc) : string list =
  let acc = ref [] in
  iter_stmts
    (function SFor (v, _, _, _) -> acc := Sym.name v :: !acc | _ -> ())
    p.p_body;
  List.sort_uniq compare !acc

let pick_loop (p : proc) (salt : int) : string option =
  match loop_names_of p with
  | [] -> None
  | l -> Some (List.nth l (abs salt mod List.length l))

let mk_prop name xform =
  QCheck2.Test.make ~name ~count:120
    QCheck2.Gen.(pair gen_proc (int_range 0 1000))
    (fun (p, salt) ->
      match pick_loop p salt with
      | None -> true
      | Some v -> preserves (xform v salt) p)

let prop_divide =
  mk_prop "divide_loop preserves semantics on random programs" (fun v salt p ->
      let q = 2 + (salt mod 3) in
      let tail = if salt mod 2 = 0 then Sched.Perfect else Sched.Cut in
      Sched.divide_loop p v q (v ^ "t", v ^ "tt") ~tail)

let prop_unroll =
  mk_prop "unroll_loop preserves semantics on random programs" (fun v _ p ->
      Sched.unroll_loop p v)

let prop_reorder =
  mk_prop "reorder_loops preserves semantics on random programs" (fun v salt p ->
      match pick_loop p (salt + 1) with
      | Some w when w <> v -> Sched.reorder_loops p (v ^ " " ^ w)
      | _ -> Sched.reorder_loops p (v ^ " " ^ v))

let prop_remove =
  mk_prop "remove_loop preserves semantics on random programs" (fun v _ p ->
      Sched.remove_loop p v)

let prop_fission =
  QCheck2.Test.make ~name:"autofission preserves semantics on random programs"
    ~count:120
    QCheck2.Gen.(pair gen_proc (int_range 0 1000))
    (fun (p, salt) ->
      let xform p =
        let pat = if salt mod 2 = 0 then "dst[_] = _" else "dst[_] += _" in
        let gap = if salt mod 4 < 2 then Sched.After pat else Sched.Before pat in
        Sched.autofission p ~gap ~n_lifts:(1 + (salt mod 2))
      in
      preserves xform p)

let prop_fuse =
  mk_prop "fuse_loops preserves semantics on random programs" (fun v _ p ->
      Sched.fuse_loops p v)

let prop_stage_point =
  QCheck2.Test.make ~name:"point stage_mem preserves semantics on random programs"
    ~count:120 gen_proc
    (fun p ->
      (* stage the dst cell of the first write *)
      let target = ref None in
      iter_stmts
        (function
          | (SAssign (b, idx, _) | SReduce (b, idx, _)) when !target = None ->
              if Sym.name b = "dst" then target := Some idx
          | _ -> ())
        p.p_body;
      match !target with
      | None -> true
      | Some _ ->
          let xform p =
            (* window string: we can't render loop-var names reliably, so
               stage the full dst window around the first statement *)
            Sched.stage_mem p "_[_] = _"
              (Fmt.str "dst[0:%d, 0:%d]" dim0 dim1)
              "d_reg"
          in
          preserves xform p)

let () =
  Alcotest.run "sched-random"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_divide; prop_unroll; prop_reorder; prop_remove; prop_fission;
            prop_fuse; prop_stage_point;
          ] );
    ]
