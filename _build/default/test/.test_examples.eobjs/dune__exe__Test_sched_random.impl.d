test/test_sched_random.ml: Alcotest Array Builder Dtype Exo_check Exo_interp Exo_ir Exo_sched Fmt Ir List QCheck2 QCheck_alcotest Random Sym
