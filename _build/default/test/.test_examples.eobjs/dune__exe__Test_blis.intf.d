test/test_blis.mli:
