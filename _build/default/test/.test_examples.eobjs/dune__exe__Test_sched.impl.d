test/test_sched.ml: Alcotest Array Builder Dtype Exo_interp Exo_ir Exo_isa Exo_pattern Exo_sched Exo_ukr_gen Ir List Mem Random Sym
