test/test_pattern.ml: Affine Alcotest Builder Cursor Dtype Exo_ir Exo_isa Exo_pattern Fmt Ir List Sym
