test/test_sched_random.mli:
