test/test_check.ml: Alcotest Builder Dtype Exo_check Exo_ir Exo_isa Exo_ukr_gen Ir List Result Sym
