test/test_sim.ml: Alcotest Dtype Exo_blis Exo_ir Exo_isa Exo_sim Exo_ukr_gen Float Fmt List
