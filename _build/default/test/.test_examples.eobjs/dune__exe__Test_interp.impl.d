test/test_interp.ml: Alcotest Array Builder Dtype Exo_interp Exo_ir Exo_isa Float Fmt Int32 Ir List QCheck2 QCheck_alcotest Sym
