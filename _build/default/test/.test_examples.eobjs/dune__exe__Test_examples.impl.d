test/test_examples.ml: Alcotest Filename Fmt List String Sys
