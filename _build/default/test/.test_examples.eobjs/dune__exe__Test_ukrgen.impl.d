test/test_ukrgen.ml: Alcotest Dtype Exo_check Exo_interp Exo_ir Exo_pattern Exo_sched Exo_sim Exo_ukr_gen Fmt Ir Lazy List Pp QCheck2 QCheck_alcotest Random String
