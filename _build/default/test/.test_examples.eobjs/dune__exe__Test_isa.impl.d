test/test_isa.ml: Alcotest Array Dtype Exo_check Exo_interp Exo_ir Exo_isa Filename Fmt Ir List Option String Sym
