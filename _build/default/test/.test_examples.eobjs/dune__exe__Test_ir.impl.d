test/test_ir.ml: Affine Alcotest Alpha Array Builder Cursor Dtype Exo_ir Exo_ukr_gen Fmt Ir List Pp QCheck2 QCheck_alcotest Simplify String Subst Sym
