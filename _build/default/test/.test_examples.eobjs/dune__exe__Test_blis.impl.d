test/test_blis.ml: Alcotest Array Exo_blis Exo_ir Exo_isa Exo_ukr_gen Fmt List QCheck2 QCheck_alcotest Random
