test/test_ukrgen.mli:
