test/test_workloads.ml: Alcotest Exo_blis Exo_workloads Float Fmt List QCheck2 QCheck_alcotest Random
