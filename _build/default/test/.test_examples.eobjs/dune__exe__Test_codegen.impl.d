test/test_codegen.ml: Alcotest Builder Dtype Exo_codegen Exo_ir Exo_isa Exo_ukr_gen Filename Fmt Ir String Sym Sys
