(* Pattern mini-language and the expression/window parser. *)

open Exo_ir
open Ir
open Builder
module P = Exo_pattern.Pattern
module EP = Exo_pattern.Expr_parse

let body () =
  let k = Sym.fresh "k" and j = Sym.fresh "j" and i = Sym.fresh "i" in
  let c = Sym.fresh "C" and a = Sym.fresh "Ac" and b = Sym.fresh "Bc" in
  let t = Sym.fresh "tmp" in
  ( (k, j, i, c, a, b, t),
    [
      alloc t Dtype.F32 [ int 4 ];
      loop k (int 0) (int 8)
        [
          loop j (int 0) (int 12)
            [
              loop i (int 0) (int 8)
                [
                  assign t [ md (var i) (int 4) ] (rd a [ var k; var i ]);
                  reduce c [ var j; var i ]
                    (mul (rd t [ md (var i) (int 4) ]) (rd b [ var k; var j ]));
                ];
            ];
        ];
    ] )

let test_loop_pattern () =
  let _, b = body () in
  Alcotest.(check int) "for j matches once" 1 (P.count b "for j in _: _");
  Alcotest.(check int) "bare name shorthand" 1 (P.count b "j");
  Alcotest.(check int) "wildcard loop matches 3" 3 (P.count b "for _ in _: _")

let test_assign_reduce_patterns () =
  let _, b = body () in
  Alcotest.(check int) "tmp assign" 1 (P.count b "tmp[_] = _");
  Alcotest.(check int) "C reduce" 1 (P.count b "C[_] += _");
  Alcotest.(check int) "wildcard reduce" 1 (P.count b "_[_] += _");
  Alcotest.(check int) "no C assign" 0 (P.count b "C[_] = _")

let test_alloc_call_patterns () =
  let _, b = body () in
  Alcotest.(check int) "alloc" 1 (P.count b "tmp : _");
  let vld = Exo_isa.Neon.vld_4xf32 in
  let b2 = b @ [ SCall (vld, []) ] (* arity is not the matcher's concern *) in
  Alcotest.(check int) "call by name" 1 (P.count b2 "neon_vld_4xf32(_)");
  Alcotest.(check int) "call wildcard" 1 (P.count b2 "_(_)")

let test_if_pattern () =
  let c = Sym.fresh "c" and t = Sym.fresh "t" in
  let b =
    [
      alloc t Dtype.F32 [ int 1 ];
      if_ (lt (rd t [ int 0 ]) (flt 1.0))
        [ assign t [ int 0 ] (flt 0.0) ]
        [ assign t [ int 0 ] (flt 1.0) ];
    ]
  in
  ignore c;
  Alcotest.(check int) "if matches" 1 (P.count b "if _: _");
  (* cursors reach into both branches *)
  Alcotest.(check int) "assigns in both branches found" 2 (P.count b "t[_] = _")

let test_occurrence_selector () =
  let i1 = Sym.fresh "x" and i2 = Sym.fresh "x" and t = Sym.fresh "t" in
  let b =
    [
      alloc t Dtype.F32 [ int 8 ];
      loop i1 (int 0) (int 4) [ assign t [ var i1 ] (flt 0.0) ];
      loop i2 (int 0) (int 4) [ assign t [ add (var i2) (int 4) ] (flt 1.0) ];
    ]
  in
  let c = P.find_first b "for x in _: _ #1" in
  match Cursor.get b c with
  | SFor (v, _, _, _) -> Alcotest.(check bool) "second x loop" true (Sym.equal v i2)
  | _ -> Alcotest.fail "expected a loop"

let test_occurrence_out_of_range () =
  let _, b = body () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (P.find b "for j in _: _ #3");
       false
     with P.Pattern_error _ -> true)

let test_no_match_error () =
  let _, b = body () in
  Alcotest.(check bool) "find_first raises on no match" true
    (try
       ignore (P.find_first b "for zz in _: _");
       false
     with P.Pattern_error _ -> true)

let test_parse_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Fmt.str "reject %S" s) true
        (try
           ignore (P.parse s);
           false
         with P.Pattern_error _ -> true))
    [ ""; "for in _: _"; "C[_] == _"; "#2"; "for i in _: _ #" ]

let test_program_order () =
  let _, b = body () in
  let cs = P.find b "for _ in _: _" in
  let names =
    List.map
      (fun c -> match Cursor.get b c with SFor (v, _, _, _) -> Sym.name v | _ -> "?")
      cs
  in
  Alcotest.(check (list string)) "outer first" [ "k"; "j"; "i" ] names

(* --- expression parser ---------------------------------------------- *)

let env_of l name = List.assoc_opt name l

let test_expr_parse_precedence () =
  let jt = Sym.fresh "jt" and jtt = Sym.fresh "jtt" in
  let env = env_of [ ("jt", jt); ("jtt", jtt) ] in
  let e = EP.expr ~env "4 * jt + jtt" in
  Alcotest.(check bool) "parsed as (4*jt)+jtt" true
    (Affine.expr_equal e (add (mul (int 4) (var jt)) (var jtt)) = Some true)

let test_expr_parse_parens_neg () =
  let x = Sym.fresh "x" in
  let env = env_of [ ("x", x) ] in
  let e = EP.expr ~env "-(x + 2) * 3" in
  Alcotest.(check bool) "unary minus binds the parenthesized group" true
    (Affine.expr_equal e (mul (neg (add (var x) (int 2))) (int 3)) = Some true)

let test_expr_parse_access () =
  let c = Sym.fresh "C" and i = Sym.fresh "i" in
  let env = env_of [ ("C", c); ("i", i) ] in
  match EP.point_access ~env "C[2 * i, 5]" with
  | b, [ _; Int 5 ] -> Alcotest.(check bool) "buffer resolved" true (Sym.equal b c)
  | _ -> Alcotest.fail "bad access parse"

let test_window_parse () =
  let c = Sym.fresh "C" and k = Sym.fresh "k" in
  let env = env_of [ ("C", c); ("k", k) ] in
  match EP.window ~env "C[k, 0:12]" with
  | b, [ Pt (Var k'); Iv (Int 0, Int 12) ] ->
      Alcotest.(check bool) "buf" true (Sym.equal b c);
      Alcotest.(check bool) "k resolved" true (Sym.equal k k')
  | _ -> Alcotest.fail "bad window parse"

let test_expr_parse_unknown_name () =
  Alcotest.(check bool) "unknown name raises" true
    (try
       ignore (EP.expr ~env:(fun _ -> None) "a + 1");
       false
     with EP.Parse_error _ -> true)

let test_expr_parse_trailing () =
  let x = Sym.fresh "x" in
  let env = env_of [ ("x", x) ] in
  Alcotest.(check bool) "trailing tokens raise" true
    (try
       ignore (EP.expr ~env "x + 1 )");
       false
     with EP.Parse_error _ -> true)

let () =
  Alcotest.run "pattern"
    [
      ( "patterns",
        [
          Alcotest.test_case "loop" `Quick test_loop_pattern;
          Alcotest.test_case "assign/reduce" `Quick test_assign_reduce_patterns;
          Alcotest.test_case "alloc/call" `Quick test_alloc_call_patterns;
          Alcotest.test_case "if" `Quick test_if_pattern;
          Alcotest.test_case "occurrence" `Quick test_occurrence_selector;
          Alcotest.test_case "occurrence out of range" `Quick test_occurrence_out_of_range;
          Alcotest.test_case "no match" `Quick test_no_match_error;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "program order" `Quick test_program_order;
        ] );
      ( "expr-parse",
        [
          Alcotest.test_case "precedence" `Quick test_expr_parse_precedence;
          Alcotest.test_case "parens/neg" `Quick test_expr_parse_parens_neg;
          Alcotest.test_case "access" `Quick test_expr_parse_access;
          Alcotest.test_case "window" `Quick test_window_parse;
          Alcotest.test_case "unknown name" `Quick test_expr_parse_unknown_name;
          Alcotest.test_case "trailing tokens" `Quick test_expr_parse_trailing;
        ] );
    ]
