(* ISA libraries: memory metadata, instruction definitions, machines. *)

open Exo_ir
module Mem = Exo_isa.Memories
module Mach = Exo_isa.Machine

let test_memory_lookup () =
  Alcotest.(check bool) "Neon registered" true (Mem.is_register_mem Exo_isa.Neon.mem);
  Alcotest.(check bool) "DRAM not a register mem" false (Mem.is_register_mem Exo_ir.Mem.dram)

let test_lanes () =
  Alcotest.(check int) "Neon f32 lanes" 4 (Mem.lanes_of Mem.neon Dtype.F32);
  Alcotest.(check int) "Neon f16 lanes" 8 (Mem.lanes_of Mem.neon Dtype.F16);
  Alcotest.(check int) "AVX512 f32 lanes" 16 (Mem.lanes_of Mem.avx512 Dtype.F32);
  Alcotest.(check int) "RVV f32 lanes" 4 (Mem.lanes_of Mem.rvv Dtype.F32)

let test_c_vec_types () =
  Alcotest.(check (option string)) "neon f32" (Some "float32x4_t")
    (Mem.neon.Mem.c_vec_type Dtype.F32);
  Alcotest.(check (option string)) "avx512 f32" (Some "__m512")
    (Mem.avx512.Mem.c_vec_type Dtype.F32)

let all_instrs = Exo_isa.Neon.all @ Exo_isa.Avx512.all @ Exo_isa.Rvv.all

let test_instr_wellformed () =
  (* instruction bodies are checked at construction; re-check here *)
  List.iter Exo_check.Wellformed.check_proc all_instrs;
  Alcotest.(check bool) "all instruction bodies typecheck" true true

let test_instr_annotations () =
  List.iter
    (fun (p : Ir.proc) ->
      match p.Ir.p_instr with
      | Some info ->
          Alcotest.(check bool)
            (p.Ir.p_name ^ " has a format") true
            (String.length info.Ir.ci_fmt > 0);
          Alcotest.(check bool)
            (p.Ir.p_name ^ " names a header") true
            (info.Ir.ci_includes <> [])
      | None -> Alcotest.fail (p.Ir.p_name ^ " lacks @instr"))
    all_instrs

let test_instr_unique_names () =
  let names = List.map (fun (p : Ir.proc) -> p.Ir.p_name) all_instrs in
  Alcotest.(check int) "no duplicate instruction names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_instr_format_holes_resolve () =
  (* every {hole} in a format names a parameter (possibly via _data) *)
  List.iter
    (fun (p : Ir.proc) ->
      let info = Option.get p.Ir.p_instr in
      let params = List.map (fun (a : Ir.arg) -> Sym.name a.Ir.a_name) p.Ir.p_args in
      let s = info.Ir.ci_fmt in
      let i = ref 0 in
      while !i < String.length s do
        (if s.[!i] = '{' then
           let j = String.index_from s !i '}' in
           let hole = String.sub s (!i + 1) (j - !i - 1) in
           let key =
             match Filename.chop_suffix_opt ~suffix:"_data" hole with
             | Some k -> k
             | None -> hole
           in
           Alcotest.(check bool)
             (Fmt.str "%s: hole {%s} resolves" p.Ir.p_name hole)
             true (List.mem key params);
           i := j);
        incr i
      done)
    all_instrs

(* fma semantics: run each FMA instruction's body through the interpreter
   and compare against the expected arithmetic *)
let run_fma (instr : Ir.proc) ~lanes ~dt ~lane_sel =
  let module B = Exo_interp.Buffer in
  let module I = Exo_interp.Interp in
  let dst = B.create ~init:1.0 dt [ lanes ] in
  let lhs = B.create ~init:0.0 dt [ lanes ] in
  let rhs = B.create ~init:0.0 dt [ lanes ] in
  B.fill lhs (fun i -> float_of_int (i.(0) + 1));
  B.fill rhs (fun i -> float_of_int ((2 * i.(0)) + 1));
  let args =
    List.map
      (fun (a : Ir.arg) ->
        match (Sym.name a.Ir.a_name, a.Ir.a_typ) with
        | "dst", _ -> I.VBuf dst
        | "lhs", _ -> I.VBuf lhs
        | ("rhs" | "s"), Ir.TTensor (_, [ Ir.Int 1 ]) ->
            I.VBuf (B.view rhs [ `Iv (0, 1) ])
        | "rhs", _ -> I.VBuf rhs
        | "s", _ -> I.VBuf (B.view rhs [ `Iv (0, 1) ])
        | "l", _ -> I.VInt lane_sel
        | _ -> Alcotest.fail "unexpected param"
      )
      instr.Ir.p_args
  in
  I.run instr args;
  dst

let test_fma_lane_semantics () =
  let dst = run_fma Exo_isa.Neon.vfmla_4xf32_4xf32 ~lanes:4 ~dt:Dtype.F32 ~lane_sel:2 in
  (* dst[i] = 1 + (i+1) * rhs[2] = 1 + (i+1)*5 *)
  for i = 0 to 3 do
    Alcotest.(check (float 0.0))
      (Fmt.str "lane %d" i)
      (1.0 +. (float_of_int (i + 1) *. 5.0))
      (Exo_interp.Buffer.get dst [| i |])
  done

let test_fma_vv_semantics () =
  let dst = run_fma Exo_isa.Neon.vfmadd_4xf32_4xf32 ~lanes:4 ~dt:Dtype.F32 ~lane_sel:0 in
  for i = 0 to 3 do
    Alcotest.(check (float 0.0))
      (Fmt.str "lane %d" i)
      (1.0 +. (float_of_int (i + 1) *. float_of_int ((2 * i) + 1)))
      (Exo_interp.Buffer.get dst [| i |])
  done

let test_fma_scalar_semantics () =
  let dst = run_fma Exo_isa.Neon.vfmacc_scalar_4xf32 ~lanes:4 ~dt:Dtype.F32 ~lane_sel:0 in
  (* dst[i] = 1 + s[0] * rhs[i] where s = rhs[0] = 1 *)
  for i = 0 to 3 do
    Alcotest.(check (float 0.0))
      (Fmt.str "lane %d" i)
      (1.0 +. (1.0 *. float_of_int ((2 * i) + 1)))
      (Exo_interp.Buffer.get dst [| i |])
  done

let test_lane_precondition_enforced () =
  Alcotest.(check bool) "lane 7 of 4 rejected at runtime" true
    (try
       ignore (run_fma Exo_isa.Neon.vfmla_4xf32_4xf32 ~lanes:4 ~dt:Dtype.F32 ~lane_sel:7);
       false
     with Exo_interp.Interp.Runtime_error _ -> true)

let test_machine_peaks () =
  Alcotest.(check (float 0.01)) "Carmel FP32 peak" 36.8
    (Mach.peak_gflops Mach.carmel Dtype.F32);
  Alcotest.(check (float 0.01)) "Carmel FP16 peak" 73.6
    (Mach.peak_gflops Mach.carmel_fp16 Dtype.F16);
  Alcotest.(check (float 0.01)) "AVX512 peak" 160.0
    (Mach.peak_gflops Mach.avx512_server Dtype.F32)

let test_machine_cache_geometry () =
  Alcotest.(check int) "carmel L1 64K" (64 * 1024) (Mach.cache_bytes Mach.carmel.Mach.l1);
  Alcotest.(check bool) "L1 < L2 < L3" true
    (Mach.cache_bytes Mach.carmel.Mach.l1 < Mach.cache_bytes Mach.carmel.Mach.l2
    && Mach.cache_bytes Mach.carmel.Mach.l2 < Mach.cache_bytes Mach.carmel.Mach.l3)

let () =
  Alcotest.run "isa"
    [
      ( "memories",
        [
          Alcotest.test_case "lookup" `Quick test_memory_lookup;
          Alcotest.test_case "lanes" `Quick test_lanes;
          Alcotest.test_case "c types" `Quick test_c_vec_types;
        ] );
      ( "instructions",
        [
          Alcotest.test_case "well-formed" `Quick test_instr_wellformed;
          Alcotest.test_case "annotations" `Quick test_instr_annotations;
          Alcotest.test_case "unique names" `Quick test_instr_unique_names;
          Alcotest.test_case "format holes" `Quick test_instr_format_holes_resolve;
          Alcotest.test_case "fma lane semantics" `Quick test_fma_lane_semantics;
          Alcotest.test_case "fma vv semantics" `Quick test_fma_vv_semantics;
          Alcotest.test_case "fma scalar semantics" `Quick test_fma_scalar_semantics;
          Alcotest.test_case "lane precondition" `Quick test_lane_precondition_enforced;
        ] );
      ( "machines",
        [
          Alcotest.test_case "peak gflops" `Quick test_machine_peaks;
          Alcotest.test_case "cache geometry" `Quick test_machine_cache_geometry;
        ] );
    ]
