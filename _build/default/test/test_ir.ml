(* IR core: symbols, affine normal form, simplification, substitution,
   alpha-equivalence, cursors, pretty-printing. *)

open Exo_ir
open Ir
open Builder

let check_expr_str msg expected e =
  Alcotest.(check string) msg expected (Pp.expr_to_string e)

(* --- Sym ------------------------------------------------------------ *)

let test_sym_fresh_distinct () =
  let a = Sym.fresh "x" and b = Sym.fresh "x" in
  Alcotest.(check bool) "same name" true (Sym.name a = Sym.name b);
  Alcotest.(check bool) "distinct ids" false (Sym.equal a b)

let test_sym_clone () =
  let a = Sym.fresh "k" in
  let b = Sym.clone a in
  Alcotest.(check string) "clone keeps name" "k" (Sym.name b);
  Alcotest.(check bool) "clone is fresh" false (Sym.equal a b)

let test_sym_collections () =
  let a = Sym.fresh "a" and b = Sym.fresh "b" in
  let s = Sym.Set.of_list [ a; b; a ] in
  Alcotest.(check int) "set dedups" 2 (Sym.Set.cardinal s);
  let m = Sym.Map.(add a 1 (add b 2 empty)) in
  Alcotest.(check int) "map lookup" 1 (Sym.Map.find a m)

(* --- Affine --------------------------------------------------------- *)

let test_affine_normalization () =
  let jt = Sym.fresh "jt" and jtt = Sym.fresh "jtt" in
  let e1 = add (mul (int 4) (var jt)) (var jtt) in
  let e2 = add (var jtt) (mul (var jt) (int 4)) in
  Alcotest.(check bool) "4*jt+jtt == jtt+jt*4" true (Affine.expr_equal e1 e2 = Some true)

let test_affine_cancellation () =
  let x = Sym.fresh "x" in
  let e = sub (add (var x) (int 3)) (var x) in
  match Affine.of_expr e with
  | Some a -> Alcotest.(check bool) "x+3-x = 3" true (Affine.equal a (Affine.const 3))
  | None -> Alcotest.fail "should be affine"

let test_affine_non_affine () =
  let x = Sym.fresh "x" and y = Sym.fresh "y" in
  Alcotest.(check bool) "x*y not affine" true (Affine.of_expr (mul (var x) (var y)) = None);
  Alcotest.(check bool) "x/2 not affine (x odd?)" true
    (Affine.of_expr (div (var x) (int 2)) = None)

let test_affine_exact_division () =
  let x = Sym.fresh "x" in
  let e = div (mul (int 4) (var x)) (int 2) in
  match Affine.of_expr e with
  | Some a -> Alcotest.(check bool) "4x/2 = 2x" true (Affine.equal a (Affine.var ~coeff:2 x))
  | None -> Alcotest.fail "4x/2 should normalize"

let test_affine_mod_const () =
  match Affine.of_expr (md (int 14) (int 4)) with
  | Some a -> Alcotest.(check bool) "14 mod 4 = 2" true (Affine.equal a (Affine.const 2))
  | None -> Alcotest.fail "const mod should fold"

let test_affine_roundtrip () =
  let x = Sym.fresh "x" and y = Sym.fresh "y" in
  let a = Affine.add (Affine.var ~coeff:3 x) (Affine.add (Affine.var ~coeff:(-2) y) (Affine.const 7)) in
  match Affine.of_expr (Affine.to_expr a) with
  | Some a' -> Alcotest.(check bool) "to_expr/of_expr roundtrip" true (Affine.equal a a')
  | None -> Alcotest.fail "roundtrip lost affineness"

(* qcheck: affine roundtrip on random affine expressions *)
let syms = Array.init 4 (fun i -> Sym.fresh (Fmt.str "v%d" i))

let gen_affine_expr : expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Int n) (int_range (-20) 20);
        map (fun i -> Var syms.(i)) (int_range 0 3);
      ]
  in
  let rec go n =
    if n = 0 then leaf
    else
      oneof
        [
          leaf;
          map2 (fun a b -> Binop (Add, a, b)) (go (n - 1)) (go (n - 1));
          map2 (fun a b -> Binop (Sub, a, b)) (go (n - 1)) (go (n - 1));
          map2 (fun k a -> Binop (Mul, Int k, a)) (int_range (-5) 5) (go (n - 1));
        ]
  in
  go 4

let prop_affine_roundtrip =
  QCheck2.Test.make ~name:"affine of_expr/to_expr is stable" ~count:200 gen_affine_expr
    (fun e ->
      match Affine.of_expr e with
      | None -> QCheck2.assume_fail ()
      | Some a -> (
          match Affine.of_expr (Affine.to_expr a) with
          | Some a' -> Affine.equal a a'
          | None -> false))

let prop_affine_add_homomorphic =
  QCheck2.Test.make ~name:"of_expr distributes over +" ~count:200
    QCheck2.Gen.(pair gen_affine_expr gen_affine_expr)
    (fun (e1, e2) ->
      match (Affine.of_expr e1, Affine.of_expr e2) with
      | Some a1, Some a2 -> (
          match Affine.of_expr (Binop (Add, e1, e2)) with
          | Some s -> Affine.equal s (Affine.add a1 a2)
          | None -> false)
      | _ -> QCheck2.assume_fail ())

(* --- Simplify ------------------------------------------------------- *)

let test_simplify_constants () =
  check_expr_str "folds" "14" (Simplify.expr (add (mul (int 3) (int 4)) (int 2)))

let test_simplify_affine () =
  let it = Sym.fresh "it" in
  check_expr_str "4*it + 0 -> 4*it" "4 * it" (Simplify.expr (add (mul (int 4) (var it)) (int 0)))

let test_simplify_single_iteration_loop () =
  let i = Sym.fresh "i" and b = Sym.fresh "b" in
  let body = [ loop i (int 0) (int 1) [ assign b [ var i ] (flt 1.0) ] ] in
  match Simplify.stmts body with
  | [ SAssign (_, [ Int 0 ], _) ] -> ()
  | _ -> Alcotest.fail "single-iteration loop should inline"

let test_simplify_empty_loop () =
  let i = Sym.fresh "i" and b = Sym.fresh "b" in
  let body = [ loop i (int 3) (int 3) [ assign b [ var i ] (flt 1.0) ] ] in
  Alcotest.(check int) "empty loop dropped" 0 (List.length (Simplify.stmts body))

let test_simplify_if_const () =
  let b = Sym.fresh "b" in
  let s = if_ (lt (int 1) (int 2)) [ assign b [] (flt 1.0) ] [ assign b [] (flt 2.0) ] in
  match Simplify.stmts [ s ] with
  | [ SAssign (_, [], Float 1.0) ] -> ()
  | _ -> Alcotest.fail "constant if should resolve to then-branch"

(* --- Subst / freshen ------------------------------------------------ *)

let test_subst_var () =
  let i = Sym.fresh "i" and b = Sym.fresh "b" in
  let s = Subst.single i (int 7) in
  match Subst.apply_stmts s [ assign b [ var i ] (rd b [ var i ]) ] with
  | [ SAssign (_, [ Int 7 ], Read (_, [ Int 7 ])) ] -> ()
  | _ -> Alcotest.fail "substitution missed an occurrence"

let test_subst_respects_binders () =
  (* the substituted variable differs from the loop binder even with the
     same display name, because symbols are compared by id *)
  let i1 = Sym.fresh "i" and i2 = Sym.fresh "i" and b = Sym.fresh "b" in
  let body = [ loop i2 (int 0) (int 4) [ assign b [ var i1; var i2 ] (flt 0.0) ] ] in
  match Subst.apply_stmts (Subst.single i1 (int 5)) body with
  | [ SFor (_, _, _, [ SAssign (_, [ Int 5; Var v ], _) ]) ] ->
      Alcotest.(check bool) "binder untouched" true (Sym.equal v i2)
  | _ -> Alcotest.fail "wrong substitution"

let test_freshen_renames_binders () =
  let i = Sym.fresh "i" and b = Sym.fresh "b" in
  let body = [ loop i (int 0) (int 4) [ assign b [ var i ] (flt 0.0) ] ] in
  match Subst.freshen_stmts body with
  | [ SFor (i', _, _, [ SAssign (_, [ Var v ], _) ]) ] ->
      Alcotest.(check bool) "binder fresh" false (Sym.equal i i');
      Alcotest.(check bool) "use follows binder" true (Sym.equal v i')
  | _ -> Alcotest.fail "freshen changed the structure"

let test_freshen_renames_allocs () =
  let t = Sym.fresh "t" and b = Sym.fresh "b" in
  let body =
    [ alloc t Dtype.F32 [ int 4 ]; assign b [] (rd t [ int 0 ]) ]
  in
  match Subst.freshen_stmts body with
  | [ SAlloc (t', _, _, _); SAssign (_, [], Read (t'', [ Int 0 ])) ] ->
      Alcotest.(check bool) "alloc renamed" false (Sym.equal t t');
      Alcotest.(check bool) "use follows alloc" true (Sym.equal t' t'')
  | _ -> Alcotest.fail "freshen changed the structure"

(* --- Alpha ---------------------------------------------------------- *)

let simple_loop v =
  let b = Sym.fresh "b" in
  (b, loop v (int 0) (int 4) [ reduce b [ var v ] (flt 1.0) ])

let test_alpha_loop_var_names () =
  let i = Sym.fresh "i" and j = Sym.fresh "j" in
  let b1, l1 = simple_loop i in
  let b2, l2 = simple_loop j in
  (* bodies reference different buffer syms: map them *)
  let env = Sym.Map.singleton b1 b2 in
  Alcotest.(check bool) "alpha-equal up to binder names" true
    (Alpha.stmts_eq env [ l1 ] [ l2 ])

let test_alpha_index_spelling () =
  let jt = Sym.fresh "jt" and jtt = Sym.fresh "jtt" and b = Sym.fresh "b" in
  let s1 = assign b [ add (mul (int 4) (var jt)) (var jtt) ] (flt 0.0) in
  let s2 = assign b [ add (var jtt) (mul (var jt) (int 4)) ] (flt 0.0) in
  Alcotest.(check bool) "index spellings equal" true
    (Alpha.stmts_eq Sym.Map.empty [ s1 ] [ s2 ])

let test_alpha_distinguishes () =
  let i = Sym.fresh "i" and b = Sym.fresh "b" in
  let s1 = loop i (int 0) (int 4) [ assign b [ var i ] (flt 0.0) ] in
  let s2 = loop i (int 0) (int 5) [ assign b [ var i ] (flt 0.0) ] in
  Alcotest.(check bool) "different extents differ" false
    (Alpha.stmts_eq Sym.Map.empty [ s1 ] [ Subst.freshen_stmts [ s2 ] |> List.hd ])

let test_proc_eq_self () =
  let p = Exo_ukr_gen.Source.ukernel_ref_simple () in
  let q = Exo_ukr_gen.Source.ukernel_ref_simple () in
  Alcotest.(check bool) "two builds of the reference are alpha-equal" true
    (Alpha.proc_eq p q)

(* --- Cursor --------------------------------------------------------- *)

let sample_body () =
  let i = Sym.fresh "i" and j = Sym.fresh "j" in
  let a = Sym.fresh "a" and b = Sym.fresh "b" in
  ( a,
    b,
    [
      alloc a Dtype.F32 [ int 4 ];
      loop i (int 0) (int 4)
        [ assign a [ var i ] (flt 0.0); loop j (int 0) (int 2) [ assign b [ var j ] (flt 1.0) ] ];
    ] )

let test_cursor_get_splice () =
  let _, _, body = sample_body () in
  let all = Cursor.all_stmts body in
  Alcotest.(check int) "5 statements total" 5 (List.length all);
  (* replace the innermost assign with two copies *)
  let c, s =
    List.find (fun (_, s) -> match s with SAssign (b, _, _) -> Sym.name b = "b" | _ -> false) all
  in
  let body' = Cursor.splice body c [ s; s ] in
  Alcotest.(check int) "one more statement" 6 (List.length (Cursor.all_stmts body'))

let test_cursor_parent () =
  let _, _, body = sample_body () in
  let c, _ =
    List.find
      (fun (_, s) -> match s with SAssign (b, _, _) -> Sym.name b = "b" | _ -> false)
      (Cursor.all_stmts body)
  in
  match Cursor.parent c with
  | Some p -> (
      match Cursor.get body p with
      | SFor (v, _, _, _) -> Alcotest.(check string) "parent is j loop" "j" (Sym.name v)
      | _ -> Alcotest.fail "parent should be a loop")
  | None -> Alcotest.fail "has a parent"

let test_cursor_insert () =
  let a, _, body = sample_body () in
  let c = { Cursor.dirs = []; last = 1 } in
  let body' = Cursor.insert_before body c [ assign a [ int 0 ] (flt 9.0) ] in
  match List.nth body' 1 with
  | SAssign (_, [ Int 0 ], Float 9.0) -> ()
  | _ -> Alcotest.fail "insert_before misplaced"

let test_cursor_out_of_range () =
  let _, _, body = sample_body () in
  Alcotest.check_raises "bad index raises"
    (Cursor.Invalid_cursor "statement index 9 out of range (block has 2)") (fun () ->
      ignore (Cursor.get body { Cursor.dirs = []; last = 9 }))

(* --- Pp ------------------------------------------------------------- *)

let test_pp_exo_style () =
  let i = Sym.fresh "i" and c = Sym.fresh "C" and a = Sym.fresh "A" in
  let s = loop i (int 0) (int 4) [ reduce c [ var i ] (rd a [ var i ]) ] in
  Alcotest.(check string) "loop syntax"
    "for i in seq(0, 4):\n    C[i] += A[i]"
    (Pp.stmt_to_string s)

let test_pp_precedence () =
  let x = Sym.fresh "x" in
  check_expr_str "mul over add" "(x + 1) * 2" (mul (add (var x) (int 1)) (int 2));
  check_expr_str "no spurious parens" "x * 2 + 1" (add (mul (var x) (int 2)) (int 1))

let test_pp_fig4_reference () =
  (* the full reference kernel pretty-prints to the paper's Fig. 4 shape *)
  let txt = Pp.proc_to_string (Exo_ukr_gen.Source.ukernel_ref ()) in
  List.iter
    (fun needle ->
      let nh = String.length txt and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub txt i nn = needle || go (i + 1)) in
      Alcotest.(check bool) ("contains " ^ needle) true (go 0))
    [
      "def ukernel_ref_full(MR: size, NR: size, KC: size, alpha: f32[1] @ DRAM";
      "Cb: f32[NR, MR] @ DRAM";
      "Ba: f32[KC, NR] @ DRAM";
      "Cb[cj, ci] = C[cj, ci] * beta[0]";
      "Ba[bk, bj] = Bc[bk, bj] * alpha[0]";
      "Cb[j, i] += Ac[k, i] * Ba[k, j]";
      "C[cj, ci] = Cb[cj, ci]";
    ]

let test_pp_window () =
  let c = Sym.fresh "C_reg" in
  let w = { wbuf = c; widx = [ Pt (int 3); Iv (int 0, int 4) ] } in
  Alcotest.(check string) "window" "C_reg[3, 0:4]" (Fmt.str "%a" Pp.pp_window w)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest [ prop_affine_roundtrip; prop_affine_add_homomorphic ] in
  Alcotest.run "ir"
    [
      ( "sym",
        [
          Alcotest.test_case "fresh distinct" `Quick test_sym_fresh_distinct;
          Alcotest.test_case "clone" `Quick test_sym_clone;
          Alcotest.test_case "collections" `Quick test_sym_collections;
        ] );
      ( "affine",
        [
          Alcotest.test_case "normalization" `Quick test_affine_normalization;
          Alcotest.test_case "cancellation" `Quick test_affine_cancellation;
          Alcotest.test_case "non-affine" `Quick test_affine_non_affine;
          Alcotest.test_case "exact division" `Quick test_affine_exact_division;
          Alcotest.test_case "const mod" `Quick test_affine_mod_const;
          Alcotest.test_case "roundtrip" `Quick test_affine_roundtrip;
        ]
        @ qt );
      ( "simplify",
        [
          Alcotest.test_case "constants" `Quick test_simplify_constants;
          Alcotest.test_case "affine residue" `Quick test_simplify_affine;
          Alcotest.test_case "single-iteration loop" `Quick test_simplify_single_iteration_loop;
          Alcotest.test_case "empty loop" `Quick test_simplify_empty_loop;
          Alcotest.test_case "constant if" `Quick test_simplify_if_const;
        ] );
      ( "subst",
        [
          Alcotest.test_case "substitute var" `Quick test_subst_var;
          Alcotest.test_case "respects binders" `Quick test_subst_respects_binders;
          Alcotest.test_case "freshen loop binders" `Quick test_freshen_renames_binders;
          Alcotest.test_case "freshen allocs" `Quick test_freshen_renames_allocs;
        ] );
      ( "alpha",
        [
          Alcotest.test_case "binder names" `Quick test_alpha_loop_var_names;
          Alcotest.test_case "index spellings" `Quick test_alpha_index_spelling;
          Alcotest.test_case "distinguishes extents" `Quick test_alpha_distinguishes;
          Alcotest.test_case "proc self-equality" `Quick test_proc_eq_self;
        ] );
      ( "cursor",
        [
          Alcotest.test_case "get/splice" `Quick test_cursor_get_splice;
          Alcotest.test_case "parent" `Quick test_cursor_parent;
          Alcotest.test_case "insert" `Quick test_cursor_insert;
          Alcotest.test_case "out of range" `Quick test_cursor_out_of_range;
        ] );
      ( "pp",
        [
          Alcotest.test_case "exo style" `Quick test_pp_exo_style;
          Alcotest.test_case "precedence" `Quick test_pp_precedence;
          Alcotest.test_case "window" `Quick test_pp_window;
          Alcotest.test_case "Fig. 4 reference" `Quick test_pp_fig4_reference;
        ] );
    ]
