(* Well-formedness, symbolic bounds, and dependence analysis. *)

open Exo_ir
open Ir
open Builder
module W = Exo_check.Wellformed
module Bd = Exo_check.Bounds
module D = Exo_check.Deps

let raises_type_error f =
  try
    f ();
    false
  with W.Type_error _ -> true

(* --- Wellformed ------------------------------------------------------ *)

let mk1 ?(preds = []) args body = mk_proc ~preds ~name:"t" ~args body

let test_wf_reference_ok () =
  W.check_proc (Exo_ukr_gen.Source.ukernel_ref ());
  W.check_proc (Exo_ukr_gen.Source.ukernel_ref_simple ())

let test_wf_unbound_var () =
  let b = Sym.fresh "b" and ghost = Sym.fresh "ghost" in
  let p = mk1 [ tensor_arg b Dtype.F32 [ int 4 ] ] [ assign b [ var ghost ] (flt 0.0) ] in
  Alcotest.(check bool) "unbound var rejected" true (raises_type_error (fun () -> W.check_proc p))

let test_wf_rank_mismatch () =
  let b = Sym.fresh "b" in
  let p =
    mk1 [ tensor_arg b Dtype.F32 [ int 4; int 4 ] ] [ assign b [ int 0 ] (flt 0.0) ]
  in
  Alcotest.(check bool) "rank mismatch rejected" true
    (raises_type_error (fun () -> W.check_proc p))

let test_wf_mixed_dtypes () =
  let a = Sym.fresh "a" and b = Sym.fresh "b" in
  let p =
    mk1
      [ tensor_arg a Dtype.F32 [ int 4 ]; tensor_arg b Dtype.F16 [ int 4 ] ]
      [ assign a [ int 0 ] (add (rd a [ int 0 ]) (rd b [ int 0 ])) ]
  in
  Alcotest.(check bool) "f32+f16 rejected" true (raises_type_error (fun () -> W.check_proc p))

let test_wf_float_index () =
  let b = Sym.fresh "b" in
  let p = mk1 [ tensor_arg b Dtype.F32 [ int 4 ] ] [ assign b [ flt 1.0 ] (flt 0.0) ] in
  Alcotest.(check bool) "float subscript rejected" true
    (raises_type_error (fun () -> W.check_proc p))

let test_wf_buffer_as_scalar () =
  let b = Sym.fresh "b" and c = Sym.fresh "c" in
  let p =
    mk1
      [ tensor_arg b Dtype.F32 [ int 4 ]; tensor_arg c Dtype.F32 [ int 4 ] ]
      [ assign c [ int 0 ] (Var b) ]
  in
  Alcotest.(check bool) "buffer as scalar rejected" true
    (raises_type_error (fun () -> W.check_proc p))

let test_wf_call_arity () =
  let vld = Exo_isa.Neon.vld_4xf32 in
  let b = Sym.fresh "b" in
  let p = mk1 [ tensor_arg b Dtype.F32 [ int 4 ] ] [ SCall (vld, [ win b [ ivn (int 0) (int 4) ] ]) ] in
  Alcotest.(check bool) "wrong arity rejected" true
    (raises_type_error (fun () -> W.check_proc p))

let test_wf_call_window_rank () =
  let vld = Exo_isa.Neon.vld_4xf32 in
  let b = Sym.fresh "b" and c = Sym.fresh "c" in
  let p =
    mk1
      [
        tensor_arg ~mem:Exo_isa.Neon.mem c Dtype.F32 [ int 4 ];
        tensor_arg b Dtype.F32 [ int 4 ];
      ]
      [ SCall (vld, [ win c [ pt (int 0) ]; win b [ ivn (int 0) (int 4) ] ]) ]
  in
  Alcotest.(check bool) "rank-0 window for rank-1 param rejected" true
    (raises_type_error (fun () -> W.check_proc p))

let test_wf_loop_shadowing () =
  let i = Sym.fresh "i" and b = Sym.fresh "b" in
  let p =
    mk1
      [ tensor_arg b Dtype.F32 [ int 4 ] ]
      [ loop i (int 0) (int 2) [ loop i (int 0) (int 2) [ assign b [ var i ] (flt 0.0) ] ] ]
  in
  Alcotest.(check bool) "shadowing same symbol rejected" true
    (raises_type_error (fun () -> W.check_proc p))

(* --- Bounds ----------------------------------------------------------- *)

let test_bounds_kernel_proved () =
  let p = (Exo_ukr_gen.Family.generate ~mr:8 ~nr:12 ()).Exo_ukr_gen.Family.proc in
  let r = Bd.check_proc p in
  Alcotest.(check int) "no violations" 0 (List.length r.Bd.violations);
  Alcotest.(check int) "no unknowns" 0 (List.length r.Bd.unknowns)

let test_bounds_reference_proved () =
  let r = Bd.check_proc (Exo_ukr_gen.Source.ukernel_ref ()) in
  Alcotest.(check int) "reference kernel within bounds" 0
    (List.length r.Bd.violations + List.length r.Bd.unknowns)

let test_bounds_violation_detected () =
  let kc = Sym.fresh "KC" and b = Sym.fresh "b" and k = Sym.fresh "k" in
  let p =
    mk1
      [ size_arg kc; tensor_arg b Dtype.F32 [ var kc ] ]
      [ loopn k (var kc) [ assign b [ add (var k) (int 1) ] (flt 0.0) ] ]
  in
  let r = Bd.check_proc p in
  Alcotest.(check bool) "b[k+1] over [KC] flagged" true (List.length r.Bd.violations > 0)

let test_bounds_negative_lower () =
  let b = Sym.fresh "b" and k = Sym.fresh "k" in
  let p =
    mk1
      [ tensor_arg b Dtype.F32 [ int 8 ] ]
      [ loopn k (int 4) [ assign b [ sub (var k) (int 1) ] (flt 0.0) ] ]
  in
  let r = Bd.check_proc p in
  Alcotest.(check bool) "b[k-1] flagged" true (List.length r.Bd.violations > 0)

let test_bounds_pred_ranges () =
  (* the fmla lane contract: l bounded by the preds *)
  let l = Sym.fresh "l" and b = Sym.fresh "b" in
  let p =
    mk1
      ~preds:[ ge (var l) (int 0); lt (var l) (int 4) ]
      [ index_arg l; tensor_arg b Dtype.F32 [ int 4 ] ]
      [ assign b [ var l ] (flt 0.0) ]
  in
  let r = Bd.check_proc p in
  Alcotest.(check int) "preds bound the index arg" 0
    (List.length r.Bd.violations + List.length r.Bd.unknowns)

let test_bounds_symbolic_ok () =
  (* Ac[k, i] with k < KC is provable with symbolic KC *)
  let kc = Sym.fresh "KC" and a = Sym.fresh "a" and k = Sym.fresh "k" in
  let p =
    mk1
      [ size_arg kc; tensor_arg a Dtype.F32 [ var kc ] ]
      [ loopn k (var kc) [ assign a [ var k ] (flt 0.0) ] ]
  in
  let r = Bd.check_proc p in
  Alcotest.(check int) "KC-1 < KC proved" 0
    (List.length r.Bd.violations + List.length r.Bd.unknowns)

let test_bounds_window () =
  let b = Sym.fresh "b" and c = Sym.fresh "c" in
  let vld = Exo_isa.Neon.vld_4xf32 in
  let p =
    mk1
      [
        tensor_arg ~mem:Exo_isa.Neon.mem c Dtype.F32 [ int 4 ];
        tensor_arg b Dtype.F32 [ int 4 ];
      ]
      [ SCall (vld, [ win c [ ivn (int 0) (int 4) ] ; win b [ ivn (int 2) (int 4) ] ]) ]
  in
  let r = Bd.check_proc p in
  Alcotest.(check bool) "window [2,6) over [4] flagged" true
    (List.length r.Bd.violations > 0)

(* --- Deps ------------------------------------------------------------- *)

let test_reorder_reduce_ok () =
  let i = Sym.fresh "i" and j = Sym.fresh "j" and c = Sym.fresh "c" in
  let body = [ reduce c [ var j; var i ] (flt 1.0) ] in
  Alcotest.(check bool) "reductions reorder" true
    (D.reorder_legal ~outer:j ~inner:i ~body = Ok ())

let test_reorder_private_assign_ok () =
  let i = Sym.fresh "i" and j = Sym.fresh "j" in
  let c = Sym.fresh "c" and b = Sym.fresh "b" in
  let body = [ assign c [ var j; var i ] (rd b [ var j; var i ]) ] in
  Alcotest.(check bool) "iteration-private assigns reorder" true
    (D.reorder_legal ~outer:j ~inner:i ~body = Ok ())

let test_reorder_recurrence_rejected () =
  (* s[0] = f(i, j): last writer changes under reorder *)
  let i = Sym.fresh "i" and j = Sym.fresh "j" and s = Sym.fresh "s" in
  let body = [ assign s [ int 0 ] (add (var i) (var j)) ] in
  Alcotest.(check bool) "scalar overwrite rejected" true
    (Result.is_error (D.reorder_legal ~outer:j ~inner:i ~body))

let test_reorder_skewed_rejected () =
  (* a[i + j] = ... : different (i, j) pairs collide *)
  let i = Sym.fresh "i" and j = Sym.fresh "j" and a = Sym.fresh "a" in
  let body = [ assign a [ add (var i) (var j) ] (flt 0.0) ] in
  Alcotest.(check bool) "skewed write rejected" true
    (Result.is_error (D.reorder_legal ~outer:j ~inner:i ~body))

let test_fission_disjoint_ok () =
  let i = Sym.fresh "i" and a = Sym.fresh "a" and b = Sym.fresh "b" in
  let pre = [ assign a [ var i ] (flt 0.0) ] in
  let post = [ assign b [ var i ] (rd a [ var i ]) ] in
  Alcotest.(check bool) "same-index flow fissions" true
    (D.fission_legal ~v:i ~pre ~post = Ok ())

let test_fission_backward_dep_rejected () =
  (* pre reads a[i+1] which post writes: post@i -> pre@j (j>i) dependence *)
  let i = Sym.fresh "i" and a = Sym.fresh "a" and b = Sym.fresh "b" in
  let pre = [ assign b [ var i ] (rd a [ add (var i) (int 1) ]) ] in
  let post = [ assign a [ var i ] (flt 1.0) ] in
  Alcotest.(check bool) "backward dependence rejected" true
    (Result.is_error (D.fission_legal ~v:i ~pre ~post))

let test_fission_invariant_pre_ok () =
  (* the Fig. 9 shape: a loop-invariant idempotent load before a reduce *)
  let i = Sym.fresh "i" and k = Sym.fresh "k" in
  let reg = Sym.fresh "reg" and src = Sym.fresh "src" and acc = Sym.fresh "acc" in
  let pre = [ assign reg [ var k ] (rd src [ var k ]) ] in
  let post = [ reduce acc [ var i ] (rd reg [ var k ]) ] in
  Alcotest.(check bool) "invariant idempotent pre fissions" true
    (D.fission_legal ~v:i ~pre ~post = Ok ())

let test_fission_invariant_pre_feedback_rejected () =
  (* like above but post writes what pre reads: the rule must not apply *)
  let i = Sym.fresh "i" and k = Sym.fresh "k" in
  let reg = Sym.fresh "reg" and src = Sym.fresh "src" in
  let pre = [ assign reg [ var k ] (rd src [ var k ]) ] in
  let post = [ assign src [ var k ] (rd reg [ var k ]) ] in
  Alcotest.(check bool) "feedback into invariant pre rejected" true
    (Result.is_error (D.fission_legal ~v:i ~pre ~post))

let test_idempotent () =
  let a = Sym.fresh "a" and b = Sym.fresh "b" in
  Alcotest.(check bool) "pure assign idempotent" true
    (D.idempotent [ assign a [ int 0 ] (rd b [ int 0 ]) ]);
  Alcotest.(check bool) "reduce not idempotent" false
    (D.idempotent [ reduce a [ int 0 ] (flt 1.0) ]);
  Alcotest.(check bool) "read-after-write not idempotent" false
    (D.idempotent [ assign a [ int 0 ] (add (rd a [ int 0 ]) (flt 1.0)) ])

let () =
  Alcotest.run "check"
    [
      ( "wellformed",
        [
          Alcotest.test_case "reference kernels ok" `Quick test_wf_reference_ok;
          Alcotest.test_case "unbound var" `Quick test_wf_unbound_var;
          Alcotest.test_case "rank mismatch" `Quick test_wf_rank_mismatch;
          Alcotest.test_case "mixed dtypes" `Quick test_wf_mixed_dtypes;
          Alcotest.test_case "float index" `Quick test_wf_float_index;
          Alcotest.test_case "buffer as scalar" `Quick test_wf_buffer_as_scalar;
          Alcotest.test_case "call arity" `Quick test_wf_call_arity;
          Alcotest.test_case "call window rank" `Quick test_wf_call_window_rank;
          Alcotest.test_case "loop shadowing" `Quick test_wf_loop_shadowing;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "generated kernel proved" `Quick test_bounds_kernel_proved;
          Alcotest.test_case "reference proved" `Quick test_bounds_reference_proved;
          Alcotest.test_case "violation detected" `Quick test_bounds_violation_detected;
          Alcotest.test_case "negative lower bound" `Quick test_bounds_negative_lower;
          Alcotest.test_case "pred-derived ranges" `Quick test_bounds_pred_ranges;
          Alcotest.test_case "symbolic sizes" `Quick test_bounds_symbolic_ok;
          Alcotest.test_case "window bounds" `Quick test_bounds_window;
        ] );
      ( "deps",
        [
          Alcotest.test_case "reorder reduces" `Quick test_reorder_reduce_ok;
          Alcotest.test_case "reorder private assigns" `Quick test_reorder_private_assign_ok;
          Alcotest.test_case "reorder recurrence rejected" `Quick test_reorder_recurrence_rejected;
          Alcotest.test_case "reorder skewed rejected" `Quick test_reorder_skewed_rejected;
          Alcotest.test_case "fission disjoint" `Quick test_fission_disjoint_ok;
          Alcotest.test_case "fission backward dep" `Quick test_fission_backward_dep_rejected;
          Alcotest.test_case "fission invariant pre" `Quick test_fission_invariant_pre_ok;
          Alcotest.test_case "fission feedback rejected" `Quick test_fission_invariant_pre_feedback_rejected;
          Alcotest.test_case "idempotence" `Quick test_idempotent;
        ] );
    ]
