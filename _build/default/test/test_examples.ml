(* Integration: every example executable runs to completion and prints its
   key validation markers. The binaries are declared as dune deps of this
   test, so they are built and available relative to the test's cwd. *)

let run_and_capture (exe : string) : int * string =
  let tmp = Filename.temp_file "exo_example" ".out" in
  let rc = Sys.command (Fmt.str "%s > %s 2>&1" exe tmp) in
  let ic = open_in_bin tmp in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  (rc, s)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_example ~exe ~markers () =
  (* cwd is the test directory under `dune runtest`, the workspace root
     under `dune exec` *)
  let candidates =
    [
      Filename.concat "../examples" exe;
      Filename.concat "_build/default/examples" exe;
      Filename.concat "examples" exe;
    ]
  in
  let path =
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.fail (Fmt.str "example binary %s not built" exe)
  in
  let rc, out = run_and_capture path in
  Alcotest.(check int) (exe ^ " exits 0") 0 rc;
  List.iter
    (fun m ->
      Alcotest.(check bool) (Fmt.str "%s prints %S" exe m) true (contains out m))
    markers

let () =
  Alcotest.run "examples"
    [
      ( "run",
        [
          Alcotest.test_case "quickstart" `Slow
            (check_example ~exe:"quickstart.exe"
               ~markers:
                 [
                   "step 6";
                   "bit-exact";
                   "fma=24 ld=5";
                   "vfmaq_laneq_f32";
                 ]);
          Alcotest.test_case "edge_cases" `Slow
            (check_example ~exe:"edge_cases.exe"
               ~markers:[ "8x12"; "1x12"; "ok"; "row" ]);
          Alcotest.test_case "dnn_inference" `Slow
            (check_example ~exe:"dnn_inference.exe"
               ~markers:
                 [ "exact match"; "aggregated inference time"; "(12544, 64, 147)" ]);
          Alcotest.test_case "portability" `Slow
            (check_example ~exe:"portability.exe"
               ~markers:
                 [
                   "neon-f32, 8x12 (packed schedule) — verified: ok";
                   "avx512-f32";
                   "rvv-f32";
                   "neon-i32";
                   "_mm512_fmadd_ps";
                 ]);
          Alcotest.test_case "autotune" `Slow
            (check_example ~exe:"autotune.exe"
               ~markers:[ "GFLOPS"; "beta = 0"; "accumulators" ]);
        ] );
    ]
