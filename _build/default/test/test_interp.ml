(* Reference interpreter: f16 emulation, buffers/views, execution. *)

open Exo_ir
open Ir
open Builder
module B = Exo_interp.Buffer
module I = Exo_interp.Interp
module F16 = Exo_interp.F16

(* --- binary16 --------------------------------------------------------- *)

let test_f16_exact_values () =
  List.iter
    (fun v -> Alcotest.(check (float 0.0)) (Fmt.str "%g exact" v) v (F16.round v))
    [ 0.0; 1.0; -1.0; 0.5; 2.0; 1024.0; 65504.0; 0.25; -0.125; 1.5 ]

let test_f16_rounding () =
  (* 1 + 2^-11 rounds to 1 (nearest even), 1 + 3·2^-12 rounds up *)
  Alcotest.(check (float 0.0)) "round to even" 1.0 (F16.round (1.0 +. 0x1p-11));
  Alcotest.(check (float 0.0)) "round up" (1.0 +. 0x1p-10)
    (F16.round (1.0 +. (3.0 *. 0x1p-12)))

let test_f16_overflow_underflow () =
  Alcotest.(check (float 0.0)) "overflow to inf" infinity (F16.round 1e6);
  Alcotest.(check (float 0.0)) "neg overflow" neg_infinity (F16.round (-1e6));
  Alcotest.(check (float 0.0)) "tiny underflows to 0" 0.0 (F16.round 1e-12)

let test_f16_subnormal () =
  let smallest = 0x1p-24 in
  Alcotest.(check (float 0.0)) "smallest subnormal survives" smallest (F16.round smallest)

let test_f16_nan_inf () =
  Alcotest.(check bool) "nan stays nan" true (Float.is_nan (F16.round Float.nan));
  Alcotest.(check (float 0.0)) "inf stays inf" infinity (F16.round infinity)

let prop_f16_idempotent =
  QCheck2.Test.make ~name:"f16 rounding is idempotent" ~count:500
    QCheck2.Gen.(float_range (-70000.0) 70000.0)
    (fun x ->
      let r = F16.round x in
      Float.equal (F16.round r) r || Float.is_nan r)

let prop_f16_monotone =
  QCheck2.Test.make ~name:"f16 rounding is monotone" ~count:500
    QCheck2.Gen.(pair (float_range (-60000.0) 60000.0) (float_range (-60000.0) 60000.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      F16.round lo <= F16.round hi)

let prop_f16_bits_roundtrip =
  QCheck2.Test.make ~name:"of_bits/to_bits roundtrip on finite halfs" ~count:1000
    QCheck2.Gen.(int_range 0 0xffff)
    (fun bits ->
      let exp = (bits lsr 10) land 0x1f in
      if exp = 0x1f then true (* inf/nan payloads are not preserved exactly *)
      else F16.to_bits (F16.of_bits bits) = bits)

(* --- Buffer ------------------------------------------------------------ *)

let test_buffer_rounding () =
  let b = B.create ~init:0.0 Dtype.F32 [ 1 ] in
  B.set b [| 0 |] 0.1;
  Alcotest.(check (float 0.0)) "f32 rounding applied"
    (Int32.float_of_bits (Int32.bits_of_float 0.1))
    (B.get b [| 0 |])

let test_buffer_nan_init_catches_missing_store () =
  let b = B.create Dtype.F32 [ 2 ] in
  Alcotest.(check bool) "uninitialized reads are NaN" true (Float.is_nan (B.get b [| 0 |]))

let test_buffer_bounds () =
  let b = B.create ~init:0.0 Dtype.F32 [ 2; 3 ] in
  Alcotest.(check bool) "oob raises" true
    (try
       ignore (B.get b [| 2; 0 |]);
       false
     with B.Bounds _ -> true)

let test_buffer_view_sharing () =
  let b = B.create ~init:0.0 Dtype.F32 [ 3; 4 ] in
  let v = B.view b [ `Pt 1; `Iv (1, 2) ] in
  B.set v [| 0 |] 9.0;
  Alcotest.(check (float 0.0)) "view writes through" 9.0 (B.get b [| 1; 1 |]);
  Alcotest.(check int) "view rank" 1 (B.rank v);
  Alcotest.(check int) "view stride" 1 (B.last_stride v)

let test_buffer_view_strided () =
  let b = B.create ~init:0.0 Dtype.F32 [ 3; 4 ] in
  let v = B.view b [ `Iv (0, 3); `Pt 2 ] in
  Alcotest.(check int) "column view strides by 4" 4 (B.last_stride v)

let test_buffer_view_oob () =
  let b = B.create ~init:0.0 Dtype.F32 [ 3; 4 ] in
  Alcotest.(check bool) "oob window raises" true
    (try
       ignore (B.view b [ `Pt 0; `Iv (2, 3) ]);
       false
     with B.Bounds _ -> true)

let test_buffer_i8_wrap () =
  let b = B.create ~init:0.0 Dtype.I8 [ 1 ] in
  B.set b [| 0 |] 130.0;
  Alcotest.(check (float 0.0)) "i8 wraps" (-126.0) (B.get b [| 0 |])

(* --- Interp ------------------------------------------------------------ *)

let test_interp_loop_and_reduce () =
  let n = Sym.fresh "N" and acc = Sym.fresh "acc" and i = Sym.fresh "i" in
  let p =
    mk_proc ~name:"sum"
      ~args:[ size_arg n; tensor_arg acc Dtype.F64 [ int 1 ] ]
      [ loopn i (var n) [ reduce acc [ int 0 ] (flt 1.0) ] ]
  in
  let b = B.create ~init:0.0 Dtype.F64 [ 1 ] in
  I.run p [ I.VInt 10; I.VBuf b ];
  Alcotest.(check (float 0.0)) "sum of ten ones" 10.0 (B.get b [| 0 |])

let test_interp_if () =
  let c = Sym.fresh "cond" and out = Sym.fresh "out" in
  let p =
    mk_proc ~name:"sel"
      ~args:[ arg c TBool; tensor_arg out Dtype.F32 [ int 1 ] ]
      [ if_ (Var c) [ assign out [ int 0 ] (flt 1.0) ] [ assign out [ int 0 ] (flt 2.0) ] ]
  in
  let b = B.create ~init:0.0 Dtype.F32 [ 1 ] in
  I.run p [ I.VInt 0; I.VBuf b ];
  Alcotest.(check (float 0.0)) "else branch" 2.0 (B.get b [| 0 |])

let test_interp_precondition () =
  let n = Sym.fresh "N" and b = Sym.fresh "b" in
  let p =
    mk_proc ~name:"t"
      ~preds:[ ge (var n) (int 4) ]
      ~args:[ size_arg n; tensor_arg b Dtype.F32 [ var n ] ]
      []
  in
  let buf = B.create ~init:0.0 Dtype.F32 [ 2 ] in
  Alcotest.(check bool) "violated precondition raises" true
    (try
       I.run p [ I.VInt 2; I.VBuf buf ];
       false
     with I.Runtime_error _ -> true)

let test_interp_alloc_scoping () =
  let out = Sym.fresh "out" and t = Sym.fresh "t" and i = Sym.fresh "i" in
  let i2 = Sym.fresh "i" in
  let p =
    mk_proc ~name:"t"
      ~args:[ tensor_arg out Dtype.F32 [ int 4 ] ]
      [
        alloc t Dtype.F32 [ int 4 ];
        loopn i (int 4) [ assign t [ var i ] (flt 6.0) ];
        loopn i2 (int 4) [ assign out [ var i2 ] (rd t [ var i2 ]) ];
      ]
  in
  let b = B.create Dtype.F32 [ 4 ] in
  I.run p [ I.VBuf b ];
  Alcotest.(check (float 0.0)) "copied through alloc" 6.0 (B.get b [| 3 |])

let test_interp_call_window () =
  (* calling neon_vld through a window copies the right slice *)
  let src = Sym.fresh "src" and dst = Sym.fresh "dst" in
  let p =
    mk_proc ~name:"t"
      ~args:
        [
          tensor_arg ~mem:Exo_isa.Neon.mem dst Dtype.F32 [ int 4 ];
          tensor_arg src Dtype.F32 [ int 2; int 8 ];
        ]
      [ SCall (Exo_isa.Neon.vld_4xf32, [ win dst [ ivn (int 0) (int 4) ]; win src [ pt (int 1); ivn (int 4) (int 4) ] ]) ]
  in
  let s = B.create ~init:0.0 Dtype.F32 [ 2; 8 ] in
  B.fill s (fun idx -> float_of_int ((idx.(0) * 8) + idx.(1)));
  let d = B.create Dtype.F32 [ 4 ] in
  I.run p [ I.VBuf d; I.VBuf s ];
  Alcotest.(check (float 0.0)) "window base" 12.0 (B.get d [| 0 |]);
  Alcotest.(check (float 0.0)) "window end" 15.0 (B.get d [| 3 |])

let test_interp_f16_kernel_rounds () =
  (* an f16 reduction saturates where f32 would not: 2048 + 1 = 2048 in f16 *)
  let acc = Sym.fresh "acc" and i = Sym.fresh "i" in
  let p =
    mk_proc ~name:"t"
      ~args:[ tensor_arg acc Dtype.F16 [ int 1 ] ]
      [ loopn i (int 4) [ reduce acc [ int 0 ] (flt 1.0) ] ]
  in
  let b = B.create ~init:0.0 Dtype.F16 [ 1 ] in
  B.set b [| 0 |] 2048.0;
  I.run p [ I.VBuf b ];
  Alcotest.(check (float 0.0)) "f16 absorbs +1 at 2048" 2048.0 (B.get b [| 0 |])

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_f16_idempotent; prop_f16_monotone; prop_f16_bits_roundtrip ]
  in
  Alcotest.run "interp"
    [
      ( "f16",
        [
          Alcotest.test_case "exact values" `Quick test_f16_exact_values;
          Alcotest.test_case "rounding" `Quick test_f16_rounding;
          Alcotest.test_case "overflow/underflow" `Quick test_f16_overflow_underflow;
          Alcotest.test_case "subnormal" `Quick test_f16_subnormal;
          Alcotest.test_case "nan/inf" `Quick test_f16_nan_inf;
        ]
        @ props );
      ( "buffer",
        [
          Alcotest.test_case "dtype rounding" `Quick test_buffer_rounding;
          Alcotest.test_case "nan init" `Quick test_buffer_nan_init_catches_missing_store;
          Alcotest.test_case "bounds" `Quick test_buffer_bounds;
          Alcotest.test_case "view sharing" `Quick test_buffer_view_sharing;
          Alcotest.test_case "strided view" `Quick test_buffer_view_strided;
          Alcotest.test_case "oob view" `Quick test_buffer_view_oob;
          Alcotest.test_case "i8 wrap" `Quick test_buffer_i8_wrap;
        ] );
      ( "interp",
        [
          Alcotest.test_case "loop + reduce" `Quick test_interp_loop_and_reduce;
          Alcotest.test_case "if" `Quick test_interp_if;
          Alcotest.test_case "precondition" `Quick test_interp_precondition;
          Alcotest.test_case "alloc scoping" `Quick test_interp_alloc_scoping;
          Alcotest.test_case "call window" `Quick test_interp_call_window;
          Alcotest.test_case "f16 rounding in kernels" `Quick test_interp_f16_kernel_rounds;
        ] );
    ]
