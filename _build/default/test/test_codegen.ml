(* C emission: structure of the generated code, golden 8x12 kernel, and —
   when a host C compiler is available — syntactic validation of the AVX-512
   retargeting plus a numeric end-to-end check compiled and executed on the
   host. *)

module C = Exo_codegen.C_emit
module Family = Exo_ukr_gen.Family

let gen ?kit ~mr ~nr () = (Family.generate ?kit ~mr ~nr ()).Family.proc

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains msg hay needle =
  Alcotest.(check bool) (msg ^ ": contains " ^ needle) true (contains hay needle)

let test_8x12_structure () =
  let c = C.proc_to_c (gen ~mr:8 ~nr:12 ()) in
  check_contains "decl" c "float32x4_t C_reg[12][2];";
  check_contains "A regs" c "float32x4_t A_reg[2];";
  check_contains "B regs" c "float32x4_t B_reg[3];";
  check_contains "k loop" c "for (int_fast32_t k = 0; k < KC; k++)";
  check_contains "vld" c "vld1q_f32(&Ac[k * 8 + 0])";
  check_contains "fmla" c
    "vfmaq_laneq_f32(C_reg[4 * jt + jtt][it], A_reg[it], B_reg[jt], jtt)";
  check_contains "vst" c "vst1q_f32(&C[";
  check_contains "signature" c
    "void uk_8x12_neon_f32(int_fast32_t KC, const float* alpha, const float* Ac, const float* Bc, const float* beta, float* C)"

let test_const_qualifiers () =
  let c = C.proc_to_c (gen ~mr:8 ~nr:12 ()) in
  check_contains "read-only A" c "const float* Ac";
  check_contains "written C is not const" c ", float* C)"

let test_row_kernel_emits () =
  let c = C.proc_to_c (gen ~mr:1 ~nr:12 ()) in
  check_contains "scalar-broadcast fma" c "vfmaq_n_f32";
  check_contains "C loads vectorized over j" c "vld1q_f32(&C["

let test_f16_kernel_emits () =
  let c = C.proc_to_c (gen ~kit:Exo_ukr_gen.Kits.neon_f16 ~mr:8 ~nr:16 ()) in
  check_contains "f16 type" c "float16x8_t";
  check_contains "f16 intrinsics" c "vfmaq_laneq_f16";
  check_contains "f16 pointers" c "const float16_t* Ac"

let test_scalar_kernel_emits () =
  let c = C.proc_to_c (gen ~mr:3 ~nr:5 ()) in
  check_contains "plain loops" c "C[j * 3 + i] += Ac[k * 3 + i] * Bc[k * 5 + j];"

let test_compilation_unit () =
  let procs = [ gen ~mr:8 ~nr:12 (); gen ~mr:8 ~nr:8 () ] in
  let unit_ = C.compilation_unit ~header_comment:"test" procs in
  check_contains "header include once" unit_ "#include <arm_neon.h>";
  check_contains "both kernels" unit_ "uk_8x8_neon_f32";
  let h = C.header procs in
  check_contains "prototypes" h "void uk_8x12_neon_f32(";
  check_contains "guard" h "#ifndef EXO_UKR_GENERATED_H"

let test_register_access_rejected () =
  (* a kernel that still addresses a register buffer element-wise (i.e. was
     never fully vectorized) must not emit *)
  let open Exo_ir in
  let open Ir in
  let open Builder in
  let reg = Sym.fresh "reg" and out = Sym.fresh "out" and i = Sym.fresh "i" in
  let p =
    mk_proc ~name:"bad"
      ~args:[ tensor_arg out Dtype.F32 [ int 4 ] ]
      [
        SAlloc (reg, Dtype.F32, [ int 4 ], Exo_isa.Neon.mem);
        loopn i (int 4) [ assign reg [ var i ] (flt 0.0) ];
        loopn (Sym.fresh "i") (int 4) [ assign out [ var i ] (rd reg [ var i ]) ];
      ]
  in
  Alcotest.(check bool) "unvectorized register access rejected" true
    (try
       ignore (C.proc_to_c p);
       false
     with C.Codegen_error _ -> true)

(* --- host-compiler validation ---------------------------------------- *)

let have_gcc = Sys.command "gcc --version > /dev/null 2>&1" = 0

let have_avx512 =
  have_gcc && Sys.command "echo | gcc -mavx512f -E - > /dev/null 2>&1" = 0

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let have_avx2 =
  have_gcc && Sys.command "echo | gcc -mavx2 -mfma -E - > /dev/null 2>&1" = 0

let test_avx2_compiles () =
  if not have_avx2 then ()
  else begin
    let p = gen ~kit:Exo_ukr_gen.Kits.avx2_f32 ~mr:16 ~nr:6 () in
    let dir = Filename.temp_file "exoukr2" "" in
    Sys.remove dir;
    ignore (Sys.command (Fmt.str "mkdir -p %s" dir));
    let cfile = Filename.concat dir "uk.c" in
    write_file cfile (C.compilation_unit [ p ]);
    let rc =
      Sys.command
        (Fmt.str "gcc -mavx2 -mfma -O2 -c %s -o %s 2> /dev/null" cfile
           (Filename.concat dir "uk.o"))
    in
    Alcotest.(check int) "gcc accepts the emitted AVX2 C" 0 rc
  end

(* Compile an AVX2 kernel with a checking main() and run it: most x86-64
   hosts (unlike AVX-512) can execute this. *)
let test_avx2_runs () =
  if not have_avx2 then ()
  else begin
    let cpu_has = Sys.command "grep -q avx2 /proc/cpuinfo 2>/dev/null" = 0 in
    let cpu_fma = Sys.command "grep -q fma /proc/cpuinfo 2>/dev/null" = 0 in
    if not (cpu_has && cpu_fma) then ()
    else begin
      let p = gen ~kit:Exo_ukr_gen.Kits.avx2_f32 ~mr:8 ~nr:4 () in
      let main =
        {|
#include <stdio.h>
int main(void) {
  enum { MR = 8, NR = 4, KC = 29 };
  static float Ac[KC*MR], Bc[KC*NR], C[NR*MR], R[NR*MR], one = 1.0f;
  for (int i = 0; i < KC*MR; i++) Ac[i] = (float)(i % 7 - 3);
  for (int i = 0; i < KC*NR; i++) Bc[i] = (float)(i % 5 - 2);
  for (int i = 0; i < NR*MR; i++) C[i] = R[i] = (float)(i % 3);
  for (int k = 0; k < KC; k++)
    for (int j = 0; j < NR; j++)
      for (int i = 0; i < MR; i++)
        R[j*MR + i] += Ac[k*MR + i] * Bc[k*NR + j];
  uk_8x4_avx2_f32(KC, &one, Ac, Bc, &one, C);
  for (int i = 0; i < NR*MR; i++)
    if (C[i] != R[i]) { printf("mismatch at %d: %f vs %f\n", i, C[i], R[i]); return 1; }
  return 0;
}
|}
      in
      let dir = Filename.temp_file "exoukr3" "" in
      Sys.remove dir;
      ignore (Sys.command (Fmt.str "mkdir -p %s" dir));
      let cfile = Filename.concat dir "run.c" in
      write_file cfile (C.compilation_unit [ p ] ^ main);
      let exe = Filename.concat dir "run" in
      let rc =
        Sys.command (Fmt.str "gcc -mavx2 -mfma -O2 %s -o %s 2> /dev/null" cfile exe)
      in
      Alcotest.(check int) "compiles" 0 rc;
      Alcotest.(check int) "emitted AVX2 kernel computes correctly on this host" 0
        (Sys.command exe)
    end
  end

let test_avx512_compiles () =
  if not have_avx512 then ()
  else begin
    let p = gen ~kit:Exo_ukr_gen.Kits.avx512_f32 ~mr:32 ~nr:6 () in
    let dir = Filename.temp_file "exoukr" "" in
    Sys.remove dir;
    ignore (Sys.command (Fmt.str "mkdir -p %s" dir));
    let cfile = Filename.concat dir "uk.c" in
    write_file cfile (C.compilation_unit [ p ]);
    let rc =
      Sys.command
        (Fmt.str "gcc -mavx512f -O2 -c %s -o %s 2> /dev/null" cfile
           (Filename.concat dir "uk.o"))
    in
    Alcotest.(check int) "gcc accepts the emitted AVX-512 C" 0 rc
  end

(* Compile an AVX-512 kernel together with a checking main() and execute it:
   real-hardware validation of the emitted code (runs only on x86-64 hosts
   with AVX-512; gcc's -mavx512f alone does not guarantee the CPU has it,
   so we let the harness tell us). *)
let test_avx512_runs () =
  if not have_avx512 then ()
  else begin
    let cpu_has = Sys.command "grep -q avx512f /proc/cpuinfo 2>/dev/null" = 0 in
    if not cpu_has then ()
    else begin
      let p = gen ~kit:Exo_ukr_gen.Kits.avx512_f32 ~mr:16 ~nr:4 () in
      let main =
        {|
#include <stdio.h>
#include <stdlib.h>
int main(void) {
  enum { MR = 16, NR = 4, KC = 37 };
  static float Ac[KC*MR], Bc[KC*NR], C[NR*MR], R[NR*MR], one = 1.0f;
  for (int i = 0; i < KC*MR; i++) Ac[i] = (float)(i % 7 - 3);
  for (int i = 0; i < KC*NR; i++) Bc[i] = (float)(i % 5 - 2);
  for (int i = 0; i < NR*MR; i++) C[i] = R[i] = (float)(i % 3);
  for (int k = 0; k < KC; k++)
    for (int j = 0; j < NR; j++)
      for (int i = 0; i < MR; i++)
        R[j*MR + i] += Ac[k*MR + i] * Bc[k*NR + j];
  uk_16x4_avx512_f32(KC, &one, Ac, Bc, &one, C);
  for (int i = 0; i < NR*MR; i++)
    if (C[i] != R[i]) { printf("mismatch at %d: %f vs %f\n", i, C[i], R[i]); return 1; }
  return 0;
}
|}
      in
      let dir = Filename.temp_file "exoukr" "" in
      Sys.remove dir;
      ignore (Sys.command (Fmt.str "mkdir -p %s" dir));
      let cfile = Filename.concat dir "run.c" in
      write_file cfile (C.compilation_unit [ p ] ^ main);
      let exe = Filename.concat dir "run" in
      let rc = Sys.command (Fmt.str "gcc -mavx512f -O2 %s -o %s 2> /dev/null" cfile exe) in
      Alcotest.(check int) "compiles" 0 rc;
      Alcotest.(check int) "emitted kernel computes the right values on hardware" 0
        (Sys.command exe)
    end
  end

let () =
  Alcotest.run "codegen"
    [
      ( "emission",
        [
          Alcotest.test_case "8x12 structure" `Quick test_8x12_structure;
          Alcotest.test_case "const qualifiers" `Quick test_const_qualifiers;
          Alcotest.test_case "row kernel" `Quick test_row_kernel_emits;
          Alcotest.test_case "f16 kernel" `Quick test_f16_kernel_emits;
          Alcotest.test_case "scalar kernel" `Quick test_scalar_kernel_emits;
          Alcotest.test_case "compilation unit" `Quick test_compilation_unit;
          Alcotest.test_case "register access rejected" `Quick test_register_access_rejected;
        ] );
      ( "host-compiler",
        [
          Alcotest.test_case "avx512 compiles" `Quick test_avx512_compiles;
          Alcotest.test_case "avx512 runs" `Quick test_avx512_runs;
          Alcotest.test_case "avx2 compiles" `Quick test_avx2_compiles;
          Alcotest.test_case "avx2 runs" `Quick test_avx2_runs;
        ] );
    ]
