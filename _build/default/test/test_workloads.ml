(* DNN workloads: Tables I and II recomputed from the layer shapes, and the
   IM2ROW lowering validated against direct convolution. *)

module C = Exo_workloads.Conv
module W = Exo_workloads.Models
module M = Exo_blis.Matrix

let triple = Alcotest.(triple int int int)

let test_table1_recomputed () =
  List.iter2
    (fun (l : W.layer) expected ->
      Alcotest.check triple (Fmt.str "ResNet50 layer %d" l.W.id) expected (W.gemm_dims l))
    W.resnet50 W.table1_expected

let test_table2_recomputed () =
  List.iter2
    (fun (l : W.layer) expected ->
      if l.W.id = 7 then
        (* the paper's Table II prints n = 256 here; VGG16 conv4_1 has 512
           output channels (see Models) *)
        let m, n, k = W.gemm_dims l in
        Alcotest.check triple "VGG16 layer 7 (paper typo corrected)" (784, 512, 2304)
          (m, n, k)
      else
        Alcotest.check triple (Fmt.str "VGG16 layer %d" l.W.id) expected (W.gemm_dims l))
    W.vgg16 W.table2_expected

let test_layer_counts () =
  (* ResNet50 v1.5 has 53 conv layers; Table I covers all of them *)
  let total = List.fold_left (fun acc (l : W.layer) -> acc + l.W.count) 0 W.resnet50 in
  Alcotest.(check int) "53 conv layers in ResNet50 v1.5" 53 total;
  let vgg = List.fold_left (fun acc (l : W.layer) -> acc + l.W.count) 0 W.vgg16 in
  Alcotest.(check int) "13 conv layers in VGG16" 13 vgg

let test_out_dims () =
  (* conv1 of ResNet50: 224 → 112 under 7x7/s2/p3 *)
  let l = List.hd W.resnet50 in
  Alcotest.(check (pair int int)) "7x7 s2 p3 output" (112, 112)
    (C.out_dims l.W.spec ~h:224 ~w:224)

let test_im2row_shape () =
  let spec = { C.cin = 3; cout = 5; kh = 3; kw = 3; stride = 1; pad = 1 } in
  let input = C.tensor_create ~init:1.0 8 8 3 in
  let m = C.im2row spec input in
  Alcotest.(check int) "rows = output pixels" 64 m.M.rows;
  Alcotest.(check int) "cols = patch size" 27 m.M.cols

let test_im2row_padding_zeros () =
  let spec = { C.cin = 1; cout = 1; kh = 3; kw = 3; stride = 1; pad = 1 } in
  let input = C.tensor_create ~init:1.0 4 4 1 in
  let m = C.im2row spec input in
  (* the first row corresponds to output (0,0): its top-left taps are pad *)
  Alcotest.(check (float 0.0)) "padded corner is zero" 0.0 (M.get m 0 0);
  Alcotest.(check (float 0.0)) "center is data" 1.0 (M.get m 0 4)

let check_conv_equiv name spec h w =
  let st = Random.State.make [| h; w; spec.C.cin; spec.C.cout |] in
  let input = C.tensor_random h w spec.C.cin st in
  let weights = M.random_int (spec.C.kh * spec.C.kw * spec.C.cin) spec.C.cout st in
  let d = C.direct spec input weights in
  let g = C.via_gemm spec input weights in
  Alcotest.(check bool) (name ^ ": im2row∘gemm ≡ direct") true (C.tensor_equal d g)

let test_lowering_equivalence_cases () =
  check_conv_equiv "3x3 s1 p1" { C.cin = 3; cout = 4; kh = 3; kw = 3; stride = 1; pad = 1 } 6 6;
  check_conv_equiv "1x1 s1 p0" { C.cin = 5; cout = 2; kh = 1; kw = 1; stride = 1; pad = 0 } 5 7;
  check_conv_equiv "3x3 s2 p1" { C.cin = 2; cout = 3; kh = 3; kw = 3; stride = 2; pad = 1 } 9 9;
  check_conv_equiv "7x7 s2 p3" { C.cin = 3; cout = 2; kh = 7; kw = 7; stride = 2; pad = 3 } 14 14;
  check_conv_equiv "5x5 s1 p2 rect" { C.cin = 1; cout = 1; kh = 5; kw = 5; stride = 1; pad = 2 } 7 11

let gen_conv_case : (C.spec * int * int) QCheck2.Gen.t =
  let open QCheck2.Gen in
  int_range 1 3 >>= fun cin ->
  int_range 1 3 >>= fun cout ->
  oneofl [ 1; 3 ] >>= fun kh ->
  int_range 1 2 >>= fun stride ->
  int_range 0 1 >>= fun pad ->
  int_range (max kh 4) 8 >>= fun h ->
  int_range (max kh 4) 8 >>= fun w ->
  return ({ C.cin; cout; kh; kw = kh; stride; pad }, h, w)

let prop_lowering_equivalence =
  QCheck2.Test.make ~name:"im2row∘gemm ≡ direct conv (random specs)" ~count:25
    gen_conv_case
    (fun (spec, h, w) ->
      let st = Random.State.make [| h; w; spec.C.cout |] in
      let input = C.tensor_random h w spec.C.cin st in
      let weights = M.random_int (spec.C.kh * spec.C.kw * spec.C.cin) spec.C.cout st in
      C.tensor_equal (C.direct spec input weights) (C.via_gemm spec input weights))

let test_conv_via_blis_gemm () =
  (* the whole stack together: im2row + blocked GEMM with Exo kernels *)
  let spec = { C.cin = 3; cout = 8; kh = 3; kw = 3; stride = 1; pad = 1 } in
  let st = Random.State.make [| 11 |] in
  let input = C.tensor_random 6 6 3 st in
  let weights = M.random_int 27 8 st in
  let d = C.direct spec input weights in
  let a = C.im2row spec input in
  let c = M.create 36 8 in
  Exo_blis.Gemm.blis
    ~blocking:{ Exo_blis.Analytical.mc = 16; kc = 8; nc = 24 }
    ~mr:8 ~nr:12
    ~ukr:(Exo_blis.Registry.exo_ukr ())
    a weights c;
  let ok = ref true in
  for oi = 0 to 5 do
    for oj = 0 to 5 do
      for co = 0 to 7 do
        if Float.abs (C.tget d oi oj co -. M.get c ((oi * 6) + oj) co) > 1e-9 then
          ok := false
      done
    done
  done;
  Alcotest.(check bool) "conv via im2row + BLIS + Exo kernels" true !ok

let () =
  Alcotest.run "workloads"
    [
      ( "tables",
        [
          Alcotest.test_case "Table I recomputed" `Quick test_table1_recomputed;
          Alcotest.test_case "Table II recomputed" `Quick test_table2_recomputed;
          Alcotest.test_case "layer counts" `Quick test_layer_counts;
          Alcotest.test_case "output dims" `Quick test_out_dims;
        ] );
      ( "im2row",
        [
          Alcotest.test_case "shape" `Quick test_im2row_shape;
          Alcotest.test_case "padding" `Quick test_im2row_padding_zeros;
          Alcotest.test_case "lowering cases" `Quick test_lowering_equivalence_cases;
          QCheck_alcotest.to_alcotest prop_lowering_equivalence;
          Alcotest.test_case "conv via full stack" `Quick test_conv_via_blis_gemm;
        ] );
    ]
