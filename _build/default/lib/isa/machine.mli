(** Machine descriptions for the performance simulators.

    The paper's testbed is one core of the NVIDIA Carmel (ARM v8.2) at
    2.3 GHz; {!carmel} encodes a Carmel-class core. All parameters are
    ordinary micro-architecture numbers — the simulators derive every figure
    from these plus each kernel's own instruction trace; nothing is fitted
    per-figure. *)

type cache = { size_kib : int; assoc : int; line_bytes : int }

type t = {
  name : string;
  freq_ghz : float;
  issue_width : int;
  vec : Memories.info;  (** register class kernels are scheduled onto *)
  fma_pipes : int;
  load_ports : int;
  store_ports : int;
  fma_lat : int;  (** accumulate-to-accumulate forwarding latency, cycles *)
  l1 : cache;
  l2 : cache;
  l3 : cache;
  l1_bw : float;  (** sustained bytes/cycle *)
  l2_bw : float;
  l3_bw : float;
  dram_bw : float;
  l3_lat : int;  (** load-to-use latency, cycles *)
  dram_lat : int;
}

val cache_bytes : cache -> int
val cache_sets : cache -> int

(** Peak vector FLOP/s: lanes × 2 × pipes × f. *)
val peak_gflops : t -> Exo_ir.Dtype.t -> float

(** NVIDIA Carmel-class core (Jetson AGX Xavier): 2×128-bit FMA pipes,
    36.8 GFLOPS FP32 peak at 2.3 GHz, 64K/2M/4M caches. *)
val carmel : t

(** Carmel with the 8-lane half-precision register view (ARMv8.2-FP16). *)
val carmel_fp16 : t

(** A generic 2-FMA-pipe AVX-512 server core (the Section III-C stand-in). *)
val avx512_server : t

(** A small in-order RISC-V vector core (VLEN = 128). *)
val rvv_core : t
