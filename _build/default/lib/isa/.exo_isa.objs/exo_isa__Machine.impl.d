lib/isa/machine.ml: Memories
