lib/isa/avx512.ml: Exo_ir Instr_def Memories
