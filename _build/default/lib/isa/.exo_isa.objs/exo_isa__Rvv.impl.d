lib/isa/rvv.ml: Exo_ir Instr_def Memories
