lib/isa/instr_def.mli: Exo_ir
