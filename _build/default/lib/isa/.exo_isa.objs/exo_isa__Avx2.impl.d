lib/isa/avx2.ml: Exo_ir Instr_def Memories
