lib/isa/machine.mli: Exo_ir Memories
