lib/isa/instr_def.ml: Builder Exo_check Exo_ir Ir Sym
