lib/isa/neon.ml: Exo_ir Instr_def Memories
