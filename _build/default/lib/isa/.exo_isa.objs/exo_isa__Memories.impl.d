lib/isa/memories.ml: Dtype Exo_ir Fmt List Mem Option
