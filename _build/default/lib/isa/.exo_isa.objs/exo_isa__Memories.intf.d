lib/isa/memories.mli: Exo_ir
