(** Intel AVX2 hardware library (256-bit, 8 × f32).

    A second x86 target alongside AVX-512, showing the retargeting story at
    a different vector width and with the smaller 16-entry register file
    (which the tuner's feasibility check must respect). Like AVX-512 there
    is no lane-indexed FMA, so schedules use [broadcast] + element-wise FMA. *)

let mem = Memories.avx2_mem
let header = Memories.avx2.Memories.header
let dt = Exo_ir.Dtype.F32
let lanes = 8

let loadu_8xf32 =
  Instr_def.load ~name:"mm256_loadu_8xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = _mm256_loadu_ps(&{src_data});"

let storeu_8xf32 =
  Instr_def.store ~name:"mm256_storeu_8xf32" ~header ~mem ~dt ~lanes
    ~fmt:"_mm256_storeu_ps(&{dst_data}, {src_data});"

let fmadd_8xf32 =
  Instr_def.fma_vv ~name:"mm256_fmadd_8xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = _mm256_fmadd_ps({lhs_data}, {rhs_data}, {dst_data});"

let broadcast_8xf32 =
  Instr_def.bcast ~name:"mm256_broadcast_8xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = _mm256_broadcast_ss(&{src_data});"

let setzero_8xf32 =
  Instr_def.zero ~name:"mm256_setzero_8xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = _mm256_setzero_ps();"

let mul_8xf32 =
  Instr_def.mul_vv ~name:"mm256_mul_8xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = _mm256_mul_ps({lhs_data}, {rhs_data});"

let all = [ loadu_8xf32; storeu_8xf32; fmadd_8xf32; broadcast_8xf32; setzero_8xf32; mul_8xf32 ]
