(** Combinators for defining hardware instructions.

    An Exo instruction is an ordinary procedure whose body gives its
    semantics and whose [@instr] annotation gives the C to emit — the
    "library-based description" of the target that the paper identifies as
    Exo's key portability mechanism (Fig. 3). The combinators below build the
    handful of shapes GEMM micro-kernels need: contiguous vector load/store,
    lane-indexed FMA, element-wise FMA, scalar-broadcast FMA, broadcast,
    zeroing, and element-wise/scalar multiply.

    Every definition is type-checked at construction time, so a typo in a
    hardware library fails at startup rather than mid-schedule. *)

open Exo_ir
open Ir
open Builder

type spec =
  name:string ->
  fmt:string ->
  header:string ->
  mem:Exo_ir.Mem.t ->
  dt:Exo_ir.Dtype.t ->
  lanes:int ->
  Exo_ir.Ir.proc

let check p =
  Exo_check.Wellformed.check_proc p;
  p

let mk ~name ~fmt ~kind ~header ~preds ~args body =
  check
    (mk_proc ~name ~args ~preds
       ~instr:{ ci_fmt = fmt; ci_includes = [ header ]; ci_kind = kind }
       body)

let unit_stride b = eq (stride b 0) (int 1)

(** [dst @ reg ← src @ DRAM], contiguous. *)
let load ~name ~fmt ~header ~mem ~dt ~lanes =
  let dst = Sym.fresh "dst" and src = Sym.fresh "src" and i = Sym.fresh "i" in
  mk ~name ~fmt ~kind:KLoad ~header
    ~preds:[ unit_stride src; unit_stride dst ]
    ~args:
      [
        tensor_arg ~mem dst dt [ int lanes ];
        tensor_arg src dt [ int lanes ];
      ]
    [ loopn i (int lanes) [ assign dst [ var i ] (rd src [ var i ]) ] ]

(** [dst @ DRAM ← src @ reg], contiguous. *)
let store ~name ~fmt ~header ~mem ~dt ~lanes =
  let dst = Sym.fresh "dst" and src = Sym.fresh "src" and i = Sym.fresh "i" in
  mk ~name ~fmt ~kind:KStore ~header
    ~preds:[ unit_stride src; unit_stride dst ]
    ~args:
      [
        tensor_arg dst dt [ int lanes ];
        tensor_arg ~mem src dt [ int lanes ];
      ]
    [ loopn i (int lanes) [ assign dst [ var i ] (rd src [ var i ]) ] ]

(** [dst\[i\] += lhs\[i\] * rhs\[l\]] — the Neon [vfmaq_laneq] shape
    (Fig. 3 of the paper). *)
let fma_lane ~name ~fmt ~header ~mem ~dt ~lanes =
  let dst = Sym.fresh "dst"
  and lhs = Sym.fresh "lhs"
  and rhs = Sym.fresh "rhs"
  and l = Sym.fresh "l"
  and i = Sym.fresh "i" in
  mk ~name ~fmt ~kind:KFma ~header
    ~preds:
      [
        unit_stride dst;
        unit_stride lhs;
        unit_stride rhs;
        ge (var l) (int 0);
        lt (var l) (int lanes);
      ]
    ~args:
      [
        tensor_arg ~mem dst dt [ int lanes ];
        tensor_arg ~mem lhs dt [ int lanes ];
        tensor_arg ~mem rhs dt [ int lanes ];
        index_arg l;
      ]
    [ loopn i (int lanes) [ reduce dst [ var i ] (mul (rd lhs [ var i ]) (rd rhs [ var l ])) ] ]

(** [dst\[i\] += lhs\[i\] * rhs\[i\]] — element-wise FMA
    ([vfmaq_f32] / [_mm512_fmadd_ps]). *)
let fma_vv ~name ~fmt ~header ~mem ~dt ~lanes =
  let dst = Sym.fresh "dst"
  and lhs = Sym.fresh "lhs"
  and rhs = Sym.fresh "rhs"
  and i = Sym.fresh "i" in
  mk ~name ~fmt ~kind:KFma ~header
    ~preds:[ unit_stride dst; unit_stride lhs; unit_stride rhs ]
    ~args:
      [
        tensor_arg ~mem dst dt [ int lanes ];
        tensor_arg ~mem lhs dt [ int lanes ];
        tensor_arg ~mem rhs dt [ int lanes ];
      ]
    [ loopn i (int lanes) [ reduce dst [ var i ] (mul (rd lhs [ var i ]) (rd rhs [ var i ])) ] ]

(** [dst\[i\] += s\[0\] * rhs\[i\]] — scalar-broadcast FMA (RVV [vfmacc.vf]),
    used by the non-packed variant of Section III-B. *)
let fma_scalar ~name ~fmt ~header ~mem ~dt ~lanes =
  let dst = Sym.fresh "dst"
  and s = Sym.fresh "s"
  and rhs = Sym.fresh "rhs"
  and i = Sym.fresh "i" in
  mk ~name ~fmt ~kind:KFma ~header
    ~preds:[ unit_stride dst; unit_stride rhs ]
    ~args:
      [
        tensor_arg ~mem dst dt [ int lanes ];
        tensor_arg s dt [ int 1 ];
        tensor_arg ~mem rhs dt [ int lanes ];
      ]
    [ loopn i (int lanes) [ reduce dst [ var i ] (mul (rd s [ int 0 ]) (rd rhs [ var i ])) ] ]

(** [dst\[i\] += lhs\[i\] * s\[0\]] — scalar-broadcast FMA with the scalar as
    the second factor; same hardware op as {!fma_scalar}, matching the
    commuted source shape [C += A * b]. *)
let fma_scalar_r ~name ~fmt ~header ~mem ~dt ~lanes =
  let dst = Sym.fresh "dst"
  and lhs = Sym.fresh "lhs"
  and s = Sym.fresh "s"
  and i = Sym.fresh "i" in
  mk ~name ~fmt ~kind:KFma ~header
    ~preds:[ unit_stride dst; unit_stride lhs ]
    ~args:
      [
        tensor_arg ~mem dst dt [ int lanes ];
        tensor_arg ~mem lhs dt [ int lanes ];
        tensor_arg s dt [ int 1 ];
      ]
    [ loopn i (int lanes) [ reduce dst [ var i ] (mul (rd lhs [ var i ]) (rd s [ int 0 ])) ] ]

(** [dst\[i\] = src\[0\]] — broadcast a scalar from memory into all lanes. *)
let bcast ~name ~fmt ~header ~mem ~dt ~lanes =
  let dst = Sym.fresh "dst" and src = Sym.fresh "src" and i = Sym.fresh "i" in
  mk ~name ~fmt ~kind:KBcast ~header
    ~preds:[ unit_stride dst ]
    ~args:[ tensor_arg ~mem dst dt [ int lanes ]; tensor_arg src dt [ int 1 ] ]
    [ loopn i (int lanes) [ assign dst [ var i ] (rd src [ int 0 ]) ] ]

(** [dst\[i\] = 0] — zero a register (the beta = 0 specialization). *)
let zero ~name ~fmt ~header ~mem ~dt ~lanes =
  let dst = Sym.fresh "dst" and i = Sym.fresh "i" in
  mk ~name ~fmt ~kind:KArith ~header
    ~preds:[ unit_stride dst ]
    ~args:[ tensor_arg ~mem dst dt [ int lanes ] ]
    [ loopn i (int lanes) [ assign dst [ var i ] (flt 0.0) ] ]

(** [dst\[i\] = lhs\[i\] * rhs\[i\]]. *)
let mul_vv ~name ~fmt ~header ~mem ~dt ~lanes =
  let dst = Sym.fresh "dst"
  and lhs = Sym.fresh "lhs"
  and rhs = Sym.fresh "rhs"
  and i = Sym.fresh "i" in
  mk ~name ~fmt ~kind:KArith ~header
    ~preds:[ unit_stride dst; unit_stride lhs; unit_stride rhs ]
    ~args:
      [
        tensor_arg ~mem dst dt [ int lanes ];
        tensor_arg ~mem lhs dt [ int lanes ];
        tensor_arg ~mem rhs dt [ int lanes ];
      ]
    [ loopn i (int lanes) [ assign dst [ var i ] (mul (rd lhs [ var i ]) (rd rhs [ var i ])) ] ]

(** [dst\[i\] = lhs\[i\] * s\[0\]] with [dst] back in addressable memory —
    a fused scale-and-store ([vst1q(vmulq_n(...))]); the alpha/beta scaling
    nests of the full kernel (Fig. 4) compile to this. *)
let store_mul_vs ~name ~fmt ~header ~mem ~dt ~lanes =
  let dst = Sym.fresh "dst"
  and lhs = Sym.fresh "lhs"
  and s = Sym.fresh "s"
  and i = Sym.fresh "i" in
  mk ~name ~fmt ~kind:KStore ~header
    ~preds:[ unit_stride dst; unit_stride lhs ]
    ~args:
      [
        tensor_arg dst dt [ int lanes ];
        tensor_arg ~mem lhs dt [ int lanes ];
        tensor_arg s dt [ int 1 ];
      ]
    [ loopn i (int lanes) [ assign dst [ var i ] (mul (rd lhs [ var i ]) (rd s [ int 0 ])) ] ]

(** [dst\[i\] = lhs\[i\] * s\[0\]] — multiply by a scalar from memory
    (the alpha scaling). *)
let mul_vs ~name ~fmt ~header ~mem ~dt ~lanes =
  let dst = Sym.fresh "dst"
  and lhs = Sym.fresh "lhs"
  and s = Sym.fresh "s"
  and i = Sym.fresh "i" in
  mk ~name ~fmt ~kind:KArith ~header
    ~preds:[ unit_stride dst; unit_stride lhs ]
    ~args:
      [
        tensor_arg ~mem dst dt [ int lanes ];
        tensor_arg ~mem lhs dt [ int lanes ];
        tensor_arg s dt [ int 1 ];
      ]
    [ loopn i (int lanes) [ assign dst [ var i ] (mul (rd lhs [ var i ]) (rd s [ int 0 ])) ] ]
