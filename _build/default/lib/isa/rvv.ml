(** RISC-V Vector hardware library (VLEN = 128, LMUL = 1).

    The paper's future work names RISC-V as the next retargeting goal; this
    library demonstrates it. RVV's [vfmacc.vf] multiplies a *scalar* register
    by a vector, which matches the broadcast-free variant of the generator
    directly (no dup instruction needed on the A side). *)

let mem = Memories.rvv_mem
let header = Memories.rvv.Memories.header
let dt = Exo_ir.Dtype.F32
let lanes = 4

let vle_4xf32 =
  Instr_def.load ~name:"rvv_vle_4xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = __riscv_vle32_v_f32m1(&{src_data}, 4);"

let vse_4xf32 =
  Instr_def.store ~name:"rvv_vse_4xf32" ~header ~mem ~dt ~lanes
    ~fmt:"__riscv_vse32_v_f32m1(&{dst_data}, {src_data}, 4);"

let vfmacc_vv_4xf32 =
  Instr_def.fma_vv ~name:"rvv_vfmacc_vv_4xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = __riscv_vfmacc_vv_f32m1({dst_data}, {lhs_data}, {rhs_data}, 4);"

let vfmacc_vf_4xf32 =
  Instr_def.fma_scalar ~name:"rvv_vfmacc_vf_4xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = __riscv_vfmacc_vf_f32m1({dst_data}, {s_data}, {rhs_data}, 4);"

let vfmacc_vf_r_4xf32 =
  Instr_def.fma_scalar_r ~name:"rvv_vfmacc_vf_r_4xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = __riscv_vfmacc_vf_f32m1({dst_data}, {s_data}, {lhs_data}, 4);"

let vfmv_4xf32 =
  Instr_def.bcast ~name:"rvv_vfmv_4xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = __riscv_vfmv_v_f_f32m1({src_data}, 4);"

let vzero_4xf32 =
  Instr_def.zero ~name:"rvv_vzero_4xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = __riscv_vfmv_v_f_f32m1(0.0f, 4);"

let all =
  [
    vle_4xf32;
    vse_4xf32;
    vfmacc_vv_4xf32;
    vfmacc_vf_4xf32;
    vfmacc_vf_r_4xf32;
    vfmv_4xf32;
    vzero_4xf32;
  ]
