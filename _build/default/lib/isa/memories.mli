(** Register memory spaces and their codegen metadata: register width, the
    C vector type per dtype, the intrinsics header, and the architectural
    register-file budget the simulator's pressure model uses. The IR carries
    only the memory's name; this module owns the hardware facts. *)

type info = {
  mem : Exo_ir.Mem.t;
  reg_bits : int;
  num_regs : int;
  c_vec_type : Exo_ir.Dtype.t -> string option;
  header : string;
}

(** Lanes of one register for a dtype. *)
val lanes_of : info -> Exo_ir.Dtype.t -> int

val neon_mem : Exo_ir.Mem.t

(** The paper's [Neon8f]: the same 128-bit file viewed as 8 × f16. *)
val neon8f_mem : Exo_ir.Mem.t

val avx512_mem : Exo_ir.Mem.t
val avx2_mem : Exo_ir.Mem.t
val rvv_mem : Exo_ir.Mem.t
val neon : info
val neon8f : info
val avx512 : info
val avx2 : info
val rvv : info
val all : info list
val lookup : Exo_ir.Mem.t -> info option
val lookup_exn : Exo_ir.Mem.t -> info
val is_register_mem : Exo_ir.Mem.t -> bool
