(** Intel AVX-512 hardware library.

    Section III-C: retargeting the generator is "changing the third argument
    in the replace statements" — these definitions are that argument for an
    AVX-512 target. AVX-512 has no lane-indexed FMA, so the generator's
    broadcast-style pipeline (Section III-B) pairs [_mm512_set1_ps] with
    [_mm512_fmadd_ps]. *)

let mem = Memories.avx512_mem
let header = Memories.avx512.Memories.header
let dt = Exo_ir.Dtype.F32
let lanes = 16

let loadu_16xf32 =
  Instr_def.load ~name:"mm512_loadu_16xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = _mm512_loadu_ps(&{src_data});"

let storeu_16xf32 =
  Instr_def.store ~name:"mm512_storeu_16xf32" ~header ~mem ~dt ~lanes
    ~fmt:"_mm512_storeu_ps(&{dst_data}, {src_data});"

let fmadd_16xf32 =
  Instr_def.fma_vv ~name:"mm512_fmadd_16xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = _mm512_fmadd_ps({lhs_data}, {rhs_data}, {dst_data});"

let set1_16xf32 =
  Instr_def.bcast ~name:"mm512_set1_16xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = _mm512_set1_ps({src_data});"

let setzero_16xf32 =
  Instr_def.zero ~name:"mm512_setzero_16xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = _mm512_setzero_ps();"

let mul_16xf32 =
  Instr_def.mul_vv ~name:"mm512_mul_16xf32" ~header ~mem ~dt ~lanes
    ~fmt:"{dst_data} = _mm512_mul_ps({lhs_data}, {rhs_data});"

let all = [ loadu_16xf32; storeu_16xf32; fmadd_16xf32; set1_16xf32; setzero_16xf32; mul_16xf32 ]
