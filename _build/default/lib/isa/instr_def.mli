(** Combinators for defining hardware instructions — the user-facing API for
    adding a new target, mirroring Exo's [@instr] (Fig. 3 of the paper): each
    instruction is an ordinary procedure whose body is its semantics and
    whose annotation is the C to emit. Every definition is type-checked at
    construction, so a typo in a hardware library fails at startup.

    All combinators take the instruction [name], the C [fmt] template
    ([{param_data}]/[{param}] holes), the intrinsics [header], the register
    memory [mem], the element type [dt] and the lane count [lanes]. *)

type spec =
  name:string ->
  fmt:string ->
  header:string ->
  mem:Exo_ir.Mem.t ->
  dt:Exo_ir.Dtype.t ->
  lanes:int ->
  Exo_ir.Ir.proc

(** [dst @ reg ← src @ DRAM], contiguous. *)
val load : spec

(** [dst @ DRAM ← src @ reg], contiguous. *)
val store : spec

(** [dst[i] += lhs[i] * rhs[l]] — the Neon [vfmaq_laneq] shape. *)
val fma_lane : spec

(** [dst[i] += lhs[i] * rhs[i]] — element-wise FMA. *)
val fma_vv : spec

(** [dst[i] += s[0] * rhs[i]] — scalar-broadcast FMA (RVV [vfmacc.vf],
    Neon [vfmaq_n]). *)
val fma_scalar : spec

(** [dst[i] += lhs[i] * s[0]] — the commuted scalar FMA, matching
    [C += A * b]-shaped sources. *)
val fma_scalar_r : spec

(** [dst[i] = src[0]] — broadcast a scalar from memory. *)
val bcast : spec

(** [dst[i] = 0] — zero a register (the beta = 0 specialization). *)
val zero : spec

(** [dst[i] = lhs[i] * rhs[i]]. *)
val mul_vv : spec

(** [dst @ DRAM ← lhs[i] * s[0]] — fused scale-and-store (the alpha/beta
    nests of the full kernel). *)
val store_mul_vs : spec

(** [dst[i] = lhs[i] * s[0]]. *)
val mul_vs : spec
