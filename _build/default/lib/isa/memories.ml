(** Register memory spaces and their codegen metadata.

    Exo models each level of the memory hierarchy as a user-defined memory.
    The IR carries only the memory's name ({!Exo_ir.Mem}); this module owns
    the hardware-facing metadata: register width, the C vector type used to
    declare an allocation of a given dtype, the intrinsics header, and the
    architectural register-file budget used by the simulator's
    register-pressure model. *)

open Exo_ir

type info = {
  mem : Mem.t;
  reg_bits : int;  (** width of one register in bits *)
  num_regs : int;  (** architectural registers of this class *)
  c_vec_type : Dtype.t -> string option;
      (** C type declaring one register holding lanes of the dtype *)
  header : string;  (** intrinsics header *)
}

let lanes_of info dt = info.reg_bits / (8 * Dtype.size_bytes dt)

(* --- ARM Neon (128-bit) ------------------------------------------- *)

let neon_mem = Mem.make "Neon"

(** 8-lane half-precision register class; the paper's [Neon8f]. Physically
    the same 128-bit register file as [Neon] — a separate Exo memory so that
    [set_memory] retargets declarations exactly as in Section III-D. *)
let neon8f_mem = Mem.make "Neon8f"

let neon =
  {
    mem = neon_mem;
    reg_bits = 128;
    num_regs = 32;
    c_vec_type =
      (function
      | Dtype.F32 -> Some "float32x4_t"
      | Dtype.F16 -> Some "float16x8_t"
      | Dtype.F64 -> Some "float64x2_t"
      | Dtype.I32 -> Some "int32x4_t"
      | Dtype.I8 -> Some "int8x16_t");
    header = "arm_neon.h";
  }

let neon8f = { neon with mem = neon8f_mem }

(* --- Intel AVX-512 (512-bit) --------------------------------------- *)

let avx512_mem = Mem.make "AVX512"

let avx512 =
  {
    mem = avx512_mem;
    reg_bits = 512;
    num_regs = 32;
    c_vec_type =
      (function
      | Dtype.F32 -> Some "__m512"
      | Dtype.F64 -> Some "__m512d"
      | Dtype.I32 | Dtype.I8 -> Some "__m512i"
      | Dtype.F16 -> Some "__m512h");
    header = "immintrin.h";
  }

(* --- Intel AVX2 (256-bit) ------------------------------------------- *)

let avx2_mem = Mem.make "AVX2"

let avx2 =
  {
    mem = avx2_mem;
    reg_bits = 256;
    num_regs = 16;
    c_vec_type =
      (function
      | Dtype.F32 -> Some "__m256"
      | Dtype.F64 -> Some "__m256d"
      | Dtype.I32 | Dtype.I8 -> Some "__m256i"
      | Dtype.F16 -> None);
    header = "immintrin.h";
  }

(* --- RISC-V Vector (VLEN = 128 configuration) ---------------------- *)

let rvv_mem = Mem.make "RVV"

let rvv =
  {
    mem = rvv_mem;
    reg_bits = 128;
    num_regs = 32;
    c_vec_type =
      (function
      | Dtype.F32 -> Some "vfloat32m1_t"
      | Dtype.F64 -> Some "vfloat64m1_t"
      | Dtype.F16 -> Some "vfloat16m1_t"
      | Dtype.I32 -> Some "vint32m1_t"
      | Dtype.I8 -> Some "vint8m1_t");
    header = "riscv_vector.h";
  }

(* --- Registry ------------------------------------------------------- *)

let all = [ neon; neon8f; avx512; avx2; rvv ]

let lookup (m : Mem.t) : info option =
  List.find_opt (fun i -> Mem.equal i.mem m) all

let lookup_exn (m : Mem.t) : info =
  match lookup m with
  | Some i -> i
  | None -> Fmt.invalid_arg "unknown register memory %a" Mem.pp m

let is_register_mem (m : Mem.t) : bool = Option.is_some (lookup m)
