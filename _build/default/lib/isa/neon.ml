(** ARM Neon hardware library.

    The f32 definitions mirror the paper's Fig. 3 ([neon_vst_4xf32],
    [neon_vfmla_4xf32_4xf32]) and the generator's needs (loads, broadcast,
    element-wise FMA for the non-packed variant, multiplies for alpha/beta).
    The f16 definitions are the ARMv8.2-FP16 8-lane counterparts the paper
    contributed to Exo (Section III-D, memory [Neon8f]). *)

let mem = Memories.neon_mem
let mem8f = Memories.neon8f_mem
let header = Memories.neon.Memories.header

(* --- 32-bit float, 4 lanes ----------------------------------------- *)

let vld_4xf32 =
  Instr_def.load ~name:"neon_vld_4xf32" ~header ~mem ~dt:Exo_ir.Dtype.F32 ~lanes:4
    ~fmt:"{dst_data} = vld1q_f32(&{src_data});"

let vst_4xf32 =
  Instr_def.store ~name:"neon_vst_4xf32" ~header ~mem ~dt:Exo_ir.Dtype.F32 ~lanes:4
    ~fmt:"vst1q_f32(&{dst_data}, {src_data});"

let vfmla_4xf32_4xf32 =
  Instr_def.fma_lane ~name:"neon_vfmla_4xf32_4xf32" ~header ~mem ~dt:Exo_ir.Dtype.F32
    ~lanes:4 ~fmt:"{dst_data} = vfmaq_laneq_f32({dst_data}, {lhs_data}, {rhs_data}, {l});"

let vfmadd_4xf32_4xf32 =
  Instr_def.fma_vv ~name:"neon_vfmadd_4xf32_4xf32" ~header ~mem ~dt:Exo_ir.Dtype.F32
    ~lanes:4 ~fmt:"{dst_data} = vfmaq_f32({dst_data}, {lhs_data}, {rhs_data});"

let vfmacc_scalar_4xf32 =
  Instr_def.fma_scalar ~name:"neon_vfmacc_scalar_4xf32" ~header ~mem
    ~dt:Exo_ir.Dtype.F32 ~lanes:4
    ~fmt:"{dst_data} = vfmaq_n_f32({dst_data}, {rhs_data}, {s_data});"

let vfmacc_scalar_r_4xf32 =
  Instr_def.fma_scalar_r ~name:"neon_vfmacc_scalar_r_4xf32" ~header ~mem
    ~dt:Exo_ir.Dtype.F32 ~lanes:4
    ~fmt:"{dst_data} = vfmaq_n_f32({dst_data}, {lhs_data}, {s_data});"

let vdup_4xf32 =
  Instr_def.bcast ~name:"neon_vdup_4xf32" ~header ~mem ~dt:Exo_ir.Dtype.F32 ~lanes:4
    ~fmt:"{dst_data} = vdupq_n_f32({src_data});"

let vzero_4xf32 =
  Instr_def.zero ~name:"neon_vzero_4xf32" ~header ~mem ~dt:Exo_ir.Dtype.F32 ~lanes:4
    ~fmt:"{dst_data} = vmovq_n_f32(0.0f);"

let vmul_4xf32 =
  Instr_def.mul_vv ~name:"neon_vmul_4xf32" ~header ~mem ~dt:Exo_ir.Dtype.F32 ~lanes:4
    ~fmt:"{dst_data} = vmulq_f32({lhs_data}, {rhs_data});"

let vmul_scalar_4xf32 =
  Instr_def.mul_vs ~name:"neon_vmul_scalar_4xf32" ~header ~mem ~dt:Exo_ir.Dtype.F32
    ~lanes:4 ~fmt:"{dst_data} = vmulq_n_f32({lhs_data}, {s_data});"

let vst_mul_scalar_4xf32 =
  Instr_def.store_mul_vs ~name:"neon_vst_mul_scalar_4xf32" ~header ~mem
    ~dt:Exo_ir.Dtype.F32 ~lanes:4
    ~fmt:"vst1q_f32(&{dst_data}, vmulq_n_f32({lhs_data}, {s_data}));"

(* --- 32-bit integer, 4 lanes ---------------------------------------- *)
(* The paper's limitations discussion (point 5) calls out missing integer
   arithmetic in the HPC libraries; the generator covers it with the same
   schedule machinery. *)

let vld_4xi32 =
  Instr_def.load ~name:"neon_vld_4xi32" ~header ~mem ~dt:Exo_ir.Dtype.I32 ~lanes:4
    ~fmt:"{dst_data} = vld1q_s32(&{src_data});"

let vst_4xi32 =
  Instr_def.store ~name:"neon_vst_4xi32" ~header ~mem ~dt:Exo_ir.Dtype.I32 ~lanes:4
    ~fmt:"vst1q_s32(&{dst_data}, {src_data});"

let vmla_4xi32_4xi32 =
  Instr_def.fma_lane ~name:"neon_vmla_4xi32_4xi32" ~header ~mem ~dt:Exo_ir.Dtype.I32
    ~lanes:4 ~fmt:"{dst_data} = vmlaq_laneq_s32({dst_data}, {lhs_data}, {rhs_data}, {l});"

let vmlad_4xi32_4xi32 =
  Instr_def.fma_vv ~name:"neon_vmlad_4xi32_4xi32" ~header ~mem ~dt:Exo_ir.Dtype.I32
    ~lanes:4 ~fmt:"{dst_data} = vmlaq_s32({dst_data}, {lhs_data}, {rhs_data});"

let vdup_4xi32 =
  Instr_def.bcast ~name:"neon_vdup_4xi32" ~header ~mem ~dt:Exo_ir.Dtype.I32 ~lanes:4
    ~fmt:"{dst_data} = vdupq_n_s32({src_data});"

let i32_instrs = [ vld_4xi32; vst_4xi32; vmla_4xi32_4xi32; vmlad_4xi32_4xi32; vdup_4xi32 ]

(* --- 16-bit float, 8 lanes (ARMv8.2-FP16) --------------------------- *)

let vld_8xf16 =
  Instr_def.load ~name:"neon_vld_8xf16" ~header ~mem:mem8f ~dt:Exo_ir.Dtype.F16
    ~lanes:8 ~fmt:"{dst_data} = vld1q_f16(&{src_data});"

let vst_8xf16 =
  Instr_def.store ~name:"neon_vst_8xf16" ~header ~mem:mem8f ~dt:Exo_ir.Dtype.F16
    ~lanes:8 ~fmt:"vst1q_f16(&{dst_data}, {src_data});"

let vfmla_8xf16_8xf16 =
  Instr_def.fma_lane ~name:"neon_vfmla_8xf16_8xf16" ~header ~mem:mem8f
    ~dt:Exo_ir.Dtype.F16 ~lanes:8
    ~fmt:"{dst_data} = vfmaq_laneq_f16({dst_data}, {lhs_data}, {rhs_data}, {l});"

let vfmadd_8xf16_8xf16 =
  Instr_def.fma_vv ~name:"neon_vfmadd_8xf16_8xf16" ~header ~mem:mem8f
    ~dt:Exo_ir.Dtype.F16 ~lanes:8
    ~fmt:"{dst_data} = vfmaq_f16({dst_data}, {lhs_data}, {rhs_data});"

let vdup_8xf16 =
  Instr_def.bcast ~name:"neon_vdup_8xf16" ~header ~mem:mem8f ~dt:Exo_ir.Dtype.F16
    ~lanes:8 ~fmt:"{dst_data} = vdupq_n_f16({src_data});"

let vzero_8xf16 =
  Instr_def.zero ~name:"neon_vzero_8xf16" ~header ~mem:mem8f ~dt:Exo_ir.Dtype.F16
    ~lanes:8 ~fmt:"{dst_data} = vmovq_n_f16(0.0f16);"

let vmul_8xf16 =
  Instr_def.mul_vv ~name:"neon_vmul_8xf16" ~header ~mem:mem8f ~dt:Exo_ir.Dtype.F16
    ~lanes:8 ~fmt:"{dst_data} = vmulq_f16({lhs_data}, {rhs_data});"

let f32_instrs =
  [
    vld_4xf32;
    vst_4xf32;
    vfmla_4xf32_4xf32;
    vfmadd_4xf32_4xf32;
    vfmacc_scalar_4xf32;
    vfmacc_scalar_r_4xf32;
    vdup_4xf32;
    vzero_4xf32;
    vmul_4xf32;
    vmul_scalar_4xf32;
    vst_mul_scalar_4xf32;
  ]

let f16_instrs =
  [
    vld_8xf16;
    vst_8xf16;
    vfmla_8xf16_8xf16;
    vfmadd_8xf16_8xf16;
    vdup_8xf16;
    vzero_8xf16;
    vmul_8xf16;
  ]

let all = f32_instrs @ i32_instrs @ f16_instrs
