(** Machine descriptions for the performance simulator.

    The paper's testbed is one core of the NVIDIA Carmel (ARM v8.2) in a
    Jetson AGX Xavier at 2.3 GHz; we encode a Carmel-class core here and use
    it everywhere the paper reports GFLOPS. All parameters are ordinary
    micro-architecture numbers (pipe counts, latencies, cache geometry,
    per-level bandwidths) — the simulator derives every figure from these
    plus the kernel's own instruction trace; nothing is fitted per-figure. *)

type cache = { size_kib : int; assoc : int; line_bytes : int }

type t = {
  name : string;
  freq_ghz : float;
  issue_width : int;  (** total micro-ops issued per cycle *)
  vec : Memories.info;  (** register class micro-kernels are scheduled onto *)
  fma_pipes : int;  (** vector FMA units *)
  load_ports : int;
  store_ports : int;
  fma_lat : int;  (** accumulate-to-accumulate forwarding latency, cycles *)
  l1 : cache;
  l2 : cache;
  l3 : cache;
  l1_bw : float;  (** sustained bytes/cycle from L1 to registers *)
  l2_bw : float;
  l3_bw : float;
  dram_bw : float;
  l3_lat : int;  (** load-to-use latency from L3, cycles *)
  dram_lat : int;
}

let cache_bytes c = c.size_kib * 1024
let cache_sets c = cache_bytes c / (c.assoc * c.line_bytes)

(** Peak vector FLOP/s for a dtype: lanes × 2 (fused mul-add) × pipes × f. *)
let peak_gflops (m : t) dt =
  let lanes = Memories.lanes_of m.vec dt in
  float_of_int (lanes * 2 * m.fma_pipes) *. m.freq_ghz

(** NVIDIA Carmel-class core (Jetson AGX Xavier), the paper's testbed:
    2×128-bit FMA pipes → 36.8 GFLOPS FP32 peak at 2.3 GHz; 64 KiB L1D,
    2 MiB shared L2, 4 MiB L3. *)
let carmel =
  {
    name = "Carmel @ 2.3 GHz";
    freq_ghz = 2.3;
    issue_width = 6;
    vec = Memories.neon;
    fma_pipes = 2;
    load_ports = 2;
    store_ports = 1;
    fma_lat = 5;
    l1 = { size_kib = 64; assoc = 4; line_bytes = 64 };
    l2 = { size_kib = 2048; assoc = 16; line_bytes = 64 };
    l3 = { size_kib = 4096; assoc = 16; line_bytes = 64 };
    l1_bw = 32.0;
    l2_bw = 32.0;
    l3_bw = 16.0;
    dram_bw = 8.0;
    l3_lat = 40;
    dram_lat = 130;
  }

(** Carmel with the half-precision register view (ARMv8.2-FP16): same core,
    8 lanes per 128-bit register. *)
let carmel_fp16 = { carmel with vec = Memories.neon8f }

(** A generic AVX-512 server core, used by the Section III-C portability
    example (the paper leaves Intel to future work, so this stands in for
    any 2-FMA-pipe AVX-512 part). *)
let avx512_server =
  {
    name = "AVX-512 server core @ 2.5 GHz";
    freq_ghz = 2.5;
    issue_width = 6;
    vec = Memories.avx512;
    fma_pipes = 2;
    load_ports = 2;
    store_ports = 1;
    fma_lat = 4;
    l1 = { size_kib = 32; assoc = 8; line_bytes = 64 };
    l2 = { size_kib = 1024; assoc = 16; line_bytes = 64 };
    l3 = { size_kib = 16384; assoc = 11; line_bytes = 64 };
    l1_bw = 128.0;
    l2_bw = 64.0;
    l3_bw = 32.0;
    dram_bw = 10.0;
    l3_lat = 44;
    dram_lat = 160;
  }

(** A small in-order RISC-V vector core (VLEN=128), for the future-work
    retargeting example. *)
let rvv_core =
  {
    name = "RVV core (VLEN=128) @ 1.5 GHz";
    freq_ghz = 1.5;
    issue_width = 2;
    vec = Memories.rvv;
    fma_pipes = 1;
    load_ports = 1;
    store_ports = 1;
    fma_lat = 4;
    l1 = { size_kib = 32; assoc = 8; line_bytes = 64 };
    l2 = { size_kib = 512; assoc = 8; line_bytes = 64 };
    l3 = { size_kib = 2048; assoc = 16; line_bytes = 64 };
    l1_bw = 16.0;
    l2_bw = 16.0;
    l3_bw = 8.0;
    dram_bw = 4.0;
    l3_lat = 30;
    dram_lat = 100;
  }
