(** Conservative loop dependence analysis — the legality oracle behind
    [reorder_loops] and [autofission]. Answers [Ok ()] only when legality is
    *proved*; imprecision yields [Error]. Reductions are treated as
    reorderable amongst themselves, following Exo's scheduling contract. *)

type kind = KRead | KAssign | KReduce

type access = {
  buf : Exo_ir.Sym.t;
  kind : kind;
  idx : Exo_ir.Affine.t option list;
}

val collect_stmts : access list -> Exo_ir.Ir.stmt list -> access list
val coeff : Exo_ir.Affine.t -> Exo_ir.Sym.t -> int
val drop_var : Exo_ir.Affine.t -> Exo_ir.Sym.t -> Exo_ir.Affine.t

(** Is executing the block twice the same as once? (assign-only, no
    read-after-write). *)
val idempotent : Exo_ir.Ir.stmt list -> bool

(** The loop-invariant staging rule justifying operand-load fission through
    loops the load does not use (Fig. 9). *)
val invariant_pre_rule :
  v:Exo_ir.Sym.t -> pre:Exo_ir.Ir.stmt list -> post:Exo_ir.Ir.stmt list -> bool

(** Legality of [for v: pre; post ⇒ (for v: pre); (for v: post)]: no
    dependence from [post]@i to [pre]@j for j > i, via cross-iteration
    disjointness, reduce-reduce commutation, or the invariant-pre rule. *)
val fission_legal :
  v:Exo_ir.Sym.t ->
  pre:Exo_ir.Ir.stmt list ->
  post:Exo_ir.Ir.stmt list ->
  (unit, string) result

(** Legality of swapping two perfectly nested loops. *)
val reorder_legal :
  outer:Exo_ir.Sym.t ->
  inner:Exo_ir.Sym.t ->
  body:Exo_ir.Ir.stmt list ->
  (unit, string) result
