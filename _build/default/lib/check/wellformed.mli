(** Well-formedness and type checking. Every scheduling primitive re-checks
    its result, so a rewrite that would produce out-of-scope symbols,
    rank-mismatched accesses, ill-kinded expressions, or memory-inconsistent
    instruction calls fails loudly at scheduling time. *)

exception Type_error of string

(** Expression sorts; [EData None] is a polymorphic numeric literal. *)
type ety = EInt | EBool | EData of Exo_ir.Dtype.t option

type binding =
  | BInt
  | BBool
  | BBuf of Exo_ir.Dtype.t * int * Exo_ir.Mem.t  (** dtype, rank, memory *)

type env = binding Exo_ir.Sym.Map.t

val env_of_args : Exo_ir.Ir.arg list -> env
val infer : env -> Exo_ir.Ir.expr -> ety
val expect_int : env -> Exo_ir.Ir.expr -> unit
val expect_bool : env -> Exo_ir.Ir.expr -> unit
val expect_data : env -> Exo_ir.Ir.expr -> dt:Exo_ir.Dtype.t -> unit

(** dtype, window rank, and memory of a window against its buffer. *)
val check_window : env -> Exo_ir.Ir.window -> Exo_ir.Dtype.t * int * Exo_ir.Mem.t

val check_stmts : env -> Exo_ir.Ir.stmt list -> unit
val check_call : env -> Exo_ir.Ir.proc -> Exo_ir.Ir.call_arg list -> unit
val check_proc : Exo_ir.Ir.proc -> unit
val check_proc_result : ctx:string -> Exo_ir.Ir.proc -> Exo_ir.Ir.proc
