lib/check/wellformed.mli: Exo_ir
