lib/check/bounds.mli: Exo_ir Format
