lib/check/wellformed.ml: Dtype Exo_ir Fmt Ir List Mem Pp Sym
