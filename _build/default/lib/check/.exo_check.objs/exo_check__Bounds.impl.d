lib/check/bounds.ml: Affine Dtype Exo_ir Fmt Ir List Option Pp Sym
