lib/check/deps.ml: Affine Exo_ir Fmt Hashtbl Ir List Sym
