lib/check/deps.mli: Exo_ir
