(** Well-formedness and type checking.

    Every scheduling primitive re-checks its result, so a rewrite that would
    produce out-of-scope symbols, rank-mismatched accesses, or ill-kinded
    expressions fails loudly at scheduling time — the discipline Exo gets
    from construction-by-typed-cursors. *)

open Exo_ir
open Ir

exception Type_error of string

let err fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

(** Expression sorts. [EData None] is a polymorphic numeric literal. *)
type ety = EInt | EBool | EData of Dtype.t option

type binding =
  | BInt  (** size, index or loop variable *)
  | BBool
  | BBuf of Dtype.t * int * Mem.t  (** dtype, rank, memory *)

type env = binding Sym.Map.t

let pp_ety ppf = function
  | EInt -> Fmt.string ppf "int"
  | EBool -> Fmt.string ppf "bool"
  | EData None -> Fmt.string ppf "num"
  | EData (Some dt) -> Dtype.pp ppf dt

let unify_data a b ~ctx =
  match (a, b) with
  | None, x | x, None -> x
  | Some d1, Some d2 ->
      if Dtype.equal d1 d2 then Some d1
      else err "%s: mixed data types %a and %a" ctx Dtype.pp d1 Dtype.pp d2

let env_of_args (args : arg list) : env =
  List.fold_left
    (fun env a ->
      let b =
        match a.a_typ with
        | TSize | TIndex -> BInt
        | TBool -> BBool
        | TScalar dt -> BBuf (dt, 0, a.a_mem)
        | TTensor (dt, dims) -> BBuf (dt, List.length dims, a.a_mem)
      in
      Sym.Map.add a.a_name b env)
    Sym.Map.empty args

let lookup env v =
  match Sym.Map.find_opt v env with
  | Some b -> b
  | None -> err "unbound symbol %a" Sym.pp_debug v

let rec infer (env : env) (e : expr) : ety =
  match e with
  | Int _ -> EInt
  | Float _ -> EData None
  | Var v -> (
      match lookup env v with
      | BInt -> EInt
      | BBool -> EBool
      | BBuf _ -> err "buffer %a used as a scalar variable (read it with [])" Sym.pp v)
  | Read (b, idx) -> (
      match lookup env b with
      | BBuf (dt, rank, _) ->
          (* Scalar arguments such as [alpha: f32[1]] are rank-1 tensors read
             as [alpha[0]]; rank-0 scalars are read with no subscripts. *)
          if List.length idx <> rank then
            err "%a has rank %d but is subscripted with %d indices" Sym.pp b rank
              (List.length idx);
          List.iter (fun i -> expect_int env i) idx;
          EData (Some dt)
      | BInt | BBool -> err "%a is not a buffer" Sym.pp b)
  | Binop (op, a, b) -> (
      match (infer env a, infer env b) with
      | EInt, EInt -> EInt
      | EData x, EData y ->
          if op = Mod then err "%% is not defined on data values";
          EData (unify_data x y ~ctx:(binop_name op))
      | EData x, EInt | EInt, EData x ->
          (* Integer literals flow into data positions only via Float. *)
          err "cannot mix int and data operands of %s (data side: %a)" (binop_name op)
            pp_ety (EData x)
      | t1, t2 -> err "bad operands of %s: %a, %a" (binop_name op) pp_ety t1 pp_ety t2)
  | Neg a -> (
      match infer env a with
      | EInt -> EInt
      | EData d -> EData d
      | EBool -> err "cannot negate a bool")
  | Cmp (op, a, b) -> (
      match (infer env a, infer env b) with
      | EInt, EInt -> EBool
      | EData x, EData y ->
          ignore (unify_data x y ~ctx:(cmpop_name op));
          EBool
      | t1, t2 -> err "bad comparison operands: %a, %a" pp_ety t1 pp_ety t2)
  | And (a, b) | Or (a, b) ->
      expect_bool env a;
      expect_bool env b;
      EBool
  | Not a ->
      expect_bool env a;
      EBool
  | Stride (b, d) -> (
      match lookup env b with
      | BBuf (_, rank, _) ->
          if d < 0 || d >= rank then
            err "stride(%a, %d): dimension out of range (rank %d)" Sym.pp b d rank;
          EInt
      | _ -> err "stride of non-buffer %a" Sym.pp b)

and expect_int env e =
  match infer env e with
  | EInt -> ()
  | t -> err "expected an integer index expression, got %a in %s" pp_ety t
           (Pp.expr_to_string e)

and expect_bool env e =
  match infer env e with
  | EBool -> ()
  | t -> err "expected a boolean expression, got %a in %s" pp_ety t
           (Pp.expr_to_string e)

let expect_data env e ~dt =
  match infer env e with
  | EData None -> ()
  | EData (Some d) when Dtype.equal d dt -> ()
  | t -> err "expected %a data, got %a in %s" Dtype.pp dt pp_ety t (Pp.expr_to_string e)

(** Rank and dtype of a window against the buffer it views. *)
let check_window env (w : window) : Dtype.t * int * Mem.t =
  match lookup env w.wbuf with
  | BBuf (dt, rank, mem) ->
      if List.length w.widx <> rank then
        err "window on %a: %d accessors for rank-%d buffer" Sym.pp w.wbuf
          (List.length w.widx) rank;
      List.iter
        (function
          | Pt e -> expect_int env e
          | Iv (lo, hi) ->
              expect_int env lo;
              expect_int env hi)
        w.widx;
      (dt, window_rank w, mem)
  | _ -> err "window on non-buffer %a" Sym.pp w.wbuf

let rec check_stmts (env : env) (body : stmt list) : unit =
  match body with
  | [] -> ()
  | s :: rest -> (
      match s with
      | SAssign (b, idx, e) | SReduce (b, idx, e) ->
          (match lookup env b with
          | BBuf (dt, rank, _) ->
              if List.length idx <> rank then
                err "%a has rank %d but is written with %d indices" Sym.pp b rank
                  (List.length idx);
              List.iter (expect_int env) idx;
              expect_data env e ~dt
          | _ -> err "%a is not a buffer" Sym.pp b);
          check_stmts env rest
      | SFor (v, lo, hi, inner) ->
          expect_int env lo;
          expect_int env hi;
          if Sym.Map.mem v env then
            err "loop variable %a shadows an existing symbol" Sym.pp_debug v;
          check_stmts (Sym.Map.add v BInt env) inner;
          check_stmts env rest
      | SAlloc (b, dt, dims, mem) ->
          List.iter (expect_int env) dims;
          if Sym.Map.mem b env then
            err "allocation %a shadows an existing symbol" Sym.pp_debug b;
          check_stmts (Sym.Map.add b (BBuf (dt, List.length dims, mem)) env) rest
      | SCall (p, args) ->
          check_call env p args;
          check_stmts env rest
      | SIf (c, t, e) ->
          expect_bool env c;
          check_stmts env t;
          check_stmts env e;
          check_stmts env rest)

and check_call env (p : proc) (args : call_arg list) : unit =
  if List.length args <> List.length p.p_args then
    err "call to %s: %d arguments for %d parameters" p.p_name (List.length args)
      (List.length p.p_args);
  List.iter2
    (fun (param : arg) (a : call_arg) ->
      match (param.a_typ, a) with
      | (TSize | TIndex), AExpr e -> expect_int env e
      | TBool, AExpr e -> expect_bool env e
      | TScalar dt, AExpr e -> expect_data env e ~dt
      | TScalar dt, AWin w ->
          let dt', rank, mem = check_window env w in
          if rank <> 0 then err "call to %s: scalar parameter %a given a rank-%d window"
              p.p_name Sym.pp param.a_name rank;
          if not (Dtype.equal dt dt') then
            err "call to %s: parameter %a expects %a, window has %a" p.p_name Sym.pp
              param.a_name Dtype.pp dt Dtype.pp dt';
          if not (Mem.equal param.a_mem mem || Mem.is_dram mem) then
            err "call to %s: parameter %a lives in %a but the window is in %a"
              p.p_name Sym.pp param.a_name Mem.pp param.a_mem Mem.pp mem
      | TTensor (dt, dims), AWin w ->
          let dt', rank, mem = check_window env w in
          if rank <> List.length dims then
            err "call to %s: parameter %a expects rank %d, window has rank %d"
              p.p_name Sym.pp param.a_name (List.length dims) rank;
          if not (Dtype.equal dt dt') then
            err "call to %s: parameter %a expects %a, window has %a" p.p_name Sym.pp
              param.a_name Dtype.pp dt Dtype.pp dt';
          (* The memory-consistency half of the @instr contract. A DRAM
             window may flow into a register parameter *during scheduling* —
             the paper's pipeline calls [replace] before [set_memory] — and
             the code emitter enforces final strictness; a *register* window
             must match the parameter's memory exactly (Neon8f data cannot
             feed a Neon operand). *)
          if not (Mem.equal param.a_mem mem || Mem.is_dram mem) then
            err "call to %s: parameter %a lives in %a but the window is in %a"
              p.p_name Sym.pp param.a_name Mem.pp param.a_mem Mem.pp mem
      | TTensor _, AExpr _ ->
          err "call to %s: tensor parameter %a needs a window argument" p.p_name Sym.pp
            param.a_name
      | (TSize | TIndex | TBool), AWin _ ->
          err "call to %s: parameter %a expects a scalar expression" p.p_name Sym.pp
            param.a_name)
    p.p_args args

(** Check a whole procedure (and, recursively, the signature use of every
    instruction it calls — instruction bodies are checked when defined). *)
let check_proc (p : proc) : unit =
  let env = env_of_args p.p_args in
  List.iter (expect_bool env) p.p_preds;
  check_stmts env p.p_body

let check_proc_result ~(ctx : string) (p : proc) : proc =
  (try check_proc p
   with Type_error m -> err "%s produced an ill-formed procedure: %s" ctx m);
  p
