(** Conservative loop dependence analysis.

    [reorder_loops] and loop fission are only semantics-preserving in the
    absence of certain loop-carried dependences. Exo discharges these
    obligations with its effect system; we implement a conservative affine
    analysis with the same user-facing behaviour: legal schedules in the
    paper's pipeline pass, while illegal requests (e.g. reordering loops
    around a recurrence) raise a scheduling error.

    The analysis answers [Ok ()] only when legality is *proved*; any
    imprecision yields [Error reason]. Reductions ([+=]) are treated as
    reorderable amongst themselves, following Exo (floating-point reduction
    reassociation is an accepted part of the scheduling contract). *)

open Exo_ir
open Ir

type kind = KRead | KAssign | KReduce

type access = { buf : Sym.t; kind : kind; idx : Affine.t option list }
(** Subscripts in affine normal form; [None] = non-affine or windowed. *)

let affine_of e = Affine.of_expr e

let rec collect_expr acc (e : expr) =
  match e with
  | Read (b, idx) ->
      let acc = List.fold_left collect_expr acc idx in
      { buf = b; kind = KRead; idx = List.map affine_of idx } :: acc
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      collect_expr (collect_expr acc a) b
  | Neg a | Not a -> collect_expr acc a
  | Int _ | Float _ | Var _ | Stride _ -> acc

(** All accesses in a statement list. Call windows are conservatively
    treated as writes with unanalyzable ([None]) subscripts on [Iv] dims. *)
let rec collect_stmts acc (body : stmt list) =
  List.fold_left
    (fun acc s ->
      match s with
      | SAssign (b, idx, e) ->
          let acc = collect_expr acc e in
          { buf = b; kind = KAssign; idx = List.map affine_of idx } :: acc
      | SReduce (b, idx, e) ->
          let acc = collect_expr acc e in
          { buf = b; kind = KReduce; idx = List.map affine_of idx } :: acc
      | SFor (_, lo, hi, inner) ->
          collect_stmts (collect_expr (collect_expr acc lo) hi) inner
      | SAlloc (_, _, dims, _) -> List.fold_left collect_expr acc dims
      | SCall (_, args) ->
          List.fold_left
            (fun acc -> function
              | AExpr e -> collect_expr acc e
              | AWin w ->
                  {
                    buf = w.wbuf;
                    kind = KAssign;
                    idx =
                      List.map
                        (function Pt e -> affine_of e | Iv _ -> None)
                        w.widx;
                  }
                  :: acc)
            acc args
      | SIf (c, t, e) -> collect_stmts (collect_stmts (collect_expr acc c) t) e)
    acc body

let is_write a = a.kind <> KRead

(** Vars bound by loops inside a statement list. *)
let inner_binders (body : stmt list) : Sym.Set.t =
  let acc = ref Sym.Set.empty in
  iter_stmts (function SFor (v, _, _, _) -> acc := Sym.Set.add v !acc | _ -> ()) body;
  !acc

let coeff (a : Affine.t) (v : Sym.t) : int =
  match List.find_opt (fun (s, _) -> Sym.equal s v) a.Affine.terms with
  | Some (_, c) -> c
  | None -> 0

let vars_of (a : Affine.t) : Sym.Set.t =
  List.fold_left (fun s (v, _) -> Sym.Set.add v s) Sym.Set.empty a.Affine.terms

let drop_var (a : Affine.t) (v : Sym.t) : Affine.t =
  { a with Affine.terms = List.filter (fun (s, _) -> not (Sym.equal s v)) a.Affine.terms }

(** Do two accesses (to the same buffer) provably touch distinct cells
    whenever the fission/reorder variable [v] differs?

    The two access *instances* being compared come from different iterations:
    [v] and every variable in [volatile] (deeper binders) may take different
    values on each side; everything else (outer loop variables, sizes) is
    common. A dimension proves disjointness when neither subscript mentions
    any volatile variable besides [v], and either

    - both have the same nonzero coefficient [c] on [v] with identical
      remainders — indices then differ by [c·(i−j) ≠ 0]; or
    - neither mentions [v] and the remainders differ by a nonzero constant
      (the accesses never alias at all). *)
let disjoint_when_var_differs ~(v : Sym.t) ~(volatile : Sym.Set.t) (a : access)
    (b : access) : bool =
  let others = Sym.Set.remove v volatile in
  let has_volatile (x : Affine.t) =
    not (Sym.Set.is_empty (Sym.Set.inter (vars_of x) others))
  in
  List.length a.idx = List.length b.idx
  && List.exists2
       (fun ia ib ->
         match (ia, ib) with
         | Some ia, Some ib when (not (has_volatile ia)) && not (has_volatile ib) ->
             let ca = coeff ia v and cb = coeff ib v in
             let d = Affine.sub (drop_var ia v) (drop_var ib v) in
             if ca = cb && ca <> 0 then Affine.equal d Affine.zero
             else if ca = 0 && cb = 0 then d.Affine.terms = [] && d.Affine.const <> 0
             else false
         | _ -> false)
       a.idx b.idx

let buf_groups (accs : access list) : (Sym.t * access list) list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let cur = try Hashtbl.find tbl (Sym.id a.buf) with Not_found -> [] in
      Hashtbl.replace tbl (Sym.id a.buf) (a :: cur))
    accs;
  List.sort_uniq (fun a b -> Sym.compare a b)
    (List.map (fun a -> a.buf) accs)
  |> List.map (fun b -> (b, Hashtbl.find tbl (Sym.id b)))

(** Is executing [body] twice in a row the same as once? Sufficient: only
    plain assignments whose right-hand sides read nothing the body writes,
    and no instruction calls or reductions. *)
let idempotent (body : stmt list) : bool =
  let written = ref Sym.Set.empty in
  let reads = ref Sym.Set.empty in
  let ok = ref true in
  iter_stmts
    (fun s ->
      match s with
      | SAssign (b, idx, e) ->
          written := Sym.Set.add b !written;
          List.iter (fun i -> reads := expr_bufs !reads i) idx;
          reads := expr_bufs !reads e
      | SReduce _ | SCall _ -> ok := false
      | SFor (_, lo, hi, _) -> reads := expr_bufs (expr_bufs !reads lo) hi
      | SAlloc _ -> ()
      | SIf (c, _, _) -> reads := expr_bufs !reads c)
    body;
  !ok && Sym.Set.is_empty (Sym.Set.inter !written !reads)

let written_bufs (body : stmt list) : Sym.Set.t =
  let acc = ref Sym.Set.empty in
  List.iter
    (fun a -> if is_write a then acc := Sym.Set.add a.buf !acc)
    (collect_stmts [] body);
  !acc

(** The loop-invariant staging rule: [for v: pre; post ≡ (for v: pre);
    (for v: post)] when [pre] does not depend on [v], is idempotent, and
    nothing [post] writes feeds back into [pre]. Every iteration of the
    fissioned first loop then recomputes the same state [pre] had
    established before each original iteration. This is what lets operand
    loads staged by [bind_expr] fission out through loops whose variable
    they do not use (Fig. 9 of the paper). *)
let invariant_pre_rule ~(v : Sym.t) ~(pre : stmt list) ~(post : stmt list) : bool =
  (not (Sym.Set.mem v (stmts_free_vars pre)))
  && idempotent pre
  && Sym.Set.is_empty (Sym.Set.inter (written_bufs post) (stmts_bufs pre))

(** Legality of fissioning [for v: pre; post] into [for v: pre; for v: post].

    Requirement: no dependence from [post] at iteration [i] to [pre] at
    iteration [j > i] (the fissioned second loop runs strictly after the
    whole first loop). For each buffer with a write on one side and any
    access on the other, we prove cross-iteration disjointness, or fall back
    to the reduce-reduce commutation rule; failing both, the whole split may
    still be justified by {!invariant_pre_rule}. *)
let fission_legal ~(v : Sym.t) ~(pre : stmt list) ~(post : stmt list) :
    (unit, string) result =
  let pre_accs = collect_stmts [] pre and post_accs = collect_stmts [] post in
  let volatile =
    Sym.Set.add v (Sym.Set.union (inner_binders pre) (inner_binders post))
  in
  let shared =
    List.filter_map
      (fun (b, post_g) ->
        match List.filter (fun a -> Sym.equal a.buf b) pre_accs with
        | [] -> None
        | pre_g -> Some (b, pre_g, post_g))
      (buf_groups post_accs)
  in
  let check_pair (b : Sym.t) (p : access) (q : access) =
    if (not (is_write p)) && not (is_write q) then Ok ()
    else if p.kind = KReduce && q.kind = KReduce then Ok ()
    else if disjoint_when_var_differs ~v ~volatile p q then Ok ()
    else
      Error
        (Fmt.str
           "cannot prove fission over %a safe: conflicting accesses to %a"
           Sym.pp v Sym.pp b)
  in
  let pairwise =
    List.fold_left
      (fun acc (b, pre_g, post_g) ->
        List.fold_left
          (fun acc q ->
            List.fold_left
              (fun acc p -> match acc with Error _ -> acc | Ok () -> check_pair b p q)
              acc pre_g)
          acc post_g)
      (Ok ()) shared
  in
  match pairwise with
  | Ok () -> Ok ()
  | Error _ when invariant_pre_rule ~v ~pre ~post -> Ok ()
  | Error _ as e -> e

(** Legality of swapping two perfectly nested loops [for v1: for v2: body].

    Sufficient conditions per buffer written in [body]: either every access
    is a reduction (reductions commute), or every pair of accesses with a
    write provably touches distinct cells when [v1] differs and when [v2]
    differs (iteration-private cells), with reads of the written buffer
    confined to the written cell. *)
let reorder_legal ~(outer : Sym.t) ~(inner : Sym.t) ~(body : stmt list) :
    (unit, string) result =
  let accs = collect_stmts [] body in
  let volatile = Sym.Set.add outer (Sym.Set.add inner (inner_binders body)) in
  let check_group (b, group) =
    if List.for_all (fun a -> not (is_write a)) group then Ok ()
    else if List.for_all (fun a -> a.kind = KReduce || a.kind = KRead) group
            && List.for_all
                 (fun a ->
                   a.kind = KReduce
                   ||
                   (* reads of a reduced buffer must match a reduce cell *)
                   List.exists
                     (fun w ->
                       w.kind = KReduce
                       && List.length w.idx = List.length a.idx
                       && List.for_all2
                            (fun x y ->
                              match (x, y) with
                              | Some x, Some y -> Affine.equal x y
                              | _ -> false)
                            w.idx a.idx)
                     group)
                 group
    then Ok ()
    else
      let writes = List.filter is_write group in
      (* Every (write, access) pair — including a write against itself, which
         compares two distinct iterations — must be provably disjoint under
         both reordered variables. *)
      let ok =
        List.for_all
          (fun w ->
            List.for_all
              (fun a ->
                disjoint_when_var_differs ~v:outer ~volatile w a
                && disjoint_when_var_differs ~v:inner ~volatile w a)
              group)
          writes
      in
      if ok then Ok ()
      else
        Error
          (Fmt.str "cannot prove reordering %a/%a safe: accesses to %a" Sym.pp outer
             Sym.pp inner Sym.pp b)
  in
  List.fold_left
    (fun acc g -> match acc with Error _ -> acc | Ok () -> check_group g)
    (Ok ())
    (buf_groups accs)
