(** C code emission — "plain C code with intrinsic instructions" that any
    toolchain compiles, the compiler-independence the paper counts among
    Exo's advantages.

    Tensor arguments become flat pointers with linearized row-major indexing;
    DRAM allocations become stack arrays; register-memory allocations become
    arrays of the ISA's vector type (the lane dimension folds into the type);
    instruction calls render through their [@instr] format strings. Direct
    element access to a register-memory buffer — a kernel that was never
    fully vectorized — is rejected, as is a register parameter still fed by
    a DRAM window (missing [set_memory]). *)

exception Codegen_error of string

(** One procedure as a C definition. *)
val proc_to_c : Exo_ir.Ir.proc -> string

(** A full compilation unit: includes (collected from the instructions used)
    plus the procedures. *)
val compilation_unit : ?header_comment:string -> Exo_ir.Ir.proc list -> string

(** The matching header file with prototypes. *)
val header : ?guard:string -> Exo_ir.Ir.proc list -> string
