lib/codegen/c_emit.mli: Exo_ir
