lib/codegen/c_emit.ml: Buffer Dtype Exo_ir Exo_isa Filename Float Fmt Hashtbl Ir List Mem Pp Simplify String Sym
