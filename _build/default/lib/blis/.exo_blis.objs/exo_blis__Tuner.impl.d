lib/blis/tuner.ml: Analytical Driver Exo_isa Exo_ukr_gen Hashtbl List
