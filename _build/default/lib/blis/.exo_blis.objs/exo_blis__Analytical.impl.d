lib/blis/analytical.ml: Exo_isa Fmt
