lib/blis/matrix.ml: Array Float Fmt Random
