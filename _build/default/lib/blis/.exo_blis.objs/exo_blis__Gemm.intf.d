lib/blis/gemm.mli: Analytical Matrix
