lib/blis/driver.mli: Analytical Exo_isa Exo_sim Exo_ukr_gen
