lib/blis/registry.ml: Exo_interp Exo_ir Exo_sim Exo_ukr_gen Family Fmt Gemm Hashtbl Kits Lazy
