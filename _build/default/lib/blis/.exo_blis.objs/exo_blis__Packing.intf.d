lib/blis/packing.mli: Matrix
