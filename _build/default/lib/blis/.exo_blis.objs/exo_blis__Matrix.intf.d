lib/blis/matrix.mli: Format Random
