lib/blis/registry.mli: Exo_ir Exo_sim Exo_ukr_gen Gemm
