lib/blis/driver.ml: Analytical Exo_ir Exo_isa Exo_sim Exo_ukr_gen Float Fmt List Machine Registry
