lib/blis/packing.ml: Array Matrix
