lib/blis/tuner.mli: Analytical Exo_isa Exo_ukr_gen
