lib/blis/gemm.ml: Analytical Array Float Int32 Matrix Packing
