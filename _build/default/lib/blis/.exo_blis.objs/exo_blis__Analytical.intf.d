lib/blis/analytical.mli: Exo_isa Format
