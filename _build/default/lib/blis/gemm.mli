(** GEMM: the BLIS/GotoBLAS five-loop macro-kernel (Fig. 1 of the paper)
    plus naive references, over {!Matrix} values. *)

type ukr =
  kc:int -> mr:int -> nr:int -> ac:float array -> bc:float array ->
  c:float array -> unit
(** A micro-kernel callback: [c += acᵀ·bc] on one tile. [ac] is kc×mr
    (k-major), [bc] kc×nr (k-major), [c] the *transposed* tile (nr×mr,
    row-major) — the layout conventions of Section III-A. *)

(** The same arithmetic in plain OCaml with binary32 rounding — matches the
    interpreted generated kernels bit for bit. *)
val reference_ukr : ukr

(** C := alpha·A·B + beta·C, naive triple loop (f64 accumulation). *)
val naive : ?alpha:float -> ?beta:float -> Matrix.t -> Matrix.t -> Matrix.t -> unit

(** Naive with binary32 rounding after every operation — exact comparisons
    against the macro-kernel when inputs are small integers. *)
val naive_f32 :
  ?alpha:float -> ?beta:float -> Matrix.t -> Matrix.t -> Matrix.t -> unit

(** The BLIS-like GEMM: jc/pc/ic/jr/ir blocking, packing (alpha folded into
    Bc, beta applied up front), [ukr] on every tile including fringes. *)
val blis :
  ?alpha:float ->
  ?beta:float ->
  blocking:Analytical.blocking ->
  mr:int ->
  nr:int ->
  ukr:ukr ->
  Matrix.t -> Matrix.t -> Matrix.t -> unit
