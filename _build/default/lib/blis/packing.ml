(** BLIS packing routines.

    [pack_a] re-lays an mc×kc block of A into micro-panels of [mr] rows,
    each panel k-major ([kc × mr], unit stride across the rows) — exactly
    the layout the generated micro-kernels' [Ac: f32[KC, MR]] argument
    assumes. [pack_b] does the same for kc×nc blocks of B in [nr]-column
    panels ([kc × nr]). Edge panels are packed at their true width (the
    Exo approach: a dedicated kernel per fringe shape) — [panel_width]
    reports it.

    Packing is also where alpha is applied ([Ba = alpha · Bc], the paper's
    Fig. 4), so the micro-kernels run the simplified alpha = beta = 1 code. *)

type panels = {
  panel : int -> float array;  (** [panel i] — the i-th packed micro-panel *)
  panel_width : int -> int;  (** rows (A) or columns (B) in panel i *)
  num_panels : int;
  depth : int;  (** kc of this packing *)
}

(** Pack A(ic .. ic+mcb-1, pc .. pc+kcb-1) into mr-row panels. *)
let pack_a (a : Matrix.t) ~(ic : int) ~(pc : int) ~(mcb : int) ~(kcb : int)
    ~(mr : int) : panels =
  if mcb < 0 || kcb < 0 || ic < 0 || pc < 0 || ic + mcb > a.Matrix.rows
     || pc + kcb > a.Matrix.cols
  then invalid_arg "pack_a: block out of range";
  let num_panels = (mcb + mr - 1) / mr in
  let store =
    Array.init num_panels (fun ir ->
        let w = min mr (mcb - (ir * mr)) in
        let buf = Array.make (max 1 (kcb * w)) 0.0 in
        for kk = 0 to kcb - 1 do
          for i = 0 to w - 1 do
            buf.((kk * w) + i) <- Matrix.get a (ic + (ir * mr) + i) (pc + kk)
          done
        done;
        buf)
  in
  {
    panel = (fun i -> store.(i));
    panel_width = (fun i -> min mr (mcb - (i * mr)));
    num_panels;
    depth = kcb;
  }

(** Pack B(pc .. pc+kcb-1, jc .. jc+ncb-1) into nr-column panels, scaled by
    [alpha]. *)
let pack_b ?(alpha = 1.0) (b : Matrix.t) ~(pc : int) ~(jc : int) ~(kcb : int)
    ~(ncb : int) ~(nr : int) : panels =
  if ncb < 0 || kcb < 0 || pc < 0 || jc < 0 || pc + kcb > b.Matrix.rows
     || jc + ncb > b.Matrix.cols
  then invalid_arg "pack_b: block out of range";
  let num_panels = (ncb + nr - 1) / nr in
  let store =
    Array.init num_panels (fun jr ->
        let w = min nr (ncb - (jr * nr)) in
        let buf = Array.make (max 1 (kcb * w)) 0.0 in
        for kk = 0 to kcb - 1 do
          for j = 0 to w - 1 do
            buf.((kk * w) + j) <- alpha *. Matrix.get b (pc + kk) (jc + (jr * nr) + j)
          done
        done;
        buf)
  in
  {
    panel = (fun i -> store.(i));
    panel_width = (fun i -> min nr (ncb - (i * nr)));
    num_panels;
    depth = kcb;
  }
