(** Dense row-major matrices over [float array] — the numeric substrate the
    macro-kernel, packing routines and DNN workloads compute with. *)

type t = { rows : int; cols : int; data : float array }

let create ?(init = 0.0) rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative dims";
  { rows; cols; data = Array.make (max 1 (rows * cols)) init }

let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      set m i j (f i j)
    done
  done;
  m

let copy m = { m with data = Array.copy m.data }

(** Random matrix of small integer values: sums of products stay exactly
    representable in binary32, so differently-blocked GEMMs compare for
    exact equality in tests. *)
let random_int ?(bound = 3) rows cols (st : Random.State.t) =
  init rows cols (fun _ _ -> float_of_int (Random.State.int st (2 * bound + 1) - bound))

let random rows cols (st : Random.State.t) =
  init rows cols (fun _ _ -> Random.State.float st 2.0 -. 1.0)

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.equal x y) a.data b.data

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then infinity
  else
    let m = ref 0.0 in
    Array.iteri
      (fun i x ->
        let d = Float.abs (x -. b.data.(i)) in
        if d > !m then m := d)
      a.data;
    !m

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let pp ppf m =
  Fmt.pf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      Fmt.pf ppf "%8.3f " (get m i j)
    done;
    Fmt.pf ppf "@,"
  done;
  Fmt.pf ppf "@]"
