(** BLIS packing routines: A blocks into mr-row k-major panels, B blocks
    into nr-column panels (the layouts the generated kernels' [Ac]/[Bc]
    arguments assume); alpha is folded into the B packing (Fig. 4). Edge
    panels pack at their true width — the Exo approach of a dedicated kernel
    per fringe shape. *)

type panels = {
  panel : int -> float array;
  panel_width : int -> int;  (** rows (A) / columns (B) of panel i *)
  num_panels : int;
  depth : int;  (** kc of this packing *)
}

val pack_a :
  Matrix.t -> ic:int -> pc:int -> mcb:int -> kcb:int -> mr:int -> panels

val pack_b :
  ?alpha:float ->
  Matrix.t -> pc:int -> jc:int -> kcb:int -> ncb:int -> nr:int -> panels
