(** The analytical cache-blocking model of Low et al. (ACM TOMS 2016) — the
    paper's reference [9], used to choose (mc, kc, nc) for the ALG+
    realizations so that the micro-kernel is the only difference between
    them. On the Carmel geometry with the 8×12 FP32 kernel it derives
    kc = 512, the exact BLIS packing value the paper reports. *)

type blocking = { mc : int; kc : int; nc : int }

val cache_sets : Exo_isa.Machine.cache -> int

(** Derive the blocking for an mr×nr kernel on a machine: kc from L1 (the
    Bc sliver plus Ar/C streams), mc from L2 (the Ac block minus the Br
    stream's ways), nc from L3 — rounded to kernel multiples. *)
val compute : Exo_isa.Machine.t -> mr:int -> nr:int -> dtype_bytes:int -> blocking

(** Working-set sanity: the blocks the model places in each level fit, and
    mc/nc are kernel multiples. *)
val fits :
  Exo_isa.Machine.t -> mr:int -> nr:int -> dtype_bytes:int -> blocking -> bool

val pp : Format.formatter -> blocking -> unit
