(** The micro-kernel registry: Section IV's three competitors, in numeric
    form (a {!Gemm.ukr}) and model form (a {!Exo_sim.Kernel_model.impl}).
    Generated kernels are produced on demand and cached. *)

(** Generate (or fetch) a specialized kernel. *)
val exo_kernel :
  ?kit:Exo_ukr_gen.Kits.t -> mr:int -> nr:int -> unit -> Exo_ukr_gen.Family.kernel

(** Model impl for a generated kernel. *)
val exo_impl :
  ?kit:Exo_ukr_gen.Kits.t -> mr:int -> nr:int -> unit -> Exo_sim.Kernel_model.impl

(** The 8×12 base kernel proc (whose trace the monolithic models share). *)
val base_8x12 : ?kit:Exo_ukr_gen.Kits.t -> unit -> Exo_ir.Ir.proc

val blis_impl : ?kit:Exo_ukr_gen.Kits.t -> unit -> Exo_sim.Kernel_model.impl
val neon_impl : ?kit:Exo_ukr_gen.Kits.t -> unit -> Exo_sim.Kernel_model.impl

(** Numeric micro-kernel running the generated IR through the interpreter. *)
val exo_ukr : ?kit:Exo_ukr_gen.Kits.t -> unit -> Gemm.ukr

(** The monolithic kernels' numerics (identical arithmetic; their differences
    are micro-architectural and live in the model impls). *)
val monolithic_ukr : Gemm.ukr
