(** The analytical cache-blocking model of Low et al. (ACM TOMS 2016),
    "Analytical Modeling is Enough for High-Performance BLIS" — the paper
    uses it (its reference [9]) to choose the packing parameters
    (mc, kc, nc) for the ALG+ GEMM realizations, so the micro-kernel is the
    only difference between them.

    The model fills each cache level with the operand that should live
    there, reserving associativity ways for the streams that pass through:

    - L1 holds the kc×nr sliver of Bc plus streams of Ar and C;
      [kc = C_Ar · N_L1 · C_L1 / (mr · S)] with
      [C_Ar = ⌊(W_L1 − 1) / (1 + nr/mr)⌋];
    - L2 holds the mc×kc block of Ac; ways for the Br stream are subtracted:
      [mc = (W_L2 − 1 − W_Br) · N_L2 · C_L2 / (kc · S)];
    - L3 holds the kc×nc panel of Bc, minus the Ac stream's ways.

    On the Carmel cache geometry with the 8×12 FP32 kernel this yields
    kc = 512 — exactly the value the paper reports BLIS using on this
    machine ("we have set the Kc to 512, which is the value of BLIS packing
    for this ARM architecture"). *)

open Exo_isa.Machine

type blocking = { mc : int; kc : int; nc : int }

let cache_sets (c : cache) = c.size_kib * 1024 / (c.assoc * c.line_bytes)

(** Round down to a positive multiple of [q]. *)
let floor_mult x q = max q (x / q * q)

let compute (m : t) ~(mr : int) ~(nr : int) ~(dtype_bytes : int) : blocking =
  let s = dtype_bytes in
  (* kc from L1 *)
  let n_l1 = cache_sets m.l1 in
  let c_ar =
    let ratio = float_of_int nr /. float_of_int mr in
    max 1 (int_of_float (floor (float_of_int (m.l1.assoc - 1) /. (1.0 +. ratio))))
  in
  let kc = max 1 (c_ar * n_l1 * m.l1.line_bytes / (mr * s)) in
  (* mc from L2, reserving ways for the Br stream *)
  let n_l2 = cache_sets m.l2 in
  let w_br =
    max 1 ((kc * nr * s + (n_l2 * m.l2.line_bytes) - 1) / (n_l2 * m.l2.line_bytes))
  in
  let ways_ac = max 1 (m.l2.assoc - 1 - w_br) in
  let mc = max mr (ways_ac * n_l2 * m.l2.line_bytes / (kc * s)) in
  let mc = floor_mult mc mr in
  (* nc from L3, reserving ways for the Ac stream *)
  let n_l3 = cache_sets m.l3 in
  let w_ac =
    max 1 ((mc * kc * s + (n_l3 * m.l3.line_bytes) - 1) / (n_l3 * m.l3.line_bytes))
  in
  let ways_bc = max 1 (m.l3.assoc - 1 - w_ac) in
  let nc = max nr (ways_bc * n_l3 * m.l3.line_bytes / (kc * s)) in
  let nc = floor_mult nc nr in
  { mc; kc; nc }

(** Working-set sanity: the blocks the model places in each level fit. *)
let fits (m : t) ~(mr : int) ~(nr : int) ~(dtype_bytes : int) (b : blocking) : bool =
  let s = dtype_bytes in
  b.kc * nr * s <= cache_bytes m.l1
  && b.mc * b.kc * s <= cache_bytes m.l2
  && b.kc * b.nc * s <= cache_bytes m.l3
  && b.mc mod mr = 0 && b.nc mod nr = 0

let pp ppf (b : blocking) = Fmt.pf ppf "mc=%d kc=%d nc=%d" b.mc b.kc b.nc
