(** The micro-kernel registry: the three competitors of Section IV, in both
    numeric form (a {!Gemm.ukr} for running real GEMMs) and model form
    (a {!Exo_sim.Kernel_model.impl} for the performance simulation).

    - [EXO]: the generated family — one specialized kernel per (mr, nr),
      produced on demand by {!Exo_ukr_gen.Family} and cached; numerics run
      the scheduled IR through the reference interpreter.
    - [BLIS]: the monolithic 8×12 assembly kernel model (fringe logic,
      prefetch-capable).
    - [NEON]: the monolithic 8×12 hand-written-intrinsics kernel model
      (fringe logic, compiler-scheduled). *)

open Exo_ukr_gen
module KM = Exo_sim.Kernel_model
module B = Exo_interp.Buffer
module I = Exo_interp.Interp

(* ------------------------------------------------------------------ *)
(* Generated-kernel cache                                              *)

let cache : (string * int * int, Family.kernel) Hashtbl.t = Hashtbl.create 32

let exo_kernel ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : Family.kernel =
  let key = (kit.Kits.name, mr, nr) in
  match Hashtbl.find_opt cache key with
  | Some k -> k
  | None ->
      let k = Family.generate ~kit ~mr ~nr () in
      Hashtbl.replace cache key k;
      k

(** Model impl for a generated kernel. *)
let exo_impl ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : KM.impl =
  let k = exo_kernel ~kit ~mr ~nr () in
  KM.of_proc ~name:(Fmt.str "EXO %dx%d" mr nr) ~mr ~nr k.Family.proc

let base_8x12 ?(kit = Kits.neon_f32) () = (exo_kernel ~kit ~mr:8 ~nr:12 ()).Family.proc

let blis_impl ?kit () : KM.impl = KM.blis_asm_8x12 (base_8x12 ?kit ())
let neon_impl ?kit () : KM.impl = KM.neon_intrinsics_8x12 (base_8x12 ?kit ())

(* ------------------------------------------------------------------ *)
(* Numeric micro-kernels                                               *)

let ones_buf = lazy (B.of_array Exo_ir.Dtype.F32 [ 1 ] [| 1.0 |])

(** Run a generated kernel (through the interpreter) on a packed tile. *)
let exo_ukr ?(kit = Kits.neon_f32) () : Gemm.ukr =
 fun ~kc ~mr ~nr ~ac ~bc ~c ->
  let k = exo_kernel ~kit ~mr ~nr () in
  let one = Lazy.force ones_buf in
  let acb = B.of_array kit.Kits.dt [ kc; mr ] ac in
  let bcb = B.of_array kit.Kits.dt [ kc; nr ] bc in
  let cb = B.of_array kit.Kits.dt [ nr; mr ] c in
  I.run k.Family.proc
    [ I.VInt kc; I.VBuf one; I.VBuf acb; I.VBuf bcb; I.VBuf one; I.VBuf cb ]

(** The monolithic kernels' numeric behaviour (identical arithmetic; their
    differences are micro-architectural and live in the model impls). *)
let monolithic_ukr : Gemm.ukr = Gemm.reference_ukr
