(** Dense row-major matrices over [float array] — the numeric substrate for
    the macro-kernel, packing, and DNN workloads. *)

type t = { rows : int; cols : int; data : float array }

val create : ?init:float -> int -> int -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val init : int -> int -> (int -> int -> float) -> t
val copy : t -> t

(** Small-integer random matrix: sums of products stay exactly representable
    in binary32, so differently-blocked GEMMs compare for exact equality. *)
val random_int : ?bound:int -> int -> int -> Random.State.t -> t

val random : int -> int -> Random.State.t -> t
val equal : t -> t -> bool
val max_abs_diff : t -> t -> float
val frobenius : t -> float
val pp : Format.formatter -> t -> unit
