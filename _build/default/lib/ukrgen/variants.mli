(** Kernel variants beyond the alpha = beta = 1 family. Each is verified
    bit-exact against its reference source by the tests. *)

(** The complete Fig. 4 kernel: the [Cb = C·beta] and [Ba = Bc·alpha] nests
    vectorized alongside the Section III compute schedule. Handles every
    alpha/beta combination. Requires [lanes | MR], [lanes | NR], a
    lane-indexed FMA and (currently) the Neon fused scale-store. *)
val packed_full : ?kit:Kits.t -> mr:int -> nr:int -> unit -> Exo_ir.Ir.proc

(** The beta = 0 specialization (C = Ac·Bc, the common DL case): the
    accumulator tile is zeroed in registers instead of loaded —
    [stage_mem ~load:false] over the zero-init and compute nests, the
    whole-window-overwrite obligation discharged by coverage analysis. *)
val packed_beta0 : ?kit:Kits.t -> mr:int -> nr:int -> unit -> Exo_ir.Ir.proc

(** Section III-B's non-packed-A variant: A in row-major [MR × KC], C
    row-major; j vectorized; the A element feeds the scalar-FMA form
    (subsuming the paper's dup + vfmadd sketch). Requires [lanes | NR]. *)
val nopack : ?kit:Kits.t -> mr:int -> nr:int -> unit -> Exo_ir.Ir.proc
