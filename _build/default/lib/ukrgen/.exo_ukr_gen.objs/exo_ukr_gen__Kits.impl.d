lib/ukrgen/kits.ml: Dtype Exo_ir Exo_isa Ir List Mem String
