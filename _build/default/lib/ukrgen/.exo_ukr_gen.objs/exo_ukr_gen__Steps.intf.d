lib/ukrgen/steps.mli: Exo_ir Kits
