lib/ukrgen/variants.mli: Exo_ir Kits
