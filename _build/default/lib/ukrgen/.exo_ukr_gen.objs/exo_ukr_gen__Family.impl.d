lib/ukrgen/family.ml: Exo_ir Exo_sched Fmt Ir Kits List Source Steps String
