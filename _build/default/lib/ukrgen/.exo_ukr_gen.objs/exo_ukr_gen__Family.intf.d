lib/ukrgen/family.mli: Exo_ir Kits
