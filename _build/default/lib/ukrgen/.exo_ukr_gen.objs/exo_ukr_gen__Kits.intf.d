lib/ukrgen/kits.mli: Exo_ir
