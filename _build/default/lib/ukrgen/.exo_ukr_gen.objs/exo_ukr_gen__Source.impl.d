lib/ukrgen/source.ml: Builder Dtype Exo_check Exo_ir Ir Sym
