lib/ukrgen/source.mli: Exo_ir
