lib/ukrgen/variants.ml: Exo_ir Exo_isa Exo_sched Fmt Ir Kits List Source String
