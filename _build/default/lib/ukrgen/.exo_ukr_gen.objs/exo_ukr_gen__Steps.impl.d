lib/ukrgen/steps.ml: Exo_ir Exo_sched Fmt Ir Kits List Source
