(** The reference micro-kernel sources (the paper's Figs. 4 and 5).

    Conventions from Section III-A: C transposed to [NR × MR] (C is
    row-major), [Ac] packed [KC × MR], [Bc] packed [KC × NR], loops in
    [k, j, i] order around one outer product per iteration. *)

(** Fig. 5: the simplified kernel for alpha = beta = 1 that Section III
    schedules (signature keeps alpha/beta, as in Fig. 6). *)
val ukernel_ref_simple : ?dt:Exo_ir.Dtype.t -> unit -> Exo_ir.Ir.proc

(** Fig. 4: the full kernel covering every alpha/beta combination, with the
    [Cb]/[Ba] staging buffers. *)
val ukernel_ref : ?dt:Exo_ir.Dtype.t -> unit -> Exo_ir.Ir.proc

(** The beta = 0 source: explicit zero-init nest plus the accumulation. *)
val ukernel_ref_beta0 : ?dt:Exo_ir.Dtype.t -> unit -> Exo_ir.Ir.proc

(** The non-packed-A source (Section III-B): A row-major [MR × KC], C
    row-major [MR × NR]. *)
val ukernel_ref_nopack : ?dt:Exo_ir.Dtype.t -> unit -> Exo_ir.Ir.proc
