(** The reference micro-kernel sources (the paper's Figs. 4 and 5).

    Conventions carried over from the paper's Section III-A:
    - C is transposed to [NR × MR] because C is row-major in C (the BLIS
      micro-kernel is column-major);
    - [Ac] is packed as [KC × MR] (transposed) so the micro-kernel reads it
      with unit stride; [Bc] is [KC × NR], already unit stride;
    - loops run in [k, j, i] order around one outer product per iteration. *)

open Exo_ir
open Ir
open Builder

type syms = {
  mr : Sym.t;
  nr : Sym.t;
  kc : Sym.t;
  alpha : Sym.t;
  ac : Sym.t;
  bc : Sym.t;
  beta : Sym.t;
  c : Sym.t;
}

let fresh_syms () =
  {
    mr = Sym.fresh "MR";
    nr = Sym.fresh "NR";
    kc = Sym.fresh "KC";
    alpha = Sym.fresh "alpha";
    ac = Sym.fresh "Ac";
    bc = Sym.fresh "Bc";
    beta = Sym.fresh "beta";
    c = Sym.fresh "C";
  }

let args_of ~dt (s : syms) =
  [
    size_arg s.mr;
    size_arg s.nr;
    size_arg s.kc;
    tensor_arg s.alpha dt [ int 1 ];
    tensor_arg s.ac dt [ var s.kc; var s.mr ];
    tensor_arg s.bc dt [ var s.kc; var s.nr ];
    tensor_arg s.beta dt [ int 1 ];
    tensor_arg s.c dt [ var s.nr; var s.mr ];
  ]

(** Fig. 5: the simplified micro-kernel for alpha = beta = 1 that Section III
    schedules step by step. (The signature keeps alpha/beta, as in Fig. 6.) *)
let ukernel_ref_simple ?(dt = Dtype.F32) () : proc =
  let s = fresh_syms () in
  let k = Sym.fresh "k" and j = Sym.fresh "j" and i = Sym.fresh "i" in
  let p =
    mk_proc ~name:"ukernel_ref" ~args:(args_of ~dt s)
      [
        (* C += Ac * Bc *)
        loopn k (var s.kc)
          [
            loopn j (var s.nr)
              [
                loopn i (var s.mr)
                  [
                    reduce s.c [ var j; var i ]
                      (mul (rd s.ac [ var k; var i ]) (rd s.bc [ var k; var j ]));
                  ];
              ];
          ];
      ]
  in
  Exo_check.Wellformed.check_proc p;
  p

(** Fig. 4: the full micro-kernel covering every alpha/beta combination,
    with the [Cb = C*beta] and [Ba = Bc*alpha] staging buffers. *)
let ukernel_ref ?(dt = Dtype.F32) () : proc =
  let s = fresh_syms () in
  let cb = Sym.fresh "Cb" and ba = Sym.fresh "Ba" in
  let cj = Sym.fresh "cj" and ci = Sym.fresh "ci" in
  let bk = Sym.fresh "bk" and bj = Sym.fresh "bj" in
  let k = Sym.fresh "k" and j = Sym.fresh "j" and i = Sym.fresh "i" in
  let cj2 = Sym.fresh "cj" and ci2 = Sym.fresh "ci" in
  let p =
    mk_proc ~name:"ukernel_ref_full" ~args:(args_of ~dt s)
      [
        (* Tmp buffers for C * beta and B * alpha *)
        alloc cb dt [ var s.nr; var s.mr ];
        alloc ba dt [ var s.kc; var s.nr ];
        (* Cb = C * beta *)
        loopn cj (var s.nr)
          [
            loopn ci (var s.mr)
              [
                assign cb [ var cj; var ci ]
                  (mul (rd s.c [ var cj; var ci ]) (rd s.beta [ int 0 ]));
              ];
          ];
        (* Ba = Bc * alpha *)
        loopn bk (var s.kc)
          [
            loopn bj (var s.nr)
              [
                assign ba [ var bk; var bj ]
                  (mul (rd s.bc [ var bk; var bj ]) (rd s.alpha [ int 0 ]));
              ];
          ];
        (* Cb += Ac * Ba *)
        loopn k (var s.kc)
          [
            loopn j (var s.nr)
              [
                loopn i (var s.mr)
                  [
                    reduce cb [ var j; var i ]
                      (mul (rd s.ac [ var k; var i ]) (rd ba [ var k; var j ]));
                  ];
              ];
          ];
        (* C = Cb *)
        loopn cj2 (var s.nr)
          [
            loopn ci2 (var s.mr)
              [ assign s.c [ var cj2; var ci2 ] (rd cb [ var cj2; var ci2 ]) ];
          ];
      ]
  in
  Exo_check.Wellformed.check_proc p;
  p

(** Source for the beta = 0 specialization: [C = Ac·Bc] with an explicit
    zero-initialization nest. Deep-learning GEMMs overwhelmingly run with
    beta = 0 (fresh output tensors); the scheduled kernel zeroes the
    accumulators with a register [dup 0] instead of loading C, saving the
    whole C-tile read. *)
let ukernel_ref_beta0 ?(dt = Dtype.F32) () : proc =
  let mr = Sym.fresh "MR" and nr = Sym.fresh "NR" and kc = Sym.fresh "KC" in
  let ac = Sym.fresh "Ac" and bc = Sym.fresh "Bc" and c = Sym.fresh "C" in
  let zj = Sym.fresh "zj" and zi = Sym.fresh "zi" in
  let k = Sym.fresh "k" and j = Sym.fresh "j" and i = Sym.fresh "i" in
  let p =
    mk_proc ~name:"ukernel_ref_beta0"
      ~args:
        [
          size_arg mr;
          size_arg nr;
          size_arg kc;
          tensor_arg ac dt [ var kc; var mr ];
          tensor_arg bc dt [ var kc; var nr ];
          tensor_arg c dt [ var nr; var mr ];
        ]
      [
        (* C = 0 *)
        loopn zj (var nr) [ loopn zi (var mr) [ assign c [ var zj; var zi ] (flt 0.0) ] ];
        (* C += Ac * Bc *)
        loopn k (var kc)
          [
            loopn j (var nr)
              [
                loopn i (var mr)
                  [
                    reduce c [ var j; var i ]
                      (mul (rd ac [ var k; var i ]) (rd bc [ var k; var j ]));
                  ];
              ];
          ];
      ]
  in
  Exo_check.Wellformed.check_proc p;
  p

(** Source for the non-packed-A variant (Section III-B): A in its original
    row-major [MR × KC] layout (leading dimension = KC after slicing) and C
    row-major [MR × NR]; the schedule vectorizes over j and broadcasts A. *)
let ukernel_ref_nopack ?(dt = Dtype.F32) () : proc =
  let mr = Sym.fresh "MR" and nr = Sym.fresh "NR" and kc = Sym.fresh "KC" in
  let a = Sym.fresh "A" and bc = Sym.fresh "Bc" and c = Sym.fresh "C" in
  let k = Sym.fresh "k" and j = Sym.fresh "j" and i = Sym.fresh "i" in
  let p =
    mk_proc ~name:"ukernel_ref_nopack"
      ~args:
        [
          size_arg mr;
          size_arg nr;
          size_arg kc;
          tensor_arg a dt [ var mr; var kc ];
          tensor_arg bc dt [ var kc; var nr ];
          tensor_arg c dt [ var mr; var nr ];
        ]
      [
        loopn k (var kc)
          [
            loopn i (var mr)
              [
                loopn j (var nr)
                  [
                    reduce c [ var i; var j ]
                      (mul (rd a [ var i; var k ]) (rd bc [ var k; var j ]));
                  ];
              ];
          ];
      ]
  in
  Exo_check.Wellformed.check_proc p;
  p
