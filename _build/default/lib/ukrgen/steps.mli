(** Section III, step by step: the schedule turning the reference kernel
    (Fig. 5) into the vectorized, unrolled micro-kernel (Fig. 11), with
    every intermediate procedure recorded against its paper figure. *)

type step = { title : string; figure : string option; proc : Exo_ir.Ir.proc }

type trace = step list
(** Earliest step first. *)

(** The fully scheduled kernel (the last step). *)
val final : trace -> Exo_ir.Ir.proc

(** The standard packed schedule — requires [lanes | MR], [lanes | NR] and a
    lane-indexed FMA in the kit. Produces the seven steps of Figs. 5–11;
    the tests check each is interpreter-equivalent to the reference. *)
val packed : kit:Kits.t -> mr:int -> nr:int -> trace
