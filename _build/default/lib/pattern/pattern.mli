(** The Exo cursor-pattern mini-language.

    Scheduling calls locate their targets with small source patterns,
    exactly as in the paper's user code:

    - ["for itt in _: _"] — a loop over [itt] (bare ["itt"] also accepted);
    - ["C[_] += _"] / ["C_reg[_] = _"] — reduction / assignment by buffer;
    - ["C_reg : _"] — an allocation;
    - ["neon_vld_4xf32(_)"] — an instruction call by name;
    - ["if _: _"] — a guard;

    each optionally suffixed with an occurrence selector [#k] (0-based). *)

exception Pattern_error of string

type shape =
  | PFor of string option
  | PAssign of string option
  | PReduce of string option
  | PAlloc of string option
  | PCall of string option
  | PIf

type t = { shape : shape; occurrence : int option }

val parse : string -> t
val stmt_matches : shape -> Exo_ir.Ir.stmt -> bool

(** All matches in program order (with [#k]: exactly the k-th match). *)
val find : Exo_ir.Ir.stmt list -> string -> Exo_ir.Cursor.t list

(** The first match — what most scheduling ops operate on. *)
val find_first : Exo_ir.Ir.stmt list -> string -> Exo_ir.Cursor.t

val find_first_stmt :
  Exo_ir.Ir.stmt list -> string -> Exo_ir.Cursor.t * Exo_ir.Ir.stmt

val count : Exo_ir.Ir.stmt list -> string -> int
