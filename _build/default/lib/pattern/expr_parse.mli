(** Parser for the expression strings scheduling calls pass around —
    [stage_mem(p, ..., 'C[4 * jt + jtt, 4 * it + itt]', ...)],
    [expand_dim(p, 'C_reg', '12', 'jt*4+jtt')] — resolved against the names
    in scope at the target site. *)

exception Parse_error of string

type env = string -> Exo_ir.Sym.t option

(** Parse an index/arith expression. *)
val expr : env:env -> string -> Exo_ir.Ir.expr

(** Parse a point access ["C[4*jt + jtt, 4*it + itt]"]. *)
val point_access : env:env -> string -> Exo_ir.Sym.t * Exo_ir.Ir.expr list

(** Parse a window ["C[0:12, 0:8]"] / ["Ac[k, 0:4]"]: each subscript a point
    or a half-open [lo:hi] interval. *)
val window : env:env -> string -> Exo_ir.Sym.t * Exo_ir.Ir.waccess list
