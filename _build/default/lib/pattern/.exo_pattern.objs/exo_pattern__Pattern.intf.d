lib/pattern/pattern.mli: Exo_ir
