lib/pattern/expr_parse.ml: Exo_ir Fmt Ir List String Sym
