lib/pattern/expr_parse.mli: Exo_ir
