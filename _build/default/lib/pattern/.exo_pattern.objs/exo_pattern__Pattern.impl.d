lib/pattern/pattern.ml: Cursor Exo_ir Fmt Ir List String Sym
