(** The Exo cursor-pattern mini-language.

    Scheduling calls locate their targets with small source patterns, exactly
    as in the paper's user code:

    - ["for itt in _: _"] — a loop over [itt] (["for _ in _: _"] matches any
      loop; the bare shorthand ["itt"] is also accepted, as in
      [divide_loop(p, 'i', ...)]);
    - ["C[_] += _"] — a reduction into buffer [C];
    - ["C_reg[_] = _"] — an assignment to [C_reg];
    - ["C_reg : _"] — an allocation of [C_reg];
    - ["neon_vld_4xf32(_)"] — a call of the named instruction;
    - ["if _: _"] — a guard;

    any of which may carry an occurrence selector suffix [#k] (0-based),
    e.g. ["for jt in _: _ #1"] for the second [jt] loop in program order. *)

open Exo_ir

exception Pattern_error of string

let err fmt = Fmt.kstr (fun s -> raise (Pattern_error s)) fmt

type shape =
  | PFor of string option  (** loop; [Some v] constrains the variable name *)
  | PAssign of string option  (** [buf[_] = _] *)
  | PReduce of string option  (** [buf[_] += _] *)
  | PAlloc of string option  (** [buf : _] *)
  | PCall of string option  (** [f(_)] *)
  | PIf

type t = { shape : shape; occurrence : int option }

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

type token = Ident of string | Sym of char | Hash of int

let tokenize (s : string) : token list =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' -> go (i + 1) acc
      | '#' ->
          let j = ref (i + 1) in
          while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
            incr j
          done;
          if !j = i + 1 then err "expected digits after '#' in pattern %S" s;
          go !j (Hash (int_of_string (String.sub s (i + 1) (!j - i - 1))) :: acc)
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do
            incr j
          done;
          go !j (Ident (String.sub s i (!j - i)) :: acc)
      | ('[' | ']' | '(' | ')' | ':' | '=' | '+' | ',') as c -> go (i + 1) (Sym c :: acc)
      | c -> err "unexpected character %C in pattern %S" c s
  in
  go 0 []

let name_of = function "_" -> None | n -> Some n

(** [parse s] parses a pattern string. *)
let parse (s : string) : t =
  let toks = tokenize s in
  let toks, occurrence =
    match List.rev toks with
    | Hash k :: rest -> (List.rev rest, Some k)
    | _ -> (toks, None)
  in
  let shape =
    match toks with
    (* for v in _: _ *)
    | [ Ident "for"; Ident v; Ident "in"; Ident "_"; Sym ':'; Ident "_" ] ->
        PFor (name_of v)
    (* if _: _ *)
    | [ Ident "if"; Ident "_"; Sym ':'; Ident "_" ] -> PIf
    (* buf [ _ ] = _  |  buf [ _ ] += _ *)
    | [ Ident b; Sym '['; Ident "_"; Sym ']'; Sym '='; Ident "_" ] ->
        PAssign (name_of b)
    | [ Ident b; Sym '['; Ident "_"; Sym ']'; Sym '+'; Sym '='; Ident "_" ] ->
        PReduce (name_of b)
    (* buf : _ *)
    | [ Ident b; Sym ':'; Ident "_" ] -> PAlloc (name_of b)
    (* f ( _ ) *)
    | [ Ident f; Sym '('; Ident "_"; Sym ')' ] -> PCall (name_of f)
    (* bare loop-variable shorthand *)
    | [ Ident v ] when v <> "_" && v <> "for" && v <> "if" -> PFor (Some v)
    | [] -> err "empty pattern"
    | _ -> err "unrecognized pattern %S" s
  in
  { shape; occurrence }

(* ------------------------------------------------------------------ *)
(* Matching                                                            *)

let name_matches opt sym =
  match opt with None -> true | Some n -> String.equal n (Sym.name sym)

let stmt_matches (shape : shape) (s : Ir.stmt) : bool =
  match (shape, s) with
  | PFor n, SFor (v, _, _, _) -> name_matches n v
  | PAssign n, SAssign (b, _, _) -> name_matches n b
  | PReduce n, SReduce (b, _, _) -> name_matches n b
  | PAlloc n, SAlloc (b, _, _, _) -> name_matches n b
  | PCall n, SCall (p, _) -> (
      match n with None -> true | Some f -> String.equal f p.p_name)
  | PIf, SIf _ -> true
  | _ -> false

(** All matches of [pat] in [body], in program order, ignoring the
    occurrence selector. *)
let find_all_stmts (body : Ir.stmt list) (pat : t) : (Cursor.t * Ir.stmt) list =
  List.filter (fun (_, s) -> stmt_matches pat.shape s) (Cursor.all_stmts body)

(** Resolve a pattern to cursors. With an [#k] selector, exactly the [k]-th
    match (or an error); otherwise all matches. *)
let find (body : Ir.stmt list) (pat_s : string) : Cursor.t list =
  let pat = parse pat_s in
  let all = find_all_stmts body pat in
  match pat.occurrence with
  | None -> List.map fst all
  | Some k -> (
      match List.nth_opt all k with
      | Some (c, _) -> [ c ]
      | None ->
          err "pattern %S: occurrence #%d requested but only %d match(es)" pat_s k
            (List.length all))

(** The first match of [pat_s] (what most scheduling ops operate on). *)
let find_first (body : Ir.stmt list) (pat_s : string) : Cursor.t =
  match find body pat_s with
  | [] -> err "pattern %S does not match any statement" pat_s
  | c :: _ -> c

(** Like {!find_first} but also returns the matched statement. *)
let find_first_stmt (body : Ir.stmt list) (pat_s : string) : Cursor.t * Ir.stmt =
  let c = find_first body pat_s in
  (c, Cursor.get body c)

let count (body : Ir.stmt list) (pat_s : string) : int =
  List.length (find body pat_s)
