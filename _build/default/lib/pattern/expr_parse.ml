(** Parser for the small expression strings scheduling calls pass around.

    Exo user code writes windows and index expressions as strings —
    [stage_mem(p, 'C[_] += _', 'C[4 * jt + jtt, 4 * it + itt]', 'C_reg')],
    [expand_dim(p, 'C_reg', NR, 'jt*4+jtt')] — whose names refer to loop
    variables in scope *at the target site*. This module parses such strings
    into {!Exo_ir.Ir.expr} against a name-resolution environment supplied by
    the scheduling primitive.

    Grammar (precedence low→high): sums of terms ([+], [-]); terms of unary
    factors ([*], [/], [%]); unary minus; atoms are integer literals, names,
    subscripted accesses [name\[e, …\]] and parenthesized expressions. *)

open Exo_ir

exception Parse_error of string

let err fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type env = (string -> Sym.t option)

type token = TInt of int | TIdent of string | TOp of char

let tokenize (s : string) : token list =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' -> go (i + 1) acc
      | c when c >= '0' && c <= '9' ->
          let j = ref i in
          while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
            incr j
          done;
          go !j (TInt (int_of_string (String.sub s i (!j - i))) :: acc)
      | c
        when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' ->
          let j = ref i in
          while
            !j < n
            && ((s.[!j] >= 'a' && s.[!j] <= 'z')
               || (s.[!j] >= 'A' && s.[!j] <= 'Z')
               || (s.[!j] >= '0' && s.[!j] <= '9')
               || s.[!j] = '_')
          do
            incr j
          done;
          go !j (TIdent (String.sub s i (!j - i)) :: acc)
      | ('+' | '-' | '*' | '/' | '%' | '(' | ')' | '[' | ']' | ',' | ':') as c ->
          go (i + 1) (TOp c :: acc)
      | c -> err "unexpected character %C in expression %S" c s
  in
  go 0 []

type state = { mutable toks : token list; env : env; src : string }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let advance st =
  match st.toks with [] -> err "unexpected end of %S" st.src | _ :: r -> st.toks <- r

let expect_op st c =
  match peek st with
  | Some (TOp c') when c = c' -> advance st
  | _ -> err "expected %C in %S" c st.src

let resolve st name =
  match st.env name with
  | Some s -> s
  | None -> err "unknown name %S in %S (not in scope at the target)" name st.src

let rec parse_sum st : Ir.expr =
  let lhs = parse_term st in
  let rec loop acc =
    match peek st with
    | Some (TOp '+') ->
        advance st;
        loop (Ir.Binop (Ir.Add, acc, parse_term st))
    | Some (TOp '-') ->
        advance st;
        loop (Ir.Binop (Ir.Sub, acc, parse_term st))
    | _ -> acc
  in
  loop lhs

and parse_term st : Ir.expr =
  let lhs = parse_unary st in
  let rec loop acc =
    match peek st with
    | Some (TOp '*') ->
        advance st;
        loop (Ir.Binop (Ir.Mul, acc, parse_unary st))
    | Some (TOp '/') ->
        advance st;
        loop (Ir.Binop (Ir.Div, acc, parse_unary st))
    | Some (TOp '%') ->
        advance st;
        loop (Ir.Binop (Ir.Mod, acc, parse_unary st))
    | _ -> acc
  in
  loop lhs

and parse_unary st : Ir.expr =
  match peek st with
  | Some (TOp '-') ->
      advance st;
      Ir.Neg (parse_unary st)
  | _ -> parse_atom st

and parse_atom st : Ir.expr =
  match peek st with
  | Some (TInt n) ->
      advance st;
      Ir.Int n
  | Some (TIdent name) -> (
      advance st;
      match peek st with
      | Some (TOp '[') ->
          advance st;
          let idx = parse_indices st in
          Ir.Read (resolve st name, idx)
      | _ -> Ir.Var (resolve st name))
  | Some (TOp '(') ->
      advance st;
      let e = parse_sum st in
      expect_op st ')';
      e
  | _ -> err "unexpected token in %S" st.src

and parse_indices st : Ir.expr list =
  let rec loop acc =
    let e = parse_sum st in
    match peek st with
    | Some (TOp ',') ->
        advance st;
        loop (e :: acc)
    | Some (TOp ']') ->
        advance st;
        List.rev (e :: acc)
    | _ -> err "expected ',' or ']' in %S" st.src
  in
  loop []

let finish st v =
  match st.toks with [] -> v | _ -> err "trailing tokens in %S" st.src

(** Parse an index/arith expression, resolving names through [env]. *)
let expr ~(env : env) (s : string) : Ir.expr =
  let st = { toks = tokenize s; env; src = s } in
  finish st (parse_sum st)

(** Parse a point access like ["C[4*jt + jtt, 4*it + itt]"], returning the
    buffer and its point subscripts. *)
let point_access ~(env : env) (s : string) : Sym.t * Ir.expr list =
  let st = { toks = tokenize s; env; src = s } in
  match parse_atom st with
  | Ir.Read (b, idx) -> finish st (b, idx)
  | _ -> err "expected a buffer access in %S" s

(** Parse a window like ["C[0:12, 0:8]"] or ["Ac[k, 0:4]"]: each subscript is
    a point or a half-open [lo:hi] interval. *)
let window ~(env : env) (s : string) : Sym.t * Ir.waccess list =
  let st = { toks = tokenize s; env; src = s } in
  let buf =
    match peek st with
    | Some (TIdent name) ->
        advance st;
        resolve st name
    | _ -> err "expected a buffer name in %S" s
  in
  expect_op st '[';
  let rec loop acc =
    let lo = parse_sum st in
    let w =
      match peek st with
      | Some (TOp ':') ->
          advance st;
          Ir.Iv (lo, parse_sum st)
      | _ -> Ir.Pt lo
    in
    match peek st with
    | Some (TOp ',') ->
        advance st;
        loop (w :: acc)
    | Some (TOp ']') ->
        advance st;
        List.rev (w :: acc)
    | _ -> err "expected ',' or ']' in %S" s
  in
  let widx = loop [] in
  finish st (buf, widx)
