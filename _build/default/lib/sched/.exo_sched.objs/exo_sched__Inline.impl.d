lib/sched/inline.ml: Common Cursor Exo_ir Ir List Simplify Subst Sym
