lib/sched/attrs.ml: Common Cursor Dtype Exo_ir Exo_isa Ir List Mem Simplify Subst Sym
