lib/sched/common.ml: Cursor Exo_check Exo_ir Exo_pattern Fmt Ir List Logs Simplify Sym
