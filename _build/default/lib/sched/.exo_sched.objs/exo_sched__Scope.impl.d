lib/sched/scope.ml: Cursor Exo_ir Hashtbl Ir List Sym
