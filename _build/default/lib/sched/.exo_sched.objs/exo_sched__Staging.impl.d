lib/sched/staging.ml: Affine Common Cursor Dtype Exo_check Exo_ir Exo_pattern Fmt Ir List Mem Option Pp Scope Simplify String Sym
