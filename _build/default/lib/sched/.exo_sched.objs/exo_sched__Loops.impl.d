lib/sched/loops.ml: Affine Common Cursor Exo_check Exo_ir Ir List Pp Simplify String Subst Sym
