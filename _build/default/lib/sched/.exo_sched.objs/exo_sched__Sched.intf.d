lib/sched/sched.mli: Exo_ir
