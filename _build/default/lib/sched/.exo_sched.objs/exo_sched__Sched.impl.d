lib/sched/sched.ml: Attrs Common Exo_ir Inline Loops Replace Staging
