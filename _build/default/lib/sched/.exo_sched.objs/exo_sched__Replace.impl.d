lib/sched/replace.ml: Affine Common Cursor Exo_check Exo_ir Float Fmt Ir List Pp Scope Simplify Sym
