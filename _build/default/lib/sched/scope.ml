(** Name resolution at a cursor.

    Expression strings in scheduling calls (['C[4 * jt + jtt, ...]']) name
    loop variables that are only meaningful at the target site. This module
    reconstructs the scope there: procedure arguments, allocations textually
    preceding the point, and the loop variables of every enclosing loop. *)

open Exo_ir
open Ir

(** Environment visible at cursor [c] in [p]. Inner bindings shadow outer
    ones of the same display name. *)
let at_cursor (p : proc) (c : Cursor.t) : string -> Sym.t option =
  let tbl = Hashtbl.create 16 in
  let bind s = Hashtbl.replace tbl (Sym.name s) s in
  List.iter (fun (a : arg) -> bind a.a_name) p.p_args;
  let rec walk (block : stmt list) (dirs : Cursor.dir list) (upto : int) =
    (* Bind allocs preceding the point of interest in this block. *)
    List.iteri
      (fun i s -> if i <= upto then match s with SAlloc (b, _, _, _) -> bind b | _ -> ())
      block;
    match dirs with
    | [] -> ()
    | d :: rest ->
        (match Cursor.nth_stmt block d.idx with
        | SFor (v, _, _, _) -> bind v
        | _ -> ());
        walk (Cursor.sub_block (Cursor.nth_stmt block d.idx) d.blk) rest
          (match rest with [] -> c.Cursor.last | r :: _ -> r.Cursor.idx)
  in
  walk p.p_body c.Cursor.dirs
    (match c.Cursor.dirs with [] -> c.Cursor.last | d :: _ -> d.Cursor.idx);
  fun name -> Hashtbl.find_opt tbl name

(** Ranges of the loop variables enclosing (and including binders above)
    cursor [c], for discharging instruction preconditions: each loop var
    [v] with bounds [(lo, hi)] contributes [v ∈ [lo, hi-1]]. *)
let loop_ranges (p : proc) (c : Cursor.t) : (Sym.t * expr * expr) list =
  let rec walk (block : stmt list) (dirs : Cursor.dir list) acc =
    match dirs with
    | [] -> List.rev acc
    | d :: rest -> (
        match Cursor.nth_stmt block d.idx with
        | SFor (v, lo, hi, body) -> walk body rest ((v, lo, hi) :: acc)
        | SIf (_, t, e) -> walk (if d.Cursor.blk = 0 then t else e) rest acc
        | _ -> List.rev acc)
  in
  walk p.p_body c.Cursor.dirs []
