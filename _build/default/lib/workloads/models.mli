(** The paper's DNN models: every convolution of ResNet50 v1.5 and VGG16 at
    batch size 1, with the layer-id grouping of Tables I and II (layers
    sharing GEMM dimensions reported once, multiplicity kept for the
    aggregated-time figures). *)

type layer = {
  id : int;  (** the table's "Layer id." *)
  layer_numbers : string;  (** the table's "Layer numbers" column *)
  count : int;  (** model layers sharing these dimensions *)
  spec : Conv.spec;
  h : int;
  w : int;
}

(** (m, n, k) of the layer's IM2ROW GEMM. *)
val gemm_dims : layer -> int * int * int

(** The 20 distinct conv GEMMs of Table I (all 53 conv layers). *)
val resnet50 : layer list

(** The 9 distinct conv GEMMs of Table II (all 13 conv layers). Row 7
    encodes the true architecture (n = 512); the paper prints 256 there —
    a typo its own row 8 (k = 4608 = 3·3·512) contradicts. *)
val vgg16 : layer list

(** The (m, n, k) triples exactly as printed in the paper. *)
val table1_expected : (int * int * int) list

val table2_expected : (int * int * int) list
