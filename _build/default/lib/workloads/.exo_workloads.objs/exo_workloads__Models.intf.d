lib/workloads/models.mli: Conv
