lib/workloads/conv.mli: Exo_blis Random
