lib/workloads/conv.ml: Array Exo_blis Float Random
