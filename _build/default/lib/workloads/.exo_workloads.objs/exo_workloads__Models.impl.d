lib/workloads/models.ml: Conv
