(** Convolution layers and the IM2ROW lowering (Section IV-C's workload
    source): a conv with [cout] filters of [kh×kw×cin] over an [h×w×cin]
    input becomes a GEMM with m = out_h·out_w, n = cout, k = kh·kw·cin.
    Tables I/II are recomputed through {!gemm_dims}; {!direct} validates the
    lowering numerically. *)

type spec = {
  cin : int;
  cout : int;
  kh : int;
  kw : int;
  stride : int;
  pad : int;
}

(** Input feature map, NHWC with N = 1; out-of-range taps read zero. *)
type tensor = { h : int; w : int; c : int; data : float array }

val tensor_create : ?init:float -> int -> int -> int -> tensor
val tget : tensor -> int -> int -> int -> float
val tset : tensor -> int -> int -> int -> float -> unit
val tensor_random : int -> int -> int -> Random.State.t -> tensor
val out_dims : spec -> h:int -> w:int -> int * int

(** GEMM dimensions (m, n, k) of the lowered convolution. *)
val gemm_dims : spec -> h:int -> w:int -> int * int * int

(** One row per output pixel, columns ordered (kh, kw, cin). *)
val im2row : spec -> tensor -> Exo_blis.Matrix.t

(** Direct convolution (reference); weights are [kh·kw·cin × cout]. *)
val direct : spec -> tensor -> Exo_blis.Matrix.t -> tensor

(** Convolution by lowering: im2row then GEMM. *)
val via_gemm : spec -> tensor -> Exo_blis.Matrix.t -> tensor

val tensor_equal : tensor -> tensor -> bool
