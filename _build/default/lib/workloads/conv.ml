(** Convolution layers and the IM2ROW lowering.

    The paper's rectangular-GEMM experiments (Section IV-C) take their
    problem sizes from applying IM2ROW [25] to the convolutions of ResNet50
    v1.5 and VGG16 at batch size 1: a convolution with [cout] filters of
    [kh×kw×cin] over an [h×w×cin] input becomes a GEMM with

    - m = out_h · out_w (output pixels),
    - n = cout,
    - k = kh · kw · cin (patch size).

    We implement the actual transform over NHWC tensors plus a direct
    convolution, so Tables I and II are *recomputed* from layer shapes and
    the lowering is validated numerically (im2row ∘ GEMM ≡ direct). *)

type spec = {
  cin : int;
  cout : int;
  kh : int;
  kw : int;
  stride : int;
  pad : int;
}

(** Input feature map, NHWC with N = 1. *)
type tensor = { h : int; w : int; c : int; data : float array }

let tensor_create ?(init = 0.0) h w c =
  { h; w; c; data = Array.make (max 1 (h * w * c)) init }

let tget t i j ch =
  if i < 0 || i >= t.h || j < 0 || j >= t.w then 0.0 (* zero padding *)
  else t.data.((((i * t.w) + j) * t.c) + ch)

let tset t i j ch v = t.data.((((i * t.w) + j) * t.c) + ch) <- v

let tensor_random h w c (st : Random.State.t) =
  let t = tensor_create h w c in
  Array.iteri (fun i _ -> t.data.(i) <- float_of_int (Random.State.int st 5 - 2)) t.data;
  t

let out_dims (s : spec) ~(h : int) ~(w : int) : int * int =
  ( ((h + (2 * s.pad) - s.kh) / s.stride) + 1,
    ((w + (2 * s.pad) - s.kw) / s.stride) + 1 )

(** GEMM dimensions (m, n, k) of the IM2ROW-lowered convolution. *)
let gemm_dims (s : spec) ~(h : int) ~(w : int) : int * int * int =
  let oh, ow = out_dims s ~h ~w in
  (oh * ow, s.cout, s.kh * s.kw * s.cin)

(** IM2ROW: one row per output pixel, columns ordered (kh, kw, cin) —
    matching a weight matrix of shape [kh·kw·cin × cout]. *)
let im2row (s : spec) (input : tensor) : Exo_blis.Matrix.t =
  let oh, ow = out_dims s ~h:input.h ~w:input.w in
  let k = s.kh * s.kw * s.cin in
  let m = Exo_blis.Matrix.create (oh * ow) k in
  for oi = 0 to oh - 1 do
    for oj = 0 to ow - 1 do
      let row = (oi * ow) + oj in
      let col = ref 0 in
      for di = 0 to s.kh - 1 do
        for dj = 0 to s.kw - 1 do
          for ch = 0 to s.cin - 1 do
            Exo_blis.Matrix.set m row !col
              (tget input
                 ((oi * s.stride) + di - s.pad)
                 ((oj * s.stride) + dj - s.pad)
                 ch);
            incr col
          done
        done
      done
    done
  done;
  m

(** Direct convolution (reference). Weights: [kh·kw·cin × cout]. *)
let direct (s : spec) (input : tensor) (weights : Exo_blis.Matrix.t) : tensor =
  let oh, ow = out_dims s ~h:input.h ~w:input.w in
  if weights.Exo_blis.Matrix.rows <> s.kh * s.kw * s.cin
     || weights.Exo_blis.Matrix.cols <> s.cout
  then invalid_arg "Conv.direct: weight shape mismatch";
  let out = tensor_create oh ow s.cout in
  for oi = 0 to oh - 1 do
    for oj = 0 to ow - 1 do
      for co = 0 to s.cout - 1 do
        let acc = ref 0.0 in
        let row = ref 0 in
        for di = 0 to s.kh - 1 do
          for dj = 0 to s.kw - 1 do
            for ch = 0 to s.cin - 1 do
              acc :=
                !acc
                +. tget input
                     ((oi * s.stride) + di - s.pad)
                     ((oj * s.stride) + dj - s.pad)
                     ch
                   *. Exo_blis.Matrix.get weights !row co;
              incr row
            done
          done
        done;
        tset out oi oj co !acc
      done
    done
  done;
  out

(** Convolution by lowering: out(row, co) = im2row·W. The result tensor's
    (oi, oj, co) equals the GEMM's (row, co). *)
let via_gemm (s : spec) (input : tensor) (weights : Exo_blis.Matrix.t) : tensor =
  let oh, ow = out_dims s ~h:input.h ~w:input.w in
  let a = im2row s input in
  let c = Exo_blis.Matrix.create (oh * ow) s.cout in
  Exo_blis.Gemm.naive ~beta:0.0 a weights c;
  let out = tensor_create oh ow s.cout in
  for oi = 0 to oh - 1 do
    for oj = 0 to ow - 1 do
      for co = 0 to s.cout - 1 do
        tset out oi oj co (Exo_blis.Matrix.get c ((oi * ow) + oj) co)
      done
    done
  done;
  out

let tensor_equal a b =
  a.h = b.h && a.w = b.w && a.c = b.c
  && Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) a.data b.data
