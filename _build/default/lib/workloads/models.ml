(** The DNN models of the paper's Section IV-C: every convolution layer of
    ResNet50 v1.5 and VGG16 at batch size 1, with the layer-id grouping of
    Tables I and II (layers sharing GEMM dimensions are reported once, with
    their multiplicity kept for the aggregated-time figures 16 and 18). *)

type layer = {
  id : int;  (** the table's "Layer id." *)
  layer_numbers : string;  (** the table's "Layer numbers" column *)
  count : int;  (** how many model layers share these dimensions *)
  spec : Conv.spec;
  h : int;  (** input height at this layer *)
  w : int;
}

let gemm_dims (l : layer) = Conv.gemm_dims l.spec ~h:l.h ~w:l.w

let mk id layer_numbers count ~h ~cin ~cout ~kh ~stride ~pad =
  {
    id;
    layer_numbers;
    count;
    spec = { Conv.cin; cout; kh; kw = kh; stride; pad };
    h;
    w = h;
  }

(** ResNet50 v1.5 (224×224×3 input): the 20 distinct conv GEMMs of Table I.
    v1.5 places the stride-2 downsampling on the 3×3 convolutions. *)
let resnet50 : layer list =
  [
    mk 1 "001" 1 ~h:224 ~cin:3 ~cout:64 ~kh:7 ~stride:2 ~pad:3;
    mk 2 "006" 1 ~h:56 ~cin:64 ~cout:64 ~kh:1 ~stride:1 ~pad:0;
    mk 3 "009/021/031" 3 ~h:56 ~cin:64 ~cout:64 ~kh:3 ~stride:1 ~pad:1;
    mk 4 "012/014/024/034" 4 ~h:56 ~cin:64 ~cout:256 ~kh:1 ~stride:1 ~pad:0;
    mk 5 "018/028" 2 ~h:56 ~cin:256 ~cout:64 ~kh:1 ~stride:1 ~pad:0;
    mk 6 "038" 1 ~h:56 ~cin:256 ~cout:128 ~kh:1 ~stride:1 ~pad:0;
    mk 7 "041/053/063/073" 4 ~h:56 ~cin:128 ~cout:128 ~kh:3 ~stride:2 ~pad:1;
    mk 8 "044/056/066/076" 4 ~h:28 ~cin:128 ~cout:512 ~kh:1 ~stride:1 ~pad:0;
    mk 9 "046" 1 ~h:56 ~cin:256 ~cout:512 ~kh:1 ~stride:2 ~pad:0;
    mk 10 "050/060/070" 3 ~h:28 ~cin:512 ~cout:128 ~kh:1 ~stride:1 ~pad:0;
    mk 11 "080" 1 ~h:28 ~cin:512 ~cout:256 ~kh:1 ~stride:1 ~pad:0;
    mk 12 "083/095/105/115/125/135" 6 ~h:28 ~cin:256 ~cout:256 ~kh:3 ~stride:2 ~pad:1;
    mk 13 "086/098/108/118/128/138" 6 ~h:14 ~cin:256 ~cout:1024 ~kh:1 ~stride:1 ~pad:0;
    mk 14 "088" 1 ~h:28 ~cin:512 ~cout:1024 ~kh:1 ~stride:2 ~pad:0;
    mk 15 "092/102/112/122/132" 5 ~h:14 ~cin:1024 ~cout:256 ~kh:1 ~stride:1 ~pad:0;
    mk 16 "142" 1 ~h:14 ~cin:1024 ~cout:512 ~kh:1 ~stride:1 ~pad:0;
    mk 17 "145/157/167" 3 ~h:14 ~cin:512 ~cout:512 ~kh:3 ~stride:2 ~pad:1;
    mk 18 "148/160/170" 3 ~h:7 ~cin:512 ~cout:2048 ~kh:1 ~stride:1 ~pad:0;
    mk 19 "150" 1 ~h:14 ~cin:1024 ~cout:2048 ~kh:1 ~stride:2 ~pad:0;
    mk 20 "154/164" 2 ~h:7 ~cin:2048 ~cout:512 ~kh:1 ~stride:1 ~pad:0;
  ]

(** VGG16 (224×224×3 input): the 9 distinct conv GEMMs of Table II.

    Note: row 7 of the paper's Table II prints n = 256 where VGG16's
    conv4_1 has 512 output filters (its own row 8 lists k = 4608 = 3·3·512
    for the following layer, confirming 512); we encode the true
    architecture and record the discrepancy in EXPERIMENTS.md. *)
let vgg16 : layer list =
  [
    mk 1 "01" 1 ~h:224 ~cin:3 ~cout:64 ~kh:3 ~stride:1 ~pad:1;
    mk 2 "03" 1 ~h:224 ~cin:64 ~cout:64 ~kh:3 ~stride:1 ~pad:1;
    mk 3 "06" 1 ~h:112 ~cin:64 ~cout:128 ~kh:3 ~stride:1 ~pad:1;
    mk 4 "08" 1 ~h:112 ~cin:128 ~cout:128 ~kh:3 ~stride:1 ~pad:1;
    mk 5 "11" 1 ~h:56 ~cin:128 ~cout:256 ~kh:3 ~stride:1 ~pad:1;
    mk 6 "13/15" 2 ~h:56 ~cin:256 ~cout:256 ~kh:3 ~stride:1 ~pad:1;
    mk 7 "18" 1 ~h:28 ~cin:256 ~cout:512 ~kh:3 ~stride:1 ~pad:1;
    mk 8 "20/22" 2 ~h:28 ~cin:512 ~cout:512 ~kh:3 ~stride:1 ~pad:1;
    mk 9 "25/27/29" 3 ~h:14 ~cin:512 ~cout:512 ~kh:3 ~stride:1 ~pad:1;
  ]

(** The (m, n, k) triples of Table I, as printed in the paper. *)
let table1_expected =
  [
    (12544, 64, 147); (3136, 64, 64); (3136, 64, 576); (3136, 256, 64);
    (3136, 64, 256); (3136, 128, 256); (784, 128, 1152); (784, 512, 128);
    (784, 512, 256); (784, 128, 512); (784, 256, 512); (196, 256, 2304);
    (196, 1024, 256); (196, 1024, 512); (196, 256, 1024); (196, 512, 1024);
    (49, 512, 4608); (49, 2048, 512); (49, 2048, 1024); (49, 512, 2048);
  ]

(** Table II as printed (row 7's n = 256 is the paper's typo; the computed
    value is 512). *)
let table2_expected =
  [
    (50176, 64, 27); (50176, 64, 576); (12544, 128, 576); (12544, 128, 1152);
    (3136, 256, 1152); (3136, 256, 2304); (784, 512, 2304); (784, 512, 4608);
    (196, 512, 4608);
  ]
