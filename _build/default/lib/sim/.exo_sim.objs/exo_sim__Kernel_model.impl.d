lib/sim/kernel_model.ml: Exo_ir Exo_isa List Machine Memories Trace
