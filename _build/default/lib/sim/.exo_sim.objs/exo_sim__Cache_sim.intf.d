lib/sim/cache_sim.mli: Exo_isa Format
