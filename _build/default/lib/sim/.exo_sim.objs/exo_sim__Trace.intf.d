lib/sim/trace.mli: Exo_ir Format
