lib/sim/kernel_model.mli: Exo_ir Exo_isa Trace
