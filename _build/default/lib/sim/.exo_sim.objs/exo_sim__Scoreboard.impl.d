lib/sim/scoreboard.ml: Array Exo_ir Exo_isa Fmt Hashtbl Ir List Option Simplify Sym
