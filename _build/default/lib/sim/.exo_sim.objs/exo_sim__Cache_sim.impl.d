lib/sim/cache_sim.ml: Array Exo_isa Fmt
