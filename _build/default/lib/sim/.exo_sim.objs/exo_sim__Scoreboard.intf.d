lib/sim/scoreboard.mli: Exo_ir Exo_isa
