lib/sim/trace.ml: Exo_ir Exo_isa Fmt Ir List Simplify Sym
