(** Set-associative LRU cache simulator.

    Checks the analytical blocking model's residency claims empirically: the
    byte-level address trace of the packed BLIS macro-kernel (packing,
    panel reads, C-tile updates) runs through a three-level LRU hierarchy
    and per-level miss counts come out. *)

type level = {
  name : string;
  sets : int;
  assoc : int;
  line : int;
  tags : int array;
  ages : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

val create_level : name:string -> Exo_isa.Machine.cache -> level

(** One reference; [true] on hit. LRU replacement. *)
val access_level : level -> int -> bool

type hierarchy = {
  l1 : level;
  l2 : level;
  l3 : level;
  mutable dram_lines : int;
  mutable in_kernel : bool;
  mutable krefs : int;
  mutable kl1_miss : int;
}

val create : Exo_isa.Machine.t -> hierarchy

(** A reference that misses a level continues to the next. *)
val access : hierarchy -> int -> unit

type stats = {
  refs : int;
  l1_miss : int;
  l2_miss : int;
  l3_miss : int;
  dram : int;  (** lines fetched from memory — the bandwidth proxy *)
  kernel_refs : int;
  kernel_l1_miss : int;
}

val stats : hierarchy -> stats

(** Micro-kernel-phase L1 miss ratio — the number the analytical model's
    "Bc sliver stays in L1" story predicts to be tiny. *)
val kernel_l1_rate : stats -> float

val pp_stats : Format.formatter -> stats -> unit

(** Simulate an m×n×k FP32 GEMM under a blocking with an mr×nr kernel:
    packing reads/writes (BLIS panel layout) and per-call panel/C-tile
    accesses, element by element. *)
val gemm_trace :
  Exo_isa.Machine.t ->
  mc:int -> kc:int -> nc:int -> mr:int -> nr:int -> m:int -> n:int -> k:int ->
  stats
