(** A set-associative LRU cache simulator.

    The analytical blocking model ({!Exo_blis.Analytical}) *asserts* that its
    (mc, kc, nc) keep the Bc sliver in L1, the Ac block in L2 and the Bc
    panel in L3. This module checks that claim empirically: it simulates the
    byte-level address trace of the packed BLIS macro-kernel — packing
    writes, per-call panel reads, C-tile updates — through a three-level
    LRU hierarchy and reports per-level miss counts. The ablation bench runs
    it with the analytical blocking against deliberately bad blockings. *)

type level = {
  name : string;
  sets : int;
  assoc : int;
  line : int;
  tags : int array;  (** [sets * assoc], -1 = invalid *)
  ages : int array;  (** LRU stamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let create_level ~name (c : Exo_isa.Machine.cache) : level =
  let sets = Exo_isa.Machine.cache_sets c in
  {
    name;
    sets;
    assoc = c.assoc;
    line = c.line_bytes;
    tags = Array.make (sets * c.assoc) (-1);
    ages = Array.make (sets * c.assoc) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

(** One reference at [addr]; returns whether it hit. *)
let access_level (l : level) (addr : int) : bool =
  l.accesses <- l.accesses + 1;
  l.clock <- l.clock + 1;
  let block = addr / l.line in
  let set = block mod l.sets in
  let tag = block / l.sets in
  let base = set * l.assoc in
  let hit_way = ref (-1) in
  for w = base to base + l.assoc - 1 do
    if l.tags.(w) = tag then hit_way := w
  done;
  if !hit_way >= 0 then begin
    l.ages.(!hit_way) <- l.clock;
    true
  end
  else begin
    (* evict the least recently used way *)
    let victim = ref base and oldest = ref max_int in
    for w = base to base + l.assoc - 1 do
      if l.ages.(w) < !oldest then begin
        oldest := l.ages.(w);
        victim := w
      end
    done;
    l.misses <- l.misses + 1;
    l.tags.(!victim) <- tag;
    l.ages.(!victim) <- l.clock;
    false
  end

type hierarchy = {
  l1 : level;
  l2 : level;
  l3 : level;
  mutable dram_lines : int;
  mutable in_kernel : bool;  (** inside the micro-kernel (vs packing) *)
  mutable krefs : int;
  mutable kl1_miss : int;
}

let create (m : Exo_isa.Machine.t) : hierarchy =
  {
    l1 = create_level ~name:"L1" m.Exo_isa.Machine.l1;
    l2 = create_level ~name:"L2" m.Exo_isa.Machine.l2;
    l3 = create_level ~name:"L3" m.Exo_isa.Machine.l3;
    dram_lines = 0;
    in_kernel = false;
    krefs = 0;
    kl1_miss = 0;
  }

(** A reference that misses a level continues to the next. *)
let access (h : hierarchy) (addr : int) : unit =
  let l1_hit = access_level h.l1 addr in
  if h.in_kernel then begin
    h.krefs <- h.krefs + 1;
    if not l1_hit then h.kl1_miss <- h.kl1_miss + 1
  end;
  if not l1_hit then
    if not (access_level h.l2 addr) then
      if not (access_level h.l3 addr) then h.dram_lines <- h.dram_lines + 1

type stats = {
  refs : int;
  l1_miss : int;
  l2_miss : int;
  l3_miss : int;
  dram : int;
  kernel_refs : int;  (** micro-kernel phase only *)
  kernel_l1_miss : int;
}

let stats (h : hierarchy) : stats =
  {
    refs = h.l1.accesses;
    l1_miss = h.l1.misses;
    l2_miss = h.l2.misses;
    l3_miss = h.l3.misses;
    dram = h.dram_lines;
    kernel_refs = h.krefs;
    kernel_l1_miss = h.kl1_miss;
  }

(** Kernel-phase L1 miss ratio — the number the analytical model's L1 story
    (the Bc sliver stays resident) predicts to be tiny. *)
let kernel_l1_rate (s : stats) : float =
  float_of_int s.kernel_l1_miss /. float_of_int (max 1 s.kernel_refs)

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "refs=%d L1-miss=%.2f%% kernel-L1-miss=%.2f%% L2-miss=%d L3-miss=%d      DRAM-lines=%d"
    s.refs
    (100.0 *. float_of_int s.l1_miss /. float_of_int (max 1 s.refs))
    (100.0 *. kernel_l1_rate s)
    s.l2_miss s.l3_miss s.dram

(* ------------------------------------------------------------------ *)
(* The packed-GEMM address trace                                        *)

(** Simulate the memory behaviour of the BLIS macro-kernel (Fig. 1) on an
    m×n×k FP32 GEMM under [blocking] with an mr×nr micro-kernel: packing
    reads/writes and the micro-kernel's per-iteration panel loads and
    C-tile updates, element by element. Buffers occupy disjoint address
    ranges. Returns the hierarchy statistics. *)
let gemm_trace (m_desc : Exo_isa.Machine.t) ~(mc : int) ~(kc : int) ~(nc : int)
    ~(mr : int) ~(nr : int) ~(m : int) ~(n : int) ~(k : int) : stats =
  let h = create m_desc in
  let s = 4 in
  (* disjoint base addresses *)
  let a_base = 0 in
  let b_base = a_base + (m * k * s) in
  let c_base = b_base + (k * n * s) in
  let packa_base = c_base + (m * n * s) in
  let packb_base = packa_base + (mc * kc * s) in
  let touch addr = access h addr in
  let jc = ref 0 in
  while !jc < n do
    let ncb = min nc (n - !jc) in
    let pc = ref 0 in
    while !pc < k do
      let kcb = min kc (k - !pc) in
      (* pack B: read B, write packB in nr-wide panels (the BLIS layout) *)
      for j = 0 to ncb - 1 do
        for kk = 0 to kcb - 1 do
          touch (b_base + ((((!pc + kk) * n) + !jc + j) * s));
          let panel = j / nr and jj = j mod nr in
          let w = min nr (ncb - (panel * nr)) in
          touch (packb_base + ((panel * kcb * nr) + (kk * w) + jj) * s)
        done
      done;
      let ic = ref 0 in
      while !ic < m do
        let mcb = min mc (m - !ic) in
        (* pack A: read A, write packA in mr-wide panels *)
        for i = 0 to mcb - 1 do
          for kk = 0 to kcb - 1 do
            touch (a_base + ((((!ic + i) * k) + !pc + kk) * s));
            let panel = i / mr and ii = i mod mr in
            let w = min mr (mcb - (panel * mr)) in
            touch (packa_base + ((panel * kcb * mr) + (kk * w) + ii) * s)
          done
        done;
        (* micro-kernel sweeps *)
        let jr = ref 0 in
        while !jr < ncb do
          let nrb = min nr (ncb - !jr) in
          let ir = ref 0 in
          while !ir < mcb do
            let mrb = min mr (mcb - !ir) in
            h.in_kernel <- true;
            (* C tile load *)
            for j = 0 to nrb - 1 do
              for i = 0 to mrb - 1 do
                touch (c_base + ((((!ic + !ir + i) * n) + !jc + !jr + j) * s))
              done
            done;
            (* k loop: Ar and Br panel reads (panel-major, unit stride) *)
            let a_panel = packa_base + (!ir / mr * kcb * mr * s) in
            let b_panel = packb_base + (!jr / nr * kcb * nr * s) in
            for kk = 0 to kcb - 1 do
              for i = 0 to mrb - 1 do
                touch (a_panel + (((kk * mrb) + i) * s))
              done;
              for j = 0 to nrb - 1 do
                touch (b_panel + (((kk * nrb) + j) * s))
              done
            done;
            (* C tile store *)
            for j = 0 to nrb - 1 do
              for i = 0 to mrb - 1 do
                touch (c_base + ((((!ic + !ir + i) * n) + !jc + !jr + j) * s))
              done
            done;
            h.in_kernel <- false;
            ir := !ir + mr
          done;
          jr := !jr + nr
        done;
        ic := !ic + mc
      done;
      pc := !pc + kc
    done;
    jc := !jc + nc
  done;
  stats h
