(** Instruction-level scoreboard simulator.

    Unrolls the scheduled k-loop into a concrete op stream with
    register-level dependencies (exact renaming: RAW only) and executes
    several iterations on a small out-of-order core — issue window,
    per-class functional-unit limits, load/store ports — to measure
    steady-state cycles per iteration. Validates the closed-form
    {!Kernel_model} on every kernel of the paper's family. *)

exception Scoreboard_error of string

(** Steady-state cycles per k-loop iteration, measured over the second half
    of [iters] simulated iterations. *)
val cycles_per_iter :
  ?iters:int -> ?window:int -> Exo_isa.Machine.t -> Exo_ir.Ir.proc -> float
