(** Lowering a scheduled micro-kernel to an instruction census.

    The paper validates its generated code by inspecting the gcc assembly of
    the k-loop (Fig. 12): 5 × 128-bit loads + 24 fmla per iteration, all
    accumulators resident. We recover the same information directly from the
    scheduled IR: the *steady-state census* counts the vector ops executed
    per k-loop iteration, and the *prologue/epilogue census* counts the
    C-tile loads/stores around it. The performance model consumes only these
    censuses plus machine parameters. *)

open Exo_ir
open Ir

type census = {
  fma : int;  (** vector FMA ops *)
  load : int;  (** vector loads *)
  store : int;
  bcast : int;
  arith : int;  (** other vector arithmetic *)
  scalar_ops : int;  (** non-vectorized multiply-accumulate statements *)
}

let empty = { fma = 0; load = 0; store = 0; bcast = 0; arith = 0; scalar_ops = 0 }

let add a b =
  {
    fma = a.fma + b.fma;
    load = a.load + b.load;
    store = a.store + b.store;
    bcast = a.bcast + b.bcast;
    arith = a.arith + b.arith;
    scalar_ops = a.scalar_ops + b.scalar_ops;
  }

let scale k a =
  {
    fma = k * a.fma;
    load = k * a.load;
    store = k * a.store;
    bcast = k * a.bcast;
    arith = k * a.arith;
    scalar_ops = k * a.scalar_ops;
  }

let total_vector_ops c = c.fma + c.load + c.store + c.bcast + c.arith

let pp ppf c =
  Fmt.pf ppf "fma=%d ld=%d st=%d bcast=%d arith=%d scalar=%d" c.fma c.load c.store
    c.bcast c.arith c.scalar_ops

exception Trace_error of string

let err fmt = Fmt.kstr (fun s -> raise (Trace_error s)) fmt

let const_extent lo hi =
  match (Simplify.expr lo, Simplify.expr hi) with
  | Int a, Int b -> Some (max 0 (b - a))
  | _ -> None

(** Census of a statement list with constant-extent loops. *)
let rec census_stmts (body : stmt list) : census =
  List.fold_left (fun acc s -> add acc (census_stmt s)) empty body

and census_stmt (s : stmt) : census =
  match s with
  | SCall (callee, _) -> (
      match callee.p_instr with
      | Some i -> (
          match i.ci_kind with
          | KLoad -> { empty with load = 1 }
          | KStore -> { empty with store = 1 }
          | KFma -> { empty with fma = 1 }
          | KBcast -> { empty with bcast = 1 }
          | KArith | KOther -> { empty with arith = 1 })
      | None -> err "call to non-instruction %s in a scheduled kernel" callee.p_name)
  | SAssign _ | SReduce _ -> { empty with scalar_ops = 1 }
  | SAlloc _ -> empty
  | SFor (v, lo, hi, inner) -> (
      match const_extent lo hi with
      | Some n -> scale n (census_stmts inner)
      | None -> err "unexpected symbolic loop %s in a constant region" (Sym.name v))
  | SIf (_, t, e) ->
      (* guards are rare in scheduled kernels; take the max side *)
      let ct = census_stmts t and ce = census_stmts e in
      if total_vector_ops ct + ct.scalar_ops >= total_vector_ops ce + ce.scalar_ops
      then ct
      else ce

type t = {
  steady : census;  (** per k-loop iteration *)
  prologue : census;  (** before/after the k loop (C tile load/store) *)
  vregs_used : int;  (** register-memory residency in architectural registers *)
  lanes : int;  (** lanes of the kernel's vector ops (1 if purely scalar) *)
}

(** Register residency: each register-memory allocation holds
    (product of non-lane dims) registers. *)
let vregs_of (p : proc) : int * int =
  let regs = ref 0 and lanes = ref 1 in
  iter_stmts
    (function
      | SAlloc (_, dt, dims, mem) when Exo_isa.Memories.is_register_mem mem ->
          let info = Exo_isa.Memories.lookup_exn mem in
          lanes := max !lanes (Exo_isa.Memories.lanes_of info dt);
          let outer = List.rev (List.tl (List.rev dims)) in
          let n =
            List.fold_left
              (fun acc d ->
                match Simplify.expr d with Int n -> acc * n | _ -> acc)
              1 outer
          in
          regs := !regs + n
      | _ -> ())
    p.p_body;
  (!regs, !lanes)

(** Split a scheduled micro-kernel into steady-state (inside the symbolic
    KC loop) and prologue/epilogue censuses. A kernel with no symbolic loop
    (fully constant) reports everything as prologue with steady = empty. *)
let of_proc (p : proc) : t =
  let steady = ref empty and prologue = ref empty in
  let rec scan mult (body : stmt list) =
    List.iter
      (fun s ->
        match s with
        | SFor (_, lo, hi, inner) -> (
            match const_extent lo hi with
            | Some n -> scan (mult * n) inner
            | None ->
                (* the KC loop: census of its body is the steady state *)
                steady := add !steady (scale mult (census_stmts inner)))
        | SIf (_, t, e) ->
            scan mult t;
            scan mult e
        | s -> prologue := add !prologue (scale mult (census_stmt s)))
      body
  in
  scan 1 p.p_body;
  let vregs_used, lanes = vregs_of p in
  { steady = !steady; prologue = !prologue; vregs_used; lanes }
