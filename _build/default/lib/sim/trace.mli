(** Instruction census of a scheduled micro-kernel — the Fig. 12 information
    (loads/fmla per k-loop iteration, register residency) recovered directly
    from the IR, consumed by the performance models. *)

type census = {
  fma : int;
  load : int;
  store : int;
  bcast : int;
  arith : int;
  scalar_ops : int;  (** non-vectorized multiply-accumulate statements *)
}

val empty : census
val add : census -> census -> census
val scale : int -> census -> census
val total_vector_ops : census -> int
val pp : Format.formatter -> census -> unit

exception Trace_error of string

type t = {
  steady : census;  (** per k-loop iteration *)
  prologue : census;  (** before/after the k loop (C tile traffic) *)
  vregs_used : int;  (** register-memory residency *)
  lanes : int;  (** vector lanes (1 if purely scalar) *)
}

(** Split a scheduled kernel into steady-state (inside the symbolic KC loop)
    and prologue/epilogue censuses. *)
val of_proc : Exo_ir.Ir.proc -> t
