(** An instruction-level scoreboard simulator.

    The closed-form model in {!Kernel_model} prices a kernel from census
    totals (pipe bound, accumulator-latency bound, port bound). This module
    validates it mechanistically: the scheduled k-loop body is unrolled into
    a concrete instruction stream with *register-level* dependencies, and a
    small out-of-order core (register renaming, issue window, per-class
    functional-unit limits, load/store ports) executes several iterations to
    measure steady-state cycles per iteration.

    The ablation benches compare both models; the tests require them to
    agree within a small tolerance on every kernel of the paper's family —
    evidence that the figures do not depend on the closed-form shortcuts. *)

open Exo_ir
open Ir

exception Scoreboard_error of string

let err fmt = Fmt.kstr (fun s -> raise (Scoreboard_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lowering: one k-iteration as a concrete op stream                    *)

type reg = { rbuf : int; rcell : int }
(** A physical accumulator/operand register: buffer symbol id + flattened
    index over the non-lane dimensions. *)

type op = {
  kind : op_kind;
  dst : reg option;
  srcs : reg list;
  reads_dst : bool;  (** FMA accumulates: dst is also a source *)
}

let eval_int (env : int Sym.Map.t) (e : expr) : int =
  let rec go e =
    match e with
    | Int n -> n
    | Var v -> (
        match Sym.Map.find_opt v env with
        | Some n -> n
        | None -> err "unbound %s in scoreboard lowering" (Sym.name v))
    | Binop (Add, a, b) -> go a + go b
    | Binop (Sub, a, b) -> go a - go b
    | Binop (Mul, a, b) -> go a * go b
    | Binop (Div, a, b) -> go a / go b
    | Binop (Mod, a, b) -> go a mod go b
    | Neg a -> -go a
    | _ -> err "non-integer expression in scoreboard lowering"
  in
  go e

(** Identify the register cell a window denotes (register-memory buffers
    only): evaluate the point subscripts, flatten row-major over the
    non-lane dims. *)
let reg_of_window (regdims : (int * int list) list) (env : int Sym.Map.t)
    (w : window) : reg option =
  match List.assoc_opt (Sym.id w.wbuf) regdims with
  | None -> None (* an addressable-memory operand *)
  | Some dims ->
      (* flatten the point subscripts over the non-lane dims, row-major *)
      let outer = List.rev (List.tl (List.rev dims)) in
      let pts =
        List.filteri (fun i _ -> i < List.length outer) w.widx
        |> List.map (function
             | Pt e -> eval_int env e
             | Iv (lo, _) -> eval_int env lo)
      in
      let rec flatten acc pts dims =
        match (pts, dims) with
        | [], [] -> acc
        | p :: ps, d :: ds ->
            ignore d;
            flatten ((acc * d) + p) ps ds
        | _ -> err "window rank mismatch in scoreboard lowering"
      in
      Some { rbuf = Sym.id w.wbuf; rcell = flatten 0 pts outer }

(** Classify an instruction call into an op given concrete loop values. *)
let op_of_call regdims env (callee : proc) (args : call_arg list) : op =
  let kind =
    match callee.p_instr with
    | Some i -> i.ci_kind
    | None -> err "non-instruction call in a scheduled kernel"
  in
  (* first window argument is the destination by our instruction convention *)
  let windows =
    List.filter_map (function AWin w -> Some w | AExpr _ -> None) args
  in
  match windows with
  | [] -> { kind; dst = None; srcs = []; reads_dst = false }
  | dst_w :: src_ws ->
      let dst = reg_of_window regdims env dst_w in
      let srcs = List.filter_map (reg_of_window regdims env) src_ws in
      (match kind with
      | KStore ->
          (* stores: the "dst" is memory; sources are the register windows *)
          let srcs = List.filter_map (reg_of_window regdims env) windows in
          { kind; dst = None; srcs; reads_dst = false }
      | KFma -> { kind; dst; srcs; reads_dst = true }
      | _ -> { kind; dst; srcs; reads_dst = false })

(** Concretize the k-loop body: unroll every constant loop, keep scalar
    statements as 1-op arithmetic. *)
let lower_k_body (p : proc) : op list =
  (* register-memory allocations and their non-lane dims *)
  let regdims = ref [] in
  iter_stmts
    (function
      | SAlloc (b, _, dims, mem) when Exo_isa.Memories.is_register_mem mem ->
          let dims =
            List.map
              (fun d ->
                match Simplify.expr d with
                | Int n -> n
                | _ -> err "symbolic register extent")
              dims
          in
          regdims := (Sym.id b, dims) :: !regdims
      | _ -> ())
    p.p_body;
  let regdims = !regdims in
  let ops = ref [] in
  let rec go env (body : stmt list) =
    List.iter
      (fun s ->
        match s with
        | SCall (callee, args) -> ops := op_of_call regdims env callee args :: !ops
        | SAssign _ | SReduce _ ->
            (* scalar compute statement: model as a scalar FMA with a
               synthetic accumulator per statement cell *)
            ops := { kind = KFma; dst = None; srcs = []; reads_dst = false } :: !ops
        | SFor (v, lo, hi, inner) ->
            let lo = eval_int env lo and hi = eval_int env hi in
            for i = lo to hi - 1 do
              go (Sym.Map.add v i env) inner
            done
        | SAlloc _ -> ()
        | SIf (c, t, e) -> if eval_int env c <> 0 then go env t else go env e)
      body
  in
  (* find the symbolic (KC) loop; its body at k = 0 is the steady state *)
  let found = ref false in
  let rec scan env body =
    List.iter
      (fun s ->
        match s with
        | SFor (v, lo, hi, inner) -> (
            match (Simplify.expr lo, Simplify.expr hi) with
            | Int _, Int _ -> () (* constant region: prologue, skip *)
            | _ ->
                found := true;
                go (Sym.Map.add v 0 env) inner)
        | SIf (_, t, e) ->
            scan env t;
            scan env e
        | _ -> ())
      body
  in
  scan Sym.Map.empty p.p_body;
  if not !found then err "kernel has no k loop";
  List.rev !ops

(* ------------------------------------------------------------------ *)
(* The scoreboard                                                       *)

type latencies = { lat_fma : int; lat_load : int; lat_store : int; lat_other : int }

let default_lats (m : Exo_isa.Machine.t) =
  { lat_fma = m.Exo_isa.Machine.fma_lat; lat_load = 4; lat_store = 1; lat_other = 2 }

(** Execute [iters] copies of the per-iteration op stream on an OoO core
    with register renaming (RAW dependencies only), an in-order issue window
    of [window] ops, and per-cycle limits from the machine description.
    Returns steady-state cycles per iteration (measured over the second
    half). *)
let cycles_per_iter ?(iters = 64) ?(window = 96) (m : Exo_isa.Machine.t)
    (p : proc) : float =
  let per_iter = lower_k_body p in
  if per_iter = [] then 1.0
  else begin
    let lats = default_lats m in
    let n = List.length per_iter in
    let total = n * iters in
    let ops = Array.make total (List.hd per_iter) in
    List.iteri
      (fun j op ->
        for it = 0 to iters - 1 do
          ops.((it * n) + j) <- op
        done)
      per_iter;
    (* exact register renaming: resolve each op's producers in program
       order (last writer of each source register) *)
    let deps = Array.make total [] in
    let last_writer : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
    for i = 0 to total - 1 do
      let op = ops.(i) in
      let srcs =
        op.srcs @ (if op.reads_dst then Option.to_list op.dst else [])
      in
      deps.(i) <-
        List.filter_map (fun r -> Hashtbl.find_opt last_writer (r.rbuf, r.rcell)) srcs;
      match op.dst with
      | Some r -> Hashtbl.replace last_writer (r.rbuf, r.rcell) i
      | None -> ()
    done;
    let issue_time = Array.make total (-1) in
    let finished = Array.make total max_int in
    let next = ref 0 (* first un-issued op (in-order head of the window) *) in
    let cycle = ref 0 in
    let iter_finish = Array.make (iters + 1) 0 in
    while !next < total do
      let fma_left = ref m.Exo_isa.Machine.fma_pipes in
      let ld_left = ref m.Exo_isa.Machine.load_ports in
      let st_left = ref m.Exo_isa.Machine.store_ports in
      let slots = ref m.Exo_isa.Machine.issue_width in
      let limit = min total (!next + window) in
      for i = !next to limit - 1 do
        if issue_time.(i) < 0 && !slots > 0 then begin
          let op = ops.(i) in
          let unit_ok =
            match op.kind with
            | KFma | KArith | KBcast -> !fma_left > 0
            | KLoad -> !ld_left > 0
            | KStore -> !st_left > 0
            | KOther -> true
          in
          let deps_ready =
            List.for_all (fun p -> issue_time.(p) >= 0 && finished.(p) <= !cycle) deps.(i)
          in
          if unit_ok && deps_ready then begin
            issue_time.(i) <- !cycle;
            let lat =
              match op.kind with
              | KFma -> lats.lat_fma
              | KLoad -> lats.lat_load
              | KStore -> lats.lat_store
              | KArith | KBcast | KOther -> lats.lat_other
            in
            finished.(i) <- !cycle + lat;
            (match op.kind with
            | KFma | KArith | KBcast -> decr fma_left
            | KLoad -> decr ld_left
            | KStore -> decr st_left
            | KOther -> ());
            decr slots
          end
        end
      done;
      (* slide the window head past issued ops, recording iteration ends *)
      while !next < total && issue_time.(!next) >= 0 do
        let it = !next / n in
        if (!next + 1) mod n = 0 then iter_finish.(it + 1) <- finished.(!next);
        incr next
      done;
      incr cycle;
      if !cycle > 1000 * total then err "scoreboard did not converge"
    done;
    let half = iters / 2 in
    float_of_int (iter_finish.(iters) - iter_finish.(half))
    /. float_of_int (iters - half)
  end
