(** IEEE 754 binary16 emulation (round-to-nearest-even, subnormals,
    infinities, NaN) — exact numerics for the f16 kernels the paper
    contributed to Exo. *)

(** Float (viewed as binary32) → binary16 bits. *)
val to_bits : float -> int

(** Binary16 bits → float. *)
val of_bits : int -> float

(** Round a float through binary16. *)
val round : float -> float

val max_value : float
val epsilon : float
