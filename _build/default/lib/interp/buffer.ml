(** Runtime buffers for the reference interpreter.

    Values are stored as OCaml floats but every write rounds through the
    buffer's dtype, so f32 and f16 kernels compute bit-faithful results.
    Views (windows) share the underlying storage — instruction calls receive
    strided views, matching Exo's window semantics. *)

open Exo_ir

type t = {
  data : float array;
  dtype : Dtype.t;
  dims : int array;
  strides : int array;  (** in elements *)
  offset : int;
}

exception Bounds of string

let err fmt = Fmt.kstr (fun s -> raise (Bounds s)) fmt

let row_major_strides (dims : int array) : int array =
  let n = Array.length dims in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * dims.(i + 1)
  done;
  s

(** Fresh buffer initialized to [init] (default NaN: reading an element that
    was never written poisons the result, so tests catch missing stores). *)
let create ?(init = Float.nan) (dtype : Dtype.t) (dims : int list) : t =
  let dims = Array.of_list dims in
  let total = Array.fold_left ( * ) 1 dims in
  {
    data = Array.make (max total 1) init;
    dtype;
    dims;
    strides = row_major_strides dims;
    offset = 0;
  }

(** Wrap an existing array (shared storage, row-major, no copy) — lets the
    macro-kernel drive interpreted micro-kernels over its own buffers. *)
let of_array (dtype : Dtype.t) (dims : int list) (data : float array) : t =
  let dims = Array.of_list dims in
  let total = Array.fold_left ( * ) 1 dims in
  if Array.length data < total then
    err "of_array: need %d elements, array has %d" total (Array.length data);
  { data; dtype; dims; strides = row_major_strides dims; offset = 0 }

let rank (b : t) = Array.length b.dims
let size (b : t) = Array.fold_left ( * ) 1 b.dims

(** Round a value through the buffer's dtype. *)
let round_dtype (dt : Dtype.t) (v : float) : float =
  match dt with
  | Dtype.F64 -> v
  | Dtype.F32 -> Int32.float_of_bits (Int32.bits_of_float v)
  | Dtype.F16 -> F16.round v
  | Dtype.I32 -> Int32.to_float (Int32.of_float v)
  | Dtype.I8 ->
      let i = int_of_float v land 0xff in
      float_of_int (if i >= 128 then i - 256 else i)

let addr (b : t) (idx : int array) : int =
  if Array.length idx <> Array.length b.dims then
    err "rank mismatch: %d indices for rank %d" (Array.length idx) (Array.length b.dims);
  let a = ref b.offset in
  Array.iteri
    (fun d i ->
      if i < 0 || i >= b.dims.(d) then
        err "index %d out of bounds for dimension %d (extent %d)" i d b.dims.(d);
      a := !a + (i * b.strides.(d)))
    idx;
  !a

let get (b : t) (idx : int array) : float = b.data.(addr b idx)

let set (b : t) (idx : int array) (v : float) : unit =
  b.data.(addr b idx) <- round_dtype b.dtype v

let reduce (b : t) (idx : int array) (v : float) : unit =
  let a = addr b idx in
  b.data.(a) <- round_dtype b.dtype (b.data.(a) +. v)

(** A window view. [spec] per dimension: [`Pt i] drops the dimension at
    index [i]; [`Iv (lo, len)] keeps it with extent [len]. *)
let view (b : t) (spec : [ `Pt of int | `Iv of int * int ] list) : t =
  if List.length spec <> Array.length b.dims then
    err "window rank mismatch on a rank-%d buffer" (Array.length b.dims);
  let offset = ref b.offset in
  let dims = ref [] and strides = ref [] in
  List.iteri
    (fun d s ->
      match s with
      | `Pt i ->
          if i < 0 || i >= b.dims.(d) then
            err "window point %d out of bounds in dimension %d (extent %d)" i d b.dims.(d);
          offset := !offset + (i * b.strides.(d))
      | `Iv (lo, len) ->
          if lo < 0 || len < 0 || lo + len > b.dims.(d) then
            err "window [%d, %d) out of bounds in dimension %d (extent %d)" lo (lo + len)
              d b.dims.(d);
          offset := !offset + (lo * b.strides.(d));
          dims := len :: !dims;
          strides := b.strides.(d) :: !strides)
    spec;
  {
    b with
    offset = !offset;
    dims = Array.of_list (List.rev !dims);
    strides = Array.of_list (List.rev !strides);
  }

(** Innermost-dimension stride of a view (what Exo's [stride(b, last)]
    assertions constrain). *)
let last_stride (b : t) : int =
  let n = Array.length b.strides in
  if n = 0 then 1 else b.strides.(n - 1)

let fill (b : t) (f : int array -> float) : unit =
  let idx = Array.make (rank b) 0 in
  let rec go d =
    if d = rank b then set b idx (f idx)
    else
      for i = 0 to b.dims.(d) - 1 do
        idx.(d) <- i;
        go (d + 1)
      done
  in
  if size b > 0 then go 0

let iteri (b : t) (f : int array -> float -> unit) : unit =
  let idx = Array.make (rank b) 0 in
  let rec go d =
    if d = rank b then f idx (get b idx)
    else
      for i = 0 to b.dims.(d) - 1 do
        idx.(d) <- i;
        go (d + 1)
      done
  in
  if size b > 0 then go 0

(** Deep copy (fresh storage, compacted). *)
let copy (b : t) : t =
  let fresh = create ~init:0.0 b.dtype (Array.to_list b.dims) in
  iteri b (fun idx v -> fresh.data.(addr fresh idx) <- v);
  fresh

let equal (a : t) (b : t) : bool =
  a.dims = b.dims
  &&
  let ok = ref true in
  iteri a (fun idx v ->
      let w = get b idx in
      if not (Float.equal v w || (Float.is_nan v && Float.is_nan w)) then ok := false);
  !ok

(** Max absolute difference; NaNs compare as infinitely different unless
    both NaN. *)
let max_abs_diff (a : t) (b : t) : float =
  let m = ref 0.0 in
  iteri a (fun idx v ->
      let w = get b idx in
      let d =
        if Float.is_nan v && Float.is_nan w then 0.0
        else if Float.is_nan v || Float.is_nan w then infinity
        else Float.abs (v -. w)
      in
      if d > !m then m := d);
  !m

let pp ppf (b : t) =
  Fmt.pf ppf "@[<v>buffer %a%a:@," Exo_ir.Dtype.pp b.dtype
    Fmt.(brackets (array ~sep:(any ", ") int))
    b.dims;
  iteri b (fun idx v ->
      Fmt.pf ppf "  [%a] = %g@," Fmt.(array ~sep:(any ",") int) idx v);
  Fmt.pf ppf "@]"
