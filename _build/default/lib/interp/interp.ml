(** Reference interpreter.

    Executes procedures over {!Buffer} values, including instruction calls
    (run through their semantic bodies — the definitional semantics of the
    [@instr] contract). This is the oracle behind the repository's central
    property: every scheduling primitive preserves the input/output behaviour
    of the procedure it rewrites. *)

open Exo_ir
open Ir

exception Runtime_error of string

let err fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

type value = VInt of int | VBuf of Buffer.t

type env = value Sym.Map.t

let lookup env v =
  match Sym.Map.find_opt v env with
  | Some x -> x
  | None -> err "unbound symbol %a at runtime" Sym.pp_debug v

let as_buf = function VBuf b -> b | VInt _ -> err "expected a buffer"

(* Numeric results of expressions: ints stay exact. *)
type num = NInt of int | NFloat of float

let to_float = function NInt n -> float_of_int n | NFloat f -> f

let rec eval (env : env) (e : expr) : num =
  match e with
  | Int n -> NInt n
  | Float f -> NFloat f
  | Var v -> (
      match lookup env v with
      | VInt n -> NInt n
      | VBuf _ -> err "buffer %a used as a scalar" Sym.pp v)
  | Read (b, idx) ->
      let buf = as_buf (lookup env b) in
      let idx = Array.of_list (List.map (fun i -> eval_int env i) idx) in
      NFloat (Buffer.get buf idx)
  | Binop (op, a, b) -> (
      match (eval env a, eval env b) with
      | NInt x, NInt y -> (
          match op with
          | Add -> NInt (x + y)
          | Sub -> NInt (x - y)
          | Mul -> NInt (x * y)
          | Div ->
              if y = 0 then err "division by zero";
              NInt (x / y)
          | Mod ->
              if y = 0 then err "modulo by zero";
              NInt (x mod y))
      | x, y -> (
          let x = to_float x and y = to_float y in
          match op with
          | Add -> NFloat (x +. y)
          | Sub -> NFloat (x -. y)
          | Mul -> NFloat (x *. y)
          | Div -> NFloat (x /. y)
          | Mod -> err "%% on data values"))
  | Neg a -> (
      match eval env a with NInt n -> NInt (-n) | NFloat f -> NFloat (-.f))
  | Cmp (op, a, b) ->
      let r =
        let va = eval env a and vb = eval env b in
        let c =
          match (va, vb) with
          | NInt x, NInt y -> compare x y
          | x, y -> compare (to_float x) (to_float y)
        in
        match op with
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | Eq -> c = 0
        | Ne -> c <> 0
      in
      NInt (if r then 1 else 0)
  | And (a, b) -> NInt (if eval_bool env a && eval_bool env b then 1 else 0)
  | Or (a, b) -> NInt (if eval_bool env a || eval_bool env b then 1 else 0)
  | Not a -> NInt (if eval_bool env a then 0 else 1)
  | Stride (b, d) ->
      let buf = as_buf (lookup env b) in
      let n = Buffer.rank buf in
      if d < 0 || d >= n then err "stride dimension %d out of range" d;
      NInt buf.Buffer.strides.(d)

and eval_int env e =
  match eval env e with
  | NInt n -> n
  | NFloat _ -> err "expected an integer, got a float in %s" (Pp.expr_to_string e)

and eval_bool env e = eval_int env e <> 0

let eval_waccess env = function
  | Pt e -> `Pt (eval_int env e)
  | Iv (lo, hi) ->
      let lo = eval_int env lo and hi = eval_int env hi in
      `Iv (lo, hi - lo)

let rec exec_stmts (env : env) (body : stmt list) : env =
  List.fold_left exec_stmt env body

and exec_stmt (env : env) (s : stmt) : env =
  match s with
  | SAssign (b, idx, e) ->
      let buf = as_buf (lookup env b) in
      let idx = Array.of_list (List.map (eval_int env) idx) in
      Buffer.set buf idx (to_float (eval env e));
      env
  | SReduce (b, idx, e) ->
      let buf = as_buf (lookup env b) in
      let idx = Array.of_list (List.map (eval_int env) idx) in
      Buffer.reduce buf idx (to_float (eval env e));
      env
  | SFor (v, lo, hi, inner) ->
      let lo = eval_int env lo and hi = eval_int env hi in
      for i = lo to hi - 1 do
        ignore (exec_stmts (Sym.Map.add v (VInt i) env) inner)
      done;
      env
  | SAlloc (b, dt, dims, _) ->
      let dims = List.map (eval_int env) dims in
      Sym.Map.add b (VBuf (Buffer.create dt dims)) env
  | SCall (instr, args) -> (
      call env instr args;
      env)
  | SIf (c, t, e) ->
      if eval_bool env c then ignore (exec_stmts env t) else ignore (exec_stmts env e);
      env

and call (env : env) (p : proc) (args : call_arg list) : unit =
  if List.length args <> List.length p.p_args then
    err "call to %s: arity mismatch" p.p_name;
  let callee_env =
    List.fold_left2
      (fun acc (param : arg) (a : call_arg) ->
        match a with
        | AExpr e -> (
            match param.a_typ with
            | TSize | TIndex | TBool -> Sym.Map.add param.a_name (VInt (eval_int env e)) acc
            | TScalar _ | TTensor _ ->
                err "call to %s: scalar expression for tensor parameter" p.p_name)
        | AWin w ->
            let buf = as_buf (lookup env w.wbuf) in
            let spec = List.map (eval_waccess env) w.widx in
            Sym.Map.add param.a_name (VBuf (Buffer.view buf spec)) acc)
      Sym.Map.empty p.p_args args
  in
  (* Check the callee's preconditions — the runtime half of the @instr
     contract (strides, lane ranges). *)
  List.iter
    (fun pred ->
      if not (eval_bool callee_env pred) then
        err "call to %s: precondition %s does not hold" p.p_name
          (Pp.expr_to_string pred))
    p.p_preds;
  ignore (exec_stmts callee_env p.p_body)

(** Run a whole procedure on the given arguments ([VInt] for sizes/indices,
    [VBuf] for tensors — buffers are mutated in place). *)
let run (p : proc) (args : value list) : unit =
  if List.length args <> List.length p.p_args then
    err "run %s: expected %d arguments, got %d" p.p_name (List.length p.p_args)
      (List.length args);
  let env =
    List.fold_left2
      (fun acc (param : arg) v ->
        (match (param.a_typ, v) with
        | (TSize | TIndex | TBool), VInt _ -> ()
        | (TScalar _ | TTensor _), VBuf _ -> ()
        | _ -> err "run %s: argument %a has the wrong kind" p.p_name Sym.pp param.a_name);
        Sym.Map.add param.a_name v acc)
      Sym.Map.empty p.p_args args
  in
  List.iter
    (fun pred ->
      if not (eval_bool env pred) then
        err "run %s: precondition %s does not hold" p.p_name (Pp.expr_to_string pred))
    p.p_preds;
  ignore (exec_stmts env p.p_body)
