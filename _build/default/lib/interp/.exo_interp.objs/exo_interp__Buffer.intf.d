lib/interp/buffer.mli: Exo_ir Format
