lib/interp/interp.mli: Buffer Exo_ir
