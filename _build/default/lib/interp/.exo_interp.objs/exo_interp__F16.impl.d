lib/interp/f16.ml: Float Int32
