lib/interp/buffer.ml: Array Dtype Exo_ir F16 Float Fmt Int32 List
