lib/interp/f16.mli:
