lib/interp/interp.ml: Array Buffer Exo_ir Fmt Ir List Pp Sym
