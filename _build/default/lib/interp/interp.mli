(** Reference interpreter — the oracle behind the repository's central
    property: every scheduling rewrite preserves input/output behaviour.

    Executes procedures over {!Buffer} values; instruction calls run their
    semantic bodies (the definitional semantics of the [@instr] contract)
    after checking their preconditions at runtime. *)

exception Runtime_error of string

type value = VInt of int | VBuf of Buffer.t

(** Run a procedure: [VInt] for size/index arguments, [VBuf] for tensors
    (mutated in place). Preconditions are checked; violations raise. *)
val run : Exo_ir.Ir.proc -> value list -> unit
