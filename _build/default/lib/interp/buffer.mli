(** Runtime buffers for the reference interpreter.

    Values are stored as OCaml floats but every write rounds through the
    buffer's dtype, so f32 and f16 kernels compute bit-faithful results.
    Views (windows) share the underlying storage, matching Exo's window
    semantics. *)

type t = {
  data : float array;
  dtype : Exo_ir.Dtype.t;
  dims : int array;
  strides : int array;  (** in elements *)
  offset : int;
}

exception Bounds of string

(** Fresh buffer; default init is NaN so a read of a never-written element
    poisons the result and tests catch missing stores. *)
val create : ?init:float -> Exo_ir.Dtype.t -> int list -> t

(** Wrap an existing array (shared storage, row-major, no copy). *)
val of_array : Exo_ir.Dtype.t -> int list -> float array -> t

val rank : t -> int
val size : t -> int

(** Round a value through a dtype (f32 via bit truncation, f16 via
    {!F16.round}, integers with C cast semantics). *)
val round_dtype : Exo_ir.Dtype.t -> float -> float

val get : t -> int array -> float

(** Write, rounding through the buffer's dtype. *)
val set : t -> int array -> float -> unit

(** [+=], rounding through the buffer's dtype. *)
val reduce : t -> int array -> float -> unit

(** A window view: [`Pt i] drops a dimension, [`Iv (lo, len)] keeps it. *)
val view : t -> [ `Pt of int | `Iv of int * int ] list -> t

(** Innermost-dimension stride (what [stride(b, last)] preconditions see). *)
val last_stride : t -> int

val fill : t -> (int array -> float) -> unit
val iteri : t -> (int array -> float -> unit) -> unit

(** Deep copy (fresh, compacted storage). *)
val copy : t -> t

(** Exact element-wise equality (NaNs equal to NaNs). *)
val equal : t -> t -> bool

val max_abs_diff : t -> t -> float
val pp : Format.formatter -> t -> unit
