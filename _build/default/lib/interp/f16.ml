(** IEEE 754 binary16 emulation.

    The paper contributed fp16 support to Exo's ARM backend; to test
    f16-scheduled kernels numerically we model half precision exactly:
    values round through the 16-bit format (round-to-nearest-even, with
    subnormals, infinities and NaN) on every store. *)

(** Convert a float (viewed as binary32) to binary16 bits. *)
let to_bits (f : float) : int =
  let b32 = Int32.bits_of_float f in
  let sign = Int32.to_int (Int32.shift_right_logical b32 16) land 0x8000 in
  let exp32 = Int32.to_int (Int32.shift_right_logical b32 23) land 0xff in
  let mant32 = Int32.to_int (Int32.logand b32 0x7fffffl) in
  if exp32 = 0xff then
    (* Inf / NaN: preserve NaN-ness with a quiet-NaN payload bit. *)
    if mant32 = 0 then sign lor 0x7c00 else sign lor 0x7e00
  else
    let exp = exp32 - 127 + 15 in
    if exp >= 0x1f then sign lor 0x7c00 (* overflow to inf *)
    else if exp <= 0 then
      if exp < -10 then sign (* underflow to zero *)
      else begin
        (* subnormal half *)
        let mant = mant32 lor 0x800000 in
        let shift = 14 - exp in
        let halfway = 1 lsl (shift - 1) in
        let rounded =
          let low = mant land ((1 lsl shift) - 1) in
          let hi = mant lsr shift in
          if low > halfway || (low = halfway && hi land 1 = 1) then hi + 1 else hi
        in
        sign lor rounded
      end
    else begin
      (* normal: round 23-bit mantissa to 10 bits, nearest even *)
      let low = mant32 land 0x1fff in
      let hi = mant32 lsr 13 in
      let rounded =
        if low > 0x1000 || (low = 0x1000 && hi land 1 = 1) then hi + 1 else hi
      in
      let v = (exp lsl 10) + rounded in
      (* mantissa carry may bump the exponent; overflow becomes inf *)
      if v >= 0x7c00 then sign lor 0x7c00 else sign lor v
    end

(** Convert binary16 bits back to a float. *)
let of_bits (h : int) : float =
  let sign = if h land 0x8000 <> 0 then -1.0 else 1.0 in
  let exp = (h lsr 10) land 0x1f in
  let mant = h land 0x3ff in
  if exp = 0 then sign *. (float_of_int mant *. 0x1p-24)
  else if exp = 0x1f then if mant = 0 then sign *. infinity else Float.nan
  else sign *. ((1.0 +. (float_of_int mant *. 0x1p-10)) *. Float.ldexp 1.0 (exp - 15))

(** Round a float through binary16. *)
let round (f : float) : float = of_bits (to_bits f)

let max_value = 65504.0
let epsilon = 0x1p-10
