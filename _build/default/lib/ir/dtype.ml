(** Scalar data types supported by the generator.

    The paper's kernels use IEEE binary32 ([F32]); Section III-D extends the
    generator to binary16 ([F16]) — a feature this work contributed to Exo —
    and integer types appear in the limitations discussion, so we carry them
    end-to-end (codegen, interpreter rounding, vector lanes). *)

type t = F16 | F32 | F64 | I8 | I32

let equal = ( = )
let compare = compare

let size_bytes = function
  | F16 -> 2
  | F32 -> 4
  | F64 -> 8
  | I8 -> 1
  | I32 -> 4

(** Name used in Exo-style source dumps (e.g. [f32] in [C: f32[12, 8]]). *)
let exo_name = function
  | F16 -> "f16"
  | F32 -> "f32"
  | F64 -> "f64"
  | I8 -> "i8"
  | I32 -> "i32"

(** Type name used by the C emitter. [float16_t] follows arm_neon.h. *)
let c_name = function
  | F16 -> "float16_t"
  | F32 -> "float"
  | F64 -> "double"
  | I8 -> "int8_t"
  | I32 -> "int32_t"

let is_float = function F16 | F32 | F64 -> true | I8 | I32 -> false

let pp ppf t = Fmt.string ppf (exo_name t)

let of_string = function
  | "f16" -> Some F16
  | "f32" -> Some F32
  | "f64" -> Some F64
  | "i8" -> Some I8
  | "i32" -> Some I32
  | _ -> None
