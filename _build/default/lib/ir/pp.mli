(** Exo-style pretty printer: procedures in the surface syntax of the
    paper's figures ([def uk_8x12(...)], [for k in seq(0, KC):],
    [neon_vld_4xf32(...)]). Golden tests pin these dumps. *)

val pp_expr : Format.formatter -> Ir.expr -> unit
val pp_waccess : Format.formatter -> Ir.waccess -> unit
val pp_window : Format.formatter -> Ir.window -> unit
val pp_call_arg : Format.formatter -> Ir.call_arg -> unit
val pp_typ : Format.formatter -> Ir.typ -> unit
val pp_arg : Format.formatter -> Ir.arg -> unit
val pp_stmt : indent:int -> Format.formatter -> Ir.stmt -> unit
val pp_block : indent:int -> Format.formatter -> Ir.stmt list -> unit
val pp_proc : Format.formatter -> Ir.proc -> unit
val proc_to_string : Ir.proc -> string
val stmt_to_string : Ir.stmt -> string
val expr_to_string : Ir.expr -> string
