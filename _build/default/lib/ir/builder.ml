(** Construction helpers: a thin DSL for writing IR terms by hand.

    Used by the ISA instruction libraries and by {!Exo_ukr.Source} to write
    the reference micro-kernel (the paper's Fig. 4/5) in a form that reads
    close to the Exo original. *)

open Ir

let int n = Int n
let flt x = Float x
let var s = Var s
let rd b idx = Read (b, idx)
let rd0 b = Read (b, [])
let add a b = Binop (Add, a, b)
let sub a b = Binop (Sub, a, b)
let mul a b = Binop (Mul, a, b)
let div a b = Binop (Div, a, b)
let md a b = Binop (Mod, a, b)
let neg a = Neg a
let lt a b = Cmp (Lt, a, b)
let le a b = Cmp (Le, a, b)
let gt a b = Cmp (Gt, a, b)
let ge a b = Cmp (Ge, a, b)
let eq a b = Cmp (Eq, a, b)
let ne a b = Cmp (Ne, a, b)
let and_ a b = And (a, b)
let stride b d = Stride (b, d)

module Infix = struct
  let ( +! ) = add
  let ( -! ) = sub
  let ( *! ) = mul
  let ( /! ) = div
  let ( %! ) = md
  let ( <! ) = lt
  let ( <=! ) = le
  let ( =! ) = eq
end

let assign b idx e = SAssign (b, idx, e)
let reduce b idx e = SReduce (b, idx, e)
let loop v lo hi body = SFor (v, lo, hi, body)

(** [loopn v n body] — the common [for v in seq(0, n)] case. *)
let loopn v n body = SFor (v, Int 0, n, body)

let alloc ?(mem = Mem.dram) b dt dims = SAlloc (b, dt, dims, mem)
let call p args = SCall (p, args)
let if_ c t e = SIf (c, t, e)
let pt e = Pt e
let iv lo hi = Iv (lo, hi)

(** [ivn lo n] — interval of extent [n] starting at [lo]. *)
let ivn lo n = Iv (lo, add lo n)

let win b widx = AWin { wbuf = b; widx }
let earg e = AExpr e

(** Declare arguments. *)
let size_arg s = arg s TSize
let index_arg s = arg s TIndex
let scalar_arg ?mem s dt = arg ?mem s (TScalar dt)
let tensor_arg ?mem s dt dims = arg ?mem s (TTensor (dt, dims))
