(** Expression simplification.

    Rewrites such as [divide_loop] and [partial_eval] leave residue like
    [itt + 4 * it] with [it] further substituted by constants, or bounds like
    [12 / 4]. [expr] folds constants, normalizes the affine fragment via
    {!Affine}, and simplifies trivial boolean structure; [proc] maps it over
    a whole procedure. This mirrors Exo's [simplify] scheduling op. *)

open Ir

let rec expr (e : expr) : expr =
  match Affine.of_expr e with
  | Some a -> Affine.to_expr a
  | None -> (
      let e = map_children e in
      match e with
      | Binop (Mul, Int 1, x) | Binop (Mul, x, Int 1) -> x
      | Binop (Mul, Int 0, _) | Binop (Mul, _, Int 0) -> Int 0
      | Binop (Add, Int 0, x) | Binop (Add, x, Int 0) -> x
      | Binop (Sub, x, Int 0) -> x
      | Binop (Div, x, Int 1) -> x
      | Binop (op, Int a, Int b) -> fold_int op a b
      | Binop (op, Float a, Float b) -> fold_float op a b
      | Cmp (op, Int a, Int b) -> fold_cmp op a b
      | And (x, Int 1) | And (Int 1, x) -> x
      | And (_, Int 0) | And (Int 0, _) -> Int 0
      | Or (_, Int 1) | Or (Int 1, _) -> Int 1
      | Or (x, Int 0) | Or (Int 0, x) -> x
      | Not (Int 0) -> Int 1
      | Not (Int 1) -> Int 0
      | Neg (Int n) -> Int (-n)
      | Neg (Float f) -> Float (-.f)
      | e -> e)

and map_children e =
  match e with
  | Int _ | Float _ | Var _ | Stride _ -> e
  | Read (b, idx) -> Read (b, List.map expr idx)
  | Binop (op, a, b) -> Binop (op, expr a, expr b)
  | Neg a -> Neg (expr a)
  | Cmp (op, a, b) -> Cmp (op, expr a, expr b)
  | And (a, b) -> And (expr a, expr b)
  | Or (a, b) -> Or (expr a, expr b)
  | Not a -> Not (expr a)

and fold_int op a b =
  match op with
  | Add -> Int (a + b)
  | Sub -> Int (a - b)
  | Mul -> Int (a * b)
  | Div -> if b = 0 then Binop (Div, Int a, Int b) else Int (a / b)
  | Mod -> if b = 0 then Binop (Mod, Int a, Int b) else Int (a mod b)

and fold_float op a b =
  match op with
  | Add -> Float (a +. b)
  | Sub -> Float (a -. b)
  | Mul -> Float (a *. b)
  | Div -> Float (a /. b)
  | Mod -> Binop (Mod, Float a, Float b)

and fold_cmp op a b =
  let r =
    match op with
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
    | Eq -> a = b
    | Ne -> a <> b
  in
  Int (if r then 1 else 0)

(** Simplify every expression in a statement list; additionally drop loops
    with statically empty ranges, inline single-iteration loops, and resolve
    [SIf] with constant conditions. *)
let rec stmts (body : stmt list) : stmt list =
  List.concat_map
    (fun s ->
      match map_stmt_exprs expr s with
      | SFor (_, Int lo, Int hi, _) when hi <= lo -> []
      | SFor (v, Int lo, Int hi, b) when hi = lo + 1 ->
          stmts (List.map (map_stmt_exprs (subst1 v lo)) b)
      | SFor (v, lo, hi, b) -> [ SFor (v, lo, hi, stmts b) ]
      | SIf (Int 1, t, _) -> stmts t
      | SIf (Int 0, _, e) -> stmts e
      | SIf (c, t, e) -> [ SIf (c, stmts t, stmts e) ]
      | s -> [ s ])
    body

and subst1 v n e =
  expr (map_expr (function Var v' when Sym.equal v v' -> Int n | e -> e) e)

let proc (p : proc) : proc =
  { p with p_body = stmts p.p_body; p_preds = List.map expr p.p_preds }
