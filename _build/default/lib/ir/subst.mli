(** Substitution and binder-freshening.

    Substitutions map symbols to expressions and touch only [Var]
    occurrences; buffer names are renamed separately. Rewrites that
    duplicate code (unrolling, divide_loop tails, fission) freshen binders
    with {!freshen_stmts} so {!Sym}'s no-capture invariant holds. *)

type t = Ir.expr Sym.Map.t

val empty : t
val single : Sym.t -> Ir.expr -> t
val of_list : (Sym.t * Ir.expr) list -> t
val apply_expr : t -> Ir.expr -> Ir.expr
val apply_stmts : t -> Ir.stmt list -> Ir.stmt list

(** Rename buffer symbols (allocations / tensor arguments) throughout. *)
val rename_buffers : Sym.t Sym.Map.t -> Ir.stmt list -> Ir.stmt list

(** Freshen every binder (loop variables and allocations), consistently
    renaming uses; the result can be spliced anywhere. *)
val freshen_stmts : Ir.stmt list -> Ir.stmt list
