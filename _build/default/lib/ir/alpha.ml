(** Alpha-equivalence of IR fragments.

    Two fragments are alpha-equivalent when they differ only in the names of
    bound symbols (loop variables, allocations) and in the spelling of affine
    index expressions ([4*jt + jtt] vs [jtt + jt*4]). This is the equality
    used by golden tests over Section III's intermediate codes and by
    {!Exo_sched.replace}'s unifier when it checks a candidate loop nest
    against an instruction's semantic body. *)

open Ir

type env = Sym.t Sym.Map.t
(** Maps left-hand binders to right-hand binders. *)

let lookup (env : env) v = match Sym.Map.find_opt v env with Some v' -> v' | None -> v

(** Rename left-hand symbols into the right-hand namespace. *)
let rename_expr env e =
  map_expr
    (function
      | Var v -> Var (lookup env v)
      | Read (b, idx) -> Read (lookup env b, idx)
      | Stride (b, d) -> Stride (lookup env b, d)
      | e -> e)
    e

let rec expr_eq (env : env) (e1 : expr) (e2 : expr) : bool =
  let e1 = rename_expr env e1 in
  match Affine.expr_equal e1 e2 with
  | Some b -> b
  | None -> structural env e1 e2

and structural env e1 e2 =
  match (e1, e2) with
  | Int a, Int b -> a = b
  | Float a, Float b -> Float.equal a b
  | Var a, Var b -> Sym.equal a b
  | Read (b1, i1), Read (b2, i2) ->
      Sym.equal b1 b2
      && List.length i1 = List.length i2
      && List.for_all2 (expr_eq env) i1 i2
  | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
      o1 = o2 && expr_eq env a1 a2 && expr_eq env b1 b2
  | Neg a, Neg b | Not a, Not b -> expr_eq env a b
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) ->
      o1 = o2 && expr_eq env a1 a2 && expr_eq env b1 b2
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
      expr_eq env a1 a2 && expr_eq env b1 b2
  | Stride (b1, d1), Stride (b2, d2) -> Sym.equal b1 b2 && d1 = d2
  | _ -> false

let waccess_eq env w1 w2 =
  match (w1, w2) with
  | Pt a, Pt b -> expr_eq env a b
  | Iv (l1, h1), Iv (l2, h2) -> expr_eq env l1 l2 && expr_eq env h1 h2
  | _ -> false

let window_eq env (w1 : window) (w2 : window) =
  Sym.equal (lookup env w1.wbuf) w2.wbuf
  && List.length w1.widx = List.length w2.widx
  && List.for_all2 (waccess_eq env) w1.widx w2.widx

let rec stmts_eq (env : env) (b1 : stmt list) (b2 : stmt list) : bool =
  List.length b1 = List.length b2 && stmts_eq' env b1 b2

and stmts_eq' env b1 b2 =
  match (b1, b2) with
  | [], [] -> true
  | s1 :: r1, s2 :: r2 -> (
      match (s1, s2) with
      | SAssign (n1, i1, e1), SAssign (n2, i2, e2)
      | SReduce (n1, i1, e1), SReduce (n2, i2, e2) ->
          Sym.equal (lookup env n1) n2
          && List.length i1 = List.length i2
          && List.for_all2 (expr_eq env) i1 i2
          && expr_eq env e1 e2
          && stmts_eq' env r1 r2
      | SFor (v1, lo1, hi1, body1), SFor (v2, lo2, hi2, body2) ->
          expr_eq env lo1 lo2 && expr_eq env hi1 hi2
          && stmts_eq (Sym.Map.add v1 v2 env) body1 body2
          && stmts_eq' env r1 r2
      | SAlloc (n1, dt1, d1, m1), SAlloc (n2, dt2, d2, m2) ->
          Dtype.equal dt1 dt2 && Mem.equal m1 m2
          && List.length d1 = List.length d2
          && List.for_all2 (expr_eq env) d1 d2
          && stmts_eq' (Sym.Map.add n1 n2 env) r1 r2
      | SCall (p1, a1), SCall (p2, a2) ->
          String.equal p1.p_name p2.p_name
          && List.length a1 = List.length a2
          && List.for_all2
               (fun x y ->
                 match (x, y) with
                 | AExpr e1, AExpr e2 -> expr_eq env e1 e2
                 | AWin w1, AWin w2 -> window_eq env w1 w2
                 | _ -> false)
               a1 a2
          && stmts_eq' env r1 r2
      | SIf (c1, t1, e1), SIf (c2, t2, e2) ->
          expr_eq env c1 c2 && stmts_eq env t1 t2 && stmts_eq env e1 e2
          && stmts_eq' env r1 r2
      | _ -> false)
  | _ -> false

(** Whole-procedure alpha-equivalence: same arity, argument types, predicate
    list and body, modulo renaming of arguments and binders. *)
let proc_eq (p1 : proc) (p2 : proc) : bool =
  let typ_eq env t1 t2 =
    match (t1, t2) with
    | TSize, TSize | TIndex, TIndex | TBool, TBool -> true
    | TScalar d1, TScalar d2 -> Dtype.equal d1 d2
    | TTensor (d1, dm1), TTensor (d2, dm2) ->
        Dtype.equal d1 d2
        && List.length dm1 = List.length dm2
        && List.for_all2 (expr_eq env) dm1 dm2
    | _ -> false
  in
  List.length p1.p_args = List.length p2.p_args
  &&
  let env =
    List.fold_left2
      (fun env a1 a2 -> Sym.Map.add a1.a_name a2.a_name env)
      Sym.Map.empty p1.p_args p2.p_args
  in
  List.for_all2
    (fun a1 a2 -> typ_eq env a1.a_typ a2.a_typ && Mem.equal a1.a_mem a2.a_mem)
    p1.p_args p2.p_args
  && List.length p1.p_preds = List.length p2.p_preds
  && List.for_all2 (expr_eq env) p1.p_preds p2.p_preds
  && stmts_eq env p1.p_body p2.p_body
