(** Expression and statement simplification — Exo's [simplify] op.

    Folds constants, normalizes the affine fragment through {!Affine},
    drops statically empty loops, inlines single-iteration loops, and
    resolves constant conditionals. *)

val expr : Ir.expr -> Ir.expr
val stmts : Ir.stmt list -> Ir.stmt list
val proc : Ir.proc -> Ir.proc
