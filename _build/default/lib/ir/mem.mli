(** Memory spaces.

    Exo externalizes the memory hierarchy as user-defined annotations:
    buffers live [@ DRAM] by default and scheduling moves staged tiles into
    register memories such as [@ Neon]. The IR carries only the identity;
    hardware metadata lives in {!Exo_isa.Memories}. *)

type t

val make : string -> t
val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Plain addressable memory — the default placement. *)
val dram : t

val is_dram : t -> bool
