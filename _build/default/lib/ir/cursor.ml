(** Cursors: stable addresses of statements inside a procedure body.

    A cursor is a path through the block tree: a list of [(stmt index,
    sub-block index)] descents followed by a final statement index. Sub-block
    0 is a [for] body or an [if] then-branch; sub-block 1 is an else-branch.
    Scheduling primitives locate their targets with {!Exo_pattern} (which
    yields cursors) and edit the tree through {!splice} / {!set_block}. *)

open Ir

type dir = { idx : int; blk : int }
type t = { dirs : dir list; last : int }

exception Invalid_cursor of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid_cursor s)) fmt
let root n = { dirs = []; last = n }

(** Descend from the statement a cursor points at into its [blk]-th
    sub-block, selecting statement [idx] there. *)
let push (c : t) ~blk ~idx = { dirs = c.dirs @ [ { idx = c.last; blk } ]; last = idx }

let parent (c : t) : t option =
  match List.rev c.dirs with
  | [] -> None
  | d :: rev -> Some { dirs = List.rev rev; last = d.idx }

(** All enclosing-statement cursors, innermost first. *)
let rec ancestors (c : t) : t list =
  match parent c with None -> [] | Some p -> p :: ancestors p

let with_last (c : t) last = { c with last }
let depth (c : t) = List.length c.dirs

let pp ppf (c : t) =
  List.iter (fun d -> Fmt.pf ppf "%d.%d/" d.idx d.blk) c.dirs;
  Fmt.int ppf c.last

let sub_block (s : stmt) (blk : int) : stmt list =
  match (s, blk) with
  | SFor (_, _, _, b), 0 -> b
  | SIf (_, t, _), 0 -> t
  | SIf (_, _, e), 1 -> e
  | _ -> invalid "statement has no sub-block %d" blk

let with_sub_block (s : stmt) (blk : int) (b : stmt list) : stmt =
  match (s, blk) with
  | SFor (v, lo, hi, _), 0 -> SFor (v, lo, hi, b)
  | SIf (c, _, e), 0 -> SIf (c, b, e)
  | SIf (c, t, _), 1 -> SIf (c, t, b)
  | _ -> invalid "statement has no sub-block %d" blk

let nth_stmt (block : stmt list) i =
  match List.nth_opt block i with
  | Some s -> s
  | None -> invalid "statement index %d out of range (block has %d)" i (List.length block)

let rec get_block (body : stmt list) (dirs : dir list) : stmt list =
  match dirs with
  | [] -> body
  | d :: rest -> get_block (sub_block (nth_stmt body d.idx) d.blk) rest

let rec set_block (body : stmt list) (dirs : dir list) (b : stmt list) : stmt list =
  match dirs with
  | [] -> b
  | d :: rest ->
      List.mapi
        (fun i s ->
          if i = d.idx then with_sub_block s d.blk (set_block (sub_block s d.blk) rest b)
          else s)
        body

let get (body : stmt list) (c : t) : stmt = nth_stmt (get_block body c.dirs) c.last

(** Replace the statement at [c] by [repl] (possibly empty or several). *)
let splice (body : stmt list) (c : t) (repl : stmt list) : stmt list =
  let block = get_block body c.dirs in
  if c.last < 0 || c.last >= List.length block then
    invalid "splice: index %d out of range" c.last;
  let block' =
    List.concat (List.mapi (fun i s -> if i = c.last then repl else [ s ]) block)
  in
  set_block body c.dirs block'

(** Rewrite the statement at [c] with [f]. *)
let update (body : stmt list) (c : t) (f : stmt -> stmt list) : stmt list =
  splice body c (f (get body c))

let insert_before (body : stmt list) (c : t) (stmts : stmt list) : stmt list =
  update body c (fun s -> stmts @ [ s ])

let insert_after (body : stmt list) (c : t) (stmts : stmt list) : stmt list =
  update body c (fun s -> (s :: stmts))

(** Cursors of all statements, in program (outer-first, textual) order. *)
let all_stmts (body : stmt list) : (t * stmt) list =
  let out = ref [] in
  let rec go (prefix : dir list) block =
    List.iteri
      (fun i s ->
        out := ({ dirs = prefix; last = i }, s) :: !out;
        match s with
        | SFor (_, _, _, b) -> go (prefix @ [ { idx = i; blk = 0 } ]) b
        | SIf (_, t, e) ->
            go (prefix @ [ { idx = i; blk = 0 } ]) t;
            go (prefix @ [ { idx = i; blk = 1 } ]) e
        | SAssign _ | SReduce _ | SAlloc _ | SCall _ -> ())
      block
  in
  go [] body;
  List.rev !out
