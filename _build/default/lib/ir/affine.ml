(** Affine normal form for index expressions.

    Scheduling rewrites (notably {!Exo_sched.replace} unification and
    {!Exo_check.Deps}) must decide equality of index expressions such as
    [4 * jt + jtt] vs [jtt + jt * 4]. We normalize the affine fragment of
    {!Ir.expr} to [const + Σ coeff·sym] with sorted, nonzero terms, giving a
    canonical form with decidable equality. Non-affine expressions (products
    of variables, division by non-divisible constants) normalize to [None]
    and are treated opaquely by clients. *)

type t = { const : int; terms : (Sym.t * int) list }
(** [terms] sorted by symbol id, all coefficients nonzero. *)

let const c = { const = c; terms = [] }
let var ?(coeff = 1) s = if coeff = 0 then const 0 else { const = 0; terms = [ (s, coeff) ] }
let zero = const 0

let is_const t = match t.terms with [] -> Some t.const | _ -> None

let rec merge xs ys =
  match (xs, ys) with
  | [], l | l, [] -> l
  | (sx, cx) :: xs', (sy, cy) :: ys' ->
      let c = Sym.compare sx sy in
      if c < 0 then (sx, cx) :: merge xs' ys
      else if c > 0 then (sy, cy) :: merge xs ys'
      else
        let sum = cx + cy in
        if sum = 0 then merge xs' ys' else (sx, sum) :: merge xs' ys'

let add a b = { const = a.const + b.const; terms = merge a.terms b.terms }

let scale k a =
  if k = 0 then zero
  else { const = k * a.const; terms = List.map (fun (s, c) -> (s, k * c)) a.terms }

let neg a = scale (-1) a
let sub a b = add a (neg b)

let equal a b =
  a.const = b.const
  && List.length a.terms = List.length b.terms
  && List.for_all2
       (fun (s1, c1) (s2, c2) -> Sym.equal s1 s2 && c1 = c2)
       a.terms b.terms

(** Exact division by a constant; defined only when every coefficient and the
    constant are divisible. *)
let div_exact a k =
  if k = 0 then None
  else if a.const mod k <> 0 then None
  else if List.exists (fun (_, c) -> c mod k <> 0) a.terms then None
  else Some { const = a.const / k; terms = List.map (fun (s, c) -> (s, c / k)) a.terms }

(** [of_expr e] is the affine view of [e], or [None] when [e] leaves the
    affine fragment. [Div]/[Mod] are handled only when they fold away. *)
let rec of_expr (e : Ir.expr) : t option =
  let open Ir in
  match e with
  | Int n -> Some (const n)
  | Var v -> Some (var v)
  | Neg a -> Option.map neg (of_expr a)
  | Binop (Add, a, b) -> map2 add a b
  | Binop (Sub, a, b) -> map2 sub a b
  | Binop (Mul, a, b) -> (
      match (of_expr a, of_expr b) with
      | Some x, Some y -> (
          match (is_const x, is_const y) with
          | Some k, _ -> Some (scale k y)
          | _, Some k -> Some (scale k x)
          | None, None -> None)
      | _ -> None)
  | Binop (Div, a, b) -> (
      match (of_expr a, of_expr b) with
      | Some x, Some y -> (
          match is_const y with Some k when k <> 0 -> div_exact x k | _ -> None)
      | _ -> None)
  | Binop (Mod, a, b) -> (
      match (of_expr a, of_expr b) with
      | Some x, Some y -> (
          match (is_const x, is_const y) with
          | Some n, Some k when k <> 0 ->
              (* OCaml mod is truncated; loop indices are non-negative, and
                 constants we fold are too, so this matches C semantics. *)
              Some (const (n mod k))
          | _ -> None)
      | _ -> None)
  | Float _ | Read _ | Cmp _ | And _ | Or _ | Not _ | Stride _ -> None

and map2 f a b =
  match (of_expr a, of_expr b) with
  | Some x, Some y -> Some (f x y)
  | _ -> None

(** Canonical expression: constant last, terms in symbol order, coefficient-1
    terms printed bare, producing forms like [4 * jt + jtt + 1]. *)
let to_expr (t : t) : Ir.expr =
  let open Ir in
  let term (s, c) =
    if c = 1 then Var s
    else if c = -1 then Neg (Var s)
    else Binop (Mul, Int c, Var s)
  in
  match t.terms with
  | [] -> Int t.const
  | t0 :: rest ->
      let e =
        List.fold_left (fun acc tc -> Binop (Add, acc, term tc)) (term t0) rest
      in
      if t.const = 0 then e
      else if t.const > 0 then Binop (Add, e, Int t.const)
      else Binop (Sub, e, Int (-t.const))

(** Decide [e1 = e2] within the affine fragment; [None] when undecidable. *)
let expr_equal e1 e2 =
  match (of_expr e1, of_expr e2) with
  | Some a, Some b -> Some (equal a b)
  | _ -> None

let pp ppf t =
  let pp_term ppf (s, c) =
    if c = 1 then Sym.pp ppf s else Fmt.pf ppf "%d*%a" c Sym.pp s
  in
  match t.terms with
  | [] -> Fmt.int ppf t.const
  | _ ->
      Fmt.(list ~sep:(any " + ") pp_term) ppf t.terms;
      if t.const <> 0 then Fmt.pf ppf " + %d" t.const
