(** Exo-style pretty printer.

    Prints procedures in the surface syntax used throughout the paper's
    figures, e.g.:
    {v
    def uk_8x12(KC: size, alpha: f32[1] @ DRAM, ...):
        C_reg: f32[12, 2, 4] @ Neon
        for k in seq(0, KC):
            neon_vld_4xf32(A_reg[0, 0:4], Ac[k, 0:4])
    v}
    Golden tests pin these dumps for every step of Section III. *)

open Ir

(* Precedence levels, loosest to tightest. *)
let prec_or = 1
let prec_and = 2
let prec_not = 3
let prec_cmp = 4
let prec_add = 5
let prec_mul = 6
let prec_neg = 7
let prec_atom = 8

let binop_prec = function Add | Sub -> prec_add | Mul | Div | Mod -> prec_mul
let pp_list pp ppf l = Fmt.(list ~sep:(any ", ") pp) ppf l

let rec pp_expr_prec (ctx : int) ppf (e : expr) =
  let paren p body =
    if p < ctx then Fmt.pf ppf "(%t)" body else body ppf
  in
  match e with
  | Int n ->
      if n < 0 then paren prec_neg (fun ppf -> Fmt.pf ppf "%d" n)
      else Fmt.int ppf n
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e16 then Fmt.pf ppf "%.1f" f
      else Fmt.pf ppf "%g" f
  | Var v -> Sym.pp ppf v
  | Read (b, []) -> Fmt.pf ppf "%a[0]" Sym.pp b
  | Read (b, idx) -> Fmt.pf ppf "%a[%a]" Sym.pp b (pp_list pp_expr) idx
  | Binop (op, a, b) ->
      let p = binop_prec op in
      paren p (fun ppf ->
          Fmt.pf ppf "%a %s %a" (pp_expr_prec p) a (binop_name op)
            (pp_expr_prec (p + 1)) b)
  | Neg a -> paren prec_neg (fun ppf -> Fmt.pf ppf "-%a" (pp_expr_prec prec_atom) a)
  | Cmp (op, a, b) ->
      paren prec_cmp (fun ppf ->
          Fmt.pf ppf "%a %s %a" (pp_expr_prec prec_cmp) a (cmpop_name op)
            (pp_expr_prec (prec_cmp + 1)) b)
  | And (a, b) ->
      paren prec_and (fun ppf ->
          Fmt.pf ppf "%a and %a" (pp_expr_prec prec_and) a (pp_expr_prec (prec_and + 1)) b)
  | Or (a, b) ->
      paren prec_or (fun ppf ->
          Fmt.pf ppf "%a or %a" (pp_expr_prec prec_or) a (pp_expr_prec (prec_or + 1)) b)
  | Not a -> paren prec_not (fun ppf -> Fmt.pf ppf "not %a" (pp_expr_prec prec_not) a)
  | Stride (b, d) -> Fmt.pf ppf "stride(%a, %d)" Sym.pp b d

and pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_waccess ppf = function
  | Pt e -> pp_expr ppf e
  | Iv (lo, hi) -> Fmt.pf ppf "%a:%a" pp_expr lo pp_expr hi

let pp_window ppf (w : window) =
  Fmt.pf ppf "%a[%a]" Sym.pp w.wbuf (pp_list pp_waccess) w.widx

let pp_call_arg ppf = function
  | AExpr e -> pp_expr ppf e
  | AWin w -> pp_window ppf w

let pp_typ ppf = function
  | TSize -> Fmt.string ppf "size"
  | TIndex -> Fmt.string ppf "index"
  | TBool -> Fmt.string ppf "bool"
  | TScalar dt -> Dtype.pp ppf dt
  | TTensor (dt, dims) -> Fmt.pf ppf "%a[%a]" Dtype.pp dt (pp_list pp_expr) dims

let pp_arg ppf (a : arg) =
  match a.a_typ with
  | TSize | TIndex | TBool -> Fmt.pf ppf "%a: %a" Sym.pp a.a_name pp_typ a.a_typ
  | TScalar _ | TTensor _ ->
      Fmt.pf ppf "%a: %a @@ %a" Sym.pp a.a_name pp_typ a.a_typ Mem.pp a.a_mem

let rec pp_stmt ~indent ppf (s : stmt) =
  let pad ppf = Fmt.pf ppf "%s" (String.make indent ' ') in
  match s with
  | SAssign (b, [], e) -> Fmt.pf ppf "%t%a[0] = %a" pad Sym.pp b pp_expr e
  | SAssign (b, idx, e) ->
      Fmt.pf ppf "%t%a[%a] = %a" pad Sym.pp b (pp_list pp_expr) idx pp_expr e
  | SReduce (b, [], e) -> Fmt.pf ppf "%t%a[0] += %a" pad Sym.pp b pp_expr e
  | SReduce (b, idx, e) ->
      Fmt.pf ppf "%t%a[%a] += %a" pad Sym.pp b (pp_list pp_expr) idx pp_expr e
  | SFor (v, lo, hi, body) ->
      Fmt.pf ppf "%tfor %a in seq(%a, %a):@,%a" pad Sym.pp v pp_expr lo pp_expr hi
        (pp_block ~indent:(indent + 4)) body
  | SAlloc (b, dt, [], mem) ->
      Fmt.pf ppf "%t%a: %a @@ %a" pad Sym.pp b Dtype.pp dt Mem.pp mem
  | SAlloc (b, dt, dims, mem) ->
      Fmt.pf ppf "%t%a: %a[%a] @@ %a" pad Sym.pp b Dtype.pp dt (pp_list pp_expr) dims
        Mem.pp mem
  | SCall (p, args) ->
      Fmt.pf ppf "%t%s(%a)" pad p.p_name (pp_list pp_call_arg) args
  | SIf (c, t, []) ->
      Fmt.pf ppf "%tif %a:@,%a" pad pp_expr c (pp_block ~indent:(indent + 4)) t
  | SIf (c, t, e) ->
      Fmt.pf ppf "%tif %a:@,%a@,%telse:@,%a" pad pp_expr c
        (pp_block ~indent:(indent + 4))
        t pad
        (pp_block ~indent:(indent + 4))
        e

and pp_block ~indent ppf (body : stmt list) =
  if body = [] then Fmt.pf ppf "%spass" (String.make indent ' ')
  else Fmt.(list ~sep:(any "@,") (pp_stmt ~indent)) ppf body

let pp_proc ppf (p : proc) =
  Fmt.pf ppf "@[<v>";
  (match p.p_instr with
  | Some info -> Fmt.pf ppf "@@instr(\"%s\")@," info.ci_fmt
  | None -> Fmt.pf ppf "@@proc@,");
  Fmt.pf ppf "def %s(%a):@," p.p_name (pp_list pp_arg) p.p_args;
  List.iter (fun pred -> Fmt.pf ppf "    assert %a@," pp_expr pred) p.p_preds;
  pp_block ~indent:4 ppf p.p_body;
  Fmt.pf ppf "@]"

let proc_to_string (p : proc) = Fmt.str "%a" pp_proc p
let stmt_to_string (s : stmt) = Fmt.str "@[<v>%a@]" (pp_stmt ~indent:0) s
let expr_to_string (e : expr) = Fmt.str "%a" pp_expr e
