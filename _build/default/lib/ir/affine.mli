(** Affine normal form for index expressions.

    Normalizes the affine fragment of {!Ir.expr} to [const + Σ coeff·sym]
    with sorted, nonzero terms — a canonical form with decidable equality,
    used by {!Exo_sched}'s [replace] unifier, the dependence analysis and
    the bounds checker. Non-affine expressions normalize to [None]. *)

type t = { const : int; terms : (Sym.t * int) list }
(** [terms] sorted by symbol id, all coefficients nonzero. *)

val const : int -> t
val var : ?coeff:int -> Sym.t -> t
val zero : t

(** [Some c] iff the form is the constant [c]. *)
val is_const : t -> int option

val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val neg : t -> t
val equal : t -> t -> bool

(** Exact division by a constant; [None] unless every coefficient and the
    constant divide. *)
val div_exact : t -> int -> t option

(** The affine view of an expression, or [None] outside the fragment.
    [Div]/[Mod] are handled only when they fold away. *)
val of_expr : Ir.expr -> t option

(** Canonical expression ([4 * jt + jtt + 1]-shaped). *)
val to_expr : t -> Ir.expr

(** Decide [e1 = e2] within the affine fragment; [None] when undecidable. *)
val expr_equal : Ir.expr -> Ir.expr -> bool option

val pp : Format.formatter -> t -> unit
