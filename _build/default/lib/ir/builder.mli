(** Construction helpers: a thin DSL for writing IR terms by hand — used by
    the ISA instruction libraries and the reference kernel sources, reading
    close to the Exo originals. *)

val int : int -> Ir.expr
val flt : float -> Ir.expr
val var : Sym.t -> Ir.expr
val rd : Sym.t -> Ir.expr list -> Ir.expr
val rd0 : Sym.t -> Ir.expr
val add : Ir.expr -> Ir.expr -> Ir.expr
val sub : Ir.expr -> Ir.expr -> Ir.expr
val mul : Ir.expr -> Ir.expr -> Ir.expr
val div : Ir.expr -> Ir.expr -> Ir.expr
val md : Ir.expr -> Ir.expr -> Ir.expr
val neg : Ir.expr -> Ir.expr
val lt : Ir.expr -> Ir.expr -> Ir.expr
val le : Ir.expr -> Ir.expr -> Ir.expr
val gt : Ir.expr -> Ir.expr -> Ir.expr
val ge : Ir.expr -> Ir.expr -> Ir.expr
val eq : Ir.expr -> Ir.expr -> Ir.expr
val ne : Ir.expr -> Ir.expr -> Ir.expr
val and_ : Ir.expr -> Ir.expr -> Ir.expr
val stride : Sym.t -> int -> Ir.expr

module Infix : sig
  val ( +! ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( -! ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( *! ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( /! ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( %! ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( <! ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( <=! ) : Ir.expr -> Ir.expr -> Ir.expr
  val ( =! ) : Ir.expr -> Ir.expr -> Ir.expr
end

val assign : Sym.t -> Ir.expr list -> Ir.expr -> Ir.stmt
val reduce : Sym.t -> Ir.expr list -> Ir.expr -> Ir.stmt
val loop : Sym.t -> Ir.expr -> Ir.expr -> Ir.stmt list -> Ir.stmt

(** [loopn v n body] — the common [for v in seq(0, n)]. *)
val loopn : Sym.t -> Ir.expr -> Ir.stmt list -> Ir.stmt

val alloc : ?mem:Mem.t -> Sym.t -> Dtype.t -> Ir.expr list -> Ir.stmt
val call : Ir.proc -> Ir.call_arg list -> Ir.stmt
val if_ : Ir.expr -> Ir.stmt list -> Ir.stmt list -> Ir.stmt
val pt : Ir.expr -> Ir.waccess
val iv : Ir.expr -> Ir.expr -> Ir.waccess

(** Interval of extent [n] starting at [lo]. *)
val ivn : Ir.expr -> Ir.expr -> Ir.waccess

val win : Sym.t -> Ir.waccess list -> Ir.call_arg
val earg : Ir.expr -> Ir.call_arg
val size_arg : Sym.t -> Ir.arg
val index_arg : Sym.t -> Ir.arg
val scalar_arg : ?mem:Mem.t -> Sym.t -> Dtype.t -> Ir.arg
val tensor_arg : ?mem:Mem.t -> Sym.t -> Dtype.t -> Ir.expr list -> Ir.arg
