(** Scalar data types supported by the generator: the paper's FP32, the
    contributed FP16 (Section III-D), and the integer types its limitations
    discussion motivates. Carried end-to-end through codegen, interpreter
    rounding and vector-lane computation. *)

type t = F16 | F32 | F64 | I8 | I32

val equal : t -> t -> bool
val compare : t -> t -> int
val size_bytes : t -> int

(** Name in Exo-style dumps (e.g. [f32]). *)
val exo_name : t -> string

(** Name the C emitter uses ([float16_t] follows arm_neon.h). *)
val c_name : t -> string

val is_float : t -> bool
val pp : Format.formatter -> t -> unit
val of_string : string -> t option
