(** Memory spaces.

    Exo externalizes the memory hierarchy as user-defined memory annotations:
    buffers live [@ DRAM] by default and scheduling moves staged tiles into
    register memories such as [@ Neon]. The IR only needs the identity of a
    memory; its properties (vector lanes, C declaration syntax, register-file
    budget) are metadata registered by the ISA library ({!Exo_isa.Machine}),
    keeping this module free of hardware knowledge. *)

type t = { name : string }

let make name = { name }
let name t = t.name
let equal a b = String.equal a.name b.name
let compare a b = String.compare a.name b.name
let pp ppf t = Fmt.string ppf t.name

(** Plain addressable memory; the default placement for proc arguments and
    the only memory the macro-kernel touches directly. *)
let dram = make "DRAM"

let is_dram t = equal t dram
