lib/ir/builder.ml: Ir Mem
