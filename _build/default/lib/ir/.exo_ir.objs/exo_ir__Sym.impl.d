lib/ir/sym.ml: Fmt Hashtbl Int Map Set
