lib/ir/alpha.ml: Affine Dtype Float Ir List Mem String Sym
