lib/ir/mem.mli: Format
