lib/ir/affine.mli: Format Ir Sym
