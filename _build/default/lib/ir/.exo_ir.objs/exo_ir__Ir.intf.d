lib/ir/ir.mli: Dtype Mem Sym
