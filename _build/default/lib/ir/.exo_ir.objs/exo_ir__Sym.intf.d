lib/ir/sym.mli: Format Hashtbl Map Set
