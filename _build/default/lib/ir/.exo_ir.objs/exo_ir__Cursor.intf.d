lib/ir/cursor.mli: Format Ir
