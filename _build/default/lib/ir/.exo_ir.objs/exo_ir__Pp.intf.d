lib/ir/pp.mli: Format Ir
