lib/ir/affine.ml: Fmt Ir List Option Sym
