lib/ir/alpha.mli: Ir Sym
