lib/ir/cursor.ml: Fmt Ir List
