lib/ir/subst.ml: Ir List Sym
