lib/ir/pp.ml: Dtype Float Fmt Ir List Mem String Sym
