lib/ir/simplify.ml: Affine Ir List Sym
