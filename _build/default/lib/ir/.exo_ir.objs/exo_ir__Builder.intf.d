lib/ir/builder.mli: Dtype Ir Mem Sym
