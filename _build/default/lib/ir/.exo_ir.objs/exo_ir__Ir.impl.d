lib/ir/ir.ml: Dtype List Mem Option Sym
