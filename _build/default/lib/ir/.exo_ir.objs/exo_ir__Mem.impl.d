lib/ir/mem.ml: Fmt String
