lib/ir/subst.mli: Ir Sym
