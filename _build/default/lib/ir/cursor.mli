(** Cursors: stable addresses of statements inside a procedure body.

    A cursor is a path through the block tree: [(statement index, sub-block
    index)] descents followed by a final statement index. Sub-block 0 is a
    [for] body or an [if] then-branch; sub-block 1 an else-branch.
    Scheduling primitives locate targets via {!Exo_pattern} (which yields
    cursors) and edit through {!splice} / {!set_block}. *)

type dir = { idx : int; blk : int }
type t = { dirs : dir list; last : int }

exception Invalid_cursor of string

(** Cursor to the [n]-th top-level statement. *)
val root : int -> t

(** Descend from the statement at the cursor into its [blk]-th sub-block,
    selecting statement [idx] there. *)
val push : t -> blk:int -> idx:int -> t

(** Cursor of the enclosing statement, if any. *)
val parent : t -> t option

(** All enclosing-statement cursors, innermost first. *)
val ancestors : t -> t list

val with_last : t -> int -> t

(** Number of enclosing blocks. *)
val depth : t -> int

val pp : Format.formatter -> t -> unit

(** The [blk]-th sub-block of a statement ([for] body, [if] branches). *)
val sub_block : Ir.stmt -> int -> Ir.stmt list

val with_sub_block : Ir.stmt -> int -> Ir.stmt list -> Ir.stmt
val nth_stmt : Ir.stmt list -> int -> Ir.stmt
val get_block : Ir.stmt list -> dir list -> Ir.stmt list
val set_block : Ir.stmt list -> dir list -> Ir.stmt list -> Ir.stmt list
val get : Ir.stmt list -> t -> Ir.stmt

(** Replace the statement at the cursor by a (possibly empty) list. *)
val splice : Ir.stmt list -> t -> Ir.stmt list -> Ir.stmt list

(** Rewrite the statement at the cursor. *)
val update : Ir.stmt list -> t -> (Ir.stmt -> Ir.stmt list) -> Ir.stmt list

val insert_before : Ir.stmt list -> t -> Ir.stmt list -> Ir.stmt list
val insert_after : Ir.stmt list -> t -> Ir.stmt list -> Ir.stmt list

(** Cursors of all statements, in program (outer-first, textual) order. *)
val all_stmts : Ir.stmt list -> (t * Ir.stmt) list
