(** Substitution and binder-freshening.

    Substitutions map symbols to expressions and apply only to [Var]
    occurrences; buffer names in [Read]/[SAssign]/windows are renamed by the
    separate {!rename_buffers}. Rewrites that duplicate code (unrolling,
    divide_loop tails) must freshen binders with {!freshen_stmts} so the
    no-capture invariant of {!Sym} is preserved. *)

open Ir

type t = expr Sym.Map.t

let empty : t = Sym.Map.empty
let single v e : t = Sym.Map.singleton v e
let of_list l : t = List.fold_left (fun m (v, e) -> Sym.Map.add v e m) empty l

let apply_expr (s : t) (e : expr) : expr =
  map_expr (function Var v as e -> (match Sym.Map.find_opt v s with Some e' -> e' | None -> e) | e -> e) e

let apply_stmts (s : t) (body : stmt list) : stmt list =
  map_body_exprs (apply_expr s) body

(** Rename buffer symbols (allocation names / tensor arguments) throughout. *)
let rename_buffers (m : Sym.t Sym.Map.t) (body : stmt list) : stmt list =
  let rb b = match Sym.Map.find_opt b m with Some b' -> b' | None -> b in
  let rec re e =
    map_expr (function Read (b, idx) -> Read (rb b, idx) | Stride (b, d) -> Stride (rb b, d) | e -> e) e
  and rs s =
    match s with
    | SAssign (b, idx, e) -> SAssign (rb b, List.map re idx, re e)
    | SReduce (b, idx, e) -> SReduce (rb b, List.map re idx, re e)
    | SFor (v, lo, hi, body) -> SFor (v, re lo, re hi, List.map rs body)
    | SAlloc (b, dt, dims, mem) -> SAlloc (rb b, dt, List.map re dims, mem)
    | SCall (p, args) ->
        SCall
          ( p,
            List.map
              (function
                | AExpr e -> AExpr (re e)
                | AWin w -> AWin { (map_window re w) with wbuf = rb w.wbuf })
              args )
    | SIf (c, t, e) -> SIf (re c, List.map rs t, List.map rs e)
  in
  List.map rs body

(** Freshen every binder (loop variables and allocations) in [body],
    consistently renaming uses. Safe to splice the result anywhere. *)
let freshen_stmts (body : stmt list) : stmt list =
  let rec go (vsub : t) (bsub : Sym.t Sym.Map.t) stmts =
    List.map (go_stmt vsub bsub) stmts
  and go_stmt vsub bsub s =
    let re e =
      apply_expr vsub e
      |> map_expr (function
           | Read (b, idx) -> (
               match Sym.Map.find_opt b bsub with
               | Some b' -> Read (b', idx)
               | None -> Read (b, idx))
           | Stride (b, d) -> (
               match Sym.Map.find_opt b bsub with
               | Some b' -> Stride (b', d)
               | None -> Stride (b, d))
           | e -> e)
    in
    let rb b = match Sym.Map.find_opt b bsub with Some b' -> b' | None -> b in
    match s with
    | SAssign (b, idx, e) -> SAssign (rb b, List.map re idx, re e)
    | SReduce (b, idx, e) -> SReduce (rb b, List.map re idx, re e)
    | SFor (v, lo, hi, body) ->
        let v' = Sym.clone v in
        SFor (v', re lo, re hi, go (Sym.Map.add v (Var v') vsub) bsub body)
    | SAlloc (b, dt, dims, mem) ->
        (* The new name must be visible to the *following* statements of the
           same block, so allocs are handled by [go_block] below. *)
        SAlloc (rb b, dt, List.map re dims, mem)
    | SCall (p, args) ->
        SCall
          ( p,
            List.map
              (function
                | AExpr e -> AExpr (re e)
                | AWin w -> AWin { (map_window re w) with wbuf = rb w.wbuf })
              args )
    | SIf (c, t, e) -> SIf (re c, go vsub bsub t, go vsub bsub e)
  in
  (* Two passes: first collect fresh names for every alloc (allocation scopes
     extend to the end of the enclosing block, so a map suffices), then
     rename with binders freshened structurally. *)
  let bsub = ref Sym.Map.empty in
  iter_stmts
    (function
      | SAlloc (b, _, _, _) -> bsub := Sym.Map.add b (Sym.clone b) !bsub
      | _ -> ())
    body;
  go empty !bsub body
