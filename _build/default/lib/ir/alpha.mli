(** Alpha-equivalence of IR fragments: equality modulo bound-symbol names
    and affine index spelling ([4*jt + jtt] vs [jtt + jt*4]). Used by golden
    tests and by the [replace] unifier. *)

type env = Sym.t Sym.Map.t
(** Maps left-hand binders to right-hand binders. *)

val expr_eq : env -> Ir.expr -> Ir.expr -> bool
val window_eq : env -> Ir.window -> Ir.window -> bool
val stmts_eq : env -> Ir.stmt list -> Ir.stmt list -> bool

(** Whole-procedure alpha-equivalence (arguments mapped pairwise). *)
val proc_eq : Ir.proc -> Ir.proc -> bool
