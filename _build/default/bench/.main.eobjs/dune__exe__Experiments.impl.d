bench/experiments.ml: Exo_blis Exo_codegen Exo_ir Exo_isa Exo_sim Exo_ukr_gen Exo_workloads Fmt Hashtbl List Option String
