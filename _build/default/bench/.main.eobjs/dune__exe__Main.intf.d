bench/main.mli:
