bench/main.ml: Analyze Array Bechamel Benchmark Exo_blis Exo_codegen Exo_isa Exo_sim Exo_ukr_gen Exo_workloads Experiments Fmt Hashtbl List Measure Random Staged String Sys Test Time Toolkit
