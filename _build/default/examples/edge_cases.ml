(* Edge cases: the paper's central performance argument (Sections III-B and
   IV-A).

   HPC libraries ship one micro-kernel per architecture; any GEMM whose tile
   is smaller than the kernel's native 8x12 runs at a fraction of peak. The
   generator instead produces a specialized kernel per shape. This example
   generates the paper's whole kernel family, verifies each against the
   reference semantics, prints the solo-mode comparison (Fig. 13), and emits
   the family as one C compilation unit.

   Run with: dune exec examples/edge_cases.exe *)

module Family = Exo_ukr_gen.Family
module KM = Exo_sim.Kernel_model
module R = Exo_blis.Registry
module B = Exo_interp.Buffer
module I = Exo_interp.Interp

let machine = Exo_isa.Machine.carmel

let verify (k : Family.kernel) : bool =
  let kc = 16 in
  let st = Random.State.make [| k.Family.mr; k.Family.nr |] in
  let mk dims =
    let b = B.create ~init:0.0 Exo_ir.Dtype.F32 dims in
    B.fill b (fun _ -> float_of_int (Random.State.int st 9 - 4));
    b
  in
  let ac = mk [ kc; k.Family.mr ] and bc = mk [ kc; k.Family.nr ] in
  let c1 = mk [ k.Family.nr; k.Family.mr ] in
  let c2 = B.copy c1 in
  let one = B.of_array Exo_ir.Dtype.F32 [ 1 ] [| 1.0 |] in
  I.run
    (Exo_ukr_gen.Source.ukernel_ref_simple ())
    [
      I.VInt k.Family.mr; I.VInt k.Family.nr; I.VInt kc; I.VBuf one; I.VBuf ac;
      I.VBuf bc; I.VBuf one; I.VBuf c1;
    ];
  I.run k.Family.proc [ I.VInt kc; I.VBuf one; I.VBuf ac; I.VBuf bc; I.VBuf one; I.VBuf c2 ];
  B.equal c1 c2

let () =
  Fmt.pr "=== The edge-case kernel family (Sections III-B, IV-A) ===@.@.";
  let family = Family.paper_family () in
  Fmt.pr "%8s %14s %10s %10s %10s %10s  %s@." "size" "schedule" "NEON" "BLIS"
    "EXO" "EXO/BLIS" "verified";
  let base = R.base_8x12 () in
  let neon = KM.neon_intrinsics_8x12 base and blis = KM.blis_asm_8x12 base in
  List.iter
    (fun (k : Family.kernel) ->
      let mu = k.Family.mr and nu = k.Family.nr in
      let exo = KM.of_proc ~name:"EXO" ~mr:mu ~nr:nu k.Family.proc in
      let gn = KM.solo_gflops machine neon ~mu ~nu ~kc:512 in
      let gb = KM.solo_gflops machine blis ~mu ~nu ~kc:512 in
      let ge = KM.solo_gflops machine exo ~mu ~nu ~kc:512 in
      Fmt.pr "%8s %14s %10.2f %10.2f %10.2f %9.2fx  %s@."
        (Fmt.str "%dx%d" mu nu)
        (Family.style_name k.Family.style)
        gn gb ge (ge /. gb)
        (if verify k then "ok" else "MISMATCH"))
    family;

  (* the family as one compilation unit, as a library release would ship it *)
  let unit_ =
    Exo_codegen.C_emit.compilation_unit
      ~header_comment:"FP32 micro-kernel family for ARM Neon (Carmel)"
      (List.map (fun (k : Family.kernel) -> k.Family.proc) family)
  in
  let path = Filename.temp_file "exo_ukr_family" ".c" in
  let oc = open_out path in
  output_string oc unit_;
  close_out oc;
  Fmt.pr "@.family emitted to %s (%d kernels, %d lines of C)@." path
    (List.length family)
    (List.length (String.split_on_char '\n' unit_));

  (* a fringe kernel in full, for reading *)
  Fmt.pr "@.--- the 1x12 row kernel (vectorized over j, A broadcast) ---@.%a@."
    Exo_ir.Pp.pp_proc
    (List.find (fun (k : Family.kernel) -> k.Family.mr = 1 && k.Family.nr = 12) family)
      .Family.proc
