(* DNN inference GEMMs: the paper's Section IV-C scenario.

   Deep-learning convolutions, lowered with IM2ROW, produce the "highly
   rectangular" GEMMs of Tables I and II — full of tiles that do not match
   a monolithic 8x12 kernel. This example:

   1. takes a real conv layer, lowers it with the actual IM2ROW transform,
      runs it through the BLIS-like GEMM with interpreted Exo-generated
      kernels, and checks the result against direct convolution;
   2. sweeps every distinct ResNet50 v1.5 and VGG16 conv GEMM through the
      performance model (Figs. 15-18) and reports per-layer winners and the
      aggregated inference times.

   Run with: dune exec examples/dnn_inference.exe *)

module C = Exo_workloads.Conv
module W = Exo_workloads.Models
module M = Exo_blis.Matrix
module D = Exo_blis.Driver

let machine = Exo_isa.Machine.carmel

let numeric_conv_demo () =
  Fmt.pr "--- numeric: conv3x3(16 -> 8) via IM2ROW + BLIS + Exo kernels ---@.";
  let spec = { C.cin = 16; cout = 8; kh = 3; kw = 3; stride = 1; pad = 1 } in
  let st = Random.State.make [| 7 |] in
  let input = C.tensor_random 14 14 16 st in
  let weights = M.random_int (3 * 3 * 16) 8 st in
  let reference = C.direct spec input weights in
  (* lower: one GEMM of (196, 8, 144) *)
  let a = C.im2row spec input in
  let m, n, k = C.gemm_dims spec ~h:14 ~w:14 in
  Fmt.pr "lowered GEMM: m=%d n=%d k=%d@." m n k;
  let out = M.create m n in
  Exo_blis.Gemm.blis
    ~blocking:(Exo_blis.Analytical.compute machine ~mr:8 ~nr:12 ~dtype_bytes:4)
    ~mr:8 ~nr:12
    ~ukr:(Exo_blis.Registry.exo_ukr ())
    a weights out;
  let ok = ref true in
  for oi = 0 to 13 do
    for oj = 0 to 13 do
      for co = 0 to 7 do
        if Float.abs (C.tget reference oi oj co -. M.get out ((oi * 14) + oj) co) > 1e-9
        then ok := false
      done
    done
  done;
  Fmt.pr "direct conv vs im2row+GEMM(Exo kernels): %s@.@."
    (if !ok then "exact match" else "MISMATCH")

let model_sweep name layers =
  Fmt.pr "--- %s: per-layer GFLOPS on the modeled Carmel (Figs. 15/17) ---@." name;
  let setups = D.all_setups () in
  let totals = Hashtbl.create 4 in
  Fmt.pr "%4s %20s" "id" "(m, n, k)";
  List.iter (fun s -> Fmt.pr " %9s" (D.name_of s)) setups;
  Fmt.pr "  best (EXO kernel)@.";
  List.iter
    (fun (l : W.layer) ->
      let m, n, k = W.gemm_dims l in
      Fmt.pr "%4d %20s" l.W.id (Fmt.str "(%d, %d, %d)" m n k);
      let results =
        List.map
          (fun s ->
            let t, _ = D.time machine s ~m ~n ~k in
            let prev = Option.value ~default:0.0 (Hashtbl.find_opt totals (D.name_of s)) in
            Hashtbl.replace totals (D.name_of s) (prev +. (t *. float_of_int l.W.count));
            (D.name_of s, 2.0 *. float_of_int (m * n) *. float_of_int k /. t /. 1e9))
          setups
      in
      List.iter (fun (_, g) -> Fmt.pr " %9.2f" g) results;
      let best, _ =
        List.fold_left (fun (bn, bg) (nm, g) -> if g > bg then (nm, g) else (bn, bg))
          ("", 0.0) results
      in
      Fmt.pr "  %s (%s)@." best
        (D.selected_kernel machine (D.alg_exo ()) ~m ~n ~k))
    layers;
  Fmt.pr "@.aggregated inference time (Figs. 16/18):@.";
  List.iter
    (fun s ->
      Fmt.pr "  %10s : %7.2f ms@." (D.name_of s)
        (1e3 *. Option.value ~default:0.0 (Hashtbl.find_opt totals (D.name_of s))))
    setups;
  Fmt.pr "@."

let () =
  Fmt.pr "=== DNN inference GEMMs (Section IV-C) ===@.@.";
  numeric_conv_demo ();
  model_sweep "ResNet50 v1.5" W.resnet50;
  model_sweep "VGG16" W.vgg16
