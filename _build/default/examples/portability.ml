(* Architectural portability and data types (Sections III-C and III-D).

   The paper's claim: retargeting the generator is "changing the third
   argument in the replace statements" — the hardware is a library, not a
   compiler backend. This example generates kernels for four targets from
   the same schedule machinery:

   - ARM Neon FP32 (the paper's target);
   - ARM Neon FP16 (the feature this paper contributed to Exo);
   - Intel AVX-512 (no lane-indexed FMA: the broadcast pipeline kicks in);
   - RISC-V RVV (the paper's future work; vfmacc.vf needs no broadcast).

   Each kernel is verified against the reference interpreter and emitted
   as C with the ISA's own intrinsics.

   Run with: dune exec examples/portability.exe *)

module Family = Exo_ukr_gen.Family
module Kits = Exo_ukr_gen.Kits
module B = Exo_interp.Buffer
module I = Exo_interp.Interp

let verify (k : Family.kernel) : bool =
  let kc = 8 in
  let dt = k.Family.kit.Kits.dt in
  let st = Random.State.make [| k.Family.mr; k.Family.nr; 3 |] in
  let mk dims =
    let b = B.create ~init:0.0 dt dims in
    B.fill b (fun _ -> float_of_int (Random.State.int st 5 - 2));
    b
  in
  let ac = mk [ kc; k.Family.mr ] and bc = mk [ kc; k.Family.nr ] in
  let c1 = mk [ k.Family.nr; k.Family.mr ] in
  let c2 = B.copy c1 in
  let one = B.of_array dt [ 1 ] [| 1.0 |] in
  I.run
    (Exo_ukr_gen.Source.ukernel_ref_simple ~dt ())
    [
      I.VInt k.Family.mr; I.VInt k.Family.nr; I.VInt kc; I.VBuf one; I.VBuf ac;
      I.VBuf bc; I.VBuf one; I.VBuf c1;
    ];
  I.run k.Family.proc [ I.VInt kc; I.VBuf one; I.VBuf ac; I.VBuf bc; I.VBuf one; I.VBuf c2 ];
  B.equal c1 c2

let show (kit : Kits.t) ~mr ~nr =
  let k = Family.generate ~kit ~mr ~nr () in
  Fmt.pr "=== %s, %dx%d (%s schedule) — verified: %s ===@." kit.Kits.name mr nr
    (Family.style_name k.Family.style)
    (if verify k then "ok" else "MISMATCH");
  Fmt.pr "%s@." (Exo_codegen.C_emit.compilation_unit [ k.Family.proc ])

let () =
  show Kits.neon_f32 ~mr:8 ~nr:12;
  show Kits.neon_f16 ~mr:16 ~nr:24;
  show Kits.neon_i32 ~mr:8 ~nr:12;
  show Kits.avx512_f32 ~mr:32 ~nr:6;
  show Kits.avx2_f32 ~mr:16 ~nr:6;
  show Kits.rvv_f32 ~mr:8 ~nr:12;
  Fmt.pr
    "All six targets came from the same schedule templates; only the\n\
     instruction library (the kit) changed — Section III-C's portability\n\
     story, plus Section III-D's data-type support (f16, i32).@."
