(* Autotuning and kernel variants.

   The paper's advantage #4: because generating a kernel is cheap, "the
   optimization process for each problem is greatly reduced, boiling down to
   evaluating a number of generated micro-kernels". This example:

   1. runs the exhaustive tuner over the candidate kernel shapes for a few
      GEMM problems (squarish, DL-skinny) and prints the ranking;
   2. shows the kernel variants beyond alpha = beta = 1: the full Fig. 4
      kernel, the beta = 0 specialization (register zeroing instead of a
      C-tile load — the common DL case), and the Section III-B non-packed-A
      kernel, each with its instruction census;
   3. demonstrates the explain-style bound analysis for a narrow kernel.

   Run with: dune exec examples/autotune.exe *)

module T = Exo_blis.Tuner
module KM = Exo_sim.Kernel_model
module Tr = Exo_sim.Trace
module V = Exo_ukr_gen.Variants

let machine = Exo_isa.Machine.carmel

let () =
  Fmt.pr "=== Exhaustive kernel selection (Tuner) ===@.@.";
  List.iter
    (fun (m, n, k, label) ->
      Fmt.pr "--- %s: (m, n, k) = (%d, %d, %d) ---@." label m n k;
      List.iteri
        (fun i (r : T.result) ->
          if i < 4 then
            Fmt.pr "  %d. %2dx%-2d %7.2f GFLOPS  %a@." (i + 1) r.T.mr r.T.nr
              r.T.gflops Exo_blis.Analytical.pp r.T.blocking)
        (T.sweep machine ~m ~n ~k);
      Fmt.pr "@.")
    [
      (2000, 2000, 2000, "squarish");
      (49, 2048, 512, "DL layer, skinny m (ResNet50 id 18)");
      (12544, 64, 147, "DL layer, skinny n (ResNet50 conv1)");
    ];

  Fmt.pr "=== Kernel variants ===@.@.";
  let census name p =
    let t = Tr.of_proc p in
    Fmt.pr "%-24s k-loop[%a]@.%26sprologue[%a]@." name Tr.pp t.Tr.steady ""
      Tr.pp t.Tr.prologue
  in
  census "packed (a=b=1)" (Exo_ukr_gen.Family.generate ~mr:8 ~nr:12 ()).Exo_ukr_gen.Family.proc;
  census "full alpha/beta" (V.packed_full ~mr:8 ~nr:12 ());
  census "beta = 0" (V.packed_beta0 ~mr:8 ~nr:12 ());
  census "non-packed A" (V.nopack ~mr:8 ~nr:12 ());
  Fmt.pr "@.--- the beta = 0 kernel in C (no C-tile loads) ---@.%s@."
    (Exo_codegen.C_emit.proc_to_c (V.packed_beta0 ~mr:8 ~nr:12 ()));

  Fmt.pr "=== Why narrow kernels are slower (the Fig. 13 decay) ===@.@.";
  List.iter
    (fun (mr, nr) ->
      let k = Exo_ukr_gen.Family.generate ~mr ~nr () in
      let impl = KM.of_proc ~name:"k" ~mr ~nr k.Exo_ukr_gen.Family.proc in
      let c = (Tr.of_proc k.Exo_ukr_gen.Family.proc).Tr.steady in
      let pipe = float_of_int c.Tr.fma /. float_of_int machine.Exo_isa.Machine.fma_pipes in
      let cyc = KM.cycles_per_iter machine impl in
      Fmt.pr
        "%2dx%-2d: %2d accumulators, pipe bound %5.2f cyc, latency bound %d cyc → \
         %5.2f cyc/iter (%5.2f GFLOPS)@."
        mr nr c.Tr.fma pipe machine.Exo_isa.Machine.fma_lat cyc
        (KM.solo_gflops machine impl ~mu:mr ~nu:nr ~kc:512))
    [ (8, 12); (8, 8); (8, 4); (4, 4) ]
