examples/autotune.mli:
