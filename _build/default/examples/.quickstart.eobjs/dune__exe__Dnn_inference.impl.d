examples/dnn_inference.ml: Exo_blis Exo_isa Exo_workloads Float Fmt Hashtbl List Option Random
