examples/quickstart.mli:
