examples/quickstart.ml: Exo_codegen Exo_interp Exo_ir Exo_sim Exo_ukr_gen Fmt List Random
