examples/autotune.ml: Exo_blis Exo_codegen Exo_isa Exo_sim Exo_ukr_gen Fmt List
