examples/dnn_inference.mli:
