examples/edge_cases.ml: Exo_blis Exo_codegen Exo_interp Exo_ir Exo_isa Exo_sim Exo_ukr_gen Filename Fmt List Random String
