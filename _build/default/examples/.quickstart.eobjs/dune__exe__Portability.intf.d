examples/portability.mli:
