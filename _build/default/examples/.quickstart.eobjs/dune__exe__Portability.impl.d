examples/portability.ml: Exo_codegen Exo_interp Exo_ukr_gen Fmt Random
