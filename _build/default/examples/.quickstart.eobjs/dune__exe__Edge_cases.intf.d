examples/edge_cases.mli:
