(** Kernel variants beyond the alpha = beta = 1 family:

    - {!packed_full} — the complete Fig. 4 kernel, scheduling the
      [Cb = C·beta] and [Ba = Bc·alpha] nests ("Optimization of the initial
      code will involve more scheduling functions for the Cb and Ba loops,
      equivalent to those shown", Section III-A) alongside the vectorized
      compute;
    - {!packed_beta0} — the beta = 0 specialization: accumulators start from
      a register zero instead of a C-tile load (the common DL case);
    - {!nopack} — Section III-B's non-packed-A variant: A stays in its
      original row-major layout, the schedule vectorizes j and feeds the A
      element through the scalar-FMA / broadcast path. *)

open Exo_ir
module Sched = Exo_sched.Sched

(** Stage one reference operand of the compute nest into vector registers —
    the Fig. 9 recipe, parameterized over which buffer/loops it applies to. *)
let stage_operand (kit : Kits.t) p ~bufname ~regname ~vec ~outer ~outer_extent
    ~n_lifts ~fission_lifts ~wraps =
  let l = kit.Kits.lanes in
  let p = Sched.bind_expr p (bufname ^ "[_]") regname in
  let p = Sched.expand_dim p regname (string_of_int l) vec in
  let p = Sched.expand_dim p regname (string_of_int outer_extent) outer in
  let p = Sched.lift_alloc p regname ~n_lifts in
  let p =
    Sched.autofission p ~gap:(Sched.After (regname ^ "[_] = _")) ~n_lifts:fission_lifts
  in
  let p = List.fold_left Sched.remove_loop p wraps in
  let p = Sched.replace p (Fmt.str "for %s in _: _" vec) kit.Kits.vld in
  Sched.set_memory p regname kit.Kits.mem

(** Vectorize a scale-copy nest [dst\[.., 4·t+tt\] = src\[..\] · s\[0\]]:
    split the unit-stride loop, stage the source read into a register, and
    map the body onto [vld] + fused scale-store. [loopname] is the
    unit-stride loop; [srcname] the buffer read. *)
let vectorize_scale_nest (kit : Kits.t) p ~loopname ~srcname ~regname ~store_mul =
  let l = kit.Kits.lanes in
  let inner = loopname ^ "tt" in
  let p = Sched.divide_loop p loopname l (loopname ^ "t", inner) ~tail:Sched.Perfect in
  let p = Sched.bind_expr p (srcname ^ "[_]") regname in
  let p = Sched.expand_dim p regname (string_of_int l) inner in
  let p = Sched.lift_alloc p regname ~n_lifts:1 in
  let p = Sched.autofission p ~gap:(Sched.After (regname ^ "[_] = _")) ~n_lifts:1 in
  let p = Sched.replace p (Fmt.str "for %s in _: _" inner) kit.Kits.vld in
  let p = Sched.replace p (Fmt.str "for %s in _: _" inner) store_mul in
  Sched.set_memory p regname kit.Kits.mem

(** Stage the accumulator tile of the compute nest and vectorize its copy
    loops ([loopname] is the generated copy loop over the unit-stride dim;
    [cdim] the C_reg dimension carrying lanes). *)
let stage_acc (kit : Kits.t) p ~window ~regname ~cdim ~loopname ~load ~len ~pat =
  let l = kit.Kits.lanes in
  let p = Sched.stage_mem_stmts ~load ~len p pat window regname in
  let inner = loopname ^ "i" in
  let p =
    if load then
      Sched.divide_loop p loopname l (loopname ^ "o", inner) ~tail:Sched.Perfect
    else p
  in
  let p = Sched.divide_loop p loopname l (loopname ^ "o", inner) ~tail:Sched.Perfect in
  let p = Sched.divide_dim p regname cdim l in
  let p = if load then Sched.replace p (Fmt.str "for %s in _: _" inner) kit.Kits.vld else p in
  let p = Sched.replace p (Fmt.str "for %s in _: _" inner) kit.Kits.vst in
  Sched.set_memory p regname kit.Kits.mem

(* ------------------------------------------------------------------ *)
(* The full alpha/beta kernel (Fig. 4)                                  *)

(** Schedule the complete Fig. 4 kernel for the Neon f32 kit. Requires
    [lanes | MR] and [lanes | NR] and the kit's lane-indexed FMA and fused
    scale-store. *)
let packed_full ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : Ir.proc =
  let l = kit.Kits.lanes in
  if mr mod l <> 0 || nr mod l <> 0 then
    invalid_arg "Variants.packed_full: shape not divisible by the vector length";
  let fma_lane =
    match kit.Kits.fma_lane with
    | Some f -> f
    | None -> invalid_arg "Variants.packed_full: kit lacks a lane-indexed FMA"
  in
  let store_mul = Exo_isa.Neon.vst_mul_scalar_4xf32 in
  let p = Source.ukernel_ref ~dt:kit.Kits.dt () in
  let ident = String.map (function '-' -> '_' | c -> c) kit.Kits.name in
  let p = Sched.rename p (Fmt.str "uk_full_%dx%d_%s" mr nr ident) in
  let p = Sched.partial_eval p [ ("MR", mr); ("NR", nr) ] in
  (* (a) Cb = C * beta *)
  let p = vectorize_scale_nest kit p ~loopname:"ci" ~srcname:"C" ~regname:"Cl" ~store_mul in
  (* (b) Ba = Bc * alpha *)
  let p = vectorize_scale_nest kit p ~loopname:"bj" ~srcname:"Bc" ~regname:"Bl" ~store_mul in
  (* (c) the compute nest, exactly as Section III but over Cb/Ba *)
  let p = Sched.divide_loop p "i" l ("it", "itt") ~tail:Sched.Perfect in
  let p = Sched.divide_loop p "j" l ("jt", "jtt") ~tail:Sched.Perfect in
  let p =
    stage_acc kit p
      ~window:(Fmt.str "Cb[0:%d, 0:%d]" nr mr)
      ~regname:"C_reg" ~cdim:1 ~loopname:"s1" ~load:true ~len:1 ~pat:"for k in _: _"
  in
  let p =
    stage_operand kit p ~bufname:"Ac" ~regname:"A_reg" ~vec:"itt" ~outer:"it"
      ~outer_extent:(mr / l) ~n_lifts:5 ~fission_lifts:4 ~wraps:[ "jt"; "jtt" ]
  in
  let p =
    stage_operand kit p ~bufname:"Ba" ~regname:"B_reg" ~vec:"jtt" ~outer:"jt"
      ~outer_extent:(nr / l) ~n_lifts:5 ~fission_lifts:4
      ~wraps:[ "for it in _: _ #1"; "for itt in _: _ #0" ]
  in
  let p = Sched.reorder_loops p "jtt it" in
  let p = Sched.replace p "for itt in _: _" fma_lane in
  let p = Sched.unroll_loop p "it" in
  let p = Sched.unroll_loop p "jt" in
  (* (d) C = Cb — vectorized copy-back *)
  let p = Sched.divide_loop p "ci" l ("dit", "ditt") ~tail:Sched.Perfect in
  let p = Sched.bind_expr p "Cb[_]" "Cs" in
  let p = Sched.expand_dim p "Cs" (string_of_int l) "ditt" in
  let p = Sched.lift_alloc p "Cs" ~n_lifts:1 in
  let p = Sched.autofission p ~gap:(Sched.After "Cs[_] = _") ~n_lifts:1 in
  let p = Sched.replace p "for ditt in _: _" kit.Kits.vld in
  let p = Sched.replace p "for ditt in _: _" kit.Kits.vst in
  let p = Sched.set_memory p "Cs" kit.Kits.mem in
  Family.certify (Sched.simplify p)

(* ------------------------------------------------------------------ *)
(* The beta = 0 kernel                                                  *)

(** C = Ac·Bc: the accumulator tile is zeroed in registers ([vmovq_n(0)])
    instead of loaded — staging with [~load:false] over the zero-init and
    compute nests together, the whole-window-overwrite obligation discharged
    by the coverage analysis. *)
let packed_beta0 ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : Ir.proc =
  let l = kit.Kits.lanes in
  if mr mod l <> 0 || nr mod l <> 0 then
    invalid_arg "Variants.packed_beta0: shape not divisible by the vector length";
  let fma_lane =
    match kit.Kits.fma_lane with
    | Some f -> f
    | None -> invalid_arg "Variants.packed_beta0: kit lacks a lane-indexed FMA"
  in
  let zero =
    match kit.Kits.name with
    | "neon-f32" -> Exo_isa.Neon.vzero_4xf32
    | "neon-f16" -> Exo_isa.Neon.vzero_8xf16
    | "avx512-f32" -> Exo_isa.Avx512.setzero_16xf32
    | _ -> Exo_isa.Rvv.vzero_4xf32
  in
  let p = Source.ukernel_ref_beta0 ~dt:kit.Kits.dt () in
  let ident = String.map (function '-' -> '_' | c -> c) kit.Kits.name in
  let p = Sched.rename p (Fmt.str "uk_beta0_%dx%d_%s" mr nr ident) in
  let p = Sched.partial_eval p [ ("MR", mr); ("NR", nr) ] in
  let p = Sched.divide_loop p "zi" l ("zit", "zitt") ~tail:Sched.Perfect in
  let p = Sched.divide_loop p "i" l ("it", "itt") ~tail:Sched.Perfect in
  let p = Sched.divide_loop p "j" l ("jt", "jtt") ~tail:Sched.Perfect in
  (* stage both the zero nest and the k-nest through C_reg, no load *)
  let p =
    Sched.stage_mem_stmts ~load:false ~len:2 p "for zj in _: _"
      (Fmt.str "C[0:%d, 0:%d]" nr mr)
      "C_reg"
  in
  let p = Sched.divide_loop p "s1" l ("s1o", "s1i") ~tail:Sched.Perfect in
  let p = Sched.divide_dim p "C_reg" 1 l in
  let p = Sched.replace p "for zitt in _: _" zero in
  let p = Sched.replace p "for s1i in _: _" kit.Kits.vst in
  let p = Sched.set_memory p "C_reg" kit.Kits.mem in
  let p =
    stage_operand kit p ~bufname:"Ac" ~regname:"A_reg" ~vec:"itt" ~outer:"it"
      ~outer_extent:(mr / l) ~n_lifts:5 ~fission_lifts:4 ~wraps:[ "jt"; "jtt" ]
  in
  let p =
    stage_operand kit p ~bufname:"Bc" ~regname:"B_reg" ~vec:"jtt" ~outer:"jt"
      ~outer_extent:(nr / l) ~n_lifts:5 ~fission_lifts:4
      ~wraps:[ "for it in _: _ #1"; "for itt in _: _ #0" ]
  in
  let p = Sched.reorder_loops p "jtt it" in
  let p = Sched.replace p "for itt in _: _" fma_lane in
  let p = Sched.unroll_loop p "it" in
  let p = Sched.unroll_loop p "jt" in
  Family.certify (Sched.simplify p)

(* ------------------------------------------------------------------ *)
(* The non-packed-A variant (Section III-B)                             *)

(** A in row-major [MR × KC] (not packed), C row-major [MR × NR]: the i loop
    is not split (paper point 1); j is vectorized; the A element feeds the
    scalar-FMA form directly, which subsumes the dup + vfmadd the paper
    sketches ([vfmaq_n_f32] broadcasts internally). *)
let nopack ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : Ir.proc =
  let l = kit.Kits.lanes in
  if nr mod l <> 0 then
    invalid_arg "Variants.nopack: NR must be divisible by the vector length";
  let fma =
    match kit.Kits.fma_scalar with
    | Some f -> f
    | None -> invalid_arg "Variants.nopack: kit lacks a scalar FMA"
  in
  let p = Source.ukernel_ref_nopack ~dt:kit.Kits.dt () in
  let ident = String.map (function '-' -> '_' | c -> c) kit.Kits.name in
  let p = Sched.rename p (Fmt.str "uk_nopack_%dx%d_%s" mr nr ident) in
  let p = Sched.partial_eval p [ ("MR", mr); ("NR", nr) ] in
  let p = Sched.divide_loop p "j" l ("jt", "jtt") ~tail:Sched.Perfect in
  (* stage the C tile (row-major: lanes along dimension 1) *)
  let p =
    Sched.stage_mem p "for k in _: _" (Fmt.str "C[0:%d, 0:%d]" mr nr) "C_reg"
  in
  let p = Sched.divide_loop p "s1" l ("s1o", "s1i") ~tail:Sched.Perfect in
  let p = Sched.divide_loop p "s1" l ("s1o", "s1i") ~tail:Sched.Perfect in
  let p = Sched.divide_dim p "C_reg" 1 l in
  let p = Sched.replace p "for s1i in _: _" kit.Kits.vld in
  let p = Sched.replace p "for s1i in _: _" kit.Kits.vst in
  let p = Sched.set_memory p "C_reg" kit.Kits.mem in
  (* stage the B row (unit stride over j); with MR = 1 the i loop was
     inlined away and the nest is one level shallower *)
  let has_i = mr > 1 in
  let p =
    stage_operand kit p ~bufname:"Bc" ~regname:"B_reg" ~vec:"jtt" ~outer:"jt"
      ~outer_extent:(nr / l)
      ~n_lifts:(if has_i then 4 else 3)
      ~fission_lifts:(if has_i then 3 else 2)
      ~wraps:(if has_i then [ "i" ] else [])
  in
  (* the A element stays in memory: vfmaq_n reads it as the scalar factor *)
  let p = Sched.replace p "for jtt in _: _" fma in
  let p = Sched.unroll_loop p "jt" in
  Family.certify (Sched.simplify p)
