(** Target kits: the bundle of instruction definitions a schedule plugs into
    its [replace] calls.

    The paper's portability claim (Section III-C) is that retargeting the
    generator is only "changing the third argument in the replace
    statements" — a kit is exactly that third argument, packaged. Kits that
    lack a lane-indexed FMA ([fma_lane = None], e.g. AVX-512) drive the
    broadcast-style pipeline instead. *)

open Exo_ir

type t = {
  name : string;
  dt : Dtype.t;
  lanes : int;
  mem : Mem.t;
  vld : Ir.proc;
  vst : Ir.proc;
  fma_lane : Ir.proc option;  (** dst\[i\] += lhs\[i\] * rhs\[l\] *)
  fma_vv : Ir.proc;  (** dst\[i\] += lhs\[i\] * rhs\[i\] *)
  fma_scalar : Ir.proc option;  (** dst\[i\] += s\[0\] * rhs\[i\] *)
  fma_scalar_r : Ir.proc option;  (** dst\[i\] += lhs\[i\] * s\[0\] *)
  bcast : Ir.proc;  (** dst\[i\] = src\[0\] *)
  vregs : int;
      (** architectural vector-register budget of the kit's ISA — the lint
          sweep's pressure bound comes from here, not from hardcoded Carmel
          numbers (it must agree with the kit's {!Exo_isa.Memories} entry) *)
  sched_steps : int;
      (** declared schedule macro-step count for the packed pipeline; the
          generator's provenance log must agree ([Family.generate] checks) *)
}

let neon_f32 =
  {
    name = "neon-f32";
    dt = Dtype.F32;
    lanes = 4;
    mem = Exo_isa.Neon.mem;
    vld = Exo_isa.Neon.vld_4xf32;
    vst = Exo_isa.Neon.vst_4xf32;
    fma_lane = Some Exo_isa.Neon.vfmla_4xf32_4xf32;
    fma_vv = Exo_isa.Neon.vfmadd_4xf32_4xf32;
    fma_scalar = Some Exo_isa.Neon.vfmacc_scalar_4xf32;
    fma_scalar_r = Some Exo_isa.Neon.vfmacc_scalar_r_4xf32;
    bcast = Exo_isa.Neon.vdup_4xf32;
    vregs = 32;
    sched_steps = 6;
  }

(** The f16 kit the paper contributed to Exo (Section III-D): 8 lanes,
    [Neon8f] memory. *)
let neon_f16 =
  {
    name = "neon-f16";
    dt = Dtype.F16;
    lanes = 8;
    mem = Exo_isa.Neon.mem8f;
    vld = Exo_isa.Neon.vld_8xf16;
    vst = Exo_isa.Neon.vst_8xf16;
    fma_lane = Some Exo_isa.Neon.vfmla_8xf16_8xf16;
    fma_vv = Exo_isa.Neon.vfmadd_8xf16_8xf16;
    fma_scalar = None;
    fma_scalar_r = None;
    bcast = Exo_isa.Neon.vdup_8xf16;
    vregs = 32;
    sched_steps = 6;
  }

(** AVX-512: no lane-indexed FMA, so schedules go through
    [bind_expr_bcast] + [set1] + element-wise FMA. *)
let avx512_f32 =
  {
    name = "avx512-f32";
    dt = Dtype.F32;
    lanes = 16;
    mem = Exo_isa.Avx512.mem;
    vld = Exo_isa.Avx512.loadu_16xf32;
    vst = Exo_isa.Avx512.storeu_16xf32;
    fma_lane = None;
    fma_vv = Exo_isa.Avx512.fmadd_16xf32;
    fma_scalar = None;
    fma_scalar_r = None;
    bcast = Exo_isa.Avx512.set1_16xf32;
    vregs = 32;
    sched_steps = 6;
  }

(** Integer kernels (the HPC libraries' missing case, limitations point 5):
    32-bit integer multiply-accumulate, 4 lanes. *)
let neon_i32 =
  {
    name = "neon-i32";
    dt = Dtype.I32;
    lanes = 4;
    mem = Exo_isa.Neon.mem;
    vld = Exo_isa.Neon.vld_4xi32;
    vst = Exo_isa.Neon.vst_4xi32;
    fma_lane = Some Exo_isa.Neon.vmla_4xi32_4xi32;
    fma_vv = Exo_isa.Neon.vmlad_4xi32_4xi32;
    fma_scalar = None;
    fma_scalar_r = None;
    bcast = Exo_isa.Neon.vdup_4xi32;
    vregs = 32;
    sched_steps = 6;
  }

(** AVX2: 8 lanes, a 16-entry register file (the tuner's feasibility check
    matters here), broadcast + element-wise FMA. *)
let avx2_f32 =
  {
    name = "avx2-f32";
    dt = Dtype.F32;
    lanes = 8;
    mem = Exo_isa.Avx2.mem;
    vld = Exo_isa.Avx2.loadu_8xf32;
    vst = Exo_isa.Avx2.storeu_8xf32;
    fma_lane = None;
    fma_vv = Exo_isa.Avx2.fmadd_8xf32;
    fma_scalar = None;
    fma_scalar_r = None;
    bcast = Exo_isa.Avx2.broadcast_8xf32;
    vregs = 16;
    sched_steps = 6;
  }

(** RISC-V vector (VLEN = 128): scalar-times-vector FMA maps the broadcast
    pipeline with no dup at all. *)
let rvv_f32 =
  {
    name = "rvv-f32";
    dt = Dtype.F32;
    lanes = 4;
    mem = Exo_isa.Rvv.mem;
    vld = Exo_isa.Rvv.vle_4xf32;
    vst = Exo_isa.Rvv.vse_4xf32;
    fma_lane = None;
    fma_vv = Exo_isa.Rvv.vfmacc_vv_4xf32;
    fma_scalar = Some Exo_isa.Rvv.vfmacc_vf_4xf32;
    fma_scalar_r = Some Exo_isa.Rvv.vfmacc_vf_r_4xf32;
    bcast = Exo_isa.Rvv.vfmv_4xf32;
    vregs = 32;
    sched_steps = 6;
  }

let all = [ neon_f32; neon_f16; neon_i32; avx512_f32; avx2_f32; rvv_f32 ]

let by_name n = List.find_opt (fun k -> String.equal k.name n) all

(** Content digest of a kit — the cache-key ingredient that invalidates
    every persisted artifact when the kit changes. Covers the descriptor
    scalars and the printed form of every instruction proc (names, preds,
    bodies; [Pp.proc_to_string] prints names rather than internal ids, so
    the digest is stable across processes). *)
let digest (k : t) : string =
  let b = Buffer.create 1024 in
  let part s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  part k.name;
  part (Dtype.exo_name k.dt);
  part (string_of_int k.lanes);
  part (Mem.name k.mem);
  part (string_of_int k.vregs);
  part (string_of_int k.sched_steps);
  let proc p = part (Pp.proc_to_string p) in
  let opt tag p =
    match p with
    | None -> part (tag ^ "=none")
    | Some p ->
        part (tag ^ "=some");
        proc p
  in
  proc k.vld;
  proc k.vst;
  opt "fma_lane" k.fma_lane;
  proc k.fma_vv;
  opt "fma_scalar" k.fma_scalar;
  opt "fma_scalar_r" k.fma_scalar_r;
  proc k.bcast;
  Digest.to_hex (Digest.string (Buffer.contents b))
