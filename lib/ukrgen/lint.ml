(** Static lint sweep over the generated kernel family. See the interface
    for the rule catalogue and the Fig. 12 pin. *)

module V = Exo_check.Vlint
module M = Exo_isa.Memories

(* The pressure bound comes from the kit's own ISA descriptor (not from a
   Memories lookup and not from hardcoded Carmel numbers) — the kit is the
   single retargeting point, so a new ISA only fills in its record. *)
let target_of_kit (kit : Kits.t) : V.target =
  { V.is_vector_mem = M.is_register_mem; max_vregs = kit.Kits.vregs }

let expected_census (kit : Kits.t) (style : Family.style) ~(mr : int)
    ~(nr : int) : V.census option =
  let l = kit.Kits.lanes in
  let z = V.census_zero in
  match style with
  | Family.Packed ->
      (* per k iteration: one vld per A subtile and per B subtile, one
         lane-indexed fma per (A subtile, j) — Fig. 12's 5 ld + 24 fma *)
      Some { z with V.loads = (mr / l) + (nr / l); fmas = mr / l * nr }
  | Family.PackedBcast ->
      (* A vectorized only; B feeds a scalar-FMA form when the kit has one,
         otherwise each of the nr elements is broadcast to a register *)
      Some
        {
          z with
          V.loads = mr / l;
          fmas = mr / l * nr;
          bcasts = (if Option.is_none kit.Kits.fma_scalar_r then nr else 0);
        }
  | Family.Row ->
      (* j vectorized; the single A element is the scalar factor. On kits
         without a scalar-FMA form it is broadcast to a register — the
         broadcast sits inside the unrolled jt loop, so once per subtile *)
      Some
        {
          z with
          V.loads = nr / l;
          fmas = nr / l;
          bcasts = (if Option.is_none kit.Kits.fma_scalar then nr / l else 0);
        }
  | Family.Scalar -> None

let expect_of (kit : Kits.t) (style : Family.style) ~(mr : int) ~(nr : int) :
    V.expect =
  {
    V.vectorized = style <> Family.Scalar;
    census = expected_census kit style ~mr ~nr;
    writable = [ "C" ];
  }

type entry = { kit_name : string; label : string; report : V.report }

type outcome = {
  entries : entry list;
  skipped : (string * string) list;
}

(** The variants are not census-pinned (their steady states differ per
    schedule) but must satisfy every other rule. *)
let variant_expect : V.expect =
  { V.vectorized = true; census = None; writable = [ "C" ] }

let variants_of (kit : Kits.t) =
  [
    ("packed_full", fun () -> Variants.packed_full ~kit ~mr:8 ~nr:12 ());
    ("packed_beta0", fun () -> Variants.packed_beta0 ~kit ~mr:8 ~nr:12 ());
    ("nopack", fun () -> Variants.nopack ~kit ~mr:8 ~nr:12 ());
  ]

(* One lint unit: a kernel (or variant) to generate and check. Units are
   independent, so the sweep runs them on an {!Exo_par.Pool}; each yields
   an entry or a skip, and the flat work-list order reproduces the original
   nested-loop order exactly, for every pool width. *)
type unit_result = Entry of entry | Skip of string * string

let shape_unit (kit : Kits.t) t (mr, nr) () : unit_result =
  match Family.generate ~kit ~mr ~nr () with
  | k ->
      let label = Fmt.str "%dx%d %s" mr nr (Family.style_name k.Family.style) in
      let expect = expect_of kit k.Family.style ~mr ~nr in
      Entry
        { kit_name = kit.Kits.name; label; report = V.check t expect k.Family.proc }
  | exception Exo_sched.Sched.Sched_error m ->
      (* generation itself failed its certificate: a lint failure, not a
         capability skip *)
      Entry
        {
          kit_name = kit.Kits.name;
          label = Fmt.str "%dx%d" mr nr;
          report =
            {
              V.proc_name = Fmt.str "uk_%dx%d_%s" mr nr kit.Kits.name;
              vregs = 0;
              signature = "";
              findings = [ { V.rule = "generate"; detail = m } ];
            };
        }

let variant_unit (kit : Kits.t) t (vname, gen) () : unit_result =
  let label = Fmt.str "%s 8x12" vname in
  match gen () with
  | p ->
      Entry
        { kit_name = kit.Kits.name; label; report = V.check t variant_expect p }
  | exception Invalid_argument m -> Skip (Fmt.str "%s %s" kit.Kits.name label, m)
  | exception Exo_sched.Sched.Sched_error m ->
      Skip (Fmt.str "%s %s" kit.Kits.name label, m)

let run ?(kits = Kits.all) ?jobs () : outcome =
  let module Obs = Exo_obs.Obs in
  let work =
    List.concat_map
      (fun (kit : Kits.t) ->
        let t = target_of_kit kit in
        List.map
          (fun (mr, nr) ->
            (Fmt.str "%s %dx%d" kit.Kits.name mr nr, shape_unit kit t (mr, nr)))
          Family.paper_shapes
        @ List.map
            (fun (vname, gen) ->
              (Fmt.str "%s %s" kit.Kits.name vname, variant_unit kit t (vname, gen)))
            (variants_of kit))
      kits
  in
  let pool = Exo_par.Pool.create ?jobs () in
  let results =
    Obs.with_span "lint.run" (fun () ->
        Exo_par.Pool.map pool
          (fun (label, job) ->
            let sp =
              if Obs.enabled () then
                Obs.begin_span ~args:[ ("unit", label) ] "lint.unit"
              else Obs.none
            in
            Fun.protect ~finally:(fun () -> Obs.end_span sp) job)
          work)
  in
  {
    entries = List.filter_map (function Entry e -> Some e | Skip _ -> None) results;
    skipped =
      List.filter_map (function Skip (l, m) -> Some (l, m) | Entry _ -> None) results;
  }

let failures (o : outcome) =
  List.length (List.filter (fun e -> not (V.ok e.report)) o.entries)

let all_ok (o : outcome) = o.entries <> [] && failures o = 0

let pp_entry ppf (e : entry) =
  let r = e.report in
  if V.ok r then
    Fmt.pf ppf "ok   %-10s %-20s %-24s %2d vregs  %s" e.kit_name e.label
      r.V.proc_name r.V.vregs r.V.signature
  else
    Fmt.pf ppf "@[<v>FAIL %-10s %-20s %a@]" e.kit_name e.label V.pp_report r

let pp_outcome ppf (o : outcome) =
  Fmt.pf ppf "@[<v>%a@,%d kernel(s) linted, %d failure(s), %d combination(s) skipped@]"
    (Fmt.list pp_entry) o.entries
    (List.length o.entries) (failures o) (List.length o.skipped)

(* ------------------------------------------------------------------ *)
(* The --tiers sweep: translation validation of the lowered execution  *)
(* tiers over a whole monomorphized (mr' × nr') kernel table           *)

module T = Exo_check.Tierlint
module C = Exo_interp.Compile

type tier_entry = {
  te_kit : string;
  te_mr : int;
  te_nr : int;
  te_report : T.report;
  te_probe : bool option;
}

type tier_kit_summary = {
  tk_kit : string;
  tk_total : int;
  tk_proved : int;
  tk_disagreements : int;
}

type tiers_outcome = {
  tier_entries : tier_entry list;
  tier_kits : tier_kit_summary list;
}

let tier_unit (kit : Kits.t) (mr', nr') () : tier_entry =
  let proc = (Family.generate ~kit ~mr:mr' ~nr:nr' ()).Family.proc in
  let report =
    match C.summarize_ukr proc with
    | Some s -> T.check s
    | None ->
        let u = T.Unproved "tape lowering refused the proc" in
        { T.r_mr = mr'; r_nr = nr'; r_bounds = u; r_writes = u; r_accshape = u }
  in
  (* the dynamic integer certification, for the static-vs-dynamic
     cross-check; f32 only (the probe buffers are f32) *)
  let probe =
    if kit.Kits.dt = Exo_ir.Dtype.F32 then
      Some (C.probe_ukr_ba proc ~mr:mr' ~nr:nr')
    else None
  in
  {
    te_kit = kit.Kits.name;
    te_mr = mr';
    te_nr = nr';
    te_report = report;
    te_probe = probe;
  }

let run_tiers ?(kits = Kits.all) ?jobs ?(mr = 8) ?(nr = 12) () : tiers_outcome =
  let module Obs = Exo_obs.Obs in
  let work =
    List.concat_map
      (fun (kit : Kits.t) ->
        List.concat_map
          (fun mr' ->
            List.map
              (fun nr' ->
                ( Fmt.str "%s %dx%d" kit.Kits.name mr' nr',
                  tier_unit kit (mr', nr') ))
              (List.init nr (fun j -> j + 1)))
          (List.init mr (fun i -> i + 1)))
      kits
  in
  let pool = Exo_par.Pool.create ?jobs () in
  let entries =
    Obs.with_span "lint.tiers" (fun () ->
        Exo_par.Pool.map pool
          (fun (label, job) ->
            let sp =
              if Obs.enabled () then
                Obs.begin_span ~args:[ ("unit", label) ] "lint.tier_unit"
              else Obs.none
            in
            Fun.protect ~finally:(fun () -> Obs.end_span sp) job)
          work)
  in
  let tier_kits =
    List.map
      (fun (kit : Kits.t) ->
        let es =
          List.filter (fun e -> String.equal e.te_kit kit.Kits.name) entries
        in
        {
          tk_kit = kit.Kits.name;
          tk_total = List.length es;
          tk_proved =
            List.length (List.filter (fun e -> T.proved e.te_report) es);
          tk_disagreements =
            List.length
              (List.filter
                 (fun e -> T.proved e.te_report && e.te_probe = Some false)
                 es);
        })
      kits
  in
  { tier_entries = entries; tier_kits }

let tiers_unproved (o : tiers_outcome) =
  List.fold_left (fun n k -> n + (k.tk_total - k.tk_proved)) 0 o.tier_kits

let tiers_ok (o : tiers_outcome) =
  o.tier_entries <> []
  && List.for_all
       (fun k -> k.tk_proved = k.tk_total && k.tk_disagreements = 0)
       o.tier_kits

let pp_tier_entry ppf (e : tier_entry) =
  Fmt.pf ppf "%-12s %a%s" e.te_kit T.pp_report e.te_report
    (match e.te_probe with
    | Some true -> "  [probe ok]"
    | Some false -> "  [probe REJECTED]"
    | None -> "")

let pp_tiers ppf (o : tiers_outcome) =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun e ->
      if (not (T.proved e.te_report)) || e.te_probe = Some false then
        Fmt.pf ppf "FAIL %a@," pp_tier_entry e)
    o.tier_entries;
  List.iter
    (fun k ->
      Fmt.pf ppf
        "%s: proved %d/%d, unproved_entries %d, probe_disagreements %d@,"
        k.tk_kit k.tk_proved k.tk_total (k.tk_total - k.tk_proved)
        k.tk_disagreements)
    o.tier_kits;
  Fmt.pf ppf "%d entr%s validated across %d kit%s@]"
    (List.length o.tier_entries)
    (if List.length o.tier_entries = 1 then "y" else "ies")
    (List.length o.tier_kits)
    (if List.length o.tier_kits = 1 then "" else "s")

(* Minimal JSON escaping: UTF-8 passes through; quotes, backslashes and
   control characters are escaped (OCaml's %S would emit decimal escapes
   JSON does not accept). *)
let json_str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let tiers_json (o : tiers_outcome) : string =
  let verdict = function
    | T.Proved -> "\"proved\""
    | T.Unproved m -> Fmt.str "{\"unproved\": %s}" (json_str m)
  in
  let entry (e : tier_entry) =
    Fmt.str
      "    {\"kit\": %s, \"mr\": %d, \"nr\": %d, \"bounds\": %s, \"writes\": \
       %s, \"accshape\": %s, \"probe\": %s}"
      (json_str e.te_kit) e.te_mr e.te_nr
      (verdict e.te_report.T.r_bounds)
      (verdict e.te_report.T.r_writes)
      (verdict e.te_report.T.r_accshape)
      (match e.te_probe with
      | Some true -> "true"
      | Some false -> "false"
      | None -> "null")
  in
  let kitline (k : tier_kit_summary) =
    Fmt.str
      "    {\"kit\": %s, \"proved\": %d, \"total\": %d, \"unproved_entries\": \
       %d, \"probe_disagreements\": %d}"
      (json_str k.tk_kit) k.tk_proved k.tk_total (k.tk_total - k.tk_proved)
      k.tk_disagreements
  in
  (* the same meta block every BENCH_*.json carries, from the one shared
     writer — downstream tooling keys on its schema_version *)
  Fmt.str "{\n  %s,\n  \"kits\": [\n%s\n  ],\n  \"entries\": [\n%s\n  ],\n  \
           \"all_proved\": %b\n}\n"
    (Exo_obs.Obs.Meta.json ~pool_jobs:(Exo_par.Pool.default_jobs ()) ())
    (String.concat ",\n" (List.map kitline o.tier_kits))
    (String.concat ",\n" (List.map entry o.tier_entries))
    (tiers_ok o)
