(** Static lint sweep over the generated kernel family. See the interface
    for the rule catalogue and the Fig. 12 pin. *)

module V = Exo_check.Vlint
module M = Exo_isa.Memories

let target_of_kit (kit : Kits.t) : V.target =
  let info = M.lookup_exn kit.Kits.mem in
  { V.is_vector_mem = M.is_register_mem; max_vregs = info.M.num_regs }

let expected_census (kit : Kits.t) (style : Family.style) ~(mr : int)
    ~(nr : int) : V.census option =
  let l = kit.Kits.lanes in
  let z = V.census_zero in
  match style with
  | Family.Packed ->
      (* per k iteration: one vld per A subtile and per B subtile, one
         lane-indexed fma per (A subtile, j) — Fig. 12's 5 ld + 24 fma *)
      Some { z with V.loads = (mr / l) + (nr / l); fmas = mr / l * nr }
  | Family.PackedBcast ->
      (* A vectorized only; B feeds a scalar-FMA form when the kit has one,
         otherwise each of the nr elements is broadcast to a register *)
      Some
        {
          z with
          V.loads = mr / l;
          fmas = mr / l * nr;
          bcasts = (if Option.is_none kit.Kits.fma_scalar_r then nr else 0);
        }
  | Family.Row ->
      (* j vectorized; the single A element is the scalar factor. On kits
         without a scalar-FMA form it is broadcast to a register — the
         broadcast sits inside the unrolled jt loop, so once per subtile *)
      Some
        {
          z with
          V.loads = nr / l;
          fmas = nr / l;
          bcasts = (if Option.is_none kit.Kits.fma_scalar then nr / l else 0);
        }
  | Family.Scalar -> None

let expect_of (kit : Kits.t) (style : Family.style) ~(mr : int) ~(nr : int) :
    V.expect =
  {
    V.vectorized = style <> Family.Scalar;
    census = expected_census kit style ~mr ~nr;
    writable = [ "C" ];
  }

type entry = { kit_name : string; label : string; report : V.report }

type outcome = {
  entries : entry list;
  skipped : (string * string) list;
}

(** The variants are not census-pinned (their steady states differ per
    schedule) but must satisfy every other rule. *)
let variant_expect : V.expect =
  { V.vectorized = true; census = None; writable = [ "C" ] }

let variants_of (kit : Kits.t) =
  [
    ("packed_full", fun () -> Variants.packed_full ~kit ~mr:8 ~nr:12 ());
    ("packed_beta0", fun () -> Variants.packed_beta0 ~kit ~mr:8 ~nr:12 ());
    ("nopack", fun () -> Variants.nopack ~kit ~mr:8 ~nr:12 ());
  ]

(* One lint unit: a kernel (or variant) to generate and check. Units are
   independent, so the sweep runs them on an {!Exo_par.Pool}; each yields
   an entry or a skip, and the flat work-list order reproduces the original
   nested-loop order exactly, for every pool width. *)
type unit_result = Entry of entry | Skip of string * string

let shape_unit (kit : Kits.t) t (mr, nr) () : unit_result =
  match Family.generate ~kit ~mr ~nr () with
  | k ->
      let label = Fmt.str "%dx%d %s" mr nr (Family.style_name k.Family.style) in
      let expect = expect_of kit k.Family.style ~mr ~nr in
      Entry
        { kit_name = kit.Kits.name; label; report = V.check t expect k.Family.proc }
  | exception Exo_sched.Sched.Sched_error m ->
      (* generation itself failed its certificate: a lint failure, not a
         capability skip *)
      Entry
        {
          kit_name = kit.Kits.name;
          label = Fmt.str "%dx%d" mr nr;
          report =
            {
              V.proc_name = Fmt.str "uk_%dx%d_%s" mr nr kit.Kits.name;
              vregs = 0;
              signature = "";
              findings = [ { V.rule = "generate"; detail = m } ];
            };
        }

let variant_unit (kit : Kits.t) t (vname, gen) () : unit_result =
  let label = Fmt.str "%s 8x12" vname in
  match gen () with
  | p ->
      Entry
        { kit_name = kit.Kits.name; label; report = V.check t variant_expect p }
  | exception Invalid_argument m -> Skip (Fmt.str "%s %s" kit.Kits.name label, m)
  | exception Exo_sched.Sched.Sched_error m ->
      Skip (Fmt.str "%s %s" kit.Kits.name label, m)

let run ?(kits = Kits.all) ?jobs () : outcome =
  let module Obs = Exo_obs.Obs in
  let work =
    List.concat_map
      (fun (kit : Kits.t) ->
        let t = target_of_kit kit in
        List.map
          (fun (mr, nr) ->
            (Fmt.str "%s %dx%d" kit.Kits.name mr nr, shape_unit kit t (mr, nr)))
          Family.paper_shapes
        @ List.map
            (fun (vname, gen) ->
              (Fmt.str "%s %s" kit.Kits.name vname, variant_unit kit t (vname, gen)))
            (variants_of kit))
      kits
  in
  let pool = Exo_par.Pool.create ?jobs () in
  let results =
    Obs.with_span "lint.run" (fun () ->
        Exo_par.Pool.map pool
          (fun (label, job) ->
            let sp =
              if Obs.enabled () then
                Obs.begin_span ~args:[ ("unit", label) ] "lint.unit"
              else Obs.none
            in
            Fun.protect ~finally:(fun () -> Obs.end_span sp) job)
          work)
  in
  {
    entries = List.filter_map (function Entry e -> Some e | Skip _ -> None) results;
    skipped =
      List.filter_map (function Skip (l, m) -> Some (l, m) | Entry _ -> None) results;
  }

let failures (o : outcome) =
  List.length (List.filter (fun e -> not (V.ok e.report)) o.entries)

let all_ok (o : outcome) = o.entries <> [] && failures o = 0

let pp_entry ppf (e : entry) =
  let r = e.report in
  if V.ok r then
    Fmt.pf ppf "ok   %-10s %-20s %-24s %2d vregs  %s" e.kit_name e.label
      r.V.proc_name r.V.vregs r.V.signature
  else
    Fmt.pf ppf "@[<v>FAIL %-10s %-20s %a@]" e.kit_name e.label V.pp_report r

let pp_outcome ppf (o : outcome) =
  Fmt.pf ppf "@[<v>%a@,%d kernel(s) linted, %d failure(s), %d combination(s) skipped@]"
    (Fmt.list pp_entry) o.entries
    (List.length o.entries) (failures o) (List.length o.skipped)
