(** Micro-kernel family generation (Section III-B).

    The paper's answer to edge cases: instead of one monolithic kernel with
    fringe logic, generate a *collection* of specialized kernels, one per
    (MR, NR) the GEMM driver needs. [generate] picks a schedule template
    from the shape and the target kit's instruction inventory. *)

(** Which schedule template a shape gets. *)
type style =
  | Packed
      (** MR, NR both multiples of the vector length with a lane-indexed FMA:
          the Section III schedule (Figs. 6–11) *)
  | PackedBcast
      (** MR a multiple of the vector length, any NR: vectorize i, broadcast
          the B element (also the AVX-512/AVX2 path, Section III-C) *)
  | Row
      (** MR = 1, NR a multiple of the vector length: vectorize j (unit
          stride because C's leading dimension is 1), broadcast A *)
  | Scalar  (** everything else: specialization by partial evaluation only *)

val style_name : style -> string

type kernel = {
  mr : int;
  nr : int;
  kit : Kits.t;
  style : style;
  proc : Exo_ir.Ir.proc;  (** signature: (KC, alpha, Ac, Bc, beta, C) *)
  provenance : Exo_obs.Obs.Provenance.entry list;
      (** the schedule that made [proc]: one entry per primitive applied
          (cursor pattern, IR node delta, certificate time/outcome) plus one
          marker per macro step — always collected, tracing on or off *)
}

(** The template [generate] would pick for a shape on a kit. *)
val pick_style : Kits.t -> mr:int -> nr:int -> style

(** How many provenance macro steps the (kit, style) schedule declares —
    [generate] fails with [Sched_error] if the recorded log disagrees, and
    CI cross-checks emitted sidecars against the same number. *)
val declared_steps : Kits.t -> style -> int

(** Generate one specialized kernel. Raises [Invalid_argument] on
    non-positive shapes. Every generated kernel is bit-exact against the
    reference semantics (enforced by the property tests) and carries the
    {!certify} bounds certificate plus its full provenance log. *)
val generate : ?kit:Kits.t -> mr:int -> nr:int -> unit -> kernel

(** {!generate} through the ambient {!Exo_cache.Store}: a hit skips the
    schedule+certify pipeline but still re-proves the stored proc's bounds
    certificate (a stale or tampered artifact reads as a miss and is
    regenerated); a miss generates and persists the artifact for the next
    process. Identical to {!generate} when no store is ambient. *)
val generate_cached : ?kit:Kits.t -> mr:int -> nr:int -> unit -> kernel

(** Demand the static bounds certificate of {!Exo_check.Bounds.check_proc}:
    every access [Proved] in range, zero [Unknown]s. Raises
    [Exo_sched.Sched.Sched_error] naming the failures otherwise; returns the
    procedure unchanged on success. Applied to every kernel [generate]
    emits and to every {!Variants} schedule. *)
val certify : Exo_ir.Ir.proc -> Exo_ir.Ir.proc

(** The individual schedule templates (exposed for benches/ablations). *)

val packed : Kits.t -> mr:int -> nr:int -> Exo_ir.Ir.proc
val packed_bcast : Kits.t -> mr:int -> nr:int -> Exo_ir.Ir.proc
val row : Kits.t -> nr:int -> Exo_ir.Ir.proc
val scalar : Kits.t -> mr:int -> nr:int -> Exo_ir.Ir.proc

(** The kernel sizes the paper's evaluation uses (Section IV):
    8×12, 8×8, 8×4, 4×12, 4×8, 4×4, 1×12, 1×8. *)
val paper_shapes : (int * int) list

val paper_family : ?kit:Kits.t -> unit -> kernel list
