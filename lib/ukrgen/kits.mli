(** Target kits: the bundle of instruction definitions a schedule plugs into
    its [replace] calls — the paper's Section III-C portability mechanism,
    packaged ("changing the third argument in the replace statements").
    Kits without a lane-indexed FMA drive the broadcast-style pipeline. *)

type t = {
  name : string;
  dt : Exo_ir.Dtype.t;
  lanes : int;
  mem : Exo_ir.Mem.t;
  vld : Exo_ir.Ir.proc;
  vst : Exo_ir.Ir.proc;
  fma_lane : Exo_ir.Ir.proc option;  (** dst[i] += lhs[i] * rhs[l] *)
  fma_vv : Exo_ir.Ir.proc;  (** dst[i] += lhs[i] * rhs[i] *)
  fma_scalar : Exo_ir.Ir.proc option;  (** dst[i] += s[0] * rhs[i] *)
  fma_scalar_r : Exo_ir.Ir.proc option;  (** dst[i] += lhs[i] * s[0] *)
  bcast : Exo_ir.Ir.proc;  (** dst[i] = src[0] *)
  vregs : int;
      (** architectural vector-register budget — the ISA descriptor the
          lint sweep's pressure bound reads (agrees with the kit's
          {!Exo_isa.Memories} entry; pinned by a test) *)
  sched_steps : int;  (** declared packed-pipeline macro-step count *)
}

(** The paper's target: ARM Neon FP32, 4 lanes. *)
val neon_f32 : t

(** The contributed feature (Section III-D): Neon FP16, 8 lanes, [Neon8f]. *)
val neon_f16 : t

(** 32-bit integer multiply-accumulate — the integer-arithmetic case the
    paper's limitations discussion raises. *)
val neon_i32 : t

(** No lane-indexed FMA → set1 + element-wise FMA (Section III-C). *)
val avx512_f32 : t

(** 8 lanes, 16-entry register file. *)
val avx2_f32 : t

(** Future-work target; [vfmacc.vf] needs no broadcast at all. *)
val rvv_f32 : t

val all : t list
val by_name : string -> t option

(** Content digest over the descriptor scalars and the printed form of every
    instruction proc — the cache-key ingredient ({!Exo_cache.Store}) that
    invalidates persisted kernel/tuner artifacts when a kit changes. Stable
    across processes (keyed on printed names, not symbol ids). *)
val digest : t -> string
