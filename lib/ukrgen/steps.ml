(** Section III, step by step: the schedule that turns the reference kernel
    (Fig. 5) into the vectorized, unrolled 8×12 micro-kernel (Fig. 11).

    Each step is recorded with the paper figure it reproduces so the
    quickstart example and the golden tests can show/pin every intermediate
    procedure. The schedule is parametric in (MR, NR) and in the target
    {!Kits.t}, which is how the edge-case family (Section III-B) and the
    retargetings (Section III-C/D) fall out of the same code. *)

open Exo_ir
module Sched = Exo_sched.Sched

type step = { title : string; figure : string option; proc : Ir.proc }

type trace = step list
(** First element is the earliest step. *)

let final (tr : trace) : Ir.proc =
  match List.rev tr with
  | [] -> invalid_arg "empty trace"
  | s :: _ -> s.proc

(* the first record is the starting point (Fig. 5), not a transformation —
   only subsequent records count as schedule macro steps in the provenance
   log ([Kits.sched_steps] declares how many a kit's packed pipeline has) *)
let record title ?figure proc (tr : trace) : trace =
  if tr <> [] then Exo_obs.Obs.Provenance.mark_step ?figure title;
  tr @ [ { title; figure; proc } ]

(** The standard packed schedule — requires [lanes | MR] and [lanes | NR]
    and a lane-indexed FMA in the kit. *)
let packed ~(kit : Kits.t) ~(mr : int) ~(nr : int) : trace =
  let l = kit.lanes in
  if mr mod l <> 0 || nr mod l <> 0 then
    invalid_arg
      (Fmt.str "Steps.packed: %dx%d not divisible by the %d-lane vector length" mr nr l);
  let fma_lane =
    match kit.fma_lane with
    | Some f -> f
    | None -> invalid_arg "Steps.packed: kit has no lane-indexed FMA (use packed_bcast)"
  in
  let p0 = Source.ukernel_ref_simple ~dt:kit.dt () in
  let tr = record "reference kernel (alpha = beta = 1)" ~figure:"Fig. 5" p0 [] in

  (* v1 — specialize MR/NR (Fig. 6) *)
  let p = Sched.rename p0 (Fmt.str "uk_%dx%d" mr nr) in
  let p = Sched.partial_eval p [ ("MR", mr); ("NR", nr) ] in
  let tr = record "partial_eval: specialize MR, NR" ~figure:"Fig. 6" p tr in

  (* v2 — split i and j to the vector length (Fig. 7) *)
  let p = Sched.divide_loop p "i" l ("it", "itt") ~tail:Sched.Perfect in
  let p = Sched.divide_loop p "j" l ("jt", "jtt") ~tail:Sched.Perfect in
  let tr = record "divide_loop: match the vector length" ~figure:"Fig. 7" p tr in

  (* v3 — stage the C tile in registers; vectorize its load and store
     (Fig. 8). The windowed stage_mem stages the whole tile around the
     k-loop in one step (this is Exo's stage_mem; the figure's scalar
     staging + expand_dim + lift_alloc + autofission sequence computes the
     same program). *)
  let p = Sched.stage_mem p "for k in _: _" (Fmt.str "C[0:%d, 0:%d]" nr mr) "C_reg" in
  let p = Sched.divide_loop p "s1" l ("s1o", "s1i") ~tail:Sched.Perfect in
  let p = Sched.divide_loop p "s1" l ("s1o", "s1i") ~tail:Sched.Perfect in
  let p = Sched.divide_dim p "C_reg" 1 l in
  let p = Sched.replace p "for s1i in _: _" kit.vld in
  let p = Sched.replace p "for s1i in _: _" kit.vst in
  let p = Sched.set_memory p "C_reg" kit.mem in
  let tr = record "stage_mem: C tile in vector registers" ~figure:"Fig. 8" p tr in

  (* v4 — stage the Ac and Bc operands (Fig. 9) *)
  let stage_operand p ~bufname ~regname ~vec ~outer ~outer_extent ~wrap1 ~wrap2 =
    let p = Sched.bind_expr p (bufname ^ "[_]") regname in
    let p = Sched.expand_dim p regname (string_of_int l) vec in
    let p = Sched.expand_dim p regname (string_of_int outer_extent) outer in
    let p = Sched.lift_alloc p regname ~n_lifts:5 in
    let p =
      Sched.autofission p ~gap:(Sched.After (regname ^ "[_] = _")) ~n_lifts:4
    in
    (* The fissions through loops the load does not use leave redundant
       wrapper loops around the copy nest; drop them. *)
    let p = Sched.remove_loop p wrap1 in
    let p = Sched.remove_loop p wrap2 in
    let p = Sched.replace p (Fmt.str "for %s in _: _" vec) kit.vld in
    Sched.set_memory p regname kit.mem
  in
  let p =
    stage_operand p ~bufname:"Ac" ~regname:"A_reg" ~vec:"itt" ~outer:"it"
      ~outer_extent:(mr / l) ~wrap1:"jt" ~wrap2:"jtt"
  in
  let p =
    stage_operand p ~bufname:"Bc" ~regname:"B_reg" ~vec:"jtt" ~outer:"jt"
      ~outer_extent:(nr / l)
      ~wrap1:"for it in _: _ #1" ~wrap2:"for itt in _: _ #0"
  in
  let tr = record "bind_expr: Ac and Bc operands in vector registers" ~figure:"Fig. 9" p tr in

  (* v5 — reorder so B access is sequential; map the arithmetic onto the
     lane-indexed FMA (Fig. 10) *)
  let p = Sched.reorder_loops p "jtt it" in
  let p = Sched.replace p "for itt in _: _" fma_lane in
  let tr = record "replace: lane-indexed FMA" ~figure:"Fig. 10" p tr in

  (* v6 — unroll the operand loads (Fig. 11) *)
  let p = Sched.unroll_loop p "it" in
  let p = Sched.unroll_loop p "jt" in
  let p = Sched.simplify p in
  let tr = record "unroll_loop: operand loads" ~figure:"Fig. 11" p tr in
  tr
