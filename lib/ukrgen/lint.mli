(** Static lint sweep over the generated kernel family.

    Instantiates {!Exo_check.Vlint} for each kit (register budget and
    register-memory predicate from {!Exo_isa.Memories}) and derives the
    expected steady-state census from the schedule template, then checks
    every kernel of {!Family.paper_shapes} on every kit plus the
    {!Variants} schedules — all without running the simulator. The Fig. 12
    pin: the 8×12 f32 packed kernel must show 5 vector loads + 24 fmla per
    k iteration and at most 32 live vector registers. *)

(** The {!Exo_check.Vlint.target} for a kit: vector memories are the ISA
    register memories; the budget is the architectural register file. *)
val target_of_kit : Kits.t -> Exo_check.Vlint.target

(** Expected steady-state census of a family kernel, derived from the
    schedule template ([None] for [Scalar] kernels, whose census is not
    pinned). For the packed template on [mr]×[nr] with [l] lanes:
    [mr/l + nr/l] loads and [(mr/l)·nr] lane-indexed fmas per k iteration —
    5 loads + 24 fmas at 8×12 f32 (Fig. 12). *)
val expected_census :
  Kits.t -> Family.style -> mr:int -> nr:int -> Exo_check.Vlint.census option

(** The full expectation for a family kernel: census as above, scalar data
    ops forbidden in symbolic loops unless the style is [Scalar], and [C]
    the only writable argument. *)
val expect_of :
  Kits.t -> Family.style -> mr:int -> nr:int -> Exo_check.Vlint.expect

(** One linted kernel: which kit, a human label (shape + template), and the
    {!Exo_check.Vlint} report. *)
type entry = { kit_name : string; label : string; report : Exo_check.Vlint.report }

type outcome = {
  entries : entry list;
  skipped : (string * string) list;
      (** (label, reason) for kit/shape/variant combinations whose schedule
          does not apply (capability or divisibility), not lint failures *)
}

(** Lint the paper family and the variants on the given kits
    (default {!Kits.all}). Kernels are generated and checked in parallel on
    [jobs] domains (default {!Exo_par.Pool.default_jobs}); the outcome is
    identical — entries in the original nested-loop order — for every
    [jobs]. *)
val run : ?kits:Kits.t list -> ?jobs:int -> unit -> outcome

val all_ok : outcome -> bool

(** Count of failed entries (0 iff [all_ok] modulo empty sweeps). *)
val failures : outcome -> int

val pp_entry : Format.formatter -> entry -> unit
val pp_outcome : Format.formatter -> outcome -> unit
