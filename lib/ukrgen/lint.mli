(** Static lint sweep over the generated kernel family.

    Instantiates {!Exo_check.Vlint} for each kit (register budget and
    register-memory predicate from {!Exo_isa.Memories}) and derives the
    expected steady-state census from the schedule template, then checks
    every kernel of {!Family.paper_shapes} on every kit plus the
    {!Variants} schedules — all without running the simulator. The Fig. 12
    pin: the 8×12 f32 packed kernel must show 5 vector loads + 24 fmla per
    k iteration and at most 32 live vector registers. *)

(** The {!Exo_check.Vlint.target} for a kit: vector memories are the ISA
    register memories; the budget is the architectural register file. *)
val target_of_kit : Kits.t -> Exo_check.Vlint.target

(** Expected steady-state census of a family kernel, derived from the
    schedule template ([None] for [Scalar] kernels, whose census is not
    pinned). For the packed template on [mr]×[nr] with [l] lanes:
    [mr/l + nr/l] loads and [(mr/l)·nr] lane-indexed fmas per k iteration —
    5 loads + 24 fmas at 8×12 f32 (Fig. 12). *)
val expected_census :
  Kits.t -> Family.style -> mr:int -> nr:int -> Exo_check.Vlint.census option

(** The full expectation for a family kernel: census as above, scalar data
    ops forbidden in symbolic loops unless the style is [Scalar], and [C]
    the only writable argument. *)
val expect_of :
  Kits.t -> Family.style -> mr:int -> nr:int -> Exo_check.Vlint.expect

(** One linted kernel: which kit, a human label (shape + template), and the
    {!Exo_check.Vlint} report. *)
type entry = { kit_name : string; label : string; report : Exo_check.Vlint.report }

type outcome = {
  entries : entry list;
  skipped : (string * string) list;
      (** (label, reason) for kit/shape/variant combinations whose schedule
          does not apply (capability or divisibility), not lint failures *)
}

(** Lint the paper family and the variants on the given kits
    (default {!Kits.all}). Kernels are generated and checked in parallel on
    [jobs] domains (default {!Exo_par.Pool.default_jobs}); the outcome is
    identical — entries in the original nested-loop order — for every
    [jobs]. *)
val run : ?kits:Kits.t list -> ?jobs:int -> unit -> outcome

val all_ok : outcome -> bool

(** Count of failed entries (0 iff [all_ok] modulo empty sweeps). *)
val failures : outcome -> int

val pp_entry : Format.formatter -> entry -> unit
val pp_outcome : Format.formatter -> outcome -> unit

(** {1 The [--tiers] sweep: translation validation of the execution tiers}

    For every (mr', nr') entry of a kit's monomorphized kernel table
    (mr' ∈ 1..mr, nr' ∈ 1..nr), generate the kernel, lower it, and run
    {!Exo_check.Tierlint} over its access summary; f32 entries are also run
    through the dynamic integer certification
    ({!Exo_interp.Compile.probe_ukr_ba}) so static and dynamic verdicts can
    be cross-checked — a statically proved entry whose probe rejects is a
    disagreement (and a bug in one of the two). *)

(** One validated table entry. [te_probe]: the dynamic certificate's
    verdict, [None] for non-f32 kits (the probe buffers are f32). *)
type tier_entry = {
  te_kit : string;
  te_mr : int;
  te_nr : int;
  te_report : Exo_check.Tierlint.report;
  te_probe : bool option;
}

type tier_kit_summary = {
  tk_kit : string;
  tk_total : int;
  tk_proved : int;
  tk_disagreements : int;
      (** statically proved entries whose dynamic probe rejected *)
}

type tiers_outcome = {
  tier_entries : tier_entry list;
  tier_kits : tier_kit_summary list;
}

(** Validate the full (mr × nr) table (default 8×12 — 96 entries) on the
    given kits (default {!Kits.all}), fanned out on [jobs] domains with a
    width-invariant outcome, like {!run}. *)
val run_tiers :
  ?kits:Kits.t list -> ?jobs:int -> ?mr:int -> ?nr:int -> unit -> tiers_outcome

(** Entries not fully proved, across all kits. *)
val tiers_unproved : tiers_outcome -> int

(** Every entry of every kit proved, and no static/dynamic disagreement. *)
val tiers_ok : tiers_outcome -> bool

val pp_tier_entry : Format.formatter -> tier_entry -> unit

(** Failures (if any), then the per-kit one-line summaries the CI gate
    greps: ["KIT: proved P/T, unproved_entries U, probe_disagreements D"]. *)
val pp_tiers : Format.formatter -> tiers_outcome -> unit

(** The per-entry verdict document ([ukrgen lint --tiers --json]), carrying
    the same ["meta"] block (schema version, git commit, host cores) as the
    BENCH_*.json files, from the shared {!Exo_obs.Obs.Meta} writer. *)
val tiers_json : tiers_outcome -> string
