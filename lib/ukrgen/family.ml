(** Micro-kernel family generation (Section III-B).

    The paper's answer to edge cases is a *collection* of generated kernels,
    one per (MR, NR) the GEMM driver needs, instead of one monolithic kernel
    with fringe logic. [generate] picks a schedule template from the shape
    and the target kit's instruction inventory:

    - [Packed]: MR and NR both multiples of the vector length, lane-indexed
      FMA available — the Section III schedule (Figs. 6–11).
    - [PackedBcast]: MR a multiple of the vector length, any NR — vectorize
      i only and broadcast the B element ([vfmaq_n_f32], or
      [set1] + element-wise FMA on ISAs without a scalar-FMA form, which is
      exactly the AVX-512 retargeting of Section III-C).
    - [Row]: MR = 1, NR a multiple of the vector length — vectorize j
      (C's leading dimension is MR = 1, so the j direction is unit stride)
      and broadcast the A element.
    - [Scalar]: anything else — specialization by partial evaluation only.

    The paper's ResNet50/VGG16 runs use
    8×12, 8×8, 8×4, 4×12, 4×8, 4×4, 1×12 and 1×8 ({!paper_family}). *)

open Exo_ir
module Sched = Exo_sched.Sched
module Obs = Exo_obs.Obs

type style = Packed | PackedBcast | Row | Scalar

let style_name = function
  | Packed -> "packed"
  | PackedBcast -> "packed-bcast"
  | Row -> "row"
  | Scalar -> "scalar"

type kernel = {
  mr : int;
  nr : int;
  kit : Kits.t;
  style : style;
  proc : Ir.proc;  (** signature: (KC, alpha, Ac, Bc, beta, C) *)
  provenance : Obs.Provenance.entry list;
      (** how [proc] was made: every primitive applied (cursor pattern, IR
          node delta, certificate outcome) and every macro-step marker *)
}

let pick_style (kit : Kits.t) ~mr ~nr : style =
  let l = kit.lanes in
  if mr mod l = 0 && nr mod l = 0 && kit.fma_lane <> None then Packed
  else if mr mod l = 0 then PackedBcast
  else if mr = 1 && nr mod l = 0 then Row
  else Scalar

(* ------------------------------------------------------------------ *)
(* Schedule templates                                                  *)

let base (kit : Kits.t) ~mr ~nr : Ir.proc =
  let p = Source.ukernel_ref_simple ~dt:kit.dt () in
  let ident = String.map (function '-' -> '_' | c -> c) kit.name in
  let p = Sched.rename p (Fmt.str "uk_%dx%d_%s" mr nr ident) in
  let p = Sched.partial_eval p [ ("MR", mr); ("NR", nr) ] in
  Obs.Provenance.mark_step "partial_eval: specialize MR, NR";
  p

(** Stage the C tile: divide the copy loops, reshape, vectorize. [cdim] is
    the C_reg dimension carrying the vector lanes (1 in the packed
    schedules, 0 in the row schedule). *)
let stage_c (kit : Kits.t) p ~window ~cdim ~loopname =
  let l = kit.lanes in
  let p = Sched.stage_mem p "for k in _: _" window "C_reg" in
  let inner = loopname ^ "i" in
  let p = Sched.divide_loop p loopname l (loopname ^ "o", inner) ~tail:Sched.Perfect in
  let p = Sched.divide_loop p loopname l (loopname ^ "o", inner) ~tail:Sched.Perfect in
  let p = Sched.divide_dim p "C_reg" cdim l in
  let p = Sched.replace p (Fmt.str "for %s in _: _" inner) kit.vld in
  let p = Sched.replace p (Fmt.str "for %s in _: _" inner) kit.vst in
  Sched.set_memory p "C_reg" kit.mem

(** The full packed schedule (Section III / Fig. 11), renamed with the kit
    suffix for emission alongside other targets' kernels. *)
let packed (kit : Kits.t) ~mr ~nr : Ir.proc =
  let ident = String.map (function '-' -> '_' | c -> c) kit.name in
  Sched.rename (Steps.final (Steps.packed ~kit ~mr ~nr)) (Fmt.str "uk_%dx%d_%s" mr nr ident)

(** MR vectorized, B broadcast per (k, j). *)
let packed_bcast (kit : Kits.t) ~mr ~nr : Ir.proc =
  let l = kit.lanes in
  let p = base kit ~mr ~nr in
  let p = Sched.divide_loop p "i" l ("it", "itt") ~tail:Sched.Perfect in
  Obs.Provenance.mark_step "divide_loop: vectorize i";
  let p = stage_c kit p ~window:(Fmt.str "C[0:%d, 0:%d]" nr mr) ~cdim:1 ~loopname:"s1" in
  Obs.Provenance.mark_step "stage_mem: C tile in vector registers";
  (* A operand staging, as in the packed schedule but with only the j loop
     between k and the tile loops. *)
  let p = Sched.bind_expr p "Ac[_]" "A_reg" in
  let p = Sched.expand_dim p "A_reg" (string_of_int l) "itt" in
  let p = Sched.expand_dim p "A_reg" (string_of_int (mr / l)) "it" in
  (* with NR = 1 the j loop was inlined away by simplification, so the nest
     is one loop shallower *)
  let has_j = nr > 1 in
  let p = Sched.lift_alloc p "A_reg" ~n_lifts:(if has_j then 4 else 3) in
  let p =
    Sched.autofission p ~gap:(Sched.After "A_reg[_] = _")
      ~n_lifts:(if has_j then 3 else 2)
  in
  let p = if has_j then Sched.remove_loop p "j" else p in
  let p = Sched.replace p "for itt in _: _" kit.vld in
  let p = Sched.set_memory p "A_reg" kit.mem in
  Obs.Provenance.mark_step "bind_expr: A operand in vector registers";
  (* Arithmetic: scalar-FMA when the ISA has one, otherwise broadcast B
     into a register and use the element-wise FMA (the AVX-512 path). *)
  let p =
    match kit.fma_scalar_r with
    | Some fma -> Sched.replace p "for itt in _: _" fma
    | None ->
        let p = Sched.bind_expr_bcast p "Bc[_]" "B_bcast" in
        let p = Sched.replace p "for l in _: _" kit.bcast in
        let p = Sched.set_memory p "B_bcast" kit.mem in
        Sched.replace p "for itt in _: _" kit.fma_vv
  in
  Obs.Provenance.mark_step "replace: broadcast-style FMA";
  let p = Sched.unroll_loop p "it" in
  let p = Sched.simplify p in
  Obs.Provenance.mark_step "unroll_loop + simplify";
  p

(** MR = 1: vectorize j, broadcast the A element. *)
let row (kit : Kits.t) ~nr : Ir.proc =
  let l = kit.lanes in
  let p = base kit ~mr:1 ~nr in
  (* partial_eval + simplify already inlined the single-iteration i loop *)
  let p = Sched.divide_loop p "j" l ("jt", "jtt") ~tail:Sched.Perfect in
  Obs.Provenance.mark_step "divide_loop: vectorize j";
  let p = stage_c kit p ~window:(Fmt.str "C[0:%d, 0]" nr) ~cdim:0 ~loopname:"s0" in
  Obs.Provenance.mark_step "stage_mem: C tile in vector registers";
  (* B operand staging *)
  let p = Sched.bind_expr p "Bc[_]" "B_reg" in
  let p = Sched.expand_dim p "B_reg" (string_of_int l) "jtt" in
  let p = Sched.expand_dim p "B_reg" (string_of_int (nr / l)) "jt" in
  let p = Sched.lift_alloc p "B_reg" ~n_lifts:3 in
  let p = Sched.autofission p ~gap:(Sched.After "B_reg[_] = _") ~n_lifts:2 in
  let p = Sched.replace p "for jtt in _: _" kit.vld in
  let p = Sched.set_memory p "B_reg" kit.mem in
  Obs.Provenance.mark_step "bind_expr: B operand in vector registers";
  let p =
    match kit.fma_scalar with
    | Some fma -> Sched.replace p "for jtt in _: _" fma
    | None ->
        let p = Sched.bind_expr_bcast p "Ac[_]" "A_bcast" in
        let p = Sched.replace p "for l in _: _" kit.bcast in
        let p = Sched.set_memory p "A_bcast" kit.mem in
        Sched.replace p "for jtt in _: _" kit.fma_vv
  in
  Obs.Provenance.mark_step "replace: broadcast-style FMA";
  let p = Sched.unroll_loop p "jt" in
  let p = Sched.simplify p in
  Obs.Provenance.mark_step "unroll_loop + simplify";
  p

let scalar (kit : Kits.t) ~mr ~nr : Ir.proc =
  let p = Sched.simplify (base kit ~mr ~nr) in
  Obs.Provenance.mark_step "simplify";
  p

(* ------------------------------------------------------------------ *)

(** Static bounds certificate demanded of every emitted kernel: each buffer
    access [Proved] in range, zero [Unknown]s. The generated kernels are
    entirely affine, so anything short of a full proof is a generator bug. *)
let certify (p : Ir.proc) : Ir.proc =
  let t0 = Obs.now_us () in
  let r = Exo_check.Bounds.check_proc p in
  let cert_us = Obs.now_us () -. t0 in
  let failure =
    match (r.Exo_check.Bounds.violations, r.Exo_check.Bounds.unknowns) with
    | [], [] -> None
    | vs, us ->
        Some
          (Fmt.str "%s: bounds certificate failed: %a" p.Ir.p_name
             Fmt.(list ~sep:(any "; ") Exo_check.Bounds.pp_failure)
             (vs @ us))
  in
  if Obs.Provenance.collecting () then begin
    let n = Exo_sched.Common.node_count p in
    Obs.Provenance.(
      record
        (Prim
           {
             op = "bounds_certificate";
             pattern = None;
             nodes_before = n;
             nodes_after = n;
             cert_us;
             ok = failure = None;
             detail = failure;
           }))
  end;
  match failure with Some m -> raise (Sched.Sched_error m) | None -> p

(** How many provenance macro steps a (kit, style) schedule must record:
    the kit declares the packed pipeline's count; the in-repo templates are
    fixed shapes. CI cross-checks emitted sidecars against this. *)
let declared_steps (kit : Kits.t) (style : style) : int =
  match style with
  | Packed -> kit.Kits.sched_steps
  | PackedBcast | Row -> 6
  | Scalar -> 2

let generate ?(kit = Kits.neon_f32) ~mr ~nr () : kernel =
  if mr < 1 || nr < 1 then invalid_arg "Family.generate: mr and nr must be ≥ 1";
  let style = pick_style kit ~mr ~nr in
  let args =
    if Obs.enabled () then
      [
        ("kit", kit.Kits.name);
        ("shape", Printf.sprintf "%dx%d" mr nr);
        ("style", style_name style);
      ]
    else []
  in
  Obs.with_span ~args "family.generate" (fun () ->
      let proc, provenance =
        Obs.Provenance.collect (fun () ->
            let proc =
              match style with
              | Packed -> packed kit ~mr ~nr
              | PackedBcast -> packed_bcast kit ~mr ~nr
              | Row -> row kit ~nr
              | Scalar -> scalar kit ~mr ~nr
            in
            certify proc)
      in
      let declared = declared_steps kit style in
      let got = Obs.Provenance.step_count provenance in
      if got <> declared then
        raise
          (Sched.Sched_error
             (Fmt.str
                "%s %dx%d (%s): provenance records %d schedule steps, %d declared"
                kit.Kits.name mr nr (style_name style) got declared));
      { mr; nr; kit; style; proc; provenance })

(* ------------------------------------------------------------------ *)
(* Persistent generation (Exo_cache)                                   *)

module Store = Exo_cache.Store

(* A serialized generated kernel: the scheduled proc plus its provenance
   (pure data — primitive records and step markers). The kit itself is
   reattached by the reader; the key's kit digest guarantees it is the
   same kit the artifact was generated with. *)
type artifact = {
  fa_mr : int;
  fa_nr : int;
  fa_style : style;
  fa_proc : Ir.proc;
  fa_provenance : Obs.Provenance.entry list;
}

let artifact_abi = "family-v1"
let artifact_kind = "family"

let artifact_key (kit : Kits.t) ~mr ~nr =
  Store.key
    [
      artifact_abi;
      Sys.ocaml_version;
      kit.Kits.name;
      Kits.digest kit;
      string_of_int kit.Kits.sched_steps;
      string_of_int mr;
      string_of_int nr;
      "simple";
    ]

(* The cheap recheck gate a cache hit still passes: the full static bounds
   certificate, re-proved on the unmarshaled proc. *)
let recheck_ok (p : Ir.proc) : bool =
  let r = Exo_check.Bounds.check_proc p in
  r.Exo_check.Bounds.violations = [] && r.Exo_check.Bounds.unknowns = []

(** {!generate} through the ambient {!Exo_cache.Store}: a hit skips the
    whole schedule+certify pipeline but still re-proves the stored proc's
    bounds certificate before returning it (a stale or tampered artifact
    reads as a miss and is regenerated); a miss generates and persists.
    Without an ambient store this is exactly {!generate}. *)
let generate_cached ?(kit = Kits.neon_f32) ~mr ~nr () : kernel =
  match Store.ambient () with
  | None -> generate ~kit ~mr ~nr ()
  | Some st -> (
      let key = artifact_key kit ~mr ~nr in
      let hit =
        match Store.get st ~kind:artifact_kind ~key with
        | None -> None
        | Some (a : artifact) ->
            (* unmarshaled symbols carry another process's ids: raise the
               counter before any Sym.fresh so later ids cannot collide
               with (and alias) the artifact's binders *)
            Sym.ensure_above (Ir.proc_max_sym_id a.fa_proc);
            if
              a.fa_mr = mr && a.fa_nr = nr
              && a.fa_style = pick_style kit ~mr ~nr
              && recheck_ok a.fa_proc
            then
              Some
                {
                  mr;
                  nr;
                  kit;
                  style = a.fa_style;
                  proc = a.fa_proc;
                  provenance = a.fa_provenance;
                }
            else begin
              Store.remove st ~kind:artifact_kind ~key;
              None
            end
      in
      match hit with
      | Some k -> k
      | None ->
          let k = generate ~kit ~mr ~nr () in
          ignore
            (Store.put st ~kind:artifact_kind ~key
               {
                 fa_mr = mr;
                 fa_nr = nr;
                 fa_style = k.style;
                 fa_proc = k.proc;
                 fa_provenance = k.provenance;
               });
          k)

(** The kernel sizes the paper's evaluation uses (Section IV-C). *)
let paper_shapes = [ (8, 12); (8, 8); (8, 4); (4, 12); (4, 8); (4, 4); (1, 12); (1, 8) ]

let paper_family ?(kit = Kits.neon_f32) () : kernel list =
  List.map (fun (mr, nr) -> generate ~kit ~mr ~nr ()) paper_shapes
