(** Set-associative LRU cache simulator over stride-compressed traces.

    Checks the analytical blocking model's residency claims empirically: the
    byte-level address trace of the packed BLIS macro-kernel (packing,
    panel reads, C-tile updates) runs through a three-level LRU hierarchy
    and per-level miss counts come out, split by read/write with
    write-allocate fills and dirty-line writebacks.

    The default consumer ({!gemm_trace}) is stride-run compressed —
    O(lines touched) per run instead of O(elements) — which makes the
    cache ablation affordable on the real Carmel hierarchy at the paper's
    ≥1000³ problem sizes. The element-level path ({!gemm_trace_element},
    built on {!access}) is kept as the reference oracle; a qcheck property
    pins the two bit-identical on every statistic. *)

type rw = Read | Write

type level = {
  name : string;
  sets : int;
  assoc : int;
  line : int;
  data : int array;
      (** [sets * assoc] ints, set-major, one packed word per way:
          [((tag*2 + dirty) << 44) | stamp] when valid, negative when
          invalid *)
  sigs : int array;
      (** tag-signature filter for wide sets: four 15-bit lanes per word,
          SWAR-scanned so a hit reads ~assoc/4 words; candidates are
          verified against [data], so it is a pure filter *)
  sig_words : int;  (** ⌈assoc/4⌉ when the filter is engaged (assoc > 4), else 0 *)
  line_shift : int;  (** log2 line when a power of two, else -1 *)
  set_mask : int;  (** sets - 1 when a power of two, else -1 *)
  set_shift : int;  (** log2 sets when a power of two, else -1 *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  mutable writebacks : int;  (** dirty lines evicted from this level *)
  mutable pending_wb : int;
      (** line base address evicted dirty by the last lookup, -1 if none —
          consumed (and reset) by the hierarchy cascade *)
}

val create_level : name:string -> Exo_isa.Machine.cache -> level

(** One reference; [true] on hit. LRU replacement; a write marks the line
    dirty, and a dirty victim leaves its address in [pending_wb]. *)
val access_level : ?rw:rw -> level -> int -> bool

type hierarchy = {
  l1 : level;
  l2 : level;
  l3 : level;
  mutable dram_lines : int;
  mutable dram_wb : int;  (** dirty lines written back to memory *)
  mutable w_refs : int;  (** references that were stores *)
  mutable in_kernel : bool;
  mutable krefs : int;
  mutable kl1_miss : int;
}

val create : Exo_isa.Machine.t -> hierarchy

(** One element reference cascading through the hierarchy (the oracle
    path): a level that misses fetches from the next (write-allocate), and
    dirty victims write back on their way out. *)
val access : ?rw:rw -> hierarchy -> int -> unit

(** [access_run h ~rw ~kernel ~base ~stride_bytes ~count ()] — a stride-run
    of [count] references, consumed in O(lines touched): within a run every
    element after the first on a cache line is a guaranteed L1 hit and is
    accounted with a counter bump instead of a tag-array walk. Equivalent,
    statistic for statistic, to [count] calls of {!access}. *)
val access_run :
  hierarchy ->
  ?rw:rw ->
  ?kernel:bool ->
  base:int ->
  stride_bytes:int ->
  count:int ->
  unit ->
  unit

type stats = {
  refs : int;
  l1_miss : int;
  l2_miss : int;
  l3_miss : int;
  dram : int;  (** lines fetched from memory — the read-bandwidth proxy *)
  kernel_refs : int;
  kernel_l1_miss : int;
  writes : int;  (** references that were stores *)
  l1_wb : int;  (** dirty lines evicted from L1 *)
  l2_wb : int;
  l3_wb : int;
  dram_wb : int;  (** dirty lines written back to memory *)
}

val stats : hierarchy -> stats

(** Micro-kernel-phase L1 miss ratio — the number the analytical model's
    "Bc sliver stays in L1" story predicts to be tiny. *)
val kernel_l1_rate : stats -> float

(** Predicted DRAM traffic in bytes under the machine's L3 line size:
    lines fetched from memory plus dirty lines written back — the number
    the run ledger's attribution table reports next to measured GFLOPS. *)
val dram_traffic_bytes : Exo_isa.Machine.t -> stats -> int

val pp_stats : Format.formatter -> stats -> unit

(** The canonical packed-BLIS address trace of an m×n×k FP32 GEMM as
    stride-run events, in run-maximal order (packing row copies; each
    micro-kernel call streams its Ar/Br panels as single contiguous runs
    and the C tile row by row). Both simulation paths below consume the
    element expansion of exactly this stream. *)
val emit_gemm_trace :
  mc:int -> kc:int -> nc:int -> mr:int -> nr:int -> m:int -> n:int -> k:int ->
  emit:(kernel:bool -> rw:rw -> base:int -> stride:int -> count:int -> unit) ->
  unit

(** Simulate an m×n×k FP32 GEMM under a blocking with an mr×nr kernel:
    packing reads/writes (BLIS panel layout) and per-call panel/C-tile
    accesses, through the compressed stride-run path. *)
val gemm_trace :
  Exo_isa.Machine.t ->
  mc:int -> kc:int -> nc:int -> mr:int -> nr:int -> m:int -> n:int -> k:int ->
  stats

(** The same trace replayed element by element — the reference oracle the
    compressed path is pinned against (identical on every statistic). *)
val gemm_trace_element :
  Exo_isa.Machine.t ->
  mc:int -> kc:int -> nc:int -> mr:int -> nr:int -> m:int -> n:int -> k:int ->
  stats
