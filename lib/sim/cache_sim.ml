(** A set-associative LRU cache simulator over stride-compressed traces.

    The analytical blocking model ({!Exo_blis.Analytical}) *asserts* that its
    (mc, kc, nc) keep the Bc sliver in L1, the Ac block in L2 and the Bc
    panel in L3. This module checks that claim empirically: it simulates the
    byte-level address trace of the packed BLIS macro-kernel — packing
    writes, per-call panel reads, C-tile updates — through a three-level
    LRU hierarchy and reports per-level miss counts, split by read/write
    with write-allocate fills and dirty-line writebacks.

    Two trace consumers share one canonical trace:

    - the COMPRESSED path ({!access_run}) consumes stride-run events
      ([base, stride, count]) in O(lines touched) instead of O(elements):
      within a run, every element after the first on a cache line is a
      guaranteed L1 hit (the line is most-recently-used, nothing intervened)
      and is accounted with a counter bump instead of a tag-array walk. This
      is what makes the ablation affordable on the real Carmel hierarchy at
      the paper's ≥1000³ sizes;
    - the ELEMENT-LEVEL path ({!access}) replays the same events one
      reference at a time through the full lookup — the reference oracle.
      A qcheck property pins the two bit-identical on every statistic.

    Replacement decisions are identical by construction: both paths run the
    same lookup code (a single-pass hit-or-evict way scan for narrow sets,
    a SWAR signature filter + victim scan for wide ones), and the
    compressed path's collapsed hits touch no LRU state (re-stamping an
    already-MRU line cannot change any later eviction). *)

type rw = Read | Write

type level = {
  name : string;
  sets : int;
  assoc : int;
  line : int;
  data : int array;
      (** [sets * assoc] ints, set-major, ONE word per way packing
          everything the scan needs: [((tag*2 + dirty) << 44) | stamp] when
          valid (≥ 0), [(-1) << 44] when invalid (< 0, and its stamp field
          reads as 0 — exactly the age an untouched way has, so victim
          selection is unchanged). A 16-way set is 128 contiguous bytes —
          two host cache lines instead of six across three arrays — which
          is what makes the L2/L3 scans every simulated L1 miss pays cheap
          on the host. Stamps are bounded by {!age_mask} (~1.7e13
          references; the clock guard raises past it). *)
  sigs : int array;
      (** Tag-signature filter for wide sets ([sig_words] > 0): per set,
          ⌈assoc/4⌉ words of four 15-bit lanes, lane [w mod 4] of word
          [w/4] holding way [w]'s low tag bits. A lookup SWAR-scans four
          ways per word for a candidate lane and verifies it against
          [data] — so a hit in a 16-way set reads ~4 words instead of 16,
          and the full age scan runs only on true misses. Signatures are
          a pure filter (false positives rejected by the verify, zero
          lanes never missed), so replacement semantics are untouched. *)
  sig_words : int;  (** ⌈assoc/4⌉ when the filter is engaged (assoc > 4), else 0 *)
  line_shift : int;  (** log2 line when the line size is a power of two, else -1 *)
  set_mask : int;  (** sets - 1 when the set count is a power of two, else -1 *)
  set_shift : int;  (** log2 sets when a power of two, else -1 *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  mutable writebacks : int;  (** dirty lines evicted from this level *)
  mutable pending_wb : int;  (** line base address evicted dirty by the last
                                 lookup, -1 if none — consumed by the caller *)
}

let log2_pow2 n = if n > 0 && n land (n - 1) = 0 then
    (let rec go i = if 1 lsl i = n then i else go (i + 1) in go 0)
  else -1

(* way-word layout: stamp in the low 44 bits, dirty at bit 44, tag above *)
let age_bits = 44
let age_mask = (1 lsl age_bits) - 1
let dirty_bit = 1 lsl age_bits
let invalid_word = -1 lsl age_bits

(* signature lanes: 4 × 15 bits per word (63-bit OCaml ints) *)
let lane_bits = 15
let lane_mask = (1 lsl lane_bits) - 1
let bcast_lo = 1 lor (1 lsl 15) lor (1 lsl 30) lor (1 lsl 45)
let bcast_hi = bcast_lo lsl (lane_bits - 1)

let create_level ~name (c : Exo_isa.Machine.cache) : level =
  let sets = Exo_isa.Machine.cache_sets c in
  let sig_words = if c.assoc > 4 then (c.assoc + 3) / 4 else 0 in
  {
    name;
    sets;
    assoc = c.assoc;
    line = c.line_bytes;
    data = Array.make (sets * c.assoc) invalid_word;
    sigs = Array.make (max 1 (sets * sig_words)) 0;
    sig_words;
    line_shift = log2_pow2 c.line_bytes;
    set_mask = (if log2_pow2 sets >= 0 then sets - 1 else -1);
    set_shift = log2_pow2 sets;
    clock = 0;
    accesses = 0;
    misses = 0;
    writebacks = 0;
    pending_wb = -1;
  }

let[@inline] block_of (l : level) (addr : int) : int =
  if l.line_shift >= 0 then addr lsr l.line_shift else addr / l.line

(* Single-pass hit-or-evict scan as a top-level tail-recursive int loop —
   all state lives in registers: no ref cells and no local closure (without
   flambda either would be a minor-heap allocation per lookup, and this is
   THE hot loop; a local [let rec] capturing [data]/[limit]/[tag] still
   allocates its closure). One packed word is loaded per way. Returns the
   hit offset, or [lnot victim] (< 0) after a full scan — the victim is the
   first way with the minimal stamp, the reference LRU order (an invalid
   way's stamp field reads 0, below every real stamp). The caller
   guarantees offsets stay inside [base, limit) ⊆ [0, sets*assoc), so the
   unsafe accesses hold. *)
let rec scan_ways data limit tag o hit victim oldest =
  if o >= limit then if hit >= 0 then hit else lnot victim
  else
    let w = Array.unsafe_get data o in
    (* valid word asr 45 = tag; the invalid word asr 45 = -1, and tags are
       ≥ 0, so the shifted compare also rejects invalid ways. Both the hit
       and the running-minimum updates are mask selects — the way a hit or
       a fresher stamp lands on is data-dependent, so a conditional here
       mispredicts constantly, and this loop runs once per way per lookup. *)
    let x = (w asr (age_bits + 1)) lxor tag in
    let hm = lnot ((x lor -x) asr 62) in
    (* hm = -1 iff the tag matches: [x lor -x] has its sign bit set for
       any x ≠ 0 (including the negative x an invalid way produces) and
       clear only for x = 0 *)
    let hit = hit lxor ((hit lxor o) land hm) in
    let age = w land age_mask in
    let am = (age - oldest) asr 62 in
    (* am = -1 iff age < oldest: both are ≤ age_mask, the difference
       cannot overflow *)
    let victim = victim lxor ((victim lxor o) land am) in
    let oldest = oldest lxor ((oldest lxor age) land am) in
    scan_ways data limit tag (o + 1) hit victim oldest

(* Victim-only scan for the signature path, where "no candidate lane"
   already proved the tag absent: the first way with the minimal stamp. *)
let rec scan_victim data limit o victim oldest =
  if o >= limit then victim
  else
    let age = Array.unsafe_get data o land age_mask in
    let am = (age - oldest) asr 62 in
    let victim = victim lxor ((victim lxor o) land am) in
    let oldest = oldest lxor ((oldest lxor age) land am) in
    scan_victim data limit (o + 1) victim oldest

(* Find the way holding [tag] via the signature filter: SWAR zero-lane
   detection over ⌈assoc/4⌉ words — [x - lo) land (lnot x) land hi] flags
   every lane equal to the broadcast tag signature (zero lanes are never
   missed; a borrow out of a zero lane can at worst flag a neighbouring
   lane, which the verify against [data] rejects, like any low-bits
   alias). Returns the data offset of the hit way, or -1. [base]/[limit]
   bound the set's data words, [sbase] its signature words. *)
let swar_find data sigs tag base limit sbase nwords =
  let t = (tag land lane_mask) * bcast_lo in
  let rec words i =
    if i >= nwords then -1
    else
      let x = Array.unsafe_get sigs (sbase + i) lxor t in
      let cand = (x - bcast_lo) land lnot x land bcast_hi in
      if cand = 0 then words (i + 1) else lanes i cand
  and lanes i cand =
    if cand = 0 then words (i + 1)
    else
      let b = cand land -cand in
      let lane =
        if b >= 1 lsl 44 then if b >= 1 lsl 59 then 3 else 2
        else if b >= 1 lsl 29 then 1
        else 0
      in
      let o = base + (i * 4) + lane in
      (* padding lanes of a non-multiple-of-4 set stay zero and can alias
         a zero signature; they map past [limit] and are skipped *)
      if o < limit && Array.unsafe_get data o asr (age_bits + 1) = tag then o
      else lanes i (cand lxor b)
  in
  words 0

(* Record [tag]'s signature for the way at data offset [v]. *)
let sig_fill sigs tag base v sbase =
  let w = v - base in
  let si = sbase + (w asr 2) in
  let sh = (w land 3) * lane_bits in
  Array.unsafe_set sigs si
    ((Array.unsafe_get sigs si land lnot (lane_mask lsl sh))
    lor ((tag land lane_mask) lsl sh))

(** One reference to the cache [block]; returns whether it hit. A single
    pass over the set both finds the hit way and tracks the LRU victim (the
    first way with the minimal stamp, exactly the two-pass reference
    order). On a miss the victim is filled; if it was dirty its line base
    address is left in [pending_wb] for the caller to propagate. *)
let access_block (l : level) (block : int) (rw : rw) : bool =
  l.accesses <- l.accesses + 1;
  l.clock <- l.clock + 1;
  if l.clock > age_mask then
    invalid_arg "Cache_sim: reference clock exceeded the packed stamp range";
  let set = if l.set_mask >= 0 then block land l.set_mask else block mod l.sets in
  let tag = if l.set_shift >= 0 then block asr l.set_shift else block / l.sets in
  let data = l.data in
  let base = set * l.assoc in
  let limit = base + l.assoc in
  let r =
    if l.sig_words = 0 then scan_ways data limit tag base (-1) base max_int
    else
      let h = swar_find data l.sigs tag base limit (set * l.sig_words) l.sig_words in
      if h >= 0 then h else lnot (scan_victim data limit base base max_int)
  in
  if r >= 0 then begin
    let w = Array.unsafe_get data r in
    let w = (w land lnot age_mask) lor l.clock in
    Array.unsafe_set data r (match rw with Write -> w lor dirty_bit | Read -> w);
    true
  end
  else begin
    l.misses <- l.misses + 1;
    let v = lnot r in
    let w = Array.unsafe_get data v in
    if w >= 0 && w land dirty_bit <> 0 then begin
      l.writebacks <- l.writebacks + 1;
      let victim_block = ((w asr (age_bits + 1)) * l.sets) + set in
      l.pending_wb <- victim_block * l.line
    end;
    let filled = (tag lsl (age_bits + 1)) lor l.clock in
    Array.unsafe_set data v (match rw with Write -> filled lor dirty_bit | Read -> filled);
    if l.sig_words > 0 then sig_fill l.sigs tag base v (set * l.sig_words);
    false
  end

(** One reference at byte [addr]; returns whether it hit. *)
let access_level ?(rw = Read) (l : level) (addr : int) : bool =
  access_block l (block_of l addr) rw

(** Silent probe: is the line holding [addr] resident? If so, mark it dirty
    (a writeback from the level above landing here). No counters, no LRU
    update — writeback traffic must not perturb the replacement state the
    element-level oracle defines. *)
let probe_mark_dirty (l : level) (addr : int) : bool =
  let block = block_of l addr in
  let set = if l.set_mask >= 0 then block land l.set_mask else block mod l.sets in
  let tag = if l.set_shift >= 0 then block asr l.set_shift else block / l.sets in
  let data = l.data in
  let base = set * l.assoc in
  let limit = base + l.assoc in
  let r =
    if l.sig_words = 0 then scan_ways data limit tag base (-1) base max_int
    else swar_find data l.sigs tag base limit (set * l.sig_words) l.sig_words
  in
  if r >= 0 then begin
    Array.unsafe_set data r (Array.unsafe_get data r lor dirty_bit);
    true
  end
  else false

type hierarchy = {
  l1 : level;
  l2 : level;
  l3 : level;
  mutable dram_lines : int;
  mutable dram_wb : int;  (** dirty lines written back to memory *)
  mutable w_refs : int;  (** references that were stores *)
  mutable in_kernel : bool;  (** inside the micro-kernel (vs packing) *)
  mutable krefs : int;
  mutable kl1_miss : int;
}

let create (m : Exo_isa.Machine.t) : hierarchy =
  {
    l1 = create_level ~name:"L1" m.Exo_isa.Machine.l1;
    l2 = create_level ~name:"L2" m.Exo_isa.Machine.l2;
    l3 = create_level ~name:"L3" m.Exo_isa.Machine.l3;
    dram_lines = 0;
    dram_wb = 0;
    w_refs = 0;
    in_kernel = false;
    krefs = 0;
    kl1_miss = 0;
  }

(* A dirty line evicted from [l1] (resp. [l2]) is written back to the next
   level that still holds it; beyond the LLC it is memory write traffic.
   Dirty data only ever enters a lower level through this path — a write
   miss allocates dirty in L1 and clean below. *)
let writeback_from_l1 (h : hierarchy) (addr : int) : unit =
  if not (probe_mark_dirty h.l2 addr) then
    if not (probe_mark_dirty h.l3 addr) then h.dram_wb <- h.dram_wb + 1

let writeback_from_l2 (h : hierarchy) (addr : int) : unit =
  if not (probe_mark_dirty h.l3 addr) then h.dram_wb <- h.dram_wb + 1

(* The below-L1 part of a reference that missed L1: drain the L1 victim
   writeback, then fetch through L2/L3 (write-allocate — the L1 fill is
   what carries the dirty bit, so the lower lookups are plain reads). *)
let fill_below_l1 (h : hierarchy) (addr : int) : unit =
  if h.l1.pending_wb >= 0 then begin
    writeback_from_l1 h h.l1.pending_wb;
    h.l1.pending_wb <- -1
  end;
  if not (access_block h.l2 (block_of h.l2 addr) Read) then begin
    if h.l2.pending_wb >= 0 then begin
      writeback_from_l2 h h.l2.pending_wb;
      h.l2.pending_wb <- -1
    end;
    if not (access_block h.l3 (block_of h.l3 addr) Read) then begin
      if h.l3.pending_wb >= 0 then begin
        h.dram_wb <- h.dram_wb + 1;
        h.l3.pending_wb <- -1
      end;
      h.dram_lines <- h.dram_lines + 1
    end
  end

(** One line-granule reference cascading through the hierarchy: a level
    that misses fetches from the next (write-allocate — stores fetch the
    line too), and dirty victims write back on their way out. *)
let access_line (h : hierarchy) (addr : int) (rw : rw) : bool =
  let l1_hit = access_block h.l1 (block_of h.l1 addr) rw in
  if not l1_hit then fill_below_l1 h addr;
  l1_hit

(** The element-level reference path: one reference at [addr]. This is the
    oracle the compressed path is checked against. *)
let access ?(rw = Read) (h : hierarchy) (addr : int) : unit =
  (match rw with Write -> h.w_refs <- h.w_refs + 1 | Read -> ());
  let l1_hit = access_line h addr rw in
  if h.in_kernel then begin
    h.krefs <- h.krefs + 1;
    if not l1_hit then h.kl1_miss <- h.kl1_miss + 1
  end

(** A stride-run event: [count] references at [base, base + stride_bytes,
    base + 2*stride_bytes, ...], all reads or all writes. Consumed in
    O(lines touched): each line gets one full lookup (the run's first
    reference on it); every further reference on the same line is a
    guaranteed L1 hit — the line is most-recently-used and nothing
    intervened — and is folded into the counters without a tag-array walk
    or an LRU re-stamp (re-stamping an already-MRU line cannot change any
    later replacement decision). Per-run counters are hoisted out of the
    line walk entirely, so the amortized cost per collapsed reference is a
    fraction of an add. Equivalent, statistic for statistic, to [count]
    calls of {!access} — the qcheck suite pins this. *)
let access_run (h : hierarchy) ?(rw = Read) ?(kernel = false) ~(base : int)
    ~(stride_bytes : int) ~(count : int) () : unit =
  if count < 0 || stride_bytes < 0 then
    invalid_arg "Cache_sim.access_run: negative count or stride";
  if count > 0 then begin
    (match rw with Write -> h.w_refs <- h.w_refs + count | Read -> ());
    if kernel then h.krefs <- h.krefs + count;
    let line = h.l1.line in
    (* the walks are tail-recursive int loops — lookup/miss tallies are
       accumulator arguments, not ref cells (which would be a minor-heap
       allocation per event without flambda); only the final pair per run
       event is allocated *)
    let lookups, misses =
      if stride_bytes = 0 then (1, if access_line h base rw then 0 else 1)
      else if stride_bytes >= line then begin
        (* every reference lands on its own line *)
        let rec go e misses =
          if e >= count then misses
          else
            go (e + 1)
              (if access_line h (base + (e * stride_bytes)) rw then misses
               else misses + 1)
        in
        (count, go 0 0)
      end
      else begin
        (* sub-line stride: walk line by line; addresses are monotonic so a
           line is never revisited once left — each iteration steps to
           exactly the next L1 block, so the block index is carried along
           instead of recomputed from the address, and the L1 lookup is
           made directly (the below-L1 cascade only runs on a miss). The
           per-line element count is a shift when the stride is a power of
           two (the f32/f64 element strides every GEMM trace uses). *)
        let sshift = log2_pow2 stride_bytes in
        let l1 = h.l1 in
        let rec go addr blk remaining lookups misses =
          if remaining <= 0 then (lookups, misses)
          else begin
            let miss =
              if access_block l1 blk rw then 0
              else begin
                fill_below_l1 h addr;
                1
              end
            in
            let gap = ((blk + 1) * line) - addr in
            let fit =
              if sshift >= 0 then ((gap - 1) asr sshift) + 1
              else ((gap - 1) / stride_bytes) + 1
            in
            let in_line = if fit < remaining then fit else remaining in
            go (addr + (in_line * stride_bytes)) (blk + 1)
              (remaining - in_line) (lookups + 1) (misses + miss)
          end
        in
        go base (block_of h.l1 base) count 0 0
      end
    in
    (* collapsed same-line hits: counted, no LRU traffic *)
    h.l1.accesses <- h.l1.accesses + (count - lookups);
    if kernel then h.kl1_miss <- h.kl1_miss + misses
  end

type stats = {
  refs : int;
  l1_miss : int;
  l2_miss : int;
  l3_miss : int;
  dram : int;
  kernel_refs : int;  (** micro-kernel phase only *)
  kernel_l1_miss : int;
  writes : int;  (** references that were stores *)
  l1_wb : int;  (** dirty lines evicted from L1 *)
  l2_wb : int;
  l3_wb : int;
  dram_wb : int;  (** dirty lines written back to memory *)
}

let stats (h : hierarchy) : stats =
  {
    refs = h.l1.accesses;
    l1_miss = h.l1.misses;
    l2_miss = h.l2.misses;
    l3_miss = h.l3.misses;
    dram = h.dram_lines;
    kernel_refs = h.krefs;
    kernel_l1_miss = h.kl1_miss;
    writes = h.w_refs;
    l1_wb = h.l1.writebacks;
    l2_wb = h.l2.writebacks;
    l3_wb = h.l3.writebacks;
    dram_wb = h.dram_wb;
  }

(** Kernel-phase L1 miss ratio — the number the analytical model's L1 story
    (the Bc sliver stays resident) predicts to be tiny. *)
let kernel_l1_rate (s : stats) : float =
  float_of_int s.kernel_l1_miss /. float_of_int (max 1 s.kernel_refs)

let dram_traffic_bytes (machine : Exo_isa.Machine.t) (s : stats) : int =
  (s.dram + s.dram_wb) * machine.Exo_isa.Machine.l3.Exo_isa.Machine.line_bytes

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "refs=%d (%.0f%% st) L1-miss=%.2f%% kernel-L1-miss=%.2f%% L2-miss=%d \
     L3-miss=%d DRAM-lines=%d+%dwb"
    s.refs
    (100.0 *. float_of_int s.writes /. float_of_int (max 1 s.refs))
    (100.0 *. float_of_int s.l1_miss /. float_of_int (max 1 s.refs))
    (100.0 *. kernel_l1_rate s)
    s.l2_miss s.l3_miss s.dram s.dram_wb

(* ------------------------------------------------------------------ *)
(* Observability: process-wide phase counters accumulated across trace
   runs (each [add]/[observe] is one atomic branch when tracing is off,
   and none of it feeds back into [stats] — the fast/oracle equivalence
   property is untouched). *)

module Obs = Exo_obs.Obs

let c_events = Obs.counter "sim.trace_events"
let c_refs = Obs.counter "sim.refs"
let c_l1_hits = Obs.counter "sim.l1_hits"
let c_l2_hits = Obs.counter "sim.l2_hits"
let c_l3_hits = Obs.counter "sim.l3_hits"
let c_dram = Obs.counter "sim.dram_lines"
let h_run = Obs.histogram "sim.run_elems"

(* hits per level out of the miss cascade: a reference that missed level N
   but not level N+1 hit level N+1 *)
let note_stats (s : stats) : unit =
  Obs.add c_refs s.refs;
  Obs.add c_l1_hits (s.refs - s.l1_miss);
  Obs.add c_l2_hits (s.l1_miss - s.l2_miss);
  Obs.add c_l3_hits (s.l2_miss - s.l3_miss);
  Obs.add c_dram s.dram

(* ------------------------------------------------------------------ *)
(* The packed-GEMM address trace                                        *)

(** The canonical packed-BLIS trace of an m×n×k FP32 GEMM under [blocking]
    with an mr×nr micro-kernel, as stride-run events. [emit ~kernel ~rw
    ~base ~stride ~count] receives every event; the element expansion of
    this stream IS the trace — both consumers ({!gemm_trace} and the
    element-level {!gemm_trace_element}) see the same canonical order.

    The order is run-maximal, matching how the BLIS routines actually
    stream memory rather than a per-element pairing:

    - pack B copies row-panel-wise: each of the kc rows of the Bc panel is
      read as one unit-stride run of nc elements, then written across the
      nr-wide packed panels (the pack routine's inner copy loops);
    - pack A copies row-wise: each of the mc rows is read as one
      unit-stride run of kc elements and written into its mr-wide panel
      (stride mr·s across the k index);
    - the micro-kernel phase — the vast majority of references — is pure
      long runs: the C tile row by row (unit stride, nr wide), and the Ar
      and Br packed panels each as ONE contiguous unit-stride run of
      kc·mr / kc·nr elements (panel-major layout makes consecutive k
      iterations adjacent). *)
let emit_gemm_trace ~(mc : int) ~(kc : int) ~(nc : int) ~(mr : int) ~(nr : int)
    ~(m : int) ~(n : int) ~(k : int)
    ~(emit :
       kernel:bool -> rw:rw -> base:int -> stride:int -> count:int -> unit) :
    unit =
  let s = 4 in
  (* disjoint base addresses *)
  let a_base = 0 in
  let b_base = a_base + (m * k * s) in
  let c_base = b_base + (k * n * s) in
  let packa_base = c_base + (m * n * s) in
  let packb_base = packa_base + (mc * kc * s) in
  let jc = ref 0 in
  while !jc < n do
    let ncb = min nc (n - !jc) in
    let pc = ref 0 in
    while !pc < k do
      let kcb = min kc (k - !pc) in
      (* progress span per (jc, pc) block — at paper-scale sizes these are
         the long-running units a trace viewer needs to see advance *)
      let sp_pc =
        if Obs.enabled () then
          Obs.begin_span
            ~args:[ ("jc", string_of_int !jc); ("pc", string_of_int !pc) ]
            "sim.pc_block"
        else Obs.none
      in
      (* pack B row-panel-wise: stream each B row in, write it across the
         nr-wide panels of the BLIS layout *)
      let b_panels = (ncb + nr - 1) / nr in
      for kk = 0 to kcb - 1 do
        emit ~kernel:false ~rw:Read
          ~base:(b_base + ((((!pc + kk) * n) + !jc) * s))
          ~stride:s ~count:ncb;
        for panel = 0 to b_panels - 1 do
          let w = min nr (ncb - (panel * nr)) in
          emit ~kernel:false ~rw:Write
            ~base:(packb_base + (((panel * kcb * nr) + (kk * w)) * s))
            ~stride:s ~count:w
        done
      done;
      let ic = ref 0 in
      while !ic < m do
        let mcb = min mc (m - !ic) in
        (* pack A row-wise into mr-wide panels *)
        for i = 0 to mcb - 1 do
          let panel = i / mr and ii = i mod mr in
          let w = min mr (mcb - (panel * mr)) in
          emit ~kernel:false ~rw:Read
            ~base:(a_base + ((((!ic + i) * k) + !pc) * s))
            ~stride:s ~count:kcb;
          emit ~kernel:false ~rw:Write
            ~base:(packa_base + (((panel * kcb * mr) + ii) * s))
            ~stride:(w * s) ~count:kcb
        done;
        (* micro-kernel sweeps *)
        let jr = ref 0 in
        while !jr < ncb do
          let nrb = min nr (ncb - !jr) in
          let ir = ref 0 in
          while !ir < mcb do
            let mrb = min mr (mcb - !ir) in
            let c_row i =
              c_base + ((((!ic + !ir + i) * n) + !jc + !jr) * s)
            in
            (* C tile load, row by row *)
            for i = 0 to mrb - 1 do
              emit ~kernel:true ~rw:Read ~base:(c_row i) ~stride:s ~count:nrb
            done;
            (* the k loop streams each packed panel once, contiguously *)
            emit ~kernel:true ~rw:Read
              ~base:(packa_base + (!ir / mr * kcb * mr * s))
              ~stride:s ~count:(kcb * mrb);
            emit ~kernel:true ~rw:Read
              ~base:(packb_base + (!jr / nr * kcb * nr * s))
              ~stride:s ~count:(kcb * nrb);
            (* C tile store *)
            for i = 0 to mrb - 1 do
              emit ~kernel:true ~rw:Write ~base:(c_row i) ~stride:s ~count:nrb
            done;
            ir := !ir + mr
          done;
          jr := !jr + nr
        done;
        ic := !ic + mc
      done;
      Obs.end_span sp_pc;
      pc := !pc + kc
    done;
    jc := !jc + nc
  done

(** Simulate the memory behaviour of the BLIS macro-kernel (Fig. 1) through
    the compressed stride-run path. This is the default: fast enough for
    the real Carmel hierarchy at the paper's ≥1000³ sizes. *)
let gemm_trace (m_desc : Exo_isa.Machine.t) ~(mc : int) ~(kc : int) ~(nc : int)
    ~(mr : int) ~(nr : int) ~(m : int) ~(n : int) ~(k : int) : stats =
  let args =
    if Obs.enabled () then
      [
        ("machine", m_desc.Exo_isa.Machine.name);
        ("problem", Printf.sprintf "%dx%dx%d" m n k);
        ("blocking", Printf.sprintf "mc=%d kc=%d nc=%d" mc kc nc);
      ]
    else []
  in
  Obs.with_span ~args "sim.gemm_trace" (fun () ->
      let h = create m_desc in
      emit_gemm_trace ~mc ~kc ~nc ~mr ~nr ~m ~n ~k
        ~emit:(fun ~kernel ~rw ~base ~stride ~count ->
          Obs.incr c_events;
          Obs.observe h_run count;
          access_run h ~rw ~kernel ~base ~stride_bytes:stride ~count ());
      let s = stats h in
      note_stats s;
      s)

(** The same trace replayed element by element through the full lookup —
    the reference oracle the compressed path is pinned against. *)
let gemm_trace_element (m_desc : Exo_isa.Machine.t) ~(mc : int) ~(kc : int)
    ~(nc : int) ~(mr : int) ~(nr : int) ~(m : int) ~(n : int) ~(k : int) : stats
    =
  let args =
    if Obs.enabled () then
      [
        ("machine", m_desc.Exo_isa.Machine.name);
        ("problem", Printf.sprintf "%dx%dx%d" m n k);
      ]
    else []
  in
  Obs.with_span ~args "sim.gemm_trace_element" (fun () ->
      let h = create m_desc in
      emit_gemm_trace ~mc ~kc ~nc ~mr ~nr ~m ~n ~k
        ~emit:(fun ~kernel ~rw ~base ~stride ~count ->
          Obs.incr c_events;
          Obs.observe h_run count;
          h.in_kernel <- kernel;
          for e = 0 to count - 1 do
            access ~rw h (base + (e * stride))
          done);
      let s = stats h in
      note_stats s;
      s)
