(** Micro-kernel performance model (closed form).

    Cycles derive mechanistically from the kernel's own instruction census
    ({!Trace}) and the machine description: a pipe-throughput bound, an
    accumulator-latency bound (what makes narrow kernels like 8×4
    intrinsically slower even solo), load/store port and issue bounds, and a
    register-pressure spill term. Validated against the instruction-level
    {!Scoreboard} on every paper kernel. *)

type impl = {
  name : string;
  mr : int;
  nr : int;
  trace : Trace.t;
  sched_eff : float;
      (** scheduling quality ≤ 1: 1.0 for assembly and for Exo's generated C
          (Fig. 12), < 1 for hand-written intrinsics — the paper's reason
          NEON trails BLIS *)
  edge_logic : bool;
      (** monolithic kernel: handles any m ≤ mr, n ≤ nr internally, always
          executing the full tile (the Fig. 13 edge-case penalty) *)
  supports_prefetch : bool;  (** can prefetch the next C tile (BLIS asm) *)
}

val call_overhead : float
val edge_logic_overhead : float

(** Steady-state cycles per k-loop iteration:
    [max(pipe, latency, load-ports, store-ports, issue)]. *)
val cycles_per_iter : Exo_isa.Machine.t -> impl -> float

(** C-tile load/store cycles around the k loop. *)
val prologue_cycles : Exo_isa.Machine.t -> impl -> float

(** One invocation at depth [kc], operands cache-resident. *)
val call_cycles : Exo_isa.Machine.t -> impl -> kc:int -> float

(** Solo-mode GFLOPS on an mu×nu (≤ mr×nr) problem — the Fig. 13 numbers.
    A specialized kernel must be invoked on its exact shape; a kernel with
    edge logic executes its full tile and is charged the fringe copy
    (tile write + read back at [dbytes] per element — 4 for f32, 2 for
    f16 — through L1 bandwidth). *)
val solo_gflops :
  ?dbytes:int ->
  Exo_isa.Machine.t -> impl -> mu:int -> nu:int -> kc:int -> float

(** Peak GFLOPS for this kernel's lane width on the machine. *)
val peak : Exo_isa.Machine.t -> impl -> float

(** A generated kernel: census read off the scheduled IR; assembly-quality,
    no fringe logic, no prefetch. *)
val of_proc : name:string -> mr:int -> nr:int -> Exo_ir.Ir.proc -> impl

(** The BLIS v0.9 assembly micro-kernel model (from the 8×12 base proc):
    hand-scheduled, fringe logic, prefetch-capable. *)
val blis_asm_8x12 : Exo_ir.Ir.proc -> impl

(** The hand-written Neon-intrinsics micro-kernel model: compiler-scheduled
    (eff < 1), fringe logic, no prefetch. *)
val neon_intrinsics_8x12 : Exo_ir.Ir.proc -> impl
