(** Micro-kernel performance model.

    Cycles are derived mechanistically from the kernel's own instruction
    census ({!Trace}) and the machine description ({!Exo_isa.Machine}):

    - pipe bound: vector/scalar compute ops per iteration over the FMA pipes
      (divided by a scheduling-efficiency factor: 1.0 for assembly and for
      Exo's generated C, which Fig. 12 shows compiles to assembly-quality
      code; < 1 for hand-written intrinsics, the paper's explanation for
      NEON trailing BLIS);
    - dependency bound: each accumulator is updated once per k iteration, so
      an iteration can not complete faster than the FMA accumulate-forward
      latency — this is what makes narrow kernels (8×4, 4×4) intrinsically
      slower than 8×12 even in solo mode;
    - load/store port and issue-width bounds;
    - register-pressure spills when the kernel's residency exceeds the
      architectural register file.

    Monolithic library kernels (BLIS assembly, hand-written NEON) carry
    [edge_logic]: on a problem smaller than their native tile they still
    execute the full tile and pay a fringe-handling overhead — the mechanism
    behind the paper's Fig. 13 edge-case results. *)

open Exo_isa

type impl = {
  name : string;
  mr : int;
  nr : int;
  trace : Trace.t;
  sched_eff : float;  (** compiler/assembly scheduling quality, ≤ 1 *)
  edge_logic : bool;
      (** kernel internally handles arbitrary m ≤ mr, n ≤ nr (fringe logic) *)
  supports_prefetch : bool;  (** can prefetch the next C tile (BLIS asm) *)
}

(** Fixed costs (cycles). *)
let call_overhead = 25.0

let edge_logic_overhead = 40.0

(** Extra loads/stores per iteration due to spilling, if any. *)
let spill_ops (m : Machine.t) (t : Trace.t) : int =
  let avail = m.vec.Memories.num_regs - 2 in
  if t.Trace.vregs_used > avail then 2 * (t.Trace.vregs_used - avail) else 0

(** Steady-state cycles per k-loop iteration. *)
let cycles_per_iter (m : Machine.t) (impl : impl) : float =
  let c = impl.trace.Trace.steady in
  let spill = spill_ops m impl.trace in
  let compute_ops = c.Trace.fma + c.Trace.arith + c.Trace.bcast + c.Trace.scalar_ops in
  let loads = c.Trace.load + spill and stores = c.Trace.store + spill in
  let pipe = float_of_int compute_ops /. (float_of_int m.fma_pipes *. impl.sched_eff) in
  let dep =
    if c.Trace.fma + c.Trace.scalar_ops > 0 then float_of_int m.fma_lat else 0.0
  in
  let ld = float_of_int loads /. float_of_int m.load_ports in
  let st = float_of_int stores /. float_of_int m.store_ports in
  let issue =
    float_of_int (compute_ops + loads + stores) /. float_of_int m.issue_width
  in
  List.fold_left max 1.0 [ pipe; dep; ld; st; issue ]

(** Prologue/epilogue cycles (C-tile loads and stores around the k loop). *)
let prologue_cycles (m : Machine.t) (impl : impl) : float =
  let c = impl.trace.Trace.prologue in
  float_of_int c.Trace.load /. float_of_int m.load_ports
  +. float_of_int c.Trace.store /. float_of_int m.store_ports
  +. (float_of_int (c.Trace.fma + c.Trace.arith + c.Trace.bcast + c.Trace.scalar_ops)
     /. float_of_int m.fma_pipes)

(** Cycles for one micro-kernel invocation with depth [kc], operands
    resident in cache. *)
let call_cycles (m : Machine.t) (impl : impl) ~(kc : int) : float =
  prologue_cycles m impl
  +. (float_of_int kc *. cycles_per_iter m impl)
  +. call_overhead
  +. (if impl.edge_logic then edge_logic_overhead else 0.0)

(** Useful FLOPs per invocation on an m×n (≤ mr×nr) problem. A kernel with
    edge logic executes its full tile regardless; a specialized kernel is
    only ever invoked on its exact shape. *)
let solo_gflops ?(dbytes = 4) (m : Machine.t) (impl : impl) ~(mu : int)
    ~(nu : int) ~(kc : int) : float =
  if mu > impl.mr || nu > impl.nr then
    invalid_arg "solo_gflops: problem exceeds the kernel tile";
  if (not impl.edge_logic) && (mu <> impl.mr || nu <> impl.nr) then
    invalid_arg "solo_gflops: specialized kernel invoked on a foreign shape";
  let cycles = call_cycles m impl ~kc in
  (* fringe handling in monolithic kernels: compute the full tile into a
     temporary and copy out the mu×nu corner — temp write + read back, so
     two element transfers at the kernel's element size *)
  let cycles =
    if impl.edge_logic && (mu <> impl.mr || nu <> impl.nr) then
      cycles +. (float_of_int (impl.mr * impl.nr * dbytes * 2) /. m.l1_bw)
    else cycles
  in
  let useful_flops = 2.0 *. float_of_int (mu * nu * kc) in
  let time_s = cycles /. (m.freq_ghz *. 1e9) in
  useful_flops /. time_s /. 1e9

(** Peak GFLOPS this kernel could reach on [m] given its dtype lanes. *)
let peak (m : Machine.t) (impl : impl) : float =
  float_of_int (impl.trace.Trace.lanes * 2 * m.fma_pipes) *. m.freq_ghz

(* ------------------------------------------------------------------ *)
(* Implementation constructors                                         *)

(** A generated kernel: census read straight off the scheduled IR;
    assembly-quality code (Fig. 12), no fringe logic, no prefetch. *)
let of_proc ~(name : string) ~(mr : int) ~(nr : int) (p : Exo_ir.Ir.proc) : impl =
  {
    name;
    mr;
    nr;
    trace = Trace.of_proc p;
    sched_eff = 1.0;
    edge_logic = false;
    supports_prefetch = false;
  }

(** The BLIS v0.9 assembly micro-kernel model: the same 8×12 outer-product
    structure, hand-scheduled (eff 1.0), with fringe logic and C prefetch. *)
let blis_asm_8x12 (base : Exo_ir.Ir.proc) : impl =
  {
    name = "BLIS";
    mr = 8;
    nr = 12;
    trace = Trace.of_proc base;
    sched_eff = 1.0;
    edge_logic = true;
    supports_prefetch = true;
  }

(** The hand-written Neon-intrinsics micro-kernel model: same structure,
    compiler-scheduled ([sched_eff] < 1 — "the main difference is that the
    former is written with Neon intrinsics while the latter is in
    assembly"), fringe logic, no prefetch. *)
let neon_intrinsics_8x12 (base : Exo_ir.Ir.proc) : impl =
  {
    name = "NEON";
    mr = 8;
    nr = 12;
    trace = Trace.of_proc base;
    sched_eff = 0.94;
    edge_logic = true;
    supports_prefetch = false;
  }
