(** Host capability probe for the native JIT tier: C-compiler presence and
    the machine's vector ISAs, detected once and consulted by the registry
    to pick an emit target (intrinsics on a matching host, the portable
    lowering otherwise) — and by [ukrgen explain] / {!Exo_obs.Obs.Meta} so
    every measurement records what the host could actually execute. *)

type isa = Neon | Avx2 | Avx512 | Rvv

val isa_name : isa -> string

(** [UKRGEN_NATIVE]: set to [0]/[false]/[no]/[off] to disable the native
    tier (the registry then serves the Bigarray tier everywhere). *)
val env_native : string

(** [UKRGEN_CC]: an explicit compiler path or name; empty/unset falls back
    to searching [PATH] for [cc], [gcc], [clang]. A set-but-missing value
    masks the compiler entirely (the graceful-degradation tests use this). *)
val env_cc : string

(** The tier is not disabled by {!env_native}. *)
val enabled : unit -> bool

(** The C compiler the JIT would invoke: [None] when the tier is disabled,
    the compiler is masked, or no candidate is executable. Re-reads the
    environment on every call (cheap — a few [stat]s). *)
val cc : unit -> string option

(** First [--version] line of {!cc} (memoized per path), or ["none"] — a
    content-address key part for cached shared objects. *)
val cc_identity : unit -> string

(** Vector ISAs this machine executes (from [/proc/cpuinfo], read once). *)
val isas : unit -> isa list

val supports : isa -> bool

(** Host-tuning flags in the host compiler's spelling ([-march=native] on
    x86, [-mcpu=native] on AArch64, none where unsupported). *)
val march_flags : unit -> string list

(** Key/value capability report for [ukrgen explain] and the bench meta. *)
val describe : unit -> (string * string) list
