(** Host capability probe for the native JIT tier.

    Answers, once per question, the three things the registry needs before
    it may lower a kernel table to machine code: is the tier enabled, is
    there a working C compiler, and which vector ISAs does this machine
    actually execute — replacing the repo's historical silent assumption
    that every host is Carmel/Neon.

    The ISA census is read from [/proc/cpuinfo] at module init (single
    domain, so no [Lazy] races later); the compiler resolution re-reads the
    environment on every call so tests can mask [cc] from one process
    ([UKRGEN_CC=/nonexistent]) or disable the tier ([UKRGEN_NATIVE=0])
    without rebuilding, and only the [--version] banner is memoized. *)

type isa = Neon | Avx2 | Avx512 | Rvv

let isa_name = function
  | Neon -> "neon"
  | Avx2 -> "avx2"
  | Avx512 -> "avx512"
  | Rvv -> "rvv"

let env_native = "UKRGEN_NATIVE"
let env_cc = "UKRGEN_CC"

let enabled () =
  match Sys.getenv_opt env_native with
  | Some ("0" | "false" | "no" | "off") -> false
  | _ -> true

(* ------------------------------------------------------------------ *)
(* ISA census (computed once at init; hardware does not hot-swap)      *)

let cpuinfo_tokens =
  let text =
    try In_channel.with_open_text "/proc/cpuinfo" In_channel.input_all
    with _ -> ""
  in
  String.split_on_char '\n' text
  |> List.concat_map (fun line ->
         String.split_on_char ':' line
         |> List.concat_map (String.split_on_char '\t')
         |> List.concat_map (String.split_on_char ' '))
  |> List.filter (fun t -> t <> "")

let has_token t = List.mem t cpuinfo_tokens

(* RISC-V reports one "isa" string (e.g. rv64imafdcv): the 'v' extension
   after the base letters is the vector unit *)
let has_rvv =
  List.exists
    (fun t ->
      String.length t > 4
      && (String.sub t 0 4 = "rv64" || String.sub t 0 4 = "rv32")
      && String.contains_from t 4 'v')
    cpuinfo_tokens

let isas_v =
  List.filter_map Fun.id
    [
      (if has_token "asimd" || has_token "neon" then Some Neon else None);
      (if has_token "avx2" then Some Avx2 else None);
      (if has_token "avx512f" then Some Avx512 else None);
      (if has_rvv then Some Rvv else None);
    ]

let isas () = isas_v
let supports isa = List.mem isa isas_v

(* Architecture family, for the native-tuning flag spelling: x86 compilers
   take -march=native, AArch64 takes -mcpu=native. Inferred from the same
   cpuinfo census (sse2 is baseline on every x86-64). *)
let arch =
  if has_token "sse2" || has_token "avx" || has_token "GenuineIntel"
     || has_token "AuthenticAMD"
  then `X86
  else if has_token "asimd" || has_token "neon" || has_token "aarch64" then `Arm
  else if has_rvv then `Riscv
  else `Unknown

let march_flags () =
  match arch with
  | `X86 -> [ "-march=native" ]
  | `Arm -> [ "-mcpu=native" ]
  | `Riscv | `Unknown -> []

(* ------------------------------------------------------------------ *)
(* C compiler resolution                                               *)

let is_executable p =
  Sys.file_exists p
  && (not (Sys.is_directory p))
  &&
  try
    Unix.access p [ Unix.X_OK ];
    true
  with Unix.Unix_error _ -> false

let search_path name =
  if String.contains name '/' then if is_executable name then Some name else None
  else
    let path = Option.value ~default:"" (Sys.getenv_opt "PATH") in
    List.find_map
      (fun dir ->
        if dir = "" then None
        else
          let p = Filename.concat dir name in
          if is_executable p then Some p else None)
      (String.split_on_char ':' path)

let cc () =
  if not (enabled ()) then None
  else
    match Sys.getenv_opt env_cc with
    | None | Some "" -> List.find_map search_path [ "cc"; "gcc"; "clang" ]
    | Some p -> search_path p

(* The --version banner identifies the binary that produced a cached .so
   (a cache-key part): memoized per compiler path — one subprocess per
   distinct compiler per process. *)
let identity_memo : (string, string) Hashtbl.t = Hashtbl.create 4
let identity_mutex = Mutex.create ()

let version_banner path =
  try
    let ic =
      Unix.open_process_in (Filename.quote path ^ " --version 2>/dev/null")
    in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> Filename.basename path
  with _ -> Filename.basename path

let cc_identity () =
  match cc () with
  | None -> "none"
  | Some path ->
      Mutex.protect identity_mutex (fun () ->
          match Hashtbl.find_opt identity_memo path with
          | Some id -> id
          | None ->
              let id = version_banner path in
              Hashtbl.replace identity_memo path id;
              id)

let describe () =
  [
    ("native_tier", if enabled () then "enabled" else "disabled (UKRGEN_NATIVE=0)");
    ("cc", match cc () with Some p -> p | None -> "none");
    ("cc_identity", cc_identity ());
    ( "isa",
      match isas_v with
      | [] -> "generic"
      | l -> String.concat "," (List.map isa_name l) );
    ( "tuning_flags",
      match march_flags () with [] -> "-" | l -> String.concat " " l );
  ]
