/* dlopen/dlsym loader and call stub for the native JIT execution tier.
 *
 * A slot is an index into a process-global table of micro-kernel function
 * pointers with the fixed extern-"C" ABI every JIT'd kernel exports:
 *
 *   void ukr(int kc, const float *A, const float *B, float *C, int ldc);
 *
 * Registration happens at table-build time under a mutex (several OCaml
 * domains may build different kernel tables concurrently); the table is a
 * fixed-size static array, so a published slot is never moved by a later
 * registration and the hot call reads it without synchronization — the
 * OCaml side publishes tables through Exo_par.Memo before sharing them.
 * Handles are never dlclose()d: a bound kernel lives for the process (the
 * registry memoizes one table per family). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/bigarray.h>
#include <dlfcn.h>
#include <pthread.h>

typedef void (*exo_ukr_fn)(int kc, const float *A, const float *B, float *C,
                           int ldc);

#define EXO_NATIVE_MAX_SLOTS 16384

static exo_ukr_fn exo_slots[EXO_NATIVE_MAX_SLOTS];
static int exo_slot_len = 0;
static pthread_mutex_t exo_slot_mutex = PTHREAD_MUTEX_INITIALIZER;

CAMLprim value exo_native_dlopen(value vpath)
{
  void *h = dlopen(String_val(vpath), RTLD_NOW | RTLD_LOCAL);
  if (h == NULL) {
    const char *e = dlerror();
    caml_failwith(e ? e : "dlopen failed");
  }
  return caml_copy_nativeint((intnat)h);
}

CAMLprim value exo_native_dlsym(value vhandle, value vsym)
{
  void *h = (void *)Nativeint_val(vhandle);
  void *fn = dlsym(h, String_val(vsym));
  int slot;
  if (fn == NULL) {
    const char *e = dlerror();
    caml_failwith(e ? e : "dlsym failed");
  }
  pthread_mutex_lock(&exo_slot_mutex);
  if (exo_slot_len >= EXO_NATIVE_MAX_SLOTS) {
    pthread_mutex_unlock(&exo_slot_mutex);
    caml_failwith("exo_native: slot table full");
  }
  slot = exo_slot_len;
  exo_slots[slot] = (exo_ukr_fn)fn;
  exo_slot_len++;
  pthread_mutex_unlock(&exo_slot_mutex);
  return Val_int(slot);
}

/* The hot call: no allocation, no exceptions. Operand bounds and slot
 * validity are the OCaml caller's contract (Exo_blis.Registry checks the
 * ukr_ba operand ranges before entering, and slots are only minted by
 * exo_native_dlsym above). */
CAMLprim value exo_native_call_native(value vslot, value vkc, value va,
                                      value vao, value vb, value vbo,
                                      value vc, value vco, value vldc)
{
  exo_ukr_fn f = exo_slots[Int_val(vslot)];
  const float *a = (const float *)Caml_ba_data_val(va) + Int_val(vao);
  const float *b = (const float *)Caml_ba_data_val(vb) + Int_val(vbo);
  float *c = (float *)Caml_ba_data_val(vc) + Int_val(vco);
  f(Int_val(vkc), a, b, c, Int_val(vldc));
  return Val_unit;
}

CAMLprim value exo_native_call_bytecode(value *argv, int argn)
{
  (void)argn;
  return exo_native_call_native(argv[0], argv[1], argv[2], argv[3], argv[4],
                                argv[5], argv[6], argv[7], argv[8]);
}
