(** Runtime C compilation and binding for the native execution tier.

    [get_or_compile] is the whole pipeline: a content-addressed lookup of
    the compiled shared object in {!Exo_cache.Store} (kind
    {!so_kind} — raw bytes, so a corrupted artifact reads as a miss and is
    recompiled), a [cc -O3 -shared -fPIC] invocation on miss, and a
    [dlopen]/[dlsym] bind of every requested symbol into the process-global
    slot table the {!call} stub indexes.

    Nothing here certifies anything: the caller ({!Exo_blis.Registry})
    bit-compares every bound kernel against the Bigarray tier before it may
    serve — JIT'd code is certified-then-trusted, never trusted-on-load. *)

module Store = Exo_cache.Store
module Obs = Exo_obs.Obs

type ba32 = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

external dlopen_so : string -> nativeint = "exo_native_dlopen"
external dlsym_slot : nativeint -> string -> int = "exo_native_dlsym"

external call :
  slot:int ->
  kc:int ->
  a:ba32 ->
  ao:int ->
  b:ba32 ->
  bo:int ->
  c:ba32 ->
  co:int ->
  ldc:int ->
  unit = "exo_native_call_bytecode" "exo_native_call_native"
[@@noalloc]

let so_kind = "native_so"

(* ------------------------------------------------------------------ *)
(* Counters: always-on atomics (BENCH_gemm.json and the corrupted-cache
   tests read them in plain runs), mirrored into Obs while tracing.     *)

let compiles = Atomic.make 0
let so_hits = Atomic.make 0
let dlopens = Atomic.make 0
let errors = Atomic.make 0
let obs_compiles = Obs.counter "native.compiles"
let obs_so_hits = Obs.counter "native.so_cache_hits"
let obs_dlopens = Obs.counter "native.dlopens"
let obs_errors = Obs.counter "native.errors"

let count cell obs =
  Atomic.incr cell;
  if Obs.enabled () then Obs.incr obs

let counts () =
  (Atomic.get compiles, Atomic.get so_hits, Atomic.get dlopens, Atomic.get errors)

let reset_counts () =
  Atomic.set compiles 0;
  Atomic.set so_hits 0;
  Atomic.set dlopens 0;
  Atomic.set errors 0

(* ------------------------------------------------------------------ *)
(* Compile                                                             *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let temp_dir () =
  let f = Filename.temp_file "ukrnative" "" in
  Sys.remove f;
  Unix.mkdir f 0o700;
  f

let cflags () = [ "-O3"; "-fPIC"; "-shared" ] @ Host.march_flags ()

(** Compile one C translation unit with the host compiler; the shared
    object's bytes on success, the compiler's stderr (truncated) on
    failure. *)
let compile_c ~(src : string) : (string, string) result =
  match Host.cc () with
  | None -> Error "no C compiler (install cc or set UKRGEN_CC)"
  | Some cc ->
      let dir = temp_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let c_file = Filename.concat dir "kernels.c" in
          let so_file = Filename.concat dir "kernels.so" in
          let log_file = Filename.concat dir "cc.log" in
          write_file c_file src;
          let cmd =
            String.concat " "
              (Filename.quote cc :: cflags ()
              @ [
                  "-o";
                  Filename.quote so_file;
                  Filename.quote c_file;
                  "2>" ^ Filename.quote log_file;
                ])
          in
          match Sys.command cmd with
          | 0 ->
              count compiles obs_compiles;
              Ok (read_file so_file)
          | n ->
              count errors obs_errors;
              let log = try read_file log_file with _ -> "" in
              let log =
                if String.length log > 500 then String.sub log 0 500 ^ "..."
                else log
              in
              Error (Printf.sprintf "%s exited %d: %s" cc n (String.trim log)))

(* ------------------------------------------------------------------ *)
(* Load                                                                *)

(** Bind [syms] from shared-object bytes: the bytes go to a private temp
    file, [dlopen] maps it, the file is unlinked (the mapping survives),
    and each symbol is registered as a fresh slot for {!call}. *)
let load_bytes ~(so : string) ~(syms : string list) : (int array, string) result
    =
  let tmp = Filename.temp_file "ukrnative" ".so" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      write_file tmp so;
      match dlopen_so tmp with
      | exception Failure e ->
          count errors obs_errors;
          Error e
      | handle -> (
          match List.map (dlsym_slot handle) syms with
          | slots ->
              count dlopens obs_dlopens;
              Ok (Array.of_list slots)
          | exception Failure e ->
              count errors obs_errors;
              Error e))

(** The read-through pipeline: cached .so bytes when [store] holds them
    under [key] (a corrupt or unloadable artifact is dropped and falls
    through to a fresh compile), else [src ()] is rendered, compiled and
    published. Returns the bound slots, one per symbol in order, and
    whether the bytes came from the cache. *)
let get_or_compile ~(store : Store.t option) ~(key : string)
    ~(src : unit -> string) ~(syms : string list) :
    (int array * bool, string) result =
  let cached =
    match store with
    | None -> None
    | Some st -> (
        match (Store.get st ~kind:so_kind ~key : string option) with
        | None -> None
        | Some bytes -> (
            match load_bytes ~so:bytes ~syms with
            | Ok slots ->
                count so_hits obs_so_hits;
                Some (slots, true)
            | Error _ ->
                (* cached bytes that no longer load (e.g. foreign-arch
                   artifact): drop the entry and recompile *)
                Store.remove st ~kind:so_kind ~key;
                None))
  in
  match cached with
  | Some r -> Ok r
  | None -> (
      match compile_c ~src:(src ()) with
      | Error e -> Error e
      | Ok bytes -> (
          (match store with
          | Some st -> ignore (Store.put st ~kind:so_kind ~key bytes)
          | None -> ());
          match load_bytes ~so:bytes ~syms with
          | Ok slots -> Ok (slots, false)
          | Error e -> Error e))
