(** Runtime C compilation and binding for the native execution tier:
    content-addressed shared objects in {!Exo_cache.Store}, host-[cc]
    compilation on miss, [dlopen]/[dlsym] binding into a process-global
    slot table, and the no-alloc call stub. Certification is the caller's
    job ({!Exo_blis.Registry} bit-compares every bound kernel against the
    Bigarray tier before service). *)

type ba32 = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

(** Invoke a bound kernel: [C += A·B] on one packed tile through the fixed
    extern-"C" ABI [void ukr(int kc, const float *A, const float *B,
    float *C, int ldc)], with [A]/[B]/[C] addressed at [ao]/[bo]/[co]
    elements into the Bigarrays. No bounds checks here — callers enforce
    the {!Exo_interp.Compile.ukr_ba} operand contract first. *)
external call :
  slot:int ->
  kc:int ->
  a:ba32 ->
  ao:int ->
  b:ba32 ->
  bo:int ->
  c:ba32 ->
  co:int ->
  ldc:int ->
  unit = "exo_native_call_bytecode" "exo_native_call_native"
[@@noalloc]

(** The {!Exo_cache.Store} kind shared-object bytes are filed under. *)
val so_kind : string

(** Compile one C translation unit ([-O3 -fPIC -shared] + host tuning
    flags): the shared object's bytes, or the compiler's diagnostics. *)
val compile_c : src:string -> (string, string) result

(** Bind symbols from shared-object bytes; slots in symbol order. *)
val load_bytes : so:string -> syms:string list -> (int array, string) result

(** Cache lookup → compile-on-miss → bind: slots in symbol order plus
    whether the bytes came from the store. A corrupted or unloadable
    cached artifact is dropped and recompiled (never served). *)
val get_or_compile :
  store:Exo_cache.Store.t option ->
  key:string ->
  src:(unit -> string) ->
  syms:string list ->
  (int array * bool, string) result

(** [(compiles, so_cache_hits, dlopens, errors)] — always-on process
    totals, mirrored to the Obs counters [native.*] while tracing. *)
val counts : unit -> int * int * int * int

val reset_counts : unit -> unit
