(** Micro-kernel auto-selection by exhaustive evaluation.

    The paper's advantage #4: "the optimization process for each problem is
    greatly reduced, boiling down to evaluating a number of generated
    micro-kernels". This module is that evaluator: it generates every
    candidate kernel shape, prices each on the modeled machine (full-GEMM
    cost including fringe regions, packing, and the per-shape analytical
    blocking), and returns the ranking. Results are memoized per problem, so
    a driver can call {!best} per GEMM the way the paper's ALG+EXO does. *)


type result = {
  mr : int;
  nr : int;
  gflops : float;
  blocking : Analytical.blocking;
}

let default_shapes =
  [ (4, 4); (4, 8); (4, 12); (4, 16); (8, 4); (8, 8); (8, 12); (8, 16); (12, 8); (16, 4) ]

let dtype_bytes = 4

(** Register-file feasibility: the accumulator tile plus one A panel and one
    B panel must fit the architectural registers. *)
let feasible (machine : Exo_isa.Machine.t) ~(lanes : int) ~(mr : int) ~(nr : int) :
    bool =
  mr mod lanes = 0 && nr >= 1
  &&
  let c_regs = mr / lanes * nr in
  let a_regs = mr / lanes and b_regs = (nr + lanes - 1) / lanes in
  c_regs + a_regs + b_regs <= machine.Exo_isa.Machine.vec.Exo_isa.Memories.num_regs

(** Evaluate one candidate shape on one problem. *)
let evaluate ?(kit = Exo_ukr_gen.Kits.neon_f32) (machine : Exo_isa.Machine.t)
    ~(mr : int) ~(nr : int) ~(m : int) ~(n : int) ~(k : int) : result =
  let module Obs = Exo_obs.Obs in
  let args =
    if Obs.enabled () then
      [ ("shape", Printf.sprintf "%dx%d" mr nr); ("kit", kit.Exo_ukr_gen.Kits.name) ]
    else []
  in
  Obs.with_span ~args "tuner.evaluate" (fun () ->
      let blocking = Analytical.compute machine ~mr ~nr ~dtype_bytes in
      let regions = Driver.regions_family ~kit ~mr ~nr ~m ~n in
      let t =
        Driver.time_of_regions machine ~regions ~prefetch:false ~m ~n ~k ~blocking
      in
      {
        mr;
        nr;
        gflops = 2.0 *. float_of_int m *. float_of_int n *. float_of_int k /. t /. 1e9;
        blocking;
      })

(* The memo key holds machine and kit names as SEPARATE tuple fields.
   An earlier revision concatenated them into one string, which aliased
   distinct configurations: machine "colneon" with kit "-f32" and machine
   "col" with kit "neon-f32" both keyed as "colneon-f32" and stole each
   other's rankings. A regression test pins the fix. *)
type key = string * string * (int * int) list * int * int * int

let cache : (key, result list) Exo_par.Memo.t = Exo_par.Memo.create ()

(* Persistent rankings: the in-memory memo reads through the ambient
   {!Exo_cache.Store}, so sweeps survive process restarts ("Automating the
   Last-Mile"'s persisted-tuning assumption). The key carries the kit's
   content digest — editing a kit orphans its old rankings. *)
module Store = Exo_cache.Store

let sweep_abi = "tuner-v1"
let sweep_kind = "tuner"

let sweep_key (machine : Exo_isa.Machine.t) (kit : Exo_ukr_gen.Kits.t) ~shapes
    ~m ~n ~k : string =
  Store.key
    [
      sweep_abi;
      Sys.ocaml_version;
      machine.Exo_isa.Machine.name;
      kit.Exo_ukr_gen.Kits.name;
      Exo_ukr_gen.Kits.digest kit;
      String.concat ","
        (List.map (fun (mr, nr) -> Printf.sprintf "%dx%d" mr nr) shapes);
      string_of_int m;
      string_of_int n;
      string_of_int k;
    ]

(* A ranking hydrated from disk still passes a shape sanity gate: every
   result names a candidate shape and the list is non-empty. *)
let sweep_artifact_ok ~shapes (rs : result list) : bool =
  rs <> []
  && List.for_all (fun r -> List.mem (r.mr, r.nr) shapes) rs

(** Rank every feasible candidate for one GEMM, best first (memoized per
    (machine, kit, problem) AND candidate-shape list — a custom [?shapes]
    must not hit entries cached for the default list). Candidates are
    priced in parallel on [jobs] domains (default: the process-wide
    {!Exo_par.Pool.default_jobs}); the ranking is identical for every
    [jobs] — results are written to input-indexed slots and the sort is
    stable. *)
let sweep ?(kit = Exo_ukr_gen.Kits.neon_f32) ?(shapes = default_shapes) ?jobs
    (machine : Exo_isa.Machine.t) ~(m : int) ~(n : int) ~(k : int) : result list =
  let key : key =
    (machine.Exo_isa.Machine.name, kit.Exo_ukr_gen.Kits.name, shapes, m, n, k)
  in
  Exo_par.Memo.find_or_add cache key (fun () ->
      let compute_and_persist () =
        let module Obs = Exo_obs.Obs in
        let args =
          if Obs.enabled () then
            [
              ("machine", machine.Exo_isa.Machine.name);
              ("problem", Printf.sprintf "%dx%dx%d" m n k);
            ]
          else []
        in
        Obs.with_span ~args "tuner.sweep" (fun () ->
            let lanes = kit.Exo_ukr_gen.Kits.lanes in
            let pool = Exo_par.Pool.create ?jobs () in
            let results =
              shapes
              |> List.filter (fun (mr, nr) -> feasible machine ~lanes ~mr ~nr)
              |> Exo_par.Pool.map pool (fun (mr, nr) ->
                     evaluate ~kit machine ~mr ~nr ~m ~n ~k)
              |> List.sort (fun a b -> compare b.gflops a.gflops)
            in
            if results = [] then
              invalid_arg "Tuner.sweep: no feasible kernel shape";
            results)
      in
      match Store.ambient () with
      | None -> compute_and_persist ()
      | Some st -> (
          let dkey = sweep_key machine kit ~shapes ~m ~n ~k in
          match Store.get st ~kind:sweep_kind ~key:dkey with
          | Some (rs : result list) when sweep_artifact_ok ~shapes rs -> rs
          | hit ->
              (* miss, or an implausible artifact (dropped before rebuild) *)
              if hit <> None then Store.remove st ~kind:sweep_kind ~key:dkey;
              let rs = compute_and_persist () in
              ignore (Store.put st ~kind:sweep_kind ~key:dkey rs);
              rs))

(** The winning shape for one GEMM. *)
let best ?kit ?shapes ?jobs (machine : Exo_isa.Machine.t) ~m ~n ~k : result =
  List.hd (sweep ?kit ?shapes ?jobs machine ~m ~n ~k)

(** Drop every memoized ranking (benchmarks re-measuring cold sweeps). *)
let clear_cache () = Exo_par.Memo.clear cache
