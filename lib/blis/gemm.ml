(** GEMM: the BLIS/GotoBLAS macro-kernel (Fig. 1 of the paper) plus a naive
    reference.

    The macro-kernel runs the canonical five loops around a micro-kernel:
    jc over n (nc), pc over k (kc, packing Bc), ic over m (mc, packing Ac),
    jr over nc (nr), ir over mc (mr). The micro-kernel is a callback so the
    same macro code runs the interpreted Exo-generated kernels, the
    reference kernel, or anything else — mirroring how the paper swaps
    micro-kernels under one ALG+ implementation. *)

type ukr = kc:int -> mr:int -> nr:int -> ac:float array -> bc:float array ->
  c:float array -> unit
(** Compute [c += acᵀ · bc] on a tile: [ac] is kc×mr (k-major), [bc] is
    kc×nr (k-major), [c] is the *transposed* tile, nr×mr row-major — the
    layout conventions of the generated kernels (Section III-A). *)

(** Reference micro-kernel: the same arithmetic in plain OCaml, with
    binary32 rounding to match the interpreted kernels bit for bit. *)
let reference_ukr : ukr =
 fun ~kc ~mr ~nr ~ac ~bc ~c ->
  let r32 v = Int32.float_of_bits (Int32.bits_of_float v) in
  for k = 0 to kc - 1 do
    for j = 0 to nr - 1 do
      for i = 0 to mr - 1 do
        let idx = (j * mr) + i in
        c.(idx) <- r32 (c.(idx) +. r32 (ac.((k * mr) + i) *. bc.((k * nr) + j)))
      done
    done
  done

(** C := alpha·A·B + beta·C, naive triple loop (f64 accumulation). *)
let naive ?(alpha = 1.0) ?(beta = 1.0) (a : Matrix.t) (b : Matrix.t) (c : Matrix.t) :
    unit =
  let m = a.Matrix.rows and k = a.Matrix.cols and n = b.Matrix.cols in
  if b.Matrix.rows <> k || c.Matrix.rows <> m || c.Matrix.cols <> n then
    invalid_arg "Gemm.naive: dimension mismatch";
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        acc := !acc +. (Matrix.get a i l *. Matrix.get b l j)
      done;
      Matrix.set c i j ((alpha *. !acc) +. (beta *. Matrix.get c i j))
    done
  done

(** Naive with binary32 rounding after every operation, in the blocked
    k-order, usable for exact comparisons against the macro-kernel when
    inputs are small integers. *)
let naive_f32 ?(alpha = 1.0) ?(beta = 1.0) (a : Matrix.t) (b : Matrix.t)
    (c : Matrix.t) : unit =
  let r32 v = Int32.float_of_bits (Int32.bits_of_float v) in
  let m = a.Matrix.rows and k = a.Matrix.cols and n = b.Matrix.cols in
  if b.Matrix.rows <> k || c.Matrix.rows <> m || c.Matrix.cols <> n then
    invalid_arg "Gemm.naive_f32: dimension mismatch";
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref (r32 (beta *. Matrix.get c i j)) in
      for l = 0 to k - 1 do
        acc := r32 (!acc +. r32 (alpha *. r32 (Matrix.get a i l *. Matrix.get b l j)))
      done;
      Matrix.set c i j !acc
    done
  done

(** The BLIS-like GEMM: C := alpha·A·B + beta·C with the five-loop blocked
    algorithm, packing, and [ukr] as the micro-kernel. *)
let blis ?(alpha = 1.0) ?(beta = 1.0) ~(blocking : Analytical.blocking) ~(mr : int)
    ~(nr : int) ~(ukr : ukr) (a : Matrix.t) (b : Matrix.t) (c : Matrix.t) : unit =
  let m = a.Matrix.rows and k = a.Matrix.cols and n = b.Matrix.cols in
  if b.Matrix.rows <> k || c.Matrix.rows <> m || c.Matrix.cols <> n then
    invalid_arg "Gemm.blis: dimension mismatch";
  let { Analytical.mc; kc; nc } = blocking in
  if mc < mr || nc < nr || kc < 1 then invalid_arg "Gemm.blis: degenerate blocking";
  let r32 v = Int32.float_of_bits (Int32.bits_of_float v) in
  (* beta scaling once up front (the macro-kernel form of Fig. 4's Cb) *)
  if not (Float.equal beta 1.0) then
    Array.iteri (fun i v -> c.Matrix.data.(i) <- r32 (beta *. v)) c.Matrix.data;
  let tile = Array.make (mr * nr) 0.0 in
  (* token-style spans guarded inline at each site: when tracing is off the
     loops pay one branch per span point and allocate nothing (the args
     lists are built behind the guard); each span names its loop indices so
     the BLIS loop structure reads directly off the trace *)
  let module Obs = Exo_obs.Obs in
  let sp_blis =
    if Obs.enabled () then
      Obs.begin_span
        ~args:
          [ ("m", string_of_int m); ("n", string_of_int n); ("k", string_of_int k) ]
        "gemm.blis"
    else Obs.none
  in
  for jc = 0 to ((n + nc - 1) / nc) - 1 do
    let jc0 = jc * nc in
    let ncb = min nc (n - jc0) in
    for pc = 0 to ((k + kc - 1) / kc) - 1 do
      let pc0 = pc * kc in
      let kcb = min kc (k - pc0) in
      (* Pack B (applying alpha) *)
      let sp =
        if Obs.enabled () then
          Obs.begin_span
            ~args:[ ("jc", string_of_int jc); ("pc", string_of_int pc) ]
            "gemm.pack_b"
        else Obs.none
      in
      let bp = Packing.pack_b ~alpha b ~pc:pc0 ~jc:jc0 ~kcb ~ncb ~nr in
      Obs.end_span sp;
      for ic = 0 to ((m + mc - 1) / mc) - 1 do
        let ic0 = ic * mc in
        let mcb = min mc (m - ic0) in
        (* Pack A *)
        let sp =
          if Obs.enabled () then
            Obs.begin_span
              ~args:[ ("ic", string_of_int ic); ("pc", string_of_int pc) ]
              "gemm.pack_a"
          else Obs.none
        in
        let ap = Packing.pack_a a ~ic:ic0 ~pc:pc0 ~mcb ~kcb ~mr in
        Obs.end_span sp;
        let sp_macro =
          if Obs.enabled () then
            Obs.begin_span
              ~args:
                [
                  ("jc", string_of_int jc);
                  ("pc", string_of_int pc);
                  ("ic", string_of_int ic);
                ]
              "gemm.macro_kernel"
          else Obs.none
        in
        for jr = 0 to bp.Packing.num_panels - 1 do
          let nrb = bp.Packing.panel_width jr in
          for ir = 0 to ap.Packing.num_panels - 1 do
            let mrb = ap.Packing.panel_width ir in
            (* gather the transposed C tile *)
            for j = 0 to nrb - 1 do
              for i = 0 to mrb - 1 do
                tile.((j * mrb) + i) <-
                  Matrix.get c (ic0 + (ir * mr) + i) (jc0 + (jr * nr) + j)
              done
            done;
            let sp_ukr =
              if Obs.enabled () then
                Obs.begin_span
                  ~args:
                    [
                      ("tile", Printf.sprintf "%dx%d" mrb nrb);
                      ("jr", string_of_int jr);
                      ("ir", string_of_int ir);
                    ]
                  "gemm.ukr"
              else Obs.none
            in
            ukr ~kc:kcb ~mr:mrb ~nr:nrb ~ac:(ap.Packing.panel ir)
              ~bc:(bp.Packing.panel jr) ~c:tile;
            Obs.end_span sp_ukr;
            (* scatter back *)
            for j = 0 to nrb - 1 do
              for i = 0 to mrb - 1 do
                Matrix.set c (ic0 + (ir * mr) + i) (jc0 + (jr * nr) + j)
                  tile.((j * mrb) + i)
              done
            done
          done
        done;
        Obs.end_span sp_macro
      done
    done
  done;
  Obs.end_span sp_blis
