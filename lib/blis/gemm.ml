(** GEMM: the BLIS/GotoBLAS macro-kernel (Fig. 1 of the paper) plus a naive
    reference.

    The macro-kernel runs the canonical five loops around a micro-kernel:
    jc over n (nc), pc over k (kc, packing Bc), ic over m (mc, packing Ac),
    jr over nc (nr), ir over mc (mr). The micro-kernel is a callback so the
    same macro code runs the interpreted Exo-generated kernels, the
    reference kernel, or anything else — mirroring how the paper swaps
    micro-kernels under one ALG+ implementation.

    The executable path is built for paper-scale runs: pack buffers and the
    C tile live in a per-domain {!workspace} arena (no allocation steady
    state), the C-tile gather/scatter is fused over unsafe accesses behind
    one up-front bounds check, and the jc loop — disjoint C column blocks —
    fans out on an {!Exo_par.Pool}, bit-identical at every pool width
    because each task touches only its own columns and runs the same
    per-column operation sequence. *)

module Obs = Exo_obs.Obs
module Pool = Exo_par.Pool

type ukr =
  kc:int -> mr:int -> nr:int -> ac:float array -> ao:int -> bc:float array ->
  bo:int -> c:float array -> unit
(** Compute [c += acᵀ · bc] on a tile: [ac] holds a kc×mr k-major panel
    starting at element [ao], [bc] a kc×nr panel starting at [bo] (panel
    offsets into a packing arena), and [c] is the *transposed* tile, nr×mr
    row-major — the layout conventions of the generated kernels
    (Section III-A). *)

(** Reference micro-kernel: the same arithmetic in plain OCaml, with
    binary32 rounding to match the interpreted kernels bit for bit. *)
let reference_ukr : ukr =
 fun ~kc ~mr ~nr ~ac ~ao ~bc ~bo ~c ->
  let r32 v = Int32.float_of_bits (Int32.bits_of_float v) in
  for k = 0 to kc - 1 do
    for j = 0 to nr - 1 do
      for i = 0 to mr - 1 do
        let idx = (j * mr) + i in
        c.(idx) <-
          r32 (c.(idx) +. r32 (ac.(ao + (k * mr) + i) *. bc.(bo + (k * nr) + j)))
      done
    done
  done

(** C := alpha·A·B + beta·C, naive triple loop (f64 accumulation). *)
let naive ?(alpha = 1.0) ?(beta = 1.0) (a : Matrix.t) (b : Matrix.t) (c : Matrix.t) :
    unit =
  let m = a.Matrix.rows and k = a.Matrix.cols and n = b.Matrix.cols in
  if b.Matrix.rows <> k || c.Matrix.rows <> m || c.Matrix.cols <> n then
    invalid_arg "Gemm.naive: dimension mismatch";
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        acc := !acc +. (Matrix.get a i l *. Matrix.get b l j)
      done;
      Matrix.set c i j ((alpha *. !acc) +. (beta *. Matrix.get c i j))
    done
  done

(** Naive with binary32 rounding after every operation, in the blocked
    k-order, usable for exact comparisons against the macro-kernel when
    inputs are small integers. *)
let naive_f32 ?(alpha = 1.0) ?(beta = 1.0) (a : Matrix.t) (b : Matrix.t)
    (c : Matrix.t) : unit =
  let r32 v = Int32.float_of_bits (Int32.bits_of_float v) in
  let m = a.Matrix.rows and k = a.Matrix.cols and n = b.Matrix.cols in
  if b.Matrix.rows <> k || c.Matrix.rows <> m || c.Matrix.cols <> n then
    invalid_arg "Gemm.naive_f32: dimension mismatch";
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref (r32 (beta *. Matrix.get c i j)) in
      for l = 0 to k - 1 do
        acc := r32 (!acc +. r32 (alpha *. r32 (Matrix.get a i l *. Matrix.get b l j)))
      done;
      Matrix.set c i j !acc
    done
  done

(* ------------------------------------------------------------------ *)
(* Workspace arenas                                                    *)

(** Per-domain scratch: one pack arena per operand plus the C tile, grown
    monotonically (next power of two) and reused across GEMMs. Per-domain
    because pool tasks on different domains pack concurrently. *)
type arena = {
  mutable aw : float array;
  mutable bw : float array;
  mutable tw : float array;
}

type workspace = arena Domain.DLS.key

let workspace () : workspace =
  Domain.DLS.new_key (fun () -> { aw = [||]; bw = [||]; tw = [||] })

(** The workspace used when callers don't thread their own. *)
let default_workspace : workspace = workspace ()

let grown (a : float array) (n : int) : float array =
  if Array.length a >= n then a
  else begin
    let cap = ref (max 16 n) in
    (* next power of two, so repeated slightly-larger requests settle *)
    let p = ref 16 in
    while !p < n do
      p := !p * 2
    done;
    cap := !p;
    Array.make !cap 0.0
  end

(* ------------------------------------------------------------------ *)
(* The five-loop macro-kernel                                          *)

(** The BLIS-like GEMM: C := alpha·A·B + beta·C with the five-loop blocked
    algorithm, arena packing, and [ukr] as the micro-kernel. The jc loop
    runs on [pool] (default: the global pool); output is bit-identical at
    every pool width. *)
let blis ?(alpha = 1.0) ?(beta = 1.0) ?pool ?(ws = default_workspace)
    ~(blocking : Analytical.blocking) ~(mr : int) ~(nr : int) ~(ukr : ukr)
    (a : Matrix.t) (b : Matrix.t) (c : Matrix.t) : unit =
  let m = a.Matrix.rows and k = a.Matrix.cols and n = b.Matrix.cols in
  if b.Matrix.rows <> k || c.Matrix.rows <> m || c.Matrix.cols <> n then
    invalid_arg "Gemm.blis: dimension mismatch";
  (* the packing and gather/scatter loops run unsafe accesses: pin the
     storage invariant the flat indexing relies on *)
  if
    Array.length a.Matrix.data < m * k
    || Array.length b.Matrix.data < k * n
    || Array.length c.Matrix.data < m * n
  then invalid_arg "Gemm.blis: matrix storage shorter than rows*cols";
  let { Analytical.mc; kc; nc } = blocking in
  if mc < mr || nc < nr || kc < 1 then invalid_arg "Gemm.blis: degenerate blocking";
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let r32 v = Int32.float_of_bits (Int32.bits_of_float v) in
  let ldc = c.Matrix.cols and cdata = c.Matrix.data in
  let a_size = Packing.a_arena_size ~mcb:(min mc m) ~kcb:(min kc k) ~mr in
  let b_size = Packing.b_arena_size ~ncb:(min nc n) ~kcb:(min kc k) ~nr in
  (* token-style spans guarded inline at each site: when tracing is off the
     loops pay one branch per span point and allocate nothing (the args
     lists are built behind the guard); each span names its loop indices so
     the BLIS loop structure reads directly off the trace. Spans inside the
     jc tasks fall under the pool's per-task scopes, so the merged trace is
     identical at every pool width. *)
  let sp_blis =
    if Obs.enabled () then
      Obs.begin_span
        ~args:
          [ ("m", string_of_int m); ("n", string_of_int n); ("k", string_of_int k) ]
        "gemm.blis"
    else Obs.none
  in
  let jc_task jc =
    let ar = Domain.DLS.get ws in
    ar.aw <- grown ar.aw a_size;
    ar.bw <- grown ar.bw b_size;
    ar.tw <- grown ar.tw (mr * nr);
    let tile = ar.tw in
    let jc0 = jc * nc in
    let ncb = min nc (n - jc0) in
    (* beta scaling of this task's own column block (the macro-kernel form
       of Fig. 4's Cb): every write of the jc task stays inside columns
       jc0 .. jc0+ncb-1, which is what makes the fan-out deterministic *)
    if not (Float.equal beta 1.0) then
      for i = 0 to m - 1 do
        let rb = (i * ldc) + jc0 in
        for j = 0 to ncb - 1 do
          cdata.(rb + j) <- r32 (beta *. cdata.(rb + j))
        done
      done;
    for pc = 0 to ((k + kc - 1) / kc) - 1 do
      let pc0 = pc * kc in
      let kcb = min kc (k - pc0) in
      (* Pack B (applying alpha) *)
      let sp =
        if Obs.enabled () then
          Obs.begin_span
            ~args:[ ("jc", string_of_int jc); ("pc", string_of_int pc) ]
            "gemm.pack_b"
        else Obs.none
      in
      let bp = Packing.pack_b_into ~alpha ar.bw b ~pc:pc0 ~jc:jc0 ~kcb ~ncb ~nr in
      Obs.end_span sp;
      for ic = 0 to ((m + mc - 1) / mc) - 1 do
        let ic0 = ic * mc in
        let mcb = min mc (m - ic0) in
        (* Pack A *)
        let sp =
          if Obs.enabled () then
            Obs.begin_span
              ~args:[ ("ic", string_of_int ic); ("pc", string_of_int pc) ]
              "gemm.pack_a"
          else Obs.none
        in
        let ap = Packing.pack_a_into ar.aw a ~ic:ic0 ~pc:pc0 ~mcb ~kcb ~mr in
        Obs.end_span sp;
        let sp_macro =
          if Obs.enabled () then
            Obs.begin_span
              ~args:
                [
                  ("jc", string_of_int jc);
                  ("pc", string_of_int pc);
                  ("ic", string_of_int ic);
                ]
              "gemm.macro_kernel"
          else Obs.none
        in
        for jr = 0 to bp.Packing.num_panels - 1 do
          let nrb = Packing.panel_width bp jr in
          let bo = Packing.panel_off bp jr in
          for ir = 0 to ap.Packing.num_panels - 1 do
            let mrb = Packing.panel_width ap ir in
            let ao = Packing.panel_off ap ir in
            (* fused gather/scatter of the transposed C tile: flat base
               addressing, unsafe behind the storage check at entry (every
               index below is ≤ (m-1)*ldc + n-1 < m*n) *)
            let cbase = ((ic0 + (ir * mr)) * ldc) + jc0 + (jr * nr) in
            for j = 0 to nrb - 1 do
              for i = 0 to mrb - 1 do
                Array.unsafe_set tile
                  ((j * mrb) + i)
                  (Array.unsafe_get cdata (cbase + (i * ldc) + j))
              done
            done;
            let sp_ukr =
              if Obs.enabled () then
                Obs.begin_span
                  ~args:
                    [
                      ("tile", Printf.sprintf "%dx%d" mrb nrb);
                      ("jr", string_of_int jr);
                      ("ir", string_of_int ir);
                    ]
                  "gemm.ukr"
              else Obs.none
            in
            ukr ~kc:kcb ~mr:mrb ~nr:nrb ~ac:ap.Packing.data ~ao
              ~bc:bp.Packing.data ~bo ~c:tile;
            Obs.end_span sp_ukr;
            for j = 0 to nrb - 1 do
              for i = 0 to mrb - 1 do
                Array.unsafe_set cdata
                  (cbase + (i * ldc) + j)
                  (Array.unsafe_get tile ((j * mrb) + i))
              done
            done
          done
        done;
        Obs.end_span sp_macro
      done
    done
  in
  Pool.iter pool jc_task (List.init ((n + nc - 1) / nc) Fun.id);
  Obs.end_span sp_blis

(* ------------------------------------------------------------------ *)
(* Batched execution                                                   *)

(** One GEMM of a workload batch. *)
type problem = {
  p_a : Matrix.t;
  p_b : Matrix.t;
  p_c : Matrix.t;
  p_alpha : float;
  p_beta : float;
  p_blocking : Analytical.blocking;
  p_mr : int;
  p_nr : int;
}

(** Run a whole GEMM list (e.g. a DNN workload's layers) through one pool
    and one set of per-domain arenas: after the first problem warms the
    arenas, the batch allocates nothing in steady state. Problems run in
    order (a layer's output may feed the next); each one's jc loop fans
    out on [pool]. *)
let batch ?pool ?(ws = default_workspace) ~(ukr : ukr) (ps : problem list) : unit =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let sp =
    if Obs.enabled () then
      Obs.begin_span
        ~args:[ ("problems", string_of_int (List.length ps)) ]
        "gemm.batch"
    else Obs.none
  in
  List.iter
    (fun p ->
      blis ~alpha:p.p_alpha ~beta:p.p_beta ~pool ~ws ~blocking:p.p_blocking
        ~mr:p.p_mr ~nr:p.p_nr ~ukr p.p_a p.p_b p.p_c)
    ps;
  Obs.end_span sp
