(** GEMM: the BLIS/GotoBLAS macro-kernel (Fig. 1 of the paper) plus a naive
    reference.

    The macro-kernel runs the canonical five loops around a micro-kernel:
    jc over n (nc), pc over k (kc, packing Bc), ic over m (mc, packing Ac),
    jr over nc (nr), ir over mc (mr). The micro-kernel is a callback so the
    same macro code runs the interpreted Exo-generated kernels, the
    reference kernel, or anything else — mirroring how the paper swaps
    micro-kernels under one ALG+ implementation.

    The executable path is built for paper-scale runs: pack buffers and the
    C tile live in a per-domain {!workspace} arena (no allocation steady
    state), the C-tile gather/scatter is fused over unsafe accesses behind
    one up-front bounds check, and the jc loop — disjoint C column blocks —
    fans out on an {!Exo_par.Pool}, bit-identical at every pool width
    because each task touches only its own columns and runs the same
    per-column operation sequence. *)

module Obs = Exo_obs.Obs
module Pool = Exo_par.Pool

type ukr =
  kc:int -> mr:int -> nr:int -> ac:float array -> ao:int -> bc:float array ->
  bo:int -> c:float array -> unit
(** Compute [c += acᵀ · bc] on a tile: [ac] holds a kc×mr k-major panel
    starting at element [ao], [bc] a kc×nr panel starting at [bo] (panel
    offsets into a packing arena), and [c] is the *transposed* tile, nr×mr
    row-major — the layout conventions of the generated kernels
    (Section III-A). *)

(** Reference micro-kernel: the same arithmetic in plain OCaml, with
    binary32 rounding to match the interpreted kernels bit for bit. *)
let reference_ukr : ukr =
 fun ~kc ~mr ~nr ~ac ~ao ~bc ~bo ~c ->
  let r32 v = Int32.float_of_bits (Int32.bits_of_float v) in
  for k = 0 to kc - 1 do
    for j = 0 to nr - 1 do
      for i = 0 to mr - 1 do
        let idx = (j * mr) + i in
        c.(idx) <-
          r32 (c.(idx) +. r32 (ac.(ao + (k * mr) + i) *. bc.(bo + (k * nr) + j)))
      done
    done
  done

(** C := alpha·A·B + beta·C, naive triple loop (f64 accumulation). *)
let naive ?(alpha = 1.0) ?(beta = 1.0) (a : Matrix.t) (b : Matrix.t) (c : Matrix.t) :
    unit =
  let m = a.Matrix.rows and k = a.Matrix.cols and n = b.Matrix.cols in
  if b.Matrix.rows <> k || c.Matrix.rows <> m || c.Matrix.cols <> n then
    invalid_arg "Gemm.naive: dimension mismatch";
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        acc := !acc +. (Matrix.get a i l *. Matrix.get b l j)
      done;
      Matrix.set c i j ((alpha *. !acc) +. (beta *. Matrix.get c i j))
    done
  done

(** Naive with binary32 rounding after every operation, in the blocked
    k-order, usable for exact comparisons against the macro-kernel when
    inputs are small integers. *)
let naive_f32 ?(alpha = 1.0) ?(beta = 1.0) (a : Matrix.t) (b : Matrix.t)
    (c : Matrix.t) : unit =
  let r32 v = Int32.float_of_bits (Int32.bits_of_float v) in
  let m = a.Matrix.rows and k = a.Matrix.cols and n = b.Matrix.cols in
  if b.Matrix.rows <> k || c.Matrix.rows <> m || c.Matrix.cols <> n then
    invalid_arg "Gemm.naive_f32: dimension mismatch";
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref (r32 (beta *. Matrix.get c i j)) in
      for l = 0 to k - 1 do
        acc := r32 (!acc +. r32 (alpha *. r32 (Matrix.get a i l *. Matrix.get b l j)))
      done;
      Matrix.set c i j !acc
    done
  done

(* ------------------------------------------------------------------ *)
(* Workspace arenas                                                    *)

type ba32 = Exo_interp.Compile.ba32

type ukr_ba = Exo_interp.Compile.ukr_ba
(** The monomorphized tier's per-tile entry point: same panel layout as
    {!ukr}, operands in float32 Bigarrays, shape fixed per closure (the
    driver picks the (mrb, nrb) entry out of a flat kernel table). *)

let ba_empty () : ba32 = Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout 0

(** Per-domain scratch: one pack arena per operand plus the C tile — in
    both float-array form (the flat-tape tier) and float32-Bigarray form
    (the monomorphized tier) — grown monotonically (next power of two) and
    reused across GEMMs. Per-domain because pool tasks on different
    domains pack concurrently. *)
type arena = {
  mutable aw : float array;
  mutable bw : float array;
  mutable tw : float array;
  mutable awb : ba32;
  mutable bwb : ba32;
  mutable twb : ba32;
}

type workspace = arena Domain.DLS.key

let workspace () : workspace =
  Domain.DLS.new_key (fun () ->
      {
        aw = [||];
        bw = [||];
        tw = [||];
        awb = ba_empty ();
        bwb = ba_empty ();
        twb = ba_empty ();
      })

(** The workspace used when callers don't thread their own. *)
let default_workspace : workspace = workspace ()

(* next power of two, so repeated slightly-larger requests settle *)
let pow2_cap (n : int) : int =
  let p = ref 16 in
  while !p < n do
    p := !p * 2
  done;
  !p

let grown (a : float array) (n : int) : float array =
  if Array.length a >= n then a else Array.make (pow2_cap n) 0.0

let grown_ba (a : ba32) (n : int) : ba32 =
  if Bigarray.Array1.dim a >= n then a
  else begin
    let b =
      Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout (pow2_cap n)
    in
    (* Bigarray.create is uninitialized; the packers only ever write the
       panel prefixes they then read, but zero-fill anyway so no code path
       can observe garbage *)
    Bigarray.Array1.fill b 0.0;
    b
  end

(* ------------------------------------------------------------------ *)
(* The five-loop macro-kernel                                          *)

(** The BLIS-like GEMM: C := alpha·A·B + beta·C with the five-loop blocked
    algorithm, arena packing, and [ukr] as the micro-kernel. The jc loop
    runs on [pool] (default: the global pool); output is bit-identical at
    every pool width. *)
let blis ?(alpha = 1.0) ?(beta = 1.0) ?pool ?(ws = default_workspace)
    ~(blocking : Analytical.blocking) ~(mr : int) ~(nr : int) ~(ukr : ukr)
    (a : Matrix.t) (b : Matrix.t) (c : Matrix.t) : unit =
  let m = a.Matrix.rows and k = a.Matrix.cols and n = b.Matrix.cols in
  if b.Matrix.rows <> k || c.Matrix.rows <> m || c.Matrix.cols <> n then
    invalid_arg "Gemm.blis: dimension mismatch";
  (* the packing and gather/scatter loops run unsafe accesses: pin the
     storage invariant the flat indexing relies on *)
  if
    Array.length a.Matrix.data < m * k
    || Array.length b.Matrix.data < k * n
    || Array.length c.Matrix.data < m * n
  then invalid_arg "Gemm.blis: matrix storage shorter than rows*cols";
  let { Analytical.mc; kc; nc } = blocking in
  if mc < mr || nc < nr || kc < 1 then invalid_arg "Gemm.blis: degenerate blocking";
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let r32 v = Int32.float_of_bits (Int32.bits_of_float v) in
  let ldc = c.Matrix.cols and cdata = c.Matrix.data in
  let a_size = Packing.a_arena_size ~mcb:(min mc m) ~kcb:(min kc k) ~mr in
  let b_size = Packing.b_arena_size ~ncb:(min nc n) ~kcb:(min kc k) ~nr in
  (* token-style spans guarded inline at each site: when tracing is off the
     loops pay one branch per span point and allocate nothing (the args
     lists are built behind the guard); each span names its loop indices so
     the BLIS loop structure reads directly off the trace. Spans inside the
     jc tasks fall under the pool's per-task scopes, so the merged trace is
     identical at every pool width. *)
  let sp_blis =
    if Obs.enabled () then
      Obs.begin_span
        ~args:
          [ ("m", string_of_int m); ("n", string_of_int n); ("k", string_of_int k) ]
        "gemm.blis"
    else Obs.none
  in
  let jc_task jc =
    let ar = Domain.DLS.get ws in
    ar.aw <- grown ar.aw a_size;
    ar.bw <- grown ar.bw b_size;
    ar.tw <- grown ar.tw (mr * nr);
    let tile = ar.tw in
    let jc0 = jc * nc in
    let ncb = min nc (n - jc0) in
    (* beta scaling of this task's own column block (the macro-kernel form
       of Fig. 4's Cb): every write of the jc task stays inside columns
       jc0 .. jc0+ncb-1, which is what makes the fan-out deterministic *)
    if not (Float.equal beta 1.0) then
      for i = 0 to m - 1 do
        let rb = (i * ldc) + jc0 in
        for j = 0 to ncb - 1 do
          cdata.(rb + j) <- r32 (beta *. cdata.(rb + j))
        done
      done;
    for pc = 0 to ((k + kc - 1) / kc) - 1 do
      let pc0 = pc * kc in
      let kcb = min kc (k - pc0) in
      (* Pack B (applying alpha) *)
      let sp =
        if Obs.enabled () then
          Obs.begin_span
            ~args:[ ("jc", string_of_int jc); ("pc", string_of_int pc) ]
            "gemm.pack_b"
        else Obs.none
      in
      let bp = Packing.pack_b_into ~alpha ar.bw b ~pc:pc0 ~jc:jc0 ~kcb ~ncb ~nr in
      Obs.end_span sp;
      for ic = 0 to ((m + mc - 1) / mc) - 1 do
        let ic0 = ic * mc in
        let mcb = min mc (m - ic0) in
        (* Pack A *)
        let sp =
          if Obs.enabled () then
            Obs.begin_span
              ~args:[ ("ic", string_of_int ic); ("pc", string_of_int pc) ]
              "gemm.pack_a"
          else Obs.none
        in
        let ap = Packing.pack_a_into ar.aw a ~ic:ic0 ~pc:pc0 ~mcb ~kcb ~mr in
        Obs.end_span sp;
        let sp_macro =
          if Obs.enabled () then
            Obs.begin_span
              ~args:
                [
                  ("jc", string_of_int jc);
                  ("pc", string_of_int pc);
                  ("ic", string_of_int ic);
                ]
              "gemm.macro_kernel"
          else Obs.none
        in
        for jr = 0 to bp.Packing.num_panels - 1 do
          let nrb = Packing.panel_width bp jr in
          let bo = Packing.panel_off bp jr in
          for ir = 0 to ap.Packing.num_panels - 1 do
            let mrb = Packing.panel_width ap ir in
            let ao = Packing.panel_off ap ir in
            (* fused gather/scatter of the transposed C tile: flat base
               addressing, unsafe behind the storage check at entry (every
               index below is ≤ (m-1)*ldc + n-1 < m*n) *)
            let cbase = ((ic0 + (ir * mr)) * ldc) + jc0 + (jr * nr) in
            for j = 0 to nrb - 1 do
              for i = 0 to mrb - 1 do
                Array.unsafe_set tile
                  ((j * mrb) + i)
                  (Array.unsafe_get cdata (cbase + (i * ldc) + j))
              done
            done;
            let sp_ukr =
              if Obs.enabled () then
                Obs.begin_span
                  ~args:
                    [
                      ("tile", Printf.sprintf "%dx%d" mrb nrb);
                      ("jr", string_of_int jr);
                      ("ir", string_of_int ir);
                    ]
                  "gemm.ukr"
              else Obs.none
            in
            ukr ~kc:kcb ~mr:mrb ~nr:nrb ~ac:ap.Packing.data ~ao
              ~bc:bp.Packing.data ~bo ~c:tile;
            Obs.end_span sp_ukr;
            for j = 0 to nrb - 1 do
              for i = 0 to mrb - 1 do
                Array.unsafe_set cdata
                  (cbase + (i * ldc) + j)
                  (Array.unsafe_get tile ((j * mrb) + i))
              done
            done
          done
        done;
        Obs.end_span sp_macro
      done
    done
  in
  Pool.iter pool jc_task (List.init ((n + nc - 1) / nc) Fun.id);
  Obs.end_span sp_blis

(* ------------------------------------------------------------------ *)
(* The monomorphized Bigarray tier                                     *)

(** The BLIS-like GEMM over the monomorphized kernel table: same five-loop
    blocking as {!blis} with packed panels and the C tile in float32
    Bigarrays, per-tile dispatch by O(1) array indexing into the table
    [kernels ()] returns, and BOTH the jc and ic loops fanned out as one
    task grid — each task owns the disjoint C block (rows ic·mc .., cols
    jc·nc ..), so small-n problems where jc alone yields a single task
    still scale across the pool, and the output stays bit-identical at
    every width.

    [kernels] is called once per task ON THE EXECUTING DOMAIN and must
    return a table of at least mr·nr entries, entry [(mr'-1)·nr + nr'-1]
    computing an mr'×nr' tile — kernel closures own scratch and are not
    re-entrant across domains, which is why the driver takes the
    table-producing thunk rather than a table. *)
let blis_ba ?(alpha = 1.0) ?(beta = 1.0) ?pool ?(ws = default_workspace)
    ~(blocking : Analytical.blocking) ~(mr : int) ~(nr : int)
    ~(kernels : unit -> ukr_ba array) (a : Matrix.t) (b : Matrix.t)
    (c : Matrix.t) : unit =
  let m = a.Matrix.rows and k = a.Matrix.cols and n = b.Matrix.cols in
  if b.Matrix.rows <> k || c.Matrix.rows <> m || c.Matrix.cols <> n then
    invalid_arg "Gemm.blis_ba: dimension mismatch";
  if
    Array.length a.Matrix.data < m * k
    || Array.length b.Matrix.data < k * n
    || Array.length c.Matrix.data < m * n
  then invalid_arg "Gemm.blis_ba: matrix storage shorter than rows*cols";
  let { Analytical.mc; kc; nc } = blocking in
  if mc < mr || nc < nr || kc < 1 then
    invalid_arg "Gemm.blis_ba: degenerate blocking";
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let r32 v = Int32.float_of_bits (Int32.bits_of_float v) in
  let ldc = c.Matrix.cols and cdata = c.Matrix.data in
  let a_size = Packing.a_arena_size ~mcb:(min mc m) ~kcb:(min kc k) ~mr in
  let b_size = Packing.b_arena_size ~ncb:(min nc n) ~kcb:(min kc k) ~nr in
  let n_jc = (n + nc - 1) / nc and n_ic = (m + mc - 1) / mc in
  let sp_blis =
    if Obs.enabled () then
      Obs.begin_span
        ~args:
          [
            ("m", string_of_int m);
            ("n", string_of_int n);
            ("k", string_of_int k);
            ("tasks", string_of_int (n_jc * n_ic));
          ]
        "gemm.blis_ba"
    else Obs.none
  in
  (* one task per (jc, ic) cell of the C block grid, jc-major *)
  let task t =
    let jc = t / n_ic and ic = t mod n_ic in
    let tbl = kernels () in
    if Array.length tbl < mr * nr then
      invalid_arg "Gemm.blis_ba: kernel table shorter than mr*nr";
    let ar = Domain.DLS.get ws in
    ar.awb <- grown_ba ar.awb a_size;
    ar.bwb <- grown_ba ar.bwb b_size;
    ar.twb <- grown_ba ar.twb (mr * nr);
    let tile = ar.twb in
    let jc0 = jc * nc and ic0 = ic * mc in
    let ncb = min nc (n - jc0) and mcb = min mc (m - ic0) in
    (* beta scaling of this task's own C block: every write of the task
       stays inside rows ic0 .. ic0+mcb-1 × cols jc0 .. jc0+ncb-1, which
       is what keeps the two-axis fan-out deterministic *)
    if not (Float.equal beta 1.0) then
      for i = ic0 to ic0 + mcb - 1 do
        let rb = (i * ldc) + jc0 in
        for j = 0 to ncb - 1 do
          cdata.(rb + j) <- r32 (beta *. cdata.(rb + j))
        done
      done;
    for pc = 0 to ((k + kc - 1) / kc) - 1 do
      let pc0 = pc * kc in
      let kcb = min kc (k - pc0) in
      let sp =
        if Obs.enabled () then
          Obs.begin_span
            ~args:
              [
                ("jc", string_of_int jc);
                ("ic", string_of_int ic);
                ("pc", string_of_int pc);
              ]
            "gemm.pack_b"
        else Obs.none
      in
      let bp =
        Packing.pack_b_ba_into ~alpha ar.bwb b ~pc:pc0 ~jc:jc0 ~kcb ~ncb ~nr
      in
      Obs.end_span sp;
      let sp =
        if Obs.enabled () then
          Obs.begin_span
            ~args:
              [
                ("jc", string_of_int jc);
                ("ic", string_of_int ic);
                ("pc", string_of_int pc);
              ]
            "gemm.pack_a"
        else Obs.none
      in
      let ap = Packing.pack_a_ba_into ar.awb a ~ic:ic0 ~pc:pc0 ~mcb ~kcb ~mr in
      Obs.end_span sp;
      let sp_macro =
        if Obs.enabled () then
          Obs.begin_span
            ~args:
              [
                ("jc", string_of_int jc);
                ("pc", string_of_int pc);
                ("ic", string_of_int ic);
              ]
            "gemm.macro_kernel"
        else Obs.none
      in
      let adata = ap.Packing.data and bdata = bp.Packing.data in
      for jr = 0 to bp.Packing.num_panels - 1 do
        let nrb = Packing.panel_width bp jr in
        let bo = Packing.panel_off bp jr in
        for ir = 0 to ap.Packing.num_panels - 1 do
          let mrb = Packing.panel_width ap ir in
          let ao = Packing.panel_off ap ir in
          (* fused gather/scatter of the transposed C tile, as in [blis];
             the f32 rounding of each C element is the Bigarray store *)
          let cbase = ((ic0 + (ir * mr)) * ldc) + jc0 + (jr * nr) in
          for j = 0 to nrb - 1 do
            for i = 0 to mrb - 1 do
              Bigarray.Array1.unsafe_set tile
                ((j * mrb) + i)
                (Array.unsafe_get cdata (cbase + (i * ldc) + j))
            done
          done;
          (* O(1) dispatch: plain array indexing, in range because
             1 <= mrb <= mr, 1 <= nrb <= nr and the table length was
             checked at task entry *)
          let sp_ukr =
            if Obs.enabled () then Obs.begin_span "gemm.ukr" else Obs.none
          in
          (Array.unsafe_get tbl (((mrb - 1) * nr) + nrb - 1))
            ~kc:kcb ~ac:adata ~ao ~bc:bdata ~bo ~c:tile ~co:0;
          Obs.end_span sp_ukr;
          for j = 0 to nrb - 1 do
            for i = 0 to mrb - 1 do
              Array.unsafe_set cdata
                (cbase + (i * ldc) + j)
                (Bigarray.Array1.unsafe_get tile ((j * mrb) + i))
            done
          done
        done
      done;
      Obs.end_span sp_macro
    done
  in
  Pool.iter pool task (List.init (n_jc * n_ic) Fun.id);
  Obs.end_span sp_blis

(* ------------------------------------------------------------------ *)
(* Batched execution                                                   *)

(** One GEMM of a workload batch. *)
type problem = {
  p_a : Matrix.t;
  p_b : Matrix.t;
  p_c : Matrix.t;
  p_alpha : float;
  p_beta : float;
  p_blocking : Analytical.blocking;
  p_mr : int;
  p_nr : int;
}

(** Run a whole GEMM list (e.g. a DNN workload's layers) through one pool
    and one set of per-domain arenas: after the first problem warms the
    arenas, the batch allocates nothing in steady state. Problems run in
    order (a layer's output may feed the next); each one's jc loop fans
    out on [pool]. *)
let batch ?pool ?(ws = default_workspace) ~(ukr : ukr) (ps : problem list) : unit =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let sp =
    if Obs.enabled () then
      Obs.begin_span
        ~args:[ ("problems", string_of_int (List.length ps)) ]
        "gemm.batch"
    else Obs.none
  in
  List.iter
    (fun p ->
      blis ~alpha:p.p_alpha ~beta:p.p_beta ~pool ~ws ~blocking:p.p_blocking
        ~mr:p.p_mr ~nr:p.p_nr ~ukr p.p_a p.p_b p.p_c)
    ps;
  Obs.end_span sp

(** {!batch} over the monomorphized Bigarray tier: every problem runs
    through {!blis_ba} with the same kernel table and arenas. *)
let batch_ba ?pool ?(ws = default_workspace) ~(kernels : unit -> ukr_ba array)
    (ps : problem list) : unit =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let sp =
    if Obs.enabled () then
      Obs.begin_span
        ~args:[ ("problems", string_of_int (List.length ps)) ]
        "gemm.batch"
    else Obs.none
  in
  List.iter
    (fun p ->
      blis_ba ~alpha:p.p_alpha ~beta:p.p_beta ~pool ~ws ~blocking:p.p_blocking
        ~mr:p.p_mr ~nr:p.p_nr ~kernels p.p_a p.p_b p.p_c)
    ps;
  Obs.end_span sp
