(** Micro-kernel auto-selection by exhaustive evaluation — the paper's
    "the optimization process ... boil[s] down to evaluating a number of
    generated micro-kernels". Candidates are priced on the modeled machine
    (full-GEMM cost including fringes, packing, per-shape blocking) and
    ranked; results are memoized per problem. *)

type result = {
  mr : int;
  nr : int;
  gflops : float;
  blocking : Analytical.blocking;
}

val default_shapes : (int * int) list

(** Register-file feasibility: accumulator tile + one A panel + one B panel
    must fit the architectural registers, and [lanes | mr]. *)
val feasible : Exo_isa.Machine.t -> lanes:int -> mr:int -> nr:int -> bool

val evaluate :
  ?kit:Exo_ukr_gen.Kits.t ->
  Exo_isa.Machine.t -> mr:int -> nr:int -> m:int -> n:int -> k:int -> result

(** Rank every feasible candidate for one GEMM, best first (memoized,
    domain-safe). Candidates are priced in parallel on [jobs] domains
    (default: {!Exo_par.Pool.default_jobs}); the ranking is identical for
    every [jobs]. When an {!Exo_cache.Store} is ambient, rankings also
    read through disk and persist across process restarts (keyed on
    machine, kit + kit digest, candidate list and problem). *)
val sweep :
  ?kit:Exo_ukr_gen.Kits.t ->
  ?shapes:(int * int) list ->
  ?jobs:int ->
  Exo_isa.Machine.t -> m:int -> n:int -> k:int -> result list

val best :
  ?kit:Exo_ukr_gen.Kits.t ->
  ?shapes:(int * int) list ->
  ?jobs:int ->
  Exo_isa.Machine.t -> m:int -> n:int -> k:int -> result

(** Drop every memoized ranking (benchmarks re-measuring cold sweeps). *)
val clear_cache : unit -> unit
