(** The micro-kernel registry: the three competitors of Section IV, in both
    numeric form (a {!Gemm.ukr} for running real GEMMs) and model form
    (a {!Exo_sim.Kernel_model.impl} for the performance simulation).

    - [EXO]: the generated family — one specialized kernel per (mr, nr),
      produced on demand by {!Exo_ukr_gen.Family} and cached; numerics run
      the scheduled IR through the reference interpreter.
    - [BLIS]: the monolithic 8×12 assembly kernel model (fringe logic,
      prefetch-capable).
    - [NEON]: the monolithic 8×12 hand-written-intrinsics kernel model
      (fringe logic, compiler-scheduled).

    Domain-safety: generated kernels are immutable IR values, so one
    process-wide {!Exo_par.Memo} serves every domain. Compiled kernels
    ({!Exo_interp.Compile.t}) are NOT re-entrant — each carries a mutable
    argument frame and fused-loop plan cells — so the compiled cache is
    per-domain ([Domain.DLS]): each domain compiles its own closure once
    and reuses it freely. The monomorphized Bigarray table is the
    exception: its executors are re-entrant (per-call accumulators), so
    one immutable table per (kit, mr, nr) is built once and shared by
    every domain.

    Persistence: when an {!Exo_cache.Store} is ambient, table entries are
    hydrated from their serialized artifacts — skipping the
    schedule → certify → lower pipeline — after re-proving the stored
    access summary with {!Exo_check.Tierlint}; cold builds write the
    artifacts back for the next process. *)

open Exo_ukr_gen
module KM = Exo_sim.Kernel_model
module B = Exo_interp.Buffer
module I = Exo_interp.Interp
module C = Exo_interp.Compile
module Tierlint = Exo_check.Tierlint
module Memo = Exo_par.Memo

(* ------------------------------------------------------------------ *)
(* Generated-kernel cache                                              *)

let cache : (string * int * int, Family.kernel) Memo.t = Memo.create ()

let exo_kernel ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : Family.kernel =
  Memo.find_or_add cache (kit.Kits.name, mr, nr) (fun () ->
      (* persistent read-through: a warm ambient store answers from disk *)
      Family.generate_cached ~kit ~mr ~nr ())

(* Compile-once/run-many: the closure-compiled form of each generated
   kernel, cached alongside the IR so every micro-kernel call after the
   first is a plain closure invocation. Per-domain — see the module
   header. *)
let compiled_key : (string * int * int, C.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let exo_compiled ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : C.t =
  let tbl = Domain.DLS.get compiled_key in
  let key = (kit.Kits.name, mr, nr) in
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
      let c = C.compile (exo_kernel ~kit ~mr ~nr ()).Family.proc in
      Hashtbl.replace tbl key c;
      c

(** Model impl for a generated kernel. *)
let exo_impl ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : KM.impl =
  let k = exo_kernel ~kit ~mr ~nr () in
  KM.of_proc ~name:(Fmt.str "EXO %dx%d" mr nr) ~mr ~nr k.Family.proc

let base_8x12 ?(kit = Kits.neon_f32) () = (exo_kernel ~kit ~mr:8 ~nr:12 ()).Family.proc

let blis_impl ?kit () : KM.impl = KM.blis_asm_8x12 (base_8x12 ?kit ())
let neon_impl ?kit () : KM.impl = KM.neon_intrinsics_8x12 (base_8x12 ?kit ())

(* The specialized to_ukr tier: a generated kernel lowered to flat
   descriptor-batched float-array loops (see Compile.to_ukr). The returned
   closure owns a mutable scratch slab, so — like the compiled form — it is
   cached per domain. [None] is cached too: an unsupported proc shape is
   decided once, and callers fall back to the closure engine. Every kernel
   this cache serves passed Family.certify's all-Proved bounds gate when it
   was generated. *)
let ukr_fast_key : (string * int * int, C.ukr_fn option) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let exo_ukr_fast ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () :
    C.ukr_fn option =
  let tbl = Domain.DLS.get ukr_fast_key in
  let key = (kit.Kits.name, mr, nr) in
  match Hashtbl.find_opt tbl key with
  | Some u -> u
  | None ->
      let u =
        Option.map fst (C.to_ukr (exo_kernel ~kit ~mr ~nr ()).Family.proc)
      in
      Hashtbl.replace tbl key u;
      u

(* ------------------------------------------------------------------ *)
(* Numeric micro-kernels                                               *)

(* Eager, not [lazy]: a [Lazy.t] forced concurrently from two domains
   raises [Lazy.Undefined] in OCaml 5. The buffer is read-only (it backs
   the α/β scalar arguments), so sharing one across domains is safe. *)
let ones_buf = B.of_array Exo_ir.Dtype.F32 [ 1 ] [| 1.0 |]

(* Zero-copy offset view over a caller array (row-major, dims as given):
   how the engine paths see an arena panel starting at [offset]. *)
let view dt (data : float array) (dims : int list) (offset : int) : B.t =
  let dims = Array.of_list dims in
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  { B.data; dtype = dt; dims; strides; offset }

(** Run a generated kernel on a packed tile. Dispatches to the specialized
    flat-loop tier ({!Exo_interp.Compile.to_ukr}) when the kernel admits it
    — the paper-scale GEMM hot path — and otherwise binds the caller's
    arrays as zero-copy buffer views into the compiled closure engine. *)
let exo_ukr ?(kit = Kits.neon_f32) () : Gemm.ukr =
 fun ~kc ~mr ~nr ~ac ~ao ~bc ~bo ~c ->
  match exo_ukr_fast ~kit ~mr ~nr () with
  | Some u -> u ~kc ~ac ~ao ~bc ~bo ~c
  | None ->
      let ck = exo_compiled ~kit ~mr ~nr () in
      let dt = kit.Kits.dt in
      C.run ck
        [
          I.VInt kc;
          I.VBuf ones_buf;
          I.VBuf (view dt ac [ kc; mr ] ao);
          I.VBuf (view dt bc [ kc; nr ] bo);
          I.VBuf ones_buf;
          I.VBuf (view dt c [ nr; mr ] 0);
        ]

(** The closure-engine path only — the PR 1 execution tier, kept addressable
    as the baseline the specialized tier is measured against
    ([bench/main.exe perf-gemm]). *)
let exo_ukr_closure ?(kit = Kits.neon_f32) () : Gemm.ukr =
 fun ~kc ~mr ~nr ~ac ~ao ~bc ~bo ~c ->
  let ck = exo_compiled ~kit ~mr ~nr () in
  let dt = kit.Kits.dt in
  C.run ck
    [
      I.VInt kc;
      I.VBuf ones_buf;
      I.VBuf (view dt ac [ kc; mr ] ao);
      I.VBuf (view dt bc [ kc; nr ] bo);
      I.VBuf ones_buf;
      I.VBuf (view dt c [ nr; mr ] 0);
    ]

(** The same tile run through the tree-walking interpreter — the
    definitional oracle, kept for cross-checking the compiled paths. *)
let exo_ukr_interp ?(kit = Kits.neon_f32) () : Gemm.ukr =
 fun ~kc ~mr ~nr ~ac ~ao ~bc ~bo ~c ->
  let k = exo_kernel ~kit ~mr ~nr () in
  let dt = kit.Kits.dt in
  I.run k.Family.proc
    [
      I.VInt kc;
      I.VBuf ones_buf;
      I.VBuf (view dt ac [ kc; mr ] ao);
      I.VBuf (view dt bc [ kc; nr ] bo);
      I.VBuf ones_buf;
      I.VBuf (view dt c [ nr; mr ] 0);
    ]

(** The monolithic kernels' numeric behaviour (identical arithmetic; their
    differences are micro-architectural and live in the model impls). *)
let monolithic_ukr : Gemm.ukr = Gemm.reference_ukr

(* ------------------------------------------------------------------ *)
(* The monomorphized (mr' × nr') kernel table                          *)

module Obs = Exo_obs.Obs

(* Dispatch counters. The bench's fallback gate must see every call even
   in plain (non-profile) runs, so the authoritative cells are process-wide
   atomics that are always on; the Obs counters mirror them for the profile
   exporter (Obs drops mutations while disabled). *)
let fast_calls = Atomic.make 0
let fallback_calls = Atomic.make 0
let native_calls = Atomic.make 0
let obs_fast = Obs.counter "gemm.ukr_fast_calls"
let obs_fallback = Obs.counter "gemm.ukr_fallback_calls"
let obs_native = Obs.counter "gemm.ukr_native_calls"

(* (fast, fallback) with native dispatches counted as fast: the native tier
   serves exactly the calls the Bigarray tier would have, so every existing
   fallbacks-zero gate keeps its meaning; ukr_tier_counts splits them. *)
let ukr_dispatch_counts () =
  (Atomic.get fast_calls + Atomic.get native_calls, Atomic.get fallback_calls)

let ukr_tier_counts () =
  (Atomic.get native_calls, Atomic.get fast_calls, Atomic.get fallback_calls)

let reset_dispatch_counts () =
  Atomic.set fast_calls 0;
  Atomic.set fallback_calls 0;
  Atomic.set native_calls 0

let reset_ukr_dispatch_counts = reset_dispatch_counts

(* Static translation-validation verdicts, counted at table-build time:
   entries Tierlint proves skip the dynamic integer probe; unproved ones
   keep it. Process-wide (builds happen once per domain but verdicts are
   per-build events the bench and CI gates want totals of). *)
let static_proved = Atomic.make 0
let static_unproved = Atomic.make 0
let obs_proved = Obs.counter "registry.tier_proved"
let obs_unproved = Obs.counter "registry.tier_unproved"

let tier_verdict_counts () = (Atomic.get static_proved, Atomic.get static_unproved)

let count_verdict certified =
  if certified then begin
    Atomic.incr static_proved;
    if Obs.enabled () then Obs.incr obs_proved
  end
  else begin
    Atomic.incr static_unproved;
    if Obs.enabled () then Obs.incr obs_unproved
  end

(** Provenance of a table's native-tier upgrade (always present — a
    degraded host records why it serves the Bigarray tier instead). *)
type native_info = {
  ni_enabled : bool;  (** at least one entry serves JIT'd machine code *)
  ni_target : string;  (** ["intrinsics"] | ["portable"] | ["none"] *)
  ni_cc : string;  (** compiler path, or ["none"] *)
  ni_entries : int;  (** entries serving native code (certified) *)
  ni_rejected : int;  (** eligible entries that failed certification *)
  ni_reason : string;  (** ["ok"], or why the tier is degraded *)
}

(** The complete monomorphized table for a kernel family: one entry per
    (mr', nr') with mr' ∈ 1..mr, nr' ∈ 1..nr, flat at index
    [(mr'-1)·nr + nr'-1]. Entries the Bigarray tier certified are direct
    monomorphized executors (upgraded in place to JIT'd machine code where
    the native tier certified); the rest ([t_fast] false — only non-f32
    kits today) copy through the closure engine and count as fallbacks. *)
type table = {
  t_kit : Kits.t;
  t_mr : int;
  t_nr : int;
  t_entries : C.ukr_ba array;
  t_base : C.ukr_ba array;
  t_fast : bool array;
  t_proved : bool array;
  t_native : bool array;
  t_native_info : native_info;
}

let table_holes (t : table) : int =
  Array.fold_left (fun n f -> if f then n else n + 1) 0 t.t_fast

let table_complete (t : table) : bool = table_holes t = 0

let table_entry (t : table) ~(mr : int) ~(nr : int) : C.ukr_ba =
  if mr < 1 || mr > t.t_mr || nr < 1 || nr > t.t_nr then
    invalid_arg "Registry.table_entry: shape outside the table";
  t.t_entries.(((mr - 1) * t.t_nr) + nr - 1)

let table_base_entry (t : table) ~(mr : int) ~(nr : int) : C.ukr_ba =
  if mr < 1 || mr > t.t_mr || nr < 1 || nr > t.t_nr then
    invalid_arg "Registry.table_base_entry: shape outside the table";
  t.t_base.(((mr - 1) * t.t_nr) + nr - 1)

(* A counting wrapper per entry: one closure hop + one atomic add per tile
   call (~30k calls on the 1008³ run — noise next to the kernel work). *)
let count_fast (u : C.ukr_ba) : C.ukr_ba =
 fun ~kc ~ac ~ao ~bc ~bo ~c ~co ->
  Atomic.incr fast_calls;
  if Obs.enabled () then Obs.incr obs_fast;
  u ~kc ~ac ~ao ~bc ~bo ~c ~co

let count_native (u : C.ukr_ba) : C.ukr_ba =
 fun ~kc ~ac ~ao ~bc ~bo ~c ~co ->
  Atomic.incr native_calls;
  if Obs.enabled () then Obs.incr obs_native;
  u ~kc ~ac ~ao ~bc ~bo ~c ~co

(* Hole filler: round-trip the Bigarray operands through float arrays into
   the closure-engine ukr. Correct for every kit (integer-domain exact, like
   the engines themselves) but slow — its call count is what the bench's
   fallbacks-zero gate pins at 0 for f32 runs. *)
let fallback_entry ~(kit : Kits.t) ~(mr : int) ~(nr : int) : C.ukr_ba =
  let module BA1 = Bigarray.Array1 in
  fun ~kc ~ac ~ao ~bc ~bo ~c ~co ->
    Atomic.incr fallback_calls;
    if Obs.enabled () then Obs.incr obs_fallback;
    let af = Array.init (max 1 (kc * mr)) (fun i -> BA1.get ac (ao + i)) in
    let bf = Array.init (max 1 (kc * nr)) (fun i -> BA1.get bc (bo + i)) in
    let cf = Array.init (nr * mr) (fun i -> BA1.get c (co + i)) in
    (exo_ukr ~kit ()) ~kc ~mr ~nr ~ac:af ~ao:0 ~bc:bf ~bo:0 ~c:cf;
    for i = 0 to (nr * mr) - 1 do
      BA1.set c (co + i) cf.(i)
    done

(* ------------------------------------------------------------------ *)
(* Persistent kernel artifacts (Exo_cache)                             *)

module Store = Exo_cache.Store

(* One serialized table entry: everything a later process needs to re-enter
   service without re-running schedule → certify → lower. [ta_summary] is
   the lowered access summary (the descriptor the executor runs); the
   hydration gate re-proves it with Tierlint before re-materializing the
   executor, so a stale or tampered artifact can never serve silently.
   Bump [entry_abi] whenever this type or executor selection changes
   meaning — old entries then simply miss. *)
type table_artifact = {
  ta_mr : int;
  ta_nr : int;
  ta_fast : bool;  (** the Bigarray tier accepted this entry at build time *)
  ta_proved : bool;  (** Tierlint verdict at build time (informational) *)
  ta_summary : C.Summary.t option;
}

let entry_abi = "regtable-v1"
let entry_kind = "kernel"

(* The content address: kit name + kit content digest (invalidates on any
   kit change), shape, pipeline variant, the kit's declared schedule-step
   count, and the compiler version (Marshal is not stable across compilers). *)
let entry_key (kit : Kits.t) ~(mr : int) ~(nr : int) : string =
  Store.key
    [
      entry_abi;
      Sys.ocaml_version;
      kit.Kits.name;
      Kits.digest kit;
      string_of_int kit.Kits.sched_steps;
      string_of_int mr;
      string_of_int nr;
      "simple";
    ]

(* Cold path: generate + certify + lower one table entry, returning the
   executor, the tier/verdict flags, and the summary to persist. *)
let build_entry ~(kit : Kits.t) ~(mr : int) ~(nr : int) :
    C.ukr_ba * bool * bool * C.Summary.t option =
  let proc = (exo_kernel ~kit ~mr ~nr ()).Family.proc in
  (* static translation validation of the lowered tape:
     a proved entry skips the dynamic integer probe *)
  let summary = C.summarize_ukr proc in
  let certified =
    match summary with
    | Some s -> Tierlint.proved (Tierlint.check s)
    | None -> false
  in
  match C.to_ukr_ba ~certified proc with
  | Some (u, _) -> (count_fast u, true, certified, summary)
  | None -> (fallback_entry ~kit ~mr ~nr, false, certified, summary)

(* Warm path: re-materialize an entry from its stored artifact. The hit
   skips schedule+certify+lower but NOT the verification gate: the stored
   summary is re-proved with Tierlint here, and only a proved summary may
   hydrate a fast executor (the hydrated executor is selected by (mr, nr)
   alone, so it is bit-identical to the cold one). [None] means the
   artifact is inconsistent or no longer proves — the caller drops it and
   rebuilds cold. *)
let hydrate_entry (a : table_artifact) ~(kit : Kits.t) ~(mr : int) ~(nr : int)
    : (C.ukr_ba * bool * bool) option =
  if a.ta_mr <> mr || a.ta_nr <> nr then None
  else
    match a.ta_summary with
    | Some s when s.C.Summary.mr = mr && s.C.Summary.nr = nr ->
        let proved = Tierlint.proved (Tierlint.check s) in
        (* a fast entry must have been statically proved when built AND
           still prove now — probe-only entries carry no static proof we
           could recheck without the proc, so they always rebuild cold *)
        if a.ta_fast then
          if not (a.ta_proved && proved) then None
          else
            Option.map
              (fun u -> (count_fast u, true, true))
              (C.ukr_ba_of_summary s)
        else Some (fallback_entry ~kit ~mr ~nr, false, proved)
    | Some _ -> None
    | None ->
        if a.ta_fast then None
        else Some (fallback_entry ~kit ~mr ~nr, false, false)

(* ------------------------------------------------------------------ *)
(* The native JIT tier                                                 *)

module Native = Exo_native.Jit
module Host = Exo_native.Host
module C_emit = Exo_codegen.C_emit

(* Part of the shared-object content address: bump whenever the emitted
   ABI, the eligibility rule, or symbol naming changes meaning. *)
let native_abi = "native-v1"

(* The vector ISA a kit's intrinsics emission needs, by naming convention
   (kit names lead with their ISA: neon-f32, avx2-f32, ...). *)
let required_isa (kit : Kits.t) : Host.isa option =
  let prefixed p = String.starts_with ~prefix:p kit.Kits.name in
  if prefixed "neon-" then Some Host.Neon
  else if prefixed "avx2-" then Some Host.Avx2
  else if prefixed "avx512-" then Some Host.Avx512
  else if prefixed "rvv-" then Some Host.Rvv
  else None

(** Which native lowering a kit gets on THIS host: its intrinsics when the
    machine executes the kit's ISA, the portable autovectorizable nest
    otherwise. [None] — no native tier — for non-f32 kits (the fixed ABI
    is float32). *)
let native_target_for (kit : Kits.t) : C_emit.native_target option =
  if kit.Kits.dt <> Exo_ir.Dtype.F32 then None
  else
    match required_isa kit with
    | Some isa when Host.supports isa -> Some C_emit.Nat_intrinsics
    | _ -> Some C_emit.Nat_portable

(* The shared object's content address. No source digest on purpose: every
   part that determines the source (kit content, shape, pipeline variant,
   target) is a key part, so a warm hit skips source generation entirely.
   Compiler identity and tuning flags are parts too — a .so built by a
   different compiler, or for a different -march, is a different entry. *)
let native_key (kit : Kits.t) ~(mr : int) ~(nr : int)
    ~(target : C_emit.native_target) : string =
  Store.key
    [
      native_abi;
      Sys.ocaml_version;
      kit.Kits.name;
      Kits.digest kit;
      string_of_int kit.Kits.sched_steps;
      string_of_int mr;
      string_of_int nr;
      "simple";
      C_emit.native_target_name target;
      Host.cc_identity ();
      String.concat " " (Host.march_flags ());
    ]

(** The native-ABI C source for a whole kernel bank — one exported
    [exo_ukr_<mr'>x<nr'>] per table entry. Intrinsics emission pulls each
    scheduled proc from the kernel memo (already populated by the table
    build); the portable lowering needs only the shapes. *)
let native_source ~(kit : Kits.t) ~(mr : int) ~(nr : int)
    ~(target : C_emit.native_target) () : string =
  let kernels =
    List.init (mr * nr) (fun idx ->
        let mr' = (idx / nr) + 1 and nr' = (idx mod nr) + 1 in
        let proc =
          match target with
          | C_emit.Nat_intrinsics ->
              Some (exo_kernel ~kit ~mr:mr' ~nr:nr' ()).Family.proc
          | C_emit.Nat_portable -> None
        in
        (mr', nr', proc))
  in
  let header_comment =
    Fmt.str "native kernel bank: kit=%s table=%dx%d target=%s abi=%s\ncc=%s"
      kit.Kits.name mr nr
      (C_emit.native_target_name target)
      native_abi (Host.cc_identity ())
  in
  C_emit.native_unit ~header_comment ~target ~kernels ()

(* A bound native kernel as a ukr_ba: the same operand contract as the
   Bigarray tier (ranges checked up front, Invalid_argument on violation)
   in front of the raw no-alloc call. The C tile is the contiguous
   transposed nr×mr layout every blis_ba dispatch site uses, so ldc = mr. *)
let native_raw ~(mr : int) ~(nr : int) ~(slot : int) : C.ukr_ba =
  let module BA1 = Bigarray.Array1 in
  fun ~kc ~ac ~ao ~bc ~bo ~c ~co ->
    if
      kc < 0 || ao < 0 || bo < 0 || co < 0
      || ao + (kc * mr) > BA1.dim ac
      || bo + (kc * nr) > BA1.dim bc
      || co + (nr * mr) > BA1.dim c
    then invalid_arg "Registry.native: operands out of range";
    Native.call ~slot ~kc ~a:ac ~ao ~b:bc ~bo ~c ~co ~ldc:mr

(* Decision 12's gate: JIT'd code is certified-then-trusted, never
   trusted-on-load. Bit-comparison against the serving Bigarray-tier entry
   on the integer probe domain (values in [-3, 3] — exact in f32 and f64
   alike, so accumulation order and FMA contraction cannot blur a real
   mismatch), over kc spanning 0, the vector widths and an odd tail. *)
let certify_native ~(mr : int) ~(nr : int) ~(base : C.ukr_ba)
    ~(native : C.ukr_ba) : bool =
  let module BA1 = Bigarray.Array1 in
  try
    List.for_all
      (fun kc ->
        let st = Random.State.make [| 0x9a71; mr; nr; kc |] in
        let mk n =
          let ba = BA1.create Bigarray.float32 Bigarray.c_layout (max 1 n) in
          for i = 0 to n - 1 do
            BA1.set ba i (float_of_int (Random.State.int st 7 - 3))
          done;
          ba
        in
        let a = mk (kc * mr) and b = mk (kc * nr) in
        let c1 = mk (nr * mr) in
        let c2 = BA1.create Bigarray.float32 Bigarray.c_layout (nr * mr) in
        BA1.blit c1 c2;
        base ~kc ~ac:a ~ao:0 ~bc:b ~bo:0 ~c:c1 ~co:0;
        native ~kc ~ac:a ~ao:0 ~bc:b ~bo:0 ~c:c2 ~co:0;
        let ok = ref true in
        for i = 0 to (nr * mr) - 1 do
          if not (Float.equal (BA1.get c1 i) (BA1.get c2 i)) then ok := false
        done;
        !ok)
      [ 0; 1; 2; 3; 8; 17 ]
  with _ -> false

let no_native reason =
  {
    ni_enabled = false;
    ni_target = "none";
    ni_cc = "none";
    ni_entries = 0;
    ni_rejected = 0;
    ni_reason = reason;
  }

(* Upgrade a freshly built table's eligible entries to JIT'd machine code:
   one compilation unit for the whole bank (one cc run, one dlopen, one
   dlsym per kernel), cache-first through the ambient store, then each
   bound kernel certified against the Bigarray entry it would replace
   before it may serve. Any failure — no compiler, compile error on both
   targets, a certification mismatch — degrades that scope gracefully to
   the Bigarray tier and says why in the returned info. *)
let native_upgrade ~(kit : Kits.t) ~(mr : int) ~(nr : int)
    ~(store : Store.t option) ~(entries : C.ukr_ba array) ~(fast : bool array)
    ~(proved : bool array) ~(native : bool array) : native_info =
  match native_target_for kit with
  | None -> no_native (Fmt.str "kit %s is not f32" kit.Kits.name)
  | Some primary -> (
      if not (Host.enabled ()) then
        no_native (Fmt.str "disabled (%s=0)" Host.env_native)
      else
        match Host.cc () with
        | None -> no_native "no C compiler on host"
        | Some cc_path -> (
            (* eligibility: entries the Bigarray tier certified AND whose
               lowered tape Tierlint proved — the proof (bounds, write-set,
               accumulation shape) is what justifies emitting the canonical
               nest for the shape *)
            let idxs =
              List.filter
                (fun idx -> fast.(idx) && proved.(idx))
                (List.init (mr * nr) Fun.id)
            in
            if idxs = [] then no_native "no eligible entries"
            else
              let syms =
                List.map
                  (fun idx ->
                    let mr' = (idx / nr) + 1 and nr' = (idx mod nr) + 1 in
                    C_emit.native_sym ~mr:mr' ~nr:nr')
                  idxs
              in
              let try_target target =
                match
                  Native.get_or_compile ~store
                    ~key:(native_key kit ~mr ~nr ~target)
                    ~src:(fun () -> native_source ~kit ~mr ~nr ~target ())
                    ~syms
                with
                | Ok (slots, _from_cache) -> Some (target, slots)
                | Error _ -> None
              in
              let targets =
                match primary with
                | C_emit.Nat_portable -> [ C_emit.Nat_portable ]
                | C_emit.Nat_intrinsics ->
                    [ C_emit.Nat_intrinsics; C_emit.Nat_portable ]
              in
              match List.find_map try_target targets with
              | None -> no_native "native compilation failed"
              | Some (target, slots) ->
                  let certified = ref 0 and rejected = ref 0 in
                  List.iteri
                    (fun si idx ->
                      let mr' = (idx / nr) + 1 and nr' = (idx mod nr) + 1 in
                      let cand =
                        native_raw ~mr:mr' ~nr:nr' ~slot:slots.(si)
                      in
                      if
                        certify_native ~mr:mr' ~nr:nr' ~base:entries.(idx)
                          ~native:cand
                      then begin
                        entries.(idx) <- count_native cand;
                        native.(idx) <- true;
                        incr certified
                      end
                      else incr rejected)
                    idxs;
                  {
                    ni_enabled = !certified > 0;
                    ni_target = C_emit.native_target_name target;
                    ni_cc = cc_path;
                    ni_entries = !certified;
                    ni_rejected = !rejected;
                    ni_reason =
                      (if !certified > 0 then "ok"
                       else "all entries failed certification");
                  }))

(** The native-ABI artifacts for a bank without building a table: the
    target this host would pick and the C source ([None] for non-f32
    kits). The CLI's [ukrgen native] writes these out for inspection and
    CI artifact upload. *)
let native_emit ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () :
    (C_emit.native_target * string) option =
  Option.map
    (fun target -> (target, native_source ~kit ~mr ~nr ~target ()))
    (native_target_for kit)

(* One immutable table per (kit, mr, nr) for the whole process. Entries
   are re-entrant (executors allocate their accumulator per call; the
   fallback resolves its per-domain engine at call time), so every domain
   of a pool shares the same entry array — no per-domain rebuilds. *)
let table_memo : (string * int * int, table) Memo.t = Memo.create ()

let exo_table ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : table =
  if mr < 1 || nr < 1 then invalid_arg "Registry.exo_table: mr and nr must be ≥ 1";
  Memo.find_or_add table_memo (kit.Kits.name, mr, nr) (fun () ->
      Obs.with_span
        ~args:
          (if Obs.enabled () then
             [ ("kit", kit.Kits.name); ("shape", Fmt.str "%dx%d" mr nr) ]
           else [])
        "registry.build_table"
        (fun () ->
          let store = Store.ambient () in
          let fast = Array.make (mr * nr) false in
          let proved = Array.make (mr * nr) false in
          let entries =
            Array.init (mr * nr) (fun idx ->
                let mr' = (idx / nr) + 1 and nr' = (idx mod nr) + 1 in
                let key = entry_key kit ~mr:mr' ~nr:nr' in
                let hydrated =
                  match store with
                  | None -> None
                  | Some st -> (
                      match Store.get st ~kind:entry_kind ~key with
                      | None -> None
                      | Some (a : table_artifact) -> (
                          match hydrate_entry a ~kit ~mr:mr' ~nr:nr' with
                          | Some r -> Some r
                          | None ->
                              (* inconsistent or no-longer-proving artifact:
                                 drop it and rebuild from source *)
                              Store.remove st ~kind:entry_kind ~key;
                              None))
                in
                let u, fast', proved' =
                  match hydrated with
                  | Some r -> r
                  | None ->
                      let u, fast', proved', summary =
                        build_entry ~kit ~mr:mr' ~nr:nr'
                      in
                      (match store with
                      | Some st ->
                          ignore
                            (Store.put st ~kind:entry_kind ~key
                               {
                                 ta_mr = mr';
                                 ta_nr = nr';
                                 ta_fast = fast';
                                 ta_proved = proved';
                                 ta_summary = summary;
                               })
                      | None -> ());
                      (u, fast', proved')
                in
                count_verdict proved';
                fast.(idx) <- fast';
                proved.(idx) <- proved';
                u)
          in
          (* the Bigarray-tier bank, frozen before the native upgrade: the
             certification oracle and the A side of the bench's tier A-B *)
          let base = Array.copy entries in
          let native = Array.make (mr * nr) false in
          let native_info =
            native_upgrade ~kit ~mr ~nr ~store ~entries ~fast ~proved ~native
          in
          {
            t_kit = kit;
            t_mr = mr;
            t_nr = nr;
            t_entries = entries;
            t_base = base;
            t_fast = fast;
            t_proved = proved;
            t_native = native;
            t_native_info = native_info;
          }))

(** Forget every memoized kernel and table so the next {!exo_table} call
    exercises the cold path — the bench's cold/warm A-B harness and the
    cache tests need a genuine rebuild inside one process. Also resets the
    calling domain's compiled-closure caches. Not for production paths. *)
let clear_memos_for_bench () =
  Memo.clear cache;
  Memo.clear table_memo;
  Hashtbl.reset (Domain.DLS.get compiled_key);
  Hashtbl.reset (Domain.DLS.get ukr_fast_key)

(** The {!Gemm.blis_ba} [kernels] thunk: called once per pool task, it
    resolves the shared table (building it on first use) and hands back
    the flat entry array for O(1) dispatch. *)
let exo_bank ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () :
    unit -> C.ukr_ba array =
 fun () -> (exo_table ~kit ~mr ~nr ()).t_entries

(** The Bigarray-tier bank of the same table (entries as they were before
    the native upgrade): the baseline side of the bench's native-vs-BA
    A-B comparison. *)
let exo_bank_ba ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () :
    unit -> C.ukr_ba array =
 fun () -> (exo_table ~kit ~mr ~nr ()).t_base
