(** The micro-kernel registry: the three competitors of Section IV, in both
    numeric form (a {!Gemm.ukr} for running real GEMMs) and model form
    (a {!Exo_sim.Kernel_model.impl} for the performance simulation).

    - [EXO]: the generated family — one specialized kernel per (mr, nr),
      produced on demand by {!Exo_ukr_gen.Family} and cached; numerics run
      the scheduled IR through the reference interpreter.
    - [BLIS]: the monolithic 8×12 assembly kernel model (fringe logic,
      prefetch-capable).
    - [NEON]: the monolithic 8×12 hand-written-intrinsics kernel model
      (fringe logic, compiler-scheduled).

    Domain-safety: generated kernels are immutable IR values, so one
    process-wide {!Exo_par.Memo} serves every domain. Compiled kernels
    ({!Exo_interp.Compile.t}) are NOT re-entrant — each carries a mutable
    argument frame and fused-loop plan cells — so the compiled cache is
    per-domain ([Domain.DLS]): each domain compiles its own closure once
    and reuses it freely. *)

open Exo_ukr_gen
module KM = Exo_sim.Kernel_model
module B = Exo_interp.Buffer
module I = Exo_interp.Interp
module C = Exo_interp.Compile
module Tierlint = Exo_check.Tierlint
module Memo = Exo_par.Memo

(* ------------------------------------------------------------------ *)
(* Generated-kernel cache                                              *)

let cache : (string * int * int, Family.kernel) Memo.t = Memo.create ()

let exo_kernel ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : Family.kernel =
  Memo.find_or_add cache (kit.Kits.name, mr, nr) (fun () ->
      Family.generate ~kit ~mr ~nr ())

(* Compile-once/run-many: the closure-compiled form of each generated
   kernel, cached alongside the IR so every micro-kernel call after the
   first is a plain closure invocation. Per-domain — see the module
   header. *)
let compiled_key : (string * int * int, C.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let exo_compiled ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : C.t =
  let tbl = Domain.DLS.get compiled_key in
  let key = (kit.Kits.name, mr, nr) in
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
      let c = C.compile (exo_kernel ~kit ~mr ~nr ()).Family.proc in
      Hashtbl.replace tbl key c;
      c

(** Model impl for a generated kernel. *)
let exo_impl ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : KM.impl =
  let k = exo_kernel ~kit ~mr ~nr () in
  KM.of_proc ~name:(Fmt.str "EXO %dx%d" mr nr) ~mr ~nr k.Family.proc

let base_8x12 ?(kit = Kits.neon_f32) () = (exo_kernel ~kit ~mr:8 ~nr:12 ()).Family.proc

let blis_impl ?kit () : KM.impl = KM.blis_asm_8x12 (base_8x12 ?kit ())
let neon_impl ?kit () : KM.impl = KM.neon_intrinsics_8x12 (base_8x12 ?kit ())

(* The specialized to_ukr tier: a generated kernel lowered to flat
   descriptor-batched float-array loops (see Compile.to_ukr). The returned
   closure owns a mutable scratch slab, so — like the compiled form — it is
   cached per domain. [None] is cached too: an unsupported proc shape is
   decided once, and callers fall back to the closure engine. Every kernel
   this cache serves passed Family.certify's all-Proved bounds gate when it
   was generated. *)
let ukr_fast_key : (string * int * int, C.ukr_fn option) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let exo_ukr_fast ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () :
    C.ukr_fn option =
  let tbl = Domain.DLS.get ukr_fast_key in
  let key = (kit.Kits.name, mr, nr) in
  match Hashtbl.find_opt tbl key with
  | Some u -> u
  | None ->
      let u =
        Option.map fst (C.to_ukr (exo_kernel ~kit ~mr ~nr ()).Family.proc)
      in
      Hashtbl.replace tbl key u;
      u

(* ------------------------------------------------------------------ *)
(* Numeric micro-kernels                                               *)

(* Eager, not [lazy]: a [Lazy.t] forced concurrently from two domains
   raises [Lazy.Undefined] in OCaml 5. The buffer is read-only (it backs
   the α/β scalar arguments), so sharing one across domains is safe. *)
let ones_buf = B.of_array Exo_ir.Dtype.F32 [ 1 ] [| 1.0 |]

(* Zero-copy offset view over a caller array (row-major, dims as given):
   how the engine paths see an arena panel starting at [offset]. *)
let view dt (data : float array) (dims : int list) (offset : int) : B.t =
  let dims = Array.of_list dims in
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  { B.data; dtype = dt; dims; strides; offset }

(** Run a generated kernel on a packed tile. Dispatches to the specialized
    flat-loop tier ({!Exo_interp.Compile.to_ukr}) when the kernel admits it
    — the paper-scale GEMM hot path — and otherwise binds the caller's
    arrays as zero-copy buffer views into the compiled closure engine. *)
let exo_ukr ?(kit = Kits.neon_f32) () : Gemm.ukr =
 fun ~kc ~mr ~nr ~ac ~ao ~bc ~bo ~c ->
  match exo_ukr_fast ~kit ~mr ~nr () with
  | Some u -> u ~kc ~ac ~ao ~bc ~bo ~c
  | None ->
      let ck = exo_compiled ~kit ~mr ~nr () in
      let dt = kit.Kits.dt in
      C.run ck
        [
          I.VInt kc;
          I.VBuf ones_buf;
          I.VBuf (view dt ac [ kc; mr ] ao);
          I.VBuf (view dt bc [ kc; nr ] bo);
          I.VBuf ones_buf;
          I.VBuf (view dt c [ nr; mr ] 0);
        ]

(** The closure-engine path only — the PR 1 execution tier, kept addressable
    as the baseline the specialized tier is measured against
    ([bench/main.exe perf-gemm]). *)
let exo_ukr_closure ?(kit = Kits.neon_f32) () : Gemm.ukr =
 fun ~kc ~mr ~nr ~ac ~ao ~bc ~bo ~c ->
  let ck = exo_compiled ~kit ~mr ~nr () in
  let dt = kit.Kits.dt in
  C.run ck
    [
      I.VInt kc;
      I.VBuf ones_buf;
      I.VBuf (view dt ac [ kc; mr ] ao);
      I.VBuf (view dt bc [ kc; nr ] bo);
      I.VBuf ones_buf;
      I.VBuf (view dt c [ nr; mr ] 0);
    ]

(** The same tile run through the tree-walking interpreter — the
    definitional oracle, kept for cross-checking the compiled paths. *)
let exo_ukr_interp ?(kit = Kits.neon_f32) () : Gemm.ukr =
 fun ~kc ~mr ~nr ~ac ~ao ~bc ~bo ~c ->
  let k = exo_kernel ~kit ~mr ~nr () in
  let dt = kit.Kits.dt in
  I.run k.Family.proc
    [
      I.VInt kc;
      I.VBuf ones_buf;
      I.VBuf (view dt ac [ kc; mr ] ao);
      I.VBuf (view dt bc [ kc; nr ] bo);
      I.VBuf ones_buf;
      I.VBuf (view dt c [ nr; mr ] 0);
    ]

(** The monolithic kernels' numeric behaviour (identical arithmetic; their
    differences are micro-architectural and live in the model impls). *)
let monolithic_ukr : Gemm.ukr = Gemm.reference_ukr

(* ------------------------------------------------------------------ *)
(* The monomorphized (mr' × nr') kernel table                          *)

module Obs = Exo_obs.Obs

(* Dispatch counters. The bench's fallback gate must see every call even
   in plain (non-profile) runs, so the authoritative cells are process-wide
   atomics that are always on; the Obs counters mirror them for the profile
   exporter (Obs drops mutations while disabled). *)
let fast_calls = Atomic.make 0
let fallback_calls = Atomic.make 0
let obs_fast = Obs.counter "gemm.ukr_fast_calls"
let obs_fallback = Obs.counter "gemm.ukr_fallback_calls"

let ukr_dispatch_counts () = (Atomic.get fast_calls, Atomic.get fallback_calls)

let reset_dispatch_counts () =
  Atomic.set fast_calls 0;
  Atomic.set fallback_calls 0

let reset_ukr_dispatch_counts = reset_dispatch_counts

(* Static translation-validation verdicts, counted at table-build time:
   entries Tierlint proves skip the dynamic integer probe; unproved ones
   keep it. Process-wide (builds happen once per domain but verdicts are
   per-build events the bench and CI gates want totals of). *)
let static_proved = Atomic.make 0
let static_unproved = Atomic.make 0
let obs_proved = Obs.counter "registry.tier_proved"
let obs_unproved = Obs.counter "registry.tier_unproved"

let tier_verdict_counts () = (Atomic.get static_proved, Atomic.get static_unproved)

(** The complete monomorphized table for a kernel family: one entry per
    (mr', nr') with mr' ∈ 1..mr, nr' ∈ 1..nr, flat at index
    [(mr'-1)·nr + nr'-1]. Entries the Bigarray tier certified are direct
    monomorphized executors; the rest ([t_fast] false — only non-f32 kits
    today) copy through the closure engine and count as fallbacks. *)
type table = {
  t_kit : Kits.t;
  t_mr : int;
  t_nr : int;
  t_entries : C.ukr_ba array;
  t_fast : bool array;
  t_proved : bool array;
}

let table_holes (t : table) : int =
  Array.fold_left (fun n f -> if f then n else n + 1) 0 t.t_fast

let table_complete (t : table) : bool = table_holes t = 0

let table_entry (t : table) ~(mr : int) ~(nr : int) : C.ukr_ba =
  if mr < 1 || mr > t.t_mr || nr < 1 || nr > t.t_nr then
    invalid_arg "Registry.table_entry: shape outside the table";
  t.t_entries.(((mr - 1) * t.t_nr) + nr - 1)

(* A counting wrapper per entry: one closure hop + one atomic add per tile
   call (~30k calls on the 1008³ run — noise next to the kernel work). *)
let count_fast (u : C.ukr_ba) : C.ukr_ba =
 fun ~kc ~ac ~ao ~bc ~bo ~c ~co ->
  Atomic.incr fast_calls;
  if Obs.enabled () then Obs.incr obs_fast;
  u ~kc ~ac ~ao ~bc ~bo ~c ~co

(* Hole filler: round-trip the Bigarray operands through float arrays into
   the closure-engine ukr. Correct for every kit (integer-domain exact, like
   the engines themselves) but slow — its call count is what the bench's
   fallbacks-zero gate pins at 0 for f32 runs. *)
let fallback_entry ~(kit : Kits.t) ~(mr : int) ~(nr : int) : C.ukr_ba =
  let module BA1 = Bigarray.Array1 in
  fun ~kc ~ac ~ao ~bc ~bo ~c ~co ->
    Atomic.incr fallback_calls;
    if Obs.enabled () then Obs.incr obs_fallback;
    let af = Array.init (max 1 (kc * mr)) (fun i -> BA1.get ac (ao + i)) in
    let bf = Array.init (max 1 (kc * nr)) (fun i -> BA1.get bc (bo + i)) in
    let cf = Array.init (nr * mr) (fun i -> BA1.get c (co + i)) in
    (exo_ukr ~kit ()) ~kc ~mr ~nr ~ac:af ~ao:0 ~bc:bf ~bo:0 ~c:cf;
    for i = 0 to (nr * mr) - 1 do
      BA1.set c (co + i) cf.(i)
    done

(* Per-domain, like every executor cache here: each table entry owns
   mutable scratch. The IR itself comes from the process-wide Memo. *)
let table_key : (string * int * int, table) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let exo_table ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : table =
  if mr < 1 || nr < 1 then invalid_arg "Registry.exo_table: mr and nr must be ≥ 1";
  let tbl = Domain.DLS.get table_key in
  let key = (kit.Kits.name, mr, nr) in
  match Hashtbl.find_opt tbl key with
  | Some t -> t
  | None ->
      let t =
        Obs.with_span
          ~args:
            (if Obs.enabled () then
               [ ("kit", kit.Kits.name); ("shape", Fmt.str "%dx%d" mr nr) ]
             else [])
          "registry.build_table"
          (fun () ->
            let fast = Array.make (mr * nr) false in
            let proved = Array.make (mr * nr) false in
            let entries =
              Array.init (mr * nr) (fun idx ->
                  let mr' = (idx / nr) + 1 and nr' = (idx mod nr) + 1 in
                  let proc = (exo_kernel ~kit ~mr:mr' ~nr:nr' ()).Family.proc in
                  (* static translation validation of the lowered tape:
                     a proved entry skips the dynamic integer probe *)
                  let certified =
                    match C.summarize_ukr proc with
                    | Some s -> Tierlint.proved (Tierlint.check s)
                    | None -> false
                  in
                  proved.(idx) <- certified;
                  (if certified then begin
                     Atomic.incr static_proved;
                     if Obs.enabled () then Obs.incr obs_proved
                   end
                   else begin
                     Atomic.incr static_unproved;
                     if Obs.enabled () then Obs.incr obs_unproved
                   end);
                  match C.to_ukr_ba ~certified proc with
                  | Some (u, _) ->
                      fast.(idx) <- true;
                      count_fast u
                  | None -> fallback_entry ~kit ~mr:mr' ~nr:nr')
            in
            {
              t_kit = kit;
              t_mr = mr;
              t_nr = nr;
              t_entries = entries;
              t_fast = fast;
              t_proved = proved;
            })
      in
      Hashtbl.replace tbl key t;
      t

(** The {!Gemm.blis_ba} [kernels] thunk: called once per pool task, it
    resolves THIS domain's table (building it on first use) and hands back
    the flat entry array for O(1) dispatch. *)
let exo_bank ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () :
    unit -> C.ukr_ba array =
 fun () -> (exo_table ~kit ~mr ~nr ()).t_entries
