(** The micro-kernel registry: the three competitors of Section IV, in both
    numeric form (a {!Gemm.ukr} for running real GEMMs) and model form
    (a {!Exo_sim.Kernel_model.impl} for the performance simulation).

    - [EXO]: the generated family — one specialized kernel per (mr, nr),
      produced on demand by {!Exo_ukr_gen.Family} and cached; numerics run
      the scheduled IR through the reference interpreter.
    - [BLIS]: the monolithic 8×12 assembly kernel model (fringe logic,
      prefetch-capable).
    - [NEON]: the monolithic 8×12 hand-written-intrinsics kernel model
      (fringe logic, compiler-scheduled).

    Domain-safety: generated kernels are immutable IR values, so one
    process-wide {!Exo_par.Memo} serves every domain. Compiled kernels
    ({!Exo_interp.Compile.t}) are NOT re-entrant — each carries a mutable
    argument frame and fused-loop plan cells — so the compiled cache is
    per-domain ([Domain.DLS]): each domain compiles its own closure once
    and reuses it freely. The monomorphized Bigarray table is the
    exception: its executors are re-entrant (per-call accumulators), so
    one immutable table per (kit, mr, nr) is built once and shared by
    every domain.

    Persistence: when an {!Exo_cache.Store} is ambient, table entries are
    hydrated from their serialized artifacts — skipping the
    schedule → certify → lower pipeline — after re-proving the stored
    access summary with {!Exo_check.Tierlint}; cold builds write the
    artifacts back for the next process. *)

open Exo_ukr_gen
module KM = Exo_sim.Kernel_model
module B = Exo_interp.Buffer
module I = Exo_interp.Interp
module C = Exo_interp.Compile
module Tierlint = Exo_check.Tierlint
module Memo = Exo_par.Memo

(* ------------------------------------------------------------------ *)
(* Generated-kernel cache                                              *)

let cache : (string * int * int, Family.kernel) Memo.t = Memo.create ()

let exo_kernel ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : Family.kernel =
  Memo.find_or_add cache (kit.Kits.name, mr, nr) (fun () ->
      (* persistent read-through: a warm ambient store answers from disk *)
      Family.generate_cached ~kit ~mr ~nr ())

(* Compile-once/run-many: the closure-compiled form of each generated
   kernel, cached alongside the IR so every micro-kernel call after the
   first is a plain closure invocation. Per-domain — see the module
   header. *)
let compiled_key : (string * int * int, C.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let exo_compiled ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : C.t =
  let tbl = Domain.DLS.get compiled_key in
  let key = (kit.Kits.name, mr, nr) in
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
      let c = C.compile (exo_kernel ~kit ~mr ~nr ()).Family.proc in
      Hashtbl.replace tbl key c;
      c

(** Model impl for a generated kernel. *)
let exo_impl ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : KM.impl =
  let k = exo_kernel ~kit ~mr ~nr () in
  KM.of_proc ~name:(Fmt.str "EXO %dx%d" mr nr) ~mr ~nr k.Family.proc

let base_8x12 ?(kit = Kits.neon_f32) () = (exo_kernel ~kit ~mr:8 ~nr:12 ()).Family.proc

let blis_impl ?kit () : KM.impl = KM.blis_asm_8x12 (base_8x12 ?kit ())
let neon_impl ?kit () : KM.impl = KM.neon_intrinsics_8x12 (base_8x12 ?kit ())

(* The specialized to_ukr tier: a generated kernel lowered to flat
   descriptor-batched float-array loops (see Compile.to_ukr). The returned
   closure owns a mutable scratch slab, so — like the compiled form — it is
   cached per domain. [None] is cached too: an unsupported proc shape is
   decided once, and callers fall back to the closure engine. Every kernel
   this cache serves passed Family.certify's all-Proved bounds gate when it
   was generated. *)
let ukr_fast_key : (string * int * int, C.ukr_fn option) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let exo_ukr_fast ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () :
    C.ukr_fn option =
  let tbl = Domain.DLS.get ukr_fast_key in
  let key = (kit.Kits.name, mr, nr) in
  match Hashtbl.find_opt tbl key with
  | Some u -> u
  | None ->
      let u =
        Option.map fst (C.to_ukr (exo_kernel ~kit ~mr ~nr ()).Family.proc)
      in
      Hashtbl.replace tbl key u;
      u

(* ------------------------------------------------------------------ *)
(* Numeric micro-kernels                                               *)

(* Eager, not [lazy]: a [Lazy.t] forced concurrently from two domains
   raises [Lazy.Undefined] in OCaml 5. The buffer is read-only (it backs
   the α/β scalar arguments), so sharing one across domains is safe. *)
let ones_buf = B.of_array Exo_ir.Dtype.F32 [ 1 ] [| 1.0 |]

(* Zero-copy offset view over a caller array (row-major, dims as given):
   how the engine paths see an arena panel starting at [offset]. *)
let view dt (data : float array) (dims : int list) (offset : int) : B.t =
  let dims = Array.of_list dims in
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  { B.data; dtype = dt; dims; strides; offset }

(** Run a generated kernel on a packed tile. Dispatches to the specialized
    flat-loop tier ({!Exo_interp.Compile.to_ukr}) when the kernel admits it
    — the paper-scale GEMM hot path — and otherwise binds the caller's
    arrays as zero-copy buffer views into the compiled closure engine. *)
let exo_ukr ?(kit = Kits.neon_f32) () : Gemm.ukr =
 fun ~kc ~mr ~nr ~ac ~ao ~bc ~bo ~c ->
  match exo_ukr_fast ~kit ~mr ~nr () with
  | Some u -> u ~kc ~ac ~ao ~bc ~bo ~c
  | None ->
      let ck = exo_compiled ~kit ~mr ~nr () in
      let dt = kit.Kits.dt in
      C.run ck
        [
          I.VInt kc;
          I.VBuf ones_buf;
          I.VBuf (view dt ac [ kc; mr ] ao);
          I.VBuf (view dt bc [ kc; nr ] bo);
          I.VBuf ones_buf;
          I.VBuf (view dt c [ nr; mr ] 0);
        ]

(** The closure-engine path only — the PR 1 execution tier, kept addressable
    as the baseline the specialized tier is measured against
    ([bench/main.exe perf-gemm]). *)
let exo_ukr_closure ?(kit = Kits.neon_f32) () : Gemm.ukr =
 fun ~kc ~mr ~nr ~ac ~ao ~bc ~bo ~c ->
  let ck = exo_compiled ~kit ~mr ~nr () in
  let dt = kit.Kits.dt in
  C.run ck
    [
      I.VInt kc;
      I.VBuf ones_buf;
      I.VBuf (view dt ac [ kc; mr ] ao);
      I.VBuf (view dt bc [ kc; nr ] bo);
      I.VBuf ones_buf;
      I.VBuf (view dt c [ nr; mr ] 0);
    ]

(** The same tile run through the tree-walking interpreter — the
    definitional oracle, kept for cross-checking the compiled paths. *)
let exo_ukr_interp ?(kit = Kits.neon_f32) () : Gemm.ukr =
 fun ~kc ~mr ~nr ~ac ~ao ~bc ~bo ~c ->
  let k = exo_kernel ~kit ~mr ~nr () in
  let dt = kit.Kits.dt in
  I.run k.Family.proc
    [
      I.VInt kc;
      I.VBuf ones_buf;
      I.VBuf (view dt ac [ kc; mr ] ao);
      I.VBuf (view dt bc [ kc; nr ] bo);
      I.VBuf ones_buf;
      I.VBuf (view dt c [ nr; mr ] 0);
    ]

(** The monolithic kernels' numeric behaviour (identical arithmetic; their
    differences are micro-architectural and live in the model impls). *)
let monolithic_ukr : Gemm.ukr = Gemm.reference_ukr

(* ------------------------------------------------------------------ *)
(* The monomorphized (mr' × nr') kernel table                          *)

module Obs = Exo_obs.Obs

(* Dispatch counters. The bench's fallback gate must see every call even
   in plain (non-profile) runs, so the authoritative cells are process-wide
   atomics that are always on; the Obs counters mirror them for the profile
   exporter (Obs drops mutations while disabled). *)
let fast_calls = Atomic.make 0
let fallback_calls = Atomic.make 0
let obs_fast = Obs.counter "gemm.ukr_fast_calls"
let obs_fallback = Obs.counter "gemm.ukr_fallback_calls"

let ukr_dispatch_counts () = (Atomic.get fast_calls, Atomic.get fallback_calls)

let reset_dispatch_counts () =
  Atomic.set fast_calls 0;
  Atomic.set fallback_calls 0

let reset_ukr_dispatch_counts = reset_dispatch_counts

(* Static translation-validation verdicts, counted at table-build time:
   entries Tierlint proves skip the dynamic integer probe; unproved ones
   keep it. Process-wide (builds happen once per domain but verdicts are
   per-build events the bench and CI gates want totals of). *)
let static_proved = Atomic.make 0
let static_unproved = Atomic.make 0
let obs_proved = Obs.counter "registry.tier_proved"
let obs_unproved = Obs.counter "registry.tier_unproved"

let tier_verdict_counts () = (Atomic.get static_proved, Atomic.get static_unproved)

let count_verdict certified =
  if certified then begin
    Atomic.incr static_proved;
    if Obs.enabled () then Obs.incr obs_proved
  end
  else begin
    Atomic.incr static_unproved;
    if Obs.enabled () then Obs.incr obs_unproved
  end

(** The complete monomorphized table for a kernel family: one entry per
    (mr', nr') with mr' ∈ 1..mr, nr' ∈ 1..nr, flat at index
    [(mr'-1)·nr + nr'-1]. Entries the Bigarray tier certified are direct
    monomorphized executors; the rest ([t_fast] false — only non-f32 kits
    today) copy through the closure engine and count as fallbacks. *)
type table = {
  t_kit : Kits.t;
  t_mr : int;
  t_nr : int;
  t_entries : C.ukr_ba array;
  t_fast : bool array;
  t_proved : bool array;
}

let table_holes (t : table) : int =
  Array.fold_left (fun n f -> if f then n else n + 1) 0 t.t_fast

let table_complete (t : table) : bool = table_holes t = 0

let table_entry (t : table) ~(mr : int) ~(nr : int) : C.ukr_ba =
  if mr < 1 || mr > t.t_mr || nr < 1 || nr > t.t_nr then
    invalid_arg "Registry.table_entry: shape outside the table";
  t.t_entries.(((mr - 1) * t.t_nr) + nr - 1)

(* A counting wrapper per entry: one closure hop + one atomic add per tile
   call (~30k calls on the 1008³ run — noise next to the kernel work). *)
let count_fast (u : C.ukr_ba) : C.ukr_ba =
 fun ~kc ~ac ~ao ~bc ~bo ~c ~co ->
  Atomic.incr fast_calls;
  if Obs.enabled () then Obs.incr obs_fast;
  u ~kc ~ac ~ao ~bc ~bo ~c ~co

(* Hole filler: round-trip the Bigarray operands through float arrays into
   the closure-engine ukr. Correct for every kit (integer-domain exact, like
   the engines themselves) but slow — its call count is what the bench's
   fallbacks-zero gate pins at 0 for f32 runs. *)
let fallback_entry ~(kit : Kits.t) ~(mr : int) ~(nr : int) : C.ukr_ba =
  let module BA1 = Bigarray.Array1 in
  fun ~kc ~ac ~ao ~bc ~bo ~c ~co ->
    Atomic.incr fallback_calls;
    if Obs.enabled () then Obs.incr obs_fallback;
    let af = Array.init (max 1 (kc * mr)) (fun i -> BA1.get ac (ao + i)) in
    let bf = Array.init (max 1 (kc * nr)) (fun i -> BA1.get bc (bo + i)) in
    let cf = Array.init (nr * mr) (fun i -> BA1.get c (co + i)) in
    (exo_ukr ~kit ()) ~kc ~mr ~nr ~ac:af ~ao:0 ~bc:bf ~bo:0 ~c:cf;
    for i = 0 to (nr * mr) - 1 do
      BA1.set c (co + i) cf.(i)
    done

(* ------------------------------------------------------------------ *)
(* Persistent kernel artifacts (Exo_cache)                             *)

module Store = Exo_cache.Store

(* One serialized table entry: everything a later process needs to re-enter
   service without re-running schedule → certify → lower. [ta_summary] is
   the lowered access summary (the descriptor the executor runs); the
   hydration gate re-proves it with Tierlint before re-materializing the
   executor, so a stale or tampered artifact can never serve silently.
   Bump [entry_abi] whenever this type or executor selection changes
   meaning — old entries then simply miss. *)
type table_artifact = {
  ta_mr : int;
  ta_nr : int;
  ta_fast : bool;  (** the Bigarray tier accepted this entry at build time *)
  ta_proved : bool;  (** Tierlint verdict at build time (informational) *)
  ta_summary : C.Summary.t option;
}

let entry_abi = "regtable-v1"
let entry_kind = "kernel"

(* The content address: kit name + kit content digest (invalidates on any
   kit change), shape, pipeline variant, the kit's declared schedule-step
   count, and the compiler version (Marshal is not stable across compilers). *)
let entry_key (kit : Kits.t) ~(mr : int) ~(nr : int) : string =
  Store.key
    [
      entry_abi;
      Sys.ocaml_version;
      kit.Kits.name;
      Kits.digest kit;
      string_of_int kit.Kits.sched_steps;
      string_of_int mr;
      string_of_int nr;
      "simple";
    ]

(* Cold path: generate + certify + lower one table entry, returning the
   executor, the tier/verdict flags, and the summary to persist. *)
let build_entry ~(kit : Kits.t) ~(mr : int) ~(nr : int) :
    C.ukr_ba * bool * bool * C.Summary.t option =
  let proc = (exo_kernel ~kit ~mr ~nr ()).Family.proc in
  (* static translation validation of the lowered tape:
     a proved entry skips the dynamic integer probe *)
  let summary = C.summarize_ukr proc in
  let certified =
    match summary with
    | Some s -> Tierlint.proved (Tierlint.check s)
    | None -> false
  in
  match C.to_ukr_ba ~certified proc with
  | Some (u, _) -> (count_fast u, true, certified, summary)
  | None -> (fallback_entry ~kit ~mr ~nr, false, certified, summary)

(* Warm path: re-materialize an entry from its stored artifact. The hit
   skips schedule+certify+lower but NOT the verification gate: the stored
   summary is re-proved with Tierlint here, and only a proved summary may
   hydrate a fast executor (the hydrated executor is selected by (mr, nr)
   alone, so it is bit-identical to the cold one). [None] means the
   artifact is inconsistent or no longer proves — the caller drops it and
   rebuilds cold. *)
let hydrate_entry (a : table_artifact) ~(kit : Kits.t) ~(mr : int) ~(nr : int)
    : (C.ukr_ba * bool * bool) option =
  if a.ta_mr <> mr || a.ta_nr <> nr then None
  else
    match a.ta_summary with
    | Some s when s.C.Summary.mr = mr && s.C.Summary.nr = nr ->
        let proved = Tierlint.proved (Tierlint.check s) in
        (* a fast entry must have been statically proved when built AND
           still prove now — probe-only entries carry no static proof we
           could recheck without the proc, so they always rebuild cold *)
        if a.ta_fast then
          if not (a.ta_proved && proved) then None
          else
            Option.map
              (fun u -> (count_fast u, true, true))
              (C.ukr_ba_of_summary s)
        else Some (fallback_entry ~kit ~mr ~nr, false, proved)
    | Some _ -> None
    | None ->
        if a.ta_fast then None
        else Some (fallback_entry ~kit ~mr ~nr, false, false)

(* One immutable table per (kit, mr, nr) for the whole process. Entries
   are re-entrant (executors allocate their accumulator per call; the
   fallback resolves its per-domain engine at call time), so every domain
   of a pool shares the same entry array — no per-domain rebuilds. *)
let table_memo : (string * int * int, table) Memo.t = Memo.create ()

let exo_table ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : table =
  if mr < 1 || nr < 1 then invalid_arg "Registry.exo_table: mr and nr must be ≥ 1";
  Memo.find_or_add table_memo (kit.Kits.name, mr, nr) (fun () ->
      Obs.with_span
        ~args:
          (if Obs.enabled () then
             [ ("kit", kit.Kits.name); ("shape", Fmt.str "%dx%d" mr nr) ]
           else [])
        "registry.build_table"
        (fun () ->
          let store = Store.ambient () in
          let fast = Array.make (mr * nr) false in
          let proved = Array.make (mr * nr) false in
          let entries =
            Array.init (mr * nr) (fun idx ->
                let mr' = (idx / nr) + 1 and nr' = (idx mod nr) + 1 in
                let key = entry_key kit ~mr:mr' ~nr:nr' in
                let hydrated =
                  match store with
                  | None -> None
                  | Some st -> (
                      match Store.get st ~kind:entry_kind ~key with
                      | None -> None
                      | Some (a : table_artifact) -> (
                          match hydrate_entry a ~kit ~mr:mr' ~nr:nr' with
                          | Some r -> Some r
                          | None ->
                              (* inconsistent or no-longer-proving artifact:
                                 drop it and rebuild from source *)
                              Store.remove st ~kind:entry_kind ~key;
                              None))
                in
                let u, fast', proved' =
                  match hydrated with
                  | Some r -> r
                  | None ->
                      let u, fast', proved', summary =
                        build_entry ~kit ~mr:mr' ~nr:nr'
                      in
                      (match store with
                      | Some st ->
                          ignore
                            (Store.put st ~kind:entry_kind ~key
                               {
                                 ta_mr = mr';
                                 ta_nr = nr';
                                 ta_fast = fast';
                                 ta_proved = proved';
                                 ta_summary = summary;
                               })
                      | None -> ());
                      (u, fast', proved')
                in
                count_verdict proved';
                fast.(idx) <- fast';
                proved.(idx) <- proved';
                u)
          in
          {
            t_kit = kit;
            t_mr = mr;
            t_nr = nr;
            t_entries = entries;
            t_fast = fast;
            t_proved = proved;
          }))

(** Forget every memoized kernel and table so the next {!exo_table} call
    exercises the cold path — the bench's cold/warm A-B harness and the
    cache tests need a genuine rebuild inside one process. Also resets the
    calling domain's compiled-closure caches. Not for production paths. *)
let clear_memos_for_bench () =
  Memo.clear cache;
  Memo.clear table_memo;
  Hashtbl.reset (Domain.DLS.get compiled_key);
  Hashtbl.reset (Domain.DLS.get ukr_fast_key)

(** The {!Gemm.blis_ba} [kernels] thunk: called once per pool task, it
    resolves the shared table (building it on first use) and hands back
    the flat entry array for O(1) dispatch. *)
let exo_bank ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () :
    unit -> C.ukr_ba array =
 fun () -> (exo_table ~kit ~mr ~nr ()).t_entries
