(** The micro-kernel registry: the three competitors of Section IV, in both
    numeric form (a {!Gemm.ukr} for running real GEMMs) and model form
    (a {!Exo_sim.Kernel_model.impl} for the performance simulation).

    - [EXO]: the generated family — one specialized kernel per (mr, nr),
      produced on demand by {!Exo_ukr_gen.Family} and cached; numerics run
      the scheduled IR through the reference interpreter.
    - [BLIS]: the monolithic 8×12 assembly kernel model (fringe logic,
      prefetch-capable).
    - [NEON]: the monolithic 8×12 hand-written-intrinsics kernel model
      (fringe logic, compiler-scheduled).

    Domain-safety: generated kernels are immutable IR values, so one
    process-wide {!Exo_par.Memo} serves every domain. Compiled kernels
    ({!Exo_interp.Compile.t}) are NOT re-entrant — each carries a mutable
    argument frame and fused-loop plan cells — so the compiled cache is
    per-domain ([Domain.DLS]): each domain compiles its own closure once
    and reuses it freely. *)

open Exo_ukr_gen
module KM = Exo_sim.Kernel_model
module B = Exo_interp.Buffer
module I = Exo_interp.Interp
module C = Exo_interp.Compile
module Memo = Exo_par.Memo

(* ------------------------------------------------------------------ *)
(* Generated-kernel cache                                              *)

let cache : (string * int * int, Family.kernel) Memo.t = Memo.create ()

let exo_kernel ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : Family.kernel =
  Memo.find_or_add cache (kit.Kits.name, mr, nr) (fun () ->
      Family.generate ~kit ~mr ~nr ())

(* Compile-once/run-many: the closure-compiled form of each generated
   kernel, cached alongside the IR so every micro-kernel call after the
   first is a plain closure invocation. Per-domain — see the module
   header. *)
let compiled_key : (string * int * int, C.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let exo_compiled ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : C.t =
  let tbl = Domain.DLS.get compiled_key in
  let key = (kit.Kits.name, mr, nr) in
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
      let c = C.compile (exo_kernel ~kit ~mr ~nr ()).Family.proc in
      Hashtbl.replace tbl key c;
      c

(** Model impl for a generated kernel. *)
let exo_impl ?(kit = Kits.neon_f32) ~(mr : int) ~(nr : int) () : KM.impl =
  let k = exo_kernel ~kit ~mr ~nr () in
  KM.of_proc ~name:(Fmt.str "EXO %dx%d" mr nr) ~mr ~nr k.Family.proc

let base_8x12 ?(kit = Kits.neon_f32) () = (exo_kernel ~kit ~mr:8 ~nr:12 ()).Family.proc

let blis_impl ?kit () : KM.impl = KM.blis_asm_8x12 (base_8x12 ?kit ())
let neon_impl ?kit () : KM.impl = KM.neon_intrinsics_8x12 (base_8x12 ?kit ())

(* ------------------------------------------------------------------ *)
(* Numeric micro-kernels                                               *)

(* Eager, not [lazy]: a [Lazy.t] forced concurrently from two domains
   raises [Lazy.Undefined] in OCaml 5. The buffer is read-only (it backs
   the α/β scalar arguments), so sharing one across domains is safe. *)
let ones_buf = B.of_array Exo_ir.Dtype.F32 [ 1 ] [| 1.0 |]

(** Run a generated kernel on a packed tile through the compiled execution
    engine: the kernel is compiled once per (kit, mr, nr) per domain and
    the caller's arrays are bound as zero-copy buffer views. *)
let exo_ukr ?(kit = Kits.neon_f32) () : Gemm.ukr =
 fun ~kc ~mr ~nr ~ac ~bc ~c ->
  let ck = exo_compiled ~kit ~mr ~nr () in
  let one = ones_buf in
  let acb = B.of_array kit.Kits.dt [ kc; mr ] ac in
  let bcb = B.of_array kit.Kits.dt [ kc; nr ] bc in
  let cb = B.of_array kit.Kits.dt [ nr; mr ] c in
  C.run ck [ I.VInt kc; I.VBuf one; I.VBuf acb; I.VBuf bcb; I.VBuf one; I.VBuf cb ]

(** The same tile run through the tree-walking interpreter — the
    definitional oracle, kept for cross-checking the compiled path (and for
    measuring the compiled engine's speedup in [bench/main.exe perf]). *)
let exo_ukr_interp ?(kit = Kits.neon_f32) () : Gemm.ukr =
 fun ~kc ~mr ~nr ~ac ~bc ~c ->
  let k = exo_kernel ~kit ~mr ~nr () in
  let one = ones_buf in
  let acb = B.of_array kit.Kits.dt [ kc; mr ] ac in
  let bcb = B.of_array kit.Kits.dt [ kc; nr ] bc in
  let cb = B.of_array kit.Kits.dt [ nr; mr ] c in
  I.run k.Family.proc
    [ I.VInt kc; I.VBuf one; I.VBuf acb; I.VBuf bcb; I.VBuf one; I.VBuf cb ]

(** The monolithic kernels' numeric behaviour (identical arithmetic; their
    differences are micro-architectural and live in the model impls). *)
let monolithic_ukr : Gemm.ukr = Gemm.reference_ukr
