(** The micro-kernel registry: Section IV's three competitors, in numeric
    form (a {!Gemm.ukr}) and model form (a {!Exo_sim.Kernel_model.impl}).
    Generated kernels are produced on demand and cached. *)

(** Generate (or fetch) a specialized kernel. *)
val exo_kernel :
  ?kit:Exo_ukr_gen.Kits.t -> mr:int -> nr:int -> unit -> Exo_ukr_gen.Family.kernel

(** The closure-compiled form of a generated kernel — the fast execution
    engine behind {!exo_ukr}. Compiled once per (kit, mr, nr) PER DOMAIN
    and cached in domain-local storage: a compiled kernel carries a mutable
    argument frame and is not re-entrant across domains. *)
val exo_compiled :
  ?kit:Exo_ukr_gen.Kits.t -> mr:int -> nr:int -> unit -> Exo_interp.Compile.t

(** Model impl for a generated kernel. *)
val exo_impl :
  ?kit:Exo_ukr_gen.Kits.t -> mr:int -> nr:int -> unit -> Exo_sim.Kernel_model.impl

(** The 8×12 base kernel proc (whose trace the monolithic models share). *)
val base_8x12 : ?kit:Exo_ukr_gen.Kits.t -> unit -> Exo_ir.Ir.proc

val blis_impl : ?kit:Exo_ukr_gen.Kits.t -> unit -> Exo_sim.Kernel_model.impl
val neon_impl : ?kit:Exo_ukr_gen.Kits.t -> unit -> Exo_sim.Kernel_model.impl

(** The specialized flat-loop form of a generated kernel
    ({!Exo_interp.Compile.to_ukr}), cached per domain like {!exo_compiled}
    (the closure owns a mutable scratch slab). [None] — also cached — means
    the kernel's shape isn't supported by the specialized tier. *)
val exo_ukr_fast :
  ?kit:Exo_ukr_gen.Kits.t -> mr:int -> nr:int -> unit ->
  Exo_interp.Compile.ukr_fn option

(** Numeric micro-kernel for the GEMM driver: the specialized flat-loop
    tier when the kernel admits it, otherwise the compiled closure engine
    over zero-copy views of the caller's arrays. *)
val exo_ukr : ?kit:Exo_ukr_gen.Kits.t -> unit -> Gemm.ukr

(** The closure-engine path only — the baseline the specialized tier is
    measured against in [bench/main.exe perf-gemm]. *)
val exo_ukr_closure : ?kit:Exo_ukr_gen.Kits.t -> unit -> Gemm.ukr

(** The same numerics through the tree-walking interpreter — the
    definitional oracle, kept for cross-checks and speedup measurement. *)
val exo_ukr_interp : ?kit:Exo_ukr_gen.Kits.t -> unit -> Gemm.ukr

(** The monolithic kernels' numerics (identical arithmetic; their differences
    are micro-architectural and live in the model impls). *)
val monolithic_ukr : Gemm.ukr

(** {1 The monomorphized (mr' × nr') kernel table}

    The third execution tier: one {!Exo_interp.Compile.ukr_ba} per
    (mr', nr') with mr' ∈ 1..mr, nr' ∈ 1..nr, flat at index
    [(mr'-1)·nr + nr'-1], so fringe macro-kernel calls dispatch by plain
    array indexing and never fall back to the closure engine. Built once
    per (kit, mr, nr) for the whole process and shared by every domain —
    the executors are re-entrant (per-call accumulators), so repeated
    {!exo_table} calls return the physically same table from any domain.

    When an {!Exo_cache.Store} is ambient ([UKRGEN_CACHE_DIR] or the CLI's
    [--cache]), entries hydrate from persisted artifacts — skipping
    schedule → certify → lower — after their stored access summary
    re-proves under {!Exo_check.Tierlint}; cold builds persist their
    artifacts for the next process. *)

(** Provenance of a table's native-tier upgrade: whether JIT'd machine
    code is serving, through which lowering and compiler, and — on a
    degraded host (no [cc], [UKRGEN_NATIVE=0], compile or certification
    failure) — why the table serves the Bigarray tier instead. *)
type native_info = {
  ni_enabled : bool;  (** at least one entry serves JIT'd machine code *)
  ni_target : string;  (** ["intrinsics"] | ["portable"] | ["none"] *)
  ni_cc : string;  (** compiler path, or ["none"] *)
  ni_entries : int;  (** entries serving native code (certified) *)
  ni_rejected : int;  (** eligible entries that failed certification *)
  ni_reason : string;  (** ["ok"], or why the tier is degraded *)
}

type table = {
  t_kit : Exo_ukr_gen.Kits.t;
  t_mr : int;
  t_nr : int;
  t_entries : Exo_interp.Compile.ukr_ba array;
      (** the serving bank: native executors where the upgrade certified
          them, Bigarray-tier executors everywhere else *)
  t_base : Exo_interp.Compile.ukr_ba array;
      (** the Bigarray-tier bank, frozen before the native upgrade — the
          certification oracle and the bench's A-B baseline *)
  t_fast : bool array;
      (** per entry: certified monomorphized executor (true) or a counting
          closure-engine round-trip (false — only non-f32 kits today) *)
  t_proved : bool array;
      (** per entry: the static {!Exo_check.Tierlint} verdict of its
          lowered tape (bounds, write-set containment and accumulation
          shape all proved). Proved entries entered service without the
          dynamic integer probe. *)
  t_native : bool array;
      (** per entry: serving JIT'd machine code (dlopen'd, certified
          bit-exact against the Bigarray entry it replaced) *)
  t_native_info : native_info;
}

(** Build (or fetch) the process-wide table for a family. *)
val exo_table :
  ?kit:Exo_ukr_gen.Kits.t -> mr:int -> nr:int -> unit -> table

(** Entries served by the closure-engine round-trip; 0 for the f32 kits. *)
val table_holes : table -> int

val table_complete : table -> bool

(** Bounds-checked lookup (tests; the GEMM driver indexes the flat array). *)
val table_entry : table -> mr:int -> nr:int -> Exo_interp.Compile.ukr_ba

(** Same lookup into the pre-upgrade Bigarray-tier bank. *)
val table_base_entry : table -> mr:int -> nr:int -> Exo_interp.Compile.ukr_ba

(** The {!Gemm.blis_ba} [kernels] thunk: resolves the shared table
    (building on first use) and returns its flat entry array. *)
val exo_bank :
  ?kit:Exo_ukr_gen.Kits.t -> mr:int -> nr:int -> unit ->
  unit -> Exo_interp.Compile.ukr_ba array

(** The Bigarray-tier bank of the same table — the baseline side of the
    bench's native-vs-Bigarray A-B comparison. *)
val exo_bank_ba :
  ?kit:Exo_ukr_gen.Kits.t -> mr:int -> nr:int -> unit ->
  unit -> Exo_interp.Compile.ukr_ba array

(** Which native lowering this host gives a kit: intrinsics when the
    machine executes the kit's ISA, the portable autovectorizable nest
    otherwise, [None] for non-f32 kits (the JIT ABI is float32). *)
val native_target_for :
  Exo_ukr_gen.Kits.t -> Exo_codegen.C_emit.native_target option

(** The native-ABI C source for a whole bank, with the target this host
    would pick — [ukrgen native]'s artifact, [None] for non-f32 kits. *)
val native_emit :
  ?kit:Exo_ukr_gen.Kits.t -> mr:int -> nr:int -> unit ->
  (Exo_codegen.C_emit.native_target * string) option

(** Forget every memoized kernel, table and compiled closure (calling
    domain) so the next {!exo_table} exercises the cold path — for the
    bench's cold/warm A-B harness and the cache tests only. *)
val clear_memos_for_bench : unit -> unit

(** {1 Dispatch counters}

    Process-wide atomics counting every table-entry call — always on (the
    bench's fallbacks-zero gate reads them in plain runs), mirrored into
    the Obs counters [gemm.ukr_fast_calls] / [gemm.ukr_fallback_calls]
    when tracing is enabled. *)

(** [(fast, fallback)] totals since start or the last reset. Native
    dispatches count as fast — the native tier serves exactly the calls
    the Bigarray tier would have, so the fallbacks-zero gates keep their
    meaning; {!ukr_tier_counts} splits them. *)
val ukr_dispatch_counts : unit -> int * int

(** [(native, bigarray_fast, fallback)] — the per-tier split. *)
val ukr_tier_counts : unit -> int * int * int

(** Zero both dispatch counters, so repeated in-process bench/test phases
    measure their own dispatches instead of accumulating across tiers. *)
val reset_dispatch_counts : unit -> unit

(** Historical alias of {!reset_dispatch_counts}. *)
val reset_ukr_dispatch_counts : unit -> unit

(** [(proved, unproved)] static {!Exo_check.Tierlint} verdict totals
    counted at table-build time (mirrored to the Obs counters
    [registry.tier_proved] / [registry.tier_unproved] when tracing). *)
val tier_verdict_counts : unit -> int * int
