(** BLIS packing routines.

    [pack_a_into] re-lays an mc×kc block of A into micro-panels of [mr]
    rows, each panel k-major ([kc × mr], unit stride across the rows) —
    exactly the layout the generated micro-kernels' [Ac: f32[KC, MR]]
    argument assumes. [pack_b_into] does the same for kc×nc blocks of B in
    [nr]-column panels ([kc × nr]). Edge panels are packed at their true
    width (the Exo approach: a dedicated kernel per fringe shape) —
    [panel_width] reports it.

    Panels live in one contiguous caller-provided arena at a fixed pitch
    (the full-width panel size), so a steady-state GEMM driver reuses one
    buffer per operand instead of allocating per (jc, pc, ic) block:
    [panel_off] gives each panel's start, fringe panels occupy a prefix of
    their slot. The packing loops run unsafe accesses behind a single
    up-front range check (block within the matrix, arena large enough).

    Packing is also where alpha is applied ([Bc = alpha · B], the paper's
    Fig. 4), so the micro-kernels run the simplified alpha = beta = 1
    code. *)

type 'arena gen_packed = {
  data : 'arena;  (** the arena the panels were packed into *)
  pitch : int;  (** elements between consecutive panel starts *)
  num_panels : int;
  depth : int;  (** kc of this packing *)
  full : int;  (** full panel width: mr (A) or nr (B) *)
  block : int;  (** packed block extent: mcb (A) or ncb (B) *)
}

type packed = float array gen_packed

type ba32 = Exo_interp.Compile.ba32

type packed_ba = ba32 gen_packed
(** Same layout, arena in a float32 Bigarray — the monomorphized tier's
    operand type, where the f32 rounding is the store itself. *)

let panel_off (p : 'a gen_packed) (i : int) : int = i * p.pitch

let panel_width (p : 'a gen_packed) (i : int) : int =
  min p.full (p.block - (i * p.full))

(** Arena sizes for a maximal block: full-width panels at full pitch. *)
let a_arena_size ~(mcb : int) ~(kcb : int) ~(mr : int) : int =
  (mcb + mr - 1) / mr * kcb * mr

let b_arena_size ~(ncb : int) ~(kcb : int) ~(nr : int) : int =
  (ncb + nr - 1) / nr * kcb * nr

(** Pack A(ic .. ic+mcb-1, pc .. pc+kcb-1) into mr-row panels in [dst]. *)
let pack_a_into (dst : float array) (a : Matrix.t) ~(ic : int) ~(pc : int)
    ~(mcb : int) ~(kcb : int) ~(mr : int) : packed =
  if mcb < 0 || kcb < 0 || ic < 0 || pc < 0 || ic + mcb > a.Matrix.rows
     || pc + kcb > a.Matrix.cols
  then invalid_arg "pack_a: block out of range";
  if Array.length dst < a_arena_size ~mcb ~kcb ~mr then
    invalid_arg "pack_a: arena too small";
  let num_panels = (mcb + mr - 1) / mr in
  let lda = a.Matrix.cols and src = a.Matrix.data in
  (* the range check above bounds every access below: source indices stay
     within the (ic..ic+mcb-1, pc..pc+kcb-1) block, destinations within the
     arena prefix just checked *)
  for ir = 0 to num_panels - 1 do
    let w = min mr (mcb - (ir * mr)) in
    let po = ir * kcb * mr in
    let rbase = ((ic + (ir * mr)) * lda) + pc in
    for kk = 0 to kcb - 1 do
      let db = po + (kk * w) and sb = rbase + kk in
      for i = 0 to w - 1 do
        Array.unsafe_set dst (db + i) (Array.unsafe_get src (sb + (i * lda)))
      done
    done
  done;
  { data = dst; pitch = kcb * mr; num_panels; depth = kcb; full = mr; block = mcb }

(** Pack B(pc .. pc+kcb-1, jc .. jc+ncb-1) into nr-column panels in [dst],
    scaled by [alpha]. *)
let pack_b_into ?(alpha = 1.0) (dst : float array) (b : Matrix.t) ~(pc : int)
    ~(jc : int) ~(kcb : int) ~(ncb : int) ~(nr : int) : packed =
  if ncb < 0 || kcb < 0 || pc < 0 || jc < 0 || pc + kcb > b.Matrix.rows
     || jc + ncb > b.Matrix.cols
  then invalid_arg "pack_b: block out of range";
  if Array.length dst < b_arena_size ~ncb ~kcb ~nr then
    invalid_arg "pack_b: arena too small";
  let num_panels = (ncb + nr - 1) / nr in
  let ldb = b.Matrix.cols and src = b.Matrix.data in
  if Float.equal alpha 1.0 then
    for jr = 0 to num_panels - 1 do
      let w = min nr (ncb - (jr * nr)) in
      let po = jr * kcb * nr in
      let cbase = jc + (jr * nr) in
      for kk = 0 to kcb - 1 do
        let db = po + (kk * w) and sb = ((pc + kk) * ldb) + cbase in
        for j = 0 to w - 1 do
          Array.unsafe_set dst (db + j) (Array.unsafe_get src (sb + j))
        done
      done
    done
  else
    for jr = 0 to num_panels - 1 do
      let w = min nr (ncb - (jr * nr)) in
      let po = jr * kcb * nr in
      let cbase = jc + (jr * nr) in
      for kk = 0 to kcb - 1 do
        let db = po + (kk * w) and sb = ((pc + kk) * ldb) + cbase in
        for j = 0 to w - 1 do
          Array.unsafe_set dst (db + j) (alpha *. Array.unsafe_get src (sb + j))
        done
      done
    done;
  { data = dst; pitch = kcb * nr; num_panels; depth = kcb; full = nr; block = ncb }

(** Allocating conveniences (tests, one-shot callers). *)
let pack_a (a : Matrix.t) ~ic ~pc ~mcb ~kcb ~mr : packed =
  if mcb < 0 || kcb < 0 then invalid_arg "pack_a: block out of range";
  pack_a_into (Array.make (max 1 (a_arena_size ~mcb ~kcb ~mr)) 0.0) a ~ic ~pc ~mcb ~kcb ~mr

let pack_b ?alpha (b : Matrix.t) ~pc ~jc ~kcb ~ncb ~nr : packed =
  if ncb < 0 || kcb < 0 then invalid_arg "pack_b: block out of range";
  pack_b_into ?alpha (Array.make (max 1 (b_arena_size ~ncb ~kcb ~nr)) 0.0) b ~pc ~jc ~kcb ~ncb ~nr

(* ------------------------------------------------------------------ *)
(* Bigarray-arena packing: the monomorphized tier's operands            *)

module BA1 = Bigarray.Array1

(** [pack_a_into] with a float32 Bigarray arena: identical layout, and the
    store itself performs the f32 rounding the kernels' [Ac] operand
    carries. Same single up-front range check, then unsafe accesses. *)
let pack_a_ba_into (dst : ba32) (a : Matrix.t) ~(ic : int) ~(pc : int)
    ~(mcb : int) ~(kcb : int) ~(mr : int) : packed_ba =
  if mcb < 0 || kcb < 0 || ic < 0 || pc < 0 || ic + mcb > a.Matrix.rows
     || pc + kcb > a.Matrix.cols
  then invalid_arg "pack_a_ba: block out of range";
  if BA1.dim dst < a_arena_size ~mcb ~kcb ~mr then
    invalid_arg "pack_a_ba: arena too small";
  let num_panels = (mcb + mr - 1) / mr in
  let lda = a.Matrix.cols and src = a.Matrix.data in
  for ir = 0 to num_panels - 1 do
    let w = min mr (mcb - (ir * mr)) in
    let po = ir * kcb * mr in
    let rbase = ((ic + (ir * mr)) * lda) + pc in
    for kk = 0 to kcb - 1 do
      let db = po + (kk * w) and sb = rbase + kk in
      for i = 0 to w - 1 do
        BA1.unsafe_set dst (db + i) (Array.unsafe_get src (sb + (i * lda)))
      done
    done
  done;
  { data = dst; pitch = kcb * mr; num_panels; depth = kcb; full = mr; block = mcb }

(** [pack_b_into] with a float32 Bigarray arena (alpha folded in, as in the
    float-array version). *)
let pack_b_ba_into ?(alpha = 1.0) (dst : ba32) (b : Matrix.t) ~(pc : int)
    ~(jc : int) ~(kcb : int) ~(ncb : int) ~(nr : int) : packed_ba =
  if ncb < 0 || kcb < 0 || pc < 0 || jc < 0 || pc + kcb > b.Matrix.rows
     || jc + ncb > b.Matrix.cols
  then invalid_arg "pack_b_ba: block out of range";
  if BA1.dim dst < b_arena_size ~ncb ~kcb ~nr then
    invalid_arg "pack_b_ba: arena too small";
  let num_panels = (ncb + nr - 1) / nr in
  let ldb = b.Matrix.cols and src = b.Matrix.data in
  if Float.equal alpha 1.0 then
    for jr = 0 to num_panels - 1 do
      let w = min nr (ncb - (jr * nr)) in
      let po = jr * kcb * nr in
      let cbase = jc + (jr * nr) in
      for kk = 0 to kcb - 1 do
        let db = po + (kk * w) and sb = ((pc + kk) * ldb) + cbase in
        for j = 0 to w - 1 do
          BA1.unsafe_set dst (db + j) (Array.unsafe_get src (sb + j))
        done
      done
    done
  else
    for jr = 0 to num_panels - 1 do
      let w = min nr (ncb - (jr * nr)) in
      let po = jr * kcb * nr in
      let cbase = jc + (jr * nr) in
      for kk = 0 to kcb - 1 do
        let db = po + (kk * w) and sb = ((pc + kk) * ldb) + cbase in
        for j = 0 to w - 1 do
          BA1.unsafe_set dst (db + j) (alpha *. Array.unsafe_get src (sb + j))
        done
      done
    done;
  { data = dst; pitch = kcb * nr; num_panels; depth = kcb; full = nr; block = ncb }
