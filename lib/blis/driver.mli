(** Simulated full-GEMM performance — the engine behind the paper's
    Section IV-B/IV-C experiments (Figs. 14–18).

    Prices a complete BLIS-like GEMM run on the modeled machine: micro-kernel
    steady-state and prologue cycles (from each kernel's own instruction
    trace), operand bandwidth, C-tile traffic and miss latency (hidden when
    the kernel prefetches — the BLIS-library advantage), packing traffic, and
    fringe handling (full-tile waste for monolithic kernels vs specialized
    fringe kernels for the Exo family). *)

type setup =
  | Monolithic of { impl : Exo_sim.Kernel_model.impl; prefetch : bool }
  | Exo_family of Exo_ukr_gen.Kits.t
        (** the family inherits the kit's dtype — pass [Kits.neon_f16] and
            [Machine.carmel_fp16] for an end-to-end half-precision GEMM *)

(** Legend name as in the paper: "BLIS", "ALG+BLIS", "ALG+NEON", "ALG+EXO". *)
val name_of : setup -> string

(** The four configurations of Figs. 14–18. *)

val blis_lib : unit -> setup
(** The BLIS library: monolithic assembly kernel with in-kernel prefetch. *)

val alg_blis : unit -> setup
val alg_neon : unit -> setup
val alg_exo : unit -> setup

(** In the paper's legend order: ALG+NEON, ALG+BLIS, ALG+EXO, BLIS. *)
val all_setups : unit -> setup list

(** A rectangular sub-problem covered by one kernel shape. *)
type region = {
  rm : int;
  rn : int;
  impl : Exo_sim.Kernel_model.impl;
  full_tile : bool;
}

(** Region decomposition for the Exo family: main region plus fringe strips,
    each with its own specialized kernel. *)
val regions_family :
  kit:Exo_ukr_gen.Kits.t -> mr:int -> nr:int -> m:int -> n:int -> region list

(** Price a region decomposition (exposed for the tuner and ablations).
    [dbytes] is the element size (default 4; 2 for f16). *)
val time_of_regions :
  ?dbytes:int ->
  Exo_isa.Machine.t ->
  regions:region list ->
  prefetch:bool ->
  m:int -> n:int -> k:int ->
  blocking:Analytical.blocking ->
  float

(** Candidate main-kernel shapes the ALG+EXO selection considers. *)
val candidate_shapes : (int * int) list

(** Simulated seconds for C += A·B, and the kernel shape used. Memoized per
    (machine, setup, problem), so {!gflops} and {!selected_kernel} queried on
    the same row share one full evaluation. *)
val time : Exo_isa.Machine.t -> setup -> m:int -> n:int -> k:int -> float * string

val gflops : Exo_isa.Machine.t -> setup -> m:int -> n:int -> k:int -> float

(** The main kernel shape a setup uses on a problem (e.g. ["8x12"]). *)
val selected_kernel : Exo_isa.Machine.t -> setup -> m:int -> n:int -> k:int -> string
