(** GEMM: the BLIS/GotoBLAS five-loop macro-kernel (Fig. 1 of the paper)
    plus naive references, over {!Matrix} values. The executable path packs
    into per-domain {!workspace} arenas (no steady-state allocation), fans
    the jc loop out on an {!Exo_par.Pool} with bit-identical output at
    every width, and batches whole workloads through {!batch}. *)

type ukr =
  kc:int -> mr:int -> nr:int -> ac:float array -> ao:int -> bc:float array ->
  bo:int -> c:float array -> unit
(** A micro-kernel callback: [c += acᵀ·bc] on one tile. [ac] holds a kc×mr
    k-major panel starting at element [ao], [bc] a kc×nr panel at [bo]
    (panel offsets into a packing arena), [c] the *transposed* tile (nr×mr,
    row-major) — the layout conventions of Section III-A. *)

type ba32 = Exo_interp.Compile.ba32

type ukr_ba = Exo_interp.Compile.ukr_ba
(** The monomorphized tier's per-tile entry point: same panel layout as
    {!ukr} with operands in float32 Bigarrays and the tile shape fixed per
    closure — the driver dispatches into a flat (mr'×nr') kernel table. *)

(** The same arithmetic in plain OCaml with binary32 rounding — matches the
    interpreted generated kernels bit for bit. *)
val reference_ukr : ukr

(** C := alpha·A·B + beta·C, naive triple loop (f64 accumulation). *)
val naive : ?alpha:float -> ?beta:float -> Matrix.t -> Matrix.t -> Matrix.t -> unit

(** Naive with binary32 rounding after every operation — exact comparisons
    against the macro-kernel when inputs are small integers. *)
val naive_f32 :
  ?alpha:float -> ?beta:float -> Matrix.t -> Matrix.t -> Matrix.t -> unit

(** Per-domain reusable scratch (pack arenas + C tile), grown on demand and
    reused across GEMMs: repeated calls through one workspace allocate
    nothing in steady state. *)
type workspace

(** A fresh workspace (its arenas materialize per domain on first use). *)
val workspace : unit -> workspace

(** The workspace used when callers don't thread their own. *)
val default_workspace : workspace

(** The BLIS-like GEMM: jc/pc/ic/jr/ir blocking, arena packing (alpha folded
    into Bc, beta applied per column block), [ukr] on every tile including
    fringes. The jc loop — disjoint C column blocks — runs on [pool]
    (default {!Exo_par.Pool.global}); the result is bit-identical at every
    pool width. *)
val blis :
  ?alpha:float ->
  ?beta:float ->
  ?pool:Exo_par.Pool.t ->
  ?ws:workspace ->
  blocking:Analytical.blocking ->
  mr:int ->
  nr:int ->
  ukr:ukr ->
  Matrix.t -> Matrix.t -> Matrix.t -> unit

(** The BLIS-like GEMM over the monomorphized kernel table: same blocking
    as {!blis} with packed panels and C tiles in float32 Bigarrays, O(1)
    array-indexed dispatch into the table [kernels ()] returns (entry
    [(mr'-1)·nr + nr'-1] computes an mr'×nr' tile; at least mr·nr entries),
    and BOTH the jc and ic loops fanned out as one (jc × ic) task grid —
    disjoint C row×column block per task, so small-n problems where the
    jc-only split yields a single task still scale, bit-identical at every
    pool width. [kernels] is invoked once per task on the executing domain;
    the monomorphized table's executors are re-entrant (per-call
    accumulators), so the thunk may hand every task the same shared array
    ({!Registry.exo_bank} does). *)
val blis_ba :
  ?alpha:float ->
  ?beta:float ->
  ?pool:Exo_par.Pool.t ->
  ?ws:workspace ->
  blocking:Analytical.blocking ->
  mr:int ->
  nr:int ->
  kernels:(unit -> ukr_ba array) ->
  Matrix.t -> Matrix.t -> Matrix.t -> unit

(** One GEMM of a workload batch. *)
type problem = {
  p_a : Matrix.t;
  p_b : Matrix.t;
  p_c : Matrix.t;
  p_alpha : float;
  p_beta : float;
  p_blocking : Analytical.blocking;
  p_mr : int;
  p_nr : int;
}

(** Run a whole GEMM list (e.g. a DNN workload's layers) through one pool
    and one set of arenas — zero steady-state allocation. Problems run in
    order; each one's jc loop fans out on [pool]. *)
val batch :
  ?pool:Exo_par.Pool.t -> ?ws:workspace -> ukr:ukr -> problem list -> unit

(** {!batch} over the monomorphized Bigarray tier ({!blis_ba}). *)
val batch_ba :
  ?pool:Exo_par.Pool.t ->
  ?ws:workspace ->
  kernels:(unit -> ukr_ba array) ->
  problem list -> unit
