(** BLIS packing routines: A blocks into mr-row k-major panels, B blocks
    into nr-column panels (the layouts the generated kernels' [Ac]/[Bc]
    arguments assume); alpha is folded into the B packing (Fig. 4). Edge
    panels pack at their true width — the Exo approach of a dedicated kernel
    per fringe shape.

    Panels are laid out in one contiguous arena at a fixed pitch (the
    full-width panel size): [panel_off] gives panel starts, fringe panels
    occupy a prefix of their slot. The [_into] variants pack into a
    caller-owned arena — the steady-state GEMM path, which allocates
    nothing — behind a single up-front range check; [pack_a]/[pack_b]
    allocate a fresh arena. *)

type 'arena gen_packed = {
  data : 'arena;  (** the arena the panels were packed into *)
  pitch : int;  (** elements between consecutive panel starts *)
  num_panels : int;
  depth : int;  (** kc of this packing *)
  full : int;  (** full panel width: mr (A) or nr (B) *)
  block : int;  (** packed block extent: mcb (A) or ncb (B) *)
}

type packed = float array gen_packed

type ba32 = Exo_interp.Compile.ba32

type packed_ba = ba32 gen_packed
(** Same layout with the arena in a float32 Bigarray — the monomorphized
    tier's operand type, where the f32 rounding is the store itself. *)

(** Flat start of panel [i] in [data]. *)
val panel_off : 'a gen_packed -> int -> int

(** Rows (A) / columns (B) of panel [i] — [full] except on the fringe. *)
val panel_width : 'a gen_packed -> int -> int

(** Arena elements needed to pack an mcb×kcb A block / kcb×ncb B block. *)
val a_arena_size : mcb:int -> kcb:int -> mr:int -> int

val b_arena_size : ncb:int -> kcb:int -> nr:int -> int

val pack_a_into :
  float array ->
  Matrix.t -> ic:int -> pc:int -> mcb:int -> kcb:int -> mr:int -> packed

val pack_b_into :
  ?alpha:float ->
  float array ->
  Matrix.t -> pc:int -> jc:int -> kcb:int -> ncb:int -> nr:int -> packed

val pack_a :
  Matrix.t -> ic:int -> pc:int -> mcb:int -> kcb:int -> mr:int -> packed

val pack_b :
  ?alpha:float ->
  Matrix.t -> pc:int -> jc:int -> kcb:int -> ncb:int -> nr:int -> packed

(** The [_into] packers with a float32 Bigarray arena: identical layout and
    checks, and the store itself is the f32 rounding. *)
val pack_a_ba_into :
  ba32 ->
  Matrix.t -> ic:int -> pc:int -> mcb:int -> kcb:int -> mr:int -> packed_ba

val pack_b_ba_into :
  ?alpha:float ->
  ba32 ->
  Matrix.t -> pc:int -> jc:int -> kcb:int -> ncb:int -> nr:int -> packed_ba
