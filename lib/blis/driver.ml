(** Simulated full-GEMM performance (the paper's Section IV-B/IV-C
    experiments).

    The driver prices a complete BLIS-like GEMM run on the modeled machine:
    micro-kernel steady-state and prologue cycles (from each kernel's own
    trace), operand bandwidth (Ac streams from L2, Bc slivers from L1),
    C-tile traffic from beyond the LLC (hidden when the kernel prefetches —
    the BLIS-library advantage of Fig. 14), packing traffic, and fringe
    handling:

    - a monolithic kernel computes a *full* mr×nr tile on every fringe call
      (utilization loss — the paper's edge-case penalty);
    - the Exo family dispatches a specialized kernel per fringe shape.

    Four configurations reproduce the paper's legends: [BLIS] (library:
    monolithic assembly kernel + prefetch), [ALG+BLIS], [ALG+NEON] and
    [ALG+EXO] (all on the same analytically-blocked algorithm). *)

open Exo_isa
module KM = Exo_sim.Kernel_model

type setup =
  | Monolithic of { impl : KM.impl; prefetch : bool }
  | Exo_family of Exo_ukr_gen.Kits.t

let name_of = function
  | Monolithic { impl; prefetch } ->
      if prefetch then impl.KM.name else "ALG+" ^ impl.KM.name
  | Exo_family _ -> "ALG+EXO"

(** The four configurations of Figs. 14–18. *)
let blis_lib () = Monolithic { impl = Registry.blis_impl (); prefetch = true }

let alg_blis () = Monolithic { impl = Registry.blis_impl (); prefetch = false }
let alg_neon () = Monolithic { impl = Registry.neon_impl (); prefetch = false }
let alg_exo () = Exo_family Exo_ukr_gen.Kits.neon_f32

let all_setups () = [ alg_neon (); alg_blis (); alg_exo (); blis_lib () ]

(* ------------------------------------------------------------------ *)

(** Element size of a setup: the Exo family inherits its kit's dtype;
    the monolithic library kernels are FP32. *)
let dtype_bytes_of = function
  | Monolithic _ -> 4
  | Exo_family kit -> Exo_ir.Dtype.size_bytes kit.Exo_ukr_gen.Kits.dt

(** Per-iteration cycles including operand-bandwidth bounds (Ac from L2,
    Bc from L1). *)
let iter_cycles ?(dbytes = 4) (m : Machine.t) (impl : KM.impl) : float =
  let s = float_of_int dbytes in
  let a_bw = float_of_int impl.KM.mr *. s /. m.l2_bw in
  let b_bw = float_of_int impl.KM.nr *. s /. m.l1_bw in
  List.fold_left max (KM.cycles_per_iter m impl) [ a_bw; b_bw ]

(** Cycles for one micro-kernel call at depth [kc] within a large GEMM:
    compute plus the C-tile cost — streaming the tile in and out (read +
    write bandwidth) and the exposed load-to-use miss latency of the first
    accumulator loads. A prefetching kernel (the BLIS library's assembly
    kernel, Fig. 14) issues the next tile's prefetches during the k-loop and
    overlaps both. *)
let call_cycles_gemm ?(dbytes = 4) (m : Machine.t) (impl : KM.impl)
    ~(prefetch : bool) ~(kc : int) ~(c_bw : float) ~(c_lat : float) : float =
  let compute =
    KM.prologue_cycles m impl
    +. (float_of_int kc *. iter_cycles ~dbytes m impl)
    +. KM.call_overhead
    +. (if impl.KM.edge_logic then KM.edge_logic_overhead else 0.0)
  in
  let c_bytes = float_of_int (impl.KM.mr * impl.KM.nr * dbytes * 2) in
  let traffic = c_bytes /. c_bw in
  if prefetch then Float.max compute traffic else compute +. traffic +. c_lat

(** A rectangular region covered with one kernel shape. [useful] counts the
    real flops; a monolithic kernel always executes full tiles. *)
type region = { rm : int; rn : int; impl : KM.impl; full_tile : bool }

(** Decompose m×n for a monolithic mr×nr kernel: every call is a full tile
    (ceil counts). *)
let regions_monolithic (impl : KM.impl) ~(m : int) ~(n : int) : region list =
  [ { rm = m; rn = n; impl; full_tile = true } ]

(** Decompose m×n for the Exo family with main kernel (mr, nr): main region
    plus fringe strips, each with its own specialized kernel. *)
let regions_family ~(kit : Exo_ukr_gen.Kits.t) ~(mr : int) ~(nr : int) ~(m : int)
    ~(n : int) : region list =
  let mm = m / mr * mr and nm = n / nr * nr in
  let fm = m - mm and fn = n - nm in
  let mk rm rn mr nr =
    if rm = 0 || rn = 0 then []
    else [ { rm; rn; impl = Registry.exo_impl ~kit ~mr ~nr (); full_tile = false } ]
  in
  mk mm nm mr nr
  @ (if fm > 0 then mk fm nm fm nr else [])
  @ (if fn > 0 then mk mm fn mr fn else [])
  @ if fm > 0 && fn > 0 then mk fm fn fm fn else []

(** Simulated seconds for C += A·B with the given setup. *)
let time_of_regions ?(dbytes = 4) (machine : Machine.t) ~(regions : region list)
    ~(prefetch : bool) ~(m : int) ~(n : int) ~(k : int)
    ~(blocking : Analytical.blocking) : float =
  let { Analytical.mc = _; kc; nc } = blocking in
  let c_in_llc = m * n * dbytes <= Machine.cache_bytes machine.Machine.l3 in
  let c_bw = if c_in_llc then machine.Machine.l3_bw else machine.Machine.dram_bw in
  let c_lat =
    float_of_int
      (if c_in_llc then machine.Machine.l3_lat else machine.Machine.dram_lat)
  in
  (* kernel cycles: sum over pc blocks (depth kc or remainder) and regions *)
  let k_blocks =
    let full = k / kc in
    List.init full (fun _ -> kc) @ if k mod kc = 0 then [] else [ k mod kc ]
  in
  let kernel_cycles =
    List.fold_left
      (fun acc kcb ->
        acc
        +. List.fold_left
             (fun acc r ->
               let calls =
                 float_of_int
                   ((r.rm + r.impl.KM.mr - 1) / r.impl.KM.mr
                   * ((r.rn + r.impl.KM.nr - 1) / r.impl.KM.nr))
               in
               acc
               +. calls
                  *. call_cycles_gemm ~dbytes machine r.impl ~prefetch ~kc:kcb ~c_bw
                       ~c_lat)
             0.0 regions)
      0.0 k_blocks
  in
  (* packing traffic: Bc once per (jc, pc): k·n elements total; Ac once per
     (jc, pc, ic): m·k elements per jc pass *)
  let s = float_of_int dbytes in
  let jc_passes = float_of_int ((n + nc - 1) / nc) in
  let pack_b = float_of_int k *. float_of_int n *. s *. 2.0 /. machine.Machine.dram_bw in
  let pack_a =
    jc_passes *. float_of_int m *. float_of_int k *. s
    *. ((1.0 /. machine.Machine.dram_bw) +. (1.0 /. machine.Machine.l2_bw))
  in
  (kernel_cycles +. pack_a +. pack_b) /. (machine.Machine.freq_ghz *. 1e9)

(** Pick the Exo family's main kernel for a problem: the candidate shape
    minimizing modeled time (the paper's "matching the size of the
    micro-kernel to the problem"). *)
let candidate_shapes = [ (8, 12); (8, 8); (8, 4); (4, 12); (4, 8); (4, 4) ]

(* A setup's identity for memoization: the four paper configurations (and
   the per-kit Exo families) are distinguished by kernel name + prefetch +
   kit; the full evaluation is deterministic in (machine, setup, m, n, k). *)
let setup_key = function
  | Monolithic { impl; prefetch } ->
      Fmt.str "%s%s" impl.KM.name (if prefetch then "+pf" else "")
  | Exo_family kit -> "EXO:" ^ kit.Exo_ukr_gen.Kits.name

let time_uncached (machine : Machine.t) (setup : setup) ~(m : int) ~(n : int)
    ~(k : int) : float * string =
  let module Obs = Exo_obs.Obs in
  let args =
    if Obs.enabled () then
      [
        ("setup", setup_key setup);
        ("problem", Printf.sprintf "%dx%dx%d" m n k);
      ]
    else []
  in
  Obs.with_span ~args "driver.price" @@ fun () ->
  let dtype_bytes = dtype_bytes_of setup in
  match setup with
  | Monolithic { impl; prefetch } ->
      let blocking =
        Analytical.compute machine ~mr:impl.KM.mr ~nr:impl.KM.nr ~dtype_bytes
      in
      let regions = regions_monolithic impl ~m ~n in
      ( time_of_regions ~dbytes:dtype_bytes machine ~regions ~prefetch ~m ~n ~k
          ~blocking,
        Fmt.str "%dx%d" impl.KM.mr impl.KM.nr )
  | Exo_family kit ->
      let lanes = kit.Exo_ukr_gen.Kits.lanes in
      let shapes =
        (* candidate main shapes scale with the vector length so wider-lane
           kits (f16) consider register-feasible tiles *)
        List.filter_map
          (fun (mr, nr) ->
            let mr = mr * lanes / 4 in
            let c_regs = mr / lanes * nr and b_regs = (nr + lanes - 1) / lanes in
            if c_regs + (mr / lanes) + b_regs
               <= machine.Machine.vec.Exo_isa.Memories.num_regs
            then Some (mr, nr)
            else None)
          candidate_shapes
      in
      let best =
        List.map
          (fun (mr, nr) ->
            let blocking = Analytical.compute machine ~mr ~nr ~dtype_bytes in
            let regions = regions_family ~kit ~mr ~nr ~m ~n in
            let t =
              time_of_regions ~dbytes:dtype_bytes machine ~regions ~prefetch:false
                ~m ~n ~k ~blocking
            in
            (t, Fmt.str "%dx%d" mr nr))
          shapes
      in
      (match best with
      | [] ->
          invalid_arg
            (Fmt.str
               "Driver.time: no register-feasible micro-kernel shape for \
                machine %s with kit %s (%d vector registers)"
               machine.Machine.name kit.Exo_ukr_gen.Kits.name
               machine.Machine.vec.Exo_isa.Memories.num_regs)
      | hd :: tl ->
          List.fold_left
            (fun (bt, bn) (t, nm) -> if t < bt then (t, nm) else (bt, bn))
            hd tl)

(* The memo key is a structured tuple, never a formatted string: a
   separator-joined key lets (machine "m1/x", kernel "y") alias
   (machine "m1", kernel "x/y") and hand one configuration the other's
   cached timing. The setup component keeps the variant tag and the
   prefetch bit as their own fields for the same reason. *)
let setup_id = function
  | Monolithic { impl; prefetch } -> (`Mono, impl.KM.name, prefetch)
  | Exo_family kit -> (`Exo, kit.Exo_ukr_gen.Kits.name, false)

let time_cache :
    ( string * ([ `Mono | `Exo ] * string * bool) * int * int * int,
      float * string )
    Exo_par.Memo.t =
  Exo_par.Memo.create ~size:64 ()

(** Memoized: [gflops] and [selected_kernel] (and per-figure rows that ask
    for both) share one evaluation instead of re-pricing every candidate
    shape per query. Domain-safe ({!Exo_par.Memo}): the parallel experiment
    sweeps price GEMMs from several domains at once. *)
let time (machine : Machine.t) (setup : setup) ~(m : int) ~(n : int) ~(k : int) :
    float * string =
  let key = (machine.Machine.name, setup_id setup, m, n, k) in
  Exo_par.Memo.find_or_add time_cache key (fun () ->
      time_uncached machine setup ~m ~n ~k)

(** GFLOPS for C += A·B (2·m·n·k flops). *)
let gflops (machine : Machine.t) (setup : setup) ~m ~n ~k : float =
  let t, _ = time machine setup ~m ~n ~k in
  2.0 *. float_of_int m *. float_of_int n *. float_of_int k /. t /. 1e9

(** The full-tile utilization correction for monolithic kernels on fringe
    work is already in the call counts (ceil): useful flops are 2mnk while
    the kernel executes ceil-sized tiles. *)
let selected_kernel (machine : Machine.t) (setup : setup) ~m ~n ~k : string =
  snd (time machine setup ~m ~n ~k)
