(** Structured tracing + metrics + kernel provenance. See the interface for
    the cost and determinism contracts; the load-bearing implementation
    choices are:

    - the master switch is one [bool Atomic.t]; every recording entry point
      is [if Atomic.get enabled_flag then slow_path else ()] so a disabled
      build pays exactly one branch and zero allocations;
    - each domain owns a buffer ([Domain.DLS]) it alone mutates — recording
      is lock-free; the only lock guards the buffer registry (taken once
      per domain lifetime) and the metric registries (taken once per
      counter/histogram name);
    - merge determinism: {!Exo_par.Pool} brackets regions with
      {!region_begin} (a global epoch) and items with {!task_scope}, every
      event carries [(epoch, task, seq)], and {!drain} sorts on that key —
      which domain executed an item stops mattering. *)

(* ------------------------------------------------------------------ *)
(* Master switch                                                       *)

let enabled_flag : bool Atomic.t = Atomic.make false
let[@inline] enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let now_us () = Unix.gettimeofday () *. 1e6

(* ------------------------------------------------------------------ *)
(* Per-domain buffers                                                  *)

type kind = KComplete of float | KInstant | KUnclosed

type event = {
  e_name : string;
  e_args : (string * string) list;
  e_t0 : float;
  e_kind : kind;
  e_tid : int;
  e_epoch : int;
  e_task : int;
  e_seq : int;
  e_depth : int;
  e_parent : int;
}

type open_span = {
  os_name : string;
  os_args : (string * string) list;
  os_t0 : float;
  os_seq : int;
  os_epoch : int;
  os_task : int;
  os_depth : int;
  os_parent : int;
}

type dbuf = {
  db_tid : int;
  mutable db_task : int;  (* max_int outside a task *)
  mutable db_epoch : int;  (* valid only inside a task *)
  mutable db_seq : int;
  mutable db_last : float;  (* per-domain monotonic clamp *)
  mutable db_depth_base : int;  (* open-span count at task entry *)
  mutable db_events : event list;  (* newest first *)
  mutable db_open : open_span list;  (* innermost first *)
}

let registry_lock = Mutex.create ()
let registry : dbuf list ref = ref []
let region_ctr : int Atomic.t = Atomic.make 0

let dbuf_key : dbuf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          db_tid = (Domain.self () :> int);
          db_task = max_int;
          db_epoch = 0;
          db_seq = 0;
          db_last = 0.0;
          db_depth_base = 0;
          db_events = [];
          db_open = [];
        }
      in
      Mutex.protect registry_lock (fun () -> registry := b :: !registry);
      b)

let[@inline] buf () = Domain.DLS.get dbuf_key

(* clamped so timestamps never run backwards within a domain *)
let tick (b : dbuf) : float =
  let t = Unix.gettimeofday () in
  if t > b.db_last then b.db_last <- t;
  b.db_last

(* events outside any task carry the current region count as their epoch,
   so main-domain events slot before/after the regions they surround *)
let[@inline] cur_epoch (b : dbuf) =
  if b.db_task = max_int then Atomic.get region_ctr else b.db_epoch

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

type span = int (* 0 = none; else 1 + depth of the opened span *)

let none : span = 0

let begin_slow (args : (string * string) list) (name : string) : span =
  let b = buf () in
  let t = tick b in
  let seq = b.db_seq in
  b.db_seq <- seq + 1;
  let parent = match b.db_open with [] -> -1 | os :: _ -> os.os_seq in
  let depth = List.length b.db_open in
  b.db_open <-
    {
      os_name = name;
      os_args = args;
      os_t0 = t;
      os_seq = seq;
      os_epoch = cur_epoch b;
      os_task = b.db_task;
      os_depth = depth - b.db_depth_base;
      os_parent = parent;
    }
    :: b.db_open;
  depth + 1

let push_event (b : dbuf) (e : event) = b.db_events <- e :: b.db_events

let end_slow (h : span) : unit =
  let b = buf () in
  match b.db_open with
  | [] -> ()
  | os :: rest ->
      (* LIFO discipline: a mismatched handle still closes the top span so
         nothing leaks, but the mismatch is recorded, not swallowed *)
      let depth = List.length b.db_open in
      if depth <> h then begin
        let seq = b.db_seq in
        b.db_seq <- seq + 1;
        push_event b
          {
            e_name = "obs.span_mismatch";
            e_args = [ ("open", os.os_name) ];
            e_t0 = tick b;
            e_kind = KInstant;
            e_tid = b.db_tid;
            e_epoch = cur_epoch b;
            e_task = b.db_task;
            e_seq = seq;
            e_depth = depth - b.db_depth_base;
            e_parent = os.os_seq;
          }
      end;
      b.db_open <- rest;
      push_event b
        {
          e_name = os.os_name;
          e_args = os.os_args;
          e_t0 = os.os_t0;
          e_kind = KComplete (tick b);
          e_tid = b.db_tid;
          e_epoch = os.os_epoch;
          e_task = os.os_task;
          e_seq = os.os_seq;
          e_depth = os.os_depth;
          e_parent = os.os_parent;
        }

let begin_span ?(args = []) (name : string) : span =
  if Atomic.get enabled_flag then begin_slow args name else 0

let end_span (s : span) : unit = if s <> 0 then end_slow s

let with_span ?(args = []) (name : string) (f : unit -> 'a) : 'a =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let h = begin_slow args name in
    match f () with
    | v ->
        end_slow h;
        v
    | exception e ->
        end_slow h;
        raise e
  end

let instant ?(args = []) (name : string) : unit =
  if Atomic.get enabled_flag then begin
    let b = buf () in
    let seq = b.db_seq in
    b.db_seq <- seq + 1;
    let parent = match b.db_open with [] -> -1 | os :: _ -> os.os_seq in
    push_event b
      {
        e_name = name;
        e_args = args;
        e_t0 = tick b;
        e_kind = KInstant;
        e_tid = b.db_tid;
        e_epoch = cur_epoch b;
        e_task = b.db_task;
        e_seq = seq;
        e_depth = List.length b.db_open - b.db_depth_base;
        e_parent = parent;
      }
  end

(* ------------------------------------------------------------------ *)
(* Counters and histograms                                             *)

type counter = { c_name : string; c_cell : int Atomic.t }

let counters_lock = Mutex.create ()
let counters : counter list ref = ref []

let counter (name : string) : counter =
  Mutex.protect counters_lock (fun () ->
      match List.find_opt (fun c -> String.equal c.c_name name) !counters with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_cell = Atomic.make 0 } in
          counters := c :: !counters;
          c)

let add (c : counter) (n : int) : unit =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_cell n)

let incr (c : counter) : unit = add c 1
let counter_value (c : counter) : int = Atomic.get c.c_cell

type histogram = {
  h_name : string;
  h_cnt : int Atomic.t;
  h_tot : int Atomic.t;
  h_bkt : int Atomic.t array;  (* bucket i: samples v with bits_of v = i *)
}

let histograms_lock = Mutex.create ()
let histograms : histogram list ref = ref []

let histogram (name : string) : histogram =
  Mutex.protect histograms_lock (fun () ->
      match List.find_opt (fun h -> String.equal h.h_name name) !histograms with
      | Some h -> h
      | None ->
          let h =
            {
              h_name = name;
              h_cnt = Atomic.make 0;
              h_tot = Atomic.make 0;
              h_bkt = Array.init 63 (fun _ -> Atomic.make 0);
            }
          in
          histograms := h :: !histograms;
          h)

let bits_of n =
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let observe (h : histogram) (v : int) : unit =
  if Atomic.get enabled_flag && v >= 0 then begin
    ignore (Atomic.fetch_and_add h.h_cnt 1);
    ignore (Atomic.fetch_and_add h.h_tot v);
    ignore (Atomic.fetch_and_add h.h_bkt.(min 62 (bits_of v)) 1)
  end

(* the always-on variant: same cells, no master-switch gate — for metrics
   whose contract is "always counted" (serve request latency) *)
let observe_always (h : histogram) (v : int) : unit =
  if v >= 0 then begin
    ignore (Atomic.fetch_and_add h.h_cnt 1);
    ignore (Atomic.fetch_and_add h.h_tot v);
    ignore (Atomic.fetch_and_add h.h_bkt.(min 62 (bits_of v)) 1)
  end

let reset_histogram (h : histogram) : unit =
  Atomic.set h.h_cnt 0;
  Atomic.set h.h_tot 0;
  Array.iter (fun b -> Atomic.set b 0) h.h_bkt

(* ------------------------------------------------------------------ *)
(* Pool integration                                                    *)

let region_begin () : int = Atomic.fetch_and_add region_ctr 1 + 1

let task_scope ~(epoch : int) (task : int) (f : unit -> 'a) : 'a =
  let b = buf () in
  let old_task = b.db_task and old_epoch = b.db_epoch in
  let old_base = b.db_depth_base in
  b.db_task <- task;
  b.db_epoch <- epoch;
  b.db_depth_base <- List.length b.db_open;
  let restore () =
    b.db_task <- old_task;
    b.db_epoch <- old_epoch;
    b.db_depth_base <- old_base
  in
  match f () with
  | v ->
      restore ();
      v
  | exception e ->
      restore ();
      raise e

(* ------------------------------------------------------------------ *)
(* Drain and reset                                                     *)

type hsnap = { h_count : int; h_sum : int; h_buckets : int array }

let snapshot (h : histogram) : hsnap =
  {
    h_count = Atomic.get h.h_cnt;
    h_sum = Atomic.get h.h_tot;
    h_buckets = Array.map Atomic.get h.h_bkt;
  }

(* bucket 0 holds exactly 0; bucket i >= 1 holds [2^(i-1), 2^i - 1]; the
   top bucket absorbs everything observe clamped into it *)
let bucket_bounds (i : int) : int * int =
  if i <= 0 then (0, 0)
  else if i >= 62 then (1 lsl 61, max_int)
  else (1 lsl (i - 1), (1 lsl i) - 1)

let quantile (h : hsnap) (q : float) : float =
  if h.h_count <= 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_count))) in
    let n = Array.length h.h_buckets in
    let rec go i cum =
      if i >= n then float_of_int max_int
      else
        let c = h.h_buckets.(i) in
        if c > 0 && rank <= cum + c then begin
          (* the r-th of c samples spread evenly across the bucket: the
             estimate always lands inside the true quantile's bucket *)
          let lo, hi = bucket_bounds i in
          let r = rank - cum in
          float_of_int lo
          +. (float_of_int (hi - lo) *. (float_of_int r -. 0.5) /. float_of_int c)
        end
        else go (i + 1) (cum + c)
    in
    go 0 0
  end

type trace = {
  events : event list;
  counters : (string * int) list;
  histograms : (string * hsnap) list;
  unclosed : (string * int) list;
}

let event_order (a : event) (b : event) =
  let c = compare a.e_epoch b.e_epoch in
  if c <> 0 then c
  else
    let c = compare a.e_task b.e_task in
    if c <> 0 then c
    else
      let c = compare a.e_seq b.e_seq in
      if c <> 0 then c else compare a.e_tid b.e_tid

let drain () : trace =
  let bufs = Mutex.protect registry_lock (fun () -> !registry) in
  let events =
    List.concat_map
      (fun b ->
        let uncl =
          List.map
            (fun os ->
              {
                e_name = os.os_name;
                e_args = os.os_args;
                e_t0 = os.os_t0;
                e_kind = KUnclosed;
                e_tid = b.db_tid;
                e_epoch = os.os_epoch;
                e_task = os.os_task;
                e_seq = os.os_seq;
                e_depth = os.os_depth;
                e_parent = os.os_parent;
              })
            b.db_open
        in
        let es = List.rev_append b.db_events uncl in
        b.db_events <- [];
        b.db_open <- [];
        es)
      bufs
  in
  let events = List.sort event_order events in
  let by_name f = List.sort (fun a b -> compare (f a) (f b)) in
  {
    events;
    counters =
      Mutex.protect counters_lock (fun () ->
          List.map (fun c -> (c.c_name, Atomic.get c.c_cell)) !counters)
      |> by_name fst;
    histograms =
      Mutex.protect histograms_lock (fun () ->
          List.map
            (fun h ->
              ( h.h_name,
                {
                  h_count = Atomic.get h.h_cnt;
                  h_sum = Atomic.get h.h_tot;
                  h_buckets = Array.map Atomic.get h.h_bkt;
                } ))
            !histograms)
      |> by_name fst;
    unclosed =
      List.filter_map
        (fun e ->
          match e.e_kind with
          | KUnclosed -> Some (e.e_name, e.e_tid)
          | KComplete _ | KInstant -> None)
        events;
  }

let reset () : unit =
  ignore (drain ());
  Mutex.protect counters_lock (fun () ->
      List.iter (fun c -> Atomic.set c.c_cell 0) !counters);
  Mutex.protect histograms_lock (fun () ->
      List.iter
        (fun h ->
          Atomic.set h.h_cnt 0;
          Atomic.set h.h_tot 0;
          Array.iter (fun b -> Atomic.set b 0) h.h_bkt)
        !histograms);
  Atomic.set region_ctr 0

(* ------------------------------------------------------------------ *)
(* JSON plumbing (shared by the Chrome exporter and Provenance)        *)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_args (args : (string * string) list) : string =
  String.concat ","
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
       args)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

module Export = struct
  let chrome_json (tr : trace) : string =
    let b = Buffer.create 4096 in
    let t_base =
      List.fold_left (fun acc e -> Float.min acc e.e_t0) infinity tr.events
    in
    let t_base = if Float.is_finite t_base then t_base else 0.0 in
    let us t = (t -. t_base) *. 1e6 in
    let t_end =
      List.fold_left
        (fun acc e ->
          Float.max acc (match e.e_kind with KComplete t1 -> t1 | _ -> e.e_t0))
        t_base tr.events
    in
    Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    let first = ref true in
    let emit line =
      if not !first then Buffer.add_string b ",\n";
      first := false;
      Buffer.add_string b line
    in
    (* thread-name metadata, one per domain seen *)
    let tids = List.sort_uniq compare (List.map (fun e -> e.e_tid) tr.events) in
    List.iter
      (fun tid ->
        emit
          (Printf.sprintf
             "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"domain %d\"}}"
             tid tid))
      tids;
    List.iter
      (fun e ->
        let args = json_args e.e_args in
        match e.e_kind with
        | KComplete t1 ->
            emit
              (Printf.sprintf
                 "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"name\":\"%s\",\"cat\":\"span\",\"args\":{%s}}"
                 e.e_tid (us e.e_t0)
                 ((t1 -. e.e_t0) *. 1e6)
                 (json_escape e.e_name) args)
        | KInstant ->
            emit
              (Printf.sprintf
                 "{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"s\":\"t\",\"name\":\"%s\",\"cat\":\"instant\",\"args\":{%s}}"
                 e.e_tid (us e.e_t0) (json_escape e.e_name) args)
        | KUnclosed ->
            emit
              (Printf.sprintf
                 "{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"s\":\"t\",\"name\":\"%s\",\"cat\":\"instant\",\"args\":{\"error\":\"unclosed span\"%s%s}}"
                 e.e_tid (us e.e_t0) (json_escape e.e_name)
                 (if args = "" then "" else ",")
                 args))
      tr.events;
    List.iter
      (fun (name, v) ->
        emit
          (Printf.sprintf
             "{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":%.3f,\"name\":\"%s\",\"args\":{\"value\":%d}}"
             (us t_end) (json_escape name) v))
      tr.counters;
    Buffer.add_string b "\n]}\n";
    Buffer.contents b

  (* self time: each closed span's duration is charged against its parent
     via the recorded per-domain parent links — exact, no heuristics *)
  let span_totals (tr : trace) : (string * (int * float * float)) list =
    let closed =
      List.filter_map
        (fun e ->
          match e.e_kind with
          | KComplete t1 -> Some (e, t1 -. e.e_t0)
          | KInstant | KUnclosed -> None)
        tr.events
    in
    let child : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun ((e : event), dur) ->
        if e.e_parent >= 0 then begin
          let key = (e.e_tid, e.e_parent) in
          let cur = Option.value ~default:0.0 (Hashtbl.find_opt child key) in
          Hashtbl.replace child key (cur +. dur)
        end)
      closed;
    let agg : (string, int * float * float) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun ((e : event), dur) ->
        let kids =
          Option.value ~default:0.0 (Hashtbl.find_opt child (e.e_tid, e.e_seq))
        in
        let self = Float.max 0.0 (dur -. kids) in
        let n, tot, slf =
          Option.value ~default:(0, 0.0, 0.0) (Hashtbl.find_opt agg e.e_name)
        in
        Hashtbl.replace agg e.e_name (n + 1, tot +. dur, slf +. self))
      closed;
    Hashtbl.fold (fun name row acc -> (name, row) :: acc) agg []
    |> List.sort (fun (_, (_, a, _)) (_, (_, b, _)) -> compare b a)

  let text_report ?(top = 20) (tr : trace) : string =
    let b = Buffer.create 2048 in
    let rows =
      List.map (fun (name, (n, tot, slf)) -> (name, n, tot, slf)) (span_totals tr)
    in
    Buffer.add_string b "span profile (wall seconds)\n";
    Buffer.add_string b
      (Printf.sprintf "%-44s %8s %12s %12s\n" "label" "count" "total" "self");
    List.iter
      (fun (name, n, tot, slf) ->
        Buffer.add_string b (Printf.sprintf "%-44s %8d %12.6f %12.6f\n" name n tot slf))
      rows;
    let nonzero = List.filter (fun (_, v) -> v <> 0) tr.counters in
    if nonzero <> [] then begin
      Buffer.add_string b (Printf.sprintf "\ncounters (top %d)\n" top);
      nonzero
      |> List.sort (fun (_, a) (_, b) -> compare b a)
      |> List.filteri (fun i _ -> i < top)
      |> List.iter (fun (name, v) ->
             Buffer.add_string b (Printf.sprintf "%-44s %16d\n" name v))
    end;
    let live = List.filter (fun (_, h) -> h.h_count > 0) tr.histograms in
    if live <> [] then begin
      Buffer.add_string b "\nhistograms\n";
      List.iter
        (fun (name, h) ->
          let top_bits = ref 0 in
          Array.iteri (fun i n -> if n > 0 then top_bits := i + 1) h.h_buckets;
          Buffer.add_string b
            (Printf.sprintf "%-44s count %-10d mean %-12.1f max<2^%d\n" name
               h.h_count
               (float_of_int h.h_sum /. float_of_int (max 1 h.h_count))
               !top_bits))
        live
    end;
    if tr.unclosed <> [] then begin
      Buffer.add_string b "\nUNCLOSED spans (begin without end)\n";
      List.iter
        (fun (name, tid) ->
          Buffer.add_string b (Printf.sprintf "  %s (domain %d)\n" name tid))
        tr.unclosed
    end;
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)

module Provenance = struct
  type entry =
    | Prim of {
        op : string;
        pattern : string option;
        nodes_before : int;
        nodes_after : int;
        cert_us : float;
        ok : bool;
        detail : string option;
      }
    | Step of { title : string; figure : string option }

  (* a stack of active collectors per domain; [record] feeds them all so
     an outer collector still sees entries from a nested [collect] *)
  let stack_key : entry list ref list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let collecting () = !(Domain.DLS.get stack_key) <> []

  let record (e : entry) : unit =
    List.iter (fun cell -> cell := e :: !cell) !(Domain.DLS.get stack_key)

  let mark_step ?figure (title : string) : unit =
    if collecting () then record (Step { title; figure })

  let collect (f : unit -> 'a) : 'a * entry list =
    let st = Domain.DLS.get stack_key in
    let cell = ref [] in
    st := cell :: !st;
    let finish () = st := List.filter (fun c -> c != cell) !st in
    match f () with
    | v ->
        finish ();
        (v, List.rev !cell)
    | exception e ->
        finish ();
        raise e

  let step_count (es : entry list) : int =
    List.length (List.filter (function Step _ -> true | Prim _ -> false) es)

  let prim_count (es : entry list) : int =
    List.length (List.filter (function Prim _ -> true | Step _ -> false) es)

  let all_ok (es : entry list) : bool =
    List.for_all (function Prim p -> p.ok | Step _ -> true) es

  let entry_json (e : entry) : string =
    match e with
    | Step { title; figure } ->
        Printf.sprintf "    { \"kind\": \"step\", \"title\": \"%s\"%s }"
          (json_escape title)
          (match figure with
          | Some f -> Printf.sprintf ", \"figure\": \"%s\"" (json_escape f)
          | None -> "")
    | Prim p ->
        Printf.sprintf
          "    { \"kind\": \"prim\", \"op\": \"%s\", \"pattern\": %s, \
           \"nodes_before\": %d, \"nodes_after\": %d, \"cert_us\": %.1f, \
           \"ok\": %b%s }"
          (json_escape p.op)
          (match p.pattern with
          | Some pat -> Printf.sprintf "\"%s\"" (json_escape pat)
          | None -> "null")
          p.nodes_before p.nodes_after p.cert_us p.ok
          (match p.detail with
          | Some d -> Printf.sprintf ", \"detail\": \"%s\"" (json_escape d)
          | None -> "")

  let to_json ~(kernel : string) ?kit ?style ?declared_steps (es : entry list) :
      string =
    let b = Buffer.create 2048 in
    Buffer.add_string b "{\n";
    Buffer.add_string b (Printf.sprintf "  \"kernel\": \"%s\",\n" (json_escape kernel));
    (match kit with
    | Some k -> Buffer.add_string b (Printf.sprintf "  \"kit\": \"%s\",\n" (json_escape k))
    | None -> ());
    (match style with
    | Some s ->
        Buffer.add_string b (Printf.sprintf "  \"style\": \"%s\",\n" (json_escape s))
    | None -> ());
    (match declared_steps with
    | Some d -> Buffer.add_string b (Printf.sprintf "  \"declared_steps\": %d,\n" d)
    | None -> ());
    Buffer.add_string b (Printf.sprintf "  \"step_count\": %d,\n" (step_count es));
    Buffer.add_string b (Printf.sprintf "  \"primitive_count\": %d,\n" (prim_count es));
    Buffer.add_string b (Printf.sprintf "  \"certificates_ok\": %b,\n" (all_ok es));
    Buffer.add_string b "  \"log\": [\n";
    Buffer.add_string b (String.concat ",\n" (List.map entry_json es));
    Buffer.add_string b "\n  ]\n}\n";
    Buffer.contents b

  let header_lines (es : entry list) : string list =
    let summary =
      Printf.sprintf "provenance: %d schedule steps, %d primitives, certificates %s"
        (step_count es) (prim_count es)
        (if all_ok es then "ok" else "FAILED")
    in
    let steps =
      List.filter_map
        (function
          | Step { title; figure } ->
              Some
                (Printf.sprintf "  step: %s%s" title
                   (match figure with Some f -> " (" ^ f ^ ")" | None -> ""))
          | Prim _ -> None)
        es
    in
    summary :: steps
end

(* ------------------------------------------------------------------ *)

module Meta = struct
  let schema_version = 6

  let git_commit () =
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
    with _ -> "unknown"

  let json ?flambda ?host_cc ?host_isa ~pool_jobs () =
    Printf.sprintf
      "\"meta\": {\n\
      \    \"schema_version\": %d,\n\
      \    \"git_commit\": %S,\n\
      \    \"host_cores\": %d,\n\
      \    \"pool_jobs\": %d,\n\
      \    \"ocaml_version\": %S%s%s%s\n\
      \  }"
      schema_version (git_commit ())
      (Domain.recommended_domain_count ())
      pool_jobs Sys.ocaml_version
      (match flambda with
      | None -> ""
      | Some f -> Printf.sprintf ",\n    \"flambda\": %b" f)
      (match host_cc with
      | None -> ""
      | Some cc -> Printf.sprintf ",\n    \"host_cc\": %S" cc)
      (match host_isa with
      | None -> ""
      | Some isa -> Printf.sprintf ",\n    \"host_isa\": %S" isa)
end
