(** Structured tracing, metrics, and kernel provenance.

    The repro's performance story is told per stage — scheduling rewrites,
    packing, macro-/micro-kernel phases, cache behaviour — and this module
    is the one place every layer reports to. It depends on nothing beyond
    the stdlib and [unix] (for the wall clock): no third-party packages.

    {2 Cost contract}

    Tracing is off by default. Every hot-path entry point ({!begin_span},
    {!end_span}, {!add}, {!observe}, {!instant}) starts with a single branch
    on one [Atomic.t] and returns immediately when disabled, allocating
    nothing — the perf gate in [bench/main.exe perf] rides on this. Spans
    wrapping closures ({!with_span}) are for cold paths; hot loops use the
    {!begin_span}/{!end_span} token pair, which never builds a closure.

    {2 Determinism contract}

    Each domain records into its own buffer (single-writer, lock-free).
    {!Exo_par.Pool} brackets every parallel region with {!region_begin} and
    runs each work item under {!task_scope}, so merged events sort by
    [(epoch, task, seq)]: for a pure workload the merged trace is identical
    at every pool width up to span ids and (monotonic, per-domain) wall
    timestamps. A qcheck property in [test/test_obs.ml] pins this. *)

(** {1 Master switch} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** Drop every buffered event, zero all counters and histograms, and reset
    the region clock. Call from the main domain with no span in flight on
    any other domain. *)
val reset : unit -> unit

(** {1 Spans} *)

type span
(** A token for an open span. {!none} (the disabled case) is free. *)

val none : span

(** Open a span on the calling domain. One atomic branch and no allocation
    when tracing is disabled. Spans nest per domain: close in LIFO order.
    Build the [args] list only when {!enabled} says so, or the list itself
    is allocated on the disabled path. *)
val begin_span : ?args:(string * string) list -> string -> span

val end_span : span -> unit

(** [with_span name f] — [f] bracketed by a span, closed on exceptions too.
    Allocates its closure even when disabled: cold paths only. *)
val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** A zero-duration event. *)
val instant : ?args:(string * string) list -> string -> unit

(** {1 Counters and histograms}

    Monotonic, process-wide, domain-safe (atomic adds), registered by name
    (find-or-create; same name returns the same cell). Mutations are
    dropped while disabled. *)

type counter

val counter : string -> counter
val add : counter -> int -> unit
val incr : counter -> unit
val counter_value : counter -> int

type histogram

val histogram : string -> histogram

(** Record a non-negative integer sample (log2 buckets + count + sum). *)
val observe : histogram -> int -> unit

(** Like {!observe} but with no master-switch gate: the sample is counted
    even while tracing is disabled. For metrics whose contract is
    "always on" (the serve daemon's request-latency histograms) — the
    tracing cost contract above is about {!observe}, not this. *)
val observe_always : histogram -> int -> unit

(** Zero one histogram in place (count, sum, every bucket) without
    touching the rest of the registry. *)
val reset_histogram : histogram -> unit

(** {1 Pool integration} (called by {!Exo_par.Pool}) *)

(** Open a new parallel region; returns its epoch (>= 1). *)
val region_begin : unit -> int

(** Run one work item: events recorded inside carry [(epoch, task)] and
    depths relative to the task entry, which is what makes the merged trace
    pool-width-invariant. *)
val task_scope : epoch:int -> int -> (unit -> 'a) -> 'a

(** {1 The merged trace} *)

type kind =
  | KComplete of float  (** closed span; payload is the end time (s) *)
  | KInstant
  | KUnclosed  (** span still open at {!drain} — reported, never dropped *)

type event = {
  e_name : string;
  e_args : (string * string) list;
  e_t0 : float;  (** seconds, per-domain monotonic *)
  e_kind : kind;
  e_tid : int;  (** domain id *)
  e_epoch : int;  (** pool region, 0 outside any region *)
  e_task : int;  (** work-item index, [max_int] outside a task *)
  e_seq : int;  (** per-domain begin order *)
  e_depth : int;  (** nesting depth relative to the task entry *)
  e_parent : int;  (** seq of the enclosing span on this domain, -1 if none *)
}

type hsnap = { h_count : int; h_sum : int; h_buckets : int array }

type trace = {
  events : event list;  (** sorted by [(epoch, task, seq, tid)] *)
  counters : (string * int) list;  (** sorted by name; zeros included *)
  histograms : (string * hsnap) list;  (** sorted by name *)
  unclosed : (string * int) list;  (** (name, tid) of every unclosed span *)
}

(** Collect and clear every domain's buffer and snapshot the metrics
    (counters keep their running values; {!reset} zeroes them). Unclosed
    spans become [KUnclosed] events AND entries in [unclosed]. Call from
    the main domain between parallel regions. *)
val drain : unit -> trace

(** {1 Histogram snapshots and quantile estimation}

    The buckets are log2: bucket [0] holds exactly the value 0, bucket
    [i >= 1] holds samples [v] with [2^(i-1) <= v <= 2^i - 1], and the top
    bucket absorbs everything larger. *)

(** Atomic-read snapshot of one histogram without draining the trace. *)
val snapshot : histogram -> hsnap

(** [(lo, hi)] of bucket [i]: [(0, 0)], then [(2^(i-1), 2^i - 1)], clamped
    to [(2^61, max_int)] at the top. *)
val bucket_bounds : int -> int * int

(** [quantile h q] estimates the [q]-quantile (rank [ceil (q * count)],
    clamped to at least 1) by spreading a bucket's samples evenly across
    its bounds — the estimate always lands inside the bucket that holds
    the true quantile. 0 when empty. *)
val quantile : hsnap -> float -> float

(** {1 Exporters} *)

module Export : sig
  (** Chrome [trace_event] JSON — load in [chrome://tracing] or Perfetto.
      Spans are complete ("X") events in microseconds; counters one final
      "C" sample; unclosed spans instants flagged ["error": "unclosed"]. *)
  val chrome_json : trace -> string

  (** Plain-text profile: per-label count/total/self wall time (self =
      total minus time in child spans, via recorded parent links), top-N
      counters, histogram summaries, unclosed spans. *)
  val text_report : ?top:int -> trace -> string

  (** The aggregation {!text_report} prints, as data: per-label
      [(count, total_s, self_s)] rows sorted by descending total (self =
      total minus child-span time via recorded parent links). Feeds the
      ledger's per-phase attribution table. *)
  val span_totals : trace -> (string * (int * float * float)) list
end

(** {1 Kernel provenance}

    The machine-readable record of how a kernel was made: one entry per
    scheduling-primitive application (cursor pattern, IR node-count delta,
    certificate-check time and outcome) plus one marker per schedule macro
    step. Collection is scoped and explicit ({!Provenance.collect}) and
    works whether or not tracing is enabled — [Family.generate] always
    collects, so every generated kernel carries its schedule. *)

module Provenance : sig
  type entry =
    | Prim of {
        op : string;  (** scheduling primitive name *)
        pattern : string option;  (** cursor pattern the op resolved *)
        nodes_before : int;  (** IR statement/expression node count *)
        nodes_after : int;
        cert_us : float;  (** certificate (typecheck + effects) time *)
        ok : bool;
        detail : string option;  (** failure message when [not ok] *)
      }
    | Step of { title : string; figure : string option }

  (** Is any collector active on this domain? *)
  val collecting : unit -> bool

  (** Record an entry into every active collector on this domain. *)
  val record : entry -> unit

  (** Schedule macro-step marker ([Steps.record], [Family] templates). *)
  val mark_step : ?figure:string -> string -> unit

  (** Run [f] with a fresh collector; returns its result and the entries
      recorded during the call, oldest first. Nests: inner collectors do
      not steal entries from outer ones. *)
  val collect : (unit -> 'a) -> 'a * entry list

  val step_count : entry list -> int
  val prim_count : entry list -> int

  (** Every primitive and certificate succeeded. *)
  val all_ok : entry list -> bool

  (** The JSON sidecar emitted next to generated C. One [log] line per
      entry (["kind": "step"|"prim"]), plus [step_count] /
      [declared_steps] / [primitive_count] / [certificates_ok] headers —
      CI cross-checks [step_count] against [declared_steps]. *)
  val to_json :
    kernel:string ->
    ?kit:string ->
    ?style:string ->
    ?declared_steps:int ->
    entry list ->
    string

  (** Compact header-comment lines for {!Exo_codegen.C_emit} output. *)
  val header_lines : entry list -> string list
end

(** {1 Shared measurement metadata}

    The one ["meta"] JSON block every machine-readable artifact this repo
    emits carries — the BENCH_*.json files and [ukrgen lint --tiers
    --json] — so downstream tooling can always find the schema version,
    the commit the numbers were measured at, and the parallelism that was
    available. One writer here keeps the files in lock-step: bump
    {!Meta.schema_version} when any of their shapes change. *)

module Meta : sig
  (** Version of every meta-carrying JSON artifact (BENCH_*.json,
      tierlint.json). Bumped in lock-step across all of them. *)
  val schema_version : int

  (** Short git commit of the working tree, or ["unknown"] outside a
      checkout (e.g. a release tarball). *)
  val git_commit : unit -> string

  (** The ["meta": {...}] object (no trailing comma/newline). [pool_jobs]
      comes from the caller ({!Exo_par.Pool.default_jobs} — this library
      sits below [exo_par]); [flambda] likewise (compiler-libs [Config]),
      as do [host_cc] / [host_isa] (the native tier's capability probe,
      [Exo_native.Host] — this library sits below it too) — each omitted
      from the JSON when not passed. *)
  val json :
    ?flambda:bool -> ?host_cc:string -> ?host_isa:string -> pool_jobs:int ->
    unit -> string
end

(** Wall-clock microseconds (for callers timing sub-phases by hand). *)
val now_us : unit -> float
