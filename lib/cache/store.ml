(** Content-addressed persistent artifact store.

    The cold-start eliminator's disk half: compiled-kernel artifacts and
    tuner rankings are keyed by a stable digest over everything that could
    change their meaning (kit name + kit content digest, shape, variant,
    declared schedule steps, compiler/ABI version) and written once, then
    answered from disk by every later process — the daemon, the one-shot
    CLI, and the bench all read the same entries.

    Durability contract:
    - {b atomic writes}: an entry is serialized to a temp file in the entry's
      own directory and published with a hard link (falling back to rename),
      so a reader never observes a half-written entry;
    - {b first writer wins}: publishing is create-if-absent ([Unix.link]
      fails with [EEXIST]); when several domains or processes race to fill
      the same key, exactly one body survives and the losers' bytes are
      dropped — mirroring {!Exo_par.Memo}'s in-memory contract;
    - {b corruption-tolerant reads}: every entry carries a magic tag, a
      format version and an MD5 over the payload; a truncated, corrupted or
      zero-length file (or one written by an incompatible build) reads as
      [None] and is unlinked so the next writer can replace it — a bad cache
      can cost a recompute, never a crash;
    - {b invalidation by keying}: nothing is ever edited in place. Changing
      a kit (its digest is a key part) or the artifact ABI simply keys new
      entries; stale ones become unreachable garbage.

    Values go through [Marshal] and must be pure data — no closures, no
    custom blocks with [Abstract] semantics. Each caller guards its own
    payload type with a distinct [kind] and an ABI-version key part. *)

type t = { root : string }

let root t = t.root

(* ------------------------------------------------------------------ *)
(* Counters: always-on atomics (the serve STATS verb and the bench's
   hit/miss section must see traffic in plain runs), mirrored into Obs
   counters for the profile exporter when tracing is enabled. *)

module Obs = Exo_obs.Obs

let hits = Atomic.make 0
let misses = Atomic.make 0
let writes = Atomic.make 0
let corrupt = Atomic.make 0
let obs_hits = Obs.counter "cache.hits"
let obs_misses = Obs.counter "cache.misses"
let obs_writes = Obs.counter "cache.writes"
let obs_corrupt = Obs.counter "cache.corrupt"

let count cell obs =
  Atomic.incr cell;
  if Obs.enabled () then Obs.incr obs

let hit_miss_counts () = (Atomic.get hits, Atomic.get misses)
let write_counts () = (Atomic.get writes, Atomic.get corrupt)

let reset_counts () =
  Atomic.set hits 0;
  Atomic.set misses 0;
  Atomic.set writes 0;
  Atomic.set corrupt 0

(* ------------------------------------------------------------------ *)
(* Store construction and the ambient (process-default) store           *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let of_dir dir =
  mkdir_p dir;
  { root = dir }

let env_var = "UKRGEN_CACHE_DIR"

(* The ambient store is what Registry/Family/Tuner consult when the caller
   does not thread a store explicitly: unset (the default — [dune runtest]
   must not write outside the build tree) unless [UKRGEN_CACHE_DIR] is set
   or the CLI's [--cache] installed one. [None] in the cell means "not yet
   resolved"; [Some None] means "resolved: disabled". *)
let ambient_cell : t option option Atomic.t = Atomic.make None

let set_ambient = function
  | None -> Atomic.set ambient_cell (Some None)
  | Some dir -> Atomic.set ambient_cell (Some (Some (of_dir dir)))

let ambient () =
  match Atomic.get ambient_cell with
  | Some v -> v
  | None ->
      let v =
        match Sys.getenv_opt env_var with
        | Some dir when dir <> "" -> ( try Some (of_dir dir) with _ -> None)
        | _ -> None
      in
      (* first resolver wins; races only ever resolve to the same value *)
      ignore (Atomic.compare_and_set ambient_cell None (Some v));
      (match Atomic.get ambient_cell with Some v -> v | None -> v)

(* ------------------------------------------------------------------ *)
(* Keys: hex MD5 over a length-prefixed part encoding, so part contents
   can never run into each other ("ab"+"c" vs "a"+"bc").                *)

let key (parts : string list) : string =
  let b = Buffer.create 128 in
  List.iter
    (fun p ->
      Buffer.add_string b (string_of_int (String.length p));
      Buffer.add_char b ':';
      Buffer.add_string b p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Entries live at <root>/<kind>/<first-two-hex>/<digest>, the usual
   fan-out so one kind never piles thousands of files in one directory. *)
let path t ~kind ~key:k =
  if String.length k < 3 then invalid_arg "Store.path: key too short";
  Filename.concat (Filename.concat (Filename.concat t.root kind) (String.sub k 0 2)) k

(* ------------------------------------------------------------------ *)
(* Entry file format: magic+version line, payload digest line, payload
   length line, then the marshaled payload.                             *)

let magic = "EXOCACHE1"

let encode (v : 'a) : string =
  let payload = Marshal.to_string v [] in
  String.concat ""
    [
      magic; "\n";
      Digest.to_hex (Digest.string payload); "\n";
      string_of_int (String.length payload); "\n";
      payload;
    ]

let decode (s : string) : 'a option =
  try
    let nl1 = String.index s '\n' in
    let nl2 = String.index_from s (nl1 + 1) '\n' in
    let nl3 = String.index_from s (nl2 + 1) '\n' in
    if String.sub s 0 nl1 <> magic then None
    else
      let digest = String.sub s (nl1 + 1) (nl2 - nl1 - 1) in
      let len = int_of_string (String.sub s (nl2 + 1) (nl3 - nl2 - 1)) in
      if String.length s - nl3 - 1 <> len then None
      else
        let payload = String.sub s (nl3 + 1) len in
        if Digest.to_hex (Digest.string payload) <> digest then None
        else Some (Marshal.from_string payload 0)
  with _ -> None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let remove t ~kind ~key:k =
  try Sys.remove (path t ~kind ~key:k) with Sys_error _ -> ()

let get (t : t) ~(kind : string) ~(key : string) : 'a option =
  let p = path t ~kind ~key in
  if not (Sys.file_exists p) then begin
    count misses obs_misses;
    None
  end
  else
    match decode (read_file p) with
    | Some v ->
        count hits obs_hits;
        Some v
    | None | (exception _) ->
        (* bad entry: drop it so a later put can heal the slot, and report
           a miss — the caller recomputes exactly as on a cold key *)
        count corrupt obs_corrupt;
        count misses obs_misses;
        (try Sys.remove p with Sys_error _ -> ());
        None

(** [put t ~kind ~key v] — publish [v] unless the key is already present.
    Returns [true] when this call's bytes became the entry, [false] when an
    earlier writer (this or any other process) won. *)
let put (t : t) ~(kind : string) ~(key : string) (v : 'a) : bool =
  let target = path t ~kind ~key in
  mkdir_p (Filename.dirname target);
  if Sys.file_exists target then false
  else
    let dir = Filename.dirname target in
    let tmp =
      Filename.temp_file ~temp_dir:dir ".wr" ".tmp"
    in
    let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
    match
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (encode v));
      (* create-if-absent publish: link fails with EEXIST when another
         writer got there first *)
      (try
         Unix.link tmp target;
         true
       with
      | Unix.Unix_error (Unix.EEXIST, _, _) -> false
      | Unix.Unix_error ((Unix.EPERM | Unix.ENOSYS | Unix.EOPNOTSUPP), _, _) ->
          (* no hard links on this filesystem: fall back to the atomic (but
             last-writer-wins) rename, guarded by the existence check above *)
          if Sys.file_exists target then false
          else begin
            Sys.rename tmp target;
            true
          end)
    with
    | won ->
        cleanup ();
        if won then count writes obs_writes;
        won
    | exception e ->
        cleanup ();
        raise e

(** Memoized read-through: the disk-backed analogue of
    {!Exo_par.Memo.find_or_add}. A miss (or corrupt entry) computes and
    publishes; losing the publish race still returns this call's value
    (identical inputs ⇒ equivalent values — computes must be pure). *)
let find_or_add (t : t) ~(kind : string) ~(key : string) (compute : unit -> 'a) : 'a =
  match get t ~kind ~key with
  | Some v -> v
  | None ->
      let v = compute () in
      ignore (put t ~kind ~key v);
      v

type gc_stats = {
  gc_scanned : int;
  gc_deleted : int;
  gc_kept_bytes : int;
  gc_freed_bytes : int;
}

(** LRU-by-mtime sweep over every kind: keep the most recently touched
    entries whose cumulative size fits [max_bytes], delete the rest.
    In-flight temp files ([.wr*.tmp], not yet published) are left alone —
    racing writers keep their atomic-publish contract. *)
let gc (t : t) ~(max_bytes : int) : gc_stats =
  if max_bytes < 0 then invalid_arg "Store.gc: max_bytes must be >= 0";
  let entries = ref [] in
  let scan_dir dir f =
    if Sys.file_exists dir && Sys.is_directory dir then
      Array.iter f (Sys.readdir dir)
  in
  scan_dir t.root (fun kind ->
      let kdir = Filename.concat t.root kind in
      scan_dir kdir (fun sub ->
          let sdir = Filename.concat kdir sub in
          scan_dir sdir (fun file ->
              if not (String.starts_with ~prefix:".wr" file) then
                let p = Filename.concat sdir file in
                match Unix.stat p with
                | { Unix.st_kind = Unix.S_REG; st_mtime; st_size; _ } ->
                    entries := (p, st_mtime, st_size) :: !entries
                | _ -> ()
                | exception Unix.Unix_error _ -> ())));
  let newest_first =
    List.sort (fun (_, m1, _) (_, m2, _) -> compare (m2 : float) m1) !entries
  in
  let kept_bytes = ref 0 and deleted = ref 0 and freed = ref 0 in
  List.iter
    (fun (p, _, size) ->
      if !kept_bytes + size <= max_bytes then kept_bytes := !kept_bytes + size
      else begin
        (try Sys.remove p with Sys_error _ -> ());
        incr deleted;
        freed := !freed + size
      end)
    newest_first;
  {
    gc_scanned = List.length newest_first;
    gc_deleted = !deleted;
    gc_kept_bytes = !kept_bytes;
    gc_freed_bytes = !freed;
  }

(** Number of entries of [kind] on disk (tests and the bench report). *)
let entry_count (t : t) ~(kind : string) : int =
  let dir = Filename.concat t.root kind in
  if not (Sys.file_exists dir) then 0
  else
    Array.fold_left
      (fun n sub ->
        let d = Filename.concat dir sub in
        if Sys.is_directory d then n + Array.length (Sys.readdir d) else n)
      0 (Sys.readdir dir)
