(** Content-addressed persistent artifact store.

    On-disk memoization for everything the kernel pipeline computes more
    than once per machine: certified-kernel artifacts and tuner rankings,
    keyed by a stable digest over (kit name + kit digest, shape, variant,
    declared schedule steps, compiler/ABI version). Writes are atomic and
    first-writer-wins under concurrent domains AND processes; reads are
    corruption-tolerant (a bad entry reads as a miss and is dropped, never
    raises); invalidation is by keying — changing a kit or the artifact ABI
    keys fresh entries and strands the stale ones.

    Values are [Marshal]ed and must be pure data (no closures). Callers
    segregate payload types by [kind] and an ABI-version key part. *)

type t

(** The store's root directory. *)
val root : t -> string

(** Open (creating directories as needed) a store rooted at a directory. *)
val of_dir : string -> t

(** The environment variable the ambient store reads: ["UKRGEN_CACHE_DIR"]. *)
val env_var : string

(** The process-default store consulted by {!Exo_blis.Registry},
    {!Exo_blis.Tuner} and {!Exo_ukr_gen.Family}: [None] (caching disabled)
    unless {!env_var} is set or {!set_ambient} installed one. *)
val ambient : unit -> t option

(** Install ([Some dir]) or disable ([None]) the ambient store, overriding
    the environment (the CLI's [--cache] flag; tests). *)
val set_ambient : string option -> unit

(** Stable hex digest of a part list (length-prefixed, so parts can never
    alias across boundaries). *)
val key : string list -> string

(** The entry file a (kind, key) pair maps to — tests corrupt this path. *)
val path : t -> kind:string -> key:string -> string

(** [get t ~kind ~key] — the stored value, or [None] on a missing, torn,
    corrupted or incompatible entry (which is unlinked). Counts one hit or
    one miss. *)
val get : t -> kind:string -> key:string -> 'a option

(** [put t ~kind ~key v] — publish atomically unless present; [true] iff
    this call's bytes became the entry (first writer wins). *)
val put : t -> kind:string -> key:string -> 'a -> bool

(** Disk-backed {!Exo_par.Memo.find_or_add}: get, else compute + publish
    (losing the race still returns this call's value). *)
val find_or_add : t -> kind:string -> key:string -> (unit -> 'a) -> 'a

(** Drop one entry (ignores absence). *)
val remove : t -> kind:string -> key:string -> unit

(** Entries of a kind currently on disk. *)
val entry_count : t -> kind:string -> int

type gc_stats = {
  gc_scanned : int;  (** entries examined, across every kind *)
  gc_deleted : int;
  gc_kept_bytes : int;
  gc_freed_bytes : int;
}

(** [gc t ~max_bytes] — LRU sweep: keep the most recently touched entries
    (by mtime) whose cumulative size fits the budget, delete the rest.
    In-flight temp files are left alone. The CLI's [ukrgen cache gc]. *)
val gc : t -> max_bytes:int -> gc_stats

(** {1 Counters}

    Process-wide, always-on (the serve [STATS] verb and BENCH_serve.json
    read them in plain runs), mirrored to the Obs counters [cache.hits] /
    [cache.misses] / [cache.writes] / [cache.corrupt] while tracing. *)

(** [(hits, misses)] since start or the last {!reset_counts}. Corrupt
    entries count as misses (plus one corrupt). *)
val hit_miss_counts : unit -> int * int

(** [(writes, corrupt)]. *)
val write_counts : unit -> int * int

val reset_counts : unit -> unit
