(** Shared plumbing for scheduling primitives. *)

open Exo_ir

(** Log source for schedule tracing: enable with
    [Logs.Src.set_level Common.src (Some Debug)] (the CLI's [--verbose]) to
    see every primitive application. *)
let src = Logs.Src.create "exo.sched" ~doc:"scheduling primitive tracing"

module Log = (val Logs.src_log src)

exception Sched_error of string

let err fmt = Fmt.kstr (fun s -> raise (Sched_error s)) fmt

(** Every primitive re-checks its output against its input: the result must
    typecheck and must carry an {!Exo_check.Effects.preserves} certificate
    (no new argument-buffer effects, no provable footprint escape). A
    failure here is a bug in the primitive, not in user code, and says so. *)
let check_proc_result ~(op : string) ~(old : Ir.proc) (p : Ir.proc) : Ir.proc =
  (try Exo_check.Wellformed.check_proc p
   with Exo_check.Wellformed.Type_error m ->
     err "internal error: %s produced an ill-typed procedure: %s" op m);
  (match Exo_check.Effects.preserves ~old_p:old ~new_p:p with
  | Ok () -> ()
  | Error m ->
      err "internal error: %s broke the effect contract of %s: %s" op
        p.Ir.p_name m);
  Log.debug (fun m -> m "%s ok on %s" op p.Ir.p_name);
  p

let recheck = check_proc_result

(** Wrap pattern errors as scheduling errors with the op name attached. *)
let find_first ~op (body : Ir.stmt list) (pat : string) : Cursor.t =
  try Exo_pattern.Pattern.find_first body pat
  with Exo_pattern.Pattern.Pattern_error m -> err "%s: %s" op m

let find_all ~op (body : Ir.stmt list) (pat : string) : Cursor.t list =
  try Exo_pattern.Pattern.find body pat
  with Exo_pattern.Pattern.Pattern_error m -> err "%s: %s" op m

(** Size parameters of a procedure (values ≥ 1 by convention). *)
let size_syms (p : Ir.proc) : Sym.Set.t =
  List.fold_left
    (fun acc (a : Ir.arg) ->
      match a.a_typ with Ir.TSize -> Sym.Set.add a.a_name acc | _ -> acc)
    Sym.Set.empty p.p_args

(** Constant value of an expression after simplification, if any. *)
let const_of (e : Ir.expr) : int option =
  match Simplify.expr e with Ir.Int n -> Some n | _ -> None
