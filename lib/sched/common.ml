(** Shared plumbing for scheduling primitives. *)

open Exo_ir

(** Log source for schedule tracing: enable with
    [Logs.Src.set_level Common.src (Some Debug)] (the CLI's [--verbose]) to
    see every primitive application. *)
let src = Logs.Src.create "exo.sched" ~doc:"scheduling primitive tracing"

module Log = (val Logs.src_log src)

exception Sched_error of string

let err fmt = Fmt.kstr (fun s -> raise (Sched_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Observability: each primitive application feeds a span (when tracing)
   and a provenance entry (when a collector is active) carrying the cursor
   pattern it resolved, the IR node-count delta, and the certificate-check
   time. The pattern travels through a per-domain side channel: the find
   helpers note it, [check_proc_result] consumes it. *)

module Obs = Exo_obs.Obs

let last_pattern : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let note_pattern pat = Domain.DLS.get last_pattern := Some pat

let take_pattern () =
  let r = Domain.DLS.get last_pattern in
  let v = !r in
  r := None;
  v

(** IR size of a procedure: statement + expression node count. The delta
    across a primitive is a cheap proxy for how much code it manufactured
    (unrolling) or erased (simplification). *)
let rec expr_nodes (e : Ir.expr) : int =
  match e with
  | Ir.Int _ | Ir.Float _ | Ir.Var _ | Ir.Stride _ -> 1
  | Ir.Read (_, idx) -> 1 + exprs_nodes idx
  | Ir.Binop (_, a, b) | Ir.Cmp (_, a, b) | Ir.And (a, b) | Ir.Or (a, b) ->
      1 + expr_nodes a + expr_nodes b
  | Ir.Neg a | Ir.Not a -> 1 + expr_nodes a

and exprs_nodes es = List.fold_left (fun acc e -> acc + expr_nodes e) 0 es

let waccess_nodes = function
  | Ir.Pt e -> expr_nodes e
  | Ir.Iv (lo, hi) -> expr_nodes lo + expr_nodes hi

let call_arg_nodes = function
  | Ir.AExpr e -> expr_nodes e
  | Ir.AWin w ->
      1 + List.fold_left (fun acc a -> acc + waccess_nodes a) 0 w.Ir.widx

let rec stmt_nodes (s : Ir.stmt) : int =
  match s with
  | Ir.SAssign (_, idx, e) | Ir.SReduce (_, idx, e) ->
      1 + exprs_nodes idx + expr_nodes e
  | Ir.SFor (_, lo, hi, body) ->
      1 + expr_nodes lo + expr_nodes hi + stmts_nodes body
  | Ir.SAlloc (_, _, dims, _) -> 1 + exprs_nodes dims
  | Ir.SCall (_, args) ->
      1 + List.fold_left (fun acc a -> acc + call_arg_nodes a) 0 args
  | Ir.SIf (c, t, f) -> 1 + expr_nodes c + stmts_nodes t + stmts_nodes f

and stmts_nodes ss = List.fold_left (fun acc s -> acc + stmt_nodes s) 0 ss

let node_count (p : Ir.proc) : int = stmts_nodes p.Ir.p_body
let cert_hist = Obs.histogram "sched.cert_us"
let prim_counter = Obs.counter "sched.prims"

(* run both certificate checks, returning the failure message if any *)
let check_messages ~op ~old p : string option =
  match Exo_check.Wellformed.check_proc p with
  | exception Exo_check.Wellformed.Type_error m ->
      Some
        (Printf.sprintf "internal error: %s produced an ill-typed procedure: %s"
           op m)
  | () -> (
      match Exo_check.Effects.preserves ~old_p:old ~new_p:p with
      | Ok () -> None
      | Error m ->
          Some
            (Printf.sprintf "internal error: %s broke the effect contract of %s: %s"
               op p.Ir.p_name m))

(** Every primitive re-checks its output against its input: the result must
    typecheck and must carry an {!Exo_check.Effects.preserves} certificate
    (no new argument-buffer effects, no provable footprint escape). A
    failure here is a bug in the primitive, not in user code, and says so. *)
let check_proc_result ~(op : string) ~(old : Ir.proc) (p : Ir.proc) : Ir.proc =
  let tracing = Obs.enabled () in
  let collecting = Obs.Provenance.collecting () in
  if not (tracing || collecting) then begin
    (match check_messages ~op ~old p with
    | Some m -> raise (Sched_error m)
    | None -> ());
    Log.debug (fun m -> m "%s ok on %s" op p.Ir.p_name);
    p
  end
  else begin
    let pattern = take_pattern () in
    let nodes_before = node_count old and nodes_after = node_count p in
    let sp =
      if tracing then
        Obs.begin_span
          ~args:
            [
              ("pattern", Option.value ~default:"-" pattern);
              ("nodes", Printf.sprintf "%d->%d" nodes_before nodes_after);
            ]
          ("sched." ^ op)
      else Obs.none
    in
    let t0 = Obs.now_us () in
    let failure = check_messages ~op ~old p in
    let cert_us = Obs.now_us () -. t0 in
    Obs.observe cert_hist (int_of_float cert_us);
    Obs.incr prim_counter;
    if collecting then
      Obs.Provenance.(
        record
          (Prim
             {
               op;
               pattern;
               nodes_before;
               nodes_after;
               cert_us;
               ok = failure = None;
               detail = failure;
             }));
    Obs.end_span sp;
    match failure with
    | Some m -> raise (Sched_error m)
    | None ->
        Log.debug (fun m -> m "%s ok on %s" op p.Ir.p_name);
        p
  end

let recheck = check_proc_result

(** Wrap pattern errors as scheduling errors with the op name attached. *)
let find_first ~op (body : Ir.stmt list) (pat : string) : Cursor.t =
  if Obs.enabled () || Obs.Provenance.collecting () then note_pattern pat;
  try Exo_pattern.Pattern.find_first body pat
  with Exo_pattern.Pattern.Pattern_error m -> err "%s: %s" op m

let find_all ~op (body : Ir.stmt list) (pat : string) : Cursor.t list =
  if Obs.enabled () || Obs.Provenance.collecting () then note_pattern pat;
  try Exo_pattern.Pattern.find body pat
  with Exo_pattern.Pattern.Pattern_error m -> err "%s: %s" op m

(** Size parameters of a procedure (values ≥ 1 by convention). *)
let size_syms (p : Ir.proc) : Sym.Set.t =
  List.fold_left
    (fun acc (a : Ir.arg) ->
      match a.a_typ with Ir.TSize -> Sym.Set.add a.a_name acc | _ -> acc)
    Sym.Set.empty p.p_args

(** Constant value of an expression after simplification, if any. *)
let const_of (e : Ir.expr) : int option =
  match Simplify.expr e with Ir.Int n -> Some n | _ -> None
