(** The scheduling API — one function per Exo primitive used in the paper.

    A schedule is an ordinary OCaml pipeline over procedures:
    {[
      let p = Sched.rename ukernel_ref "uk_8x12" in
      let p = Sched.partial_eval p [ ("MR", 8); ("NR", 12) ] in
      let p = Sched.divide_loop p "i" 4 ("it", "itt") ~tail:Sched.Perfect in
      ...
      let p = Sched.replace p "for itt in _: _" Exo_isa.Neon.vld_4xf32 in
    ]}

    Every primitive is a *checked* source-to-source rewrite: it validates its
    own legality conditions (divisibility, dependences, window containment,
    instruction unification, precondition discharge) and re-typechecks its
    output. Illegal requests raise {!Sched_error} with a source-level
    message; a primitive never silently changes program semantics. *)

exception Sched_error of string

type tail = Perfect | Cut

type gap = After of string | Before of string
(** Where [autofission] splits: the point after/before the statement
    matching the pattern. *)

(** {1 Signature and attributes} *)

(** [rename p name] — new procedure name (Fig. 6). *)
val rename : Exo_ir.Ir.proc -> string -> Exo_ir.Ir.proc

(** [partial_eval p [("MR", 8); ("NR", 12)]] — specialize size parameters to
    constants, removing them from the signature (Fig. 6). *)
val partial_eval : Exo_ir.Ir.proc -> (string * int) list -> Exo_ir.Ir.proc

(** [set_memory p buf mem] — move an allocation to a different memory
    (Fig. 8 step 6). Register memories require the innermost extent to equal
    the lane count for the buffer's dtype. *)
val set_memory : Exo_ir.Ir.proc -> string -> Exo_ir.Mem.t -> Exo_ir.Ir.proc

(** [set_precision p buf dt] — change one buffer's element type
    (Section III-D). Fails if the result mixes types. *)
val set_precision : Exo_ir.Ir.proc -> string -> Exo_ir.Dtype.t -> Exo_ir.Ir.proc

(** Convert several buffers at once, re-typechecking only at the end. *)
val set_precision_many :
  Exo_ir.Ir.proc -> string list -> Exo_ir.Dtype.t -> Exo_ir.Ir.proc

(** {1 Loop structure} *)

(** [divide_loop p pat quot (outer, inner) ~tail] — split the loop matching
    [pat] by [quot] (Fig. 7). [Perfect] requires provable divisibility;
    [Cut] emits a remainder loop. *)
val divide_loop :
  Exo_ir.Ir.proc -> string -> int -> string * string -> tail:tail -> Exo_ir.Ir.proc

(** [reorder_loops p "v1 v2"] — swap two perfectly nested loops (Fig. 10);
    legality discharged by the conservative dependence analysis. *)
val reorder_loops : Exo_ir.Ir.proc -> string -> Exo_ir.Ir.proc

(** [unroll_loop p pat] — fully unroll a constant-extent loop (Fig. 11). *)
val unroll_loop : Exo_ir.Ir.proc -> string -> Exo_ir.Ir.proc

(** [remove_loop p pat] — delete a loop whose body does not use the loop
    variable, is idempotent, and provably runs at least once. *)
val remove_loop : Exo_ir.Ir.proc -> string -> Exo_ir.Ir.proc

(** [autofission p ~gap ~n_lifts] — fission the enclosing loops at [gap],
    [n_lifts] levels up (Figs. 8–9). *)
val autofission : Exo_ir.Ir.proc -> gap:gap -> n_lifts:int -> Exo_ir.Ir.proc

(** [fuse_loops p pat] — merge the loop matching [pat] with its immediately
    following equal-bounds sibling (the inverse of fission, same legality). *)
val fuse_loops : Exo_ir.Ir.proc -> string -> Exo_ir.Ir.proc

(** {1 Data staging} *)

(** [stage_mem p pat window name] — stage a buffer region through a fresh
    (future register) buffer around the block matching [pat], with copy-in
    and copy-out nests (Fig. 8). [~load:false] omits the copy-in; only legal
    when the block provably overwrites the whole window. *)
val stage_mem :
  ?load:bool -> Exo_ir.Ir.proc -> string -> string -> string -> Exo_ir.Ir.proc

(** Like {!stage_mem} but staging [len] consecutive statements starting at
    the match (e.g. a zero-init nest plus the k-loop). *)
val stage_mem_stmts :
  ?load:bool -> ?len:int -> Exo_ir.Ir.proc -> string -> string -> string ->
  Exo_ir.Ir.proc

(** [bind_expr p "Ac[_]" "A_reg"] — bind the first read of a buffer to a
    fresh scalar (Fig. 9 step 1). *)
val bind_expr : Exo_ir.Ir.proc -> string -> string -> Exo_ir.Ir.proc

(** [bind_expr_bcast p "Bc[_]" "B_bcast"] — broadcast-stage a loop-invariant
    read across the innermost enclosing loop (the set1/dup staging that ISAs
    without lane-indexed FMA need, Sections III-B/III-C). *)
val bind_expr_bcast : Exo_ir.Ir.proc -> string -> string -> Exo_ir.Ir.proc

(** [expand_dim p buf extent idx] — prepend a dimension of size [extent] to
    an allocation, indexing every access with [idx] (checked in range);
    Fig. 8 step 2 / Fig. 9 step 2. *)
val expand_dim : Exo_ir.Ir.proc -> string -> string -> string -> Exo_ir.Ir.proc

(** [divide_dim p buf d quot] — split dimension [d] of an allocation into
    [n/quot × quot], decomposing every subscript (shapes C_reg into the
    paper's [f32[12, 2, 4]]). *)
val divide_dim : Exo_ir.Ir.proc -> string -> int -> int -> Exo_ir.Ir.proc

(** [lift_alloc p buf ~n_lifts] — hoist an allocation out of enclosing
    loops (Fig. 8 step 3). *)
val lift_alloc : Exo_ir.Ir.proc -> string -> n_lifts:int -> Exo_ir.Ir.proc

(** {1 Instruction mapping} *)

(** [replace p pat instr] — unify a loop nest matching [pat] with [instr]'s
    semantic body and swap it for a call (Figs. 8–10). This is the paper's
    safety net: the replacement is validated against the instruction's
    definitional semantics, its window/stride/lane preconditions discharged
    by the affine analysis. When several statements match, the first that
    unifies is replaced. *)
val replace : Exo_ir.Ir.proc -> string -> Exo_ir.Ir.proc -> Exo_ir.Ir.proc

(** Apply {!replace} to every match, first to last. *)
val replace_all : Exo_ir.Ir.proc -> string -> Exo_ir.Ir.proc -> Exo_ir.Ir.proc

(** [inline_call p pat] — the inverse of {!replace}: expand the instruction
    call matching [pat] back into its semantic body, with window accesses
    translated through the bound windows. *)
val inline_call : Exo_ir.Ir.proc -> string -> Exo_ir.Ir.proc

(** {1 Cleanup} *)

(** Exo's [simplify]: constant folding, affine normalization,
    single-iteration loop inlining. *)
val simplify : Exo_ir.Ir.proc -> Exo_ir.Ir.proc

(** {1 Certification} *)

(** [check_proc_result ~op ~old p] — the per-step static certificate every
    primitive runs on its own output: [p] must typecheck and must satisfy
    {!Exo_check.Effects.preserves} against [old] (no new argument-buffer
    effects, no provable footprint escape). Raises {!Sched_error} naming
    [op] otherwise; returns [p] unchanged on success. Exposed so external
    rewrites can demand the same certificate. *)
val check_proc_result :
  op:string -> old:Exo_ir.Ir.proc -> Exo_ir.Ir.proc -> Exo_ir.Ir.proc
