(** [replace]: swap a loop nest for a hardware instruction call.

    This is the step the paper singles out as Exo's safety net: "these
    definitions will ensure that the user methods do not change the behavior
    of the original code by checking the intrinsic replacement with the
    expected pattern". Concretely, the candidate loop nest must *unify* with
    the instruction's semantic body:

    - loops match loops with equal constant extents (instr loop var ↦ target
      loop var);
    - each access to an instruction tensor parameter determines a window of
      a target buffer: the dimension carrying the mapped loop variable (unit
      coefficient) becomes the vector interval, every other dimension a
      point — and repeated accesses must agree;
    - index parameters (the fmla lane selector) bind to the residual lane
      expression of the target subscript;
    - finally the instruction's preconditions (unit strides, lane ranges)
      are discharged with the affine bounds analysis under the enclosing
      loop ranges.

    A nest that does not match fails loudly: [replace] never emits an
    instruction whose semantics differ from the code it replaces. *)

open Exo_ir
open Ir
open Common

(* One dimension of a window being inferred. *)
type wdim =
  | WPt of expr
  | WVec of { base : Affine.t; extent : int }  (* [base, base+extent) *)

type binding =
  | BWin of { buf : Sym.t; dims : wdim list }
  | BExpr of expr

type st = {
  proc : proc;
  instr : proc;
  mutable loop_map : (Sym.t * int) Sym.Map.t;  (** instr loop var ↦ (target var, extent) *)
  mutable params : binding Sym.Map.t;  (** instr param ↦ binding *)
  param_info : (Sym.t * typ) list;
}

let fail fmt = Fmt.kstr (fun s -> err "replace: %s" s) fmt

let is_param st v = List.exists (fun (s, _) -> Sym.equal s v) st.param_info

let param_typ st v =
  match List.find_opt (fun (s, _) -> Sym.equal s v) st.param_info with
  | Some (_, t) -> t
  | None -> fail "internal: %a is not a parameter" Sym.pp_debug v

let wdim_equal a b =
  match (a, b) with
  | WPt e1, WPt e2 -> Affine.expr_equal e1 e2 = Some true
  | WVec v1, WVec v2 -> Affine.equal v1.base v2.base && v1.extent = v2.extent
  | _ -> false

let binding_equal a b =
  match (a, b) with
  | BExpr e1, BExpr e2 -> Affine.expr_equal e1 e2 = Some true
  | BWin w1, BWin w2 ->
      Sym.equal w1.buf w2.buf
      && List.length w1.dims = List.length w2.dims
      && List.for_all2 wdim_equal w1.dims w2.dims
  | _ -> false

let bind st (param : Sym.t) (b : binding) =
  match Sym.Map.find_opt param st.params with
  | None -> st.params <- Sym.Map.add param b st.params
  | Some prev ->
      if not (binding_equal prev b) then
        fail "inconsistent uses of instruction parameter %a" Sym.pp param

(** Decompose a target subscript under an instr subscript of shape [Var x].

    - [x] a mapped loop variable [tv]: exactly one target dimension carries
      [tv] (with coefficient 1); it becomes the vector dimension.
    - [x] an index parameter: the *last* target dimension is the vector
      dimension (unit-stride requirement); its subscript [e] splits as
      [base + lane] where [base] collects the terms divisible by the lane
      count, and the index parameter binds to [lane]. *)
let bind_access st (param : Sym.t) (pidx : expr list) (tbuf : Sym.t)
    (tidx : expr list) : unit =
  let ptyp = param_typ st param in
  let prank, pdims, _pdt =
    match ptyp with
    | TTensor (dt, dims) -> (List.length dims, dims, dt)
    | TScalar dt -> (0, [], dt)
    | _ -> fail "parameter %a is not a tensor" Sym.pp param
  in
  if List.length pidx <> max prank 1 && prank <> 0 then
    fail "instruction accesses %a with the wrong rank" Sym.pp param;
  let tidx_aff =
    List.map
      (fun e ->
        match Affine.of_expr e with
        | Some a -> a
        | None -> fail "non-affine subscript %s" (Pp.expr_to_string e))
      tidx
  in
  let lanes =
    match pdims with
    | [ Int n ] -> n
    | [] -> 1
    | _ -> fail "instruction parameter %a must be rank ≤ 1" Sym.pp param
  in
  let dims =
    match pidx with
    | [ Var x ] when Sym.Map.mem x st.loop_map ->
        (* vector dimension carries the mapped loop variable *)
        let tv, extent = Sym.Map.find x st.loop_map in
        if extent <> lanes then
          fail "loop extent %d does not match the %d lanes of %a" extent lanes Sym.pp
            param;
        let carrying =
          List.mapi (fun d a -> (d, Exo_check.Deps.coeff a tv)) tidx_aff
          |> List.filter (fun (_, c) -> c <> 0)
        in
        (match carrying with
        | [ (d, 1) ] ->
            List.mapi
              (fun d' a ->
                if d' = d then
                  WVec { base = Exo_check.Deps.drop_var a tv; extent = lanes }
                else WPt (Affine.to_expr a))
              tidx_aff
        | [ (_, c) ] ->
            fail "access to %a has stride %d on the vector dimension (needs 1)" Sym.pp
              tbuf c
        | [] ->
            fail "vectorized loop variable does not index %a in the candidate" Sym.pp
              tbuf
        | _ -> fail "vectorized loop variable indexes several dimensions of %a" Sym.pp tbuf)
    | [ Var x ] when is_param st x ->
        (* index parameter: last dimension is the lane-selected vector dim *)
        let n = List.length tidx_aff in
        if n = 0 then fail "cannot take a lane of a scalar access to %a" Sym.pp tbuf;
        let last = List.nth tidx_aff (n - 1) in
        let lane_part =
          {
            Affine.const = last.Affine.const mod lanes;
            terms = List.filter (fun (_, c) -> abs c < lanes) last.Affine.terms;
          }
        in
        let base = Affine.sub last lane_part in
        bind st x (BExpr (Affine.to_expr lane_part));
        List.mapi
          (fun d a ->
            if d = n - 1 then WVec { base; extent = lanes }
            else WPt (Affine.to_expr a))
          tidx_aff
    | [ Int 0 ] when prank > 0 && lanes = 1 ->
        (* scalar [1]-tensor parameter: point everything, window the last *)
        let n = List.length tidx_aff in
        if n = 0 then fail "scalar parameter %a bound to a rank-0 access" Sym.pp param;
        List.mapi
          (fun d a ->
            if d = n - 1 then WVec { base = a; extent = 1 } else WPt (Affine.to_expr a))
          tidx_aff
    | [] when prank = 0 ->
        (* true scalar parameter *)
        List.map (fun a -> WPt (Affine.to_expr a)) tidx_aff
    | _ ->
        fail "unsupported instruction access shape for parameter %a" Sym.pp param
  in
  bind st param (BWin { buf = tbuf; dims })

let rec unify_expr st (ie : expr) (te : expr) : unit =
  match (ie, te) with
  | Read (p, pidx), Read (tb, tidx) when is_param st p -> bind_access st p pidx tb tidx
  | Var x, _ when Sym.Map.mem x st.loop_map ->
      let tv, _ = Sym.Map.find x st.loop_map in
      if Affine.expr_equal (Var tv) te <> Some true then
        fail "loop variable use mismatch (%s vs %s)" (Sym.name x) (Pp.expr_to_string te)
  | Var x, _ when is_param st x -> bind st x (BExpr te)
  | Binop (op1, a1, b1), Binop (op2, a2, b2) when op1 = op2 ->
      unify_expr st a1 a2;
      unify_expr st b1 b2
  | Neg a, Neg b -> unify_expr st a b
  | Float f1, Float f2 when Float.equal f1 f2 -> ()
  | Int n1, Int n2 when n1 = n2 -> ()
  | _ ->
      fail "expression mismatch: instruction has %s, candidate has %s"
        (Pp.expr_to_string ie) (Pp.expr_to_string te)

let rec unify_stmts st (ibody : stmt list) (tbody : stmt list) : unit =
  if List.length ibody <> List.length tbody then
    fail "block shape mismatch (%d vs %d statements)" (List.length ibody)
      (List.length tbody);
  List.iter2 (unify_stmt st) ibody tbody

and unify_stmt st (is_ : stmt) (ts : stmt) : unit =
  match (is_, ts) with
  | SFor (iv, ilo, ihi, ibody), SFor (tv, tlo, thi, tbody) ->
      let extent =
        match (const_of ilo, const_of ihi) with
        | Some 0, Some n -> n
        | _ -> fail "instruction loops must run from 0 to a constant"
      in
      (match (const_of tlo, const_of thi) with
      | Some 0, Some n when n = extent -> ()
      | _ ->
          fail "candidate loop %a does not run over seq(0, %d)" Sym.pp tv extent);
      st.loop_map <- Sym.Map.add iv (tv, extent) st.loop_map;
      unify_stmts st ibody tbody
  | SAssign (ib, iidx, ie), SAssign (tb, tidx, te)
  | SReduce (ib, iidx, ie), SReduce (tb, tidx, te) ->
      if not (is_param st ib) then fail "instruction writes a non-parameter";
      bind_access st ib iidx tb tidx;
      unify_expr st ie te
  | _ -> fail "statement shape mismatch"

(* ------------------------------------------------------------------ *)
(* Precondition discharge                                              *)

(** Stride of dimension [d] of a buffer with extents [dims]: product of the
    extents of later dimensions, when constant. *)
let stride_of (dims : expr list) (d : int) : int option =
  let later = List.filteri (fun i _ -> i > d) dims in
  List.fold_left
    (fun acc e ->
      match (acc, const_of e) with Some a, Some n -> Some (a * n) | _ -> None)
    (Some 1) later

let discharge_preds st ~(ranges : (Sym.t * expr * expr) list) : unit =
  let sizes = size_syms st.proc in
  let benv =
    let rmap =
      List.fold_left
        (fun acc (v, lo, hi) ->
          match (Affine.of_expr lo, Affine.of_expr (Binop (Sub, hi, Int 1))) with
          | Some l, Some h ->
              Sym.Map.add v Exo_check.Bounds.{ lo = Some l; hi = Some h } acc
          | _ -> acc)
        Sym.Map.empty ranges
    in
    Exo_check.Bounds.{ sizes; ranges = rmap; dims = Sym.Map.empty }
  in
  let subst_param (e : expr) : expr =
    map_expr
      (function
        | Var v as e -> (
            match Sym.Map.find_opt v st.params with
            | Some (BExpr e') -> e'
            | _ -> e)
        | e -> e)
      e
  in
  let prove_nonneg (e : expr) ~(what : string) =
    match Affine.of_expr (subst_param e) with
    | Some a -> (
        let r = Exo_check.Bounds.range_of_affine benv a in
        match r.Exo_check.Bounds.lo with
        | Some l when Exo_check.Bounds.nonneg benv l = `Yes -> ()
        | _ -> fail "cannot discharge precondition %s" what)
    | None -> fail "non-affine precondition %s" what
  in
  List.iter
    (fun (pred : expr) ->
      match pred with
      | Cmp (Eq, Stride (b, _d), Int 1) | Cmp (Eq, Int 1, Stride (b, _d)) -> (
          (* stride(param, d) == 1: the bound window's vector dimension must
             be the innermost dimension of the target buffer. *)
          match Sym.Map.find_opt b st.params with
          | Some (BWin w) -> (
              let vec_dims =
                List.mapi (fun i x -> (i, x)) w.dims
                |> List.filter (fun (_, x) -> match x with WVec _ -> true | _ -> false)
              in
              match vec_dims with
              | [ (i, _) ] -> (
                  (* The vector dimension must have provably unit stride in
                     the underlying dense buffer: the product of the extents
                     of the later dimensions must be 1 (e.g. the last
                     dimension, or any dimension when all later extents are
                     1 — the mr = 1 edge-case kernels window dimension 0 of
                     C: f32[NR, 1]). *)
                  match find_buffer_typ st.proc w.buf with
                  | Some (_, dims, _) -> (
                      match stride_of dims i with
                      | Some 1 -> ()
                      | Some s ->
                          fail "window on %a has stride %d, instruction needs 1" Sym.pp
                            w.buf s
                      | None ->
                          fail "cannot prove unit stride for window on %a" Sym.pp w.buf)
                  | None -> fail "unknown buffer %a" Sym.pp w.buf)
              | [] when List.for_all (function WPt _ -> true | _ -> false) w.dims ->
                  (* scalar window: stride trivially unit *)
                  ()
              | _ -> fail "window on %a must have exactly one vector dimension" Sym.pp
                       w.buf)
          | _ -> fail "stride precondition on unbound parameter %a" Sym.pp b)
      | Cmp (Ge, e1, e2) -> prove_nonneg (Binop (Sub, e1, e2)) ~what:(Pp.expr_to_string pred)
      | Cmp (Le, e1, e2) -> prove_nonneg (Binop (Sub, e2, e1)) ~what:(Pp.expr_to_string pred)
      | Cmp (Lt, e1, e2) ->
          prove_nonneg (Binop (Sub, Binop (Sub, e2, e1), Int 1))
            ~what:(Pp.expr_to_string pred)
      | Cmp (Gt, e1, e2) ->
          prove_nonneg (Binop (Sub, Binop (Sub, e1, e2), Int 1))
            ~what:(Pp.expr_to_string pred)
      | _ -> fail "unsupported instruction precondition %s" (Pp.expr_to_string pred))
    st.instr.p_preds

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let build_args st : call_arg list =
  List.map
    (fun (a : arg) ->
      match Sym.Map.find_opt a.a_name st.params with
      | Some (BExpr e) -> AExpr (Simplify.expr e)
      | Some (BWin w) ->
          AWin
            {
              wbuf = w.buf;
              widx =
                List.map
                  (function
                    | WPt e -> Pt (Simplify.expr e)
                    | WVec { base; extent } ->
                        let b = Affine.to_expr base in
                        Iv
                          ( Simplify.expr b,
                            Simplify.expr (Binop (Add, b, Int extent)) ))
                  w.dims;
            }
      | None -> fail "instruction parameter %a was never bound" Sym.pp a.a_name)
    st.instr.p_args

(** Attempt unification at one cursor; raises on failure. *)
let replace_at (p : proc) (c : Cursor.t) (instr : proc) : proc =
  let target = Cursor.get p.p_body c in
  let st =
    {
      proc = p;
      instr;
      loop_map = Sym.Map.empty;
      params = Sym.Map.empty;
      param_info = List.map (fun (a : arg) -> (a.a_name, a.a_typ)) instr.p_args;
    }
  in
  unify_stmts st instr.p_body [ target ];
  discharge_preds st ~ranges:(Scope.loop_ranges p c);
  let call = SCall (instr, build_args st) in
  recheck ~op:"replace" ~old:p { p with p_body = Cursor.splice p.p_body c [ call ] }

(** [replace p pat instr] — unify a loop nest matching [pat] with [instr]'s
    semantic body and swap it for a call. As in Exo, when several statements
    match the pattern, the first one that unifies is replaced (the paper's
    Fig. 8 replaces the C load and store with the same
    ['for itt in _: _'] pattern). *)
let replace (p : proc) (pat : string) (instr : proc) : proc =
  if not (is_instr instr) then
    err "replace: %s is not an instruction (no @instr annotation)" instr.p_name;
  let candidates = find_all ~op:"replace" p.p_body pat in
  if candidates = [] then err "replace: no statement matches %S" pat;
  let rec try_each failures = function
    | [] ->
        err "replace: no match of %S unifies with %s:@,%a" pat instr.p_name
          Fmt.(list ~sep:(any "@,") string)
          (List.rev failures)
    | c :: rest -> (
        match replace_at p c instr with
        | p' -> p'
        | exception Common.Sched_error m -> try_each (m :: failures) rest)
  in
  try_each [] candidates

(** Apply [replace] to every match of [pat], first to last. *)
let replace_all (p : proc) (pat : string) (instr : proc) : proc =
  let rec go p =
    match find_all ~op:"replace_all" p.p_body pat with
    | [] -> p
    | _ -> go (replace p pat instr)
  in
  let n = List.length (find_all ~op:"replace_all" p.p_body pat) in
  if n = 0 then err "replace_all: no match for %S" pat;
  go p
