(** The scheduling API, one function per Exo primitive used in the paper.

    A schedule is an ordinary OCaml pipeline over procedures:
    {[
      let p = Sched.rename ukernel_ref "uk_8x12" in
      let p = Sched.partial_eval p [ ("MR", 8); ("NR", 12) ] in
      let p = Sched.divide_loop p "i" 4 ("it", "itt") ~tail:Sched.Perfect in
      ...
      let p = Sched.replace p "for itt in _: _" Exo_isa.Neon.vld_4xf32 in
      ...
    ]}

    Every primitive validates its own legality conditions and re-typechecks
    its output; failures raise {!Sched_error} with a source-level message. *)

exception Sched_error = Common.Sched_error

type tail = Loops.tail = Perfect | Cut
type gap = Loops.gap = After of string | Before of string

let rename = Attrs.rename
let partial_eval = Attrs.partial_eval
let set_memory = Attrs.set_memory
let set_precision = Attrs.set_precision
let set_precision_many = Attrs.set_precision_many
let divide_loop = Loops.divide_loop
let reorder_loops = Loops.reorder_loops
let unroll_loop = Loops.unroll_loop
let remove_loop = Loops.remove_loop
let autofission = Loops.autofission
let fuse_loops = Loops.fuse_loops
let stage_mem = Staging.stage_mem
let stage_mem_stmts = Staging.stage_mem_stmts
let bind_expr = Staging.bind_expr
let bind_expr_bcast = Staging.bind_expr_bcast
let expand_dim = Staging.expand_dim
let divide_dim = Staging.divide_dim
let lift_alloc = Staging.lift_alloc
let replace = Replace.replace
let replace_all = Replace.replace_all
let inline_call = Inline.inline_call
let check_proc_result = Common.check_proc_result

(** Exo's [simplify]: constant folding and affine normalization. *)
let simplify (p : Exo_ir.Ir.proc) = Exo_ir.Simplify.proc p
