(** [inline_call] — the inverse of [replace]: expand an instruction call
    back into its semantic body.

    Useful for de-vectorizing a scheduled kernel (e.g. to port a schedule to
    a target lacking an instruction), and — because [replace] promises the
    call means exactly what the loop nest meant — [inline_call ∘ replace]
    must be semantics-preserving, which the property tests check through the
    interpreter. *)

open Exo_ir
open Ir
open Common

(** Translate an access to a tensor parameter through the bound window:
    point dims pass through, interval dims consume one index (offset by the
    window base). *)
let translate_idx (w : window) (idx : expr list) : expr list =
  let rec go widx idx =
    match (widx, idx) with
    | [], [] -> []
    | Pt e :: rest, idx -> Simplify.expr e :: go rest idx
    | Iv (lo, _) :: rest, i :: idx -> Simplify.expr (Binop (Add, lo, i)) :: go rest idx
    | Iv _ :: _, [] -> err "inline_call: rank mismatch translating a window access"
    | [], _ -> err "inline_call: rank mismatch translating a window access"
  in
  go w.widx idx

let inline_call (p : proc) (pat : string) : proc =
  let op = "inline_call" in
  let c = find_first ~op p.p_body pat in
  match Cursor.get p.p_body c with
  | SCall (callee, args) ->
      (* parameter bindings *)
      let exprs = ref Sym.Map.empty and wins = ref Sym.Map.empty in
      List.iter2
        (fun (param : arg) a ->
          match a with
          | AExpr e -> exprs := Sym.Map.add param.a_name e !exprs
          | AWin w -> wins := Sym.Map.add param.a_name w !wins)
        callee.p_args args;
      let rec re (e : expr) : expr =
        match e with
        | Var v -> (
            match Sym.Map.find_opt v !exprs with Some e' -> e' | None -> e)
        | Read (b, idx) -> (
            let idx = List.map re idx in
            match Sym.Map.find_opt b !wins with
            | Some w -> Read (w.wbuf, translate_idx w idx)
            | None -> Read (b, idx))
        | Binop (o, a, b) -> Binop (o, re a, re b)
        | Neg a -> Neg (re a)
        | Cmp (o, a, b) -> Cmp (o, re a, re b)
        | And (a, b) -> And (re a, re b)
        | Or (a, b) -> Or (re a, re b)
        | Not a -> Not (re a)
        | Int _ | Float _ | Stride _ -> e
      in
      let rec rs (s : stmt) : stmt =
        match s with
        | SAssign (b, idx, e) -> (
            let idx = List.map re idx and e = re e in
            match Sym.Map.find_opt b !wins with
            | Some w -> SAssign (w.wbuf, translate_idx w idx, e)
            | None -> SAssign (b, idx, e))
        | SReduce (b, idx, e) -> (
            let idx = List.map re idx and e = re e in
            match Sym.Map.find_opt b !wins with
            | Some w -> SReduce (w.wbuf, translate_idx w idx, e)
            | None -> SReduce (b, idx, e))
        | SFor (v, lo, hi, body) -> SFor (v, re lo, re hi, List.map rs body)
        | SAlloc _ -> s
        | SCall (q, qargs) ->
            SCall
              ( q,
                List.map
                  (function
                    | AExpr e -> AExpr (re e)
                    | AWin w -> (
                        match Sym.Map.find_opt w.wbuf !wins with
                        | Some outer ->
                            (* nested window: compose through the binding *)
                            err
                              "inline_call: nested instruction windows on %s are \
                               not supported"
                              (Sym.name outer.wbuf)
                        | None -> AWin (map_window re w)))
                  qargs )
        | SIf (cnd, t, e) -> SIf (re cnd, List.map rs t, List.map rs e)
      in
      let body = List.map rs callee.p_body |> Subst.freshen_stmts |> Simplify.stmts in
      recheck ~op ~old:p { p with p_body = Cursor.splice p.p_body c body }
  | _ -> err "%s: %S does not denote an instruction call" op pat
