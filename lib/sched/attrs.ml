(** Signature- and attribute-level primitives: [rename], [partial_eval],
    [set_memory], [set_precision]. *)

open Exo_ir
open Ir
open Common

let rename (p : proc) (name : string) : proc = { p with p_name = name }

(** [partial_eval p [("MR", 8); ("NR", 12)]] — specialize size parameters to
    constants, removing them from the signature (the paper's
    [p.partial_eval(MR, NR)], Fig. 6). *)
let partial_eval (p : proc) (bindings : (string * int) list) : proc =
  let subst, keep =
    List.fold_left
      (fun (subst, keep) (a : arg) ->
        match List.assoc_opt (Sym.name a.a_name) bindings with
        | Some n when a.a_typ = TSize ->
            if n < 1 then err "partial_eval: size %s must be ≥ 1 (got %d)" (Sym.name a.a_name) n;
            (Sym.Map.add a.a_name (Int n) subst, keep)
        | Some _ -> err "partial_eval: %s is not a size parameter" (Sym.name a.a_name)
        | None -> (subst, a :: keep))
      (Sym.Map.empty, []) p.p_args
  in
  let missing =
    List.filter
      (fun (n, _) ->
        not
          (List.exists
             (fun (a : arg) ->
               Sym.name a.a_name = n && Sym.Map.mem a.a_name subst)
             p.p_args))
      bindings
  in
  (match missing with
  | (n, _) :: _ -> err "partial_eval: no size parameter named %s" n
  | [] -> ());
  let app e = Simplify.expr (Subst.apply_expr subst e) in
  let args =
    List.rev_map
      (fun (a : arg) ->
        match a.a_typ with
        | TTensor (dt, dims) -> { a with a_typ = TTensor (dt, List.map app dims) }
        | _ -> a)
      keep
  in
  recheck ~op:"partial_eval" ~old:p
    (Simplify.proc
       {
         p with
         p_args = args;
         p_preds = List.map app p.p_preds;
         p_body = Subst.apply_stmts subst p.p_body;
       })

(** [set_memory p buf mem] — move an allocation to a different memory
    (Fig. 8 step 6: [set_memory(p, 'C_reg', Neon)]). Register memories
    require the innermost extent to equal the lane count. *)
let set_memory (p : proc) (bufname : string) (mem : Mem.t) : proc =
  let op = "set_memory" in
  let c = find_first ~op p.p_body (bufname ^ " : _") in
  match Cursor.get p.p_body c with
  | SAlloc (b, dt, dims, _) ->
      (match Exo_isa.Memories.lookup mem with
      | Some info -> (
          let lanes = Exo_isa.Memories.lanes_of info dt in
          match List.rev dims with
          | Int n :: _ when n = lanes -> ()
          | Int n :: _ ->
              err
                "%s: innermost extent of %s is %d but %a holds %d lanes of %a"
                op bufname n Mem.pp mem lanes Dtype.pp dt
          | _ ->
              err "%s: innermost extent of %s must be the constant lane count" op
                bufname)
      | None -> ());
      recheck ~op ~old:p { p with p_body = Cursor.splice p.p_body c [ SAlloc (b, dt, dims, mem) ] }
  | _ -> err "%s: %s is not an allocation" op bufname

(** [set_precision_many p bufs dt] — change the element type of several
    allocations/arguments at once, re-typechecking only after all are
    converted (intermediate states of a whole-kernel precision change are
    necessarily mixed-type). *)
let set_precision_many (p : proc) (bufnames : string list) (dt : Dtype.t) : proc =
  let op = "set_precision" in
  let one p bufname =
    let in_args = List.exists (fun (a : arg) -> Sym.name a.a_name = bufname) p.p_args in
    if in_args then
      let args =
        List.map
          (fun (a : arg) ->
            if Sym.name a.a_name = bufname then
              match a.a_typ with
              | TTensor (_, dims) -> { a with a_typ = TTensor (dt, dims) }
              | TScalar _ -> { a with a_typ = TScalar dt }
              | _ -> err "%s: %s is not a data argument" op bufname
            else a)
          p.p_args
      in
      { p with p_args = args }
    else
      let c = find_first ~op p.p_body (bufname ^ " : _") in
      match Cursor.get p.p_body c with
      | SAlloc (b, _, dims, mem) ->
          { p with p_body = Cursor.splice p.p_body c [ SAlloc (b, dt, dims, mem) ] }
      | _ -> err "%s: %s is not an allocation" op bufname
  in
  recheck ~op ~old:p (List.fold_left one p bufnames)

(** [set_precision p buf dt] — single-buffer version (Section III-D:
    [set_precision(p, A_reg, "f16")]). Fails if the result mixes types; use
    {!set_precision_many} to convert a kernel wholesale. *)
let set_precision (p : proc) (bufname : string) (dt : Dtype.t) : proc =
  set_precision_many p [ bufname ] dt
