(** Loop-structure primitives: [divide_loop], [reorder_loops], [unroll_loop],
    [remove_loop], and [autofission]. Each is a checked source-to-source
    rewrite; illegal requests raise {!Common.Sched_error}. *)

open Exo_ir
open Ir
open Common

(* ------------------------------------------------------------------ *)
(* divide_loop                                                         *)

type tail = Perfect | Cut

(** [divide_loop p pat quot (outer, inner) ~tail] splits the loop matching
    [pat] (running from 0) by [quot]:

    - [Perfect] (the paper's [perfect=True]): requires a provably divisible
      constant extent; produces
      [for outer in seq(0, n/quot): for inner in seq(0, quot)].
    - [Cut]: main divided nest plus a remainder loop over
      [seq(quot*(n/quot), n)] — used by edge-case experiments. *)
let divide_loop (p : proc) (pat : string) (quot : int) ((outer, inner) : string * string)
    ~(tail : tail) : proc =
  if quot <= 0 then err "divide_loop: quotient must be positive (got %d)" quot;
  let c = find_first ~op:"divide_loop" p.p_body pat in
  match Cursor.get p.p_body c with
  | SFor (v, lo, hi, body) ->
      (match const_of lo with
      | Some 0 -> ()
      | _ -> err "divide_loop: loop %a must start at 0" Sym.pp v);
      let vo = Sym.fresh outer and vi = Sym.fresh inner in
      let subst_body to_expr =
        Subst.apply_stmts (Subst.single v to_expr) body
      in
      let divided n_outer =
        SFor
          ( vo,
            Int 0,
            n_outer,
            [
              SFor
                ( vi,
                  Int 0,
                  Int quot,
                  subst_body (Binop (Add, Binop (Mul, Int quot, Var vo), Var vi)) );
            ] )
      in
      let repl =
        match (tail, const_of hi) with
        | Perfect, Some n when n mod quot = 0 -> [ divided (Int (n / quot)) ]
        | Perfect, Some n ->
            err "divide_loop: %d does not divide the extent %d of loop %a (perfect split)"
              quot n Sym.pp v
        | Perfect, None ->
            err "divide_loop: cannot prove %d divides the extent of loop %a" quot Sym.pp v
        | Cut, Some n ->
            let main = n / quot * quot in
            let vr = Sym.fresh (Sym.name v) in
            let remainder =
              SFor (vr, Int main, Int n, Subst.freshen_stmts (subst_body (Var vr)))
            in
            if main = 0 then [ remainder ]
            else if main = n then [ divided (Int (n / quot)) ]
            else [ divided (Int (n / quot)); remainder ]
        | Cut, None ->
            (* Symbolic extent: main nest plus remainder with symbolic cut. *)
            let cut = Binop (Mul, Binop (Div, hi, Int quot), Int quot) in
            let vr = Sym.fresh (Sym.name v) in
            [
              divided (Binop (Div, hi, Int quot));
              SFor (vr, cut, hi, Subst.freshen_stmts (subst_body (Var vr)));
            ]
      in
      recheck ~op:"divide_loop" ~old:p { p with p_body = Cursor.splice p.p_body c repl }
  | _ -> err "divide_loop: pattern %S does not denote a loop" pat

(* ------------------------------------------------------------------ *)
(* reorder_loops                                                       *)

(** [reorder_loops p "v1 v2"] swaps the perfectly nested loops [v1] (outer,
    directly containing) and [v2] (inner). Legality is discharged by the
    conservative dependence analysis in {!Exo_check.Deps}. *)
let reorder_loops (p : proc) (pat : string) : proc =
  let n1, n2 =
    match String.split_on_char ' ' (String.trim pat) |> List.filter (( <> ) "") with
    | [ a; b ] -> (a, b)
    | _ -> err "reorder_loops: expected a pattern like \"jtt it\", got %S" pat
  in
  let c = find_first ~op:"reorder_loops" p.p_body n1 in
  match Cursor.get p.p_body c with
  | SFor (v1, lo1, hi1, [ SFor (v2, lo2, hi2, body) ]) when Sym.name v2 = n2 ->
      let bound_vars = Ir.expr_vars (Ir.expr_vars Sym.Set.empty lo2) hi2 in
      if Sym.Set.mem v1 bound_vars then
        err "reorder_loops: bounds of %a depend on %a" Sym.pp v2 Sym.pp v1;
      (match Exo_check.Deps.reorder_legal ~outer:v1 ~inner:v2 ~body with
      | Ok () -> ()
      | Error m -> err "reorder_loops: %s" m);
      let repl = SFor (v2, lo2, hi2, [ SFor (v1, lo1, hi1, body) ]) in
      recheck ~op:"reorder_loops" ~old:p { p with p_body = Cursor.splice p.p_body c [ repl ] }
  | SFor (v1, _, _, _) ->
      err "reorder_loops: loop %a does not directly contain a single loop %s" Sym.pp v1 n2
  | _ -> err "reorder_loops: %S does not denote a loop" n1

(* ------------------------------------------------------------------ *)
(* unroll_loop                                                         *)

(** [unroll_loop p pat] fully unrolls a constant-extent loop, freshening the
    binders of each replica. *)
let unroll_loop (p : proc) (pat : string) : proc =
  let c = find_first ~op:"unroll_loop" p.p_body pat in
  match Cursor.get p.p_body c with
  | SFor (v, lo, hi, body) ->
      let lo_n, hi_n =
        match (const_of lo, const_of hi) with
        | Some a, Some b -> (a, b)
        | _ ->
            err "unroll_loop: loop %a does not have constant bounds (%s, %s)" Sym.pp v
              (Pp.expr_to_string lo) (Pp.expr_to_string hi)
      in
      let repl =
        List.concat_map
          (fun i ->
            Subst.freshen_stmts (Subst.apply_stmts (Subst.single v (Int i)) body)
            |> Simplify.stmts)
          (List.init (max 0 (hi_n - lo_n)) (fun k -> lo_n + k))
      in
      recheck ~op:"unroll_loop" ~old:p { p with p_body = Cursor.splice p.p_body c repl }
  | _ -> err "unroll_loop: %S does not denote a loop" pat

(* ------------------------------------------------------------------ *)
(* remove_loop                                                         *)

let idempotent = Exo_check.Deps.idempotent

(** [remove_loop p pat] deletes a loop whose body does not use the loop
    variable, is idempotent, and provably executes at least once. This is
    how the staged C load/store nests shed the [k] loop (Fig. 8). *)
let remove_loop (p : proc) (pat : string) : proc =
  let c = find_first ~op:"remove_loop" p.p_body pat in
  match Cursor.get p.p_body c with
  | SFor (v, lo, hi, body) ->
      if Sym.Set.mem v (stmts_free_vars body) then
        err "remove_loop: body uses loop variable %a" Sym.pp v;
      if not (idempotent body) then
        err "remove_loop: body of %a is not idempotent" Sym.pp v;
      let trip_ok =
        match Affine.of_expr (Binop (Sub, Binop (Sub, hi, lo), Int 1)) with
        | Some a -> Exo_check.Bounds.nonneg_with_sizes (size_syms p) a = `Yes
        | None -> false
      in
      if not trip_ok then
        err "remove_loop: cannot prove loop %a executes at least once" Sym.pp v;
      recheck ~op:"remove_loop" ~old:p { p with p_body = Cursor.splice p.p_body c body }
  | _ -> err "remove_loop: %S does not denote a loop" pat

(* ------------------------------------------------------------------ *)
(* fuse_loops                                                          *)

(** [fuse_loops p pat] — merge the loop matching [pat] with its immediately
    following sibling when both have equal bounds: the inverse of fission.
    Legal under the same condition as fission (no dependence from the second
    body at iteration i to the first at iteration j > i — fusing moves each
    second-body iteration earlier). *)
let fuse_loops (p : proc) (pat : string) : proc =
  let op = "fuse_loops" in
  let c = find_first ~op p.p_body pat in
  let block = Cursor.get_block p.p_body c.Cursor.dirs in
  let next_i = c.Cursor.last + 1 in
  if next_i >= List.length block then err "%s: no following loop to fuse with" op;
  match (Cursor.get p.p_body c, Cursor.nth_stmt block next_i) with
  | SFor (v1, lo1, hi1, b1), SFor (v2, lo2, hi2, b2) ->
      let eq a b = Affine.expr_equal a b = Some true in
      if not (eq lo1 lo2 && eq hi1 hi2) then
        err "%s: loops %a and %a have different bounds" op Sym.pp v1 Sym.pp v2;
      let b2' = Subst.apply_stmts (Subst.single v2 (Var v1)) b2 in
      (match Exo_check.Deps.fission_legal ~v:v1 ~pre:b1 ~post:b2' with
      | Ok () -> ()
      | Error m -> err "%s: %s" op m);
      (* capture is impossible (symbols are unique) and the checker's
         no-shadowing rule is re-verified by recheck *)
      let fused = SFor (v1, lo1, hi1, b1 @ b2') in
      let body = Cursor.splice p.p_body (Cursor.with_last c next_i) [] in
      let body = Cursor.splice body c [ fused ] in
      recheck ~op ~old:p { p with p_body = body }
  | _ -> err "%s: %S and its successor are not both loops" op pat

(* ------------------------------------------------------------------ *)
(* autofission                                                         *)

type gap = After of string | Before of string

(** Allocations in [pre] that [post] still references would be unscoped by
    fission. The pipeline lifts allocations first, exactly as the paper's
    user code does. *)
let check_alloc_scoping ~op (pre : stmt list) (post : stmt list) : unit =
  let allocated = ref Sym.Set.empty in
  iter_stmts
    (function SAlloc (b, _, _, _) -> allocated := Sym.Set.add b !allocated | _ -> ())
    pre;
  let used = stmts_bufs post in
  let escaping = Sym.Set.inter !allocated used in
  if not (Sym.Set.is_empty escaping) then
    err "%s: allocation %a would escape its scope (lift_alloc it first)" op Sym.pp
      (Sym.Set.choose escaping)

(** [autofission p ~gap ~n_lifts] fissions the enclosing loops at the point
    denoted by [gap], [n_lifts] levels up (the paper's
    [autofission(p.find(...).after(), n_lifts=5)]). At each level the
    enclosing loop [for v: pre ++ post] becomes [for v: pre; for v': post]
    when the dependence analysis allows; when the gap sits at a block
    boundary the fission at that level is a no-op and the gap just moves up. *)
let autofission (p : proc) ~(gap : gap) ~(n_lifts : int) : proc =
  let op = "autofission" in
  let pat, off = match gap with After s -> (s, 1) | Before s -> (s, 0) in
  let c0 = find_first ~op p.p_body pat in
  let body = ref p.p_body in
  (* The gap lives in the block addressed by [dirs], between [g-1] and [g]. *)
  let dirs = ref c0.Cursor.dirs and g = ref (c0.Cursor.last + off) in
  for _ = 1 to n_lifts do
    match List.rev !dirs with
    | [] -> err "%s: fewer than %d enclosing loops" op n_lifts
    | last_dir :: rev_rest -> (
        let parent_dirs = List.rev rev_rest in
        let parent_block = Cursor.get_block !body parent_dirs in
        let parent_stmt = Cursor.nth_stmt parent_block last_dir.Cursor.idx in
        match parent_stmt with
        | SFor (v, lo, hi, loop_body) ->
            let pre = List.filteri (fun i _ -> i < !g) loop_body in
            let post = List.filteri (fun i _ -> i >= !g) loop_body in
            if pre = [] then (
              dirs := parent_dirs;
              g := last_dir.Cursor.idx)
            else if post = [] then (
              dirs := parent_dirs;
              g := last_dir.Cursor.idx + 1)
            else (
              check_alloc_scoping ~op pre post;
              (match Exo_check.Deps.fission_legal ~v ~pre ~post with
              | Ok () -> ()
              | Error m -> err "%s: %s" op m);
              let v' = Sym.clone v in
              let post' =
                Subst.freshen_stmts (Subst.apply_stmts (Subst.single v (Var v')) post)
              in
              let repl = [ SFor (v, lo, hi, pre); SFor (v', lo, hi, post') ] in
              body :=
                Cursor.splice !body
                  { Cursor.dirs = parent_dirs; last = last_dir.Cursor.idx }
                  repl;
              dirs := parent_dirs;
              g := last_dir.Cursor.idx + 1)
        | SIf _ -> err "%s: cannot fission through an if" op
        | _ -> err "%s: malformed cursor" op)
  done;
  recheck ~op ~old:p { p with p_body = !body }
