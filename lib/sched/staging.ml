(** Data-staging primitives: [stage_mem], [bind_expr], [expand_dim] and
    [lift_alloc] — the Section III-c/III-d steps that move the C tile and
    the A/B operands into (what will become) vector registers. *)

open Exo_ir
open Ir
open Common
module E = Exo_check.Effects

(** Dtype of a buffer as visible in [p]; scheduling errors otherwise. *)
let buffer_dtype ~op (p : proc) (b : Sym.t) : Dtype.t =
  match find_buffer_typ p b with
  | Some (dt, _, _) -> dt
  | None -> err "%s: unknown buffer %a" op Sym.pp b

(* ------------------------------------------------------------------ *)
(* stage_mem                                                           *)

(** Effect context for an access site: size parameters plus the ranges of
    all loops binding above the site. The list is innermost-first (as built
    by walking into the block); outer binders are pushed first so inner
    bounds widen through them. *)
let mk_ctx ~(sizes : Sym.Set.t) (ranges : (Sym.t * expr * expr) list) : E.ctx =
  List.fold_right
    (fun (v, lo, hi) ctx -> E.ctx_push_loop ctx v lo hi)
    ranges
    { E.sizes; ranges = Sym.Map.empty }

(** [prove_in_range ctx e lo hi] — lo ≤ e and e ≤ hi - 1, an {!E.in_range}
    query against the site's effect context. *)
let prove_in_range ctx (e : expr) ~(lo : expr) ~(hi : expr) : bool =
  match (Affine.of_expr e, Affine.of_expr lo, Affine.of_expr hi) with
  | Some ea, Some loa, Some hia -> E.in_range ctx ea ~lo:loa ~hi_excl:hia
  | _ -> false

(** [stage_mem p pat window name] — stage the region [window] of a buffer
    (e.g. ["C[0:12, 0:8]"], names resolved at the target) through a fresh
    buffer [name] around the *block* matching [pat] (typically the k-loop),
    exactly as Exo's windowed [stage_mem]:

    {v  name: dt[extents]
        for s0 in seq(0, n0): ...: name[s0,…] = C[lo0 + s0, …]   (load)
        <block, with accesses to the window retargeted to name>
        for s0 in seq(0, n0): ...: C[lo0 + s0, …] = name[s0,…]   (store)  v}

    Every access to the buffer inside the block must provably fall inside
    the window (affine bounds under the enclosing and interior loop ranges);
    a point window stages a rank-0 scalar.

    With [~load:false] the copy-in nest is omitted; this is only legal when
    the block provably overwrites the whole window ({!E.covers}), as in the
    [Cb = C·beta] staging or a beta = 0 kernel. *)
let stage_mem_stmts ?(load = true) ?(len = 1) (p : proc) (pat : string)
    (window : string) (name : string) : proc =
  let op = "stage_mem" in
  if len < 1 then err "%s: len must be >= 1" op;
  let c = find_first ~op p.p_body pat in
  let env = Scope.at_cursor p c in
  let buf, widx =
    try Exo_pattern.Expr_parse.window ~env window
    with Exo_pattern.Expr_parse.Parse_error m -> err "%s: %s" op m
  in
  let dt = buffer_dtype ~op p buf in
  (match find_buffer_typ p buf with
  | Some (_, dims, _) when List.length dims = List.length widx -> ()
  | Some (_, dims, _) ->
      err "%s: window has %d accessors for rank-%d buffer %s" op (List.length widx)
        (List.length dims) (Sym.name buf)
  | None -> err "%s: unknown buffer %s" op (Sym.name buf));
  let block = Cursor.get_block p.p_body c.Cursor.dirs in
  if c.Cursor.last + len > List.length block then
    err "%s: %d statements requested but only %d follow the match" op len
      (List.length block - c.Cursor.last);
  let targets =
    List.filteri (fun i _ -> i >= c.Cursor.last && i < c.Cursor.last + len) block
  in
  let reg = Sym.fresh name in
  let sizes = size_syms p in
  let outer_ranges = Scope.loop_ranges p c in
  (* Check containment of every access to [buf] in the block, walking with
     the interior loop ranges; simultaneously rewrite the accesses. *)
  let check_and_rewrite (target : stmt) : stmt =
    let rec go ranges (s : stmt) : stmt =
      let ctx = mk_ctx ~sizes ranges in
      let rewrite_idx (idx : expr list) : expr list =
        if List.length idx <> List.length widx then
          err "%s: access to %s has the wrong rank" op (Sym.name buf);
        List.concat
          (List.map2
             (fun e w ->
               match w with
               | Pt pe ->
                   let contained =
                     match (Affine.of_expr e, Affine.of_expr pe) with
                     | Some ea, Some pa ->
                         E.region_contains ctx ~outer:[ E.DPt pa ]
                           ~inner:[ E.DPt ea ]
                     | _ -> false
                   in
                   if not contained then
                     err "%s: access %s escapes the point window dimension %s" op
                       (Pp.expr_to_string e) (Pp.expr_to_string pe);
                   []
               | Iv (lo, hi) ->
                   if not (prove_in_range ctx e ~lo ~hi) then
                     err "%s: cannot prove access %s stays within window [%s, %s)" op
                       (Pp.expr_to_string e) (Pp.expr_to_string lo)
                       (Pp.expr_to_string hi);
                   [ Simplify.expr (Binop (Sub, e, lo)) ])
             idx widx)
      in
      let rec re (e : expr) : expr =
        match e with
        | Read (b, idx) when Sym.equal b buf -> Read (reg, rewrite_idx (List.map re idx))
        | Read (b, idx) -> Read (b, List.map re idx)
        | Binop (o, a, b) -> Binop (o, re a, re b)
        | Neg a -> Neg (re a)
        | Cmp (o, a, b) -> Cmp (o, re a, re b)
        | And (a, b) -> And (re a, re b)
        | Or (a, b) -> Or (re a, re b)
        | Not a -> Not (re a)
        | Int _ | Float _ | Var _ | Stride _ -> e
      in
      match s with
      | SAssign (b, idx, e) when Sym.equal b buf ->
          SAssign (reg, rewrite_idx (List.map re idx), re e)
      | SReduce (b, idx, e) when Sym.equal b buf ->
          SReduce (reg, rewrite_idx (List.map re idx), re e)
      | SAssign (b, idx, e) -> SAssign (b, List.map re idx, re e)
      | SReduce (b, idx, e) -> SReduce (b, List.map re idx, re e)
      | SFor (v, lo, hi, body) ->
          SFor (v, re lo, re hi, List.map (go ((v, lo, hi) :: ranges)) body)
      | SAlloc _ -> s
      | SCall (_, args) ->
          if
            List.exists
              (function AWin w -> Sym.equal w.wbuf buf | AExpr _ -> false)
              args
          then
            err "%s: %s is already consumed by an instruction call inside the block" op
              (Sym.name buf)
          else map_stmt_exprs re s
      | SIf (cond, t, e) -> SIf (re cond, List.map (go ranges) t, List.map (go ranges) e)
    in
    go (List.rev outer_ranges) target
  in
  let targets' = List.map check_and_rewrite targets in
  (* Staging buffer extents and the copy nests. *)
  let iv_dims =
    List.filter_map
      (function Iv (lo, hi) -> Some (Simplify.expr (Binop (Sub, hi, lo))) | Pt _ -> None)
      widx
  in
  (* ~load:false obligation: some unconditional write fully covers the
     window — an {!E.covers} (mixed-radix bijection) query. *)
  if not load then begin
    let extents =
      List.map
        (function
          | Int n -> n
          | e ->
              err "%s: ~load:false needs constant window extents (got %s)" op
                (Pp.expr_to_string e))
        iv_dims
    in
    let covered = ref false in
    let rec walk (ranges : (Sym.t * (int * int)) list) (s : stmt) : unit =
      match s with
      | SAssign (b, idx, _) when Sym.equal b reg -> (
          match List.map Affine.of_expr idx with
          | aff when List.for_all Option.is_some aff ->
              let ranges_of v =
                List.find_opt (fun (s, _) -> Sym.equal s v) ranges |> Option.map snd
              in
              if E.covers ~ranges_of (List.map Option.get aff) extents then
                covered := true
          | _ -> ())
      | SFor (v, lo, hi, body) -> (
          match (Simplify.expr lo, Simplify.expr hi) with
          | Int 0, Int n -> List.iter (walk ((v, (0, n)) :: ranges)) body
          | _ -> List.iter (walk ranges) body)
      | SIf _ -> () (* conditional writes cannot prove coverage *)
      | _ -> ()
    in
    List.iter (walk []) targets';
    if not !covered then
      err "%s: ~load:false requires the block to overwrite the whole window of %s" op
        (Sym.name buf)
  end;
  let mk_copy ~(load : bool) : stmt list =
    (* one fresh loop var per Iv dim *)
    let vars =
      List.mapi (fun d _ -> Sym.fresh (Fmt.str "s%d" d)) iv_dims
    in
    let reg_idx = List.map (fun v -> Var v) vars in
    let buf_idx =
      let rec zip widx vars =
        match (widx, vars) with
        | [], _ -> []
        | Pt e :: rest, vs -> e :: zip rest vs
        | Iv (lo, _) :: rest, v :: vs -> Simplify.expr (Binop (Add, lo, Var v)) :: zip rest vs
        | Iv _ :: _, [] -> assert false
      in
      zip widx vars
    in
    let leaf =
      if load then SAssign (reg, reg_idx, Read (buf, buf_idx))
      else SAssign (buf, buf_idx, Read (reg, reg_idx))
    in
    [
      List.fold_right2
        (fun v ext body -> SFor (v, Int 0, ext, [ body ]))
        vars iv_dims leaf;
    ]
  in
  let repl =
    (SAlloc (reg, dt, iv_dims, Mem.dram) :: (if load then mk_copy ~load:true else []))
    @ targets' @ mk_copy ~load:false
  in
  (* splice all [len] statements: remove the extras, then replace the head *)
  let body = ref p.p_body in
  for i = len - 1 downto 1 do
    body := Cursor.splice !body (Cursor.with_last c (c.Cursor.last + i)) []
  done;
  recheck ~op ~old:p { p with p_body = Cursor.splice !body c repl }

(** Single-statement [stage_mem] (the common case). *)
let stage_mem ?load (p : proc) (pat : string) (window : string) (name : string) :
    proc =
  stage_mem_stmts ?load ~len:1 p pat window name

(* ------------------------------------------------------------------ *)
(* bind_expr                                                           *)

(** Substitute reads of one cell of [buf] by the staging scalar [reg] within
    one statement. Cell equality is affine. *)
let retarget_stmt ~(buf : Sym.t) ~(cell : expr list) ~(reg : Sym.t) (s : stmt) : stmt =
  let same_cell idx =
    List.length idx = List.length cell
    && List.for_all2 (fun a b -> Affine.expr_equal a b = Some true) idx cell
  in
  let re e =
    map_expr
      (function
        | Read (b, idx) when Sym.equal b buf && same_cell idx -> Read (reg, [])
        | e -> e)
      e
  in
  map_stmt_exprs re s

(** [bind_expr p pat name] — bind the first read matching [pat] (a buffer
    name pattern such as ["Ac[_]"]) to a fresh scalar:

    {v  name: dt
        name = Ac[...]
        <stmt with that read replaced by name>  v}

    Used for the A/B operand staging of Fig. 9 (step 1). *)
let bind_expr (p : proc) (pat : string) (name : string) : proc =
  let op = "bind_expr" in
  (* The pattern is a read pattern [buf[_]]; locate the first statement whose
     right-hand side reads [buf]. *)
  let bufname =
    match String.index_opt pat '[' with
    | Some i -> String.trim (String.sub pat 0 i)
    | None -> String.trim pat
  in
  let reads_buf (s : stmt) =
    match s with
    | SAssign (_, _, e) | SReduce (_, _, e) ->
        Sym.Set.exists (fun b -> Sym.name b = bufname) (expr_bufs Sym.Set.empty e)
    | _ -> false
  in
  let target =
    List.find_opt (fun (_, s) -> reads_buf s) (Cursor.all_stmts p.p_body)
  in
  match target with
  | None -> err "%s: no statement reads %s" op bufname
  | Some (c, s) ->
      (* The concrete cell read (first such read, textually). *)
      let cell = ref None in
      let find_cell e =
        ignore
          (map_expr
             (function
               | Read (b, idx) as e when Sym.name b = bufname && !cell = None ->
                   cell := Some (b, idx);
                   e
               | e -> e)
             e)
      in
      (match s with
      | SAssign (_, _, e) | SReduce (_, _, e) -> find_cell e
      | _ -> ());
      let buf, cell =
        match !cell with Some bc -> bc | None -> err "%s: no read of %s" op bufname
      in
      let dt = buffer_dtype ~op p buf in
      let reg = Sym.fresh name in
      let repl =
        [
          SAlloc (reg, dt, [], Mem.dram);
          SAssign (reg, [], Read (buf, cell));
          retarget_stmt ~buf ~cell ~reg s;
        ]
      in
      recheck ~op ~old:p { p with p_body = Cursor.splice p.p_body c repl }

(* ------------------------------------------------------------------ *)
(* bind_expr_bcast                                                     *)

(** [bind_expr_bcast p pat name] — broadcast-stage a loop-invariant read.

    Finds the first statement whose right-hand side reads the buffer named
    by [pat] (as {!bind_expr}); the read must not depend on the variable [v]
    of the innermost loop enclosing that statement. Introduces a register
    [name] of the loop's (constant) extent, a replication loop before the
    enclosing loop, and replaces the read by [name\[v\]]:

    {v  name: dt[lanes]
        for l in seq(0, lanes): name[l] = Bc[k, j]
        for v in seq(0, lanes): ... name[v] ...  v}

    This is the staging shape ISAs without lane-indexed FMA need (AVX-512:
    [_mm512_set1_ps] + [_mm512_fmadd_ps]; Section III-B/III-C). *)
let bind_expr_bcast (p : proc) (pat : string) (name : string) : proc =
  let op = "bind_expr_bcast" in
  let bufname =
    match String.index_opt pat '[' with
    | Some i -> String.trim (String.sub pat 0 i)
    | None -> String.trim pat
  in
  let reads_buf (s : stmt) =
    match s with
    | SAssign (_, _, e) | SReduce (_, _, e) ->
        Sym.Set.exists (fun b -> Sym.name b = bufname) (expr_bufs Sym.Set.empty e)
    | _ -> false
  in
  match List.find_opt (fun (_, s) -> reads_buf s) (Cursor.all_stmts p.p_body) with
  | None -> err "%s: no statement reads %s" op bufname
  | Some (c, s) ->
      (* Innermost enclosing loop. *)
      let loop_c =
        match Cursor.parent c with
        | Some pc -> pc
        | None -> err "%s: the read is not inside a loop" op
      in
      let v, extent =
        match Cursor.get p.p_body loop_c with
        | SFor (v, lo, hi, _) -> (
            match (const_of lo, const_of hi) with
            | Some 0, Some n -> (v, n)
            | _ -> err "%s: enclosing loop %a must run over a constant range" op Sym.pp v)
        | _ -> err "%s: enclosing statement is not a loop" op
      in
      let cell = ref None in
      (match s with
      | SAssign (_, _, e) | SReduce (_, _, e) ->
          ignore
            (map_expr
               (function
                 | Read (b, idx) as e when Sym.name b = bufname && !cell = None ->
                     cell := Some (b, idx);
                     e
                 | e -> e)
               e)
      | _ -> ());
      let buf, cell =
        match !cell with Some bc -> bc | None -> err "%s: no read of %s" op bufname
      in
      let used = E.shape_vars cell in
      if Sym.Set.mem v used then
        err "%s: the read of %s depends on the vector loop variable %a" op bufname
          Sym.pp v;
      let dt = buffer_dtype ~op p buf in
      let reg = Sym.fresh name in
      (* Replace the read inside the target statement by reg[v]. *)
      let re e =
        map_expr
          (function
            | Read (b, idx)
              when Sym.equal b buf
                   && List.length idx = List.length cell
                   && List.for_all2
                        (fun a b -> Affine.expr_equal a b = Some true)
                        idx cell ->
                Read (reg, [ Var v ])
            | e -> e)
          e
      in
      let body = Cursor.update p.p_body c (fun s -> [ map_stmt_exprs re s ]) in
      (* Insert alloc + replication loop before the enclosing vector loop. *)
      let l = Sym.fresh "l" in
      let body =
        Cursor.insert_before body loop_c
          [
            SAlloc (reg, dt, [ Int extent ], Mem.dram);
            SFor (l, Int 0, Int extent, [ SAssign (reg, [ Var l ], Read (buf, cell)) ]);
          ]
      in
      recheck ~op ~old:p { p with p_body = body }

(* ------------------------------------------------------------------ *)
(* expand_dim                                                          *)

(** [expand_dim p buf extent idx] — prepend a dimension of size [extent]
    (an expression string, usually a constant) to allocation [buf], and
    prepend index [idx] (resolved in the scope of each access) to every
    access. Exo checks the new subscript stays within the new extent; we do
    the same with the affine range analysis. *)
let expand_dim (p : proc) (bufname : string) (extent : string) (idx : string) : proc =
  let op = "expand_dim" in
  let c_alloc = find_first ~op p.p_body (bufname ^ " : _") in
  let buf, dt, dims, mem =
    match Cursor.get p.p_body c_alloc with
    | SAlloc (b, dt, dims, mem) -> (b, dt, dims, mem)
    | _ -> err "%s: %s is not an allocation" op bufname
  in
  let extent_e =
    try Exo_pattern.Expr_parse.expr ~env:(Scope.at_cursor p c_alloc) extent
    with Exo_pattern.Expr_parse.Parse_error m -> err "%s: %s" op m
  in
  (* Rewrite the alloc. *)
  let body =
    Cursor.splice p.p_body c_alloc [ SAlloc (buf, dt, extent_e :: dims, mem) ]
  in
  (* Rewrite every access, resolving [idx] at each site and checking range. *)
  let sizes = size_syms p in
  let rewrite_at (body : stmt list) (c : Cursor.t) : stmt list =
    let env = Scope.at_cursor { p with p_body = body } c in
    let idx_e =
      try Exo_pattern.Expr_parse.expr ~env idx
      with Exo_pattern.Expr_parse.Parse_error m ->
        err "%s: at %s: %s" op (Fmt.str "%a" Cursor.pp c) m
    in
    (* Range check: 0 ≤ idx < extent under the enclosing loop ranges — an
       {!E.in_range} query at the site's effect context. *)
    (let ranges = Scope.loop_ranges { p with p_body = body } c in
     let ctx = mk_ctx ~sizes (List.rev ranges) in
     match (Affine.of_expr idx_e, Affine.of_expr extent_e) with
     | Some a, Some ext ->
         if not (E.in_range ctx a ~lo:Affine.zero ~hi_excl:ext) then
           err "%s: cannot prove %s stays within [0, %s) at an access of %s" op idx
             extent bufname
     | None, _ -> err "%s: index %s is not affine" op idx
     | _, None ->
         err "%s: cannot prove %s stays within [0, %s) at an access of %s" op idx
           extent bufname);
    let upd (s : stmt) : stmt =
      let re e =
        map_expr
          (function Read (b, i) when Sym.equal b buf -> Read (b, idx_e :: i) | e -> e)
          e
      in
      match s with
      | SAssign (b, i, e) when Sym.equal b buf -> SAssign (b, idx_e :: List.map re i, re e)
      | SReduce (b, i, e) when Sym.equal b buf -> SReduce (b, idx_e :: List.map re i, re e)
      | s -> map_stmt_exprs re s
    in
    Cursor.update body c (fun s -> [ upd s ])
  in
  (* Collect access sites (statements that touch [buf]) then rewrite each;
     cursors stay valid because [upd] preserves the tree shape. *)
  let touches (s : stmt) =
    match s with
    | SAssign (b, _, e) | SReduce (b, _, e) ->
        Sym.equal b buf || Sym.Set.mem buf (expr_bufs Sym.Set.empty e)
    | SFor (_, lo, hi, _) ->
        Sym.Set.mem buf (expr_bufs (expr_bufs Sym.Set.empty lo) hi)
    | SIf (cnd, _, _) -> Sym.Set.mem buf (expr_bufs Sym.Set.empty cnd)
    | SCall _ -> Sym.Set.mem buf (stmts_bufs [ s ])
    | SAlloc _ -> false
  in
  let sites =
    List.filter_map
      (fun (c, s) ->
        match s with
        | SFor _ | SIf _ -> None (* handled at the leaf statements *)
        | SCall _ when touches s ->
            err "%s: %s is already consumed by an instruction call; expand before replace"
              op bufname
        | _ -> if touches s then Some c else None)
      (Cursor.all_stmts body)
  in
  let body = List.fold_left rewrite_at body sites in
  recheck ~op ~old:p { p with p_body = body }

(* ------------------------------------------------------------------ *)
(* divide_dim                                                          *)

(** [divide_dim p buf d quot] — split dimension [d] of allocation [buf]
    (constant extent [n], [quot | n]) into two dimensions [n/quot × quot];
    every access's subscript [e] in that dimension is decomposed as
    [e = quot·q + r] with [r] the sub-[quot] affine part, after proving
    [r ∈ [0, quot)]. Shapes the staged C tile into the paper's
    [C_reg: f32[12, 2, 4]] (Fig. 8). *)
let divide_dim (p : proc) (bufname : string) (d : int) (quot : int) : proc =
  let op = "divide_dim" in
  if quot <= 0 then err "%s: quotient must be positive" op;
  let c_alloc = find_first ~op p.p_body (bufname ^ " : _") in
  let buf, dt, dims, mem =
    match Cursor.get p.p_body c_alloc with
    | SAlloc (b, dt, dims, mem) -> (b, dt, dims, mem)
    | _ -> err "%s: %s is not an allocation" op bufname
  in
  if d < 0 || d >= List.length dims then
    err "%s: dimension %d out of range for %s" op d bufname;
  let n =
    match Simplify.expr (List.nth dims d) with
    | Int n -> n
    | _ -> err "%s: dimension %d of %s is not a constant" op d bufname
  in
  if n mod quot <> 0 then
    err "%s: %d does not divide the extent %d of dimension %d" op quot n d;
  let new_dims =
    List.concat (List.mapi (fun i e -> if i = d then [ Int (n / quot); Int quot ] else [ e ]) dims)
  in
  let body = Cursor.splice p.p_body c_alloc [ SAlloc (buf, dt, new_dims, mem) ] in
  let sizes = size_syms p in
  (* Decompose one subscript under the loop ranges at its site. *)
  let split_subscript ctx (e : expr) : expr * expr =
    match Affine.of_expr e with
    | None -> err "%s: non-affine subscript %s on %s" op (Pp.expr_to_string e) bufname
    | Some a ->
        let r =
          {
            Affine.const = a.Affine.const mod quot;
            terms = List.filter (fun (_, cf) -> abs cf < quot) a.Affine.terms;
          }
        in
        let qa =
          match Affine.div_exact (Affine.sub a r) quot with
          | Some q -> q
          | None ->
              err "%s: cannot decompose subscript %s as %d*q + r" op
                (Pp.expr_to_string e) quot
        in
        (* prove r ∈ [0, quot) *)
        let ok = E.in_range ctx r ~lo:Affine.zero ~hi_excl:(Affine.const quot) in
        if not ok then
          err "%s: cannot prove the lane part of %s stays within [0, %d)" op
            (Pp.expr_to_string e) quot;
        (Simplify.expr (Affine.to_expr qa), Simplify.expr (Affine.to_expr r))
  in
  let split_idx ctx (idx : expr list) : expr list =
    List.concat
      (List.mapi
         (fun i e ->
           if i = d then
             let q, r = split_subscript ctx e in
             [ q; r ]
           else [ e ])
         idx)
  in
  let rec go ranges (s : stmt) : stmt =
    let ctx = mk_ctx ~sizes ranges in
    let rec re (e : expr) : expr =
      match e with
      | Read (b, idx) when Sym.equal b buf -> Read (b, split_idx ctx (List.map re idx))
      | Read (b, idx) -> Read (b, List.map re idx)
      | Binop (o, a, b) -> Binop (o, re a, re b)
      | Neg a -> Neg (re a)
      | Cmp (o, a, b) -> Cmp (o, re a, re b)
      | And (a, b) -> And (re a, re b)
      | Or (a, b) -> Or (re a, re b)
      | Not a -> Not (re a)
      | Int _ | Float _ | Var _ | Stride _ -> e
    in
    match s with
    | SAssign (b, idx, e) when Sym.equal b buf ->
        SAssign (b, split_idx ctx (List.map re idx), re e)
    | SReduce (b, idx, e) when Sym.equal b buf ->
        SReduce (b, split_idx ctx (List.map re idx), re e)
    | SAssign (b, idx, e) -> SAssign (b, List.map re idx, re e)
    | SReduce (b, idx, e) -> SReduce (b, List.map re idx, re e)
    | SFor (v, lo, hi, inner) -> SFor (v, re lo, re hi, List.map (go ((v, lo, hi) :: ranges)) inner)
    | SAlloc _ -> s
    | SCall (_, args) ->
        if List.exists (function AWin w -> Sym.equal w.wbuf buf | _ -> false) args then
          err "%s: %s is already consumed by an instruction call; divide before replace"
            op bufname
        else map_stmt_exprs re s
    | SIf (cnd, t, e) -> SIf (re cnd, List.map (go ranges) t, List.map (go ranges) e)
  in
  recheck ~op ~old:p { p with p_body = List.map (go []) body }

(* ------------------------------------------------------------------ *)
(* lift_alloc                                                          *)

(** [lift_alloc p buf ~n_lifts] hoists the allocation of [buf] out of
    [n_lifts] enclosing loops (to the top of the proc for the kernels in
    the paper). The extents must not depend on the crossed loop variables. *)
let lift_alloc (p : proc) (bufname : string) ~(n_lifts : int) : proc =
  let op = "lift_alloc" in
  let c = find_first ~op p.p_body (bufname ^ " : _") in
  let alloc = Cursor.get p.p_body c in
  let dims =
    match alloc with SAlloc (_, _, dims, _) -> dims | _ -> err "%s: not an alloc" op
  in
  let lifts = min n_lifts (Cursor.depth c) in
  if lifts = 0 then p
  else begin
    (* Check crossed binders do not appear in the extents. *)
    let crossed =
      Scope.loop_ranges p c
      |> List.rev
      |> List.filteri (fun i _ -> i < lifts)
      |> List.map (fun (v, _, _) -> v)
      |> Sym.Set.of_list
    in
    let used = E.shape_vars dims in
    let bad = Sym.Set.inter crossed used in
    if not (Sym.Set.is_empty bad) then
      err "%s: extent of %s depends on loop variable %a" op bufname Sym.pp
        (Sym.Set.choose bad);
    let body = Cursor.splice p.p_body c [] in
    (* Destination: [lifts] levels up from the alloc's block, before the
       enclosing statement chain. *)
    let rec target (c : Cursor.t) (k : int) : Cursor.t =
      if k = 0 then c
      else
        match Cursor.parent c with
        | Some up -> target up (k - 1)
        | None -> c
    in
    let dest = target c lifts in
    let body = Cursor.insert_before body dest [ alloc ] in
    recheck ~op ~old:p { p with p_body = body }
  end
