(** The `ukrgen serve` kernel-compilation daemon.

    A long-running line-protocol server over a Unix-domain socket
    (stdlib/unix only): clients send one request per line and read one
    response — a status line ([OK ...] / [ERR ...]), zero or more payload
    lines, and a lone ["."] terminator. The daemon answers generate / lint
    / tune requests from the warm in-memory {!Exo_blis.Registry} table
    (hydrated from the ambient {!Exo_cache.Store} when one is configured,
    so restarts are cheap) and batches run requests through
    {!Exo_blis.Gemm.batch_ba} — cold-start elimination for every client
    that would otherwise pay the schedule → certify → lower pipeline per
    invocation.

    Verbs:
    - [PING] — liveness.
    - [GENERATE <kit> <MR>x<NR>] — kernel descriptor: style, schedule
      steps, table tier and Tierlint verdict.
    - [LINT <kit> <MR>x<NR>] — the static translation-validation report of
      the lowered tape.
    - [TUNE <m> <n> <k>] — the {!Exo_blis.Tuner} ranking for one problem
      (persisted across restarts via the ambient store).
    - [RUN <m> <n> <k> [count]] — execute [count] GEMMs through the
      monomorphized table; replies with a checksum and wall seconds.
    - [STATS] — request/cache counters, per-verb latency quantiles, uptime.
    - [METRICS] — Prometheus-style text exposition (counters + per-verb
      request-latency histograms).
    - [SHUTDOWN] — graceful stop: in-flight work drains, workers join.

    Concurrency: [workers] domains share the listening socket; each
    handles whole connections (several requests per connection allowed).
    Every request runs under an Obs span ([serve.request]) and bumps
    always-on per-verb atomics. Shutdown sets a stop flag; workers finish
    their current connection, observe the flag within the accept poll
    interval, and exit — {!wait} then joins them and unlinks the socket. *)

module Obs = Exo_obs.Obs
module Ledger = Exo_ledger.Ledger
module Store = Exo_cache.Store
module Kits = Exo_ukr_gen.Kits
module Family = Exo_ukr_gen.Family
module R = Exo_blis.Registry
module Tuner = Exo_blis.Tuner
module Gemm = Exo_blis.Gemm
module Matrix = Exo_blis.Matrix
module Analytical = Exo_blis.Analytical
module C = Exo_interp.Compile
module Tierlint = Exo_check.Tierlint
module Machine = Exo_isa.Machine

(* ------------------------------------------------------------------ *)
(* Request counters: always-on atomics (STATS reads them in plain runs),
   mirrored to Obs counters for the profile exporter when tracing.       *)

let req_total = Atomic.make 0
let req_errors = Atomic.make 0

let verb_counters =
  [
    ("PING", Atomic.make 0);
    ("GENERATE", Atomic.make 0);
    ("LINT", Atomic.make 0);
    ("TUNE", Atomic.make 0);
    ("RUN", Atomic.make 0);
    ("STATS", Atomic.make 0);
    ("METRICS", Atomic.make 0);
    ("SHUTDOWN", Atomic.make 0);
  ]

(* per-verb error counts and request-latency histograms: always on, like
   the verb counters (observe_always skips the Obs master switch) *)
let verb_errors = List.map (fun (v, _) -> (v, Atomic.make 0)) verb_counters

let verb_latency =
  List.map
    (fun (v, _) ->
      (v, Obs.histogram ("serve.latency_us." ^ String.lowercase_ascii v)))
    verb_counters

let obs_requests = Obs.counter "serve.requests"
let obs_errors = Obs.counter "serve.errors"

let request_counts () =
  ( Atomic.get req_total,
    Atomic.get req_errors,
    List.map (fun (v, c) -> (v, Atomic.get c)) verb_counters )

let reset_request_counts () =
  Atomic.set req_total 0;
  Atomic.set req_errors 0;
  List.iter (fun (_, c) -> Atomic.set c 0) verb_counters;
  List.iter (fun (_, c) -> Atomic.set c 0) verb_errors;
  List.iter (fun (_, h) -> Obs.reset_histogram h) verb_latency

(* ------------------------------------------------------------------ *)
(* Access log: one JSONL line per request through a size-rotated sink.  *)

let access_sink : Ledger.Sink.t option Atomic.t = Atomic.make None

let set_access_log ?max_bytes (path : string option) : unit =
  Atomic.set access_sink
    (Option.map (fun p -> Ledger.Sink.create ?max_bytes p) path)

let access_log_path () =
  Option.map Ledger.Sink.path (Atomic.get access_sink)

(* ------------------------------------------------------------------ *)
(* Request handling                                                     *)

(* Work shared by GENERATE/LINT/RUN: the warm family bounds every table
   serves — the paper's 8×12 family. *)
let table_mr = 8
let table_nr = 12

exception Bad_request of string

let fail fmt = Fmt.kstr (fun m -> raise (Bad_request m)) fmt

let parse_shape s =
  match String.index_opt s 'x' with
  | Some i -> (
      try
        let mr = int_of_string (String.sub s 0 i)
        and nr = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
        if mr < 1 || nr < 1 then fail "shape must be positive" else (mr, nr)
      with Failure _ -> fail "malformed shape %S (want <MR>x<NR>)" s)
  | None -> fail "malformed shape %S (want <MR>x<NR>)" s

let parse_kit name =
  match Kits.by_name name with
  | Some k -> k
  | None ->
      fail "unknown kit %S (know: %s)" name
        (String.concat ", " (List.map (fun k -> k.Kits.name) Kits.all))

let parse_int what s =
  match int_of_string_opt s with
  | Some v when v >= 1 -> v
  | _ -> fail "%s must be a positive integer, got %S" what s

(* Each handler returns (status-suffix, payload lines). *)

let handle_generate kit shape =
  let kit = parse_kit kit in
  let mr, nr = parse_shape shape in
  let k = R.exo_kernel ~kit ~mr ~nr () in
  let fast, proved =
    if mr <= table_mr && nr <= table_nr then
      let t = R.exo_table ~kit ~mr:table_mr ~nr:table_nr () in
      let idx = ((mr - 1) * table_nr) + nr - 1 in
      (t.R.t_fast.(idx), t.R.t_proved.(idx))
    else
      match C.summarize_ukr k.Family.proc with
      | Some s -> (false, Tierlint.proved (Tierlint.check s))
      | None -> (false, false)
  in
  ( Fmt.str "generated %s %dx%d" kit.Kits.name mr nr,
    [
      Fmt.str "kit %s" kit.Kits.name;
      Fmt.str "shape %dx%d" mr nr;
      Fmt.str "style %s" (Family.style_name k.Family.style);
      Fmt.str "steps %d" (Obs.Provenance.step_count k.Family.provenance);
      Fmt.str "fast %b" fast;
      Fmt.str "proved %b" proved;
    ] )

let handle_lint kit shape =
  let kit = parse_kit kit in
  let mr, nr = parse_shape shape in
  let k = R.exo_kernel ~kit ~mr ~nr () in
  match C.summarize_ukr k.Family.proc with
  | None ->
      ( Fmt.str "lint %s %dx%d" kit.Kits.name mr nr,
        [ "lowered false"; "proved false" ] )
  | Some s ->
      let rep = Tierlint.check s in
      ( Fmt.str "lint %s %dx%d" kit.Kits.name mr nr,
        [
          "lowered true";
          Fmt.str "proved %b" (Tierlint.proved rep);
          Fmt.str "bounds %a" Tierlint.pp_verdict rep.Tierlint.r_bounds;
          Fmt.str "writes %a" Tierlint.pp_verdict rep.Tierlint.r_writes;
          Fmt.str "accshape %a" Tierlint.pp_verdict rep.Tierlint.r_accshape;
        ] )

let handle_tune m n k =
  let m = parse_int "m" m and n = parse_int "n" n and k = parse_int "k" k in
  let results = Tuner.sweep Machine.carmel ~m ~n ~k in
  let best = List.hd results in
  ( Fmt.str "tuned %dx%dx%d best %dx%d" m n k best.Tuner.mr best.Tuner.nr,
    List.map
      (fun r ->
        Fmt.str "%d %d %.4f mc=%d kc=%d nc=%d" r.Tuner.mr r.Tuner.nr
          r.Tuner.gflops r.Tuner.blocking.Analytical.mc
          r.Tuner.blocking.Analytical.kc r.Tuner.blocking.Analytical.nc)
      results )

(* RUN executes real GEMMs in the daemon, so cap the request size: the
   point is serving models' layer batches, not arbitrary allocations. *)
let run_dim_cap = 2048
let run_count_cap = 64

let handle_run m n k count =
  let m = parse_int "m" m and n = parse_int "n" n and k = parse_int "k" k in
  let count = match count with None -> 1 | Some c -> parse_int "count" c in
  if m > run_dim_cap || n > run_dim_cap || k > run_dim_cap then
    fail "dimensions capped at %d" run_dim_cap;
  if count > run_count_cap then fail "count capped at %d" run_count_cap;
  let mr = table_mr and nr = table_nr in
  let blocking = Analytical.compute Machine.carmel ~mr ~nr ~dtype_bytes:4 in
  let problems =
    List.init count (fun i ->
        let st = Random.State.make [| 0x5e12e; m; n; k; i |] in
        {
          Gemm.p_a = Matrix.random_int m k st;
          p_b = Matrix.random_int k n st;
          p_c = Matrix.create m n;
          p_alpha = 1.0;
          p_beta = 0.0;
          p_blocking = blocking;
          p_mr = mr;
          p_nr = nr;
        })
  in
  let t0 = Unix.gettimeofday () in
  Gemm.batch_ba ~kernels:(R.exo_bank ~mr ~nr ()) problems;
  let dt = Unix.gettimeofday () -. t0 in
  let checksum =
    List.fold_left
      (fun acc p -> Array.fold_left ( +. ) acc p.Gemm.p_c.Matrix.data)
      0.0 problems
  in
  let fast, fallback = R.ukr_dispatch_counts () in
  let native, _, _ = R.ukr_tier_counts () in
  ( Fmt.str "ran %d problem%s" count (if count = 1 then "" else "s"),
    [
      Fmt.str "checksum %.17g" checksum;
      Fmt.str "seconds %.6f" dt;
      Fmt.str "fast_calls %d" fast;
      Fmt.str "fallback_calls %d" fallback;
      Fmt.str "native_calls %d" native;
    ] )

let started = ref (Unix.gettimeofday ())

let handle_stats () =
  let total, errors, verbs = request_counts () in
  let hits, misses = Store.hit_miss_counts () in
  let writes, corrupt = Store.write_counts () in
  let tier_native, tier_ba, tier_fallback = R.ukr_tier_counts () in
  ( "stats",
    [
      Fmt.str "uptime_seconds %.3f" (Unix.gettimeofday () -. !started);
      Fmt.str "requests %d" total;
      Fmt.str "errors %d" errors;
    ]
    @ List.map (fun (v, c) -> Fmt.str "requests_%s %d" (String.lowercase_ascii v) c) verbs
    @ List.map
        (fun (v, c) ->
          Fmt.str "errors_%s %d" (String.lowercase_ascii v) (Atomic.get c))
        verb_errors
    @ List.map
        (fun (v, h) ->
          let s = Obs.snapshot h in
          Fmt.str "latency_%s_us count %d p50 %.0f p95 %.0f p99 %.0f"
            (String.lowercase_ascii v) s.Obs.h_count (Obs.quantile s 0.5)
            (Obs.quantile s 0.95) (Obs.quantile s 0.99))
        verb_latency
    @ [
        Fmt.str "tier_native_calls %d" tier_native;
        Fmt.str "tier_ba_calls %d" tier_ba;
        Fmt.str "tier_fallback_calls %d" tier_fallback;
        Fmt.str "cache_hits %d" hits;
        Fmt.str "cache_misses %d" misses;
        Fmt.str "cache_writes %d" writes;
        Fmt.str "cache_corrupt %d" corrupt;
        Fmt.str "cache_dir %s"
          (match Store.ambient () with None -> "-" | Some s -> Store.root s);
      ] )

(* Prometheus text exposition: counters plus one histogram series per
   verb. The log2 buckets map directly onto cumulative [le] bounds
   (bucket i covers values up to 2^i - 1). *)
let handle_metrics () =
  let lines = ref [] in
  let pf fmt = Fmt.kstr (fun l -> lines := l :: !lines) fmt in
  let total, errors, verbs = request_counts () in
  let hits, misses = Store.hit_miss_counts () in
  let writes, corrupt = Store.write_counts () in
  pf "# HELP ukrgen_uptime_seconds Seconds since daemon start.";
  pf "# TYPE ukrgen_uptime_seconds gauge";
  pf "ukrgen_uptime_seconds %.3f" (Unix.gettimeofday () -. !started);
  pf "# TYPE ukrgen_requests_total counter";
  pf "ukrgen_requests_total %d" total;
  pf "# TYPE ukrgen_request_errors_total counter";
  pf "ukrgen_request_errors_total %d" errors;
  pf "# TYPE ukrgen_requests counter";
  List.iter
    (fun (v, c) ->
      pf "ukrgen_requests{verb=%S} %d" (String.lowercase_ascii v) c)
    verbs;
  pf "# TYPE ukrgen_request_errors counter";
  List.iter
    (fun (v, c) ->
      pf "ukrgen_request_errors{verb=%S} %d" (String.lowercase_ascii v)
        (Atomic.get c))
    verb_errors;
  List.iter
    (fun (name, v) ->
      pf "# TYPE ukrgen_cache_%s counter" name;
      pf "ukrgen_cache_%s %d" name v)
    [ ("hits", hits); ("misses", misses); ("writes", writes); ("corrupt", corrupt) ];
  (let native, ba, fallback = R.ukr_tier_counts () in
   pf "# TYPE ukrgen_tier_calls counter";
   List.iter
     (fun (tier, v) -> pf "ukrgen_tier_calls{tier=%S} %d" tier v)
     [ ("native", native); ("bigarray", ba); ("fallback", fallback) ]);
  pf "# TYPE ukrgen_request_latency_us histogram";
  List.iter
    (fun (v, h) ->
      let verb = String.lowercase_ascii v in
      let s = Obs.snapshot h in
      let top = ref (-1) in
      Array.iteri (fun i n -> if n > 0 then top := i) s.Obs.h_buckets;
      let cum = ref 0 in
      for i = 0 to !top do
        cum := !cum + s.Obs.h_buckets.(i);
        pf "ukrgen_request_latency_us_bucket{verb=%S,le=\"%d\"} %d" verb
          (snd (Obs.bucket_bounds i))
          !cum
      done;
      pf "ukrgen_request_latency_us_bucket{verb=%S,le=\"+Inf\"} %d" verb
        s.Obs.h_count;
      pf "ukrgen_request_latency_us_sum{verb=%S} %d" verb s.Obs.h_sum;
      pf "ukrgen_request_latency_us_count{verb=%S} %d" verb s.Obs.h_count)
    verb_latency;
  ("metrics", List.rev !lines)

(** Dispatch one request line. Returns the full response: status line
    followed by payload lines (the ["."] terminator is the writer's job).
    Never raises — protocol errors become [ERR ...] responses. *)
let handle_request (stop : bool Atomic.t) (line : string) : string list =
  let words =
    List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim line))
  in
  let verb =
    match words with w :: _ -> String.uppercase_ascii w | [] -> ""
  in
  Atomic.incr req_total;
  if Obs.enabled () then Obs.incr obs_requests;
  (match List.assoc_opt verb verb_counters with
  | Some c -> Atomic.incr c
  | None -> ());
  let args = if Obs.enabled () then [ ("verb", verb) ] else [] in
  let rest = match words with [] -> [] | _ :: r -> r in
  let t0 = Unix.gettimeofday () in
  let response =
    Obs.with_span ~args "serve.request" (fun () ->
        match
          match (verb, rest) with
          | "PING", _ -> ("pong", [])
          | "GENERATE", [ kit; shape ] -> handle_generate kit shape
          | "GENERATE", _ -> fail "usage: GENERATE <kit> <MR>x<NR>"
          | "LINT", [ kit; shape ] -> handle_lint kit shape
          | "LINT", _ -> fail "usage: LINT <kit> <MR>x<NR>"
          | "TUNE", [ m; n; k ] -> handle_tune m n k
          | "TUNE", _ -> fail "usage: TUNE <m> <n> <k>"
          | "RUN", [ m; n; k ] -> handle_run m n k None
          | "RUN", [ m; n; k; c ] -> handle_run m n k (Some c)
          | "RUN", _ -> fail "usage: RUN <m> <n> <k> [count]"
          | "STATS", _ -> handle_stats ()
          | "METRICS", _ -> handle_metrics ()
          | "SHUTDOWN", _ ->
              Atomic.set stop true;
              ("bye", [])
          | "", _ -> fail "empty request"
          | v, _ -> fail "unknown verb %S" v
        with
        | status, payload -> ("OK " ^ status) :: payload
        | exception Bad_request m ->
            Atomic.incr req_errors;
            if Obs.enabled () then Obs.incr obs_errors;
            [ "ERR " ^ m ]
        | exception e ->
            Atomic.incr req_errors;
            if Obs.enabled () then Obs.incr obs_errors;
            [ "ERR internal: " ^ Printexc.to_string e ])
  in
  let us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  let failed =
    match response with
    | s :: _ -> String.length s >= 3 && String.sub s 0 3 = "ERR"
    | [] -> true
  in
  (match List.assoc_opt verb verb_latency with
  | Some h -> Obs.observe_always h us
  | None -> ());
  if failed then (
    match List.assoc_opt verb verb_errors with
    | Some c -> Atomic.incr c
    | None -> ());
  (match Atomic.get access_sink with
  | None -> ()
  | Some sink ->
      Ledger.Sink.write sink
        (Printf.sprintf
           "{\"ts\":%.6f,\"verb\":\"%s\",\"ok\":%b,\"us\":%d,\"lines\":%d}" t0
           (Ledger.Json.escape verb) (not failed) us (List.length response)));
  response

(* ------------------------------------------------------------------ *)
(* The server                                                           *)

type t = {
  srv_socket : string;
  srv_fd : Unix.file_descr;
  srv_stop : bool Atomic.t;
  srv_workers : unit Domain.t list;
  srv_joined : bool Atomic.t;
}

let socket_path t = t.srv_socket
let stopping t = Atomic.get t.srv_stop

(* How long a worker's accept poll sleeps: the bound on how stale the stop
   flag can look, i.e. the worst-case drain latency of an idle worker. *)
let poll_interval = 0.1

let handle_conn (stop : bool Atomic.t) (cfd : Unix.file_descr) : unit =
  (try Unix.clear_nonblock cfd with Unix.Unix_error _ -> ());
  let ic = Unix.in_channel_of_descr cfd in
  let oc = Unix.out_channel_of_descr cfd in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line ->
        let response = handle_request stop line in
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          response;
        output_string oc ".\n";
        flush oc;
        (* keep the connection for pipelined requests, but stop taking new
           work once shutdown was requested (drain semantics) *)
        if not (Atomic.get stop) then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      (* closing the out channel closes the shared fd; the in channel is
         dropped without close to avoid a double-close *)
      try close_out_noerr oc with _ -> ())
    loop

let worker_loop (stop : bool Atomic.t) (fd : Unix.file_descr) () : unit =
  while not (Atomic.get stop) do
    match Unix.select [ fd ] [] [] poll_interval with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept fd with
        | cfd, _ -> handle_conn stop cfd
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            ()
        | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
            Atomic.set stop true)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        Atomic.set stop true
  done

(** Warm the in-memory registry the daemon answers from: the full
    monomorphized table per kit (hydrated from the ambient store when
    warm, built and persisted when cold). *)
let warm ?(kits = [ Kits.neon_f32 ]) () : unit =
  List.iter
    (fun kit -> ignore (R.exo_table ~kit ~mr:table_mr ~nr:table_nr ()))
    kits

(** Start the daemon on a Unix socket: binds, warms the registry, then
    spawns [workers] accept domains (they share the listening socket).
    Returns immediately; use {!wait} to join. *)
let start ?(workers = 2) ?warm_kits ~socket () : t =
  if workers < 1 then invalid_arg "Serve.start: workers must be ≥ 1";
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX socket);
     Unix.listen fd 64;
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  started := Unix.gettimeofday ();
  warm ?kits:warm_kits ();
  let stop = Atomic.make false in
  let ws = List.init workers (fun _ -> Domain.spawn (worker_loop stop fd)) in
  {
    srv_socket = socket;
    srv_fd = fd;
    srv_stop = stop;
    srv_workers = ws;
    srv_joined = Atomic.make false;
  }

(** Ask the daemon to stop (what the SHUTDOWN verb does from outside). *)
let stop (t : t) : unit = Atomic.set t.srv_stop true

(** Join the worker domains (returns once every in-flight connection has
    drained), then close the listening socket and unlink its path.
    Idempotent: a second call (e.g. a cleanup path after an explicit
    wait) is a no-op. *)
let wait (t : t) : unit =
  if Atomic.compare_and_set t.srv_joined false true then begin
    List.iter Domain.join t.srv_workers;
    (try Unix.close t.srv_fd with Unix.Unix_error _ -> ());
    try Unix.unlink t.srv_socket with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* The client                                                           *)

module Client = struct
  (** One request/response round-trip: connect, send [line], read the
      status line and payload up to the ["."] terminator. *)
  let request ~socket (line : string) : string * string list =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
    | () ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        Fun.protect
          ~finally:(fun () -> try close_out_noerr oc with _ -> ())
          (fun () ->
            output_string oc line;
            output_char oc '\n';
            flush oc;
            let status =
              match input_line ic with
              | s -> s
              | exception End_of_file -> "ERR connection closed"
            in
            let rec read acc =
              match input_line ic with
              | "." -> List.rev acc
              | l -> read (l :: acc)
              | exception End_of_file -> List.rev acc
            in
            (status, read []))

  let ok (status : string) : bool =
    String.length status >= 2 && String.sub status 0 2 = "OK"
end
