(** The [ukrgen serve] kernel-compilation daemon and its client.

    A line-protocol server over a Unix-domain socket (stdlib/unix only):
    one request per line; the response is a status line ([OK ...] /
    [ERR ...]), zero or more payload lines, and a lone ["."]. Verbs:
    [PING], [GENERATE <kit> <MR>x<NR>], [LINT <kit> <MR>x<NR>],
    [TUNE <m> <n> <k>], [RUN <m> <n> <k> [count]], [STATS], [METRICS],
    [SHUTDOWN].

    Requests are answered from the warm in-memory {!Exo_blis.Registry}
    table (hydrated from the ambient {!Exo_cache.Store} when configured);
    run requests batch through {!Exo_blis.Gemm.batch_ba}. Each request
    runs under an Obs span ([serve.request]) and bumps always-on per-verb
    counters. [workers] domains share the listening socket; shutdown is
    graceful — in-flight connections drain before {!wait} returns. *)

type t

(** Dispatch one request line (exposed for in-process use: the bench's
    warm-latency measurement and the protocol tests). Returns the full
    response, status line first, without the ["."] terminator. Never
    raises; setting the passed stop flag is the SHUTDOWN verb's effect. *)
val handle_request : bool Atomic.t -> string -> string list

(** Warm the registry tables the daemon answers from (default:
    the Neon f32 kit's full 8×12 family table). *)
val warm : ?kits:Exo_ukr_gen.Kits.t list -> unit -> unit

(** Start the daemon: bind the socket, {!warm} the registry, spawn
    [workers] accept domains (default 2). Returns immediately. *)
val start : ?workers:int -> ?warm_kits:Exo_ukr_gen.Kits.t list ->
  socket:string -> unit -> t

(** The bound socket path. *)
val socket_path : t -> string

(** Has shutdown been requested (SHUTDOWN verb or {!stop})? *)
val stopping : t -> bool

(** Request shutdown from the owning process. *)
val stop : t -> unit

(** Join the workers (returns once in-flight connections have drained),
    close the listening socket, unlink its path. Idempotent. *)
val wait : t -> unit

(** [(total, errors, per-verb)] request counters since start or the last
    {!reset_request_counts} — always on, process-wide. Per-verb error
    counts and request-latency histograms (observed via
    {!Exo_obs.Obs.observe_always}, so they count even with tracing off —
    the one-atomic-branch contract is about tracing entry points, which
    are untouched) ride along; [STATS] reports latency p50/p95/p99 per
    verb and [METRICS] the full Prometheus-style exposition. *)
val request_counts : unit -> int * int * (string * int) list

(** Zero the totals, the per-verb counts and errors, and the per-verb
    latency histograms. *)
val reset_request_counts : unit -> unit

(** [set_access_log (Some path)] makes every request append one JSONL
    line ([ts], [verb], [ok], [us], response [lines]) through a
    size-rotated {!Exo_ledger.Ledger.Sink} (default cap 1 MiB, rotated to
    [path ^ ".1"]); [None] turns it off. Log-write failures are swallowed
    — the access log must never take a request down. *)
val set_access_log : ?max_bytes:int -> string option -> unit

(** The active access-log path, if any. *)
val access_log_path : unit -> string option

module Client : sig
  (** One round-trip: connect, send the request line, read status +
      payload up to the ["."] terminator. Raises [Unix.Unix_error] when
      the daemon is unreachable. *)
  val request : socket:string -> string -> string * string list

  (** Does a status line report success? *)
  val ok : string -> bool
end
