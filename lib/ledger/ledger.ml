(* The append-only performance run ledger. See the interface for the
   durability contract; the implementation notes that matter:

   - append is one [write] of one complete line on an [O_APPEND] fd under
     an advisory [lockf] — concurrent writers interleave whole records;
   - load never trusts the file: each line parses independently and a bad
     line (torn tail, hand edit) is counted, skipped, and reported;
   - the JSON layer below is deliberately tiny — the ledger depends on
     nothing beyond the stdlib, [unix], and [exo_obs] (for the shared git
     commit / identity fields). *)

module Obs = Exo_obs.Obs

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape (s : string) : string =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let num_to_string (v : float) : string =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.12g" v

  let rec to_string (j : t) : string =
    match j with
    | Null -> "null"
    | Bool b -> if b then "true" else "false"
    | Num v -> num_to_string v
    | Str s -> "\"" ^ escape s ^ "\""
    | Arr xs -> "[" ^ String.concat "," (List.map to_string xs) ^ "]"
    | Obj kvs ->
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) kvs)
        ^ "}"

  exception Bad of string

  (* recursive descent over a string; [pos] is the cursor *)
  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          let c = s.[!pos] in
          advance ();
          if c = '"' then Buffer.contents b
          else if c = '\\' then begin
            (if !pos >= n then fail "unterminated escape"
             else
               let e = s.[!pos] in
               advance ();
               match e with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 't' -> Buffer.add_char b '\t'
               | 'r' -> Buffer.add_char b '\r'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   pos := !pos + 4;
                   let cp =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   (* UTF-8 encode the BMP code point *)
                   if cp < 0x80 then Buffer.add_char b (Char.chr cp)
                   else if cp < 0x800 then begin
                     Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
                     Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                   end
                   else begin
                     Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
                     Buffer.add_char b
                       (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                     Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                   end
               | _ -> fail "bad escape");
            go ()
          end
          else begin
            Buffer.add_char b c;
            go ()
          end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let numchar c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && numchar s.[!pos] do
        advance ()
      done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some v -> v
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected , or }"
            in
            Obj (members [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected , or ]"
            in
            Arr (elems [])
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let str = function Str s -> Some s | _ -> None
  let num = function Num v -> Some v | _ -> None
  let bool_ = function Bool b -> Some b | _ -> None
  let list_ = function Arr xs -> Some xs | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Robust statistics                                                   *)

module Stats = struct
  let median (xs : float list) : float =
    match List.sort compare xs with
    | [] -> 0.0
    | sorted ->
        let n = List.length sorted in
        let a = Array.of_list sorted in
        if n mod 2 = 1 then a.(n / 2)
        else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

  let mad (xs : float list) : float =
    match xs with
    | [] -> 0.0
    | _ ->
        let m = median xs in
        median (List.map (fun x -> Float.abs (x -. m)) xs)
end

(* ------------------------------------------------------------------ *)
(* Rotating JSONL sink                                                 *)

module Sink = struct
  type t = { s_path : string; s_max : int; s_lock : Mutex.t }

  let create ?(max_bytes = 1_048_576) path =
    { s_path = path; s_max = max_bytes; s_lock = Mutex.create () }

  let path t = t.s_path

  let write t (line : string) : unit =
    Mutex.protect t.s_lock (fun () ->
        try
          (try
             if (Unix.stat t.s_path).Unix.st_size >= t.s_max then
               Unix.rename t.s_path (t.s_path ^ ".1")
           with Unix.Unix_error _ -> ());
          let fd =
            Unix.openfile t.s_path
              [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
              0o644
          in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              let b = Bytes.of_string (line ^ "\n") in
              ignore (Unix.write fd b 0 (Bytes.length b)))
        with Unix.Unix_error _ | Sys_error _ -> ())
end

(* ------------------------------------------------------------------ *)
(* Records                                                             *)

type dir = Higher | Lower | Info

type metric = {
  m_name : string;
  m_value : float;
  m_median : float;
  m_mad : float;
  m_n : int;
  m_dir : dir;
  m_unit : string;
}

let metric ?(unit_ = "") dir name value =
  {
    m_name = name;
    m_value = value;
    m_median = value;
    m_mad = 0.0;
    m_n = 1;
    m_dir = dir;
    m_unit = unit_;
  }

let metric_of_samples ?(unit_ = "") dir name (samples : float list) =
  match samples with
  | [] -> metric ~unit_ dir name 0.0
  | _ ->
      let med = Stats.median samples in
      let best =
        match dir with
        | Higher -> List.fold_left Float.max neg_infinity samples
        | Lower -> List.fold_left Float.min infinity samples
        | Info -> med
      in
      {
        m_name = name;
        m_value = best;
        m_median = med;
        m_mad = Stats.mad samples;
        m_n = List.length samples;
        m_dir = dir;
        m_unit = unit_;
      }

type record = {
  r_schema : int;
  r_time : float;
  r_bench : string;
  r_commit : string;
  r_host_cores : int;
  r_pool_jobs : int;
  r_ocaml : string;
  r_flambda : bool option;
  r_metrics : metric list;
}

let schema_version = 1

let record ?time ?flambda ~pool_jobs ~bench metrics =
  {
    r_schema = schema_version;
    r_time = (match time with Some t -> t | None -> Unix.gettimeofday ());
    r_bench = bench;
    r_commit = Obs.Meta.git_commit ();
    r_host_cores = Domain.recommended_domain_count ();
    r_pool_jobs = pool_jobs;
    r_ocaml = Sys.ocaml_version;
    r_flambda = flambda;
    r_metrics = metrics;
  }

(* the git commit is deliberately absent: same-host cross-commit
   comparison is the ledger's purpose *)
let fingerprint (r : record) : string =
  Printf.sprintf "%s|cores=%d|jobs=%d|ocaml=%s|flambda=%s" r.r_bench
    r.r_host_cores r.r_pool_jobs r.r_ocaml
    (match r.r_flambda with
    | None -> "?"
    | Some true -> "y"
    | Some false -> "n")

let dir_to_string = function
  | Higher -> "higher"
  | Lower -> "lower"
  | Info -> "info"

let dir_of_string = function
  | "higher" -> Some Higher
  | "lower" -> Some Lower
  | "info" -> Some Info
  | _ -> None

let metric_to_json (m : metric) : Json.t =
  Json.Obj
    [
      ("name", Json.Str m.m_name);
      ("value", Json.Num m.m_value);
      ("median", Json.Num m.m_median);
      ("mad", Json.Num m.m_mad);
      ("n", Json.Num (float_of_int m.m_n));
      ("dir", Json.Str (dir_to_string m.m_dir));
      ("unit", Json.Str m.m_unit);
    ]

let to_json (r : record) : string =
  Json.to_string
    (Json.Obj
       ([
          ("schema", Json.Num (float_of_int r.r_schema));
          ("time", Json.Num r.r_time);
          ("bench", Json.Str r.r_bench);
          ("git_commit", Json.Str r.r_commit);
          ("host_cores", Json.Num (float_of_int r.r_host_cores));
          ("pool_jobs", Json.Num (float_of_int r.r_pool_jobs));
          ("ocaml_version", Json.Str r.r_ocaml);
        ]
       @ (match r.r_flambda with
         | None -> []
         | Some f -> [ ("flambda", Json.Bool f) ])
       @ [ ("metrics", Json.Arr (List.map metric_to_json r.r_metrics)) ]))

let metric_of_json (j : Json.t) : metric option =
  let ( let* ) = Option.bind in
  let* name = Option.bind (Json.member "name" j) Json.str in
  let* value = Option.bind (Json.member "value" j) Json.num in
  let* dir = Option.bind (Option.bind (Json.member "dir" j) Json.str) dir_of_string in
  let field k default =
    match Option.bind (Json.member k j) Json.num with
    | Some v -> v
    | None -> default
  in
  Some
    {
      m_name = name;
      m_value = value;
      m_median = field "median" value;
      m_mad = field "mad" 0.0;
      m_n = int_of_float (field "n" 1.0);
      m_dir = dir;
      m_unit =
        (match Option.bind (Json.member "unit" j) Json.str with
        | Some u -> u
        | None -> "");
    }

let of_json (j : Json.t) : record option =
  let ( let* ) = Option.bind in
  let* schema = Option.bind (Json.member "schema" j) Json.num in
  let* time = Option.bind (Json.member "time" j) Json.num in
  let* bench = Option.bind (Json.member "bench" j) Json.str in
  let* commit = Option.bind (Json.member "git_commit" j) Json.str in
  let* cores = Option.bind (Json.member "host_cores" j) Json.num in
  let* jobs = Option.bind (Json.member "pool_jobs" j) Json.num in
  let* ocaml = Option.bind (Json.member "ocaml_version" j) Json.str in
  let* ms = Option.bind (Json.member "metrics" j) Json.list_ in
  let metrics = List.filter_map metric_of_json ms in
  if List.length metrics <> List.length ms then None
  else
    Some
      {
        r_schema = int_of_float schema;
        r_time = time;
        r_bench = bench;
        r_commit = commit;
        r_host_cores = int_of_float cores;
        r_pool_jobs = int_of_float jobs;
        r_ocaml = ocaml;
        r_flambda = Option.bind (Json.member "flambda" j) Json.bool_;
        r_metrics = metrics;
      }

let append ~path (r : record) : unit =
  let line = to_json r ^ "\n" in
  (* O_RDWR, not O_WRONLY: the torn-tail probe below reads the last byte
     (O_APPEND still lands every write at EOF) *)
  let fd =
    Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      (* advisory whole-file lock; O_APPEND alone already lands each
         single write at EOF, the lock serializes against readers that
         care *)
      (try Unix.lockf fd Unix.F_LOCK 0 with Unix.Unix_error _ -> ());
      Fun.protect
        ~finally:(fun () ->
          try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
        (fun () ->
          (* heal a torn tail: if a previous writer died mid-line the file
             ends without '\n' — gluing this record onto that line would
             corrupt it too, so start a fresh line (the torn one stays
             corrupt and is skipped by load, this record survives) *)
          let torn =
            try
              let size = (Unix.fstat fd).Unix.st_size in
              size > 0
              &&
              let b = Bytes.create 1 in
              ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
              Unix.read fd b 0 1 = 1 && Bytes.get b 0 <> '\n'
            with Unix.Unix_error _ -> false
          in
          let line = if torn then "\n" ^ line else line in
          let b = Bytes.of_string line in
          let n = Unix.write fd b 0 (Bytes.length b) in
          if n <> Bytes.length b then failwith "ledger: short write"))

let load ~path : record list * int =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let ic = open_in_bin path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (* a final line without its newline is a torn write: corrupt *)
    let complete, torn =
      match String.rindex_opt content '\n' with
      | None -> ("", if content = "" then 0 else 1)
      | Some i ->
          ( String.sub content 0 i,
            if i = String.length content - 1 then 0 else 1 )
    in
    let records = ref [] and skipped = ref torn in
    String.split_on_char '\n' complete
    |> List.iter (fun line ->
           if String.trim line <> "" then
             match Json.parse line with
             | Ok j -> (
                 match of_json j with
                 | Some r -> records := r :: !records
                 | None -> incr skipped)
             | Error _ -> incr skipped);
    (List.rev !records, !skipped)
  end

let env_path () = Sys.getenv_opt "UKRGEN_LEDGER"

(* ------------------------------------------------------------------ *)
(* Regression detection                                                *)

type verdict = {
  v_bench : string;
  v_metric : string;
  v_unit : string;
  v_dir : dir;
  v_current : float;
  v_n_baseline : int;
  v_baseline : float;
  v_noise : float;
  v_regressed : bool;
}

let check ?(baseline = 5) ?(mad_k = 4.0) ?(min_rel = 0.10)
    (records : record list) : verdict list =
  (* group by bench, preserving file (= append) order *)
  let benches = ref [] in
  List.iter
    (fun r ->
      if not (List.mem r.r_bench !benches) then benches := r.r_bench :: !benches)
    records;
  List.rev !benches
  |> List.concat_map (fun bench ->
         let runs = List.filter (fun r -> r.r_bench = bench) records in
         match List.rev runs with
         | [] -> []
         | current :: earlier_rev ->
             let fp = fingerprint current in
             let window =
               List.filter (fun r -> fingerprint r = fp) earlier_rev
               |> List.filteri (fun i _ -> i < baseline)
             in
             current.r_metrics
             |> List.filter_map (fun m ->
                    if m.m_dir = Info then None
                    else begin
                      let history =
                        List.filter_map
                          (fun r ->
                            List.find_opt
                              (fun m' -> m'.m_name = m.m_name)
                              r.r_metrics
                            |> Option.map (fun m' -> m'.m_value))
                          window
                      in
                      match history with
                      | [] ->
                          Some
                            {
                              v_bench = bench;
                              v_metric = m.m_name;
                              v_unit = m.m_unit;
                              v_dir = m.m_dir;
                              v_current = m.m_value;
                              v_n_baseline = 0;
                              v_baseline = Float.nan;
                              v_noise = Float.nan;
                              v_regressed = false;
                            }
                      | _ ->
                          let bmed = Stats.median history in
                          let noise =
                            Float.max
                              (mad_k *. Stats.mad history)
                              (Float.max
                                 (min_rel *. Float.abs bmed)
                                 (mad_k *. m.m_mad))
                          in
                          let regressed =
                            match m.m_dir with
                            | Higher -> m.m_value < bmed -. noise
                            | Lower -> m.m_value > bmed +. noise
                            | Info -> false
                          in
                          Some
                            {
                              v_bench = bench;
                              v_metric = m.m_name;
                              v_unit = m.m_unit;
                              v_dir = m.m_dir;
                              v_current = m.m_value;
                              v_n_baseline = List.length history;
                              v_baseline = bmed;
                              v_noise = noise;
                              v_regressed = regressed;
                            }
                    end))

(* ------------------------------------------------------------------ *)
(* The report                                                          *)

module Report = struct
  type attribution = {
    at_bench : string;
    at_commit : string;
    at_time : float;
    at_dim : int option;
    at_measured : float;
    at_model : float;
    at_peak : float option;
    at_dram_mb : float option;
    at_efficiency : float;
    at_phases : (string * float) list;
  }

  type t = {
    rp_path : string;
    rp_records : record list;
    rp_skipped : int;
    rp_baseline : int;
    rp_gate : float;
    rp_verdicts : verdict list;
    rp_attribution : attribution option;
  }

  let find_metric (r : record) name =
    List.find_opt (fun m -> m.m_name = name) r.r_metrics
    |> Option.map (fun m -> m.m_value)

  let phase_prefix = "attr.phase."

  let attribution_of (r : record) : attribution option =
    match (find_metric r "attr.measured_gflops", find_metric r "attr.model_gflops")
    with
    | Some measured, Some model when model > 0.0 ->
        Some
          {
            at_bench = r.r_bench;
            at_commit = r.r_commit;
            at_time = r.r_time;
            at_dim = Option.map int_of_float (find_metric r "attr.dim");
            at_measured = measured;
            at_model = model;
            at_peak = find_metric r "attr.model_peak_gflops";
            at_dram_mb = find_metric r "attr.sim_dram_mb";
            at_efficiency = measured /. model;
            at_phases =
              List.filter_map
                (fun m ->
                  let p = phase_prefix and l = String.length phase_prefix in
                  if
                    String.length m.m_name > l
                    && String.sub m.m_name 0 l = p
                  then
                    Some
                      ( String.sub m.m_name l (String.length m.m_name - l),
                        m.m_value )
                  else None)
                r.r_metrics;
          }
    | _ -> None

  let is_smoke bench =
    let suf = "-smoke" and l = String.length bench in
    l >= 6 && String.sub bench (l - 6) 6 = suf

  let build ?(baseline = 5) ?(mad_k = 4.0) ?(min_rel = 0.10) ?(gate = 0.02)
      ?bench ~path ((records, skipped) : record list * int) : t =
    let records =
      match bench with
      | None -> records
      | Some b -> List.filter (fun r -> r.r_bench = b) records
    in
    (* latest attributed record; prefer full runs over -smoke *)
    let attributed =
      List.filter (fun r -> attribution_of r <> None) records
    in
    let pick =
      match List.rev (List.filter (fun r -> not (is_smoke r.r_bench)) attributed)
      with
      | r :: _ -> Some r
      | [] -> ( match List.rev attributed with r :: _ -> Some r | [] -> None)
    in
    {
      rp_path = path;
      rp_records = records;
      rp_skipped = skipped;
      rp_baseline = baseline;
      rp_gate = gate;
      rp_verdicts = check ~baseline ~mad_k ~min_rel records;
      rp_attribution = Option.bind pick attribution_of;
    }

  let regressions (t : t) = List.filter (fun v -> v.v_regressed) t.rp_verdicts

  let efficiency_ok (t : t) =
    match t.rp_attribution with
    | None -> true
    | Some a -> a.at_efficiency >= t.rp_gate

  let ok (t : t) = regressions t = [] && efficiency_ok t

  let time_str (epoch : float) : string =
    let tm = Unix.gmtime epoch in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min

  let dir_arrow = function Higher -> "^" | Lower -> "v" | Info -> "-"

  let render (t : t) : string =
    let b = Buffer.create 4096 in
    let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    pf "run ledger %s: %d record(s), %d corrupt line(s) skipped\n" t.rp_path
      (List.length t.rp_records) t.rp_skipped;
    let benches = ref [] in
    List.iter
      (fun r ->
        if not (List.mem r.r_bench !benches) then
          benches := r.r_bench :: !benches)
      t.rp_records;
    List.iter
      (fun bench ->
        let runs =
          List.filter (fun r -> r.r_bench = bench) t.rp_records
        in
        pf "\n== %s (%d run(s)) ==\n" bench (List.length runs);
        let total = List.length runs in
        List.iteri
          (fun i r ->
            if total - i <= 8 then begin
              let gated =
                List.filter (fun m -> m.m_dir <> Info) r.r_metrics
                |> List.filteri (fun j _ -> j < 3)
              in
              pf "  %s %-9s %s%s\n" (time_str r.r_time) r.r_commit
                (String.concat "  "
                   (List.map
                      (fun m -> Printf.sprintf "%s=%.4g" m.m_name m.m_value)
                      gated))
                (if i = total - 1 then "   <- current" else "")
            end)
          runs;
        let verdicts =
          List.filter (fun v -> v.v_bench = bench) t.rp_verdicts
        in
        if verdicts <> [] then begin
          pf "  verdicts vs baseline (window %d, same host fingerprint):\n"
            t.rp_baseline;
          List.iter
            (fun v ->
              if v.v_n_baseline = 0 then
                pf "    %-34s %s  current %12.4g   (no comparable history)\n"
                  v.v_metric (dir_arrow v.v_dir) v.v_current
              else
                pf
                  "    %-34s %s  current %12.4g   baseline %12.4g +-%.4g \
                   (n=%d)   %s\n"
                  v.v_metric (dir_arrow v.v_dir) v.v_current v.v_baseline
                  v.v_noise v.v_n_baseline
                  (if v.v_regressed then "REGRESSED" else "ok"))
            verdicts
        end)
      (List.rev !benches);
    (match t.rp_attribution with
    | None -> ()
    | Some a ->
        pf "\nattribution — %s @ %s%s\n" a.at_bench a.at_commit
          (match a.at_dim with
          | Some d -> Printf.sprintf " (dim %d)" d
          | None -> "");
        pf "  measured            %10.3f GFLOPS\n" a.at_measured;
        pf "  model (analytical)  %10.3f GFLOPS   efficiency %.4f (gate %.4f: %s)\n"
          a.at_model a.at_efficiency t.rp_gate
          (if a.at_efficiency >= t.rp_gate then "ok" else "BELOW GATE");
        (match a.at_peak with
        | Some p -> pf "  model peak          %10.3f GFLOPS\n" p
        | None -> ());
        (match a.at_dram_mb with
        | Some d -> pf "  sim DRAM traffic    %10.1f MB predicted\n" d
        | None -> ());
        if a.at_phases <> [] then begin
          let tot =
            List.fold_left (fun acc (_, s) -> acc +. s) 0.0 a.at_phases
          in
          pf "  phase breakdown (traced serial run):\n";
          List.iter
            (fun (name, s) ->
              pf "    %-14s %9.4f s  %5.1f%%\n" name s
                (if tot > 0.0 then 100.0 *. s /. tot else 0.0))
            a.at_phases
        end);
    let regs = regressions t in
    pf "\n%s\n"
      (if regs = [] && efficiency_ok t then "report: ok"
       else
         Printf.sprintf "report: %d regression(s)%s" (List.length regs)
           (if efficiency_ok t then "" else ", efficiency below gate"));
    Buffer.contents b

  let verdict_json (v : verdict) : Json.t =
    Json.Obj
      [
        ("bench", Json.Str v.v_bench);
        ("metric", Json.Str v.v_metric);
        ("unit", Json.Str v.v_unit);
        ("dir", Json.Str (dir_to_string v.v_dir));
        ("current", Json.Num v.v_current);
        ("n_baseline", Json.Num (float_of_int v.v_n_baseline));
        ( "baseline",
          if Float.is_nan v.v_baseline then Json.Null else Json.Num v.v_baseline
        );
        ("noise", if Float.is_nan v.v_noise then Json.Null else Json.Num v.v_noise);
        ("regressed", Json.Bool v.v_regressed);
      ]

  let to_json (t : t) : string =
    let attribution =
      match t.rp_attribution with
      | None -> Json.Null
      | Some a ->
          Json.Obj
            ([
               ("bench", Json.Str a.at_bench);
               ("git_commit", Json.Str a.at_commit);
               ("time", Json.Num a.at_time);
             ]
            @ (match a.at_dim with
              | Some d -> [ ("dim", Json.Num (float_of_int d)) ]
              | None -> [])
            @ [
                ("measured_gflops", Json.Num a.at_measured);
                ("model_gflops", Json.Num a.at_model);
              ]
            @ (match a.at_peak with
              | Some p -> [ ("model_peak_gflops", Json.Num p) ]
              | None -> [])
            @ (match a.at_dram_mb with
              | Some d -> [ ("sim_dram_mb", Json.Num d) ]
              | None -> [])
            @ [
                ("efficiency", Json.Num a.at_efficiency);
                ("efficiency_ok", Json.Bool (efficiency_ok t));
                ( "phases",
                  Json.Arr
                    (List.map
                       (fun (name, s) ->
                         Json.Obj
                           [ ("name", Json.Str name); ("seconds", Json.Num s) ])
                       a.at_phases) );
              ])
    in
    Json.to_string
      (Json.Obj
         [
           ("schema_version", Json.Num (float_of_int schema_version));
           ( "ledger",
             Json.Obj
               [
                 ("path", Json.Str t.rp_path);
                 ("records", Json.Num (float_of_int (List.length t.rp_records)));
                 ("skipped", Json.Num (float_of_int t.rp_skipped));
               ] );
           ("baseline_window", Json.Num (float_of_int t.rp_baseline));
           ("efficiency_gate", Json.Num t.rp_gate);
           ("regressions", Json.Num (float_of_int (List.length (regressions t))));
           ("ok", Json.Bool (ok t));
           ("verdicts", Json.Arr (List.map verdict_json t.rp_verdicts));
           ("attribution", attribution);
         ])
end
