(** The append-only performance run ledger.

    Every bench subcommand and the tuner append one JSONL record per run —
    keyed by the same identity fields as {!Exo_obs.Obs.Meta.json} (git
    commit, host cores, pool jobs, ocaml version, flambda) plus robust
    per-metric statistics — and [ukrgen report] replays the file to render
    the performance trajectory, flag regressions beyond a noise bound, and
    print the measured-vs-model attribution table. Stdlib + [unix] only,
    like the rest of the observability stack.

    {2 Durability contract}

    Appends are one [O_APPEND] write of one complete line under an
    advisory [lockf], so concurrent writers (parallel CI jobs, a bench
    racing a tuner) interleave whole records, never bytes. Loading is
    corruption-tolerant: a line that does not parse — a torn write at the
    tail, a hand-edit gone wrong — is counted and skipped, never fatal.
    The file is never rewritten in place; history is the point. *)

(** {1 Minimal JSON} — parser + printer for the ledger's own lines and the
    daemon access log. Not a general-purpose library: numbers are floats,
    objects are assoc lists in input order. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  (** Whole-string parse; trailing garbage is an error. *)

  val to_string : t -> string
  (** One line, no newlines; integral floats print without a [.]. *)

  val escape : string -> string
  (** JSON string-body escaping (quotes, backslash, control chars). *)

  (** Accessors, [None] on shape mismatch. *)

  val member : string -> t -> t option
  val str : t -> string option
  val num : t -> float option
  val bool_ : t -> bool option
  val list_ : t -> t list option
end

(** {1 Robust statistics} *)

module Stats : sig
  val median : float list -> float
  (** 0 on the empty list. *)

  val mad : float list -> float
  (** Median absolute deviation from the median; 0 on empty. *)
end

(** {1 Rotating JSONL sink} — the daemon access log. *)

module Sink : sig
  type t

  val create : ?max_bytes:int -> string -> t
  (** A size-rotated JSONL sink at the given path. When an append finds
      the file at or over [max_bytes] (default 1 MiB) it first renames it
      to [path ^ ".1"] (replacing any previous rotation), so the pair
      bounds disk use at roughly [2 * max_bytes]. *)

  val path : t -> string

  val write : t -> string -> unit
  (** Append one line (a ['\n'] is added). Serialized by an internal
      mutex across domains; write failures are swallowed — losing an
      access-log line must never take a request down. *)
end

(** {1 Records} *)

type dir =
  | Higher  (** bigger is better — regression = drop below the bound *)
  | Lower  (** smaller is better — regression = rise above the bound *)
  | Info  (** context only (dims, model predictions) — never gated *)

type metric = {
  m_name : string;
  m_value : float;  (** the headline value (best-of-k for sampled runs) *)
  m_median : float;
  m_mad : float;  (** within-run noise; 0 for single-shot metrics *)
  m_n : int;  (** sample count behind the statistics *)
  m_dir : dir;
  m_unit : string;
}

val metric : ?unit_:string -> dir -> string -> float -> metric
(** A single-shot metric: value = median, mad 0, n 1. *)

val metric_of_samples : ?unit_:string -> dir -> string -> float list -> metric
(** Robust statistics over the samples; the headline value is the best
    sample in [dir]'s sense ([Info] reports the median). *)

type record = {
  r_schema : int;
  r_time : float;  (** Unix epoch seconds at record time *)
  r_bench : string;  (** e.g. ["perf-gemm"], ["perf-sim-smoke"], ["tune 784x512x256"] *)
  r_commit : string;
  r_host_cores : int;
  r_pool_jobs : int;
  r_ocaml : string;
  r_flambda : bool option;
  r_metrics : metric list;
}

val schema_version : int
(** Of the ledger line format itself (independent of
    {!Exo_obs.Obs.Meta.schema_version}, which versions the BENCH_*.json
    shapes). *)

val record :
  ?time:float ->
  ?flambda:bool ->
  pool_jobs:int ->
  bench:string ->
  metric list ->
  record
(** Stamp a record with the ambient identity: current time, git commit
    via {!Exo_obs.Obs.Meta.git_commit}, host cores, ocaml version. *)

val fingerprint : record -> string
(** The host-comparability key: bench, host cores, pool jobs, ocaml
    version, flambda — and deliberately {e not} the git commit, since
    comparing across commits on the same host is the whole point. *)

val to_json : record -> string
(** One line, no trailing newline. *)

val of_json : Json.t -> record option

val append : path:string -> record -> unit
(** Append one line atomically (see the durability contract). If the file
    ends mid-line (a writer died mid-write), the new record starts a
    fresh line rather than gluing onto the torn one — the torn line stays
    corrupt, this record survives. Raises [Unix.Unix_error] only if the
    file cannot be opened or written at all. *)

val load : path:string -> record list * int
(** All parseable records in file order, plus the count of corrupt or
    torn lines skipped. A missing file is [([], 0)]. *)

val env_path : unit -> string option
(** [$UKRGEN_LEDGER], the ambient default ledger path. *)

(** {1 Regression detection} *)

type verdict = {
  v_bench : string;
  v_metric : string;
  v_unit : string;
  v_dir : dir;
  v_current : float;
  v_n_baseline : int;  (** 0 = no comparable history, never a regression *)
  v_baseline : float;  (** baseline-window median; [nan] when none *)
  v_noise : float;  (** the tolerated band around the baseline median *)
  v_regressed : bool;
}

val check :
  ?baseline:int -> ?mad_k:float -> ?min_rel:float -> record list -> verdict list
(** For each bench, compare its latest record against the up-to-[baseline]
    (default 5) most recent earlier records with the same {!fingerprint}.
    A gated metric regresses when it falls outside
    [baseline_median ± noise] in its direction, where [noise] is the
    largest of [mad_k * baseline_mad] (default [mad_k] 4), [min_rel *
    |baseline_median|] (default 10%), and [mad_k * current_within_run_mad]
    — so a run that honestly reports high intra-run noise is not flagged
    on that noise. [Info] metrics get no verdict. *)

(** {1 The report} — what [ukrgen report] renders. *)

module Report : sig
  (** The measured-vs-model attribution pulled from the latest record
      carrying [attr.*] metrics (full runs preferred over [-smoke]). *)
  type attribution = {
    at_bench : string;
    at_commit : string;
    at_time : float;
    at_dim : int option;  (** problem size, from [attr.dim] *)
    at_measured : float;  (** measured GFLOPS, [attr.measured_gflops] *)
    at_model : float;  (** analytical-model GFLOPS, [attr.model_gflops] *)
    at_peak : float option;  (** machine peak, [attr.model_peak_gflops] *)
    at_dram_mb : float option;  (** cache-sim DRAM traffic, [attr.sim_dram_mb] *)
    at_efficiency : float;  (** measured / model *)
    at_phases : (string * float) list;  (** [attr.phase.<name>] seconds *)
  }

  type t = {
    rp_path : string;
    rp_records : record list;  (** file order *)
    rp_skipped : int;
    rp_baseline : int;
    rp_gate : float;  (** measured/model efficiency threshold *)
    rp_verdicts : verdict list;
    rp_attribution : attribution option;
  }

  val build :
    ?baseline:int ->
    ?mad_k:float ->
    ?min_rel:float ->
    ?gate:float ->
    ?bench:string ->
    path:string ->
    record list * int ->
    t
  (** [gate] defaults to 0.02 — scalar OCaml against a model that assumes
      full SIMD issue sits near 0.1, so the gate catches collapses, not
      the vectorization gap. [bench] restricts both verdicts and the
      attribution source to one bench. *)

  val regressions : t -> verdict list
  val efficiency_ok : t -> bool
  (** Vacuously true when there is no attribution record. *)

  val ok : t -> bool
  (** No regressions and {!efficiency_ok}. *)

  val render : t -> string
  (** Human-readable trajectory + verdicts + attribution table. *)

  val to_json : t -> string
  (** The [report.json] artifact: ledger summary, verdict list,
      attribution object, overall [ok]. *)
end
