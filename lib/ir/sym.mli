(** Unique symbols.

    Every binder in the IR (procedure arguments, loop variables, allocations)
    is a [Sym.t]: a human-readable name paired with a globally unique id.
    Scheduling rewrites freely duplicate and move code, so name capture must
    be impossible by construction; comparing symbols compares ids only. *)

type t

(** [fresh name] — a new symbol with a new id. *)
val fresh : string -> t

(** [clone s] — a fresh symbol with the same display name. *)
val clone : t -> t

(** [ensure_above n] — guarantee every future {!fresh} id is [> n]. Call
    after unmarshaling a proc from another process (see
    {!Exo_ir.Ir.proc_max_sym_id}) so its foreign ids can never collide
    with symbols created here. *)
val ensure_above : int -> unit

val name : t -> string
val id : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Display name only. *)
val pp : Format.formatter -> t -> unit

(** [name#id], for debugging shadowing/capture issues. *)
val pp_debug : Format.formatter -> t -> unit

val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
