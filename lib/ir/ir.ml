(** Core intermediate representation.

    A deliberately small loop-nest IR mirroring the fragment of Exo's object
    language that the CGO'24 micro-kernel generator exercises: perfect and
    imperfect [seq] loop nests, buffer assignment and reduction, local
    allocations annotated with a memory space, instruction calls (procedures
    carrying an [@instr] annotation), and guards for edge cases.

    Index expressions and scalar data expressions share one [expr] type; the
    checker ({!Exo_check}) enforces the sorting discipline (loop bounds and
    subscripts are integer-typed, right-hand sides are data-typed). *)

type binop = Add | Sub | Mul | Div | Mod
type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Int of int
  | Float of float
  | Var of Sym.t  (** size parameter, loop variable, or scalar argument *)
  | Read of Sym.t * expr list  (** [buf\[i0, …\]]; scalars read with [[]] *)
  | Binop of binop * expr * expr
  | Neg of expr
  | Cmp of cmpop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Stride of Sym.t * int
      (** [stride(buf, dim)] — occurs only in instruction preconditions *)

(** One dimension of a window: either a single point (reducing rank) or a
    half-open interval [lo:hi] (keeping the dimension, extent [hi - lo]). *)
type waccess = Pt of expr | Iv of expr * expr

(** A window into a buffer, used as a tensor argument of an instruction call,
    e.g. [C_reg\[jt, it, 0:4\]]. *)
type window = { wbuf : Sym.t; widx : waccess list }

type typ =
  | TSize  (** positive runtime-constant extent, e.g. [KC: size] *)
  | TIndex  (** integer index argument, e.g. the lane selector of an fmla *)
  | TBool
  | TScalar of Dtype.t
  | TTensor of Dtype.t * expr list
      (** dims may mention size parameters, e.g. [f32\[KC, 8\]] *)

type arg = { a_name : Sym.t; a_typ : typ; a_mem : Mem.t }

type stmt =
  | SAssign of Sym.t * expr list * expr  (** [buf\[idx\] = e] *)
  | SReduce of Sym.t * expr list * expr  (** [buf\[idx\] += e] *)
  | SFor of Sym.t * expr * expr * stmt list  (** [for v in seq(lo, hi)] *)
  | SAlloc of Sym.t * Dtype.t * expr list * Mem.t
  | SCall of proc * call_arg list
  | SIf of expr * stmt list * stmt list

and call_arg = AExpr of expr | AWin of window

and proc = {
  p_name : string;
  p_args : arg list;
  p_preds : expr list;  (** [assert]s on arguments *)
  p_body : stmt list;
  p_instr : instr_info option;
      (** present iff this proc is a hardware instruction definition *)
}

(** The externalized hardware-library half of an [@instr] definition: a C
    template whose [{name_data}] / [{name}] holes are filled by the code
    emitter, headers the emitted file must include, and a coarse op class
    consumed by the performance simulator's trace census. *)
and instr_info = { ci_fmt : string; ci_includes : string list; ci_kind : op_kind }

and op_kind =
  | KLoad  (** vector load from addressable memory *)
  | KStore  (** vector store to addressable memory *)
  | KFma  (** fused multiply-accumulate *)
  | KBcast  (** broadcast / dup *)
  | KArith  (** other vector arithmetic *)
  | KOther

(* ------------------------------------------------------------------ *)
(* Constructors and small helpers                                      *)

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let cmpop_name = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let mk_proc ?(preds = []) ?instr ~name ~args body =
  { p_name = name; p_args = args; p_preds = preds; p_body = body; p_instr = instr }

let is_instr p = Option.is_some p.p_instr

let arg ?(mem = Mem.dram) name typ = { a_name = name; a_typ = typ; a_mem = mem }

(** Extent of a window access: [None] for a point (rank-reducing). *)
let waccess_extent = function Pt _ -> None | Iv (lo, hi) -> Some (Binop (Sub, hi, lo))

let window_rank w =
  List.length (List.filter (function Iv _ -> true | Pt _ -> false) w.widx)

(* ------------------------------------------------------------------ *)
(* Structural traversal                                                *)

(** [map_expr f e] applies [f] bottom-up to every sub-expression. *)
let rec map_expr f e =
  let r = map_expr f in
  let e' =
    match e with
    | Int _ | Float _ | Var _ | Stride _ -> e
    | Read (b, idx) -> Read (b, List.map r idx)
    | Binop (op, a, b) -> Binop (op, r a, r b)
    | Neg a -> Neg (r a)
    | Cmp (op, a, b) -> Cmp (op, r a, r b)
    | And (a, b) -> And (r a, r b)
    | Or (a, b) -> Or (r a, r b)
    | Not a -> Not (r a)
  in
  f e'

let map_waccess f = function
  | Pt e -> Pt (f e)
  | Iv (lo, hi) -> Iv (f lo, f hi)

let map_window f w = { w with widx = List.map (map_waccess f) w.widx }

let map_call_arg f = function
  | AExpr e -> AExpr (f e)
  | AWin w -> AWin (map_window f w)

(** [map_stmt_exprs f s] applies [f] to every expression contained in [s]
    (recursively through nested statements). Binders are untouched. *)
let rec map_stmt_exprs f s =
  match s with
  | SAssign (b, idx, e) -> SAssign (b, List.map f idx, f e)
  | SReduce (b, idx, e) -> SReduce (b, List.map f idx, f e)
  | SFor (v, lo, hi, body) -> SFor (v, f lo, f hi, List.map (map_stmt_exprs f) body)
  | SAlloc (b, dt, dims, mem) -> SAlloc (b, dt, List.map f dims, mem)
  | SCall (p, args) -> SCall (p, List.map (map_call_arg f) args)
  | SIf (c, t, e) ->
      SIf (f c, List.map (map_stmt_exprs f) t, List.map (map_stmt_exprs f) e)

let map_body_exprs f body = List.map (map_stmt_exprs f) body

(** [iter_stmts f body] calls [f] on every statement, outer-first. *)
let rec iter_stmts f body =
  List.iter
    (fun s ->
      f s;
      match s with
      | SFor (_, _, _, b) -> iter_stmts f b
      | SIf (_, t, e) ->
          iter_stmts f t;
          iter_stmts f e
      | SAssign _ | SReduce _ | SAlloc _ | SCall _ -> ())
    body

(** Fold over every expression occurring in a statement list (subscripts,
    bounds, rhs, alloc dims, call arguments, guards). *)
let fold_exprs f acc body =
  let acc = ref acc in
  let visit e = acc := f !acc e in
  let visit_ca = function
    | AExpr e -> visit e
    | AWin w ->
        List.iter (function Pt e -> visit e | Iv (a, b) -> visit a; visit b) w.widx
  in
  iter_stmts
    (fun s ->
      match s with
      | SAssign (_, idx, e) | SReduce (_, idx, e) ->
          List.iter visit idx;
          visit e
      | SFor (_, lo, hi, _) ->
          visit lo;
          visit hi
      | SAlloc (_, _, dims, _) -> List.iter visit dims
      | SCall (_, args) -> List.iter visit_ca args
      | SIf (c, _, _) -> visit c)
    body;
  !acc

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

(** Variables read by an expression (excluding buffer names). *)
let rec expr_vars acc = function
  | Int _ | Float _ -> acc
  | Var v -> Sym.Set.add v acc
  | Read (_, idx) -> List.fold_left expr_vars acc idx
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      expr_vars (expr_vars acc a) b
  | Neg a | Not a -> expr_vars acc a
  | Stride _ -> acc

(** Buffer symbols read by an expression. *)
let rec expr_bufs acc = function
  | Int _ | Float _ | Var _ -> acc
  | Read (b, idx) -> List.fold_left expr_bufs (Sym.Set.add b acc) idx
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      expr_bufs (expr_bufs acc a) b
  | Neg a | Not a -> expr_bufs acc a
  | Stride (b, _) -> Sym.Set.add b acc

(** All buffers a statement list reads or writes (including via windows). *)
let stmts_bufs body =
  let acc = ref Sym.Set.empty in
  iter_stmts
    (fun s ->
      match s with
      | SAssign (b, idx, e) | SReduce (b, idx, e) ->
          acc := Sym.Set.add b !acc;
          List.iter (fun i -> acc := expr_bufs !acc i) idx;
          acc := expr_bufs !acc e
      | SCall (_, args) ->
          List.iter
            (function
              | AExpr e -> acc := expr_bufs !acc e
              | AWin w -> acc := Sym.Set.add w.wbuf !acc)
            args
      | SFor _ | SAlloc _ | SIf _ -> ())
    body;
  !acc

(** Free index/size variables of a statement list: variables used in
    expressions minus loop binders. Proc arguments count as free. *)
let stmts_free_vars body =
  let rec go bound acc stmts = List.fold_left (go_stmt bound) acc stmts
  and go_stmt bound acc s =
    let ev acc e =
      Sym.Set.union acc (Sym.Set.diff (expr_vars Sym.Set.empty e) bound)
    in
    match s with
    | SAssign (_, idx, e) | SReduce (_, idx, e) -> ev (List.fold_left ev acc idx) e
    | SFor (v, lo, hi, b) ->
        let acc = ev (ev acc lo) hi in
        go (Sym.Set.add v bound) acc b
    | SAlloc (_, _, dims, _) -> List.fold_left ev acc dims
    | SCall (_, args) ->
        List.fold_left
          (fun acc -> function
            | AExpr e -> ev acc e
            | AWin w ->
                List.fold_left
                  (fun acc -> function
                    | Pt e -> ev acc e
                    | Iv (a, b) -> ev (ev acc a) b)
                  acc w.widx)
          acc args
    | SIf (c, t, e) -> go bound (go bound (ev acc c) t) e
  in
  go Sym.Set.empty Sym.Set.empty body

(** Largest symbol id occurring anywhere in [p] — args, preds, binders,
    every expression, and (recursively) called procs. Unmarshaling a proc
    from another process must feed this to {!Sym.ensure_above} before any
    [Sym.fresh], or a later fresh symbol could collide with one of the
    foreign ids and alias a distinct binder in Sym-keyed maps. *)
let proc_max_sym_id (p : proc) : int =
  let m = ref 0 in
  let sym s = if Sym.id s > !m then m := Sym.id s in
  let expr e =
    Sym.Set.iter sym (expr_vars Sym.Set.empty e);
    Sym.Set.iter sym (expr_bufs Sym.Set.empty e)
  in
  let waccess = function Pt e -> expr e | Iv (a, b) -> expr a; expr b in
  let rec proc p =
    List.iter (fun a -> sym a.a_name) p.p_args;
    List.iter expr p.p_preds;
    stmts p.p_body
  and stmts body = List.iter stmt body
  and stmt = function
    | SAssign (b, idx, e) | SReduce (b, idx, e) ->
        sym b;
        List.iter expr idx;
        expr e
    | SFor (v, lo, hi, body) ->
        sym v;
        expr lo;
        expr hi;
        stmts body
    | SAlloc (b, _, dims, _) ->
        sym b;
        List.iter expr dims
    | SCall (callee, args) ->
        proc callee;
        List.iter
          (function
            | AExpr e -> expr e
            | AWin w ->
                sym w.wbuf;
                List.iter waccess w.widx)
          args
    | SIf (c, t, e) ->
        expr c;
        stmts t;
        stmts e
  in
  proc p;
  !m

(** The dtype of a buffer visible at the top of [p]: argument or top-level
    alloc. Scheduling keeps allocations it reasons about at proc top-level. *)
let find_buffer_typ (p : proc) (b : Sym.t) : (Dtype.t * expr list * Mem.t) option =
  let from_arg a =
    match a.a_typ with
    | TTensor (dt, dims) -> Some (dt, dims, a.a_mem)
    | TScalar dt -> Some (dt, [], a.a_mem)
    | _ -> None
  in
  match List.find_opt (fun a -> Sym.equal a.a_name b) p.p_args with
  | Some a -> from_arg a
  | None ->
      let found = ref None in
      iter_stmts
        (fun s ->
          match s with
          | SAlloc (b', dt, dims, mem) when Sym.equal b b' && !found = None ->
              found := Some (dt, dims, mem)
          | _ -> ())
        p.p_body;
      !found
