(** Unique symbols.

    Every binder in the IR (procedure arguments, loop variables, allocations)
    is a [Sym.t]: a human-readable name paired with a globally unique id.
    Scheduling rewrites freely duplicate and move code, so name capture must
    be impossible by construction; comparing symbols compares ids only. *)

type t = { name : string; id : int }

(* Atomic so parallel sweeps (Exo_par.Pool) can generate kernels from
   several domains: ids stay globally unique, and within any one domain
   they are still strictly increasing — all printed output keys on names,
   so interleaving across domains never shows. *)
let counter = Atomic.make 0

let fresh name = { name; id = Atomic.fetch_and_add counter 1 + 1 }

(** [ensure_above n] — guarantee every future {!fresh} id is [> n]. Needed
    when procs marshaled by another process re-enter this one (the cache):
    their symbols carry ids from a foreign counter, and a later [fresh]
    here must never collide with them. CAS-max loop; monotone, lock-free. *)
let rec ensure_above n =
  let cur = Atomic.get counter in
  if cur < n && not (Atomic.compare_and_set counter cur n) then ensure_above n

(** [clone s] makes a fresh symbol with the same display name. *)
let clone s = fresh s.name

let name s = s.name
let id s = s.id
let equal a b = Int.equal a.id b.id
let compare a b = Int.compare a.id b.id
let hash s = s.id

(** Display name only; ids are shown by {!pp_debug}. *)
let pp ppf s = Fmt.string ppf s.name

let pp_debug ppf s = Fmt.pf ppf "%s#%d" s.name s.id
let to_string s = s.name

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
