(** Core intermediate representation.

    A deliberately small loop-nest IR mirroring the fragment of Exo's object
    language the CGO'24 micro-kernel generator exercises: [seq] loop nests,
    buffer assignment and reduction, memory-annotated allocations,
    instruction calls (procedures carrying an [@instr] annotation), and
    guards. Index and data expressions share one type; {!Exo_check} enforces
    the sorting discipline. *)

type binop = Add | Sub | Mul | Div | Mod
type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Int of int
  | Float of float
  | Var of Sym.t  (** size parameter, loop variable, or index argument *)
  | Read of Sym.t * expr list  (** [buf[i0, …]]; rank-0 scalars read with [[]] *)
  | Binop of binop * expr * expr
  | Neg of expr
  | Cmp of cmpop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Stride of Sym.t * int
      (** [stride(buf, dim)] — occurs only in instruction preconditions *)

(** One dimension of a window: a point (rank-reducing) or a half-open
    interval [lo:hi]. *)
type waccess = Pt of expr | Iv of expr * expr

(** A window into a buffer, e.g. [C_reg[jt, it, 0:4]]. *)
type window = { wbuf : Sym.t; widx : waccess list }

type typ =
  | TSize  (** positive runtime-constant extent, e.g. [KC: size] *)
  | TIndex  (** integer argument, e.g. an fmla lane selector *)
  | TBool
  | TScalar of Dtype.t
  | TTensor of Dtype.t * expr list  (** dims may mention size parameters *)

type arg = { a_name : Sym.t; a_typ : typ; a_mem : Mem.t }

type stmt =
  | SAssign of Sym.t * expr list * expr  (** [buf[idx] = e] *)
  | SReduce of Sym.t * expr list * expr  (** [buf[idx] += e] *)
  | SFor of Sym.t * expr * expr * stmt list  (** [for v in seq(lo, hi)] *)
  | SAlloc of Sym.t * Dtype.t * expr list * Mem.t
  | SCall of proc * call_arg list
  | SIf of expr * stmt list * stmt list

and call_arg = AExpr of expr | AWin of window

and proc = {
  p_name : string;
  p_args : arg list;
  p_preds : expr list;  (** [assert]s on arguments *)
  p_body : stmt list;
  p_instr : instr_info option;  (** present iff this proc is an instruction *)
}

(** The externalized hardware-library half of an [@instr] definition: the C
    template ([{name_data}]/[{name}] holes), required headers, and a coarse
    op class for the simulator's census. *)
and instr_info = { ci_fmt : string; ci_includes : string list; ci_kind : op_kind }

and op_kind = KLoad | KStore | KFma | KBcast | KArith | KOther

(** {1 Constructors and small helpers} *)

val binop_name : binop -> string
val cmpop_name : cmpop -> string

val mk_proc :
  ?preds:expr list -> ?instr:instr_info -> name:string -> args:arg list ->
  stmt list -> proc

val is_instr : proc -> bool
val arg : ?mem:Mem.t -> Sym.t -> typ -> arg

(** Extent of a window access; [None] for a point. *)
val waccess_extent : waccess -> expr option

(** Number of interval dimensions. *)
val window_rank : window -> int

(** {1 Structural traversal} *)

(** Bottom-up map over every sub-expression. *)
val map_expr : (expr -> expr) -> expr -> expr

val map_waccess : (expr -> expr) -> waccess -> waccess
val map_window : (expr -> expr) -> window -> window
val map_call_arg : (expr -> expr) -> call_arg -> call_arg

(** Apply a function to every expression in a statement (recursively);
    binders untouched. *)
val map_stmt_exprs : (expr -> expr) -> stmt -> stmt

val map_body_exprs : (expr -> expr) -> stmt list -> stmt list

(** Visit every statement, outer-first. *)
val iter_stmts : (stmt -> unit) -> stmt list -> unit

(** Fold over every expression occurring in a statement list. *)
val fold_exprs : ('a -> expr -> 'a) -> 'a -> stmt list -> 'a

(** {1 Queries} *)

(** Variables read (excluding buffer names). *)
val expr_vars : Sym.Set.t -> expr -> Sym.Set.t

(** Buffer symbols read. *)
val expr_bufs : Sym.Set.t -> expr -> Sym.Set.t

(** All buffers read or written (including via call windows). *)
val stmts_bufs : stmt list -> Sym.Set.t

(** Free index/size variables: uses minus loop binders. *)
val stmts_free_vars : stmt list -> Sym.Set.t

(** Largest symbol id occurring anywhere in the proc (args, preds, binders,
    expressions, called procs, recursively). Feed to {!Sym.ensure_above}
    after unmarshaling a proc produced by another process, before any
    [Sym.fresh]. *)
val proc_max_sym_id : proc -> int

(** Type of a buffer visible at the top of a proc (argument or alloc). *)
val find_buffer_typ : proc -> Sym.t -> (Dtype.t * expr list * Mem.t) option
