(** Compile-once/run-many execution engine.

    Lowers an {!Exo_ir.Ir.proc} to nested OCaml closures so that the repeated
    evaluations the paper's methodology relies on — tuner sweeps, equivalence
    checks, real-numerics GEMM tiles — stop re-walking the IR tree:

    - every symbol is resolved at compile time to an integer slot in a flat
      frame (no [Sym.Map] lookups at runtime);
    - expressions are statically sorted into integer and float paths, so no
      boxed [num] values are allocated during execution;
    - buffer accesses are specialized by arity and compute their flat element
      address directly against the buffer's strides (no per-access index
      lists or arrays);
    - instruction calls are {e inlined}: the callee's semantic body is
      compiled against the call site, window arguments become views — an
      offset and per-dimension extent/stride integers written into caller
      frame slots, no [Buffer.t] is allocated per call — and the callee's
      preconditions run in a once-per-call prologue;
    - innermost loops whose body is a single assign/reduce with loop-constant
      strides (exactly the shape of every ISA instruction's semantic body)
      are fused: after an entry-time resolution that re-checks every bounds
      condition the interpreter would check, the loop runs as a tight
      float-array kernel with pre-flattened addresses.

    Runtime behaviour is observationally identical to {!Interp}: the same
    per-dtype rounding on every write, the same bounds and precondition
    checks, the same evaluation strategy. Whenever a fast path cannot
    reproduce the interpreter's behaviour exactly (a rank mismatch, an
    out-of-bounds index, an unsupported expression shape) the compiled code
    falls back to the general closure path, which raises the interpreter's
    errors verbatim. A qcheck property in the test suite asserts bit-identical
    output buffers against the tree-walking interpreter, which stays in the
    repository as the definitional oracle. *)

open Exo_ir
open Ir

let rerr fmt = Fmt.kstr (fun s -> raise (Interp.Runtime_error s)) fmt
let berr fmt = Fmt.kstr (fun s -> raise (Buffer.Bounds s)) fmt

(* ------------------------------------------------------------------ *)
(* Frames and compile-time slot assignment                             *)

(** Runtime frame: integer bindings (sizes, indices, loop variables, window
    geometry) live in [ints], tensors/scalars in [bufs]; a binder's slot
    index is fixed at compile time. *)
type frame = { ints : int array; bufs : Buffer.t array }

(** A window argument of an inlined call: the backing buffer's slot plus the
    slots holding the view's offset and per-dimension extents and strides.
    The view's rank is static (window specs have a fixed shape); only the
    integers inside are per-call. *)
type view = {
  v_data : int;  (** [bufs] slot of the backing buffer *)
  v_off : int;  (** [ints] slot of the flat offset *)
  v_dims : int array;  (** [ints] slots of the extents *)
  v_strides : int array;  (** [ints] slots of the strides *)
}

type slot =
  | SInt of int
  | SConst of int  (** integer argument of an inlined call that is a literal *)
  | SBuf of int
  | SView of view

type ctx = {
  slots : slot Sym.Tbl.t;
  mutable nints : int;
  mutable nbufs : int;
}

let new_ctx () = { slots = Sym.Tbl.create 16; nints = 0; nbufs = 0 }

(** Reserve an anonymous integer slot (window geometry of inlined calls). *)
let alloc_int ctx =
  let i = ctx.nints in
  ctx.nints <- i + 1;
  i

let bind_int ctx v =
  let i = alloc_int ctx in
  Sym.Tbl.replace ctx.slots v (SInt i);
  i

let bind_buf ctx v =
  let i = ctx.nbufs in
  ctx.nbufs <- i + 1;
  Sym.Tbl.replace ctx.slots v (SBuf i);
  i

(* Placeholder for buffer slots that have not been bound yet. *)
let dummy_buf = Buffer.create ~init:0.0 Dtype.F32 []

let mk_frame ~nints ~nbufs =
  { ints = Array.make (max nints 1) 0; bufs = Array.make (max nbufs 1) dummy_buf }

(** Fetch-closure for a buffer-valued symbol. A view is materialized into a
    fresh [Buffer.t] (only general/fallback paths do this — hot paths read
    the view slots directly). Unbound or integer-valued symbols compile to
    raising closures, preserving the interpreter's lazy runtime errors on
    ill-formed (dead) code. *)
let cbuf ctx (b : Sym.t) : frame -> Buffer.t =
  match Sym.Tbl.find_opt ctx.slots b with
  | Some (SBuf i) -> fun f -> f.bufs.(i)
  | Some (SView v) ->
      fun f ->
        let base = f.bufs.(v.v_data) in
        {
          base with
          Buffer.offset = f.ints.(v.v_off);
          dims = Array.map (fun s -> f.ints.(s)) v.v_dims;
          strides = Array.map (fun s -> f.ints.(s)) v.v_strides;
        }
  | Some (SInt _ | SConst _) -> fun _ -> rerr "expected a buffer"
  | None -> fun _ -> rerr "unbound symbol %a at runtime" Sym.pp_debug b

(* ------------------------------------------------------------------ *)
(* Static expression sorts                                             *)

(** The interpreter's [num] tag is statically determined: [Var] only ever
    holds integers (buffers read through [Read]), [Read] always yields data.
    Mixed binops promote to float exactly like [Interp.to_float]. *)
let rec is_int (e : expr) : bool =
  match e with
  | Int _ | Var _ | Stride _ | Cmp _ | And _ | Or _ | Not _ -> true
  | Float _ | Read _ -> false
  | Neg a -> is_int a
  | Binop (_, a, b) -> is_int a && is_int b

let rec mentions v (e : expr) : bool =
  match e with
  | Var u -> Sym.equal u v
  | Int _ | Float _ -> false
  | Stride (b, _) -> Sym.equal b v
  | Neg a | Not a -> mentions v a
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      mentions v a || mentions v b
  | Read (b, idx) -> Sym.equal b v || List.exists (mentions v) idx

let rec has_read (e : expr) : bool =
  match e with
  | Read _ -> true
  | Int _ | Float _ | Var _ | Stride _ -> false
  | Neg a | Not a -> has_read a
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      has_read a || has_read b

(* ------------------------------------------------------------------ *)
(* Fused-loop plans                                                    *)

(** One array leaf of a fused loop: at loop entry [resolve] (stored
    separately) re-establishes the backing array, the flat address at loop
    counter 0, and the per-iteration address step, re-checking every bound
    the general path would check. *)
type lplan = {
  mutable lp_data : float array;
  mutable lp_base : int;
  mutable lp_step : int;
  mutable lp_dt : Dtype.t;
}

(** How one access dimension depends on the fused loop counter: indexed by
    the counter itself, or loop-invariant (closure evaluated at entry). *)
type lkind = LI | LInv of (frame -> int)

(** RHS of a fusable statement, as a tree over the loop counter. Leaves are
    live per-element array reads (so source/destination aliasing behaves
    exactly like the general path); constants are loop-invariant read-free
    subexpressions hoisted to an entry-time cell. The common instruction-body
    shapes (copy, scale, multiply-accumulate) get dedicated loop runners. *)
type fnode =
  | FLeaf of lplan
  | FIdx  (** the loop counter itself, as data *)
  | FConst of float ref
  | FBin of binop * fnode * fnode
  | FNeg of fnode

(** Exactly {!Buffer.round_dtype}[ F32], locally inlinable: the unboxed
    external pair keeps the hot loops allocation-free. *)
let f32_round (x : float) : float = Int32.float_of_bits (Int32.bits_of_float x)

(* ------------------------------------------------------------------ *)
(* Compiled procedures (general call path)                             *)

type pslot = PInt of int | PBuf of int

(** A compiled procedure: frame geometry, parameter slots in signature
    order, compiled preconditions (with their sources, for error messages),
    and the compiled body. *)
type cproc = {
  cp_nints : int;
  cp_nbufs : int;
  cp_params : pslot array;
  cp_preds : (frame -> bool) array;
  cp_pred_srcs : expr array;
  cp_body : frame -> unit;
}

(* Instruction procs are shared global constants; memoize their general-path
   compilation (by physical identity) so the call sites {!cinline} declines
   reuse one compiled body. Top-level [compile] entries are NOT memoized
   here, so compiling many ephemeral procs (property tests) cannot grow this
   table. Domain-local: a [cproc] closes over mutable plan cells, so each
   domain compiles its own copy (a handful of tiny instruction bodies)
   rather than sharing non-re-entrant closures across domains. *)
let instr_cache : (proc * cproc) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)

let rec cint ctx (e : expr) : frame -> int =
  if not (is_int e) then (
    (* the interpreter evaluates first (possibly raising Bounds), then
       rejects the float *)
    let g = cflt ctx e in
    fun f ->
      ignore (g f);
      rerr "expected an integer, got a float in %s" (Pp.expr_to_string e))
  else
    match e with
    | Int n -> fun _ -> n
    | Var v -> (
        match Sym.Tbl.find_opt ctx.slots v with
        | Some (SInt i) -> fun f -> f.ints.(i)
        | Some (SConst n) -> fun _ -> n
        | Some (SBuf _ | SView _) ->
            fun _ -> rerr "buffer %a used as a scalar" Sym.pp v
        | None -> fun _ -> rerr "unbound symbol %a at runtime" Sym.pp_debug v)
    | Stride (b, d) -> (
        match Sym.Tbl.find_opt ctx.slots b with
        | Some (SView v) ->
            let n = Array.length v.v_strides in
            if d < 0 || d >= n then fun _ ->
              rerr "stride dimension %d out of range" d
            else
              let s = v.v_strides.(d) in
              fun f -> f.ints.(s)
        | _ ->
            let bc = cbuf ctx b in
            fun f ->
              let buf = bc f in
              let n = Buffer.rank buf in
              if d < 0 || d >= n then rerr "stride dimension %d out of range" d;
              buf.Buffer.strides.(d))
    | Binop (op, a, b) -> (
        let fa = cint ctx a and fb = cint ctx b in
        match op with
        | Add -> fun f -> fa f + fb f
        | Sub -> fun f -> fa f - fb f
        | Mul -> fun f -> fa f * fb f
        | Div ->
            fun f ->
              let x = fa f and y = fb f in
              if y = 0 then rerr "division by zero";
              x / y
        | Mod ->
            fun f ->
              let x = fa f and y = fb f in
              if y = 0 then rerr "modulo by zero";
              x mod y)
    | Neg a ->
        let fa = cint ctx a in
        fun f -> -fa f
    | Cmp (op, a, b) ->
        let cmp =
          if is_int a && is_int b then
            let fa = cint ctx a and fb = cint ctx b in
            fun f -> compare (fa f) (fb f)
          else
            let fa = cflt ctx a and fb = cflt ctx b in
            fun f -> Float.compare (fa f) (fb f)
        in
        (match op with
        | Lt -> fun f -> if cmp f < 0 then 1 else 0
        | Le -> fun f -> if cmp f <= 0 then 1 else 0
        | Gt -> fun f -> if cmp f > 0 then 1 else 0
        | Ge -> fun f -> if cmp f >= 0 then 1 else 0
        | Eq -> fun f -> if cmp f = 0 then 1 else 0
        | Ne -> fun f -> if cmp f <> 0 then 1 else 0)
    | And (a, b) ->
        let fa = cbool ctx a and fb = cbool ctx b in
        fun f -> if fa f && fb f then 1 else 0
    | Or (a, b) ->
        let fa = cbool ctx a and fb = cbool ctx b in
        fun f -> if fa f || fb f then 1 else 0
    | Not a ->
        let fa = cbool ctx a in
        fun f -> if fa f then 0 else 1
    | Float _ | Read _ -> assert false (* not is_int *)

(** Booleans compile natively (no 0/1 round-trip): comparisons branch
    directly, connectives short-circuit. Semantics match {!cint}'s encoding
    exactly — float comparisons go through [Float.compare], so NaN ordering
    is identical. *)
and cbool ctx (e : expr) : frame -> bool =
  match e with
  | Cmp (op, a, b) when is_int a && is_int b -> (
      let fa = cint ctx a and fb = cint ctx b in
      match op with
      | Lt -> fun f -> fa f < fb f
      | Le -> fun f -> fa f <= fb f
      | Gt -> fun f -> fa f > fb f
      | Ge -> fun f -> fa f >= fb f
      | Eq -> fun f -> fa f = fb f
      | Ne -> fun f -> fa f <> fb f)
  | Cmp (op, a, b) -> (
      let fa = cflt ctx a and fb = cflt ctx b in
      match op with
      | Lt -> fun f -> Float.compare (fa f) (fb f) < 0
      | Le -> fun f -> Float.compare (fa f) (fb f) <= 0
      | Gt -> fun f -> Float.compare (fa f) (fb f) > 0
      | Ge -> fun f -> Float.compare (fa f) (fb f) >= 0
      | Eq -> fun f -> Float.compare (fa f) (fb f) = 0
      | Ne -> fun f -> Float.compare (fa f) (fb f) <> 0)
  | And (a, b) ->
      let fa = cbool ctx a and fb = cbool ctx b in
      fun f -> fa f && fb f
  | Or (a, b) ->
      let fa = cbool ctx a and fb = cbool ctx b in
      fun f -> fa f || fb f
  | Not a ->
      let fa = cbool ctx a in
      fun f -> not (fa f)
  | Int n ->
      let b = n <> 0 in
      fun _ -> b
  | _ ->
      let g = cint ctx e in
      fun f -> g f <> 0

and cflt ctx (e : expr) : frame -> float =
  if is_int e then (
    let g = cint ctx e in
    fun f -> float_of_int (g f))
  else
    match e with
    | Float x -> fun _ -> x
    | Read (b, idx) -> (
        match Sym.Tbl.find_opt ctx.slots b with
        | Some (SView v) ->
            let ad = cvaddr ctx v idx in
            fun f -> f.bufs.(v.v_data).Buffer.data.(ad f)
        | _ ->
            let bc = cbuf ctx b and ad = caddr ctx idx in
            fun f ->
              let buf = bc f in
              buf.Buffer.data.(ad buf f))
    | Binop (op, a, b) -> (
        let fa = cflt ctx a and fb = cflt ctx b in
        match op with
        | Add -> fun f -> fa f +. fb f
        | Sub -> fun f -> fa f -. fb f
        | Mul -> fun f -> fa f *. fb f
        | Div -> fun f -> fa f /. fb f
        | Mod ->
            fun f ->
              ignore (fa f);
              ignore (fb f);
              rerr "%% on data values")
    | Neg a ->
        let fa = cflt ctx a in
        fun f -> -.(fa f)
    | Int _ | Var _ | Stride _ | Cmp _ | And _ | Or _ | Not _ ->
        assert false (* is_int *)

(** Flat element address of [buf[idx]], specialized by arity so no index
    array is materialized; same bounds discipline as {!Buffer.addr}. *)
and caddr ctx (idx : expr list) : Buffer.t -> frame -> int =
  let oob i d ext = berr "index %d out of bounds for dimension %d (extent %d)" i d ext in
  let rank_mismatch n r = berr "rank mismatch: %d indices for rank %d" n r in
  match List.map (cint ctx) idx with
  | [] ->
      fun buf _ ->
        if Buffer.rank buf <> 0 then rank_mismatch 0 (Buffer.rank buf);
        buf.Buffer.offset
  | [ i0 ] ->
      fun buf f ->
        if Buffer.rank buf <> 1 then rank_mismatch 1 (Buffer.rank buf);
        let x0 = i0 f in
        if x0 < 0 || x0 >= buf.Buffer.dims.(0) then oob x0 0 buf.Buffer.dims.(0);
        buf.Buffer.offset + (x0 * buf.Buffer.strides.(0))
  | [ i0; i1 ] ->
      fun buf f ->
        if Buffer.rank buf <> 2 then rank_mismatch 2 (Buffer.rank buf);
        let x0 = i0 f in
        if x0 < 0 || x0 >= buf.Buffer.dims.(0) then oob x0 0 buf.Buffer.dims.(0);
        let x1 = i1 f in
        if x1 < 0 || x1 >= buf.Buffer.dims.(1) then oob x1 1 buf.Buffer.dims.(1);
        buf.Buffer.offset + (x0 * buf.Buffer.strides.(0)) + (x1 * buf.Buffer.strides.(1))
  | [ i0; i1; i2 ] ->
      fun buf f ->
        if Buffer.rank buf <> 3 then rank_mismatch 3 (Buffer.rank buf);
        let x0 = i0 f in
        if x0 < 0 || x0 >= buf.Buffer.dims.(0) then oob x0 0 buf.Buffer.dims.(0);
        let x1 = i1 f in
        if x1 < 0 || x1 >= buf.Buffer.dims.(1) then oob x1 1 buf.Buffer.dims.(1);
        let x2 = i2 f in
        if x2 < 0 || x2 >= buf.Buffer.dims.(2) then oob x2 2 buf.Buffer.dims.(2);
        buf.Buffer.offset
        + (x0 * buf.Buffer.strides.(0))
        + (x1 * buf.Buffer.strides.(1))
        + (x2 * buf.Buffer.strides.(2))
  | cs ->
      let cs = Array.of_list cs in
      let n = Array.length cs in
      fun buf f ->
        if Buffer.rank buf <> n then rank_mismatch n (Buffer.rank buf);
        let a = ref buf.Buffer.offset in
        for d = 0 to n - 1 do
          let x = cs.(d) f in
          if x < 0 || x >= buf.Buffer.dims.(d) then oob x d buf.Buffer.dims.(d);
          a := !a + (x * buf.Buffer.strides.(d))
        done;
        !a

(** Flat element address of a view access, reading geometry from the caller
    frame's integer slots; same checks and messages as {!caddr}. *)
and cvaddr ctx (v : view) (idx : expr list) : frame -> int =
  let oob i d ext = berr "index %d out of bounds for dimension %d (extent %d)" i d ext in
  let n = Array.length v.v_dims in
  let m = List.length idx in
  if m <> n then fun _ -> berr "rank mismatch: %d indices for rank %d" m n
  else
    let off = v.v_off in
    match List.map (cint ctx) idx with
    | [] -> fun f -> f.ints.(off)
    | [ i0 ] ->
        let d0 = v.v_dims.(0) and s0 = v.v_strides.(0) in
        fun f ->
          let x0 = i0 f in
          let e0 = f.ints.(d0) in
          if x0 < 0 || x0 >= e0 then oob x0 0 e0;
          f.ints.(off) + (x0 * f.ints.(s0))
    | [ i0; i1 ] ->
        let d0 = v.v_dims.(0) and s0 = v.v_strides.(0) in
        let d1 = v.v_dims.(1) and s1 = v.v_strides.(1) in
        fun f ->
          let x0 = i0 f in
          let e0 = f.ints.(d0) in
          if x0 < 0 || x0 >= e0 then oob x0 0 e0;
          let x1 = i1 f in
          let e1 = f.ints.(d1) in
          if x1 < 0 || x1 >= e1 then oob x1 1 e1;
          f.ints.(off) + (x0 * f.ints.(s0)) + (x1 * f.ints.(s1))
    | cs ->
        let cs = Array.of_list cs in
        fun f ->
          let a = ref f.ints.(off) in
          for d = 0 to n - 1 do
            let x = cs.(d) f in
            let e = f.ints.(v.v_dims.(d)) in
            if x < 0 || x >= e then oob x d e;
            a := !a + (x * f.ints.(v.v_strides.(d)))
          done;
          !a

(* ------------------------------------------------------------------ *)
(* Windows                                                             *)

(** Compile a window into a view-building closure (the runtime half of
    {!Buffer.view}, with the index closures pre-compiled). General path:
    allocates a fresh [Buffer.t] per call. *)
and cwindow ctx (w : window) : frame -> Buffer.t =
  let bc = cbuf ctx w.wbuf in
  let spec =
    Array.of_list
      (List.map
         (function
           | Pt e -> `P (cint ctx e)
           | Iv (lo, hi) -> `I (cint ctx lo, cint ctx hi))
         w.widx)
  in
  let out_rank =
    Array.fold_left (fun n s -> match s with `I _ -> n + 1 | `P _ -> n) 0 spec
  in
  fun f ->
    let buf = bc f in
    if Array.length spec <> Buffer.rank buf then
      berr "window rank mismatch on a rank-%d buffer" (Buffer.rank buf);
    let offset = ref buf.Buffer.offset in
    let dims = Array.make out_rank 0 and strides = Array.make out_rank 0 in
    let od = ref 0 in
    Array.iteri
      (fun d s ->
        match s with
        | `P g ->
            let i = g f in
            if i < 0 || i >= buf.Buffer.dims.(d) then
              berr "window point %d out of bounds in dimension %d (extent %d)" i d
                buf.Buffer.dims.(d);
            offset := !offset + (i * buf.Buffer.strides.(d))
        | `I (glo, ghi) ->
            let lo = glo f in
            let len = ghi f - lo in
            if lo < 0 || len < 0 || lo + len > buf.Buffer.dims.(d) then
              berr "window [%d, %d) out of bounds in dimension %d (extent %d)" lo
                (lo + len) d buf.Buffer.dims.(d);
            offset := !offset + (lo * buf.Buffer.strides.(d));
            dims.(!od) <- len;
            strides.(!od) <- buf.Buffer.strides.(d);
            incr od)
      spec;
    { buf with Buffer.offset = !offset; dims; strides }

(** Compile a window of an inlined call into (a) an action that, per call,
    computes the view's offset/extent/stride integers into freshly reserved
    caller-frame slots — with exactly {!Buffer.view}'s checks and error
    messages — and (b) the static [view] describing those slots. Only called
    when [w.wbuf] is in scope as a buffer or view. *)
and cwindow_view ctx (w : window) : (frame -> unit) * view =
  let spec =
    Array.of_list
      (List.map
         (function
           | Pt e -> `P (cint ctx e)
           | Iv (lo, hi) -> `I (cint ctx lo, cint ctx hi))
         w.widx)
  in
  let nspec = Array.length spec in
  let kept =
    Array.fold_left (fun n s -> match s with `I _ -> n + 1 | `P _ -> n) 0 spec
  in
  let off = alloc_int ctx in
  let dims = Array.init kept (fun _ -> alloc_int ctx) in
  let strides = Array.init kept (fun _ -> alloc_int ctx) in
  match Sym.Tbl.find_opt ctx.slots w.wbuf with
  | Some (SBuf j) ->
      let view = { v_data = j; v_off = off; v_dims = dims; v_strides = strides } in
      (* per-dimension steps chained at compile time: the accumulated offset
         travels as an (unboxed) argument, so the per-call action allocates
         nothing and performs no dispatch *)
      let rec chain d od : frame -> Buffer.t -> int -> unit =
        if d = nspec then fun f _ o -> f.ints.(off) <- o
        else
          match spec.(d) with
          | `P g ->
              let rest = chain (d + 1) od in
              fun f buf o ->
                let i = g f in
                let ext = buf.Buffer.dims.(d) in
                if i < 0 || i >= ext then
                  berr "window point %d out of bounds in dimension %d (extent %d)"
                    i d ext;
                rest f buf (o + (i * buf.Buffer.strides.(d)))
          | `I (glo, ghi) ->
              let rest = chain (d + 1) (od + 1) in
              let ds = dims.(od) and ss = strides.(od) in
              fun f buf o ->
                let lo = glo f in
                let len = ghi f - lo in
                let ext = buf.Buffer.dims.(d) in
                if lo < 0 || len < 0 || lo + len > ext then
                  berr "window [%d, %d) out of bounds in dimension %d (extent %d)"
                    lo (lo + len) d ext;
                f.ints.(ds) <- len;
                f.ints.(ss) <- buf.Buffer.strides.(d);
                rest f buf (o + (lo * buf.Buffer.strides.(d)))
      in
      let ch = chain 0 0 in
      let act f =
        let buf = f.bufs.(j) in
        if nspec <> Buffer.rank buf then
          berr "window rank mismatch on a rank-%d buffer" (Buffer.rank buf);
        ch f buf buf.Buffer.offset
      in
      (act, view)
  | Some (SView v) ->
      let r = Array.length v.v_dims in
      let view =
        { v_data = v.v_data; v_off = off; v_dims = dims; v_strides = strides }
      in
      if nspec <> r then
        ((fun _ -> berr "window rank mismatch on a rank-%d buffer" r), view)
      else
        let rec chain d od : frame -> int -> unit =
          if d = nspec then fun f o -> f.ints.(off) <- o
          else
            let de = v.v_dims.(d) and ds = v.v_strides.(d) in
            match spec.(d) with
            | `P g ->
                let rest = chain (d + 1) od in
                fun f o ->
                  let i = g f in
                  let ext = f.ints.(de) in
                  if i < 0 || i >= ext then
                    berr
                      "window point %d out of bounds in dimension %d (extent %d)"
                      i d ext;
                  rest f (o + (i * f.ints.(ds)))
            | `I (glo, ghi) ->
                let rest = chain (d + 1) (od + 1) in
                let kd = dims.(od) and ks = strides.(od) in
                fun f o ->
                  let lo = glo f in
                  let len = ghi f - lo in
                  let ext = f.ints.(de) in
                  if lo < 0 || len < 0 || lo + len > ext then
                    berr
                      "window [%d, %d) out of bounds in dimension %d (extent %d)"
                      lo (lo + len) d ext;
                  let st = f.ints.(ds) in
                  f.ints.(kd) <- len;
                  f.ints.(ks) <- st;
                  rest f (o + (lo * st))
        in
        let ch = chain 0 0 in
        let act f = ch f f.ints.(v.v_off) in
        (act, view)
  | _ -> assert false (* guarded by the caller *)

(* ------------------------------------------------------------------ *)
(* Fused loops                                                         *)

(** Build the leaf plan for an access [b[idx]] inside a loop over [v], plus
    the entry-time resolver. The resolver re-checks rank and every bound the
    general path would check per element (for the loop-indexed dimension:
    over the whole [lo, hi) range), and refreshes the plan's mutable fields.
    Returning [false] (or raising, absorbed by the caller) routes the whole
    loop to the general path, which reproduces the interpreter's error. *)
and lleaf ctx v ~push (b : Sym.t) (idx : expr list) : lplan option =
  let kinds =
    let rec go = function
      | [] -> Some []
      | e :: rest -> (
          let k =
            match e with
            | Var u when Sym.equal u v -> Some LI
            | e when not (mentions v e) -> Some (LInv (cint ctx e))
            | _ -> None
          in
          match (k, go rest) with
          | Some k, Some r -> Some (k :: r)
          | _ -> None)
    in
    go idx
  in
  match (Sym.Tbl.find_opt ctx.slots b, kinds) with
  | Some (SBuf j), Some kinds ->
      let kinds = Array.of_list kinds in
      let n = Array.length kinds in
      let p = { lp_data = [||]; lp_base = 0; lp_step = 0; lp_dt = Dtype.F32 } in
      (* per-dimension checks chained at compile time; base and step travel
         as (unboxed) arguments — no refs, no dispatch per call *)
      let rec chain d : frame -> Buffer.t -> int -> int -> int -> int -> bool =
        if d = n then
          fun _ buf _ _ base step ->
            p.lp_data <- buf.Buffer.data;
            p.lp_base <- base;
            p.lp_step <- step;
            p.lp_dt <- buf.Buffer.dtype;
            true
        else
          match kinds.(d) with
          | LI ->
              let rest = chain (d + 1) in
              fun f buf lo hi base step ->
                lo >= 0
                && hi <= buf.Buffer.dims.(d)
                && rest f buf lo hi base (step + buf.Buffer.strides.(d))
          | LInv g ->
              let rest = chain (d + 1) in
              fun f buf lo hi base step ->
                let x = g f in
                x >= 0
                && x < buf.Buffer.dims.(d)
                && rest f buf lo hi (base + (x * buf.Buffer.strides.(d))) step
      in
      let ch = chain 0 in
      let resolve f lo hi =
        let buf = f.bufs.(j) in
        Buffer.rank buf = n && ch f buf lo hi buf.Buffer.offset 0
      in
      push resolve;
      Some p
  | Some (SView vw), Some kinds ->
      let kinds = Array.of_list kinds in
      let n = Array.length kinds in
      if Array.length vw.v_dims <> n then None (* static rank mismatch *)
      else
        let p = { lp_data = [||]; lp_base = 0; lp_step = 0; lp_dt = Dtype.F32 } in
        let rec chain d : frame -> int -> int -> int -> int -> bool =
          if d = n then
            fun f _ _ base step ->
              let bb = f.bufs.(vw.v_data) in
              p.lp_data <- bb.Buffer.data;
              p.lp_base <- base;
              p.lp_step <- step;
              p.lp_dt <- bb.Buffer.dtype;
              true
          else
            let de = vw.v_dims.(d) and ds = vw.v_strides.(d) in
            match kinds.(d) with
            | LI ->
                let rest = chain (d + 1) in
                fun f lo hi base step ->
                  lo >= 0
                  && hi <= f.ints.(de)
                  && rest f lo hi base (step + f.ints.(ds))
            | LInv g ->
                let rest = chain (d + 1) in
                fun f lo hi base step ->
                  let x = g f in
                  x >= 0
                  && x < f.ints.(de)
                  && rest f lo hi (base + (x * f.ints.(ds))) step
        in
        let ch = chain 0 in
        let resolve f lo hi = ch f lo hi f.ints.(vw.v_off) 0 in
        push resolve;
        Some p
  | _ -> None

(** Build the RHS tree of a fusable statement; [None] bails out of fusion. *)
and frhs ctx v ~push (e : expr) : fnode option =
  match e with
  | Read (b, idx) -> (
      match lleaf ctx v ~push b idx with
      | Some p -> Some (FLeaf p)
      | None -> None)
  | Var u when Sym.equal u v -> Some FIdx
  | _ when (not (mentions v e)) && not (has_read e) ->
      let g = cflt ctx e in
      let r = ref 0.0 in
      push (fun f _ _ ->
          r := g f;
          true);
      Some (FConst r)
  | Binop (op, a, b) when not (is_int e) -> (
      match op with
      | Mod -> None
      | _ -> (
          match (frhs ctx v ~push a, frhs ctx v ~push b) with
          | Some fa, Some fb -> Some (FBin (op, fa, fb))
          | _ -> None))
  | Neg a when not (is_int e) -> (
      match frhs ctx v ~push a with
      | Some fa -> Some (FNeg fa)
      | None -> None)
  | _ -> None

(** Generic per-element evaluator for RHS shapes without a dedicated loop. *)
and feval (nd : fnode) : int -> float =
  match nd with
  | FLeaf p -> fun i -> p.lp_data.(p.lp_base + (i * p.lp_step))
  | FIdx -> fun i -> float_of_int i
  | FConst r -> fun _ -> !r
  | FBin (op, a, b) -> (
      let fa = feval a and fb = feval b in
      match op with
      | Add -> fun i -> fa i +. fb i
      | Sub -> fun i -> fa i -. fb i
      | Mul -> fun i -> fa i *. fb i
      | Div -> fun i -> fa i /. fb i
      | Mod -> assert false)
  | FNeg a ->
      let fa = feval a in
      fun i -> -.(fa i)

(** The loop runner: called after a successful resolve, reads the plans'
    freshly written fields and sweeps [lo, hi). The instruction-body shapes —
    copy, broadcast, scale, multiply(-accumulate) — run as tight monomorphic
    loops with the F32 rounding inlined (allocation-free); anything else
    falls back to the generic evaluator. Operand order is preserved
    everywhere (IEEE multiplication is not bit-commutative under NaN). *)
and floop ~reduce (dst : lplan) (rhs : fnode) : int -> int -> unit =
  match rhs with
  | FLeaf s when not reduce ->
      fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let sd = s.lp_data and sb = s.lp_base and ss = s.lp_step in
        (match dst.lp_dt with
        | Dtype.F32 ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <- f32_round sd.(sb + (i * ss))
            done
        | dt ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <- Buffer.round_dtype dt sd.(sb + (i * ss))
            done)
  | FLeaf s ->
      fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let sd = s.lp_data and sb = s.lp_base and ss = s.lp_step in
        (match dst.lp_dt with
        | Dtype.F32 ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- f32_round (dd.(a) +. sd.(sb + (i * ss)))
            done
        | dt ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- Buffer.round_dtype dt (dd.(a) +. sd.(sb + (i * ss)))
            done)
  | FConst r when not reduce ->
      fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let x = Buffer.round_dtype dst.lp_dt !r in
        for i = l to h - 1 do
          dd.(db + (i * ds)) <- x
        done
  | FConst r ->
      fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let x = !r in
        (match dst.lp_dt with
        | Dtype.F32 ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- f32_round (dd.(a) +. x)
            done
        | dt ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- Buffer.round_dtype dt (dd.(a) +. x)
            done)
  | FBin (Mul, FLeaf s, FLeaf t) ->
      fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let sd = s.lp_data and sb = s.lp_base and ss = s.lp_step in
        let td = t.lp_data and tb = t.lp_base and ts = t.lp_step in
        (match (dst.lp_dt, reduce) with
        | Dtype.F32, true ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <-
                f32_round (dd.(a) +. (sd.(sb + (i * ss)) *. td.(tb + (i * ts))))
            done
        | Dtype.F32, false ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <-
                f32_round (sd.(sb + (i * ss)) *. td.(tb + (i * ts)))
            done
        | dt, true ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <-
                Buffer.round_dtype dt
                  (dd.(a) +. (sd.(sb + (i * ss)) *. td.(tb + (i * ts))))
            done
        | dt, false ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <-
                Buffer.round_dtype dt (sd.(sb + (i * ss)) *. td.(tb + (i * ts)))
            done)
  | FBin (Mul, FLeaf s, FConst c) ->
      fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let sd = s.lp_data and sb = s.lp_base and ss = s.lp_step in
        let x = !c in
        (match (dst.lp_dt, reduce) with
        | Dtype.F32, true ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- f32_round (dd.(a) +. (sd.(sb + (i * ss)) *. x))
            done
        | Dtype.F32, false ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <- f32_round (sd.(sb + (i * ss)) *. x)
            done
        | dt, true ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- Buffer.round_dtype dt (dd.(a) +. (sd.(sb + (i * ss)) *. x))
            done
        | dt, false ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <- Buffer.round_dtype dt (sd.(sb + (i * ss)) *. x)
            done)
  | FBin (Mul, FConst c, FLeaf s) ->
      fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let sd = s.lp_data and sb = s.lp_base and ss = s.lp_step in
        let x = !c in
        (match (dst.lp_dt, reduce) with
        | Dtype.F32, true ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- f32_round (dd.(a) +. (x *. sd.(sb + (i * ss))))
            done
        | Dtype.F32, false ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <- f32_round (x *. sd.(sb + (i * ss)))
            done
        | dt, true ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- Buffer.round_dtype dt (dd.(a) +. (x *. sd.(sb + (i * ss))))
            done
        | dt, false ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <- Buffer.round_dtype dt (x *. sd.(sb + (i * ss)))
            done)
  | nd ->
      let ev = feval nd in
      if reduce then fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let dt = dst.lp_dt in
        for i = l to h - 1 do
          let x = ev i in
          let a = db + (i * ds) in
          dd.(a) <- Buffer.round_dtype dt (dd.(a) +. x)
        done
      else fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let dt = dst.lp_dt in
        for i = l to h - 1 do
          dd.(db + (i * ds)) <- Buffer.round_dtype dt (ev i)
        done

(** Try to fuse a loop over [v] whose body is a single assign/reduce. *)
and cfuse ctx (v : Sym.t) (inner : stmt list) :
    ((frame -> int -> int -> bool) * (int -> int -> unit)) option =
  let fuse1 ~reduce b idx e =
    let resolvers = ref [] in
    let push r = resolvers := r :: !resolvers in
    match lleaf ctx v ~push b idx with
    | None -> None
    | Some dst -> (
        match frhs ctx v ~push e with
        | None -> None
        | Some rhs ->
            let rs = Array.of_list (List.rev !resolvers) in
            let nr = Array.length rs in
            let resolve f lo hi =
              try
                let ok = ref true and i = ref 0 in
                while !ok && !i < nr do
                  if not (rs.(!i) f lo hi) then ok := false;
                  incr i
                done;
                !ok
              with _ -> false
            in
            Some (resolve, floop ~reduce dst rhs))
  in
  match inner with
  | [ SAssign (b, idx, e) ] -> fuse1 ~reduce:false b idx e
  | [ SReduce (b, idx, e) ] -> fuse1 ~reduce:true b idx e
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

and cstmts ctx (body : stmt list) : frame -> unit =
  match List.map (cstmt ctx) body with
  | [] -> fun _ -> ()
  | [ s ] -> s
  | [ s1; s2 ] ->
      fun f ->
        s1 f;
        s2 f
  | l ->
      let cs = Array.of_list l in
      let n = Array.length cs in
      fun f ->
        for i = 0 to n - 1 do
          cs.(i) f
        done

and cstmt ctx (s : stmt) : frame -> unit =
  match s with
  | SAssign (b, idx, e) -> (
      match Sym.Tbl.find_opt ctx.slots b with
      | Some (SView v) ->
          let ad = cvaddr ctx v idx and ec = cflt ctx e in
          fun f ->
            let base = f.bufs.(v.v_data) in
            let a = ad f in
            base.Buffer.data.(a) <- Buffer.round_dtype base.Buffer.dtype (ec f)
      | _ ->
          let bc = cbuf ctx b and ad = caddr ctx idx and ec = cflt ctx e in
          fun f ->
            let buf = bc f in
            let a = ad buf f in
            buf.Buffer.data.(a) <- Buffer.round_dtype buf.Buffer.dtype (ec f))
  | SReduce (b, idx, e) -> (
      match Sym.Tbl.find_opt ctx.slots b with
      | Some (SView v) ->
          let ad = cvaddr ctx v idx and ec = cflt ctx e in
          fun f ->
            let base = f.bufs.(v.v_data) in
            let a = ad f in
            let x = ec f in
            base.Buffer.data.(a) <-
              Buffer.round_dtype base.Buffer.dtype (base.Buffer.data.(a) +. x)
      | _ ->
          let bc = cbuf ctx b and ad = caddr ctx idx and ec = cflt ctx e in
          fun f ->
            let buf = bc f in
            let a = ad buf f in
            let x = ec f in
            buf.Buffer.data.(a) <-
              Buffer.round_dtype buf.Buffer.dtype (buf.Buffer.data.(a) +. x))
  | SFor (v, lo, hi, inner) -> (
      let lo_c = cint ctx lo and hi_c = cint ctx hi in
      let slot = bind_int ctx v in
      let body = cstmts ctx inner in
      match cfuse ctx v inner with
      | None ->
          fun f ->
            let l = lo_c f and h = hi_c f in
            for i = l to h - 1 do
              f.ints.(slot) <- i;
              body f
            done
      | Some (resolve, run) ->
          fun f ->
            let l = lo_c f and h = hi_c f in
            if h <= l then ()
            else if resolve f l h then run l h
            else
              for i = l to h - 1 do
                f.ints.(slot) <- i;
                body f
              done)
  | SAlloc (b, dt, dims, _) ->
      let dims_c = List.map (cint ctx) dims in
      let slot = bind_buf ctx b in
      fun f -> f.bufs.(slot) <- Buffer.create dt (List.map (fun g -> g f) dims_c)
  | SIf (c, t, e) ->
      let cc = cbool ctx c and tc = cstmts ctx t and ec = cstmts ctx e in
      fun f -> if cc f then tc f else ec f
  | SCall (p, args) -> (
      match cinline ctx p args with
      | Some run -> run
      | None -> cgeneric_call ctx p args)

(** Inline a call: compile the callee's semantic body against the call site.
    Integer arguments bind to caller-frame slots; window arguments become
    views (offset/extent/stride slots, no per-call [Buffer.t]); preconditions
    and body are compiled with the callee's parameters in scope. Runtime
    order is exactly the interpreter's: arguments left to right, then
    preconditions in order, then the body. Returns [None] — deferring to the
    general call path — whenever the site doesn't fit (arity or kind
    mismatch, window over something that isn't in scope as a buffer). *)
and cinline ctx (p : proc) (args : call_arg list) : (frame -> unit) option =
  if List.length args <> List.length p.p_args then None
  else if
    not
      (List.for_all2
         (fun (a : arg) ca ->
           match (a.a_typ, ca) with
           | (TSize | TIndex | TBool), AExpr _ -> true
           | (TScalar _ | TTensor _), AWin w -> (
               match Sym.Tbl.find_opt ctx.slots w.wbuf with
               | Some (SBuf _ | SView _) -> true
               | _ -> false)
           | _ -> false)
         p.p_args args)
  then None
  else
    let acts =
      Array.of_list
        (List.filter_map
           (fun ((a : arg), ca) ->
             match (a.a_typ, ca) with
             | (TSize | TIndex | TBool), AExpr (Int n) ->
                 (* literal argument: no slot, no per-call work — uses
                    compile to the constant *)
                 Sym.Tbl.replace ctx.slots a.a_name (SConst n);
                 None
             | (TSize | TIndex | TBool), AExpr e ->
                 let g = cint ctx e in
                 let s = bind_int ctx a.a_name in
                 Some (fun f -> f.ints.(s) <- g f)
             | _, AWin w ->
                 let act, view = cwindow_view ctx w in
                 Sym.Tbl.replace ctx.slots a.a_name (SView view);
                 Some act
             | _ -> assert false)
           (List.combine p.p_args args))
    in
    let preds = Array.of_list (List.map (cbool ctx) p.p_preds) in
    let srcs = Array.of_list p.p_preds in
    let body = cstmts ctx p.p_body in
    let na = Array.length acts and np = Array.length preds in
    let name = p.p_name in
    Some
      (fun f ->
        for i = 0 to na - 1 do
          acts.(i) f
        done;
        for i = 0 to np - 1 do
          if not (preds.(i) f) then
            rerr "call to %s: precondition %s does not hold" name
              (Pp.expr_to_string srcs.(i))
        done;
        body f)

(** General call path: per-call-site preallocated callee frame, windows
    materialized as fresh buffers. Kept for the shapes {!cinline} declines
    (and for its exact runtime errors on malformed calls). *)
and cgeneric_call ctx (p : proc) (args : call_arg list) : frame -> unit =
  if List.length args <> List.length p.p_args then fun _ ->
    rerr "call to %s: arity mismatch" p.p_name
  else
    let cp = compile_callee p in
    (* caller-side argument evaluation, writing into the callee frame *)
    let binds =
      Array.of_list
        (List.map2
           (fun pslot (a : call_arg) ->
             match (pslot, a) with
             | PInt slot, AExpr e ->
                 let g = cint ctx e in
                 fun cf (callee : frame) -> callee.ints.(slot) <- g cf
             | PBuf slot, AWin w ->
                 let g = cwindow ctx w in
                 fun cf (callee : frame) -> callee.bufs.(slot) <- g cf
             | PBuf _, AExpr _ ->
                 fun _ _ ->
                   rerr "call to %s: scalar expression for tensor parameter"
                     p.p_name
             | PInt _, AWin _ ->
                 fun _ _ ->
                   rerr "call to %s: window argument for scalar parameter"
                     p.p_name)
           (Array.to_list cp.cp_params) args)
    in
    let nb = Array.length binds in
    (* per-call-site callee frame, reused across calls: a proc is a finite
       tree, so it cannot (transitively) call itself and the frame is never
       live twice *)
    let callee = mk_frame ~nints:cp.cp_nints ~nbufs:cp.cp_nbufs in
    let preds = cp.cp_preds and srcs = cp.cp_pred_srcs in
    let np = Array.length preds in
    let body = cp.cp_body in
    let name = p.p_name in
    fun f ->
      for i = 0 to nb - 1 do
        binds.(i) f callee
      done;
      for i = 0 to np - 1 do
        if not (preds.(i) callee) then
          rerr "call to %s: precondition %s does not hold" name
            (Pp.expr_to_string srcs.(i))
      done;
      body callee

(* ------------------------------------------------------------------ *)
(* Procedures                                                          *)

and compile_proc (p : proc) : cproc =
  let ctx = new_ctx () in
  let params =
    Array.of_list
      (List.map
         (fun (a : arg) ->
           match a.a_typ with
           | TSize | TIndex | TBool -> PInt (bind_int ctx a.a_name)
           | TScalar _ | TTensor _ -> PBuf (bind_buf ctx a.a_name))
         p.p_args)
  in
  let preds = Array.of_list (List.map (cbool ctx) p.p_preds) in
  let body = cstmts ctx p.p_body in
  {
    cp_nints = ctx.nints;
    cp_nbufs = ctx.nbufs;
    cp_params = params;
    cp_preds = preds;
    cp_pred_srcs = Array.of_list p.p_preds;
    cp_body = body;
  }

and compile_callee (p : proc) : cproc =
  let cache = Domain.DLS.get instr_cache in
  match List.find_opt (fun (q, _) -> q == p) !cache with
  | Some (_, cp) -> cp
  | None ->
      let cp = compile_proc p in
      cache := (p, cp) :: !cache;
      cp

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

type t = { src : proc; cp : cproc; frame : frame }

let compile (p : proc) : t =
  let cp = compile_proc p in
  { src = p; cp; frame = mk_frame ~nints:cp.cp_nints ~nbufs:cp.cp_nbufs }

let proc (t : t) : proc = t.src

let run (t : t) (args : Interp.value list) : unit =
  let p = t.src and cp = t.cp and f = t.frame in
  if List.length args <> Array.length cp.cp_params then
    rerr "run %s: expected %d arguments, got %d" p.p_name
      (Array.length cp.cp_params) (List.length args);
  List.iteri
    (fun i (v : Interp.value) ->
      match (cp.cp_params.(i), v) with
      | PInt slot, Interp.VInt n -> f.ints.(slot) <- n
      | PBuf slot, Interp.VBuf b -> f.bufs.(slot) <- b
      | _ ->
          rerr "run %s: argument %a has the wrong kind" p.p_name Sym.pp
            (List.nth p.p_args i).a_name)
    args;
  Array.iteri
    (fun i pred ->
      if not (pred f) then
        rerr "run %s: precondition %s does not hold" p.p_name
          (Pp.expr_to_string cp.cp_pred_srcs.(i)))
    cp.cp_preds;
  cp.cp_body f
