(** Compile-once/run-many execution engine.

    Lowers an {!Exo_ir.Ir.proc} to nested OCaml closures so that the repeated
    evaluations the paper's methodology relies on — tuner sweeps, equivalence
    checks, real-numerics GEMM tiles — stop re-walking the IR tree:

    - every symbol is resolved at compile time to an integer slot in a flat
      frame (no [Sym.Map] lookups at runtime);
    - expressions are statically sorted into integer and float paths, so no
      boxed [num] values are allocated during execution;
    - buffer accesses are specialized by arity and compute their flat element
      address directly against the buffer's strides (no per-access index
      lists or arrays);
    - instruction calls are {e inlined}: the callee's semantic body is
      compiled against the call site, window arguments become views — an
      offset and per-dimension extent/stride integers written into caller
      frame slots, no [Buffer.t] is allocated per call — and the callee's
      preconditions run in a once-per-call prologue;
    - innermost loops whose body is a single assign/reduce with loop-constant
      strides (exactly the shape of every ISA instruction's semantic body)
      are fused: after an entry-time resolution that re-checks every bounds
      condition the interpreter would check, the loop runs as a tight
      float-array kernel with pre-flattened addresses.

    Runtime behaviour is observationally identical to {!Interp}: the same
    per-dtype rounding on every write, the same bounds and precondition
    checks, the same evaluation strategy. Whenever a fast path cannot
    reproduce the interpreter's behaviour exactly (a rank mismatch, an
    out-of-bounds index, an unsupported expression shape) the compiled code
    falls back to the general closure path, which raises the interpreter's
    errors verbatim. A qcheck property in the test suite asserts bit-identical
    output buffers against the tree-walking interpreter, which stays in the
    repository as the definitional oracle. *)

open Exo_ir
open Ir

let rerr fmt = Fmt.kstr (fun s -> raise (Interp.Runtime_error s)) fmt
let berr fmt = Fmt.kstr (fun s -> raise (Buffer.Bounds s)) fmt

(* ------------------------------------------------------------------ *)
(* Frames and compile-time slot assignment                             *)

(** Runtime frame: integer bindings (sizes, indices, loop variables, window
    geometry) live in [ints], tensors/scalars in [bufs]; a binder's slot
    index is fixed at compile time. *)
type frame = { ints : int array; bufs : Buffer.t array }

(** A window argument of an inlined call: the backing buffer's slot plus the
    slots holding the view's offset and per-dimension extents and strides.
    The view's rank is static (window specs have a fixed shape); only the
    integers inside are per-call. *)
type view = {
  v_data : int;  (** [bufs] slot of the backing buffer *)
  v_off : int;  (** [ints] slot of the flat offset *)
  v_dims : int array;  (** [ints] slots of the extents *)
  v_strides : int array;  (** [ints] slots of the strides *)
}

type slot =
  | SInt of int
  | SConst of int  (** integer argument of an inlined call that is a literal *)
  | SBuf of int
  | SView of view

type ctx = {
  slots : slot Sym.Tbl.t;
  mutable nints : int;
  mutable nbufs : int;
}

let new_ctx () = { slots = Sym.Tbl.create 16; nints = 0; nbufs = 0 }

(** Reserve an anonymous integer slot (window geometry of inlined calls). *)
let alloc_int ctx =
  let i = ctx.nints in
  ctx.nints <- i + 1;
  i

let bind_int ctx v =
  let i = alloc_int ctx in
  Sym.Tbl.replace ctx.slots v (SInt i);
  i

let bind_buf ctx v =
  let i = ctx.nbufs in
  ctx.nbufs <- i + 1;
  Sym.Tbl.replace ctx.slots v (SBuf i);
  i

(* Placeholder for buffer slots that have not been bound yet. *)
let dummy_buf = Buffer.create ~init:0.0 Dtype.F32 []

let mk_frame ~nints ~nbufs =
  { ints = Array.make (max nints 1) 0; bufs = Array.make (max nbufs 1) dummy_buf }

(** Fetch-closure for a buffer-valued symbol. A view is materialized into a
    fresh [Buffer.t] (only general/fallback paths do this — hot paths read
    the view slots directly). Unbound or integer-valued symbols compile to
    raising closures, preserving the interpreter's lazy runtime errors on
    ill-formed (dead) code. *)
let cbuf ctx (b : Sym.t) : frame -> Buffer.t =
  match Sym.Tbl.find_opt ctx.slots b with
  | Some (SBuf i) -> fun f -> f.bufs.(i)
  | Some (SView v) ->
      fun f ->
        let base = f.bufs.(v.v_data) in
        {
          base with
          Buffer.offset = f.ints.(v.v_off);
          dims = Array.map (fun s -> f.ints.(s)) v.v_dims;
          strides = Array.map (fun s -> f.ints.(s)) v.v_strides;
        }
  | Some (SInt _ | SConst _) -> fun _ -> rerr "expected a buffer"
  | None -> fun _ -> rerr "unbound symbol %a at runtime" Sym.pp_debug b

(* ------------------------------------------------------------------ *)
(* Static expression sorts                                             *)

(** The interpreter's [num] tag is statically determined: [Var] only ever
    holds integers (buffers read through [Read]), [Read] always yields data.
    Mixed binops promote to float exactly like [Interp.to_float]. *)
let rec is_int (e : expr) : bool =
  match e with
  | Int _ | Var _ | Stride _ | Cmp _ | And _ | Or _ | Not _ -> true
  | Float _ | Read _ -> false
  | Neg a -> is_int a
  | Binop (_, a, b) -> is_int a && is_int b

let rec mentions v (e : expr) : bool =
  match e with
  | Var u -> Sym.equal u v
  | Int _ | Float _ -> false
  | Stride (b, _) -> Sym.equal b v
  | Neg a | Not a -> mentions v a
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      mentions v a || mentions v b
  | Read (b, idx) -> Sym.equal b v || List.exists (mentions v) idx

let rec has_read (e : expr) : bool =
  match e with
  | Read _ -> true
  | Int _ | Float _ | Var _ | Stride _ -> false
  | Neg a | Not a -> has_read a
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      has_read a || has_read b

(* ------------------------------------------------------------------ *)
(* Fused-loop plans                                                    *)

(** One array leaf of a fused loop: at loop entry [resolve] (stored
    separately) re-establishes the backing array, the flat address at loop
    counter 0, and the per-iteration address step, re-checking every bound
    the general path would check. *)
type lplan = {
  mutable lp_data : float array;
  mutable lp_base : int;
  mutable lp_step : int;
  mutable lp_dt : Dtype.t;
}

(** How one access dimension depends on the fused loop counter: indexed by
    the counter itself, or loop-invariant (closure evaluated at entry). *)
type lkind = LI | LInv of (frame -> int)

(** RHS of a fusable statement, as a tree over the loop counter. Leaves are
    live per-element array reads (so source/destination aliasing behaves
    exactly like the general path); constants are loop-invariant read-free
    subexpressions hoisted to an entry-time cell. The common instruction-body
    shapes (copy, scale, multiply-accumulate) get dedicated loop runners. *)
type fnode =
  | FLeaf of lplan
  | FIdx  (** the loop counter itself, as data *)
  | FConst of float ref
  | FBin of binop * fnode * fnode
  | FNeg of fnode

(** Exactly {!Buffer.round_dtype}[ F32], locally inlinable: the unboxed
    external pair keeps the hot loops allocation-free. *)
let f32_round (x : float) : float = Int32.float_of_bits (Int32.bits_of_float x)

(* ------------------------------------------------------------------ *)
(* Compiled procedures (general call path)                             *)

type pslot = PInt of int | PBuf of int

(** A compiled procedure: frame geometry, parameter slots in signature
    order, compiled preconditions (with their sources, for error messages),
    and the compiled body. *)
type cproc = {
  cp_nints : int;
  cp_nbufs : int;
  cp_params : pslot array;
  cp_preds : (frame -> bool) array;
  cp_pred_srcs : expr array;
  cp_body : frame -> unit;
}

(* Instruction procs are shared global constants; memoize their general-path
   compilation (by physical identity) so the call sites {!cinline} declines
   reuse one compiled body. Top-level [compile] entries are NOT memoized
   here, so compiling many ephemeral procs (property tests) cannot grow this
   table. Domain-local: a [cproc] closes over mutable plan cells, so each
   domain compiles its own copy (a handful of tiny instruction bodies)
   rather than sharing non-re-entrant closures across domains. *)
let instr_cache : (proc * cproc) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)

let rec cint ctx (e : expr) : frame -> int =
  if not (is_int e) then (
    (* the interpreter evaluates first (possibly raising Bounds), then
       rejects the float *)
    let g = cflt ctx e in
    fun f ->
      ignore (g f);
      rerr "expected an integer, got a float in %s" (Pp.expr_to_string e))
  else
    match e with
    | Int n -> fun _ -> n
    | Var v -> (
        match Sym.Tbl.find_opt ctx.slots v with
        | Some (SInt i) -> fun f -> f.ints.(i)
        | Some (SConst n) -> fun _ -> n
        | Some (SBuf _ | SView _) ->
            fun _ -> rerr "buffer %a used as a scalar" Sym.pp v
        | None -> fun _ -> rerr "unbound symbol %a at runtime" Sym.pp_debug v)
    | Stride (b, d) -> (
        match Sym.Tbl.find_opt ctx.slots b with
        | Some (SView v) ->
            let n = Array.length v.v_strides in
            if d < 0 || d >= n then fun _ ->
              rerr "stride dimension %d out of range" d
            else
              let s = v.v_strides.(d) in
              fun f -> f.ints.(s)
        | _ ->
            let bc = cbuf ctx b in
            fun f ->
              let buf = bc f in
              let n = Buffer.rank buf in
              if d < 0 || d >= n then rerr "stride dimension %d out of range" d;
              buf.Buffer.strides.(d))
    | Binop (op, a, b) -> (
        let fa = cint ctx a and fb = cint ctx b in
        match op with
        | Add -> fun f -> fa f + fb f
        | Sub -> fun f -> fa f - fb f
        | Mul -> fun f -> fa f * fb f
        | Div ->
            fun f ->
              let x = fa f and y = fb f in
              if y = 0 then rerr "division by zero";
              x / y
        | Mod ->
            fun f ->
              let x = fa f and y = fb f in
              if y = 0 then rerr "modulo by zero";
              x mod y)
    | Neg a ->
        let fa = cint ctx a in
        fun f -> -fa f
    | Cmp (op, a, b) ->
        let cmp =
          if is_int a && is_int b then
            let fa = cint ctx a and fb = cint ctx b in
            fun f -> compare (fa f) (fb f)
          else
            let fa = cflt ctx a and fb = cflt ctx b in
            fun f -> Float.compare (fa f) (fb f)
        in
        (match op with
        | Lt -> fun f -> if cmp f < 0 then 1 else 0
        | Le -> fun f -> if cmp f <= 0 then 1 else 0
        | Gt -> fun f -> if cmp f > 0 then 1 else 0
        | Ge -> fun f -> if cmp f >= 0 then 1 else 0
        | Eq -> fun f -> if cmp f = 0 then 1 else 0
        | Ne -> fun f -> if cmp f <> 0 then 1 else 0)
    | And (a, b) ->
        let fa = cbool ctx a and fb = cbool ctx b in
        fun f -> if fa f && fb f then 1 else 0
    | Or (a, b) ->
        let fa = cbool ctx a and fb = cbool ctx b in
        fun f -> if fa f || fb f then 1 else 0
    | Not a ->
        let fa = cbool ctx a in
        fun f -> if fa f then 0 else 1
    | Float _ | Read _ -> assert false (* not is_int *)

(** Booleans compile natively (no 0/1 round-trip): comparisons branch
    directly, connectives short-circuit. Semantics match {!cint}'s encoding
    exactly — float comparisons go through [Float.compare], so NaN ordering
    is identical. *)
and cbool ctx (e : expr) : frame -> bool =
  match e with
  | Cmp (op, a, b) when is_int a && is_int b -> (
      let fa = cint ctx a and fb = cint ctx b in
      match op with
      | Lt -> fun f -> fa f < fb f
      | Le -> fun f -> fa f <= fb f
      | Gt -> fun f -> fa f > fb f
      | Ge -> fun f -> fa f >= fb f
      | Eq -> fun f -> fa f = fb f
      | Ne -> fun f -> fa f <> fb f)
  | Cmp (op, a, b) -> (
      let fa = cflt ctx a and fb = cflt ctx b in
      match op with
      | Lt -> fun f -> Float.compare (fa f) (fb f) < 0
      | Le -> fun f -> Float.compare (fa f) (fb f) <= 0
      | Gt -> fun f -> Float.compare (fa f) (fb f) > 0
      | Ge -> fun f -> Float.compare (fa f) (fb f) >= 0
      | Eq -> fun f -> Float.compare (fa f) (fb f) = 0
      | Ne -> fun f -> Float.compare (fa f) (fb f) <> 0)
  | And (a, b) ->
      let fa = cbool ctx a and fb = cbool ctx b in
      fun f -> fa f && fb f
  | Or (a, b) ->
      let fa = cbool ctx a and fb = cbool ctx b in
      fun f -> fa f || fb f
  | Not a ->
      let fa = cbool ctx a in
      fun f -> not (fa f)
  | Int n ->
      let b = n <> 0 in
      fun _ -> b
  | _ ->
      let g = cint ctx e in
      fun f -> g f <> 0

and cflt ctx (e : expr) : frame -> float =
  if is_int e then (
    let g = cint ctx e in
    fun f -> float_of_int (g f))
  else
    match e with
    | Float x -> fun _ -> x
    | Read (b, idx) -> (
        match Sym.Tbl.find_opt ctx.slots b with
        | Some (SView v) ->
            let ad = cvaddr ctx v idx in
            fun f -> f.bufs.(v.v_data).Buffer.data.(ad f)
        | _ ->
            let bc = cbuf ctx b and ad = caddr ctx idx in
            fun f ->
              let buf = bc f in
              buf.Buffer.data.(ad buf f))
    | Binop (op, a, b) -> (
        let fa = cflt ctx a and fb = cflt ctx b in
        match op with
        | Add -> fun f -> fa f +. fb f
        | Sub -> fun f -> fa f -. fb f
        | Mul -> fun f -> fa f *. fb f
        | Div -> fun f -> fa f /. fb f
        | Mod ->
            fun f ->
              ignore (fa f);
              ignore (fb f);
              rerr "%% on data values")
    | Neg a ->
        let fa = cflt ctx a in
        fun f -> -.(fa f)
    | Int _ | Var _ | Stride _ | Cmp _ | And _ | Or _ | Not _ ->
        assert false (* is_int *)

(** Flat element address of [buf[idx]], specialized by arity so no index
    array is materialized; same bounds discipline as {!Buffer.addr}. *)
and caddr ctx (idx : expr list) : Buffer.t -> frame -> int =
  let oob i d ext = berr "index %d out of bounds for dimension %d (extent %d)" i d ext in
  let rank_mismatch n r = berr "rank mismatch: %d indices for rank %d" n r in
  match List.map (cint ctx) idx with
  | [] ->
      fun buf _ ->
        if Buffer.rank buf <> 0 then rank_mismatch 0 (Buffer.rank buf);
        buf.Buffer.offset
  | [ i0 ] ->
      fun buf f ->
        if Buffer.rank buf <> 1 then rank_mismatch 1 (Buffer.rank buf);
        let x0 = i0 f in
        if x0 < 0 || x0 >= buf.Buffer.dims.(0) then oob x0 0 buf.Buffer.dims.(0);
        buf.Buffer.offset + (x0 * buf.Buffer.strides.(0))
  | [ i0; i1 ] ->
      fun buf f ->
        if Buffer.rank buf <> 2 then rank_mismatch 2 (Buffer.rank buf);
        let x0 = i0 f in
        if x0 < 0 || x0 >= buf.Buffer.dims.(0) then oob x0 0 buf.Buffer.dims.(0);
        let x1 = i1 f in
        if x1 < 0 || x1 >= buf.Buffer.dims.(1) then oob x1 1 buf.Buffer.dims.(1);
        buf.Buffer.offset + (x0 * buf.Buffer.strides.(0)) + (x1 * buf.Buffer.strides.(1))
  | [ i0; i1; i2 ] ->
      fun buf f ->
        if Buffer.rank buf <> 3 then rank_mismatch 3 (Buffer.rank buf);
        let x0 = i0 f in
        if x0 < 0 || x0 >= buf.Buffer.dims.(0) then oob x0 0 buf.Buffer.dims.(0);
        let x1 = i1 f in
        if x1 < 0 || x1 >= buf.Buffer.dims.(1) then oob x1 1 buf.Buffer.dims.(1);
        let x2 = i2 f in
        if x2 < 0 || x2 >= buf.Buffer.dims.(2) then oob x2 2 buf.Buffer.dims.(2);
        buf.Buffer.offset
        + (x0 * buf.Buffer.strides.(0))
        + (x1 * buf.Buffer.strides.(1))
        + (x2 * buf.Buffer.strides.(2))
  | cs ->
      let cs = Array.of_list cs in
      let n = Array.length cs in
      fun buf f ->
        if Buffer.rank buf <> n then rank_mismatch n (Buffer.rank buf);
        let a = ref buf.Buffer.offset in
        for d = 0 to n - 1 do
          let x = cs.(d) f in
          if x < 0 || x >= buf.Buffer.dims.(d) then oob x d buf.Buffer.dims.(d);
          a := !a + (x * buf.Buffer.strides.(d))
        done;
        !a

(** Flat element address of a view access, reading geometry from the caller
    frame's integer slots; same checks and messages as {!caddr}. *)
and cvaddr ctx (v : view) (idx : expr list) : frame -> int =
  let oob i d ext = berr "index %d out of bounds for dimension %d (extent %d)" i d ext in
  let n = Array.length v.v_dims in
  let m = List.length idx in
  if m <> n then fun _ -> berr "rank mismatch: %d indices for rank %d" m n
  else
    let off = v.v_off in
    match List.map (cint ctx) idx with
    | [] -> fun f -> f.ints.(off)
    | [ i0 ] ->
        let d0 = v.v_dims.(0) and s0 = v.v_strides.(0) in
        fun f ->
          let x0 = i0 f in
          let e0 = f.ints.(d0) in
          if x0 < 0 || x0 >= e0 then oob x0 0 e0;
          f.ints.(off) + (x0 * f.ints.(s0))
    | [ i0; i1 ] ->
        let d0 = v.v_dims.(0) and s0 = v.v_strides.(0) in
        let d1 = v.v_dims.(1) and s1 = v.v_strides.(1) in
        fun f ->
          let x0 = i0 f in
          let e0 = f.ints.(d0) in
          if x0 < 0 || x0 >= e0 then oob x0 0 e0;
          let x1 = i1 f in
          let e1 = f.ints.(d1) in
          if x1 < 0 || x1 >= e1 then oob x1 1 e1;
          f.ints.(off) + (x0 * f.ints.(s0)) + (x1 * f.ints.(s1))
    | cs ->
        let cs = Array.of_list cs in
        fun f ->
          let a = ref f.ints.(off) in
          for d = 0 to n - 1 do
            let x = cs.(d) f in
            let e = f.ints.(v.v_dims.(d)) in
            if x < 0 || x >= e then oob x d e;
            a := !a + (x * f.ints.(v.v_strides.(d)))
          done;
          !a

(* ------------------------------------------------------------------ *)
(* Windows                                                             *)

(** Compile a window into a view-building closure (the runtime half of
    {!Buffer.view}, with the index closures pre-compiled). General path:
    allocates a fresh [Buffer.t] per call. *)
and cwindow ctx (w : window) : frame -> Buffer.t =
  let bc = cbuf ctx w.wbuf in
  let spec =
    Array.of_list
      (List.map
         (function
           | Pt e -> `P (cint ctx e)
           | Iv (lo, hi) -> `I (cint ctx lo, cint ctx hi))
         w.widx)
  in
  let out_rank =
    Array.fold_left (fun n s -> match s with `I _ -> n + 1 | `P _ -> n) 0 spec
  in
  fun f ->
    let buf = bc f in
    if Array.length spec <> Buffer.rank buf then
      berr "window rank mismatch on a rank-%d buffer" (Buffer.rank buf);
    let offset = ref buf.Buffer.offset in
    let dims = Array.make out_rank 0 and strides = Array.make out_rank 0 in
    let od = ref 0 in
    Array.iteri
      (fun d s ->
        match s with
        | `P g ->
            let i = g f in
            if i < 0 || i >= buf.Buffer.dims.(d) then
              berr "window point %d out of bounds in dimension %d (extent %d)" i d
                buf.Buffer.dims.(d);
            offset := !offset + (i * buf.Buffer.strides.(d))
        | `I (glo, ghi) ->
            let lo = glo f in
            let len = ghi f - lo in
            if lo < 0 || len < 0 || lo + len > buf.Buffer.dims.(d) then
              berr "window [%d, %d) out of bounds in dimension %d (extent %d)" lo
                (lo + len) d buf.Buffer.dims.(d);
            offset := !offset + (lo * buf.Buffer.strides.(d));
            dims.(!od) <- len;
            strides.(!od) <- buf.Buffer.strides.(d);
            incr od)
      spec;
    { buf with Buffer.offset = !offset; dims; strides }

(** Compile a window of an inlined call into (a) an action that, per call,
    computes the view's offset/extent/stride integers into freshly reserved
    caller-frame slots — with exactly {!Buffer.view}'s checks and error
    messages — and (b) the static [view] describing those slots. Only called
    when [w.wbuf] is in scope as a buffer or view. *)
and cwindow_view ctx (w : window) : (frame -> unit) * view =
  let spec =
    Array.of_list
      (List.map
         (function
           | Pt e -> `P (cint ctx e)
           | Iv (lo, hi) -> `I (cint ctx lo, cint ctx hi))
         w.widx)
  in
  let nspec = Array.length spec in
  let kept =
    Array.fold_left (fun n s -> match s with `I _ -> n + 1 | `P _ -> n) 0 spec
  in
  let off = alloc_int ctx in
  let dims = Array.init kept (fun _ -> alloc_int ctx) in
  let strides = Array.init kept (fun _ -> alloc_int ctx) in
  match Sym.Tbl.find_opt ctx.slots w.wbuf with
  | Some (SBuf j) ->
      let view = { v_data = j; v_off = off; v_dims = dims; v_strides = strides } in
      (* per-dimension steps chained at compile time: the accumulated offset
         travels as an (unboxed) argument, so the per-call action allocates
         nothing and performs no dispatch *)
      let rec chain d od : frame -> Buffer.t -> int -> unit =
        if d = nspec then fun f _ o -> f.ints.(off) <- o
        else
          match spec.(d) with
          | `P g ->
              let rest = chain (d + 1) od in
              fun f buf o ->
                let i = g f in
                let ext = buf.Buffer.dims.(d) in
                if i < 0 || i >= ext then
                  berr "window point %d out of bounds in dimension %d (extent %d)"
                    i d ext;
                rest f buf (o + (i * buf.Buffer.strides.(d)))
          | `I (glo, ghi) ->
              let rest = chain (d + 1) (od + 1) in
              let ds = dims.(od) and ss = strides.(od) in
              fun f buf o ->
                let lo = glo f in
                let len = ghi f - lo in
                let ext = buf.Buffer.dims.(d) in
                if lo < 0 || len < 0 || lo + len > ext then
                  berr "window [%d, %d) out of bounds in dimension %d (extent %d)"
                    lo (lo + len) d ext;
                f.ints.(ds) <- len;
                f.ints.(ss) <- buf.Buffer.strides.(d);
                rest f buf (o + (lo * buf.Buffer.strides.(d)))
      in
      let ch = chain 0 0 in
      let act f =
        let buf = f.bufs.(j) in
        if nspec <> Buffer.rank buf then
          berr "window rank mismatch on a rank-%d buffer" (Buffer.rank buf);
        ch f buf buf.Buffer.offset
      in
      (act, view)
  | Some (SView v) ->
      let r = Array.length v.v_dims in
      let view =
        { v_data = v.v_data; v_off = off; v_dims = dims; v_strides = strides }
      in
      if nspec <> r then
        ((fun _ -> berr "window rank mismatch on a rank-%d buffer" r), view)
      else
        let rec chain d od : frame -> int -> unit =
          if d = nspec then fun f o -> f.ints.(off) <- o
          else
            let de = v.v_dims.(d) and ds = v.v_strides.(d) in
            match spec.(d) with
            | `P g ->
                let rest = chain (d + 1) od in
                fun f o ->
                  let i = g f in
                  let ext = f.ints.(de) in
                  if i < 0 || i >= ext then
                    berr
                      "window point %d out of bounds in dimension %d (extent %d)"
                      i d ext;
                  rest f (o + (i * f.ints.(ds)))
            | `I (glo, ghi) ->
                let rest = chain (d + 1) (od + 1) in
                let kd = dims.(od) and ks = strides.(od) in
                fun f o ->
                  let lo = glo f in
                  let len = ghi f - lo in
                  let ext = f.ints.(de) in
                  if lo < 0 || len < 0 || lo + len > ext then
                    berr
                      "window [%d, %d) out of bounds in dimension %d (extent %d)"
                      lo (lo + len) d ext;
                  let st = f.ints.(ds) in
                  f.ints.(kd) <- len;
                  f.ints.(ks) <- st;
                  rest f (o + (lo * st))
        in
        let ch = chain 0 0 in
        let act f = ch f f.ints.(v.v_off) in
        (act, view)
  | _ -> assert false (* guarded by the caller *)

(* ------------------------------------------------------------------ *)
(* Fused loops                                                         *)

(** Build the leaf plan for an access [b[idx]] inside a loop over [v], plus
    the entry-time resolver. The resolver re-checks rank and every bound the
    general path would check per element (for the loop-indexed dimension:
    over the whole [lo, hi) range), and refreshes the plan's mutable fields.
    Returning [false] (or raising, absorbed by the caller) routes the whole
    loop to the general path, which reproduces the interpreter's error. *)
and lleaf ctx v ~push (b : Sym.t) (idx : expr list) : lplan option =
  let kinds =
    let rec go = function
      | [] -> Some []
      | e :: rest -> (
          let k =
            match e with
            | Var u when Sym.equal u v -> Some LI
            | e when not (mentions v e) -> Some (LInv (cint ctx e))
            | _ -> None
          in
          match (k, go rest) with
          | Some k, Some r -> Some (k :: r)
          | _ -> None)
    in
    go idx
  in
  match (Sym.Tbl.find_opt ctx.slots b, kinds) with
  | Some (SBuf j), Some kinds ->
      let kinds = Array.of_list kinds in
      let n = Array.length kinds in
      let p = { lp_data = [||]; lp_base = 0; lp_step = 0; lp_dt = Dtype.F32 } in
      (* per-dimension checks chained at compile time; base and step travel
         as (unboxed) arguments — no refs, no dispatch per call *)
      let rec chain d : frame -> Buffer.t -> int -> int -> int -> int -> bool =
        if d = n then
          fun _ buf _ _ base step ->
            p.lp_data <- buf.Buffer.data;
            p.lp_base <- base;
            p.lp_step <- step;
            p.lp_dt <- buf.Buffer.dtype;
            true
        else
          match kinds.(d) with
          | LI ->
              let rest = chain (d + 1) in
              fun f buf lo hi base step ->
                lo >= 0
                && hi <= buf.Buffer.dims.(d)
                && rest f buf lo hi base (step + buf.Buffer.strides.(d))
          | LInv g ->
              let rest = chain (d + 1) in
              fun f buf lo hi base step ->
                let x = g f in
                x >= 0
                && x < buf.Buffer.dims.(d)
                && rest f buf lo hi (base + (x * buf.Buffer.strides.(d))) step
      in
      let ch = chain 0 in
      let resolve f lo hi =
        let buf = f.bufs.(j) in
        Buffer.rank buf = n && ch f buf lo hi buf.Buffer.offset 0
      in
      push resolve;
      Some p
  | Some (SView vw), Some kinds ->
      let kinds = Array.of_list kinds in
      let n = Array.length kinds in
      if Array.length vw.v_dims <> n then None (* static rank mismatch *)
      else
        let p = { lp_data = [||]; lp_base = 0; lp_step = 0; lp_dt = Dtype.F32 } in
        let rec chain d : frame -> int -> int -> int -> int -> bool =
          if d = n then
            fun f _ _ base step ->
              let bb = f.bufs.(vw.v_data) in
              p.lp_data <- bb.Buffer.data;
              p.lp_base <- base;
              p.lp_step <- step;
              p.lp_dt <- bb.Buffer.dtype;
              true
          else
            let de = vw.v_dims.(d) and ds = vw.v_strides.(d) in
            match kinds.(d) with
            | LI ->
                let rest = chain (d + 1) in
                fun f lo hi base step ->
                  lo >= 0
                  && hi <= f.ints.(de)
                  && rest f lo hi base (step + f.ints.(ds))
            | LInv g ->
                let rest = chain (d + 1) in
                fun f lo hi base step ->
                  let x = g f in
                  x >= 0
                  && x < f.ints.(de)
                  && rest f lo hi (base + (x * f.ints.(ds))) step
        in
        let ch = chain 0 in
        let resolve f lo hi = ch f lo hi f.ints.(vw.v_off) 0 in
        push resolve;
        Some p
  | _ -> None

(** Build the RHS tree of a fusable statement; [None] bails out of fusion. *)
and frhs ctx v ~push (e : expr) : fnode option =
  match e with
  | Read (b, idx) -> (
      match lleaf ctx v ~push b idx with
      | Some p -> Some (FLeaf p)
      | None -> None)
  | Var u when Sym.equal u v -> Some FIdx
  | _ when (not (mentions v e)) && not (has_read e) ->
      let g = cflt ctx e in
      let r = ref 0.0 in
      push (fun f _ _ ->
          r := g f;
          true);
      Some (FConst r)
  | Binop (op, a, b) when not (is_int e) -> (
      match op with
      | Mod -> None
      | _ -> (
          match (frhs ctx v ~push a, frhs ctx v ~push b) with
          | Some fa, Some fb -> Some (FBin (op, fa, fb))
          | _ -> None))
  | Neg a when not (is_int e) -> (
      match frhs ctx v ~push a with
      | Some fa -> Some (FNeg fa)
      | None -> None)
  | _ -> None

(** Generic per-element evaluator for RHS shapes without a dedicated loop. *)
and feval (nd : fnode) : int -> float =
  match nd with
  | FLeaf p -> fun i -> p.lp_data.(p.lp_base + (i * p.lp_step))
  | FIdx -> fun i -> float_of_int i
  | FConst r -> fun _ -> !r
  | FBin (op, a, b) -> (
      let fa = feval a and fb = feval b in
      match op with
      | Add -> fun i -> fa i +. fb i
      | Sub -> fun i -> fa i -. fb i
      | Mul -> fun i -> fa i *. fb i
      | Div -> fun i -> fa i /. fb i
      | Mod -> assert false)
  | FNeg a ->
      let fa = feval a in
      fun i -> -.(fa i)

(** The loop runner: called after a successful resolve, reads the plans'
    freshly written fields and sweeps [lo, hi). The instruction-body shapes —
    copy, broadcast, scale, multiply(-accumulate) — run as tight monomorphic
    loops with the F32 rounding inlined (allocation-free); anything else
    falls back to the generic evaluator. Operand order is preserved
    everywhere (IEEE multiplication is not bit-commutative under NaN). *)
and floop ~reduce (dst : lplan) (rhs : fnode) : int -> int -> unit =
  match rhs with
  | FLeaf s when not reduce ->
      fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let sd = s.lp_data and sb = s.lp_base and ss = s.lp_step in
        (match dst.lp_dt with
        | Dtype.F32 ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <- f32_round sd.(sb + (i * ss))
            done
        | dt ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <- Buffer.round_dtype dt sd.(sb + (i * ss))
            done)
  | FLeaf s ->
      fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let sd = s.lp_data and sb = s.lp_base and ss = s.lp_step in
        (match dst.lp_dt with
        | Dtype.F32 ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- f32_round (dd.(a) +. sd.(sb + (i * ss)))
            done
        | dt ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- Buffer.round_dtype dt (dd.(a) +. sd.(sb + (i * ss)))
            done)
  | FConst r when not reduce ->
      fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let x = Buffer.round_dtype dst.lp_dt !r in
        for i = l to h - 1 do
          dd.(db + (i * ds)) <- x
        done
  | FConst r ->
      fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let x = !r in
        (match dst.lp_dt with
        | Dtype.F32 ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- f32_round (dd.(a) +. x)
            done
        | dt ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- Buffer.round_dtype dt (dd.(a) +. x)
            done)
  | FBin (Mul, FLeaf s, FLeaf t) ->
      fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let sd = s.lp_data and sb = s.lp_base and ss = s.lp_step in
        let td = t.lp_data and tb = t.lp_base and ts = t.lp_step in
        (match (dst.lp_dt, reduce) with
        | Dtype.F32, true ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <-
                f32_round (dd.(a) +. (sd.(sb + (i * ss)) *. td.(tb + (i * ts))))
            done
        | Dtype.F32, false ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <-
                f32_round (sd.(sb + (i * ss)) *. td.(tb + (i * ts)))
            done
        | dt, true ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <-
                Buffer.round_dtype dt
                  (dd.(a) +. (sd.(sb + (i * ss)) *. td.(tb + (i * ts))))
            done
        | dt, false ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <-
                Buffer.round_dtype dt (sd.(sb + (i * ss)) *. td.(tb + (i * ts)))
            done)
  | FBin (Mul, FLeaf s, FConst c) ->
      fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let sd = s.lp_data and sb = s.lp_base and ss = s.lp_step in
        let x = !c in
        (match (dst.lp_dt, reduce) with
        | Dtype.F32, true ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- f32_round (dd.(a) +. (sd.(sb + (i * ss)) *. x))
            done
        | Dtype.F32, false ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <- f32_round (sd.(sb + (i * ss)) *. x)
            done
        | dt, true ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- Buffer.round_dtype dt (dd.(a) +. (sd.(sb + (i * ss)) *. x))
            done
        | dt, false ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <- Buffer.round_dtype dt (sd.(sb + (i * ss)) *. x)
            done)
  | FBin (Mul, FConst c, FLeaf s) ->
      fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let sd = s.lp_data and sb = s.lp_base and ss = s.lp_step in
        let x = !c in
        (match (dst.lp_dt, reduce) with
        | Dtype.F32, true ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- f32_round (dd.(a) +. (x *. sd.(sb + (i * ss))))
            done
        | Dtype.F32, false ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <- f32_round (x *. sd.(sb + (i * ss)))
            done
        | dt, true ->
            for i = l to h - 1 do
              let a = db + (i * ds) in
              dd.(a) <- Buffer.round_dtype dt (dd.(a) +. (x *. sd.(sb + (i * ss))))
            done
        | dt, false ->
            for i = l to h - 1 do
              dd.(db + (i * ds)) <- Buffer.round_dtype dt (x *. sd.(sb + (i * ss)))
            done)
  | nd ->
      let ev = feval nd in
      if reduce then fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let dt = dst.lp_dt in
        for i = l to h - 1 do
          let x = ev i in
          let a = db + (i * ds) in
          dd.(a) <- Buffer.round_dtype dt (dd.(a) +. x)
        done
      else fun l h ->
        let dd = dst.lp_data and db = dst.lp_base and ds = dst.lp_step in
        let dt = dst.lp_dt in
        for i = l to h - 1 do
          dd.(db + (i * ds)) <- Buffer.round_dtype dt (ev i)
        done

(** Try to fuse a loop over [v] whose body is a single assign/reduce. *)
and cfuse ctx (v : Sym.t) (inner : stmt list) :
    ((frame -> int -> int -> bool) * (int -> int -> unit)) option =
  let fuse1 ~reduce b idx e =
    let resolvers = ref [] in
    let push r = resolvers := r :: !resolvers in
    match lleaf ctx v ~push b idx with
    | None -> None
    | Some dst -> (
        match frhs ctx v ~push e with
        | None -> None
        | Some rhs ->
            let rs = Array.of_list (List.rev !resolvers) in
            let nr = Array.length rs in
            let resolve f lo hi =
              try
                let ok = ref true and i = ref 0 in
                while !ok && !i < nr do
                  if not (rs.(!i) f lo hi) then ok := false;
                  incr i
                done;
                !ok
              with _ -> false
            in
            Some (resolve, floop ~reduce dst rhs))
  in
  match inner with
  | [ SAssign (b, idx, e) ] -> fuse1 ~reduce:false b idx e
  | [ SReduce (b, idx, e) ] -> fuse1 ~reduce:true b idx e
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

and cstmts ctx (body : stmt list) : frame -> unit =
  match List.map (cstmt ctx) body with
  | [] -> fun _ -> ()
  | [ s ] -> s
  | [ s1; s2 ] ->
      fun f ->
        s1 f;
        s2 f
  | l ->
      let cs = Array.of_list l in
      let n = Array.length cs in
      fun f ->
        for i = 0 to n - 1 do
          cs.(i) f
        done

and cstmt ctx (s : stmt) : frame -> unit =
  match s with
  | SAssign (b, idx, e) -> (
      match Sym.Tbl.find_opt ctx.slots b with
      | Some (SView v) ->
          let ad = cvaddr ctx v idx and ec = cflt ctx e in
          fun f ->
            let base = f.bufs.(v.v_data) in
            let a = ad f in
            base.Buffer.data.(a) <- Buffer.round_dtype base.Buffer.dtype (ec f)
      | _ ->
          let bc = cbuf ctx b and ad = caddr ctx idx and ec = cflt ctx e in
          fun f ->
            let buf = bc f in
            let a = ad buf f in
            buf.Buffer.data.(a) <- Buffer.round_dtype buf.Buffer.dtype (ec f))
  | SReduce (b, idx, e) -> (
      match Sym.Tbl.find_opt ctx.slots b with
      | Some (SView v) ->
          let ad = cvaddr ctx v idx and ec = cflt ctx e in
          fun f ->
            let base = f.bufs.(v.v_data) in
            let a = ad f in
            let x = ec f in
            base.Buffer.data.(a) <-
              Buffer.round_dtype base.Buffer.dtype (base.Buffer.data.(a) +. x)
      | _ ->
          let bc = cbuf ctx b and ad = caddr ctx idx and ec = cflt ctx e in
          fun f ->
            let buf = bc f in
            let a = ad buf f in
            let x = ec f in
            buf.Buffer.data.(a) <-
              Buffer.round_dtype buf.Buffer.dtype (buf.Buffer.data.(a) +. x))
  | SFor (v, lo, hi, inner) -> (
      let lo_c = cint ctx lo and hi_c = cint ctx hi in
      let slot = bind_int ctx v in
      let body = cstmts ctx inner in
      match cfuse ctx v inner with
      | None ->
          fun f ->
            let l = lo_c f and h = hi_c f in
            for i = l to h - 1 do
              f.ints.(slot) <- i;
              body f
            done
      | Some (resolve, run) ->
          fun f ->
            let l = lo_c f and h = hi_c f in
            if h <= l then ()
            else if resolve f l h then run l h
            else
              for i = l to h - 1 do
                f.ints.(slot) <- i;
                body f
              done)
  | SAlloc (b, dt, dims, _) ->
      let dims_c = List.map (cint ctx) dims in
      let slot = bind_buf ctx b in
      fun f -> f.bufs.(slot) <- Buffer.create dt (List.map (fun g -> g f) dims_c)
  | SIf (c, t, e) ->
      let cc = cbool ctx c and tc = cstmts ctx t and ec = cstmts ctx e in
      fun f -> if cc f then tc f else ec f
  | SCall (p, args) -> (
      match cinline ctx p args with
      | Some run -> run
      | None -> cgeneric_call ctx p args)

(** Inline a call: compile the callee's semantic body against the call site.
    Integer arguments bind to caller-frame slots; window arguments become
    views (offset/extent/stride slots, no per-call [Buffer.t]); preconditions
    and body are compiled with the callee's parameters in scope. Runtime
    order is exactly the interpreter's: arguments left to right, then
    preconditions in order, then the body. Returns [None] — deferring to the
    general call path — whenever the site doesn't fit (arity or kind
    mismatch, window over something that isn't in scope as a buffer). *)
and cinline ctx (p : proc) (args : call_arg list) : (frame -> unit) option =
  if List.length args <> List.length p.p_args then None
  else if
    not
      (List.for_all2
         (fun (a : arg) ca ->
           match (a.a_typ, ca) with
           | (TSize | TIndex | TBool), AExpr _ -> true
           | (TScalar _ | TTensor _), AWin w -> (
               match Sym.Tbl.find_opt ctx.slots w.wbuf with
               | Some (SBuf _ | SView _) -> true
               | _ -> false)
           | _ -> false)
         p.p_args args)
  then None
  else
    let acts =
      Array.of_list
        (List.filter_map
           (fun ((a : arg), ca) ->
             match (a.a_typ, ca) with
             | (TSize | TIndex | TBool), AExpr (Int n) ->
                 (* literal argument: no slot, no per-call work — uses
                    compile to the constant *)
                 Sym.Tbl.replace ctx.slots a.a_name (SConst n);
                 None
             | (TSize | TIndex | TBool), AExpr e ->
                 let g = cint ctx e in
                 let s = bind_int ctx a.a_name in
                 Some (fun f -> f.ints.(s) <- g f)
             | _, AWin w ->
                 let act, view = cwindow_view ctx w in
                 Sym.Tbl.replace ctx.slots a.a_name (SView view);
                 Some act
             | _ -> assert false)
           (List.combine p.p_args args))
    in
    let preds = Array.of_list (List.map (cbool ctx) p.p_preds) in
    let srcs = Array.of_list p.p_preds in
    let body = cstmts ctx p.p_body in
    let na = Array.length acts and np = Array.length preds in
    let name = p.p_name in
    Some
      (fun f ->
        for i = 0 to na - 1 do
          acts.(i) f
        done;
        for i = 0 to np - 1 do
          if not (preds.(i) f) then
            rerr "call to %s: precondition %s does not hold" name
              (Pp.expr_to_string srcs.(i))
        done;
        body f)

(** General call path: per-call-site preallocated callee frame, windows
    materialized as fresh buffers. Kept for the shapes {!cinline} declines
    (and for its exact runtime errors on malformed calls). *)
and cgeneric_call ctx (p : proc) (args : call_arg list) : frame -> unit =
  if List.length args <> List.length p.p_args then fun _ ->
    rerr "call to %s: arity mismatch" p.p_name
  else
    let cp = compile_callee p in
    (* caller-side argument evaluation, writing into the callee frame *)
    let binds =
      Array.of_list
        (List.map2
           (fun pslot (a : call_arg) ->
             match (pslot, a) with
             | PInt slot, AExpr e ->
                 let g = cint ctx e in
                 fun cf (callee : frame) -> callee.ints.(slot) <- g cf
             | PBuf slot, AWin w ->
                 let g = cwindow ctx w in
                 fun cf (callee : frame) -> callee.bufs.(slot) <- g cf
             | PBuf _, AExpr _ ->
                 fun _ _ ->
                   rerr "call to %s: scalar expression for tensor parameter"
                     p.p_name
             | PInt _, AWin _ ->
                 fun _ _ ->
                   rerr "call to %s: window argument for scalar parameter"
                     p.p_name)
           (Array.to_list cp.cp_params) args)
    in
    let nb = Array.length binds in
    (* per-call-site callee frame, reused across calls: a proc is a finite
       tree, so it cannot (transitively) call itself and the frame is never
       live twice *)
    let callee = mk_frame ~nints:cp.cp_nints ~nbufs:cp.cp_nbufs in
    let preds = cp.cp_preds and srcs = cp.cp_pred_srcs in
    let np = Array.length preds in
    let body = cp.cp_body in
    let name = p.p_name in
    fun f ->
      for i = 0 to nb - 1 do
        binds.(i) f callee
      done;
      for i = 0 to np - 1 do
        if not (preds.(i) callee) then
          rerr "call to %s: precondition %s does not hold" name
            (Pp.expr_to_string srcs.(i))
      done;
      body callee

(* ------------------------------------------------------------------ *)
(* Procedures                                                          *)

and compile_proc (p : proc) : cproc =
  let ctx = new_ctx () in
  let params =
    Array.of_list
      (List.map
         (fun (a : arg) ->
           match a.a_typ with
           | TSize | TIndex | TBool -> PInt (bind_int ctx a.a_name)
           | TScalar _ | TTensor _ -> PBuf (bind_buf ctx a.a_name))
         p.p_args)
  in
  let preds = Array.of_list (List.map (cbool ctx) p.p_preds) in
  let body = cstmts ctx p.p_body in
  {
    cp_nints = ctx.nints;
    cp_nbufs = ctx.nbufs;
    cp_params = params;
    cp_preds = preds;
    cp_pred_srcs = Array.of_list p.p_preds;
    cp_body = body;
  }

and compile_callee (p : proc) : cproc =
  let cache = Domain.DLS.get instr_cache in
  match List.find_opt (fun (q, _) -> q == p) !cache with
  | Some (_, cp) -> cp
  | None ->
      let cp = compile_proc p in
      cache := (p, cp) :: !cache;
      cp

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

type t = { src : proc; cp : cproc; frame : frame }

let compile (p : proc) : t =
  let cp = compile_proc p in
  { src = p; cp; frame = mk_frame ~nints:cp.cp_nints ~nbufs:cp.cp_nbufs }

let proc (t : t) : proc = t.src

let run (t : t) (args : Interp.value list) : unit =
  let p = t.src and cp = t.cp and f = t.frame in
  if List.length args <> Array.length cp.cp_params then
    rerr "run %s: expected %d arguments, got %d" p.p_name
      (Array.length cp.cp_params) (List.length args);
  List.iteri
    (fun i (v : Interp.value) ->
      match (cp.cp_params.(i), v) with
      | PInt slot, Interp.VInt n -> f.ints.(slot) <- n
      | PBuf slot, Interp.VBuf b -> f.bufs.(slot) <- b
      | _ ->
          rerr "run %s: argument %a has the wrong kind" p.p_name Sym.pp
            (List.nth p.p_args i).a_name)
    args;
  Array.iteri
    (fun i pred ->
      if not (pred f) then
        rerr "run %s: precondition %s does not hold" p.p_name
          (Pp.expr_to_string cp.cp_pred_srcs.(i)))
    cp.cp_preds;
  cp.cp_body f

(* ------------------------------------------------------------------ *)
(* Specialized micro-kernel lowering (to_ukr)                          *)

type ukr_fn =
  kc:int -> ac:float array -> ao:int -> bc:float array -> bo:int ->
  c:float array -> unit

(** A second lowering tier for the one proc shape the GEMM hot path runs
    tens of thousands of times per matrix: the generated micro-kernel
    signature [(KC: size, alpha: dt[1], Ac: dt[KC,MR], Bc: dt[KC,NR],
    beta: dt[1], C: dt[NR,MR])].

    The proc is {e symbolically executed} at lowering time: every loop
    except the single KC-trip k loop is fully unrolled, every instruction
    call is inlined with its window geometry folded to constants, and every
    register-memory cell ([SAlloc]) becomes a fixed slot in one flat scratch
    slab. What survives is a tape of straight-line memory operations whose
    addresses are affine in k alone ([base + k*step] into Ac, Bc, C or the
    slab). Runs of like operations (copies, fused multiply-accumulates)
    are batched into descriptor arrays driven by tight float-array loops —
    no closure dispatch, no [Sym.Map] lookups, and no [Buffer.t] records in
    the k loop.

    Soundness: the lowering refuses anything it cannot reproduce bit for
    bit. Structural refusals (non-affine indices, data reads of alpha or
    beta, a read of a slab cell the tape has not provably written — the
    interpreter's NaN-init semantics — symbolic loop nests, unsupported
    expression shapes) make [to_ukr] return [None]. Per-call refusals
    (operand arrays too short for the requested [kc], a KC-dependent
    precondition that fails, [kc = 0] when the tape reads loop-written
    cells afterwards) divert that call to the general closure engine over
    offset buffer views, which raises the interpreter's errors verbatim.
    Slab addresses are checked statically here, and the generated kernels
    are additionally bounds-certified ([Family.certify] demands every
    access Proved); Ac/Bc/C accesses are covered by one up-front range
    check per call, after which the loops use unsafe accesses. *)
module Ukr_lower = struct
  exception Bail

  let op_budget = 200_000

  type space = SpA | SpB | SpC | SpSlab

  (** Affine integer value [ak*k + akc*KC + a0] over the k-loop counter and
      the runtime depth KC. *)
  type aff = { ak : int; akc : int; a0 : int }

  let aconst n = { ak = 0; akc = 0; a0 = n }
  let aadd x y = { ak = x.ak + y.ak; akc = x.akc + y.akc; a0 = x.a0 + y.a0 }
  let asub x y = { ak = x.ak - y.ak; akc = x.akc - y.akc; a0 = x.a0 - y.a0 }
  let aneg x = { ak = -x.ak; akc = -x.akc; a0 = -x.a0 }
  let ascale n x = { ak = n * x.ak; akc = n * x.akc; a0 = n * x.a0 }
  let aisconst x = x.ak = 0 && x.akc = 0
  let aconstv x = if aisconst x then x.a0 else raise Bail

  (** A lowering-time view: which memory space it aliases ([None] for the
      alpha/beta scalars, whose data reads we refuse), its flat offset, and
      constant per-dimension strides. *)
  type uview = { vsp : space option; voff : aff; vstr : int list }

  type sval = SInt of aff | SView of uview

  (** One memory operand of a tape op: space, base, per-k step. *)
  type operand = { osp : space; ob : int; ok : int }

  type rt =
    | RConst of float
    | RRead of operand
    | RBin of binop * rt * rt
    | RNeg of rt

  type op = { o_dst : operand; o_red : bool; o_rhs : rt }
  type seg = { s_loop : bool; s_ops : op list }
  type wstat = WUncond | WInLoop
  type bval = BConst of bool | BKc of (int -> bool)

  type st = {
    env : sval Sym.Tbl.t;
    mutable slab_len : int;
    written : (int, wstat) Hashtbl.t;
    body_writes : (int, unit) Hashtbl.t;
    mutable in_loop : bool;
    mutable needs_kc_pos : bool;
    mutable rt_preds : (int -> bool) list;
    mutable cur : op list;  (* reversed ops of the open segment *)
    mutable segs : seg list;  (* reversed finished segments *)
    mutable nops : int;
    dt : Dtype.t;
  }

  let strides_of_const (ds : int list) : int list =
    let n = List.length ds in
    let a = Array.of_list ds in
    let s = Array.make n 1 in
    for i = n - 2 downto 0 do
      s.(i) <- s.(i + 1) * a.(i + 1)
    done;
    Array.to_list s

  (* ---------------- symbolic evaluation ---------------- *)

  let rec eint st (e : expr) : aff =
    match e with
    | Int n -> aconst n
    | Var v -> (
        match Sym.Tbl.find_opt st.env v with
        | Some (SInt a) -> a
        | _ -> raise Bail)
    | Binop (Add, a, b) -> aadd (eint st a) (eint st b)
    | Binop (Sub, a, b) -> asub (eint st a) (eint st b)
    | Binop (Mul, a, b) ->
        let x = eint st a and y = eint st b in
        if aisconst x then ascale x.a0 y
        else if aisconst y then ascale y.a0 x
        else raise Bail
    | Binop (Div, a, b) ->
        let x = aconstv (eint st a) and y = aconstv (eint st b) in
        if y = 0 then raise Bail;
        aconst (x / y)
    | Binop (Mod, a, b) ->
        let x = aconstv (eint st a) and y = aconstv (eint st b) in
        if y = 0 then raise Bail;
        aconst (x mod y)
    | Neg a -> aneg (eint st a)
    | Stride (b, d) -> (
        match Sym.Tbl.find_opt st.env b with
        | Some (SView v) -> (
            match List.nth_opt v.vstr d with
            | Some s -> aconst s
            | None -> raise Bail)
        | _ -> raise Bail)
    | Cmp _ | And _ | Or _ | Not _ -> (
        match ebool st e with
        | BConst b -> aconst (if b then 1 else 0)
        | BKc _ -> raise Bail)
    | Float _ | Read _ -> raise Bail

  and ebool st (e : expr) : bval =
    match e with
    | Cmp (op, a, b) ->
        let x = eint st a and y = eint st b in
        if x.ak <> 0 || y.ak <> 0 then raise Bail;
        let f kc =
          let c = compare ((x.akc * kc) + x.a0) ((y.akc * kc) + y.a0) in
          match op with
          | Lt -> c < 0
          | Le -> c <= 0
          | Gt -> c > 0
          | Ge -> c >= 0
          | Eq -> c = 0
          | Ne -> c <> 0
        in
        if x.akc = 0 && y.akc = 0 then BConst (f 0) else BKc f
    | And (a, b) -> (
        match ebool st a with
        | BConst false -> BConst false
        | BConst true -> ebool st b
        | BKc f -> (
            match ebool st b with
            | BConst false -> BConst false
            | BConst true -> BKc f
            | BKc g -> BKc (fun kc -> f kc && g kc)))
    | Or (a, b) -> (
        match ebool st a with
        | BConst true -> BConst true
        | BConst false -> ebool st b
        | BKc f -> (
            match ebool st b with
            | BConst true -> BConst true
            | BConst false -> BKc f
            | BKc g -> BKc (fun kc -> f kc || g kc)))
    | Not a -> (
        match ebool st a with
        | BConst b -> BConst (not b)
        | BKc f -> BKc (fun kc -> not (f kc)))
    | _ ->
        let x = eint st e in
        if x.ak <> 0 then raise Bail
        else if x.akc = 0 then BConst (x.a0 <> 0)
        else BKc (fun kc -> (x.akc * kc) + x.a0 <> 0)

  let eview st (w : window) : uview =
    let base =
      match Sym.Tbl.find_opt st.env w.wbuf with
      | Some (SView v) -> v
      | _ -> raise Bail
    in
    if List.length w.widx <> List.length base.vstr then raise Bail;
    let voff = ref base.voff and kept = ref [] in
    List.iter2
      (fun wa stride ->
        match wa with
        | Pt e -> voff := aadd !voff (ascale stride (eint st e))
        | Iv (lo, _hi) ->
            voff := aadd !voff (ascale stride (eint st lo));
            kept := stride :: !kept)
      w.widx base.vstr;
    { vsp = base.vsp; voff = !voff; vstr = List.rev !kept }

  let operand_of st (v : uview) (idx : aff list) : operand =
    if List.length idx <> List.length v.vstr then raise Bail;
    let a = List.fold_left2 (fun acc i s -> aadd acc (ascale s i)) v.voff idx v.vstr in
    if a.akc <> 0 then raise Bail;
    match v.vsp with
    | None -> raise Bail
    | Some SpSlab ->
        if a.ak <> 0 then raise Bail;
        if a.a0 < 0 || a.a0 >= st.slab_len then raise Bail;
        { osp = SpSlab; ob = a.a0; ok = 0 }
    | Some sp -> { osp = sp; ob = a.a0; ok = a.ak }

  (* Slab reads must be provably preceded by a write: the interpreter
     allocates register memory NaN-initialized, so a read of a never-written
     cell is observable. A cell written only inside the k loop and read
     after it needs kc >= 1 at runtime (flagged, guarded per call). *)
  let check_read st (o : operand) =
    if o.osp = SpSlab then
      if Hashtbl.mem st.body_writes o.ob then ()
      else
        match Hashtbl.find_opt st.written o.ob with
        | Some WUncond -> ()
        | Some WInLoop -> if not st.in_loop then st.needs_kc_pos <- true
        | None -> raise Bail

  let mark_write st (o : operand) =
    if o.osp = SpSlab then
      if st.in_loop then Hashtbl.replace st.body_writes o.ob ()
      else Hashtbl.replace st.written o.ob WUncond

  let rec edata st (e : expr) : rt =
    if is_int e then RConst (float_of_int (aconstv (eint st e)))
    else
      match e with
      | Float f -> RConst f
      | Read (b, idx) ->
          let v =
            match Sym.Tbl.find_opt st.env b with
            | Some (SView v) -> v
            | _ -> raise Bail
          in
          let o = operand_of st v (List.map (eint st) idx) in
          check_read st o;
          RRead o
      | Binop (bop, a, b) -> (
          match bop with
          | Add | Sub | Mul | Div -> RBin (bop, edata st a, edata st b)
          | Mod -> raise Bail (* "% on data values" is a runtime error *))
      | Neg a -> RNeg (edata st a)
      | Int _ | Var _ | Stride _ | Cmp _ | And _ | Or _ | Not _ -> raise Bail

  (* ---------------- statement execution ---------------- *)

  let emit st o =
    st.nops <- st.nops + 1;
    if st.nops > op_budget then raise Bail;
    st.cur <- o :: st.cur

  let flush st ~loop =
    let ops = List.rev st.cur in
    st.cur <- [];
    if ops <> [] then st.segs <- { s_loop = loop; s_ops = ops } :: st.segs

  let rec estmt st (s : stmt) : unit =
    match s with
    | SAssign (b, idx, rhs) -> write st b idx rhs false
    | SReduce (b, idx, rhs) -> write st b idx rhs true
    | SAlloc (b, dt, dims, _mem) ->
        if dt <> st.dt then raise Bail;
        let ds = List.map (fun d -> aconstv (eint st d)) dims in
        if List.exists (fun d -> d < 0) ds then raise Bail;
        Sym.Tbl.replace st.env b
          (SView
             {
               vsp = Some SpSlab;
               voff = aconst st.slab_len;
               vstr = strides_of_const ds;
             });
        st.slab_len <- st.slab_len + List.fold_left ( * ) 1 ds
    | SFor (v, lo, hi, body) ->
        let l = eint st lo and h = eint st hi in
        if aisconst l && aisconst h then begin
          (* constant trip count: unroll *)
          for i = l.a0 to h.a0 - 1 do
            Sym.Tbl.replace st.env v (SInt (aconst i));
            List.iter (estmt st) body
          done;
          Sym.Tbl.remove st.env v
        end
        else begin
          (* the (single, non-nested) symbolic KC loop *)
          if st.in_loop then raise Bail;
          if not (aisconst l && l.a0 = 0 && h.ak = 0 && h.akc = 1 && h.a0 = 0)
          then raise Bail;
          flush st ~loop:false;
          st.in_loop <- true;
          Sym.Tbl.replace st.env v (SInt { ak = 1; akc = 0; a0 = 0 });
          List.iter (estmt st) body;
          Sym.Tbl.remove st.env v;
          st.in_loop <- false;
          Hashtbl.iter
            (fun a () ->
              match Hashtbl.find_opt st.written a with
              | Some WUncond -> ()
              | _ -> Hashtbl.replace st.written a WInLoop)
            st.body_writes;
          Hashtbl.reset st.body_writes;
          flush st ~loop:true
        end
    | SCall (p, args) ->
        if List.length args <> List.length p.p_args then raise Bail;
        List.iter2
          (fun (a : arg) ca ->
            match (a.a_typ, ca) with
            | (TSize | TIndex | TBool), AExpr e ->
                Sym.Tbl.replace st.env a.a_name (SInt (eint st e))
            | (TScalar _ | TTensor _), AWin w ->
                Sym.Tbl.replace st.env a.a_name (SView (eview st w))
            | _ -> raise Bail)
          p.p_args args;
        List.iter
          (fun pr ->
            match ebool st pr with
            | BConst true -> ()
            | BConst false -> raise Bail
            | BKc f -> st.rt_preds <- f :: st.rt_preds)
          p.p_preds;
        List.iter (estmt st) p.p_body
    | SIf (c, t, e) -> (
        match ebool st c with
        | BConst true -> List.iter (estmt st) t
        | BConst false -> List.iter (estmt st) e
        | BKc _ -> raise Bail)

  and write st b idx rhs red =
    let v =
      match Sym.Tbl.find_opt st.env b with
      | Some (SView v) -> v
      | _ -> raise Bail
    in
    let dst = operand_of st v (List.map (eint st) idx) in
    (* the interpreter evaluates the RHS before the store *)
    let r = edata st rhs in
    if red then check_read st dst (* += reads the old value *);
    mark_write st dst;
    emit st { o_dst = dst; o_red = red; o_rhs = r }

  (* ---------------- signature and lowering ---------------- *)

  type lowered = {
    lo_segs : seg array;
    lo_slab : int;
    lo_kc_pos : bool;
    lo_preds : (int -> bool) array;
    lo_mr : int;
    lo_nr : int;
    lo_dt : Dtype.t;
  }

  let lower (p : proc) : lowered option =
    match
      (match p.p_args with
      | [ kc_a; alpha_a; ac_a; bc_a; beta_a; c_a ] ->
          (match kc_a.a_typ with TSize -> () | _ -> raise Bail);
          let dt, mr, nr =
            match (ac_a.a_typ, bc_a.a_typ, c_a.a_typ) with
            | ( TTensor (d1, [ Var s1; Int mr ]),
                TTensor (d2, [ Var s2; Int nr ]),
                TTensor (d3, [ Int nr'; Int mr' ]) )
              when Sym.equal s1 kc_a.a_name
                   && Sym.equal s2 kc_a.a_name
                   && d1 = d2 && d2 = d3 && nr' = nr && mr' = mr && mr > 0
                   && nr > 0 ->
                (d1, mr, nr)
            | _ -> raise Bail
          in
          let scal_strides (a : arg) =
            match a.a_typ with
            | TTensor (d, [ Int 1 ]) when d = dt -> [ 1 ]
            | TScalar d when d = dt -> []
            | _ -> raise Bail
          in
          let st =
            {
              env = Sym.Tbl.create 64;
              slab_len = 0;
              written = Hashtbl.create 256;
              body_writes = Hashtbl.create 64;
              in_loop = false;
              needs_kc_pos = false;
              rt_preds = [];
              cur = [];
              segs = [];
              nops = 0;
              dt;
            }
          in
          Sym.Tbl.replace st.env kc_a.a_name (SInt { ak = 0; akc = 1; a0 = 0 });
          let bind_view (a : arg) sp str =
            Sym.Tbl.replace st.env a.a_name
              (SView { vsp = sp; voff = aconst 0; vstr = str })
          in
          bind_view alpha_a None (scal_strides alpha_a);
          bind_view beta_a None (scal_strides beta_a);
          bind_view ac_a (Some SpA) [ mr; 1 ];
          bind_view bc_a (Some SpB) [ nr; 1 ];
          bind_view c_a (Some SpC) [ mr; 1 ];
          List.iter
            (fun pr ->
              match ebool st pr with
              | BConst true -> ()
              | BConst false -> raise Bail
              | BKc f -> st.rt_preds <- f :: st.rt_preds)
            p.p_preds;
          List.iter (estmt st) p.p_body;
          flush st ~loop:false;
          {
            lo_segs = Array.of_list (List.rev st.segs);
            lo_slab = st.slab_len;
            lo_kc_pos = st.needs_kc_pos;
            lo_preds = Array.of_list (List.rev st.rt_preds);
            lo_mr = mr;
            lo_nr = nr;
            lo_dt = dt;
          }
      | _ -> raise Bail)
    with
    | exception Bail -> None
    | l -> Some l
end

(* ------------------------------------------------------------------ *)
(* The auditable access summary of a lowered tape                      *)

module Summary = struct
  (** The address spaces a tape operand can touch: the packed A and B
      panels, the C tile, and the kernel's private scratch slab. *)
  type space = A | B | C | Slab

  (** One memory operand: element [base + kstep·k] of [sp], with [k] the
      k-loop counter ([kstep] is 0 for every operand outside the loop —
      addresses there are compile-time constants). *)
  type operand = { sp : space; base : int; kstep : int }

  type rhs =
    | Const of float
    | Read of operand
    | Bin of binop * rhs * rhs
    | Neg of rhs

  (** One tape statement: [dst = rhs], or [dst += rhs] when [reduce]. *)
  type op = { dst : operand; reduce : bool; rhs : rhs }

  (** A maximal run of statements, either straight-line ([in_loop] false,
      executed once per call) or the k-loop body (executed for
      k = 0 .. kc-1). *)
  type seg = { in_loop : bool; ops : op list }

  type t = {
    mr : int;
    nr : int;
    dt : Dtype.t;
    slab : int;  (** scratch slab length (register-memory flattening) *)
    kc_pos : bool;  (** tape demands kc ≥ 1 (loop-carried post-loop read) *)
    n_preds : int;  (** residual KC-dependent runtime predicates *)
    segs : seg list;
  }

  let space_name = function A -> "A" | B -> "B" | C -> "C" | Slab -> "slab"
end

(* The summary is derived from the very [lowered] value whose segments the
   tape runtime executes — faithful by construction, not a re-derivation. *)
let summary_of_lowered (l : Ukr_lower.lowered) : Summary.t =
  let open Ukr_lower in
  let space = function
    | SpA -> Summary.A
    | SpB -> Summary.B
    | SpC -> Summary.C
    | SpSlab -> Summary.Slab
  in
  let operand (o : operand) =
    { Summary.sp = space o.osp; base = o.ob; kstep = o.ok }
  in
  let rec rhs = function
    | RConst f -> Summary.Const f
    | RRead o -> Summary.Read (operand o)
    | RBin (b, x, y) -> Summary.Bin (b, rhs x, rhs y)
    | RNeg x -> Summary.Neg (rhs x)
  in
  let op (o : op) =
    { Summary.dst = operand o.o_dst; reduce = o.o_red; rhs = rhs o.o_rhs }
  in
  let seg (s : seg) = { Summary.in_loop = s.s_loop; ops = List.map op s.s_ops } in
  {
    Summary.mr = l.lo_mr;
    nr = l.lo_nr;
    dt = l.lo_dt;
    slab = l.lo_slab;
    kc_pos = l.lo_kc_pos;
    n_preds = Array.length l.lo_preds;
    segs = List.map seg (Array.to_list l.lo_segs);
  }

let summarize_ukr (p : proc) : Summary.t option =
  Option.map summary_of_lowered (Ukr_lower.lower p)

(** Runtime for the lowered tape: descriptor-batched float-array loops. *)
module Ukr_run = struct
  open Ukr_lower

  (** Per-call operand bindings. The slab persists across calls: every read
      is write-before-read checked at lowering time, so stale values are
      unobservable and the slab is never cleared. *)
  type genv = {
    ea : float array;
    eao : int;
    eb : float array;
    ebo : int;
    ec : float array;
    es : float array;
  }

  let arr (g : genv) = function
    | SpA -> g.ea
    | SpB -> g.eb
    | SpC -> g.ec
    | SpSlab -> g.es

  let off (g : genv) = function SpA -> g.eao | SpB -> g.ebo | SpC | SpSlab -> 0

  (* ------- op classification and run batching ------- *)

  type cls =
    | CCopy of operand * operand
    | CConst of operand * float
    | CMul of operand * operand * operand
    | CMulAcc of operand * operand * operand
    | CAddAcc of operand * operand
    | CGen of op

  let classify (o : op) : cls =
    match (o.o_red, o.o_rhs) with
    | false, RRead s -> CCopy (o.o_dst, s)
    | false, RConst v -> CConst (o.o_dst, v)
    | false, RBin (Mul, RRead a, RRead b) -> CMul (o.o_dst, a, b)
    | true, RBin (Mul, RRead a, RRead b) -> CMulAcc (o.o_dst, a, b)
    | true, RRead s -> CAddAcc (o.o_dst, s)
    | _ -> CGen o

  let same_shape c1 c2 =
    match (c1, c2) with
    | CCopy (d1, a1), CCopy (d2, a2) | CAddAcc (d1, a1), CAddAcc (d2, a2) ->
        d1.osp = d2.osp && a1.osp = a2.osp
    | CConst (d1, _), CConst (d2, _) -> d1.osp = d2.osp
    | CMul (d1, a1, b1), CMul (d2, a2, b2)
    | CMulAcc (d1, a1, b1), CMulAcc (d2, a2, b2) ->
        d1.osp = d2.osp && a1.osp = a2.osp && b1.osp = b2.osp
    | _ -> false

  let bases os = Array.map (fun (o : operand) -> o.ob) os
  let steps os = Array.map (fun (o : operand) -> o.ok) os
  let uniform (a : int array) = Array.for_all (fun x -> x = a.(0)) a

  (* compiled data expression for the general (rare) op shape *)
  let rec mk_rt (r : rt) : genv -> int -> float =
    match r with
    | RConst v -> fun _ _ -> v
    | RRead o ->
        let b = o.ob and s = o.ok and sp = o.osp in
        fun g ->
          let a = arr g sp and f = off g sp in
          fun k -> Array.unsafe_get a (f + b + (k * s))
    | RBin (bop, x, y) ->
        let fx = mk_rt x and fy = mk_rt y in
        let h =
          match bop with
          | Add -> ( +. )
          | Sub -> ( -. )
          | Mul -> ( *. )
          | Div -> ( /. )
          | Mod -> fun _ _ -> assert false (* refused at lowering *)
        in
        fun g ->
          let gx = fx g and gy = fy g in
          fun k -> h (gx k) (gy k)
    | RNeg x ->
        let fx = mk_rt x in
        fun g ->
          let gx = fx g in
          fun k -> -.gx k

  let g_gen ~rnd (o : op) : genv -> int -> unit =
    let frt = mk_rt o.o_rhs in
    let dsp = o.o_dst.osp and db = o.o_dst.ob and dk = o.o_dst.ok in
    let red = o.o_red in
    fun g ->
      let da = arr g dsp and d0 = off g dsp in
      let fv = frt g in
      if red then fun k ->
        let di = d0 + db + (k * dk) in
        Array.unsafe_set da di (rnd (Array.unsafe_get da di +. fv k))
      else fun k ->
        let di = d0 + db + (k * dk) in
        Array.unsafe_set da di (rnd (fv k))

  (* Batched copy: dst_i <- round(src_i). F32-specialized with the rounding
     inlined; the uniform-step variant hoists k*step out of the element
     loop (every in-repo kernel's operand loads are uniform-step). *)
  let g_copy ~rnd ~f32 dsp asp ds as_ =
    let n = Array.length ds in
    let db = bases ds and dk = steps ds and ab = bases as_ and ak = steps as_ in
    if n > 0 && uniform dk && uniform ak then
      let dks = dk.(0) and aks = ak.(0) in
      fun g ->
        let da = arr g dsp and d0 = off g dsp in
        let aa = arr g asp and a0 = off g asp in
        if f32 then fun k ->
          let dko = d0 + (k * dks) and ako = a0 + (k * aks) in
          for i = 0 to n - 1 do
            Array.unsafe_set da
              (dko + Array.unsafe_get db i)
              (f32_round (Array.unsafe_get aa (ako + Array.unsafe_get ab i)))
          done
        else fun k ->
          let dko = d0 + (k * dks) and ako = a0 + (k * aks) in
          for i = 0 to n - 1 do
            Array.unsafe_set da
              (dko + Array.unsafe_get db i)
              (rnd (Array.unsafe_get aa (ako + Array.unsafe_get ab i)))
          done
    else
      fun g ->
        let da = arr g dsp and d0 = off g dsp in
        let aa = arr g asp and a0 = off g asp in
        fun k ->
          for i = 0 to n - 1 do
            let di = d0 + Array.unsafe_get db i + (k * Array.unsafe_get dk i) in
            let ai = a0 + Array.unsafe_get ab i + (k * Array.unsafe_get ak i) in
            Array.unsafe_set da di (rnd (Array.unsafe_get aa ai))
          done

  (* Batched constant store; values pre-rounded at build time. *)
  let g_const ~rnd dsp ds (vs : float array) =
    let n = Array.length ds in
    let db = bases ds and dk = steps ds in
    let vr = Array.map rnd vs in
    fun g ->
      let da = arr g dsp and d0 = off g dsp in
      fun k ->
        for i = 0 to n - 1 do
          Array.unsafe_set da
            (d0 + Array.unsafe_get db i + (k * Array.unsafe_get dk i))
            (Array.unsafe_get vr i)
        done

  (* Batched fused multiply-accumulate: dst_i <- round(dst_i + a_i*b_i).
     The GEMM k-loop body is one of these over every C-register cell. *)
  let g_mulacc ~rnd ~f32 dsp asp bsp ds as_ bs =
    let n = Array.length ds in
    let db = bases ds and dk = steps ds in
    let ab = bases as_ and ak = steps as_ in
    let bb = bases bs and bk = steps bs in
    if n > 0 && uniform dk && uniform ak && uniform bk then
      let dks = dk.(0) and aks = ak.(0) and bks = bk.(0) in
      fun g ->
        let da = arr g dsp and d0 = off g dsp in
        let aa = arr g asp and a0 = off g asp in
        let ba = arr g bsp and b0 = off g bsp in
        if f32 then fun k ->
          let dko = d0 + (k * dks) and ako = a0 + (k * aks) and bko = b0 + (k * bks) in
          for i = 0 to n - 1 do
            let di = dko + Array.unsafe_get db i in
            Array.unsafe_set da di
              (f32_round
                 (Array.unsafe_get da di
                 +. Array.unsafe_get aa (ako + Array.unsafe_get ab i)
                    *. Array.unsafe_get ba (bko + Array.unsafe_get bb i)))
          done
        else fun k ->
          let dko = d0 + (k * dks) and ako = a0 + (k * aks) and bko = b0 + (k * bks) in
          for i = 0 to n - 1 do
            let di = dko + Array.unsafe_get db i in
            Array.unsafe_set da di
              (rnd
                 (Array.unsafe_get da di
                 +. Array.unsafe_get aa (ako + Array.unsafe_get ab i)
                    *. Array.unsafe_get ba (bko + Array.unsafe_get bb i)))
          done
    else
      fun g ->
        let da = arr g dsp and d0 = off g dsp in
        let aa = arr g asp and a0 = off g asp in
        let ba = arr g bsp and b0 = off g bsp in
        fun k ->
          for i = 0 to n - 1 do
            let di = d0 + Array.unsafe_get db i + (k * Array.unsafe_get dk i) in
            let ai = a0 + Array.unsafe_get ab i + (k * Array.unsafe_get ak i) in
            let bi = b0 + Array.unsafe_get bb i + (k * Array.unsafe_get bk i) in
            Array.unsafe_set da di
              (rnd
                 (Array.unsafe_get da di
                 +. (Array.unsafe_get aa ai *. Array.unsafe_get ba bi)))
          done

  let g_mul ~rnd dsp asp bsp ds as_ bs =
    let n = Array.length ds in
    let db = bases ds and dk = steps ds in
    let ab = bases as_ and ak = steps as_ in
    let bb = bases bs and bk = steps bs in
    fun g ->
      let da = arr g dsp and d0 = off g dsp in
      let aa = arr g asp and a0 = off g asp in
      let ba = arr g bsp and b0 = off g bsp in
      fun k ->
        for i = 0 to n - 1 do
          let di = d0 + Array.unsafe_get db i + (k * Array.unsafe_get dk i) in
          let ai = a0 + Array.unsafe_get ab i + (k * Array.unsafe_get ak i) in
          let bi = b0 + Array.unsafe_get bb i + (k * Array.unsafe_get bk i) in
          Array.unsafe_set da di
            (rnd (Array.unsafe_get aa ai *. Array.unsafe_get ba bi))
        done

  let g_addacc ~rnd dsp asp ds as_ =
    let n = Array.length ds in
    let db = bases ds and dk = steps ds and ab = bases as_ and ak = steps as_ in
    fun g ->
      let da = arr g dsp and d0 = off g dsp in
      let aa = arr g asp and a0 = off g asp in
      fun k ->
        for i = 0 to n - 1 do
          let di = d0 + Array.unsafe_get db i + (k * Array.unsafe_get dk i) in
          let ai = a0 + Array.unsafe_get ab i + (k * Array.unsafe_get ak i) in
          Array.unsafe_set da di
            (rnd (Array.unsafe_get da di +. Array.unsafe_get aa ai))
        done

  let compile_run ~rnd ~f32 (r : (cls * op) list) : genv -> int -> unit =
    let pick f = Array.of_list (List.map (fun (c, _) -> f c) r) in
    match r with
    | [] -> fun _ _ -> ()
    | (CGen _, o) :: _ -> g_gen ~rnd o
    | (CCopy (d, a), _) :: _ ->
        g_copy ~rnd ~f32 d.osp a.osp
          (pick (function CCopy (d, _) -> d | _ -> assert false))
          (pick (function CCopy (_, a) -> a | _ -> assert false))
    | (CConst (d, _), _) :: _ ->
        g_const ~rnd d.osp
          (pick (function CConst (d, _) -> d | _ -> assert false))
          (pick (function CConst (_, v) -> v | _ -> assert false))
    | (CMul (d, a, b), _) :: _ ->
        g_mul ~rnd d.osp a.osp b.osp
          (pick (function CMul (d, _, _) -> d | _ -> assert false))
          (pick (function CMul (_, a, _) -> a | _ -> assert false))
          (pick (function CMul (_, _, b) -> b | _ -> assert false))
    | (CMulAcc (d, a, b), _) :: _ ->
        g_mulacc ~rnd ~f32 d.osp a.osp b.osp
          (pick (function CMulAcc (d, _, _) -> d | _ -> assert false))
          (pick (function CMulAcc (_, a, _) -> a | _ -> assert false))
          (pick (function CMulAcc (_, _, b) -> b | _ -> assert false))
    | (CAddAcc (d, a), _) :: _ ->
        g_addacc ~rnd d.osp a.osp
          (pick (function CAddAcc (d, _) -> d | _ -> assert false))
          (pick (function CAddAcc (_, a) -> a | _ -> assert false))

  let compile_ops ~rnd ~f32 (ops : op list) : (genv -> int -> unit) array =
    let cls = List.map (fun o -> (classify o, o)) ops in
    let rec runs = function
      | [] -> []
      | ((c, _) as hd) :: rest -> (
          match c with
          | CGen _ -> [ hd ] :: runs rest
          | _ ->
              let rec take acc = function
                | ((c2, _) as x) :: tl when same_shape c c2 -> take (x :: acc) tl
                | tl -> (List.rev acc, tl)
              in
              let r, tl = take [ hd ] rest in
              r :: runs tl)
    in
    Array.of_list (List.map (compile_run ~rnd ~f32) (runs cls))

  (* ------- per-call guard over the memory-space operands ------- *)

  type guard = {
    gsp : space array;
    gbase : int array;
    gstep : int array;
    gloop : bool array;
  }

  let build_guard (segs : seg array) : guard =
    let sp = ref [] and ba = ref [] and stp = ref [] and lp = ref [] in
    let add in_loop (o : operand) =
      if o.osp <> SpSlab then begin
        sp := o.osp :: !sp;
        ba := o.ob :: !ba;
        stp := o.ok :: !stp;
        lp := in_loop :: !lp
      end
    in
    let rec add_rt in_loop = function
      | RConst _ -> ()
      | RRead o -> add in_loop o
      | RBin (_, x, y) ->
          add_rt in_loop x;
          add_rt in_loop y
      | RNeg x -> add_rt in_loop x
    in
    Array.iter
      (fun sg ->
        List.iter
          (fun o ->
            add sg.s_loop o.o_dst;
            add_rt sg.s_loop o.o_rhs)
          sg.s_ops)
      segs;
    {
      gsp = Array.of_list (List.rev !sp);
      gbase = Array.of_list (List.rev !ba);
      gstep = Array.of_list (List.rev !stp);
      gloop = Array.of_list (List.rev !lp);
    }

  let guard_ok (gd : guard) ~kc ~(ac : float array) ~ao ~(bc : float array) ~bo
      ~(c : float array) : bool =
    let n = Array.length gd.gsp in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      let len, o =
        match gd.gsp.(!i) with
        | SpA -> (Array.length ac, ao)
        | SpB -> (Array.length bc, bo)
        | SpC | SpSlab -> (Array.length c, 0)
      in
      let base = o + gd.gbase.(!i) in
      if gd.gloop.(!i) then begin
        if kc > 0 then begin
          let s = gd.gstep.(!i) in
          let last = base + ((kc - 1) * s) in
          let lo = if base < last then base else last in
          let hi = if base < last then last else base in
          if lo < 0 || hi >= len then ok := false
        end
      end
      else if base < 0 || base >= len then ok := false;
      incr i
    done;
    !ok
end

let to_ukr (p : proc) : (ukr_fn * Summary.t) option =
  match Ukr_lower.lower p with
  | None -> None
  | Some l ->
      let open Ukr_lower in
      let open Ukr_run in
      let f32 = l.lo_dt = Dtype.F32 in
      let rnd = if f32 then f32_round else Buffer.round_dtype l.lo_dt in
      let seg_runners =
        Array.map (fun sg -> (sg.s_loop, compile_ops ~rnd ~f32 sg.s_ops)) l.lo_segs
      in
      let gd = build_guard l.lo_segs in
      let slab = Array.make (max 1 l.lo_slab) 0.0 in
      (* general-engine fallback for calls the specialized tape refuses:
         raises the interpreter's errors verbatim (and handles the rare
         valid-but-unsupported cases, e.g. kc = 0 with loop-written reads) *)
      let fb = compile p in
      let one = Buffer.of_array l.lo_dt [ 1 ] [| 1.0 |] in
      let mr = l.lo_mr and nr = l.lo_nr in
      let bufview data dims offset =
        {
          Buffer.data;
          dtype = l.lo_dt;
          dims = Array.of_list dims;
          strides = Array.of_list (Ukr_lower.strides_of_const dims);
          offset;
        }
      in
      let fn : ukr_fn =
       fun ~kc ~ac ~ao ~bc ~bo ~c ->
          if
            kc >= 0 && ao >= 0 && bo >= 0
            && (not (l.lo_kc_pos && kc = 0))
            && Array.for_all (fun f -> f kc) l.lo_preds
            && guard_ok gd ~kc ~ac ~ao ~bc ~bo ~c
          then begin
            let g = { ea = ac; eao = ao; eb = bc; ebo = bo; ec = c; es = slab } in
            Array.iter
              (fun (is_loop, mks) ->
                let n = Array.length mks in
                let fs = Array.map (fun mk -> mk g) mks in
                if is_loop then
                  for k = 0 to kc - 1 do
                    for i = 0 to n - 1 do
                      (Array.unsafe_get fs i) k
                    done
                  done
                else
                  for i = 0 to n - 1 do
                    fs.(i) 0
                  done)
              seg_runners
          end
          else
            run fb
              [
                Interp.VInt kc;
                Interp.VBuf one;
                Interp.VBuf (bufview ac [ kc; mr ] ao);
                Interp.VBuf (bufview bc [ kc; nr ] bo);
                Interp.VBuf one;
                Interp.VBuf (bufview c [ nr; mr ] 0);
              ]
      in
      Some (fn, summary_of_lowered l)

(* ------------------------------------------------------------------ *)
(* The Bigarray monomorphized tier                                     *)

type ba32 = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

type ukr_ba =
  kc:int -> ac:ba32 -> ao:int -> bc:ba32 -> bo:int -> c:ba32 -> co:int -> unit

module BA1 = Bigarray.Array1

(* The one up-front range check of the Bigarray tier: every access of the
   executors below stays inside [ao, ao + kc*mr), [bo, bo + kc*nr) and
   [co, co + nr*mr), so after this guard they run unsafe loads/stores. *)
let ukr_ba_check ~mr ~nr ~kc ~(ac : ba32) ~ao ~(bc : ba32) ~bo ~(c : ba32) ~co =
  if
    kc < 0 || ao < 0 || bo < 0 || co < 0
    || ao + (kc * mr) > BA1.dim ac
    || bo + (kc * nr) > BA1.dim bc
    || co + (nr * mr) > BA1.dim c
  then invalid_arg "Compile.ukr_ba: operands out of range"

(* Hand-monomorphized 8x12 executor: every index expression is built from
   literal constants, which is what lets the non-flambda compiler keep the
   whole k-block in registers (a closure-captured mr/nr costs ~2x here).
   Shape: j outer; the C column lives in an unboxed float-array accumulator
   loaded once and stored once per column; the k loop runs 4-wide with the
   B operands hoisted; f32 rounding happens at the single Bigarray store.
   On integer-valued data (the repo's entire test and bench domain) the
   deferred rounding is exact, which [to_ukr_ba]'s probe gate certifies. *)
let ukr_ba_8x12 () : ukr_ba =
  fun ~kc ~ac ~ao ~bc ~bo ~c ~co ->
    ukr_ba_check ~mr:8 ~nr:12 ~kc ~ac ~ao ~bc ~bo ~c ~co;
    (* the accumulator is allocated per call, not captured: the executor is
       re-entrant, so one table entry can serve every domain of a pool (the
       8 floats are a minor-heap blip against the kc*96 fmas that follow) *)
    let acc = Array.create_float 8 in
    for j = 0 to 11 do
      let cj = co + (j * 8) in
      for i = 0 to 7 do
        Array.unsafe_set acc i (BA1.unsafe_get c (cj + i))
      done;
      let k = ref 0 in
      while !k + 3 < kc do
        let k0 = !k in
        let b0 = BA1.unsafe_get bc (bo + (k0 * 12) + j)
        and b1 = BA1.unsafe_get bc (bo + ((k0 + 1) * 12) + j)
        and b2 = BA1.unsafe_get bc (bo + ((k0 + 2) * 12) + j)
        and b3 = BA1.unsafe_get bc (bo + ((k0 + 3) * 12) + j) in
        let a0 = ao + (k0 * 8) in
        for i = 0 to 7 do
          let v = Array.unsafe_get acc i in
          Array.unsafe_set acc i
            (v
            +. (BA1.unsafe_get ac (a0 + i) *. b0)
            +. (BA1.unsafe_get ac (a0 + 8 + i) *. b1)
            +. (BA1.unsafe_get ac (a0 + 16 + i) *. b2)
            +. (BA1.unsafe_get ac (a0 + 24 + i) *. b3))
        done;
        k := k0 + 4
      done;
      while !k < kc do
        let k0 = !k in
        let b0 = BA1.unsafe_get bc (bo + (k0 * 12) + j) in
        let a0 = ao + (k0 * 8) in
        for i = 0 to 7 do
          Array.unsafe_set acc i
            (Array.unsafe_get acc i +. (BA1.unsafe_get ac (a0 + i) *. b0))
        done;
        incr k
      done;
      for i = 0 to 7 do
        BA1.unsafe_set c (cj + i) (Array.unsafe_get acc i)
      done
    done

(* The same shape for every other (mr, nr): the table's fringe entries.
   mr/nr and their small multiples are closure-captured constants — about
   2x the hand-specialized 8x12 per fma, still ~3x faster than the
   flat-array tape tier, and fringe tiles are a small fraction of any
   full GEMM. *)
let ukr_ba_generic ~(mr : int) ~(nr : int) : ukr_ba =
  let mr2 = 2 * mr and mr3 = 3 * mr in
  let nr2 = 2 * nr and nr3 = 3 * nr in
  fun ~kc ~ac ~ao ~bc ~bo ~c ~co ->
    ukr_ba_check ~mr ~nr ~kc ~ac ~ao ~bc ~bo ~c ~co;
    (* per-call accumulator — re-entrant, shareable across domains *)
    let acc = Array.create_float mr in
    for j = 0 to nr - 1 do
      let cj = co + (j * mr) in
      for i = 0 to mr - 1 do
        Array.unsafe_set acc i (BA1.unsafe_get c (cj + i))
      done;
      let k = ref 0 in
      while !k + 3 < kc do
        let k0 = !k in
        let bb = bo + (k0 * nr) + j in
        let b0 = BA1.unsafe_get bc bb
        and b1 = BA1.unsafe_get bc (bb + nr)
        and b2 = BA1.unsafe_get bc (bb + nr2)
        and b3 = BA1.unsafe_get bc (bb + nr3) in
        let a0 = ao + (k0 * mr) in
        for i = 0 to mr - 1 do
          let v = Array.unsafe_get acc i in
          Array.unsafe_set acc i
            (v
            +. (BA1.unsafe_get ac (a0 + i) *. b0)
            +. (BA1.unsafe_get ac (a0 + mr + i) *. b1)
            +. (BA1.unsafe_get ac (a0 + mr2 + i) *. b2)
            +. (BA1.unsafe_get ac (a0 + mr3 + i) *. b3))
        done;
        k := k0 + 4
      done;
      while !k < kc do
        let k0 = !k in
        let b0 = BA1.unsafe_get bc (bo + (k0 * nr) + j) in
        let a0 = ao + (k0 * mr) in
        for i = 0 to mr - 1 do
          Array.unsafe_set acc i
            (Array.unsafe_get acc i +. (BA1.unsafe_get ac (a0 + i) *. b0))
        done;
        incr k
      done;
      for i = 0 to mr - 1 do
        BA1.unsafe_set c (cj + i) (Array.unsafe_get acc i)
      done
    done

(* Build-time semantic certificate for the Bigarray tier: run the proc
   through the compiled closure engine on integer-valued probes and demand
   the canonical C[j,i] += sum_k Ac[k,i]*Bc[k,j] answer, bit for bit.
   Integer inputs (|v| <= 1000, kc <= 8, so every partial sum is an exact
   binary32 integer) make each f32 rounding step the identity, so a
   schedule that reassociates the k-sum still matches; any proc computing
   a different function is rejected here and keeps the closure tier. *)
let ukr_ba_validates (p : proc) ~(mr : int) ~(nr : int) : bool =
  let ck = compile p in
  let one = Buffer.of_array Dtype.F32 [ 1 ] [| 1.0 |] in
  let bufview data dims =
    {
      Buffer.data;
      dtype = Dtype.F32;
      dims = Array.of_list dims;
      strides = Array.of_list (Ukr_lower.strides_of_const dims);
      offset = 0;
    }
  in
  let probe kc seed =
    let st = Random.State.make [| 0x6ba; seed; kc; mr; nr |] in
    let rnd () = float_of_int (Random.State.int st 2001 - 1000) in
    let ac = Array.init (max 1 (kc * mr)) (fun _ -> rnd ()) in
    let bc = Array.init (max 1 (kc * nr)) (fun _ -> rnd ()) in
    let c = Array.init (nr * mr) (fun _ -> rnd ()) in
    let expect =
      Array.init (nr * mr) (fun idx ->
          let j = idx / mr and i = idx mod mr in
          let s = ref c.(idx) in
          for k = 0 to kc - 1 do
            s := !s +. (ac.((k * mr) + i) *. bc.((k * nr) + j))
          done;
          !s)
    in
    match
      run ck
        [
          Interp.VInt kc;
          Interp.VBuf one;
          Interp.VBuf (bufview ac [ kc; mr ]);
          Interp.VBuf (bufview bc [ kc; nr ]);
          Interp.VBuf one;
          Interp.VBuf (bufview c [ nr; mr ]);
        ]
    with
    | () -> c = expect
    | exception _ -> false
  in
  probe 1 17 && probe 3 29 && probe 8 41

let probe_ukr_ba = ukr_ba_validates

let to_ukr_ba ?(certified = false) (p : proc) : (ukr_ba * Summary.t) option =
  match Ukr_lower.lower p with
  | None -> None
  | Some l ->
      let open Ukr_lower in
      (* F32 only (the Bigarray element type IS the storage rounding);
         no runtime predicates and no kc>0 requirement, so the executor's
         single up-front range check is the complete guard. [certified]
         callers carry a static Tierlint proof that the tape computes the
         canonical Σ A·B reduction, which is exactly what the integer
         probe establishes dynamically — the probe is skipped for them. *)
      if
        l.lo_dt = Dtype.F32
        && Array.length l.lo_preds = 0
        && (not l.lo_kc_pos)
        && (certified || ukr_ba_validates p ~mr:l.lo_mr ~nr:l.lo_nr)
      then
        let u =
          match (l.lo_mr, l.lo_nr) with
          | 8, 12 -> ukr_ba_8x12 ()
          | mr, nr -> ukr_ba_generic ~mr ~nr
        in
        Some (u, summary_of_lowered l)
      else None

(** Re-materialize a Bigarray executor from a stored access summary alone —
    the cache-hydration path. Sound because the executors above are chosen
    by (mr, nr) only and the summary carries the full eligibility gate
    (dt / preds / kc>0) the lowering checked; the hydrating caller is
    responsible for re-running {!Exo_check.Tierlint} over the summary so a
    stale or tampered artifact is caught before entering service. The
    result is definitionally bit-identical to what {!to_ukr_ba} would
    return for the proc the summary came from. *)
let ukr_ba_of_summary (s : Summary.t) : ukr_ba option =
  if s.Summary.dt = Dtype.F32 && s.Summary.n_preds = 0 && not s.Summary.kc_pos
  then
    Some
      (match (s.Summary.mr, s.Summary.nr) with
      | 8, 12 -> ukr_ba_8x12 ()
      | mr, nr -> ukr_ba_generic ~mr ~nr)
  else None
