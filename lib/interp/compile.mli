(** Compile-once/run-many execution engine.

    [compile] lowers a procedure to nested OCaml closures: symbols become
    integer frame slots (no [Sym.Map] at runtime), expressions split
    statically into unboxed int and float paths, buffer accesses compute
    their flat address directly against the strides, and instruction calls
    run their semantic bodies' compiled closures with preconditions checked
    in a once-per-call prologue.

    Observationally identical to {!Interp.run} — same dtype rounding, bounds
    checks, and precondition failures (it raises {!Interp.Runtime_error} and
    {!Buffer.Bounds} like the interpreter). The tree-walking {!Interp} stays
    as the definitional oracle; a qcheck property pins bit-identical buffers
    between the two. Use this engine anywhere a kernel runs more than once:
    the GEMM numeric path, tuner sweeps, and property-test harnesses. *)

type t

(** Compile a procedure. Instruction callees are compiled once and shared
    across all their call sites. *)
val compile : Exo_ir.Ir.proc -> t

(** The source procedure. *)
val proc : t -> Exo_ir.Ir.proc

(** Run a compiled procedure: [VInt] for size/index/bool arguments, [VBuf]
    for tensors (mutated in place) — the same conventions as {!Interp.run}.
    Preconditions are checked; violations raise {!Interp.Runtime_error}. *)
val run : t -> Interp.value list -> unit
