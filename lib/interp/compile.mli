(** Compile-once/run-many execution engine.

    [compile] lowers a procedure to nested OCaml closures: symbols become
    integer frame slots (no [Sym.Map] at runtime), expressions split
    statically into unboxed int and float paths, buffer accesses compute
    their flat address directly against the strides, and instruction calls
    run their semantic bodies' compiled closures with preconditions checked
    in a once-per-call prologue.

    Observationally identical to {!Interp.run} — same dtype rounding, bounds
    checks, and precondition failures (it raises {!Interp.Runtime_error} and
    {!Buffer.Bounds} like the interpreter). The tree-walking {!Interp} stays
    as the definitional oracle; a qcheck property pins bit-identical buffers
    between the two. Use this engine anywhere a kernel runs more than once:
    the GEMM numeric path, tuner sweeps, and property-test harnesses. *)

type t

(** Compile a procedure. Instruction callees are compiled once and shared
    across all their call sites. *)
val compile : Exo_ir.Ir.proc -> t

(** The source procedure. *)
val proc : t -> Exo_ir.Ir.proc

(** Run a compiled procedure: [VInt] for size/index/bool arguments, [VBuf]
    for tensors (mutated in place) — the same conventions as {!Interp.run}.
    Preconditions are checked; violations raise {!Interp.Runtime_error}. *)
val run : t -> Interp.value list -> unit

(** A specialized micro-kernel entry point: [c += ac·bc] on one packed tile,
    where [ac] is a kc×mr k-major panel starting at element [ao], [bc] a
    kc×nr panel starting at [bo], and [c] the transposed nr×mr tile. Alpha
    and beta are fixed at 1 (the macro-kernel folds them into packing and
    the beta pre-pass, and the generated simple kernels never read them). *)
type ukr_fn =
  kc:int -> ac:float array -> ao:int -> bc:float array -> bo:int ->
  c:float array -> unit

(** The auditable access summary of a lowered micro-kernel tape: the exact
    per-statement memory operands (affine addresses [base + kstep·k] over
    the k-loop counter) and read/write/accumulate structure the flat-tape
    runtime executes. Derived from the same lowered value the executors
    run, so it is faithful by construction — {!Exo_check.Tierlint} evaluates
    it in an affine-interval domain to prove bounds, write-set containment
    and accumulation shape statically. *)
module Summary : sig
  type space = A | B | C | Slab

  (** Element [base + kstep·k] of [sp]; [kstep = 0] outside the k loop. *)
  type operand = { sp : space; base : int; kstep : int }

  type rhs =
    | Const of float
    | Read of operand
    | Bin of Exo_ir.Ir.binop * rhs * rhs
    | Neg of rhs

  type op = { dst : operand; reduce : bool; rhs : rhs }
  type seg = { in_loop : bool; ops : op list }

  type t = {
    mr : int;
    nr : int;
    dt : Exo_ir.Dtype.t;
    slab : int;
    kc_pos : bool;
    n_preds : int;
    segs : seg list;
  }

  val space_name : space -> string
end

(** The access summary alone, for procs whose tape lowering succeeds —
    what {!to_ukr}/{!to_ukr_ba} would attach to their executors. *)
val summarize_ukr : Exo_ir.Ir.proc -> Summary.t option

(** [to_ukr p] — the second, specialized lowering tier for procs with the
    generated micro-kernel signature [(KC: size, alpha: dt[1], Ac: dt[KC,MR],
    Bc: dt[KC,NR], beta: dt[1], C: dt[NR,MR])]: the proc is symbolically
    executed, constant loops fully unrolled, instruction calls inlined with
    window geometry folded to constants, register memory flattened into one
    scratch slab, and the surviving straight-line tape batched into
    descriptor-driven float-array loops — no closure dispatch or [Sym.Map]
    lookups in the k loop. Bit-identical to {!run} (and to {!Interp.run}):
    structurally unsupported procs return [None]; per-call conditions the
    tape cannot honour (short arrays, failing KC-dependent preconditions,
    [kc = 0] with loop-carried reads) divert that call to the general
    closure engine, which raises the interpreter's errors verbatim.

    The returned closure is NOT re-entrant (it owns a mutable scratch slab
    and a compiled fallback): share per domain, like {!t}. The attached
    {!Summary.t} describes exactly the tape the closure runs. *)
val to_ukr : Exo_ir.Ir.proc -> (ukr_fn * Summary.t) option

(** A float32 Bigarray: the storage type of the third execution tier's
    packed panels and C tiles. Loads/stores compile to inline machine
    f32<->f64 conversions — without flambda, the [Int32] bit-twiddling
    that rounds plain float-array stores costs two C calls per flop, and
    moving storage to Bigarray is what removes it from the inner loop. *)
type ba32 = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

(** A Bigarray-tier micro-kernel: [c += ac·bc] with the same panel layout
    as {!ukr_fn} ([ac] kc×mr k-major at [ao], [bc] kc×nr at [bo], [c] the
    transposed nr×mr tile at [co]). Operand ranges are checked once up
    front ([Invalid_argument] on violation); the loops then run unsafe
    accesses with a 4-wide k-blocked accumulator chain, accumulating each
    C column in unboxed f64 and rounding once at the f32 store — exact
    whenever the data is integer-valued (the repo's test/bench domain). *)
type ukr_ba =
  kc:int -> ac:ba32 -> ao:int -> bc:ba32 -> bo:int -> c:ba32 -> co:int ->
  unit

(** [to_ukr_ba p] — the third, monomorphized execution tier: for f32 procs
    the flat-tape lowering accepts (with no runtime preconditions), the
    proc's semantics are certified against the canonical GEMM formula on
    integer probes via the compiled closure engine, and the returned
    executor is a straight-line OCaml loop nest specialized to (mr, nr) —
    hand-monomorphized with literal constants for 8×12, shape-captured for
    every other pair. [None] means the proc keeps the earlier tiers.

    [~certified:true] records that the caller holds a static
    {!Exo_check.Tierlint} proof that the tape computes the canonical
    reduction — the dynamic integer probe is then skipped (it would
    establish the same fact). Default [false]: probe as before.

    Unlike {!to_ukr}, the returned executor is re-entrant — its unboxed
    accumulator is allocated per call — so one executor can be shared by
    every domain of a pool. *)
val to_ukr_ba :
  ?certified:bool -> Exo_ir.Ir.proc -> (ukr_ba * Summary.t) option

(** Re-materialize the Bigarray executor from a stored access summary — the
    cache-hydration path ({!Exo_blis.Registry}). Returns [None] when the
    summary fails the tier's eligibility gate (non-f32, runtime preds,
    kc>0 requirement). Sound because the executors are selected by
    (mr, nr) alone, so the result is bit-identical to what {!to_ukr_ba}
    returns for the proc the summary was derived from; callers must still
    re-run the {!Exo_check.Tierlint} gate over the summary so a stale or
    tampered artifact never enters service silently. *)
val ukr_ba_of_summary : Summary.t -> ukr_ba option

(** The Bigarray tier's dynamic certificate, exposed so the bench and the
    [--tiers] lint sweep can cross-check it against the static verdicts:
    runs the proc through the compiled closure engine on integer probes
    and demands the canonical [C[j,i] += Σ_k Ac[k,i]·Bc[k,j]] answer bit
    for bit. F32 procs only (the probes are f32 buffers). *)
val probe_ukr_ba : Exo_ir.Ir.proc -> mr:int -> nr:int -> bool
