(** C code emission — "plain C code with intrinsic instructions" that any
    toolchain compiles, the compiler-independence the paper counts among
    Exo's advantages.

    Tensor arguments become flat pointers with linearized row-major indexing;
    DRAM allocations become stack arrays; register-memory allocations become
    arrays of the ISA's vector type (the lane dimension folds into the type);
    instruction calls render through their [@instr] format strings. Direct
    element access to a register-memory buffer — a kernel that was never
    fully vectorized — is rejected, as is a register parameter still fed by
    a DRAM window (missing [set_memory]). *)

exception Codegen_error of string

(** One procedure as a C definition. *)
val proc_to_c : Exo_ir.Ir.proc -> string

(** A full compilation unit: includes (collected from the instructions used)
    plus the procedures. *)
val compilation_unit : ?header_comment:string -> Exo_ir.Ir.proc list -> string

(** The matching header file with prototypes. *)
val header : ?guard:string -> Exo_ir.Ir.proc list -> string

(** Lowering flavour for the native JIT tier: the kit's intrinsics (when
    the host executes that ISA) or the canonical portable nest the host
    compiler autovectorizes. *)
type native_target = Nat_intrinsics | Nat_portable

val native_target_name : native_target -> string

(** Exported symbol of the (mr, nr) kernel: [exo_ukr_<mr>x<nr>]. *)
val native_sym : mr:int -> nr:int -> string

(** The fixed extern-"C" ABI every JIT'd kernel exports:
    [void sym(int kc, const float *A, const float *B, float *C, int ldc)],
    computing [C += A·B] over a [kc × mr] packed A panel, a [kc × nr]
    packed B panel, and an [nr × mr] (transposed, leading dimension [ldc])
    C tile. *)
val native_abi_signature : string -> string

(** One native-ABI compilation unit for a whole kernel bank — one exported
    [exo_ukr_<mr>x<nr>] per [(mr, nr, proc)] triple. Under
    [Nat_intrinsics], each scheduled proc is emitted [static] behind a
    contiguous-C ([ldc = mr]) wrapper with the portable nest as the other
    path; procs the emitter rejects (or [None]) degrade to the portable
    nest. Under [Nat_portable] the procs are ignored. *)
val native_unit :
  ?header_comment:string ->
  target:native_target ->
  kernels:(int * int * Exo_ir.Ir.proc option) list ->
  unit ->
  string
